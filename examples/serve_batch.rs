//! Serve a mixed batch of conv/GEMM/network jobs through the batched
//! multi-threaded inference engine, on all three backends, and verify
//! the serving contract: bit-identical outputs everywhere, functional
//! cycles equal to the cycle-accurate Tempus simulation, and a large
//! wall-clock win for the functional backend.
//!
//! ```text
//! cargo run --release --example serve_batch
//! ```

use tempus::arith::IntPrecision;
use tempus::core::gemm::Matrix;
use tempus::core::TempusConfig;
use tempus::models::netbuild;
use tempus::models::zoo::Model;
use tempus::models::QuantizedModel;
use tempus::nvdla::config::NvdlaConfig;
use tempus::nvdla::conv::ConvParams;
use tempus::nvdla::cube::{DataCube, KernelSet};
use tempus::runtime::{BackendKind, EngineConfig, InferenceEngine, Job};

fn build_batch(jobs: usize, seed: u64) -> Vec<Job> {
    let mut out = Vec::with_capacity(jobs);
    for id in 0..jobs as u64 {
        let salt = (seed.wrapping_mul(31).wrapping_add(id) % 251) as i32;
        match id % 4 {
            0 | 2 => {
                let c = 4 + 4 * (id % 2) as usize;
                let features = DataCube::from_fn(5, 5, c, move |x, y, ch| {
                    ((x as i32 * 31 + y as i32 * 17 + ch as i32 * 7 + salt) % 255) - 127
                });
                let kernels = KernelSet::from_fn(8, 3, 3, c, move |k, r, s, ch| {
                    ((k as i32 * 13 + r as i32 * 5 + s as i32 + ch as i32 * 11 + salt) % 255) - 127
                });
                out.push(Job::conv(
                    id,
                    format!("conv-{id}"),
                    features,
                    kernels,
                    ConvParams::unit_stride_same(3),
                ));
            }
            1 => {
                let a = Matrix::from_fn(8, 6, move |r, c| {
                    ((r as i32 * 31 + c as i32 * 17 + salt) % 255) - 127
                });
                let b = Matrix::from_fn(6, 7, move |r, c| {
                    ((r as i32 * 13 + c as i32 * 41 + salt) % 255) - 127
                });
                out.push(Job::gemm(id, format!("gemm-{id}"), a, b));
            }
            _ => {
                let model = if id % 8 == 3 {
                    Model::ResNet18
                } else {
                    Model::GoogleNet
                };
                let q =
                    QuantizedModel::generate_limited(model, IntPrecision::Int8, seed + id, 200_000);
                let layers = netbuild::network_prefix(&q, 1, 64);
                match netbuild::input_channels(&layers) {
                    Some(channels) => {
                        let input =
                            netbuild::input_cube(5, 5, channels, IntPrecision::Int8, seed + id);
                        out.push(Job::network(id, format!("net-{id}"), input, layers));
                    }
                    None => out.push(Job::gemm(
                        id,
                        format!("gemm-{id}"),
                        Matrix::from_fn(4, 4, |r, c| (r as i32 - c as i32) * 3),
                        Matrix::from_fn(4, 4, |r, c| (r as i32 + c as i32) - 3),
                    )),
                }
            }
        }
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let jobs = build_batch(120, 42);
    println!("serving {} mixed jobs (conv/gemm/network)\n", jobs.len());

    let mut digests = Vec::new();
    let mut functional_wall = 0u64;
    let mut tempus_wall = 0u64;
    let mut tempus_cycles = 0u64;
    let mut functional_cycles = 0u64;
    println!("backend comparison at 4 workers:");
    for kind in BackendKind::ALL {
        let engine = InferenceEngine::new(
            EngineConfig::new(kind)
                .with_workers(4)
                .with_cores(TempusConfig::nv_small(), NvdlaConfig::nv_small()),
        )?;
        let report = engine.run_batch(&jobs)?;
        println!("  {}", report.aggregate);
        digests.push(report.output_digest());
        match kind {
            BackendKind::TempusCycleAccurate => {
                tempus_wall = report.aggregate.wall_ns;
                tempus_cycles = report.aggregate.total_sim_cycles;
            }
            BackendKind::FastFunctional => {
                functional_wall = report.aggregate.wall_ns;
                functional_cycles = report.aggregate.total_sim_cycles;
            }
            BackendKind::NvdlaCycleAccurate => {}
        }
    }

    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "backends must agree bit-exactly"
    );
    assert_eq!(
        tempus_cycles, functional_cycles,
        "closed-form latency must equal the simulation"
    );
    println!(
        "\nall three backends agree bit-exactly (digest {:016x})",
        digests[0]
    );
    println!(
        "functional backend speedup over cycle-accurate tempus: {:.0}x wall-clock",
        tempus_wall as f64 / functional_wall as f64
    );

    println!("\nfunctional worker scaling (same 120-job batch):");
    for workers in [1usize, 2, 4, 8] {
        let engine = InferenceEngine::new(
            EngineConfig::new(BackendKind::FastFunctional)
                .with_workers(workers)
                .with_cores(TempusConfig::nv_small(), NvdlaConfig::nv_small()),
        )?;
        let report = engine.run_batch(&jobs)?;
        println!(
            "  {} worker(s): {:>8.2} ms, {:>9.0} jobs/s",
            workers,
            report.aggregate.wall_ns as f64 * 1e-6,
            report.aggregate.jobs_per_sec
        );
    }
    Ok(())
}
