//! GEMM dataflow comparison: the predecessor tubGEMM (outer-product,
//! §II-B) against Tempus Core (inner-product convolution dataflow) on
//! the same matrix product — the architectural contrast behind the
//! paper's contribution 1.
//!
//! ```text
//! cargo run --release --example gemm_comparison
//! ```

use tempus::arith::IntPrecision;
use tempus::core::gemm::{Matrix, TubGemm};
use tempus::core::{TempusConfig, TempusCore};
use tempus::nvdla::conv::ConvParams;
use tempus::nvdla::cube::{DataCube, KernelSet};
use tempus::nvdla::pipeline::ConvCore;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // O = A x B with M x N x P = 24 x 32 x 16, INT8.
    let (m, n, p) = (24usize, 32usize, 16usize);
    let a = Matrix::from_fn(m, n, |i, j| ((i as i32 * 31 + j as i32 * 17) % 255) - 127);
    let b = Matrix::from_fn(n, p, |i, j| ((i as i32 * 13 + j as i32 * 41) % 255) - 127);
    let golden = a.multiply(&b)?;

    // Outer-product engine: N rank-1 updates, B streamed temporally.
    let engine = TubGemm::new(16, 16, IntPrecision::Int8);
    let outer = engine.multiply(&a, &b)?;
    println!(
        "outer-product tubGEMM : {:>6} cycles over {} rank-1 steps ({} tile passes, {} silent PE-steps)",
        outer.stats.cycles, outer.stats.steps, outer.stats.tile_passes, outer.stats.silent_pe_steps
    );

    // Inner-product lowering: GEMM as a 1x1 convolution (M positions,
    // P kernels, N channels) on the drop-in convolution core.
    let features = DataCube::from_fn(m, 1, n, |x, _, c| a.get(x, c));
    let kernels = KernelSet::from_fn(p, 1, 1, n, |k, _, _, c| b.get(c, k));
    let mut core = TempusCore::new(TempusConfig::paper_16x16());
    let inner = core.convolve(&features, &kernels, &ConvParams::valid())?;
    println!(
        "inner-product Tempus  : {:>6} cycles over {} atomic ops ({:.1} cy avg window)",
        inner.stats.cycles,
        inner.stats.atomic_ops,
        core.last_tempus_stats().avg_window_cycles
    );

    // Both are bit-exact against the golden matmul.
    for i in 0..m {
        for j in 0..p {
            assert_eq!(outer.output.get(i, j), golden.get(i, j));
            assert_eq!(inner.output.get(i, 0, j), golden.get(i, j));
        }
    }
    println!("\nboth dataflows bit-exact against the golden matmul ({m}x{p} outputs)");
    println!(
        "ratio inner/outer: {:.2}x — dataflow compatibility with NVDLA costs little GEMM\n\
         throughput, while gaining the convolution support GEMM-only designs lack (paper §I)",
        inner.stats.cycles as f64 / outer.stats.cycles as f64
    );
    Ok(())
}
