//! Waveform dump: trace one tub PE cell window cycle by cycle into a
//! VCD file viewable in GTKWave — the Fig. 2 dataflow made visible.
//!
//! ```text
//! cargo run --example waveform
//! gtkwave tub_window.vcd   # elsewhere
//! ```

use std::fs;

use tempus::arith::IntPrecision;
use tempus::core::tub_pe::TubPeCell;
use tempus::sim::{VcdValue, VcdWriter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let precision = IntPrecision::Int8;
    // A 4-multiplier cell: weights of different magnitudes show the
    // staggered pulse-stream drain; one zero weight stays silent.
    let weights = [11, -6, 0, 127];
    let feature = [3, -2, 99, 1];

    let mut cell = TubPeCell::new(4, precision);
    cell.load_weights(&weights)?;
    cell.begin(&feature)?;

    let mut vcd = VcdWriter::new("tub_pe_cell", 4);
    let sig_cycle = vcd.add_signal("cycle", 8);
    let sig_busy = vcd.add_signal("window_active", 1);
    let sig_acc = vcd.add_signal("accumulator", 24);
    let sig_silent = vcd.add_signal("silent_pes", 3);

    let window = cell.latency();
    println!(
        "weights {weights:?} -> window {} cycles (= ceil(max|w|/2) = ceil(127/2))",
        window
    );
    for cycle in 0..=u64::from(window) {
        vcd.record(cycle, sig_cycle, VcdValue::Vector(cycle));
        vcd.record(cycle, sig_busy, VcdValue::Bit(cycle < u64::from(window)));
        vcd.record(
            cycle,
            sig_acc,
            VcdValue::Vector(cell.partial_sum() as u64 & 0xFF_FFFF),
        );
        vcd.record(
            cycle,
            sig_silent,
            VcdValue::Vector(cell.silent_count() as u64),
        );
        if cycle < u64::from(window) {
            cell.tick();
        }
    }

    let expected: i64 = weights
        .iter()
        .zip(&feature)
        .map(|(&w, &a)| i64::from(w) * i64::from(a))
        .sum();
    assert_eq!(cell.partial_sum(), expected);
    println!(
        "final partial sum {} (exact dot product)",
        cell.partial_sum()
    );

    fs::write("tub_window.vcd", vcd.finish())?;
    println!("wrote tub_window.vcd ({} cycles at 4 ns)", window + 1);
    Ok(())
}
