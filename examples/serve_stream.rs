//! Stream a bursty seeded request trace through the `tempus-serve`
//! streaming service: bounded-queue ingestion with backpressure,
//! admission-controlled cycle-accurate jobs, a content-addressed
//! result cache, and per-class latency percentiles.
//!
//! The trace is then replayed against the warm cache to show the
//! memoization win: identical outputs, a large throughput multiple.
//!
//! ```text
//! cargo run --release --example serve_stream
//! cargo run --release --example serve_stream -- --arrays 8 --co-schedule
//! cargo run --release --example serve_stream -- --arrays 8 --devices 4 --backfill
//! ```
//!
//! `--arrays N` models a DLA with N PE arrays (jobs shard across
//! them); `--co-schedule` turns on the cost-aware array-slot
//! scheduler, which packs concurrent jobs onto disjoint array sets
//! instead of handing every job the whole core — the trace also
//! gains kernel-rich wide convolutions so there is something to pack.
//! `--devices N` puts N such devices behind the dispatcher (the
//! two-level fleet scheduler routes each job to the device with the
//! earliest predicted finish; implies `--co-schedule`), and
//! `--backfill` lets narrow jobs reclaim idle array gaps when that
//! provably delays nobody.
//!
//! `--trace-out trace.json` records the full dual-clock span trace
//! (wall-clock service spans + device-cycle array spans) and writes
//! it as Chrome/Perfetto `trace_event` JSON — open it at
//! <https://ui.perfetto.dev>. Tracing never changes the outputs: the
//! bit-identity assertion below still holds with it on.
//!
//! `--chaos-seed N` arms deterministic fault injection: workers
//! panic, backends throw transient errors, and accurate executions
//! stall, all as a pure function of the seed and each job's identity.
//! `--fault-rate F` (default 0.05) sets the per-attempt fault
//! probability. The service retries with deterministic backoff and
//! degrades to the functional backend rather than dropping — so the
//! bit-identity assertion below still holds under chaos, which is
//! the whole point:
//!
//! ```text
//! cargo run --release --example serve_stream -- --chaos-seed 42 --fault-rate 0.1
//! cargo run --release --example serve_stream -- --devices 2 --chaos-seed 7
//! ```
//!
//! `--streaming` runs GEMM and network jobs through the bounded
//! double-buffered scratch arena (outputs stay bit-identical — the
//! assertion below still holds), and mixes transformer-block GEMMs
//! into the trace so there are LLM-shaped operands to stream.
//! `--scratch-budget <elems>` (implies `--streaming`) additionally
//! caps the arena: jobs whose smallest streaming plan cannot fit the
//! budget are rejected at admission instead of ever running:
//!
//! ```text
//! cargo run --release --example serve_stream -- --streaming
//! cargo run --release --example serve_stream -- --scratch-budget 4096
//! ```
//!
//! `--power-cap <mW>` caps fleet-wide average power: admission walks
//! the width × DVFS-ladder grid and commits the lowest-energy
//! deadline-feasible operating point under the cap (implies
//! `--co-schedule`). `--freq-levels N` arms the per-array DVFS
//! governor with the deepest N ladder levels: idle-heavy arrays step
//! down the frequency ladder, trading latency nobody was using for
//! leakage energy (also implies `--co-schedule`). `--speculative`
//! turns on answer-now-verify-later serving: accurate requests are
//! answered immediately from the bit-identical functional backend
//! while the cycle-accurate execution verifies the digest
//! asynchronously:
//!
//! ```text
//! cargo run --release --example serve_stream -- --arrays 4 --power-cap 50
//! cargo run --release --example serve_stream -- --arrays 4 --freq-levels 4
//! cargo run --release --example serve_stream -- --speculative
//! ```

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use tempus::models::traffic::{generate, TraceConfig};
use tempus::serve::{
    FaultPlan, GovernorPolicy, Request, ResponseOutcome, ServeConfig, StreamingService,
};

/// Drives one full pass of the trace through `service`, returning
/// (wall seconds, per-job output digests).
fn replay(
    service: &StreamingService,
    trace: &[tempus::models::traffic::TraceRequest],
) -> Result<(f64, BTreeMap<u64, u64>), Box<dyn std::error::Error>> {
    let start = Instant::now();
    let mut digests = BTreeMap::new();
    let mut outstanding = 0usize;
    let drain = |service: &StreamingService,
                 digests: &mut BTreeMap<u64, u64>,
                 outstanding: &mut usize,
                 block: bool| {
        loop {
            let timeout = if block && *outstanding > 0 {
                Duration::from_secs(30)
            } else {
                Duration::ZERO
            };
            match service.recv_response(timeout) {
                Some(response) => {
                    *outstanding -= 1;
                    match response.outcome {
                        ResponseOutcome::Done(result) => {
                            digests.insert(response.job_id, result.output.digest());
                        }
                        ResponseOutcome::Rejected(reason) => {
                            println!("  request {} rejected: {reason:?}", response.job_id);
                        }
                        ResponseOutcome::Failed(error) => {
                            println!("  request {} failed: {error}", response.job_id);
                        }
                    }
                }
                None => break,
            }
            if *outstanding == 0 {
                break;
            }
        }
    };
    for t in trace {
        // Blocking submit: when the bounded queue is full this call
        // waits — backpressure instead of unbounded growth.
        service.submit(Request::from_trace(t))?;
        outstanding += 1;
        drain(service, &mut digests, &mut outstanding, false);
    }
    drain(service, &mut digests, &mut outstanding, true);
    Ok((start.elapsed().as_secs_f64(), digests))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let co_schedule = args.iter().any(|a| a == "--co-schedule");
    let backfill = args.iter().any(|a| a == "--backfill");
    let num_arrays = args
        .iter()
        .position(|a| a == "--arrays")
        .and_then(|i| args.get(i + 1))
        .map_or(Ok(1), |v| v.parse::<usize>())
        .map_err(|e| format!("--arrays expects a number: {e}"))?
        .max(1);
    let devices = args
        .iter()
        .position(|a| a == "--devices")
        .and_then(|i| args.get(i + 1))
        .map_or(Ok(1), |v| v.parse::<usize>())
        .map_err(|e| format!("--devices expects a number: {e}"))?
        .max(1);
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .map(|i| {
            args.get(i + 1)
                .cloned()
                .ok_or("--trace-out expects a file path")
        })
        .transpose()?;
    let chaos_seed = args
        .iter()
        .position(|a| a == "--chaos-seed")
        .map(|i| {
            args.get(i + 1)
                .ok_or("--chaos-seed expects a number")?
                .parse::<u64>()
                .map_err(|e| format!("--chaos-seed expects a number: {e}"))
        })
        .transpose()?;
    let fault_rate = args
        .iter()
        .position(|a| a == "--fault-rate")
        .and_then(|i| args.get(i + 1))
        .map_or(Ok(0.05), |v| v.parse::<f64>())
        .map_err(|e| format!("--fault-rate expects a probability: {e}"))?;
    let scratch_budget = args
        .iter()
        .position(|a| a == "--scratch-budget")
        .map(|i| {
            args.get(i + 1)
                .ok_or("--scratch-budget expects an element count")?
                .parse::<u64>()
                .map_err(|e| format!("--scratch-budget expects an element count: {e}"))
        })
        .transpose()?;
    let streaming = args.iter().any(|a| a == "--streaming") || scratch_budget.is_some();
    let speculative = args.iter().any(|a| a == "--speculative");
    let power_cap_mw = args
        .iter()
        .position(|a| a == "--power-cap")
        .map(|i| {
            args.get(i + 1)
                .ok_or("--power-cap expects milliwatts")?
                .parse::<f64>()
                .map_err(|e| format!("--power-cap expects milliwatts: {e}"))
        })
        .transpose()?;
    let freq_levels = args
        .iter()
        .position(|a| a == "--freq-levels")
        .map(|i| {
            args.get(i + 1)
                .ok_or("--freq-levels expects a level count")?
                .parse::<u8>()
                .map_err(|e| format!("--freq-levels expects a level count: {e}"))
        })
        .transpose()?;

    let mut trace_config = TraceConfig::new(42)
        .with_requests(400)
        .with_repeat_fraction(0.6)
        .with_accurate_fraction(0.04);
    if num_arrays > 1 || devices > 1 {
        // Give the multi-array device something to shard and the
        // co-scheduler something to pack around.
        trace_config = trace_config.with_wide_conv_fraction(0.25);
    }
    if streaming {
        // Give the scratch arena LLM-shaped operands to stream.
        trace_config = trace_config.with_transformer_fraction(0.2);
    }
    let trace = generate(&trace_config);
    let bursts = trace
        .windows(2)
        .filter(|w| w[0].arrival_ns == w[1].arrival_ns)
        .count();
    println!(
        "trace: {} requests, {} templates, {} same-instant (burst) arrivals, {:.1} ms span\n",
        trace.len(),
        trace.iter().map(|t| t.template).max().unwrap_or(0) + 1,
        bursts,
        trace.last().map_or(0.0, |t| t.arrival_ns as f64 * 1e-6),
    );

    let mut serve_config = ServeConfig::new()
        .with_workers(4)
        .with_queue_capacity(64)
        .with_cache_capacity(4096)
        .with_arrays(num_arrays);
    if co_schedule {
        serve_config = serve_config.with_co_scheduling();
    }
    if devices > 1 {
        serve_config = serve_config.with_devices(devices);
    }
    if backfill {
        serve_config = serve_config.with_backfill();
    }
    if trace_out.is_some() {
        serve_config = serve_config.with_tracing();
    }
    if let Some(budget) = scratch_budget {
        serve_config = serve_config.with_scratch_budget(budget);
        println!(
            "streaming: bounded scratch arena, budget {budget} elems (over-budget jobs rejected)\n"
        );
    } else if streaming {
        serve_config = serve_config.with_streaming();
        println!("streaming: bounded scratch arena, unlimited budget\n");
    }
    if let Some(cap_mw) = power_cap_mw {
        serve_config = serve_config.with_power_cap(cap_mw);
        println!(
            "power: fleet-wide cap {cap_mw} mW (admission picks the lowest-energy \
             deadline-feasible ladder level)\n"
        );
    }
    if let Some(levels) = freq_levels {
        let mut governor = GovernorPolicy::edge_default();
        governor.max_level = levels.saturating_sub(1).min(governor.max_level);
        serve_config = serve_config.with_freq_governor(governor);
        println!(
            "dvfs: occupancy-driven governor armed, ladder levels L0..L{}\n",
            governor.max_level
        );
    }
    if speculative {
        serve_config = serve_config.with_speculative();
        println!(
            "speculative: accurate requests answered from the functional backend, \
             verified against the cycle-accurate digest asynchronously\n"
        );
    }
    if let Some(seed) = chaos_seed {
        serve_config = serve_config.with_chaos(FaultPlan::new(seed, fault_rate).with_weights(2, 2));
        println!(
            "chaos: armed with seed {seed}, fault rate {:.1}% per attempt (panics, \
             transient errors, stalls)\n",
            fault_rate * 100.0
        );
    }
    let fleet_scheduling = serve_config.co_scheduling();
    println!(
        "fleet: {devices} device(s) x {num_arrays} PE array(s), scheduling: {}{}\n",
        if fleet_scheduling {
            "cost-aware array slots (co-scheduled)"
        } else {
            "all arrays per job"
        },
        if backfill { " + backfilling" } else { "" }
    );
    let service = StreamingService::start(serve_config)?;

    println!("pass 1 (cold cache):");
    let (cold_s, cold_digests) = replay(&service, &trace)?;
    let cold_stats = service.stats();
    println!("  {}", cold_stats);

    println!("pass 2 (warm cache, same trace):");
    let warm_start_completed = cold_stats.completed;
    let (warm_s, warm_digests) = replay(&service, &trace)?;
    let telemetry = service.telemetry();
    let (final_stats, _) = service.shutdown();
    println!("  {}", final_stats);

    if chaos_seed.is_some() {
        println!(
            "\nrecovery: {} retries, {} degraded answers, {} failed",
            final_stats.retries, final_stats.degraded, final_stats.failed,
        );
        if let Some(fleet) = &final_stats.fleet {
            println!(
                "fleet health: {} quarantines, {} rollbacks, {} probes, {} revivals",
                fleet.quarantines, fleet.rollbacks, fleet.probes, fleet.revivals,
            );
        }
    }

    if streaming {
        println!(
            "\nstreaming: {} jobs streamed, peak scratch {} elems, {} scratch rejections",
            final_stats.streamed, final_stats.peak_scratch_elems, final_stats.rejected_scratch,
        );
    }

    if speculative {
        println!(
            "\nspeculative: {} answered early, {} verified, {} mismatches (must stay 0)",
            final_stats.speculative_answers,
            final_stats.speculative_verified,
            final_stats.speculative_mismatches,
        );
        assert_eq!(
            final_stats.speculative_mismatches, 0,
            "speculative answers must verify against the cycle-accurate digest"
        );
    }

    if power_cap_mw.is_some() || freq_levels.is_some() {
        let residency: Vec<String> = final_stats
            .device
            .level_residency
            .iter()
            .enumerate()
            .map(|(lvl, cycles)| format!("L{lvl}: {cycles}"))
            .collect();
        println!(
            "\ndvfs: {} freq changes, {:.1} nJ planned energy ({:.1} nJ dynamic), \
             array-cycle residency {{{}}}",
            final_stats.device.freq_changes,
            final_stats.energy_pj * 1e-3,
            final_stats.dynamic_energy_pj * 1e-3,
            residency.join(", "),
        );
        if let Some(fleet) = &final_stats.fleet {
            println!(
                "fleet power: peak {:.1} mW, planned {} pJ scheduled",
                fleet.peak_power_mw, fleet.planned_energy_pj,
            );
        }
    }

    if let Some(path) = &trace_out {
        // Workers flush their rings on shutdown, so the export holds
        // the complete merged trace for both passes.
        let export = telemetry
            .export()
            .ok_or("tracing was enabled but no trace was recorded")?;
        std::fs::write(path, export.to_perfetto_json())?;
        println!(
            "\nwrote {} trace events on {} tracks to {path} (open at https://ui.perfetto.dev)",
            export.events.len(),
            export.tracks.len(),
        );
    }

    assert_eq!(
        cold_digests, warm_digests,
        "warm replay must be bit-identical to the cold run"
    );
    let warm_completed = final_stats.completed - warm_start_completed;
    let warm_hits = final_stats.cache.hits - cold_stats.cache.hits;
    println!(
        "cold pass: {:>8.1} req/s   warm pass: {:>8.1} req/s   ({:.1}x, {} of {} warm requests cached)",
        cold_digests.len() as f64 / cold_s,
        warm_digests.len() as f64 / warm_s,
        cold_s / warm_s,
        warm_hits,
        warm_completed,
    );
    println!(
        "\nwarm replay bit-identical to cold run across {} requests",
        warm_digests.len()
    );
    Ok(())
}
