//! Quickstart: run the same convolution on NVDLA's binary convolution
//! core and on Tempus Core, check bit-exactness, and compare cycle
//! counts and hardware cost.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use tempus::arith::IntPrecision;
use tempus::core::{TempusConfig, TempusCore};
use tempus::hwmodel::{Family, SynthModel};
use tempus::nvdla::config::NvdlaConfig;
use tempus::nvdla::conv::{direct_conv, ConvParams};
use tempus::nvdla::cube::{DataCube, KernelSet};
use tempus::nvdla::pipeline::{ConvCore, NvdlaConvCore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small CNN-shaped layer: 8x8x16 feature map, 16 kernels of
    // 3x3x16, stride 1, "same" padding, INT8 operands.
    let features = DataCube::from_fn(8, 8, 16, |x, y, c| {
        ((x as i32 * 37 + y as i32 * 11 + c as i32 * 3) % 255) - 127
    });
    let kernels = KernelSet::from_fn(16, 3, 3, 16, |k, r, s, c| {
        ((k as i32 * 29 + r as i32 * 13 + s as i32 * 7 + c as i32 * 17) % 255) - 127
    });
    let params = ConvParams::unit_stride_same(3);

    // The two cores share the ConvCore trait: Tempus Core is a drop-in
    // replacement for the binary convolution core (paper §III).
    let mut binary = NvdlaConvCore::new(NvdlaConfig::paper_16x16());
    let mut tempus = TempusCore::new(TempusConfig::paper_16x16());

    let golden = direct_conv(&features, &kernels, &params)?;
    let b = binary.convolve(&features, &kernels, &params)?;
    let t = tempus.convolve(&features, &kernels, &params)?;

    assert_eq!(b.output, golden, "binary core must match the golden model");
    assert_eq!(t.output, golden, "tempus core must match the golden model");
    println!(
        "bit-exact: all three outputs agree on {} values",
        golden.len()
    );

    println!("\ncycle counts (simulated @ 250 MHz):");
    println!("  binary CC   : {:>8} cycles", b.stats.cycles);
    println!(
        "  Tempus Core : {:>8} cycles ({:.1} cy avg window, {:.1} avg silent PEs)",
        t.stats.cycles,
        tempus.last_tempus_stats().avg_window_cycles,
        tempus.last_tempus_stats().avg_silent_pes,
    );

    // Hardware cost from the calibrated NanGate45 model.
    let hw = SynthModel::nangate45();
    let ba = hw.pe_array(Family::Binary, IntPrecision::Int8, 16, 16);
    let ta = hw.pe_array(Family::Tub, IntPrecision::Int8, 16, 16);
    println!("\n16x16 array post-synthesis (45nm, paper Fig. 4):");
    println!("  binary: {:.4} mm2, {:.2} mW", ba.area_mm2, ba.power_mw);
    println!("  tub   : {:.4} mm2, {:.2} mW", ta.area_mm2, ta.power_mw);
    println!(
        "  => {:.0}% area and {:.0}% power reduction; {:.1}x iso-area throughput",
        (1.0 - ta.area_mm2 / ba.area_mm2) * 100.0,
        (1.0 - ta.power_mw / ba.power_mw) * 100.0,
        ba.area_mm2 / ta.area_mm2,
    );
    Ok(())
}
