//! CNN weight profiling: regenerate the paper's Fig. 7 / Fig. 8
//! analysis for any zoo model, with ASCII histograms.
//!
//! ```text
//! cargo run --release --example profile_cnn               # MobileNetV2
//! cargo run --release --example profile_cnn -- ResNet50   # any Table I model
//! ```

use tempus::arith::IntPrecision;
use tempus::models::zoo::Model;
use tempus::models::QuantizedModel;
use tempus::profile::{magnitude, sparsity};

fn pick_model(name: &str) -> Option<Model> {
    Model::ALL
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(name))
}

fn main() {
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "MobileNetV2".into());
    let Some(model) = pick_model(&arg) else {
        eprintln!(
            "unknown model '{arg}'; available: {}",
            Model::ALL.map(|m| m.name()).join(", ")
        );
        std::process::exit(1);
    };

    println!("generating synthetic INT8 weights for {model} ...");
    let quantized = QuantizedModel::generate(model, IntPrecision::Int8, 42);
    println!(
        "{} conv layers, {:.1}M weights, sparsity {:.2}% (Table I target pinned)",
        quantized.layers.len(),
        quantized.total_weights() as f64 / 1e6,
        quantized.sparsity_pct()
    );

    let mag = magnitude::profile_model(&quantized, 16, 16);
    println!(
        "\nFig. 7-style magnitude profile ({} tiles of 16x16):",
        mag.total_tiles
    );
    println!(
        "  average tile max {:.1}, average latency {:.1} cycles (worst case 64)",
        mag.average_max_magnitude(),
        mag.average_latency_cycles()
    );
    println!(
        "  latency quartiles: p25 {} / p50 {} / p75 {} cycles",
        mag.latency_quantile(0.25),
        mag.latency_quantile(0.5),
        mag.latency_quantile(0.75)
    );
    // Coarse ASCII histogram over 8-magnitude buckets.
    let mut buckets = [0u64; 16];
    for (m, f) in mag.series() {
        buckets[(m as usize) / 8] += f;
    }
    let max = *buckets.iter().max().unwrap_or(&1);
    println!("  tile-max magnitude distribution (buckets of 8):");
    for (i, &b) in buckets.iter().enumerate() {
        let bar = "#".repeat((b * 50 / max.max(1)) as usize);
        println!("  {:>3}-{:>3} | {bar} {b}", i * 8, i * 8 + 7);
    }

    let sil = sparsity::profile_model(&quantized, 16, 16, false);
    println!(
        "\nFig. 8-style sparsity profile: average {:.1} silent PEs per 256-lane tile\n\
         ({:.1} active PEs doing useful pulses)",
        sil.average_silent_pes(),
        sil.average_active_pes()
    );
}
