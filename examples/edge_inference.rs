//! Edge inference: a MobileNetV2-style inverted-residual block
//! (expand 1×1 → ReLU → depthwise-ish 3×3 → ReLU → project 1×1) runs
//! end-to-end through the NVDLA pipeline — convolution core, SDP
//! requantization and PDP pooling — on both the binary CC and Tempus
//! Core, with the workload energy the paper evaluates in §V-C.
//!
//! ```text
//! cargo run --release --example edge_inference
//! ```

use tempus::arith::IntPrecision;
use tempus::core::{TempusConfig, TempusCore};
use tempus::hwmodel::{Family, SynthModel};
use tempus::nvdla::config::NvdlaConfig;
use tempus::nvdla::conv::ConvParams;
use tempus::nvdla::cube::{DataCube, KernelSet};
use tempus::nvdla::pdp::{self, PoolParams};
use tempus::nvdla::pipeline::{ConvCore, NvdlaConvCore};
use tempus::nvdla::sdp::{self, SdpConfig};

struct Layer {
    name: &'static str,
    kernels: KernelSet,
    params: ConvParams,
}

fn synthetic_kernels(k: usize, r: usize, s: usize, c: usize, seed: i32) -> KernelSet {
    KernelSet::from_fn(k, r, s, c, move |ki, ri, si, ci| {
        let v =
            (ki as i32 * 31 + ri as i32 * 7 + si as i32 * 13 + ci as i32 * 3 + seed) % 255 - 127;
        // Concentrate magnitudes like trained weights (most small).
        (v / 3).clamp(-127, 127)
    })
}

fn run_network(core: &mut dyn ConvCore, input: &DataCube) -> (DataCube, u64) {
    let layers = [
        Layer {
            name: "expand 1x1 (16 -> 32)",
            kernels: synthetic_kernels(32, 1, 1, 16, 5),
            params: ConvParams::valid(),
        },
        Layer {
            name: "spatial 3x3 (32 -> 32)",
            kernels: synthetic_kernels(32, 3, 3, 32, 11),
            params: ConvParams::unit_stride_same(3),
        },
        Layer {
            name: "project 1x1 (32 -> 16)",
            kernels: synthetic_kernels(16, 1, 1, 32, 23),
            params: ConvParams::valid(),
        },
    ];
    let mut x = input.clone();
    let mut total_cycles = 0;
    for (i, layer) in layers.iter().enumerate() {
        let run = core
            .convolve(&x, &layer.kernels, &layer.params)
            .expect("layer shapes are consistent");
        total_cycles += run.stats.cycles;
        // Requantize back to INT8 (bias 0, scale 1/64 via shift) with
        // ReLU on the inner layers, as integer inference pipelines do.
        let relu = i < 2;
        let cfg = SdpConfig {
            bias: vec![0; run.output.c()],
            multiplier: vec![1; run.output.c()],
            shift: 6,
            relu,
            out_precision: IntPrecision::Int8,
        };
        let (requant, stats) = sdp::apply(&run.output, &cfg).expect("sdp config matches");
        println!(
            "  {}: {} cycles, util {:.1}%, sdp rectified {} / saturated {}",
            layer.name,
            run.stats.cycles,
            run.stats.utilization * 100.0,
            stats.rectified,
            stats.saturated
        );
        x = requant;
    }
    // Final 2x2 max pool (PDP).
    let pooled = pdp::apply(&x, &PoolParams::max(2)).expect("pool fits");
    (pooled, total_cycles)
}

fn main() {
    let input = DataCube::from_fn(12, 12, 16, |x, y, c| {
        ((x as i32 * 5 + y as i32 * 9 + c as i32 * 2) % 200) - 100
    });

    println!("binary convolution core:");
    let mut binary = NvdlaConvCore::new(NvdlaConfig::paper_16x16());
    let (out_b, cycles_b) = run_network(&mut binary, &input);

    println!("tempus core:");
    let mut tempus = TempusCore::new(TempusConfig::paper_16x16());
    let (out_t, cycles_t) = run_network(&mut tempus, &input);

    assert_eq!(out_b, out_t, "end-to-end outputs must be bit-exact");
    println!(
        "\nend-to-end bit-exact ({}x{}x{} pooled output)",
        out_b.w(),
        out_b.h(),
        out_b.c()
    );
    println!(
        "total conv cycles: binary {cycles_b} vs tempus {cycles_t} ({:.1}x)",
        cycles_t as f64 / cycles_b as f64
    );

    // Energy at the paper's 250 MHz using the calibrated array powers.
    let hw = SynthModel::nangate45();
    let bp = hw
        .pe_array(Family::Binary, IntPrecision::Int8, 16, 16)
        .power_mw;
    let tp = hw
        .pe_array(Family::Tub, IntPrecision::Int8, 16, 16)
        .power_mw;
    let be = bp * cycles_b as f64 * 4.0;
    let te = tp * cycles_t as f64 * 4.0;
    println!(
        "array energy: binary {:.1} nJ vs tempus {:.1} nJ (gap {:.1}x at INT8; the paper's\n\
         §V-C shows the gap shrinking to ~2.3x at INT4 where windows are ≤4 cycles)",
        be / 1000.0,
        te / 1000.0,
        te / be
    );
}
