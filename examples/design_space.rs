//! Design-space exploration: sweep array shapes and precisions across
//! both datapath families and print an area/power/throughput Pareto
//! table — the kind of scaling study §V-D motivates.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use tempus::arith::IntPrecision;
use tempus::hwmodel::{Family, SynthModel};
use tempus::profile::table::Table;

fn main() {
    let hw = SynthModel::nangate45();
    let mut t = Table::new([
        "Config",
        "Precision",
        "CMAC area (mm2)",
        "PCU area (mm2)",
        "CMAC power (mW)",
        "PCU power (mW)",
        "Iso-area gain",
        "Worst window (cy)",
    ]);
    for precision in [IntPrecision::Int2, IntPrecision::Int4, IntPrecision::Int8] {
        for (k, n) in [(8usize, 8usize), (16, 4), (16, 16), (16, 32), (32, 32)] {
            let cmac = hw.unit(Family::Binary, precision, k, n);
            let pcu = hw.unit(Family::Tub, precision, k, n);
            let barr = hw.pe_array(Family::Binary, precision, k, n);
            let tarr = hw.pe_array(Family::Tub, precision, k, n);
            t.push_row([
                format!("{k}x{n}"),
                precision.to_string(),
                format!("{:.4}", cmac.area_mm2),
                format!("{:.4}", pcu.area_mm2),
                format!("{:.2}", cmac.power_mw),
                format!("{:.2}", pcu.power_mw),
                format!("{:.1}x", barr.area_mm2 / tarr.area_mm2),
                precision.worst_case_tub_cycles().to_string(),
            ]);
        }
    }
    println!("{}", t.to_markdown());
    println!(
        "Reading guide: 'iso-area gain' is how many tub arrays fit in the binary array's\n\
         silicon (throughput at equal area, §V-D); 'worst window' is the multi-cycle\n\
         latency ceiling per atomic op (2^(w-1)/2 cycles under 2s-unary encoding).\n"
    );

    // Multi-array sweep: how the sharded runtime's N-array DLA prices
    // out, including the cross-array partial-sum reduction tree the
    // channel-group fallback needs.
    let mut m = Table::new([
        "Arrays",
        "Family",
        "Total area (mm2)",
        "Total power (mW)",
        "Reduction (mm2)",
        "Reduction share",
        "Area multiple",
    ]);
    for arrays in [1usize, 2, 4, 8] {
        for family in Family::BOTH {
            let r = hw.multi_array(family, IntPrecision::Int8, 16, 16, arrays);
            m.push_row([
                arrays.to_string(),
                format!("{family}"),
                format!("{:.4}", r.total_area_mm2),
                format!("{:.2}", r.total_power_mw),
                format!("{:.5}", r.reduction_area_mm2),
                format!("{:.2}%", r.reduction_overhead() * 100.0),
                format!("{:.2}x", r.area_multiple()),
            ]);
        }
    }
    println!("{}", m.to_markdown());
    println!(
        "Multi-array sweep (16x16 INT8): the sharded runtime partitions one job across\n\
         N arrays (kernel groups preferred, channel groups + this reduction tree as\n\
         fallback); 'area multiple' shows replication stays near-linear because the\n\
         reduction tree adds only a few percent on top of the arrays."
    );
}
