//! Design-space exploration: sweep array shapes and precisions across
//! both datapath families and print an area/power/throughput Pareto
//! table — the kind of scaling study §V-D motivates.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use tempus::arith::IntPrecision;
use tempus::hwmodel::{Family, SynthModel};
use tempus::profile::table::Table;

fn main() {
    let hw = SynthModel::nangate45();
    let mut t = Table::new([
        "Config",
        "Precision",
        "CMAC area (mm2)",
        "PCU area (mm2)",
        "CMAC power (mW)",
        "PCU power (mW)",
        "Iso-area gain",
        "Worst window (cy)",
    ]);
    for precision in [IntPrecision::Int2, IntPrecision::Int4, IntPrecision::Int8] {
        for (k, n) in [(8usize, 8usize), (16, 4), (16, 16), (16, 32), (32, 32)] {
            let cmac = hw.unit(Family::Binary, precision, k, n);
            let pcu = hw.unit(Family::Tub, precision, k, n);
            let barr = hw.pe_array(Family::Binary, precision, k, n);
            let tarr = hw.pe_array(Family::Tub, precision, k, n);
            t.push_row([
                format!("{k}x{n}"),
                precision.to_string(),
                format!("{:.4}", cmac.area_mm2),
                format!("{:.4}", pcu.area_mm2),
                format!("{:.2}", cmac.power_mw),
                format!("{:.2}", pcu.power_mw),
                format!("{:.1}x", barr.area_mm2 / tarr.area_mm2),
                precision.worst_case_tub_cycles().to_string(),
            ]);
        }
    }
    println!("{}", t.to_markdown());
    println!(
        "Reading guide: 'iso-area gain' is how many tub arrays fit in the binary array's\n\
         silicon (throughput at equal area, §V-D); 'worst window' is the multi-cycle\n\
         latency ceiling per atomic op (2^(w-1)/2 cycles under 2s-unary encoding)."
    );
}
