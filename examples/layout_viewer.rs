//! Layout viewer: place-and-route both Table III units and render the
//! Fig. 6 floorplans to SVG (written next to the binary) and ASCII.
//!
//! ```text
//! cargo run --release --example layout_viewer
//! ```

use std::fs;

use tempus::arith::IntPrecision;
use tempus::hwmodel::layout::Layout;
use tempus::hwmodel::{Family, PnrModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pnr = PnrModel::default();
    for (family, file) in [
        (Family::Binary, "layout_cmac_int4_16x4.svg"),
        (Family::Tub, "layout_pcu_int4_16x4.svg"),
    ] {
        let layout = Layout::generate(&pnr, family, IntPrecision::Int4, 16, 4);
        println!(
            "{}: die {:.4} mm2 ({:.0} um edge, {} rows), {:.2} mW post-route",
            family.unit_name(),
            layout.report.die_area_mm2,
            layout.report.die_edge_um,
            layout.report.rows,
            layout.report.total_power_mw
        );
        println!("{}", layout.to_ascii(64));
        fs::write(file, layout.to_svg())?;
        println!("wrote {file}\n");
    }
    println!(
        "Note the Fig. 6 comparison point: at the same 70% floorplan utilization the\n\
         PCU die is less than half the CMAC die for the same 16x4 INT4 array."
    );
    Ok(())
}
