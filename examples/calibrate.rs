//! Calibration maintenance tool: prints the fitted hardware-model
//! constants with their provenance, then re-measures the synthetic
//! weight statistics against their published targets. Run this after
//! touching `tempus_hwmodel::calibration` anchors or
//! `tempus_models::calib` shape parameters.
//!
//! ```text
//! cargo run --release --example calibrate            # quick (bounded models)
//! cargo run --release --example calibrate -- --full  # full 180M-weight zoo
//! ```

use tempus::arith::IntPrecision;
use tempus::hwmodel::SynthModel;
use tempus::models::zoo::Model;
use tempus::models::{calib, QuantizedModel};
use tempus::profile::{magnitude, sparsity};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let max_weights = if full { usize::MAX } else { 1_000_000 };

    let hw = SynthModel::nangate45();
    println!("{}", hw.calibration().provenance());

    println!(
        "model calibration targets vs measured ({}):",
        if full {
            "full zoo"
        } else {
            "bounded to 1M weights/model"
        }
    );
    for model in Model::ALL {
        let targets = calib::for_model(model);
        let quantized =
            QuantizedModel::generate_limited(model, IntPrecision::Int8, 42, max_weights);
        let mag = magnitude::profile_model(&quantized, 16, 16);
        let sil = sparsity::profile_model(&quantized, 16, 16, false);
        let latency_note = match calib::latency_target_cycles(model) {
            Some(target) => format!(
                "latency {:.1} cy (target {target:.0})",
                mag.average_latency_cycles()
            ),
            None => format!(
                "latency {:.1} cy (no published target)",
                mag.average_latency_cycles()
            ),
        };
        println!(
            "  {:<12} beta {:.2}: sparsity {:.2}% (target {:.2}%), {}, silent {:.1}/tile",
            model.name(),
            targets.beta,
            quantized.sparsity_pct(),
            targets.sparsity_pct,
            latency_note,
            sil.average_silent_pes(),
        );
    }
    println!(
        "\nretuning guide: beta moves the tile-max distribution (latency); the sparsity\n\
         target is pinned exactly by construction. See DESIGN.md section 2."
    );
}
