//! Golden snapshot tests for the cycle-accurate backend's statistics.
//!
//! The pinned numbers below were captured from the per-cycle engine
//! before the window-batched execution core landed; they freeze
//! `stats.cycles`, the pulse/gated activity split, window statistics,
//! silent-PE averages, utilization and output digests for fixed-seed
//! conv and GEMM cases. Any drift in the window-batched engine — a
//! cycle of skew, one miscounted gated lane — fails here even if the
//! outputs stay correct, so the batching can never silently diverge
//! from the per-cycle semantics it replaced.

use tempus::arith::IntPrecision;
use tempus::core::gemm::{Matrix, TubGemm};
use tempus::core::{TempusConfig, TempusCore};
use tempus::nvdla::config::NvdlaConfig;
use tempus::nvdla::conv::ConvParams;
use tempus::nvdla::cube::{fnv1a, DataCube, KernelSet};
use tempus::nvdla::pipeline::ConvCore;

fn conv_case(c: usize, k: usize, seed: i32) -> (DataCube, KernelSet) {
    let f = DataCube::from_fn(6, 6, c, move |x, y, ch| {
        ((x as i32 * 31 + y as i32 * 17 + ch as i32 * 7 + seed) % 255) - 127
    });
    let kn = KernelSet::from_fn(k, 3, 3, c, move |k, r, s, ch| {
        ((k as i32 * 13 + r as i32 * 5 + s as i32 * 3 + ch as i32 * 11 + seed) % 255) - 127
    });
    (f, kn)
}

fn cube_digest(cube: &DataCube) -> u64 {
    fnv1a(cube.as_slice().iter().map(|&v| v as u32 as u64))
}

/// One pinned conv case: run, then assert every statistic bit-exactly.
struct ConvGolden {
    cycles: u64,
    atomic_ops: u64,
    stripes: u64,
    total_window_cycles: u64,
    max_window_cycles: u32,
    pe_pulse_cycles: u64,
    pe_gated_cycles: u64,
    /// `avg_silent_pes` pinned as the exact fraction it was computed
    /// from (`total_silent / stripes`), so the comparison is bit-exact.
    total_silent: u64,
    lanes: u64,
    out_digest: u64,
}

fn assert_conv_golden(
    core: &mut TempusCore,
    f: &DataCube,
    k: &KernelSet,
    params: &ConvParams,
    g: &ConvGolden,
    label: &str,
) {
    let run = core.convolve(f, k, params).unwrap();
    let ts = core.last_tempus_stats();
    assert_eq!(run.stats.cycles, g.cycles, "{label}: cycles");
    assert_eq!(run.stats.atomic_ops, g.atomic_ops, "{label}: atomic ops");
    assert_eq!(run.stats.stripes, g.stripes, "{label}: stripes");
    assert_eq!(
        ts.total_window_cycles, g.total_window_cycles,
        "{label}: total window"
    );
    assert_eq!(
        ts.max_window_cycles, g.max_window_cycles,
        "{label}: max window"
    );
    assert_eq!(ts.pe_pulse_cycles, g.pe_pulse_cycles, "{label}: pulses");
    assert_eq!(ts.pe_gated_cycles, g.pe_gated_cycles, "{label}: gated");
    assert_eq!(
        run.stats.gated_cell_cycles, g.pe_gated_cycles,
        "{label}: gated cell cycles"
    );
    assert_eq!(
        ts.avg_window_cycles,
        g.total_window_cycles as f64 / g.atomic_ops as f64,
        "{label}: avg window"
    );
    assert_eq!(
        ts.avg_silent_pes,
        g.total_silent as f64 / g.stripes as f64,
        "{label}: avg silent PEs"
    );
    assert_eq!(
        run.stats.utilization,
        g.pe_pulse_cycles as f64 / (g.cycles * g.lanes) as f64,
        "{label}: utilization"
    );
    assert_eq!(cube_digest(&run.output), g.out_digest, "{label}: output");

    // The per-cycle reference engine must agree on everything too.
    let mut reference = TempusCore::new(*core.tempus_config());
    let r = reference.convolve_reference(f, k, params).unwrap();
    assert_eq!(r.output, run.output, "{label}: reference output");
    assert_eq!(r.stats, run.stats, "{label}: reference stats");
    assert_eq!(
        reference.last_tempus_stats(),
        ts,
        "{label}: reference tempus stats"
    );
}

#[test]
fn golden_conv_nv_small_int8_same_padding() {
    let (f, k) = conv_case(8, 8, 3);
    let mut core = TempusCore::new(TempusConfig::nv_small());
    assert_conv_golden(
        &mut core,
        &f,
        &k,
        &ConvParams::unit_stride_same(3),
        &ConvGolden {
            cycles: 19521,
            atomic_ops: 324,
            stripes: 9,
            total_window_cycles: 18864,
            max_window_cycles: 62,
            pe_pulse_cycles: 435_816,
            pe_gated_cycles: 771_480,
            total_silent: 5,
            lanes: 64,
            out_digest: 0x9857_31af_3a6f_b074,
        },
        "nv_small same",
    );
}

#[test]
fn golden_conv_nv_small_int8_strided_grouped() {
    let (f, k) = conv_case(11, 13, 7);
    let mut core = TempusCore::new(TempusConfig::nv_small());
    assert_conv_golden(
        &mut core,
        &f,
        &k,
        &ConvParams::strided(2, 1),
        &ConvGolden {
            cycles: 18891,
            atomic_ops: 324,
            stripes: 36,
            total_window_cycles: 18207,
            max_window_cycles: 64,
            pe_pulse_cycles: 299_088,
            pe_gated_cycles: 866_160,
            total_silent: 1026,
            lanes: 64,
            out_digest: 0x3022_6153_d618_e109,
        },
        "nv_small strided",
    );
}

#[test]
fn golden_conv_paper16_int8_valid() {
    let (f, k) = conv_case(19, 21, 11);
    let mut core = TempusCore::new(TempusConfig::paper_16x16());
    assert_conv_golden(
        &mut core,
        &f,
        &k,
        &ConvParams::valid(),
        &ConvGolden {
            cycles: 35524,
            atomic_ops: 576,
            stripes: 36,
            total_window_cycles: 34336,
            max_window_cycles: 64,
            pe_pulse_cycles: 1_824_608,
            pe_gated_cycles: 6_965_408,
            total_silent: 5638,
            lanes: 256,
            out_digest: 0x33dd_ca21_44a4_1df0,
        },
        "paper 16x16 valid",
    );
}

#[test]
fn golden_conv_int4_small_array() {
    let f = DataCube::from_fn(5, 5, 4, |x, y, c| ((x + y + c) % 15) as i32 - 7);
    let k = KernelSet::from_fn(3, 3, 3, 4, |a, b, c, d| ((a + b + c + d) % 15) as i32 - 7);
    let mut core = TempusCore::new(
        TempusConfig::new(NvdlaConfig::nv_small().with_array(4, 4))
            .with_precision(IntPrecision::Int4),
    );
    assert_conv_golden(
        &mut core,
        &f,
        &k,
        &ConvParams::valid(),
        &ConvGolden {
            cycles: 396,
            atomic_ops: 81,
            stripes: 9,
            total_window_cycles: 225,
            max_window_cycles: 4,
            pe_pulse_cycles: 1512,
            pe_gated_cycles: 2088,
            total_silent: 46,
            lanes: 16,
            out_digest: 0x9699_b67b_3b73_493c,
        },
        "int4 4x4",
    );
}

fn gemm_case(m: usize, n: usize, p: usize, seed: i32) -> (Matrix, Matrix) {
    let a = Matrix::from_fn(m, n, move |i, j| {
        ((i as i32 * 31 + j as i32 * 17 + seed) % 255) - 127
    });
    let b = Matrix::from_fn(n, p, move |i, j| {
        ((i as i32 * 13 + j as i32 * 41 + seed * 3) % 255) - 127
    });
    (a, b)
}

struct GemmGolden {
    shape: (usize, usize, usize),
    seed: i32,
    grid: (usize, usize),
    cycles: u64,
    steps: u64,
    tiles: u64,
    silent: u64,
    digest: u64,
}

#[test]
fn golden_gemm_cycle_accurate_stats() {
    let cases = [
        GemmGolden {
            shape: (7, 9, 5),
            seed: 1,
            grid: (4, 4),
            cycles: 1620,
            steps: 36,
            tiles: 4,
            silent: 0,
            digest: 0x6512_1a89_c600_695d,
        },
        GemmGolden {
            shape: (10, 6, 11),
            seed: 2,
            grid: (3, 4),
            cycles: 3336,
            steps: 72,
            tiles: 12,
            silent: 10,
            digest: 0x91be_4821_e905_1ff9,
        },
        GemmGolden {
            shape: (16, 16, 16),
            seed: 5,
            grid: (8, 8),
            cycles: 3786,
            steps: 64,
            tiles: 4,
            silent: 32,
            digest: 0x81c4_20d0_de97_f898,
        },
    ];
    for GemmGolden {
        shape: (m, n, p),
        seed,
        grid: (gm, gp),
        cycles,
        steps,
        tiles,
        silent,
        digest,
    } in cases
    {
        let (a, b) = gemm_case(m, n, p, seed);
        let engine = TubGemm::new(gm, gp, IntPrecision::Int8);
        let run = engine.multiply(&a, &b).unwrap();
        let label = format!("gemm {m}x{n}x{p} seed {seed}");
        assert_eq!(run.stats.cycles, cycles, "{label}: cycles");
        assert_eq!(run.stats.steps, steps, "{label}: steps");
        assert_eq!(run.stats.tile_passes, tiles, "{label}: tile passes");
        assert_eq!(run.stats.silent_pe_steps, silent, "{label}: silent");
        assert_eq!(run.output.content_hash(), digest, "{label}: output");

        let reference = engine.multiply_reference(&a, &b).unwrap();
        assert_eq!(reference.output, run.output, "{label}: reference output");
        assert_eq!(reference.stats, run.stats, "{label}: reference stats");
    }
}
