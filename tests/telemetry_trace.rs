//! Telemetry contracts: tracing is observationally free. Turning the
//! dual-clock recorder on must not change a single output bit, a
//! placement, or any deterministic serving statistic — on any
//! backend — and the exported Perfetto trace must cover every
//! pipeline stage on both clock domains.

use std::collections::BTreeMap;
use std::time::Duration;

use proptest::prelude::*;
use tempus::models::traffic::{generate, TraceConfig, TraceRequest};
use tempus::runtime::BackendKind;
use tempus::serve::{Request, ResponseOutcome, ServeConfig, ServeStats, StreamingService};
use tempus::telemetry::perfetto::validate_perfetto;
use tempus::telemetry::{Clock, Stage, TraceExport, VcdSink};

/// The deterministic slice of `ServeStats` — everything that must be
/// bit-equal between a traced and an untraced run. Wall-clock
/// latencies, queue depths and cache-hit-vs-coalesce splits depend on
/// thread timing and are deliberately excluded.
#[derive(Debug, PartialEq)]
struct DeterministicStats {
    submitted: u64,
    completed: u64,
    failed: u64,
    rejected_admission_cap: u64,
    rejected_deadline: u64,
    per_class: Vec<(String, u64, u64, u64, u64)>,
}

impl DeterministicStats {
    fn of(stats: &ServeStats) -> Self {
        DeterministicStats {
            submitted: stats.submitted,
            completed: stats.completed,
            failed: stats.failed,
            rejected_admission_cap: stats.rejected_admission_cap,
            rejected_deadline: stats.rejected_deadline,
            per_class: stats
                .classes
                .iter()
                .map(|c| {
                    (
                        c.class.name().to_string(),
                        c.completed,
                        c.rejected_admission_cap,
                        c.rejected_deadline,
                        c.failed,
                    )
                })
                .collect(),
        }
    }
}

/// Replays `trace` closed-loop through a fresh service, returning the
/// per-job output digests, the final stats, and (when tracing was on)
/// the exported trace. Rejections are tolerated — they must simply be
/// *identical* between runs.
fn replay(
    config: ServeConfig,
    trace: &[TraceRequest],
) -> (BTreeMap<u64, u64>, ServeStats, Option<TraceExport>) {
    let service = StreamingService::start(config).expect("service starts");
    let mut digests = BTreeMap::new();
    let mut outstanding = 0usize;
    let consume = |response: tempus::serve::Response, digests: &mut BTreeMap<u64, u64>| {
        if let ResponseOutcome::Done(result) = response.outcome {
            digests.insert(response.job_id, result.output.digest());
        }
    };
    for t in trace {
        service
            .submit(Request::from_trace(t))
            .expect("blocking submit succeeds");
        outstanding += 1;
        while let Some(response) = service.recv_response(Duration::ZERO) {
            outstanding -= 1;
            consume(response, &mut digests);
        }
    }
    while outstanding > 0 {
        let response = service
            .recv_response(Duration::from_secs(120))
            .expect("responses drain");
        outstanding -= 1;
        consume(response, &mut digests);
    }
    let telemetry = service.telemetry();
    let (stats, _leftover) = service.shutdown();
    (digests, stats, telemetry.export())
}

fn serve_config(accurate_backend: BackendKind, devices: usize) -> ServeConfig {
    let mut config = ServeConfig::new()
        .with_workers(2)
        .with_queue_capacity(32)
        .with_cache_capacity(1024);
    if accurate_backend != BackendKind::FastFunctional {
        config.accurate_backend = accurate_backend;
    }
    if devices > 1 {
        config = config.with_arrays(4).with_devices(devices).with_backfill();
    }
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Tracing on vs. off: bit-identical digests and identical
    /// deterministic stats on every backend.
    #[test]
    fn tracing_is_observationally_free(seed in 0u64..1000, devices in 1usize..=2) {
        for backend in [
            BackendKind::FastFunctional,
            BackendKind::TempusCycleAccurate,
            BackendKind::NvdlaCycleAccurate,
        ] {
            // FastFunctional exercises the all-fast path; the
            // cycle-accurate backends get a real accurate share.
            let accurate = if backend == BackendKind::FastFunctional { 0.0 } else { 0.15 };
            let trace = generate(
                &TraceConfig::new(seed)
                    .with_requests(30)
                    .with_repeat_fraction(0.4)
                    .with_accurate_fraction(accurate),
            );
            let (digests_off, stats_off, export_off) =
                replay(serve_config(backend, devices), &trace);
            let (digests_on, stats_on, export_on) =
                replay(serve_config(backend, devices).with_tracing(), &trace);

            prop_assert!(export_off.is_none(), "untraced run must not record");
            prop_assert!(stats_off.telemetry.is_none());
            let export = export_on.expect("traced run exports");
            prop_assert!(!export.events.is_empty());
            prop_assert!(stats_on.telemetry.is_some());

            prop_assert_eq!(&digests_off, &digests_on, "tracing changed an output digest");
            prop_assert_eq!(
                DeterministicStats::of(&stats_off),
                DeterministicStats::of(&stats_on),
                "tracing changed a deterministic statistic"
            );
        }
    }
}

/// The pinned-seed 4-device trace from the acceptance gate: every
/// pipeline stage present on its clock domain, valid Perfetto shape,
/// and a populated summary in `ServeStats`.
#[test]
fn pinned_seed_four_device_trace_covers_every_stage() {
    let trace = generate(
        &TraceConfig::new(42)
            .with_requests(120)
            .with_repeat_fraction(0.5)
            .with_accurate_fraction(0.03)
            .with_wide_conv_fraction(0.3),
    );
    let (digests, stats, export) = replay(
        serve_config(BackendKind::FastFunctional, 4).with_tracing(),
        &trace,
    );
    assert!(!digests.is_empty());
    let export = export.expect("traced run exports");

    for (stage, clock) in [
        (Stage::Queue, Clock::Wall),
        (Stage::Admit, Clock::Wall),
        (Stage::Execute, Clock::Wall),
        (Stage::Route, Clock::Device),
        (Stage::Grant, Clock::Device),
        (Stage::Shard, Clock::Device),
    ] {
        assert!(
            export.has_stage(stage, clock),
            "stage {} missing from the {} domain",
            stage.name(),
            clock.name()
        );
    }

    // Both clock domains present as tracks: wall worker/dispatcher
    // tracks plus device/array cycle tracks for all 4 devices.
    let device_tracks = export
        .tracks
        .iter()
        .filter(|t| t.clock == Clock::Device)
        .count();
    assert!(
        device_tracks >= 4,
        "expected >=4 device tracks, got {device_tracks}"
    );
    assert!(export.tracks.iter().any(|t| t.clock == Clock::Wall));

    // The Perfetto export passes the shape check (valid traceEvents,
    // per-track monotonic timestamps) and accounts for every event.
    let json = export.to_perfetto_json();
    let accepted = validate_perfetto(&json).expect("perfetto shape check");
    assert_eq!(accepted, export.events.len());

    // The summary rides along in the serve stats.
    let summary = stats.telemetry.expect("summary present");
    assert_eq!(summary.dropped_events, 0);
    assert!(summary
        .stages
        .iter()
        .any(|s| s.stage == Stage::Execute.name()));
    assert!(summary
        .counters
        .iter()
        .any(|&(name, n)| name == "events_recorded" && n > 0));

    // And the same export renders as VCD waveforms for the sim layer.
    let vcd = VcdSink::render_export(&export, "fleet", 4);
    assert!(vcd.contains("$enddefinitions"));
    assert!(vcd.contains("$var"));
}

/// A tiny ring must wrap (dropping oldest events) without corrupting
/// the export or the run itself.
#[test]
fn tiny_ring_drops_oldest_but_stays_well_formed() {
    let trace = generate(
        &TraceConfig::new(7)
            .with_requests(60)
            .with_repeat_fraction(0.3)
            .with_accurate_fraction(0.0),
    );
    let (digests, stats, export) = replay(
        serve_config(BackendKind::FastFunctional, 1)
            .with_trace_ring_capacity(8)
            .with_tracing(),
        &trace,
    );
    assert!(!digests.is_empty());
    let export = export.expect("traced run exports");
    assert!(export.dropped > 0, "a capacity-8 ring must wrap here");
    let summary = stats.telemetry.expect("summary present");
    assert_eq!(summary.dropped_events, export.dropped);
    validate_perfetto(&export.to_perfetto_json()).expect("wrapped trace still validates");
}
