//! Serving-layer contracts: content-addressed cache hits must be
//! bit-identical to cold execution on every backend, the bounded
//! ingestion queue must reject/block rather than grow without bound,
//! and admission control must keep cycle-accurate jobs from starving
//! (or flooding) the service.

use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tempus::arith::IntPrecision;
use tempus::core::gemm::Matrix;
use tempus::models::netbuild;
use tempus::models::zoo::Model;
use tempus::models::QuantizedModel;
use tempus::nvdla::conv::ConvParams;
use tempus::nvdla::cube::{DataCube, KernelSet};
use tempus::runtime::{BackendKind, EngineConfig, InferenceEngine, Job};
use tempus::serve::{
    CacheOutcome, Fidelity, RejectReason, Request, ResponseOutcome, ServeConfig, StreamingService,
    SubmitError,
};

fn random_conv_job(id: u64, seed: u64) -> Job {
    let mut rng = StdRng::seed_from_u64(seed);
    let c = rng.random_range(2usize..=6);
    let k = rng.random_range(2usize..=6);
    let w = rng.random_range(4usize..=6);
    let features = DataCube::from_fn(w, w, c, |_, _, _| rng.random_range(-128..=127));
    let kernels = KernelSet::from_fn(k, 3, 3, c, |_, _, _, _| rng.random_range(-128..=127));
    Job::conv(
        id,
        format!("conv-{id}"),
        features,
        kernels,
        ConvParams::valid(),
    )
}

fn random_gemm_job(id: u64, seed: u64) -> Job {
    let mut rng = StdRng::seed_from_u64(seed);
    let (m, n, p) = (
        rng.random_range(2usize..=8),
        rng.random_range(2usize..=8),
        rng.random_range(2usize..=8),
    );
    let a = Matrix::from_fn(m, n, |_, _| rng.random_range(-128..=127));
    let b = Matrix::from_fn(n, p, |_, _| rng.random_range(-128..=127));
    Job::gemm(id, format!("gemm-{id}"), a, b)
}

/// Runs `job` twice through a fresh service configured so that the
/// requested fidelity lands on `kind`; returns
/// `(cold result, hit result)` after asserting the second response
/// was served from the cache.
fn cold_then_hit(
    job: &Job,
    kind: BackendKind,
) -> (tempus::serve::ServedResult, tempus::serve::ServedResult) {
    let mut config = ServeConfig::new().with_workers(1);
    let fidelity = match kind {
        BackendKind::FastFunctional => Fidelity::Fast,
        other => {
            config.accurate_backend = other;
            Fidelity::Accurate
        }
    };
    let service = StreamingService::start(config).expect("service starts");
    let mut results = Vec::new();
    for pass in 0..2u64 {
        let mut j = job.clone();
        j.id = pass;
        service
            .submit(Request {
                job: j,
                fidelity,
                deadline_cycles: None,
            })
            .expect("submit");
        let response = service
            .recv_response(Duration::from_secs(60))
            .expect("response arrives");
        match response.outcome {
            ResponseOutcome::Done(result) => results.push(result),
            other => panic!("pass {pass} did not complete: {other:?}"),
        }
    }
    let (stats, _) = service.shutdown();
    assert_eq!(stats.completed, 2);
    let hit = results.pop().unwrap();
    let cold = results.pop().unwrap();
    assert_eq!(cold.cache, CacheOutcome::Miss, "first pass must execute");
    assert_eq!(hit.cache, CacheOutcome::Hit, "second pass must hit");
    (cold, hit)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Acceptance property: for random conv and GEMM jobs, on every
    /// backend, a cache hit returns bit-identical output and
    /// identical modelled cycles to a cold execution — both compared
    /// against an independent run through the batch engine.
    #[test]
    fn cache_hits_bit_identical_to_cold_execution_on_all_backends(seed in any::<u64>()) {
        for (idx, job) in [random_conv_job(0, seed), random_gemm_job(0, seed ^ 0xABCD)]
            .into_iter()
            .enumerate()
        {
            for kind in BackendKind::ALL {
                // Independent cold reference through the batch engine.
                let engine = InferenceEngine::new(
                    EngineConfig::new(kind).with_workers(1),
                ).unwrap();
                let reference = engine.run_batch(std::slice::from_ref(&job)).unwrap();
                let expected = &reference.results[0];

                let (cold, hit) = cold_then_hit(&job, kind);
                prop_assert_eq!(
                    cold.output.digest(), expected.output.digest(),
                    "job {} cold output must match the batch engine on {:?}", idx, kind
                );
                prop_assert_eq!(&hit.output, &cold.output,
                    "job {} hit must be bit-identical on {:?}", idx, kind);
                prop_assert_eq!(hit.sim_cycles, expected.sim_cycles);
                prop_assert_eq!(cold.sim_cycles, expected.sim_cycles);
            }
        }
    }
}

/// Same contract for whole-network jobs (SDP requantization chains),
/// on all three backends.
#[test]
fn cached_network_jobs_replay_bit_identically() {
    let quantized =
        QuantizedModel::generate_limited(Model::ResNet18, IntPrecision::Int8, 5, 200_000);
    let layers = netbuild::network_prefix(&quantized, 1, 64);
    let channels = netbuild::input_channels(&layers).expect("dense prefix");
    let input = netbuild::input_cube(5, 5, channels, IntPrecision::Int8, 5);
    let job = Job::network(0, "net", input, layers);
    let mut digests = Vec::new();
    for kind in BackendKind::ALL {
        let (cold, hit) = cold_then_hit(&job, kind);
        assert_eq!(hit.output, cold.output, "{kind:?}");
        assert_eq!(hit.sim_cycles, cold.sim_cycles, "{kind:?}");
        digests.push(cold.output.digest());
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "backends must agree on outputs: {digests:?}"
    );
}

/// Job ids are caller-assigned and may collide across fidelities:
/// outcomes must be matched back by (id, backend), never by id alone
/// — a fast result answering an accurate request would poison the
/// cache and corrupt the admission counters.
#[test]
fn duplicate_ids_across_fidelities_resolve_to_their_own_results() {
    let service = StreamingService::start(ServeConfig::new().with_workers(2)).expect("starts");
    let accurate_job = random_conv_job(7, 1234);
    let fast_job = random_gemm_job(7, 5678); // same id, different payload
    let expect = |job: &Job, kind: BackendKind| {
        let engine = InferenceEngine::new(EngineConfig::new(kind).with_workers(1)).unwrap();
        engine.run_batch(std::slice::from_ref(job)).unwrap().results[0]
            .output
            .digest()
    };
    let accurate_digest = expect(&accurate_job, BackendKind::TempusCycleAccurate);
    let fast_digest = expect(&fast_job, BackendKind::FastFunctional);
    assert_ne!(accurate_digest, fast_digest);

    service.submit(Request::accurate(accurate_job)).unwrap();
    service.submit(Request::fast(fast_job)).unwrap();
    for _ in 0..2 {
        let response = service
            .recv_response(Duration::from_secs(60))
            .expect("response arrives");
        assert_eq!(response.job_id, 7);
        let result = match response.outcome {
            ResponseOutcome::Done(result) => result,
            other => panic!("must complete: {other:?}"),
        };
        let expected = match response.class.fidelity {
            Fidelity::Fast => fast_digest,
            Fidelity::Accurate => accurate_digest,
        };
        assert_eq!(
            result.output.digest(),
            expected,
            "{:?} response must carry its own fidelity's output",
            response.class.fidelity
        );
    }
    let (stats, _) = service.shutdown();
    assert_eq!(stats.completed, 2);
}

/// Backpressure: with the worker pinned by a slow cycle-accurate job
/// and the in-flight cap at 1, the bounded ingestion queue must fill
/// and refuse (`try_submit` → `QueueFull`) instead of growing without
/// bound — and every accepted job must still complete.
#[test]
fn bounded_queue_refuses_instead_of_growing() {
    const QUEUE_CAPACITY: usize = 4;
    let mut config = ServeConfig::new()
        .with_workers(1)
        .with_queue_capacity(QUEUE_CAPACITY);
    config.max_in_flight = 1;
    config.micro_batch = 2;
    let service = StreamingService::start(config).expect("service starts");

    // A genuinely slow job: one cycle-accurate network layer.
    let quantized =
        QuantizedModel::generate_limited(Model::ResNet18, IntPrecision::Int8, 9, 200_000);
    let layers = netbuild::network_prefix(&quantized, 1, 64);
    let channels = netbuild::input_channels(&layers).expect("dense prefix");
    let input = netbuild::input_cube(8, 8, channels, IntPrecision::Int8, 9);
    service
        .submit(Request::accurate(Job::network(0, "slow", input, layers)))
        .expect("slow job accepted");

    // Flood the fast path while the worker is pinned. The queue holds
    // at most QUEUE_CAPACITY requests, so a Full refusal must appear
    // long before 3 * QUEUE_CAPACITY accepts.
    let mut accepted = 1u64;
    let mut saw_full = false;
    for i in 1..=(3 * QUEUE_CAPACITY as u64) {
        match service.try_submit(Request::fast(random_gemm_job(i, i))) {
            Ok(()) => accepted += 1,
            Err(SubmitError::QueueFull(_)) => {
                saw_full = true;
                break;
            }
            Err(other) => panic!("unexpected submit error: {other}"),
        }
    }
    assert!(
        saw_full,
        "queue must refuse once full ({accepted} accepted)"
    );

    // Every accepted request still completes, and the queue never
    // exceeded its bound.
    let mut completed = 0u64;
    while completed < accepted {
        let response = service
            .recv_response(Duration::from_secs(120))
            .expect("accepted jobs drain");
        assert!(
            matches!(response.outcome, ResponseOutcome::Done(_)),
            "job {} must complete",
            response.job_id
        );
        completed += 1;
    }
    let (stats, _) = service.shutdown();
    assert_eq!(stats.completed, accepted);
    assert_eq!(stats.rejected, 0);
    assert!(
        stats.max_queue_depth <= QUEUE_CAPACITY,
        "queue depth {} exceeded capacity {QUEUE_CAPACITY}",
        stats.max_queue_depth
    );
}

/// In-flight coalescing: identical content keys submitted while the
/// first execution is running collapse onto that one execution —
/// exactly one cold run, everyone sharing its bit-identical result,
/// and the `coalesced` counter accounting for the riders.
#[test]
fn identical_inflight_requests_coalesce_onto_one_execution() {
    const DUPLICATES: u64 = 6;
    let features = DataCube::from_fn(8, 8, 8, |x, y, c| {
        ((x as i32 * 31 + y as i32 * 17 + c as i32 * 7) % 255) - 127
    });
    let kernels = KernelSet::from_fn(8, 3, 3, 8, |k, r, s, c| {
        ((k as i32 * 13 + r as i32 * 5 + s as i32 * 3 + c as i32 * 11) % 255) - 127
    });
    let job = Job::conv(0, "dup", features, kernels, ConvParams::valid());

    // Plenty of admission headroom: coalescing, not admission control,
    // must be what prevents duplicate executions.
    let service = StreamingService::start(ServeConfig::new().with_workers(2).with_admission(4, 8))
        .expect("service starts");
    for id in 0..DUPLICATES {
        let mut j = job.clone();
        j.id = id;
        service.submit(Request::accurate(j)).expect("submit");
    }

    let mut digests = Vec::new();
    let (mut misses, mut hits, mut coalesced) = (0u64, 0u64, 0u64);
    for _ in 0..DUPLICATES {
        let response = service
            .recv_response(Duration::from_secs(120))
            .expect("responses drain");
        match response.outcome {
            ResponseOutcome::Done(result) => {
                digests.push(result.output.digest());
                match result.cache {
                    CacheOutcome::Miss => misses += 1,
                    CacheOutcome::Hit => hits += 1,
                    CacheOutcome::Coalesced => coalesced += 1,
                }
            }
            other => panic!("request did not complete: {other:?}"),
        }
    }
    let (stats, _) = service.shutdown();
    assert_eq!(misses, 1, "exactly one cold execution");
    assert_eq!(misses + hits + coalesced, DUPLICATES);
    assert!(
        coalesced >= 1,
        "duplicates submitted during a multi-ms accurate run must coalesce"
    );
    assert_eq!(stats.coalesced, coalesced);
    assert!(digests.windows(2).all(|w| w[0] == w[1]), "shared result");
}

/// Admission control: cycle-accurate jobs beyond the in-flight cap
/// park in the bounded deferred queue; past that bound they are
/// rejected with `AccurateAdmissionFull` — while fast-path jobs keep
/// completing throughout.
#[test]
fn accurate_overflow_is_deferred_then_rejected_without_starving_fast_path() {
    let mut config = ServeConfig::new()
        .with_workers(2)
        .with_queue_capacity(64)
        .with_admission(1, 2);
    config.max_in_flight = 4;
    let service = StreamingService::start(config).expect("service starts");

    // 8 distinct slow accurate jobs: 1 runs, 2 defer, the rest must
    // be rejected as the deferred queue overflows.
    for i in 0..8u64 {
        service
            .submit(Request::accurate(random_conv_job(i, 7_000 + i)))
            .expect("accurate submit");
    }
    // Fast jobs submitted after the accurate flood must still finish.
    for i in 100..120u64 {
        service
            .submit(Request::fast(random_gemm_job(i, i)))
            .expect("fast submit");
    }

    let mut fast_done = 0;
    let mut accurate_done = 0;
    let mut rejected = 0;
    for _ in 0..28 {
        let response = service
            .recv_response(Duration::from_secs(120))
            .expect("responses drain");
        match response.outcome {
            ResponseOutcome::Done(_) if response.class.fidelity == Fidelity::Fast => fast_done += 1,
            ResponseOutcome::Done(_) => accurate_done += 1,
            ResponseOutcome::Rejected(RejectReason::AccurateAdmissionFull) => rejected += 1,
            ResponseOutcome::Rejected(reason) => panic!("unexpected rejection: {reason:?}"),
            ResponseOutcome::Failed(error) => panic!("unexpected failure: {error}"),
        }
    }
    let (stats, _) = service.shutdown();
    assert_eq!(fast_done, 20, "fast path must not starve");
    assert_eq!(accurate_done + rejected, 8);
    assert!(
        rejected >= 5,
        "deferred bound of 2 (+1 in flight) must reject the overflow, got {rejected}"
    );
    assert_eq!(stats.rejected, rejected);
    assert!(stats.max_deferred <= 2);
}

/// A kernel-rich conv the cost-aware planner shards across several
/// arrays (32 kernels = 4 groups on the small core).
fn wide_conv_job(id: u64, seed: u64) -> Job {
    let mut rng = StdRng::seed_from_u64(seed);
    let features = DataCube::from_fn(5, 5, 8, |_, _, _| rng.random_range(-128..=127));
    let kernels = KernelSet::from_fn(32, 3, 3, 8, |_, _, _, _| rng.random_range(-128..=127));
    Job::conv(
        id,
        format!("wide-{id}"),
        features,
        kernels,
        ConvParams::valid(),
    )
}

/// Co-scheduled serving is bit-identical to the all-arrays service on
/// mixed wide+narrow, mixed-fidelity traffic: the array-slot ledger
/// may grant each job fewer arrays, but every served output matches,
/// and the device account shows real packing (narrower grants than
/// the full core, non-trivial occupancy).
#[test]
fn co_scheduled_serving_is_bit_identical_to_all_arrays() {
    let run = |co: bool| {
        let mut config = ServeConfig::new()
            .with_engine(
                EngineConfig::new(BackendKind::FastFunctional)
                    .with_cores(
                        tempus::core::TempusConfig::nv_small(),
                        tempus::nvdla::config::NvdlaConfig::nv_small(),
                    )
                    .with_workers(2)
                    .with_arrays(4),
            )
            .with_admission(2, 8);
        if co {
            config = config.with_co_scheduling();
        }
        let service = StreamingService::start(config).expect("service starts");
        let mut submitted = 0u64;
        for i in 0..12u64 {
            let job = match i % 3 {
                0 => wide_conv_job(i, 9_000 + i),
                1 => random_conv_job(i, 9_100 + i),
                _ => random_gemm_job(i, 9_200 + i),
            };
            let request = if i % 4 == 0 {
                Request::accurate(job)
            } else {
                Request::fast(job)
            };
            service.submit(request).expect("submit");
            submitted += 1;
        }
        let mut digests = std::collections::BTreeMap::new();
        for _ in 0..submitted {
            let response = service
                .recv_response(Duration::from_secs(120))
                .expect("responses drain");
            match response.outcome {
                ResponseOutcome::Done(result) => {
                    if co {
                        assert!(result.arrays_granted >= 1 && result.arrays_granted <= 4);
                    } else {
                        assert_eq!(result.arrays_granted, 4, "all-arrays grants the core");
                    }
                    digests.insert(response.job_id, result.output.digest());
                }
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
        let (stats, _) = service.shutdown();
        (digests, stats)
    };
    let (off_digests, off_stats) = run(false);
    let (on_digests, on_stats) = run(true);
    assert_eq!(
        off_digests, on_digests,
        "co-scheduling must not change any served output"
    );
    assert_eq!(off_stats.device.num_arrays, 4);
    assert!((off_stats.device.avg_arrays_granted() - 4.0).abs() < 1e-12);
    assert!(
        on_stats.device.avg_arrays_granted() < 4.0,
        "cost-aware grants must be narrower than the whole core"
    );
    assert!(on_stats.device.occupancy() > 0.0 && on_stats.device.occupancy() <= 1.0);
    // Wide convs really sharded: some class saw multi-array requests.
    assert!(
        on_stats.classes.iter().any(|c| c.arrays_granted > 1.0),
        "the wide convs should have been granted multiple arrays"
    );
}
