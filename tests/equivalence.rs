//! Cross-crate functional equivalence: Tempus Core ≡ NVDLA CC ≡ golden
//! direct convolution ≡ im2col+GEMM, bit-exact, across shapes,
//! parameters and precisions — the paper's "maintaining the
//! computational accuracy of binary-based arithmetic designs".

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tempus::arith::IntPrecision;
use tempus::core::{TempusConfig, TempusCore};
use tempus::nvdla::config::NvdlaConfig;
use tempus::nvdla::conv::{direct_conv, im2col_conv, ConvParams};
use tempus::nvdla::cube::{DataCube, KernelSet};
use tempus::nvdla::pipeline::{ConvCore, NvdlaConvCore};

fn random_case(
    seed: u64,
    w: usize,
    h: usize,
    c: usize,
    k: usize,
    ksize: usize,
    precision: IntPrecision,
) -> (DataCube, KernelSet) {
    let mut rng = StdRng::seed_from_u64(seed);
    let lo = precision.min_value();
    let hi = precision.max_value();
    let features = DataCube::from_fn(w, h, c, |_, _, _| rng.random_range(lo..=hi));
    let kernels = KernelSet::from_fn(k, ksize, ksize, c, |_, _, _, _| rng.random_range(lo..=hi));
    (features, kernels)
}

fn assert_all_equal(
    features: &DataCube,
    kernels: &KernelSet,
    params: &ConvParams,
    precision: IntPrecision,
    label: &str,
) {
    let golden = direct_conv(features, kernels, params).expect("golden");
    let lowered = im2col_conv(features, kernels, params).expect("im2col");
    assert_eq!(golden, lowered, "{label}: im2col disagrees");

    let base = NvdlaConfig::nv_small().with_precision(precision);
    let mut binary = NvdlaConvCore::new(base);
    let b = binary.convolve(features, kernels, params).expect("binary");
    assert_eq!(b.output, golden, "{label}: binary CC disagrees");

    let mut tempus = TempusCore::new(TempusConfig::new(base));
    let t = tempus.convolve(features, kernels, params).expect("tempus");
    assert_eq!(t.output, golden, "{label}: tempus core disagrees");
}

#[test]
fn equivalence_matrix_int8() {
    let cases = [
        (5, 5, 3, 2, 1, ConvParams::valid()),
        (6, 6, 8, 8, 3, ConvParams::valid()),
        (7, 5, 11, 13, 3, ConvParams::unit_stride_same(3)),
        (9, 9, 16, 4, 5, ConvParams::strided(2, 2)),
        (
            8,
            8,
            4,
            7,
            3,
            ConvParams {
                dilation_x: 2,
                dilation_y: 2,
                pad_x: 2,
                pad_y: 2,
                ..ConvParams::valid()
            },
        ),
    ];
    for (i, (w, h, c, k, ks, params)) in cases.into_iter().enumerate() {
        let (f, kn) = random_case(100 + i as u64, w, h, c, k, ks, IntPrecision::Int8);
        assert_all_equal(&f, &kn, &params, IntPrecision::Int8, &format!("case {i}"));
    }
}

#[test]
fn equivalence_matrix_int4_and_int2() {
    for precision in [IntPrecision::Int4, IntPrecision::Int2] {
        let (f, k) = random_case(7, 6, 6, 8, 6, 3, precision);
        assert_all_equal(
            &f,
            &k,
            &ConvParams::unit_stride_same(3),
            precision,
            &format!("{precision}"),
        );
    }
}

#[test]
fn extreme_value_operands() {
    // All operands at the most negative value: worst-case magnitudes,
    // worst-case tub windows, largest accumulations.
    let p = IntPrecision::Int8;
    let features = DataCube::from_fn(4, 4, 8, |_, _, _| p.min_value());
    let kernels = KernelSet::from_fn(4, 3, 3, 8, |_, _, _, _| p.min_value());
    assert_all_equal(
        &features,
        &kernels,
        &ConvParams::unit_stride_same(3),
        p,
        "extremes",
    );
}

#[test]
fn zero_weights_produce_zero_output_and_minimal_cycles() {
    let features = DataCube::from_fn(6, 6, 8, |x, y, c| ((x + y + c) % 250) as i32 - 125);
    let kernels = KernelSet::zeros(8, 3, 3, 8);
    let params = ConvParams::valid();
    let mut tempus = TempusCore::new(TempusConfig::nv_small());
    let run = tempus.convolve(&features, &kernels, &params).expect("runs");
    assert!(run.output.as_slice().iter().all(|&v| v == 0));
    // All-silent stripes take the minimum window (1 compute cycle).
    let mut nonzero = KernelSet::zeros(8, 3, 3, 8);
    nonzero.set(0, 0, 0, 0, 127);
    let mut tempus2 = TempusCore::new(TempusConfig::nv_small());
    let run2 = tempus2
        .convolve(&features, &nonzero, &params)
        .expect("runs");
    assert!(run2.stats.cycles > run.stats.cycles);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tempus_equals_binary_on_random_convolutions(
        seed in any::<u64>(),
        w in 3usize..8,
        h in 3usize..8,
        c in 1usize..12,
        k in 1usize..10,
        ksize in prop_oneof![Just(1usize), Just(3usize)],
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        let (f, kn) = random_case(seed, w, h, c, k, ksize, IntPrecision::Int8);
        let params = ConvParams::strided(stride, pad);
        if params.output_dims(w, h, ksize, ksize).is_err() {
            return Ok(()); // empty output; nothing to compare
        }
        let golden = direct_conv(&f, &kn, &params).expect("golden");
        let mut tempus = TempusCore::new(TempusConfig::nv_small());
        let t = tempus.convolve(&f, &kn, &params).expect("tempus");
        prop_assert_eq!(t.output, golden);
    }
}

#[test]
fn grouped_and_depthwise_equivalence_across_cores() {
    use tempus::nvdla::grouped::{convolve_grouped, direct_conv_grouped};

    let params = ConvParams::unit_stride_same(3);
    for (c, k, kc, groups, label) in [
        (16, 8, 4, 4, "cardinality-4"),
        (8, 8, 1, 8, "depthwise"),
        (12, 6, 6, 2, "two-group"),
    ] {
        let (features, _) = random_case(50, 6, 6, c, 1, 3, IntPrecision::Int8);
        let mut rng_kernels = KernelSet::zeros(k, 3, 3, kc);
        for ki in 0..k {
            for r in 0..3 {
                for s in 0..3 {
                    for ch in 0..kc {
                        let v = ((ki * 31 + r * 7 + s * 13 + ch * 3) % 200) as i32 - 100;
                        rng_kernels.set(ki, r, s, ch, v);
                    }
                }
            }
        }
        let golden =
            direct_conv_grouped(&features, &rng_kernels, &params, groups).expect("golden grouped");
        let mut binary = NvdlaConvCore::new(NvdlaConfig::nv_small());
        let mut tempus = TempusCore::new(TempusConfig::nv_small());
        let b = convolve_grouped(&mut binary, &features, &rng_kernels, &params, groups)
            .expect("binary grouped");
        let t = convolve_grouped(&mut tempus, &features, &rng_kernels, &params, groups)
            .expect("tempus grouped");
        assert_eq!(b.output, golden, "{label}: binary");
        assert_eq!(t.output, golden, "{label}: tempus");
        assert!(t.stats.cycles > b.stats.cycles, "{label}: latency trade");
    }
}
