//! Array-slot scheduling equivalence: a job granted `g` arrays by the
//! co-scheduler is **bit-identical** — outputs, cycles, shard
//! accounting — to PR 4's path configured with `g` arrays, across all
//! three backends; batch-level digests are invariant to the granting
//! policy; and pinned goldens freeze the budget planner's width
//! decisions and the ledger's packing for a fixed seed.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tempus::core::shard::WidenPolicy;
use tempus::core::TempusConfig;
use tempus::nvdla::config::NvdlaConfig;
use tempus::nvdla::conv::ConvParams;
use tempus::nvdla::cube::{DataCube, KernelSet};
use tempus::runtime::{
    ArrayLedger, ArrayPlanner, BackendKind, EngineConfig, FunctionalBackend, InferenceBackend,
    InferenceEngine, Job, NvdlaBackend, TempusBackend,
};

fn random_conv_job(seed: u64, w: usize, c: usize, k: usize) -> Job {
    let mut rng = StdRng::seed_from_u64(seed);
    let features = DataCube::from_fn(w, w, c, |_, _, _| rng.random_range(-128..=127));
    let kernels = KernelSet::from_fn(k, 3, 3, c, |_, _, _, _| rng.random_range(-128..=127));
    Job::conv(0, "conv", features, kernels, ConvParams::valid())
}

fn random_gemm_job(seed: u64, m: usize, n: usize, p: usize) -> Job {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = tempus::core::gemm::Matrix::from_fn(m, n, |_, _| rng.random_range(-128..=127));
    let b = tempus::core::gemm::Matrix::from_fn(n, p, |_, _| rng.random_range(-128..=127));
    Job::gemm(0, "gemm", a, b)
}

/// `execute_on(job, g)` on a backend configured for `configured`
/// arrays must be bit-identical to `execute(job)` on a backend
/// configured for `g` arrays — the contract that makes a granted
/// width fully determine the result, for every backend.
fn assert_grant_equivalence(job: &Job, configured: usize) {
    for granted in 1..=configured {
        let runs = [
            (
                TempusBackend::new(TempusConfig::nv_small(), (8, 8))
                    .with_arrays(configured)
                    .execute_on(job, granted)
                    .unwrap(),
                TempusBackend::new(TempusConfig::nv_small(), (8, 8))
                    .with_arrays(granted)
                    .execute(job)
                    .unwrap(),
            ),
            (
                FunctionalBackend::new(TempusConfig::nv_small(), (8, 8))
                    .with_arrays(configured)
                    .execute_on(job, granted)
                    .unwrap(),
                FunctionalBackend::new(TempusConfig::nv_small(), (8, 8))
                    .with_arrays(granted)
                    .execute(job)
                    .unwrap(),
            ),
            (
                NvdlaBackend::new(NvdlaConfig::nv_small(), (8, 8))
                    .with_arrays(configured)
                    .execute_on(job, granted)
                    .unwrap(),
                NvdlaBackend::new(NvdlaConfig::nv_small(), (8, 8))
                    .with_arrays(granted)
                    .execute(job)
                    .unwrap(),
            ),
        ];
        for (on, full) in runs {
            assert_eq!(on.output, full.output, "granted={granted}");
            assert_eq!(on.sim_cycles, full.sim_cycles, "granted={granted}");
            assert_eq!(
                on.total_array_cycles, full.total_array_cycles,
                "granted={granted}"
            );
            assert_eq!(on.shards, full.shards, "granted={granted}");
            assert_eq!(
                on.shard_utilization.to_bits(),
                full.shard_utilization.to_bits(),
                "granted={granted}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The grant-equivalence contract over random conv shapes
    /// (kernel-rich, channel-rich and tiny cases all land here).
    #[test]
    fn granted_convs_match_configured_backends(
        seed in any::<u64>(),
        w in 3usize..6,
        c in 1usize..24,
        k in 1usize..24,
    ) {
        assert_grant_equivalence(&random_conv_job(seed, w, c, k), 4);
    }

    /// The same contract over random GEMM shapes.
    #[test]
    fn granted_gemms_match_configured_backends(
        seed in any::<u64>(),
        m in 1usize..18,
        n in 1usize..8,
        p in 1usize..18,
    ) {
        assert_grant_equivalence(&random_gemm_job(seed, m, n, p), 4);
    }
}

fn mixed_batch(n: u64) -> Vec<Job> {
    (0..n)
        .map(|i| {
            if i % 3 == 0 {
                // Kernel-rich: the budget planner widens these.
                Job {
                    id: i,
                    ..random_conv_job(i ^ 0xA5, 5, 8, 32)
                }
            } else if i % 3 == 1 {
                Job {
                    id: i,
                    ..random_conv_job(i ^ 0x5A, 5, 6, 4)
                }
            } else {
                Job {
                    id: i,
                    ..random_gemm_job(i ^ 0x3C, 9, 6, 9)
                }
            }
        })
        .collect()
}

/// Batch digests are invariant to the array-granting policy: the
/// cost-aware co-scheduler may grant each job fewer arrays, but every
/// output stays bit-identical to the all-arrays run (and to the
/// single-array engine, by PR 4's theorem).
#[test]
fn batch_digests_are_policy_invariant() {
    let jobs = mixed_batch(18);
    let base = EngineConfig::new(BackendKind::FastFunctional)
        .with_cores(TempusConfig::nv_small(), NvdlaConfig::nv_small())
        .with_workers(3)
        .with_arrays(8);
    let all = InferenceEngine::new(base.clone()).unwrap();
    let co = InferenceEngine::new(base.with_co_scheduling()).unwrap();
    let all_report = all.run_batch(&jobs).unwrap();
    let co_report = co.run_batch(&jobs).unwrap();
    assert_eq!(all_report.output_digest(), co_report.output_digest());
    // Determinism: the co-scheduled batch reproduces itself exactly.
    let co_again = co.run_batch(&jobs).unwrap();
    assert_eq!(co_report.output_digest(), co_again.output_digest());
    assert_eq!(
        co_report.aggregate.device.makespan_cycles,
        co_again.aggregate.device.makespan_cycles
    );
    assert_eq!(
        co_report.aggregate.total_array_wait_cycles,
        co_again.aggregate.total_array_wait_cycles
    );
    // The packed device finishes the batch no later than the serial
    // whole-core account, and grants stay within the pool.
    assert!(
        co_report.aggregate.device.makespan_cycles <= all_report.aggregate.device.makespan_cycles
    );
    assert!(co_report.aggregate.avg_arrays_granted <= 8.0);
    for r in &co_report.results {
        assert!(r.arrays_granted >= 1 && r.arrays_granted <= 8);
        assert!(r.arrays_granted <= r.arrays_requested || r.arrays_requested == 0);
        assert!(r.shards <= r.arrays_granted);
    }
    // All-arrays results keep PR 4 semantics: full-width grants, no
    // array waits.
    for r in &all_report.results {
        assert_eq!(r.arrays_granted, 8);
        assert_eq!(r.array_wait_cycles, 0);
    }
}

/// Golden widths and packing for a pinned seed: the budget planner's
/// chosen widths and the ledger's makespan must stay exactly what
/// they are today. If an intentional policy change breaks this,
/// re-pin after verifying the equivalence properties above still
/// pass.
#[test]
fn golden_budget_plans_and_packing_for_pinned_seed() {
    let config = EngineConfig::new(BackendKind::FastFunctional)
        .with_cores(TempusConfig::nv_small(), NvdlaConfig::nv_small())
        .with_arrays(8);
    let mut planner = ArrayPlanner::new(&config, WidenPolicy::edge_default());
    let mut ledger = ArrayLedger::new(8);
    let jobs = [
        random_conv_job(0xC0FFEE, 5, 8, 32), // 4 kernel groups: wide
        random_gemm_job(0xC0FFEE, 9, 6, 9),  // small grid: narrow
        random_conv_job(0xC0FFEE, 5, 6, 4),  // single group: narrow
        random_conv_job(0xC0FFEE ^ 1, 5, 8, 32),
    ];
    let mut rows = Vec::new();
    for job in &jobs {
        let plan = planner.plan(job).unwrap();
        let placement = ledger.place(&plan, 0);
        rows.push((
            plan.arrays,
            plan.critical_path_cycles,
            placement.assignment.granted,
            placement.start_cycle,
        ));
    }
    assert_eq!(rows, GOLDEN_PLACEMENTS, "planner or ledger drifted");
    let summary = ledger.summary();
    assert_eq!(summary.makespan_cycles, GOLDEN_MAKESPAN);
    assert_eq!(summary.wait_cycles, GOLDEN_WAIT);
}

/// Pinned `(requested, critical_path, granted, start)` per placement:
/// the two wide convs (4 kernel groups) widen to 4 arrays; the
/// second one finds only 2 arrays idle and *waits* to gather 4 at
/// cycle 5148 because finishing gathered (5148 + 5337) beats
/// finishing shrunk on the idle pair (0 + ~10674).
const GOLDEN_PLACEMENTS: [(usize, u64, usize, u64); 4] = [
    (4, 5319, 4, 0),
    (1, 338, 1, 0),
    (1, 5148, 1, 0),
    (4, 5337, 4, 5148),
];
/// Pinned device makespan after the four placements.
const GOLDEN_MAKESPAN: u64 = 10485;
/// Pinned total gather-wait cycles (the second wide conv's gather).
const GOLDEN_WAIT: u64 = 5148;
