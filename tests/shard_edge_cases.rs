//! Degenerate-shape hardening for `tempus_core::shard`: property
//! tests over `split_units`, `plan_conv`, `plan_gemm`, `balance` and
//! the cost-aware budget planner on the shapes that break naive
//! planners — one kernel, one channel, more arrays than work units,
//! empty per-shard cycle vectors (which must never divide by zero).

use proptest::prelude::*;
use tempus::core::shard::{
    balance, marginal_speedup, plan_conv, plan_for_budget, plan_gemm, split_units, BudgetPlan,
    ShardAccum, ShardStrategy, WidenPolicy, WidthCost,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Chunks are contiguous, cover `0..units` exactly, stay
    /// non-empty whenever there is work, and never outnumber either
    /// the units or the arrays.
    #[test]
    fn split_units_partitions_exactly(
        units in 0usize..200,
        arrays in 1usize..20,
    ) {
        let chunks = split_units(units, arrays);
        prop_assert!(!chunks.is_empty());
        prop_assert!(chunks.len() <= arrays);
        prop_assert!(chunks.len() <= units.max(1));
        prop_assert_eq!(chunks[0].0, 0);
        prop_assert_eq!(chunks.last().unwrap().1, units);
        for w in chunks.windows(2) {
            prop_assert_eq!(w[0].1, w[1].0, "contiguous");
        }
        if units > 0 {
            // Balanced: sizes differ by at most one, none empty.
            let sizes: Vec<usize> = chunks.iter().map(|&(lo, hi)| hi - lo).collect();
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            prop_assert!(min >= 1);
            prop_assert!(max - min <= 1);
        }
    }

    /// The conv planner never plans more slices than arrays, element
    /// ranges partition the split axis, and requesting more arrays
    /// than the shape can feed degrades gracefully (k=1, c=1
    /// included).
    #[test]
    fn plan_conv_handles_degenerate_shapes(
        k in 1usize..70,
        c in 1usize..70,
        atomic_k in 1usize..17,
        atomic_c in 1usize..17,
        arrays in 1usize..33,
    ) {
        let plan = plan_conv(k, c, atomic_k, atomic_c, arrays);
        prop_assert!(plan.used_arrays() >= 1);
        prop_assert!(plan.used_arrays() <= arrays.max(1));
        match plan.strategy {
            ShardStrategy::Single => prop_assert!(plan.slices.is_empty()),
            ShardStrategy::KernelGroups => {
                prop_assert_eq!(plan.slices[0].lo, 0);
                prop_assert_eq!(plan.slices.last().unwrap().hi, k);
                for s in &plan.slices {
                    prop_assert!(s.lo < s.hi, "no empty kernel shard");
                    prop_assert!(s.hi <= k);
                }
            }
            ShardStrategy::ChannelGroups => {
                prop_assert_eq!(plan.slices[0].lo, 0);
                prop_assert_eq!(plan.slices.last().unwrap().hi, c);
                for s in &plan.slices {
                    prop_assert!(s.lo < s.hi, "no empty channel shard");
                    prop_assert!(s.hi <= c);
                }
            }
        }
        // Reduction cycles are finite and zero without a reduction.
        let rc = plan.reduction_cycles(1_000, atomic_k);
        if !plan.needs_reduction() {
            prop_assert_eq!(rc, 0);
        }
    }

    /// One kernel over one channel can never shard: the planner must
    /// settle on `Single` for every array count.
    #[test]
    fn single_unit_jobs_stay_single(arrays in 1usize..64) {
        let plan = plan_conv(1, 1, 8, 8, arrays);
        prop_assert_eq!(plan.strategy, ShardStrategy::Single);
        prop_assert_eq!(plan.used_arrays(), 1);
    }

    /// The GEMM planner's tile ranges partition whichever axis it
    /// picked and never exceed the array budget.
    #[test]
    fn plan_gemm_handles_degenerate_grids(
        m_tiles in 1usize..30,
        p_tiles in 1usize..30,
        arrays in 1usize..33,
    ) {
        let plan = plan_gemm(m_tiles, p_tiles, arrays);
        prop_assert!(plan.used_arrays() >= 1);
        prop_assert!(plan.used_arrays() <= arrays.max(1));
        if !plan.tiles.is_empty() {
            prop_assert_eq!(plan.tiles[0].0, 0);
            for w in plan.tiles.windows(2) {
                prop_assert_eq!(w[0].1, w[1].0);
            }
            for &(lo, hi) in &plan.tiles {
                prop_assert!(lo < hi, "no empty tile shard");
            }
        }
    }

    /// `balance` is always in (0, 1] on non-empty inputs, exactly 1.0
    /// for empty and single-shard vectors (no division by zero), and
    /// 1.0 for perfectly even shards.
    #[test]
    fn balance_never_divides_by_zero(cycles in proptest::collection::vec(0u64..1_000_000, 0..12)) {
        let b = balance(&cycles);
        prop_assert!(b.is_finite());
        prop_assert!(b > 0.0, "balance stays positive, got {}", b);
        prop_assert!(b <= 1.0 + 1e-12);
        if cycles.len() <= 1 {
            prop_assert!((b - 1.0).abs() < 1e-12);
        }
        // The accumulator agrees with the one-shot figure on a single
        // fold and tolerates empty folds.
        let mut accum = ShardAccum::new();
        accum.add(&cycles);
        accum.add(&[]);
        prop_assert!(accum.balance().is_finite());
        prop_assert!(accum.max_used() >= 1);
    }

    /// The budget planner always returns a width in `1..=max_arrays`,
    /// its curve starts at width 1, and the chosen width's cost is
    /// the one reported.
    #[test]
    fn plan_for_budget_is_well_formed(
        max_arrays in 1usize..17,
        units in 1u64..40,
    ) {
        let policy = WidenPolicy::edge_default();
        let plan = plan_for_budget(max_arrays, &policy, |w| {
            let used = (w as u64).min(units);
            Ok::<_, ()>(WidthCost {
                arrays: w,
                used: used as usize,
                critical_path_cycles: units * 1_000 / used,
                reduction_cycles: 0,
                total_array_cycles: units * 1_000,
                dynamic_energy_pj: 0,
                static_energy_pj: 0,
            })
        })
        .unwrap();
        prop_assert!(plan.arrays >= 1);
        prop_assert!(plan.arrays <= max_arrays);
        prop_assert_eq!(plan.widths[0].arrays, 1);
        prop_assert_eq!(
            plan.cost_at(plan.arrays).critical_path_cycles,
            plan.critical_path_cycles
        );
        // Monotone evaluated widths: arrays fields are 1, 2, 3, ...
        for (i, w) in plan.widths.iter().enumerate() {
            prop_assert_eq!(w.arrays, i + 1);
        }
    }
}

#[test]
fn empty_cycle_vectors_are_degenerate_not_fatal() {
    assert!((balance(&[]) - 1.0).abs() < 1e-12);
    assert!((balance(&[0, 0, 0]) - 1.0).abs() < 1e-12);
    let mut accum = ShardAccum::new();
    accum.add(&[]);
    assert!((accum.balance() - 1.0).abs() < 1e-12);
    assert_eq!(accum.max_used(), 1);
    assert!((marginal_speedup(0, 0) - 0.0).abs() < 1e-12);
    let single = BudgetPlan::single(0);
    assert_eq!(single.cost_at(17).critical_path_cycles, 0);
}

#[test]
fn arrays_beyond_units_do_not_create_empty_shards() {
    // 2 kernel groups on 8 arrays: exactly 2 shards, both non-empty.
    let plan = plan_conv(16, 4, 8, 8, 8);
    assert!(plan.used_arrays() <= 2);
    for s in &plan.slices {
        assert!(s.lo < s.hi);
    }
    assert_eq!(split_units(0, 5), vec![(0, 0)]);
    assert_eq!(split_units(1, 5).len(), 1);
}
