//! Fault-tolerance contracts: under deterministic chaos injection the
//! service must lose zero admitted requests, every successful answer
//! must be bit-identical to the fault-free run (retries and the
//! degrade-don't-drop fallback included — all backends agree on
//! outputs), and a quarantined device must be probed back to life
//! with its stranded work re-routed.

use std::collections::BTreeMap;
use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tempus::arith::IntPrecision;
use tempus::core::gemm::Matrix;
use tempus::models::netbuild;
use tempus::models::zoo::Model;
use tempus::models::QuantizedModel;
use tempus::nvdla::conv::ConvParams;
use tempus::nvdla::cube::{DataCube, KernelSet};
use tempus::runtime::{BackendKind, Job};
use tempus::serve::{
    FaultPlan, Request, ResponseOutcome, ServeConfig, ServeStats, StreamingService,
};

fn conv_job(id: u64, seed: u64) -> Job {
    let mut rng = StdRng::seed_from_u64(seed);
    let c = rng.random_range(2usize..=5);
    let k = rng.random_range(2usize..=5);
    let w = rng.random_range(4usize..=6);
    let features = DataCube::from_fn(w, w, c, |_, _, _| rng.random_range(-128..=127));
    let kernels = KernelSet::from_fn(k, 3, 3, c, |_, _, _, _| rng.random_range(-128..=127));
    Job::conv(
        id,
        format!("conv-{id}"),
        features,
        kernels,
        ConvParams::valid(),
    )
}

fn gemm_job(id: u64, seed: u64) -> Job {
    let mut rng = StdRng::seed_from_u64(seed);
    let (m, n, p) = (
        rng.random_range(2usize..=8),
        rng.random_range(2usize..=8),
        rng.random_range(2usize..=8),
    );
    let a = Matrix::from_fn(m, n, |_, _| rng.random_range(-128..=127));
    let b = Matrix::from_fn(n, p, |_, _| rng.random_range(-128..=127));
    Job::gemm(id, format!("gemm-{id}"), a, b)
}

/// The mixed workload every scenario serves: conv and GEMM jobs, most
/// fast, every third accurate (admission-headroomed so rejection never
/// muddies the zero-lost-requests ledger).
fn workload(n: u64, seed: u64) -> Vec<Request> {
    (0..n)
        .map(|i| {
            let job = if i % 2 == 0 {
                conv_job(i, seed ^ (i * 11))
            } else {
                gemm_job(i, seed ^ (i * 13))
            };
            if i % 3 == 0 {
                Request::accurate(job)
            } else {
                Request::fast(job)
            }
        })
        .collect()
}

/// Serves `requests` through `config`, asserting every single one is
/// answered `Done`; returns the per-job output digests and the final
/// stats.
fn serve_all(config: ServeConfig, requests: &[Request]) -> (BTreeMap<u64, u64>, ServeStats) {
    let service = StreamingService::start(config).expect("service starts");
    for request in requests {
        service.submit(request.clone()).expect("submit");
    }
    let mut digests = BTreeMap::new();
    for _ in 0..requests.len() {
        let response = service
            .recv_response(Duration::from_secs(120))
            .expect("every admitted request must be answered");
        match response.outcome {
            ResponseOutcome::Done(result) => {
                digests.insert(response.job_id, result.output.digest());
            }
            other => panic!("job {} was lost to {other:?}", response.job_id),
        }
    }
    let (stats, leftovers) = service.shutdown();
    assert!(leftovers.is_empty(), "no surplus responses");
    assert_eq!(stats.completed, requests.len() as u64);
    (digests, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Acceptance property: at injected fault rates up to 10%, with
    /// either cycle-accurate backend serving the accurate fidelity,
    /// zero admitted requests are lost and every answer is
    /// bit-identical to the fault-free run.
    #[test]
    fn chaos_loses_nothing_and_answers_bit_identically(
        seed in any::<u64>(),
        rate in 0.0f64..0.10,
        nvdla_accurate in any::<bool>(),
    ) {
        let base = || {
            let mut config = ServeConfig::new()
                .with_workers(2)
                .with_admission(4, 64);
            if nvdla_accurate {
                config.accurate_backend = BackendKind::NvdlaCycleAccurate;
            }
            config
        };
        let requests = workload(24, seed);
        let (clean, clean_stats) = serve_all(base(), &requests);
        prop_assert_eq!(clean_stats.retries, 0);
        prop_assert_eq!(clean_stats.degraded, 0);

        let chaos_config = base().with_chaos(
            FaultPlan::new(seed, rate).with_weights(2, 2),
        );
        let (chaotic, _stats) = serve_all(chaos_config, &requests);
        prop_assert_eq!(
            chaotic, clean,
            "every answer must match the fault-free digests"
        );
    }
}

/// Degrade-don't-drop: with a zero retry budget and a 100% fault
/// rate, every cold execution faults once and is answered by the
/// functional fallback — flagged `degraded`, counted in the stats,
/// and still bit-identical to the fault-free run (all backends agree
/// on outputs).
#[test]
fn exhausted_retries_degrade_but_never_drop() {
    let requests = workload(8, 0xDE6E);
    let clean = serve_all(
        ServeConfig::new().with_workers(2).with_admission(4, 64),
        &requests,
    )
    .0;

    let config = ServeConfig::new()
        .with_workers(2)
        .with_admission(4, 64)
        // Transient faults only: a panic or stall would also recover,
        // but a pure backend-error mix keeps this test sub-second.
        .with_chaos(FaultPlan::new(7, 1.0).with_weights(0, 0))
        .with_retries(0);
    let service = StreamingService::start(config).expect("service starts");
    for request in &requests {
        service.submit(request.clone()).expect("submit");
    }
    let mut digests = BTreeMap::new();
    let mut degraded = 0u64;
    for _ in 0..requests.len() {
        let response = service
            .recv_response(Duration::from_secs(120))
            .expect("answered");
        match response.outcome {
            ResponseOutcome::Done(result) => {
                if result.degraded {
                    degraded += 1;
                }
                digests.insert(response.job_id, result.output.digest());
            }
            other => panic!("job {} was lost to {other:?}", response.job_id),
        }
    }
    let (stats, _) = service.shutdown();
    assert_eq!(digests, clean, "degraded answers carry the right bits");
    assert!(
        degraded >= 1,
        "a 100% fault rate with no retry budget must degrade cold executions"
    );
    assert_eq!(stats.degraded, degraded);
    assert_eq!(stats.retries, 0, "retry budget was zero");
    assert_eq!(stats.failed, 0);
}

/// Pinned-seed golden for the recovery ladder: a persistent outage on
/// device 1 of a 2-device fleet must trip the circuit breaker
/// (quarantine), roll the dead placements' grants back, re-route the
/// work to the surviving device, probe the outage on floor advances,
/// and revive the device once the probes report healthy — all while
/// losing zero requests.
#[test]
fn outage_quarantines_probes_and_revives_without_losing_requests() {
    let requests = workload(32, 0x0A7A6E);
    let clean = serve_all(
        ServeConfig::new()
            .with_workers(2)
            .with_admission(4, 64)
            .with_devices(2),
        &requests,
    )
    .0;

    let config = ServeConfig::new()
        .with_workers(2)
        .with_admission(4, 64)
        .with_devices(2)
        .with_chaos(FaultPlan::new(42, 0.0).with_outage(1, 2));
    let (chaotic, stats) = serve_all(config, &requests);
    assert_eq!(chaotic, clean, "re-routed work answers identically");

    let fleet = stats.fleet.expect("2-device fleet publishes a summary");
    assert!(stats.retries >= 1, "outage placements must be retried");
    assert_eq!(
        fleet.quarantines, 1,
        "three consecutive failures must quarantine device 1 exactly once"
    );
    assert!(
        fleet.rollbacks >= 1,
        "dead placements must hand their grants back"
    );
    assert!(
        fleet.probes >= 2,
        "a quarantined device is probed on floor advances (heals after 2)"
    );
    assert_eq!(fleet.revivals, 1, "the healed device must rejoin");
    assert_eq!(stats.failed, 0, "zero lost requests");
}

/// Disabled injection is the zero-overhead default: a `ServeConfig`
/// without a chaos plan serves bit-identically to the seed behaviour
/// — no retries, no degrades, no fleet health activity.
#[test]
fn disabled_injection_is_inert() {
    let requests = workload(12, 0x1D1E ^ 0x2025);
    let (_, stats) = serve_all(
        ServeConfig::new().with_workers(2).with_admission(4, 64),
        &requests,
    );
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.degraded, 0);
    assert!(!stats.drain_timed_out);
    assert_eq!(stats.drain_ns, 0, "no drain wait when work finishes first");
}

/// Bounded shutdown drain: with a genuinely slow cycle-accurate job
/// in flight and a 1 ms drain budget, shutdown must answer the
/// straggler as failed and return — surfacing the timeout in the
/// stats — instead of blocking on the wedged execution.
#[test]
fn shutdown_drain_is_bounded_and_surfaced() {
    let quantized =
        QuantizedModel::generate_limited(Model::ResNet18, IntPrecision::Int8, 9, 200_000);
    let layers = netbuild::network_prefix(&quantized, 1, 64);
    let channels = netbuild::input_channels(&layers).expect("dense prefix");
    let input = netbuild::input_cube(8, 8, channels, IntPrecision::Int8, 9);
    let slow = Job::network(0, "slow", input, layers);

    let config = ServeConfig::new()
        .with_workers(1)
        .with_drain_timeout(Duration::from_millis(1));
    let service = StreamingService::start(config).expect("service starts");
    service.submit(Request::accurate(slow)).expect("submit");
    // Give the dispatcher a beat to move the job onto the pool, then
    // pull the plug while it is mid-execution.
    std::thread::sleep(Duration::from_millis(30));
    let (stats, leftovers) = service.shutdown();
    assert!(stats.drain_timed_out, "the 1 ms drain bound must expire");
    assert!(stats.drain_ns >= 1_000_000, "the drain waited its bound");
    assert_eq!(stats.failed, 1, "the straggler is answered, not lost");
    assert!(
        leftovers
            .iter()
            .any(|r| matches!(r.outcome, ResponseOutcome::Failed(_))),
        "the straggler's failure response is delivered"
    );
}
