//! Streaming equivalence: the bounded-scratch streamed path must be
//! bit-identical to materialized execution — outputs *and* statistics
//! — across every backend, every tile depth shape (one-step, odd,
//! exact-divisor, whole-operand windows), transformer-shaped
//! operands, and the serving layer's scratch-budget admission.

use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tempus::arith::IntPrecision;
use tempus::core::gemm::{Matrix, TubGemm};
use tempus::core::streaming::{stream_product, StreamPlan};
use tempus::models::transformer::{projection_gemm, ProjectionKind, TransformerShape};
use tempus::models::zoo::Model;
use tempus::models::{netbuild, QuantizedModel};
use tempus::runtime::{BackendKind, EngineConfig, InferenceEngine, Job, StreamingConfig};
use tempus::serve::{
    Fidelity, RejectReason, Request, ResponseOutcome, ServeConfig, StreamingService,
};

/// The tile depths the contract names: a one-step window, an odd
/// depth, an exact divisor of the inner dimension, and the whole
/// operand in one window.
fn tile_depths(n: usize) -> Vec<usize> {
    let divisor = (1..=n / 2)
        .rev()
        .find(|&d| n.is_multiple_of(d))
        .unwrap_or(1);
    let mut depths = vec![1, 3, divisor, n];
    depths.retain(|&d| d >= 1 && d <= n.max(1));
    depths.sort_unstable();
    depths.dedup();
    depths
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Core contract: for random shapes and every named tile depth,
    /// the streamed cycle-accurate run matches the materialized run
    /// in output AND statistics, the functional streamed product
    /// matches the golden product, and the observed arena high-water
    /// mark equals the closed-form prediction.
    #[test]
    fn streamed_gemm_bit_identical_across_tile_depths(
        seed in any::<u64>(),
        m in 1usize..12,
        n in 1usize..12,
        p in 1usize..12,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(m, n, |_, _| rng.random_range(-128..=127));
        let b = Matrix::from_fn(n, p, |_, _| rng.random_range(-128..=127));
        let engine = TubGemm::new(4, 4, IntPrecision::Int8);
        let materialized = engine.multiply(&a, &b).unwrap();
        let golden = a.multiply(&b).unwrap();
        for tile_k in tile_depths(n) {
            let plan = StreamPlan::new(tile_k);
            let expected_peak = plan.peak_scratch_elems(&engine, m, n, p);
            let streamed = engine.multiply_streamed(&a, &b, &plan).unwrap();
            prop_assert_eq!(&streamed.output, &materialized.output, "tile_k={}", tile_k);
            prop_assert_eq!(streamed.stats, materialized.stats, "tile_k={}", tile_k);
            prop_assert_eq!(streamed.stream.peak_scratch_elems, expected_peak);
            let (out, stream) = stream_product(&a, &b, (4, 4), &plan).unwrap();
            prop_assert_eq!(&out, &golden, "functional tile_k={}", tile_k);
            prop_assert_eq!(stream.peak_scratch_elems, expected_peak);
        }
    }
}

/// Backend contract: a mixed GEMM/transformer/network batch produces
/// bit-identical outputs and identical modelled cycles with streaming
/// on, off, and under a clamped budget — on all three backends, which
/// must also agree with each other.
#[test]
fn streamed_batches_bit_identical_across_all_three_backends() {
    let mut jobs = Vec::new();
    let mut id = 0u64;
    for round in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(500 + round);
        let (m, n, p) = (
            rng.random_range(2usize..=10),
            rng.random_range(2usize..=10),
            rng.random_range(2usize..=10),
        );
        let a = Matrix::from_fn(m, n, |_, _| rng.random_range(-128..=127));
        let b = Matrix::from_fn(n, p, |_, _| rng.random_range(-128..=127));
        jobs.push(Job::gemm(id, format!("gemm-{id}"), a, b));
        id += 1;
    }
    let shape = TransformerShape::new(4, 16);
    for (i, &kind) in ProjectionKind::ALL.iter().enumerate() {
        let (a, b) = projection_gemm(&shape, kind, IntPrecision::Int8, 600 + i as u64);
        jobs.push(Job::gemm(id, format!("tf-{}", kind.name()), a, b));
        id += 1;
    }
    let quantized =
        QuantizedModel::generate_limited(Model::ResNet18, IntPrecision::Int8, 9, 200_000);
    let layers = netbuild::network_prefix(&quantized, 1, 64);
    let channels = netbuild::input_channels(&layers).unwrap();
    let input = netbuild::input_cube(5, 5, channels, IntPrecision::Int8, 9);
    jobs.push(Job::network(id, "net".to_string(), input, layers));

    let mut digests = Vec::new();
    for kind in BackendKind::ALL {
        let materialized = InferenceEngine::new(EngineConfig::new(kind).with_workers(2))
            .unwrap()
            .run_batch(&jobs)
            .unwrap();
        assert_eq!(materialized.aggregate.streamed_jobs, 0);
        for streaming in [
            StreamingConfig::default(),
            // A sub-floor budget: backends clamp to the one-step
            // window and still answer bit-identically; enforcement is
            // the admission layer's job, not the executor's.
            StreamingConfig {
                scratch_budget_elems: Some(8),
            },
        ] {
            let streamed = InferenceEngine::new(
                EngineConfig::new(kind)
                    .with_workers(2)
                    .with_streaming(streaming),
            )
            .unwrap()
            .run_batch(&jobs)
            .unwrap();
            assert_eq!(
                streamed.output_digest(),
                materialized.output_digest(),
                "{kind:?} streamed outputs diverged ({streaming:?})"
            );
            assert_eq!(
                streamed.aggregate.total_sim_cycles, materialized.aggregate.total_sim_cycles,
                "{kind:?} streaming changed modelled latency ({streaming:?})"
            );
            assert!(
                streamed.aggregate.streamed_jobs > 0,
                "{kind:?} reported no streamed jobs"
            );
            assert!(
                streamed.aggregate.peak_scratch_elems > 0,
                "{kind:?} reported no peak scratch"
            );
        }
        digests.push(materialized.output_digest());
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "backends disagree on the batch: {digests:?}"
    );
}

/// Pinned-seed transformer golden: the trace-scale block projections
/// at seed 7, streamed under a quarter-operand budget, must keep
/// producing these exact outputs (and match the materialized engine
/// in output and statistics).
#[test]
fn transformer_projection_streamed_golden() {
    let shape = TransformerShape::trace_default();
    let engine = TubGemm::new(16, 16, IntPrecision::Int8);
    let expected: [(ProjectionKind, u64); 3] = [
        (ProjectionKind::Attention, 0xd4b7_d390_e5ba_0b27),
        (ProjectionKind::MlpUp, 0x3f58_d1d6_d0aa_9b3e),
        (ProjectionKind::MlpDown, 0x865f_15ca_3a44_d756),
    ];
    for (kind, expected_hash) in expected {
        let (a, b) = projection_gemm(&shape, kind, IntPrecision::Int8, 7);
        let (m, n, p) = shape.dims(kind);
        let budget = ((m * n + n * p) / 4) as u64;
        let plan = StreamPlan::for_budget(&engine, m, n, p, budget)
            .expect("quarter-operand budget admits a plan");
        let streamed = engine.multiply_streamed(&a, &b, &plan).unwrap();
        let materialized = engine.multiply(&a, &b).unwrap();
        assert_eq!(streamed.output, materialized.output, "{}", kind.name());
        assert_eq!(streamed.stats, materialized.stats, "{}", kind.name());
        assert!(
            streamed.stream.peak_scratch_elems <= budget,
            "{}",
            kind.name()
        );
        assert_eq!(
            streamed.output.content_hash(),
            expected_hash,
            "{} drifted from the pinned golden",
            kind.name()
        );
    }
}

/// Serving contract: a streamed service answers bit-identically to a
/// materialized one while surfacing per-request peak scratch, and a
/// scratch budget below a job's smallest plan rejects it at admission
/// instead of running it.
#[test]
fn serve_streams_with_scratch_accounting_and_budget_rejection() {
    let shape = TransformerShape::new(8, 32);
    let requests: Vec<Job> = (0..4u64)
        .map(|i| {
            let (a, b) = projection_gemm(
                &shape,
                ProjectionKind::Attention,
                IntPrecision::Int8,
                40 + i,
            );
            Job::gemm(i, format!("tf-{i}"), a, b)
        })
        .collect();
    let run = |config: ServeConfig| {
        let service = StreamingService::start(config).expect("service starts");
        let mut outcomes = Vec::new();
        for job in requests.iter().cloned() {
            service
                .submit(Request {
                    job,
                    fidelity: Fidelity::Fast,
                    deadline_cycles: None,
                })
                .expect("submit");
            let response = service
                .recv_response(Duration::from_secs(60))
                .expect("response arrives");
            outcomes.push((response.job_id, response.outcome));
        }
        let (stats, _) = service.shutdown();
        (outcomes, stats)
    };

    let (materialized, _) = run(ServeConfig::new().with_workers(2));
    let (streamed, stats) = run(ServeConfig::new().with_workers(2).with_streaming());
    assert_eq!(stats.streamed, 4, "all four distinct jobs must stream");
    assert!(stats.peak_scratch_elems > 0);
    assert_eq!(stats.rejected_scratch, 0);
    for ((mid, mat), (sid, str_)) in materialized.iter().zip(&streamed) {
        assert_eq!(mid, sid);
        match (mat, str_) {
            (ResponseOutcome::Done(m), ResponseOutcome::Done(s)) => {
                assert_eq!(m.output.digest(), s.output.digest(), "job {mid} diverged");
                assert_eq!(m.sim_cycles, s.sim_cycles, "job {mid} latency changed");
                assert_eq!(m.peak_scratch_elems, 0, "materialized job {mid} scratch");
                assert!(s.peak_scratch_elems > 0, "streamed job {sid} scratch");
            }
            other => panic!("job {mid} did not complete on both paths: {other:?}"),
        }
    }

    // A budget below the 8x32x32 projection's one-step floor: the job
    // must be rejected at admission, never executed.
    let (rejected, tight_stats) = run(ServeConfig::new().with_workers(1).with_scratch_budget(8));
    assert_eq!(tight_stats.rejected_scratch, 4);
    assert_eq!(tight_stats.completed, 0);
    for (id, outcome) in rejected {
        match outcome {
            ResponseOutcome::Rejected(RejectReason::ScratchBudgetExceeded {
                required_elems,
                budget_elems,
            }) => {
                assert!(required_elems > budget_elems, "job {id} floor vs budget");
                assert_eq!(budget_elems, 8);
            }
            other => panic!("job {id} was not scratch-rejected: {other:?}"),
        }
    }

    // A budget that admits the plan: completes with the honest peak.
    let (admitted, roomy_stats) = run(ServeConfig::new().with_workers(1).with_scratch_budget(4096));
    assert_eq!(roomy_stats.rejected_scratch, 0);
    assert_eq!(roomy_stats.streamed, 4);
    for (id, outcome) in admitted {
        match outcome {
            ResponseOutcome::Done(result) => {
                assert!(result.peak_scratch_elems > 0, "job {id}");
                assert!(result.peak_scratch_elems <= 4096, "job {id}");
            }
            other => panic!("job {id} did not complete under the roomy budget: {other:?}"),
        }
    }
}
