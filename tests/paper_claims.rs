//! The paper's headline claims, checked end-to-end through the public
//! API (quick variants; the full-scale versions run in the report
//! harness).

use tempus::arith::IntPrecision;
use tempus::core::{latency, TempusConfig};
use tempus::hwmodel::isoarea::{array_iso_area_improvement, IsoAreaAnalysis};
use tempus::hwmodel::{Family, Level, PnrModel, SynthModel};
use tempus::models::zoo::Model;
use tempus::models::QuantizedModel;
use tempus::nvdla::conv::ConvParams;
use tempus::nvdla::cube::{DataCube, KernelSet};
use tempus::profile::{energy, magnitude};

#[test]
fn abstract_claim_pcu_vs_cmac_59_3_and_15_3() {
    // "Tempus Core's PE cell unit (PCU) yields 59.3% and 15.3%
    // reductions in area and power consumption, respectively, over
    // NVDLA's CMAC unit."
    let hw = SynthModel::nangate45();
    let (area, power) = hw.improvement_pct(Level::Unit, IntPrecision::Int8, 16, 16);
    assert!((area - 59.3).abs() < 1.5, "area reduction {area:.1}%");
    assert!((power - 15.3).abs() < 1.5, "power reduction {power:.1}%");
}

#[test]
fn abstract_claim_16x16_array_75_and_62() {
    // "Considering a 16x16 PE array in Tempus Core, area and power
    // improves by 75% and 62%" — the paper's own Fig. 4 numbers give
    // 80% area; we track the numbers (see EXPERIMENTS.md).
    let hw = SynthModel::nangate45();
    let (area, power) = hw.improvement_pct(Level::Array, IntPrecision::Int8, 16, 16);
    assert!((72.0..82.0).contains(&area), "area reduction {area:.1}%");
    assert!((power - 62.0).abs() < 3.0, "power reduction {power:.1}%");
}

#[test]
fn abstract_claim_iso_area_5x_and_4x() {
    // "delivering 5x and 4x iso-area throughput improvements for INT8
    // and INT4 precisions."
    let hw = SynthModel::nangate45();
    let int8 = array_iso_area_improvement(&hw, IntPrecision::Int8);
    let int4 = array_iso_area_improvement(&hw, IntPrecision::Int4);
    assert!((int8 - 5.0).abs() < 0.5, "INT8 {int8:.1}x");
    assert!((3.5..5.5).contains(&int4), "INT4 {int4:.1}x");
}

#[test]
fn abstract_claim_pnr_area_and_power() {
    // "the 16x4 PE array for INT4 precision in 45nm CMOS requires only
    // 0.017mm2 die area and consumes only 6.2mW of total power."
    let pnr = PnrModel::default();
    let r = pnr.table_iii(Family::Tub);
    assert!(
        (r.die_area_mm2 - 0.0168).abs() < 0.001,
        "{}",
        r.die_area_mm2
    );
    assert!(
        (r.total_power_mw - 6.1146).abs() < 0.2,
        "{}",
        r.total_power_mw
    );
}

#[test]
fn fig9_projection_reaches_tens_of_x() {
    // "The throughput increases by as much as 26x and 18x for INT8 and
    // INT4" at n = 65536 (projection; same method, same ballpark).
    let hw = SynthModel::nangate45();
    let p8 = IsoAreaAnalysis::run(&hw, IntPrecision::Int8).project(65536);
    let p4 = IsoAreaAnalysis::run(&hw, IntPrecision::Int4).project(65536);
    assert!(
        p8.improvement > 20.0 && p8.improvement < 45.0,
        "{}",
        p8.improvement
    );
    assert!(
        p4.improvement > 14.0 && p4.improvement < 30.0,
        "{}",
        p4.improvement
    );
}

#[test]
fn section_vc_workload_latency_and_energy() {
    // Quick variant over a bounded MobileNetV2; the full model lands
    // on 33 cycles (checked in tempus-profile's calibration tests).
    let model =
        QuantizedModel::generate_limited(Model::MobileNetV2, IntPrecision::Int8, 42, 1_000_000);
    let profile = magnitude::profile_model(&model, 16, 16);
    let cycles = profile.average_latency_cycles();
    assert!((25.0..45.0).contains(&cycles), "avg latency {cycles:.1}");

    let hw = SynthModel::nangate45();
    let e = energy::evaluate(&hw, "MobileNetV2", IntPrecision::Int8, cycles);
    // Binary ~15 pJ; tub energy tracks cycles x 1.42 mW x 4 ns.
    assert!((e.binary_energy_pj - 15.2).abs() < 1.0);
    assert!((e.tub_energy_pj - 1.42 * cycles * 4.0).abs() < 1.0);
    // INT4 gap shrink.
    let int4 = energy::evaluate_int4_worst_case(&hw);
    assert!(int4.energy_gap() < e.energy_gap() / 3.0);
}

#[test]
fn worst_case_latency_formula_matches_simulated_cores() {
    // N * (2^w - 2) worst-case GEMM latency reduces, per multiply, to
    // 2^(w-1)/2 windows; the analytic model and precision constants
    // must agree.
    for (precision, expect) in [(IntPrecision::Int8, 64u64), (IntPrecision::Int4, 4u64)] {
        let config = TempusConfig::nv_small()
            .with_precision(precision)
            .with_cache_overheads(0, 0);
        assert_eq!(latency::worst_case_cycles_per_op(&config), expect);
        // Simulate one all-extreme stripe to confirm.
        let lo = precision.min_value();
        let features = DataCube::from_fn(3, 3, 8, |_, _, _| lo);
        let kernels = KernelSet::from_fn(8, 1, 1, 8, |_, _, _, _| lo);
        let b = latency::predict(&features, &kernels, &ConvParams::valid(), &config).unwrap();
        assert!((b.avg_window - expect as f64).abs() < 1e-9);
    }
}

#[test]
fn table_i_sparsity_reproduced_on_subsets() {
    for (model, target) in [
        (Model::MobileNetV2, 2.25),
        (Model::GoogleNet, 1.91),
        (Model::ResNet50, 2.45),
    ] {
        let q = QuantizedModel::generate_limited(model, IntPrecision::Int8, 42, 400_000);
        assert!(
            (q.sparsity_pct() - target).abs() < 0.4,
            "{model}: {:.2}% vs {target}%",
            q.sparsity_pct()
        );
    }
}
