//! End-to-end pipeline integration: multi-layer networks through
//! convolution core + SDP + PDP on both cores, plus buffer capacity
//! behaviour.

use tempus::arith::IntPrecision;
use tempus::core::{TempusConfig, TempusCore};
use tempus::nvdla::config::NvdlaConfig;
use tempus::nvdla::conv::ConvParams;
use tempus::nvdla::cube::{DataCube, KernelSet};
use tempus::nvdla::pdp::{self, PoolParams};
use tempus::nvdla::pipeline::{ConvCore, NvdlaConvCore};
use tempus::nvdla::sdp::{self, SdpConfig};
use tempus::nvdla::NvdlaError;

fn layer(
    core: &mut dyn ConvCore,
    x: &DataCube,
    kernels: &KernelSet,
    params: &ConvParams,
    relu: bool,
) -> DataCube {
    let run = core.convolve(x, kernels, params).expect("layer runs");
    let cfg = SdpConfig {
        bias: vec![0; run.output.c()],
        multiplier: vec![1; run.output.c()],
        shift: 5,
        relu,
        out_precision: IntPrecision::Int8,
    };
    sdp::apply(&run.output, &cfg).expect("sdp").0
}

fn three_layer_net(core: &mut dyn ConvCore, input: &DataCube) -> DataCube {
    let k1 = KernelSet::from_fn(16, 3, 3, 8, |k, r, s, c| {
        ((k * 7 + r * 3 + s * 5 + c * 11) % 120) as i32 - 60
    });
    let k2 = KernelSet::from_fn(16, 3, 3, 16, |k, r, s, c| {
        ((k * 13 + r * 9 + s * 2 + c * 4) % 120) as i32 - 60
    });
    let k3 = KernelSet::from_fn(8, 1, 1, 16, |k, _, _, c| {
        ((k * 17 + c * 6) % 120) as i32 - 60
    });
    let x = layer(core, input, &k1, &ConvParams::unit_stride_same(3), true);
    let x = layer(core, &x, &k2, &ConvParams::strided(2, 1), true);
    let x = layer(core, &x, &k3, &ConvParams::valid(), false);
    pdp::apply(&x, &PoolParams::max(2)).expect("pool")
}

#[test]
fn multilayer_network_bit_exact_across_cores() {
    let input = DataCube::from_fn(12, 12, 8, |x, y, c| {
        ((x * 3 + y * 7 + c) % 200) as i32 - 100
    });
    let mut binary = NvdlaConvCore::new(NvdlaConfig::nv_small());
    let mut tempus = TempusCore::new(TempusConfig::nv_small());
    let out_b = three_layer_net(&mut binary, &input);
    let out_t = three_layer_net(&mut tempus, &input);
    assert_eq!(out_b, out_t);
    assert_eq!(out_b.c(), 8);
}

#[test]
fn relu_then_pool_matches_manual_computation() {
    // 1-layer sanity: identity 1x1 kernel + ReLU + 2x2 max pool.
    let input = DataCube::from_fn(4, 4, 2, |x, y, c| (x as i32 - 2) * 10 + y as i32 + c as i32);
    let mut k = KernelSet::zeros(2, 1, 1, 2);
    k.set(0, 0, 0, 0, 1);
    k.set(1, 0, 0, 1, 1);
    let mut core = NvdlaConvCore::new(NvdlaConfig::nv_small());
    let x = layer(&mut core, &input, &k, &ConvParams::valid(), true);
    let pooled = pdp::apply(&x, &PoolParams::max(2)).expect("pool");
    // With shift 5, positive values < 32 quantize to 0; check shape and
    // non-negativity (ReLU applied before shift..? order: (x+0)*1>>5).
    assert_eq!((pooled.w(), pooled.h(), pooled.c()), (2, 2, 2));
    assert!(pooled.as_slice().iter().all(|&v| v >= 0));
}

#[test]
fn oversized_working_set_is_rejected_not_mangled() {
    // nv_small has a 128 KiB convolution buffer; a 512x512x8 feature
    // map cannot fit and must error cleanly on both cores.
    let features = DataCube::zeros(512, 512, 8);
    let kernels = KernelSet::zeros(8, 3, 3, 8);
    let params = ConvParams::valid();
    let mut binary = NvdlaConvCore::new(NvdlaConfig::nv_small());
    let mut tempus = TempusCore::new(TempusConfig::nv_small());
    assert!(matches!(
        binary.convolve(&features, &kernels, &params),
        Err(NvdlaError::BufferOverflow { .. })
    ));
    assert!(matches!(
        tempus.convolve(&features, &kernels, &params),
        Err(NvdlaError::BufferOverflow { .. })
    ));
}

#[test]
fn int4_network_runs_on_16x4_table_iii_shape() {
    // The Table III configuration (INT4, 16 cells x 4 multipliers)
    // as an actual compute engine.
    let input = DataCube::from_fn(8, 8, 4, |x, y, c| ((x + y * 2 + c) % 15) as i32 - 7);
    let kernels = KernelSet::from_fn(16, 3, 3, 4, |k, r, s, c| ((k + r + s + c) % 15) as i32 - 7);
    let base = NvdlaConfig::nv_small()
        .with_array(16, 4)
        .with_precision(IntPrecision::Int4);
    let mut binary = NvdlaConvCore::new(base);
    let mut tempus = TempusCore::new(TempusConfig::new(base));
    let params = ConvParams::unit_stride_same(3);
    let b = binary.convolve(&input, &kernels, &params).expect("binary");
    let t = tempus.convolve(&input, &kernels, &params).expect("tempus");
    assert_eq!(b.output, t.output);
    // INT4 windows are at most 4 cycles + overheads: the slowdown is
    // bounded accordingly (paper §V-C's INT4 argument).
    let ratio = t.stats.cycles as f64 / b.stats.cycles as f64;
    assert!(ratio < 8.0, "INT4 slowdown {ratio}");
}

#[test]
fn network_module_runs_identically_on_both_cores() {
    use tempus::nvdla::network::{run_network, NetworkLayer};

    let input = DataCube::from_fn(10, 10, 8, |x, y, c| {
        ((x * 7 + y * 3 + c * 5) % 160) as i32 - 80
    });
    let k1 = KernelSet::from_fn(16, 3, 3, 8, |k, r, s, c| {
        ((k * 5 + r + s * 2 + c * 3) % 100) as i32 - 50
    });
    let k2 = KernelSet::from_fn(8, 1, 1, 16, |k, _, _, c| {
        ((k * 9 + c * 4) % 100) as i32 - 50
    });
    let layers = vec![
        NetworkLayer::conv_relu(
            "stem",
            k1,
            ConvParams::unit_stride_same(3),
            5,
            IntPrecision::Int8,
        )
        .with_pool(PoolParams::max(2)),
        NetworkLayer::conv_relu("head", k2, ConvParams::valid(), 5, IntPrecision::Int8),
    ];

    let mut binary = NvdlaConvCore::new(NvdlaConfig::paper_16x16());
    let mut tempus = TempusCore::new(TempusConfig::paper_16x16());
    let rb = run_network(&mut binary, &input, &layers).expect("binary runs");
    let rt = run_network(&mut tempus, &input, &layers).expect("tempus runs");

    assert_eq!(rb.output, rt.output, "network outputs must be bit-exact");
    assert_eq!(rb.layers.len(), rt.layers.len());
    for (b, t) in rb.layers.iter().zip(&rt.layers) {
        assert_eq!(b.output_shape, t.output_shape);
        assert_eq!(b.rectified, t.rectified, "{}", b.name);
        assert!(t.cycles > b.cycles, "{}: tub multi-cycle windows", b.name);
    }
    assert!(rt.total_time_us() > rb.total_time_us());
}
