//! Fleet-scheduler equivalence: a 1-device fleet is **bit-identical**
//! to PR 5's single-device planner+ledger path — same grants, starts,
//! waits, device account and output digests; pinned goldens freeze
//! the 4-device picker's routing for a fixed seed; and backfilling
//! provably never delays an already-granted job (no busy-until clock
//! moves, and every backfill stays disjoint from every other
//! placement on its arrays).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tempus::core::shard::WidenPolicy;
use tempus::core::TempusConfig;
use tempus::fleet::{FleetConfig, FleetOutcome, FleetScheduler};
use tempus::nvdla::config::NvdlaConfig;
use tempus::nvdla::conv::ConvParams;
use tempus::nvdla::cube::{DataCube, KernelSet};
use tempus::runtime::{ArrayLedger, ArrayPlanner, BackendKind, EngineConfig, Job, Placement};

fn random_conv_job(seed: u64, w: usize, c: usize, k: usize) -> Job {
    let mut rng = StdRng::seed_from_u64(seed);
    let features = DataCube::from_fn(w, w, c, |_, _, _| rng.random_range(-128..=127));
    let kernels = KernelSet::from_fn(k, 3, 3, c, |_, _, _, _| rng.random_range(-128..=127));
    Job::conv(0, "conv", features, kernels, ConvParams::valid())
}

fn random_gemm_job(seed: u64, m: usize, n: usize, p: usize) -> Job {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = tempus::core::gemm::Matrix::from_fn(m, n, |_, _| rng.random_range(-128..=127));
    let b = tempus::core::gemm::Matrix::from_fn(n, p, |_, _| rng.random_range(-128..=127));
    Job::gemm(0, "gemm", a, b)
}

/// A deterministic mixed stream: kernel-rich convs the planner
/// widens, narrow convs, and small GEMMs.
fn mixed_jobs(seed: u64, n: u64) -> Vec<Job> {
    (0..n)
        .map(|i| {
            if i % 3 == 0 {
                Job {
                    id: i,
                    ..random_conv_job(seed ^ i ^ 0xA5, 5, 8, 32)
                }
            } else if i % 3 == 1 {
                Job {
                    id: i,
                    ..random_conv_job(seed ^ i ^ 0x5A, 5, 6, 4)
                }
            } else {
                Job {
                    id: i,
                    ..random_gemm_job(seed ^ i ^ 0x3C, 9, 6, 9)
                }
            }
        })
        .collect()
}

fn engine_config(arrays: usize) -> EngineConfig {
    EngineConfig::new(BackendKind::FastFunctional)
        .with_cores(TempusConfig::nv_small(), NvdlaConfig::nv_small())
        .with_arrays(arrays)
        .with_co_scheduling()
}

fn place(fleet: &mut FleetScheduler, plan: &tempus::core::shard::BudgetPlan) -> (usize, Placement) {
    match fleet.admit(plan, None) {
        FleetOutcome::Placed(p) => (p.device, p.placement),
        FleetOutcome::Rejected(m) => panic!("unexpected rejection: {m:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The bit-identity contract: a 1-device fleet (backfill off, no
    /// deadlines) replays the single-device planner+ledger path
    /// placement-for-placement — grants, starts, durations, waits —
    /// and lands on the same device account.
    #[test]
    fn one_device_fleet_is_bit_identical_to_the_ledger_path(
        seed in any::<u64>(),
        arrays in 2usize..9,
        n in 4u64..14,
    ) {
        let config = engine_config(arrays);
        let mut planner = ArrayPlanner::new(&config, WidenPolicy::edge_default());
        let mut ledger = ArrayLedger::new(arrays);
        let mut fleet = FleetScheduler::single_device(arrays);
        for job in &mixed_jobs(seed, n) {
            let plan = planner.plan_or_single(job);
            let direct = ledger.place(&plan, 0);
            let (device, placement) = place(&mut fleet, &plan);
            prop_assert_eq!(device, 0);
            prop_assert_eq!(&placement, &direct);
        }
        prop_assert_eq!(fleet.summary().combined(), ledger.summary());
        prop_assert_eq!(fleet.floor(), ledger.horizon());
    }

    /// Backfilling never delays a granted job: across a random
    /// admission stream, every busy-until clock recorded *before* a
    /// backfill commits is unchanged *after* it, and every backfilled
    /// interval is disjoint from every other placement interval on
    /// the arrays it occupies.
    #[test]
    fn backfills_never_delay_granted_jobs(
        seed in any::<u64>(),
        arrays in 3usize..9,
        n in 6u64..16,
    ) {
        let config = engine_config(arrays);
        let mut planner = ArrayPlanner::new(&config, WidenPolicy::edge_default());
        let mut fleet =
            FleetScheduler::new(FleetConfig::new(1, arrays).with_backfill());
        let mut committed: Vec<Placement> = Vec::new();
        for job in &mixed_jobs(seed, n) {
            let plan = planner.plan_or_single(job);
            let before = fleet.devices()[0].ledger.busy_clocks().to_vec();
            let (_, placement) = place(&mut fleet, &plan);
            if placement.backfilled {
                prop_assert_eq!(
                    fleet.devices()[0].ledger.busy_clocks(),
                    before.as_slice(),
                    "backfill moved a busy-until clock"
                );
            }
            committed.push(placement);
        }
        // Interval disjointness: a backfill shares no (array, cycle)
        // with any other placement.
        for (i, a) in committed.iter().enumerate() {
            if !a.backfilled || a.duration_cycles == 0 {
                continue;
            }
            for (j, b) in committed.iter().enumerate() {
                if i == j || b.duration_cycles == 0 {
                    continue;
                }
                let overlap_time = a.start_cycle < b.finish_cycle()
                    && b.start_cycle < a.finish_cycle();
                let share_array = a.arrays.iter().any(|x| b.arrays.contains(x));
                prop_assert!(
                    !(overlap_time && share_array),
                    "backfill {:?} overlaps placement {:?}",
                    a,
                    b
                );
            }
        }
    }
}

/// End-to-end digest identity: replaying the fleet's grants through
/// the backend yields outputs bit-identical to the single-device
/// path's grants for the same stream (both reduce to `execute_on` at
/// the same widths, in the same order).
#[test]
fn one_device_fleet_replay_digests_match() {
    use tempus::runtime::{FunctionalBackend, InferenceBackend};
    let arrays = 6;
    let config = engine_config(arrays);
    let mut planner = ArrayPlanner::new(&config, WidenPolicy::edge_default());
    let mut ledger = ArrayLedger::new(arrays);
    let mut fleet = FleetScheduler::single_device(arrays);
    let mut backend = FunctionalBackend::new(TempusConfig::nv_small(), (8, 8)).with_arrays(arrays);
    let jobs = mixed_jobs(0xFEED, 9);
    let mut direct_outputs = Vec::new();
    let mut fleet_outputs = Vec::new();
    for job in &jobs {
        let plan = planner.plan_or_single(job);
        let direct = ledger.place(&plan, 0);
        let (_, placement) = place(&mut fleet, &plan);
        direct_outputs.push(
            backend
                .execute_on(job, direct.assignment.granted)
                .expect("direct execution")
                .output,
        );
        fleet_outputs.push(
            backend
                .execute_on(job, placement.assignment.granted)
                .expect("fleet execution")
                .output,
        );
    }
    assert_eq!(direct_outputs, fleet_outputs);
}

/// Golden 4-device routing for the pinned seed `0xC0FFEE`: the
/// picker's `(device, start, granted)` decisions must stay exactly
/// what they are today. If an intentional policy change breaks this,
/// re-pin after verifying the equivalence properties above still
/// pass.
#[test]
fn golden_four_device_placements_for_pinned_seed() {
    let arrays = 4;
    let config = engine_config(arrays);
    let mut planner = ArrayPlanner::new(&config, WidenPolicy::edge_default());
    let mut fleet = FleetScheduler::new(FleetConfig::new(4, arrays));
    let rows: Vec<(usize, u64, usize)> = mixed_jobs(0xC0FFEE, 12)
        .iter()
        .map(|job| {
            let plan = planner.plan_or_single(job);
            let (device, placement) = place(&mut fleet, &plan);
            (device, placement.start_cycle, placement.assignment.granted)
        })
        .collect();
    assert_eq!(rows, GOLDEN_ROUTING, "fleet picker drifted");
    // Replay determinism: a second identical run reproduces the
    // account to the cycle.
    let summary = fleet.summary();
    let mut planner2 = ArrayPlanner::new(&config, WidenPolicy::edge_default());
    let mut fleet2 = FleetScheduler::new(FleetConfig::new(4, arrays));
    for job in &mixed_jobs(0xC0FFEE, 12) {
        let plan = planner2.plan_or_single(job);
        let _ = place(&mut fleet2, &plan);
    }
    assert_eq!(fleet2.summary(), summary);
}

/// Pinned `(device, start_cycle, granted)` per admission for
/// `mixed_jobs(0xC0FFEE, 12)` on a 4×4-array fleet. The wide convs
/// (every third job) spread onto fresh devices (0, 2, 3 — then back
/// onto 3 with a gather wait); narrow jobs pack onto device 1's free
/// arrays, ties always to the lowest idle id.
const GOLDEN_ROUTING: [(usize, u64, usize); 12] = [
    (0, 0, 4),
    (1, 0, 1),
    (1, 0, 1),
    (2, 0, 4),
    (1, 0, 1),
    (1, 0, 1),
    (3, 0, 4),
    (1, 332, 1),
    (1, 353, 1),
    (3, 5301, 4),
    (1, 691, 1),
    (1, 5184, 1),
];
