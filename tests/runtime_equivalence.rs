//! Runtime equivalence: the fast functional backend must produce
//! bit-identical outputs and *identical* closed-form latency to the
//! cycle-accurate Tempus Core, across random conv shapes, GEMM shapes
//! and model-zoo layers — and all three backends must agree on outputs
//! for large mixed batches (the engine's serving contract).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tempus::arith::IntPrecision;
use tempus::core::gemm::Matrix;
use tempus::core::TempusConfig;
use tempus::models::netbuild;
use tempus::models::zoo::Model;
use tempus::models::QuantizedModel;
use tempus::nvdla::config::NvdlaConfig;
use tempus::nvdla::conv::ConvParams;
use tempus::nvdla::cube::{DataCube, KernelSet};
use tempus::runtime::{
    BackendKind, EngineConfig, FunctionalBackend, InferenceBackend, InferenceEngine, Job,
    TempusBackend,
};

fn random_conv_job(
    id: u64,
    seed: u64,
    w: usize,
    h: usize,
    c: usize,
    k: usize,
    ksize: usize,
) -> Job {
    let mut rng = StdRng::seed_from_u64(seed);
    let features = DataCube::from_fn(w, h, c, |_, _, _| rng.random_range(-128..=127));
    let kernels = KernelSet::from_fn(k, ksize, ksize, c, |_, _, _, _| {
        rng.random_range(-128..=127)
    });
    Job::conv(
        id,
        format!("conv-{id}"),
        features,
        kernels,
        ConvParams::valid(),
    )
}

fn random_gemm_job(id: u64, seed: u64, m: usize, n: usize, p: usize) -> Job {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = Matrix::from_fn(m, n, |_, _| rng.random_range(-128..=127));
    let b = Matrix::from_fn(n, p, |_, _| rng.random_range(-128..=127));
    Job::gemm(id, format!("gemm-{id}"), a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn functional_equals_cycle_accurate_on_random_convs(
        seed in any::<u64>(),
        w in 3usize..7,
        h in 3usize..7,
        c in 1usize..10,
        k in 1usize..10,
        ksize in prop_oneof![Just(1usize), Just(3usize)],
    ) {
        let job = random_conv_job(0, seed, w, h, c, k, ksize);
        let mut accurate = TempusBackend::new(TempusConfig::nv_small(), (8, 8));
        let mut fast = FunctionalBackend::new(TempusConfig::nv_small(), (8, 8));
        let a = accurate.execute(&job).unwrap();
        let f = fast.execute(&job).unwrap();
        prop_assert_eq!(&a.output, &f.output);
        prop_assert_eq!(a.sim_cycles, f.sim_cycles);
    }

    #[test]
    fn functional_equals_cycle_accurate_on_random_gemms(
        seed in any::<u64>(),
        m in 1usize..12,
        n in 1usize..12,
        p in 1usize..12,
    ) {
        let job = random_gemm_job(0, seed, m, n, p);
        let mut accurate = TempusBackend::new(TempusConfig::nv_small(), (4, 4));
        let mut fast = FunctionalBackend::new(TempusConfig::nv_small(), (4, 4));
        let a = accurate.execute(&job).unwrap();
        let f = fast.execute(&job).unwrap();
        prop_assert_eq!(&a.output, &f.output);
        prop_assert_eq!(a.sim_cycles, f.sim_cycles);
    }
}

#[test]
fn functional_equals_cycle_accurate_on_model_zoo_layers() {
    // Whole-network jobs built from the zoo's quantized weights: the
    // functional path must track the cycle-accurate path through SDP
    // requantization chains, layer by layer.
    for (model, seed) in [(Model::ResNet18, 7u64), (Model::GoogleNet, 8u64)] {
        let quantized = QuantizedModel::generate_limited(model, IntPrecision::Int8, seed, 500_000);
        let layers = netbuild::network_prefix(&quantized, 2, 64);
        assert!(!layers.is_empty(), "{model:?} yields a dense prefix");
        let channels = netbuild::input_channels(&layers).unwrap();
        let input = netbuild::input_cube(6, 6, channels, IntPrecision::Int8, seed);
        let job = Job::network(0, format!("{model:?}"), input, layers);

        let mut accurate = TempusBackend::new(TempusConfig::paper_16x16(), (16, 16));
        let mut fast = FunctionalBackend::new(TempusConfig::paper_16x16(), (16, 16));
        let a = accurate.execute(&job).unwrap();
        let f = fast.execute(&job).unwrap();
        assert_eq!(a.output, f.output, "{model:?} outputs");
        assert_eq!(a.sim_cycles, f.sim_cycles, "{model:?} cycles");
    }
}

/// The engine's serving contract (acceptance criterion): a batch of
/// 100+ mixed conv/GEMM/network jobs across 4+ workers produces
/// bit-identical results on all three backends.
#[test]
fn mixed_batch_bit_identical_across_all_three_backends() {
    let mut jobs = Vec::new();
    let mut id = 0u64;
    for round in 0..49u64 {
        jobs.push(random_conv_job(
            id,
            1000 + round,
            4 + (round % 3) as usize,
            4,
            4,
            4,
            3,
        ));
        id += 1;
        jobs.push(random_gemm_job(
            id,
            2000 + round,
            5,
            4 + (round % 4) as usize,
            6,
        ));
        id += 1;
        if round % 10 == 0 {
            let quantized = QuantizedModel::generate_limited(
                Model::ResNet18,
                IntPrecision::Int8,
                round,
                200_000,
            );
            let layers = netbuild::network_prefix(&quantized, 1, 64);
            let channels = netbuild::input_channels(&layers).unwrap();
            let input = netbuild::input_cube(5, 5, channels, IntPrecision::Int8, round);
            jobs.push(Job::network(id, format!("net-{round}"), input, layers));
            id += 1;
        }
    }
    assert!(jobs.len() >= 100, "batch has {} jobs", jobs.len());

    let mut digests = Vec::new();
    let mut tempus_cycles = None;
    for kind in BackendKind::ALL {
        let engine = InferenceEngine::new(
            EngineConfig::new(kind)
                .with_workers(4)
                .with_cores(TempusConfig::nv_small(), NvdlaConfig::nv_small()),
        )
        .unwrap();
        let report = engine.run_batch(&jobs).unwrap();
        assert_eq!(report.aggregate.jobs, jobs.len() as u64);
        assert_eq!(report.workers.len(), 4);
        assert!(
            report.workers.iter().all(|w| w.jobs > 0),
            "all four workers must execute jobs"
        );
        digests.push(report.output_digest());
        match kind {
            BackendKind::TempusCycleAccurate => {
                tempus_cycles = Some(report.aggregate.total_sim_cycles);
            }
            BackendKind::FastFunctional => {
                assert_eq!(
                    Some(report.aggregate.total_sim_cycles),
                    tempus_cycles,
                    "functional cycles must equal cycle-accurate tempus cycles"
                );
                let cache = report.aggregate.schedule_cache.expect("functional caches");
                assert!(cache.latency_hits + cache.latency_misses > 0);
            }
            BackendKind::NvdlaCycleAccurate => {}
        }
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "all three backends must produce bit-identical batches: {digests:?}"
    );
}

#[test]
fn schedule_cache_pays_off_across_repeated_layers() {
    // Same layer shape + weights repeated across a batch: the
    // per-worker latency memo must serve all repeats after the first.
    let template = random_conv_job(0, 99, 6, 6, 8, 8, 3);
    let jobs: Vec<Job> = (0..12)
        .map(|i| {
            let mut j = template.clone();
            j.id = i;
            j
        })
        .collect();
    let engine =
        InferenceEngine::new(EngineConfig::new(BackendKind::FastFunctional).with_workers(1))
            .unwrap();
    let report = engine.run_batch(&jobs).unwrap();
    let cache = report.aggregate.schedule_cache.unwrap();
    assert_eq!(cache.latency_misses, 1);
    assert_eq!(cache.latency_hits, 11);
}
