//! Sharded multi-array equivalence: for random conv/GEMM jobs and
//! `num_arrays ∈ {1, 2, 3, 4, 8}`, sharded outputs AND summed
//! statistics must be bit-identical across all three backends to the
//! single-array engine, and the functional backend's closed-form
//! latency must reproduce the cycle-accurate sharded critical path
//! exactly. Golden digests for a pinned seed guard against silent
//! planner or merge drift.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tempus::core::gemm::{Matrix, TubGemm};
use tempus::core::schedule::ScheduleCache;
use tempus::core::{TempusConfig, TempusCore};
use tempus::models::netbuild;
use tempus::models::zoo::Model;
use tempus::models::QuantizedModel;
use tempus::nvdla::config::NvdlaConfig;
use tempus::nvdla::conv::ConvParams;
use tempus::nvdla::cube::{DataCube, KernelSet};
use tempus::nvdla::pipeline::ConvCore;
use tempus::runtime::{FunctionalBackend, InferenceBackend, Job, NvdlaBackend, TempusBackend};

const ARRAY_COUNTS: [usize; 5] = [1, 2, 3, 4, 8];

fn random_conv(seed: u64, w: usize, c: usize, k: usize, ksize: usize) -> (DataCube, KernelSet) {
    let mut rng = StdRng::seed_from_u64(seed);
    let features = DataCube::from_fn(w, w, c, |_, _, _| rng.random_range(-128..=127));
    let kernels = KernelSet::from_fn(k, ksize, ksize, c, |_, _, _, _| {
        rng.random_range(-128..=127)
    });
    (features, kernels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The Tempus sharded engine is bit-identical to the single-array
    /// engine — outputs, merged `RunStats` and merged tub statistics —
    /// for every tested shard count, and the per-shard cycles sum to
    /// the single-array total.
    #[test]
    fn sharded_tempus_engine_matches_single_array(
        seed in any::<u64>(),
        w in 3usize..6,
        c in 1usize..34,
        k in 1usize..34,
        ksize in prop_oneof![Just(1usize), Just(3usize)],
    ) {
        let (features, kernels) = random_conv(seed, w, c, k, ksize);
        let params = ConvParams::valid();
        let mut single = TempusCore::new(TempusConfig::nv_small());
        let base = single.convolve(&features, &kernels, &params).unwrap();
        let base_tstats = single.last_tempus_stats();
        for arrays in ARRAY_COUNTS {
            let mut core = TempusCore::new(TempusConfig::nv_small());
            let run = core.convolve_sharded(&features, &kernels, &params, arrays).unwrap();
            prop_assert_eq!(&run.output, &base.output, "arrays={}", arrays);
            prop_assert_eq!(&run.stats, &base.stats, "arrays={}", arrays);
            prop_assert_eq!(core.last_tempus_stats(), base_tstats, "arrays={}", arrays);
            let per_shard = run.per_shard_cycles();
            prop_assert_eq!(per_shard.iter().sum::<u64>(), base.stats.cycles);
            prop_assert_eq!(
                run.critical_path_cycles,
                per_shard.iter().copied().max().unwrap() + run.reduction_cycles
            );
        }
    }

    /// The functional backend's closed-form sharded latency equals the
    /// cycle-accurate sharded critical path exactly, per shard, and
    /// both backends agree on outputs and shard accounting.
    #[test]
    fn functional_matches_cycle_accurate_sharding(
        seed in any::<u64>(),
        w in 3usize..6,
        c in 1usize..26,
        k in 1usize..26,
        ksize in prop_oneof![Just(1usize), Just(3usize)],
    ) {
        let (features, kernels) = random_conv(seed, w, c, k, ksize);
        let params = ConvParams::valid();
        let config = TempusConfig::nv_small();
        let mut cache = ScheduleCache::new();
        for arrays in ARRAY_COUNTS {
            let mut core = TempusCore::new(config);
            let run = core.convolve_sharded(&features, &kernels, &params, arrays).unwrap();
            let predicted = cache
                .predict_sharded(&features, &kernels, &params, &config, arrays)
                .unwrap();
            prop_assert_eq!(&predicted.plan, &run.plan, "arrays={}", arrays);
            prop_assert_eq!(&predicted.per_shard_cycles, &run.per_shard_cycles());
            prop_assert_eq!(predicted.critical_path_cycles, run.critical_path_cycles);
            prop_assert_eq!(predicted.reduction_cycles, run.reduction_cycles);
            prop_assert_eq!(predicted.total_array_cycles, run.stats.cycles);
        }
    }

    /// All three runtime backends agree under sharding: outputs
    /// bit-identical everywhere; Tempus and functional agree on the
    /// critical path, array-cycles, occupancy and balance bit-for-bit.
    #[test]
    fn all_three_backends_agree_on_sharded_convs(
        seed in any::<u64>(),
        w in 3usize..6,
        c in 1usize..20,
        k in 1usize..20,
    ) {
        let (features, kernels) = random_conv(seed, w, c, k, 3);
        let job = Job::conv(0, "conv", features, kernels, ConvParams::valid());
        for arrays in ARRAY_COUNTS {
            let mut tempus =
                TempusBackend::new(TempusConfig::nv_small(), (8, 8)).with_arrays(arrays);
            let mut fast =
                FunctionalBackend::new(TempusConfig::nv_small(), (8, 8)).with_arrays(arrays);
            let mut nvdla =
                NvdlaBackend::new(NvdlaConfig::nv_small(), (8, 8)).with_arrays(arrays);
            let t = tempus.execute(&job).unwrap();
            let f = fast.execute(&job).unwrap();
            let n = nvdla.execute(&job).unwrap();
            prop_assert_eq!(&t.output, &f.output, "arrays={}", arrays);
            prop_assert_eq!(&t.output, &n.output, "arrays={}", arrays);
            prop_assert_eq!(t.sim_cycles, f.sim_cycles, "arrays={}", arrays);
            prop_assert_eq!(t.total_array_cycles, f.total_array_cycles);
            prop_assert_eq!(t.shards, f.shards);
            prop_assert_eq!(t.shard_utilization.to_bits(), f.shard_utilization.to_bits());
        }
    }

    /// GEMM sharding: merged output and summed statistics bit-identical
    /// to the single-array engine, and the closed-form shard model
    /// exact.
    #[test]
    fn sharded_gemm_matches_single_array(
        seed in any::<u64>(),
        m in 1usize..20,
        n in 1usize..10,
        p in 1usize..20,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(m, n, |_, _| rng.random_range(-128..=127));
        let b = Matrix::from_fn(n, p, |_, _| rng.random_range(-128..=127));
        let engine = TubGemm::new(4, 4, tempus::arith::IntPrecision::Int8);
        let single = engine.multiply(&a, &b).unwrap();
        for arrays in ARRAY_COUNTS {
            let run = engine.multiply_sharded(&a, &b, arrays).unwrap();
            prop_assert_eq!(&run.output, &single.output, "arrays={}", arrays);
            prop_assert_eq!(&run.stats, &single.stats, "arrays={}", arrays);
            let (plan, modelled) = engine.sharded_cycle_model(&a, &b, arrays);
            prop_assert_eq!(&plan, &run.plan);
            prop_assert_eq!(&modelled, &run.per_shard_cycles);
        }
    }
}

/// The NVDLA baseline under sharding: outputs bit-identical; the
/// merged cycle sum relates to the single-array run by the exact
/// pinned identity `single + (used - 1) × pipeline_depth` (each array
/// drains its own pipeline), with every other work counter equal.
#[test]
fn nvdla_sharded_statistics_relate_exactly() {
    let cfg = NvdlaConfig::nv_small();
    for (seed, c, k) in [(1u64, 24usize, 8usize), (2, 8, 24), (3, 17, 19)] {
        let (features, kernels) = random_conv(seed, 5, c, k, 3);
        let params = ConvParams::valid();
        let mut single = tempus::nvdla::pipeline::NvdlaConvCore::new(cfg);
        let base = single.convolve(&features, &kernels, &params).unwrap();
        for arrays in ARRAY_COUNTS {
            let mut core = tempus::nvdla::pipeline::NvdlaConvCore::new(cfg);
            let run = tempus::core::shard::convolve_sharded_with(
                &mut core,
                &features,
                &kernels,
                &params,
                arrays,
                |_| {},
            )
            .unwrap();
            assert_eq!(run.output, base.output, "arrays={arrays}");
            let used = run.plan.used_arrays() as u64;
            assert_eq!(
                run.stats.cycles,
                base.stats.cycles + (used - 1) * u64::from(cfg.cmac_pipeline_depth),
                "arrays={arrays}"
            );
            assert_eq!(run.stats.atomic_ops, base.stats.atomic_ops);
            assert_eq!(run.stats.stripes, base.stats.stripes);
            assert_eq!(run.stats.macs, base.stats.macs);
            assert_eq!(run.stats.gated_cell_cycles, base.stats.gated_cell_cycles);
            assert_eq!(run.stats.cbuf_reads, base.stats.cbuf_reads);
        }
    }
}

/// Whole-network jobs shard per layer; the three backends agree on
/// outputs and the two Tempus-latency backends agree on the summed
/// critical path.
#[test]
fn network_jobs_shard_equivalently() {
    let model = QuantizedModel::generate_limited(
        Model::ResNet18,
        tempus::arith::IntPrecision::Int8,
        9,
        200_000,
    );
    let layers = netbuild::network_prefix(&model, 2, 64);
    assert!(!layers.is_empty(), "resnet prefix exists");
    let channels = netbuild::input_channels(&layers).unwrap();
    let input = netbuild::input_cube(6, 6, channels, tempus::arith::IntPrecision::Int8, 7);
    let job = Job::network(0, "net", input, layers);
    let mut singles: Option<(u64, u64)> = None;
    for arrays in [1usize, 2, 4] {
        let mut tempus_b = TempusBackend::new(TempusConfig::nv_small(), (8, 8)).with_arrays(arrays);
        let mut fast = FunctionalBackend::new(TempusConfig::nv_small(), (8, 8)).with_arrays(arrays);
        let mut nvdla = NvdlaBackend::new(NvdlaConfig::nv_small(), (8, 8)).with_arrays(arrays);
        let t = tempus_b.execute(&job).unwrap();
        let f = fast.execute(&job).unwrap();
        let n = nvdla.execute(&job).unwrap();
        assert_eq!(t.output, f.output, "arrays={arrays}");
        assert_eq!(t.output, n.output, "arrays={arrays}");
        assert_eq!(t.sim_cycles, f.sim_cycles, "arrays={arrays}");
        assert_eq!(t.total_array_cycles, f.total_array_cycles);
        assert_eq!(t.shards, f.shards);
        match singles {
            None => singles = Some((t.sim_cycles, t.output.digest())),
            Some((single_cycles, digest)) => {
                assert_eq!(
                    t.output.digest(),
                    digest,
                    "outputs invariant in array count"
                );
                assert!(
                    t.sim_cycles < single_cycles,
                    "arrays={arrays}: sharding must cut the critical path"
                );
            }
        }
    }
}

/// Golden digests for a pinned seed: the planner, merge order and
/// latency model must stay exactly what they are today. If an
/// intentional change breaks these, re-pin after verifying the
/// equivalence properties above still pass.
#[test]
fn golden_sharded_digests_for_pinned_seed() {
    let (features, kernels) = random_conv(0xC0FFEE, 5, 19, 24, 3);
    let params = ConvParams::valid();
    let mut rows = Vec::new();
    for arrays in [1usize, 2, 4, 8] {
        let mut core = TempusCore::new(TempusConfig::nv_small());
        let run = core
            .convolve_sharded(&features, &kernels, &params, arrays)
            .unwrap();
        rows.push((
            arrays,
            run.output.content_hash(),
            run.critical_path_cycles,
            run.reduction_cycles,
            run.plan.used_arrays(),
        ));
    }
    // Outputs identical at every count; cycles strictly improving up
    // to the group limit.
    let digest = rows[0].1;
    assert!(rows.iter().all(|r| r.1 == digest));
    let expected: [(usize, u64, u64, usize); 4] = GOLDEN;
    for ((arrays, d, critical, reduction, used), (e_arrays, e_critical, e_reduction, e_used)) in
        rows.iter().zip(expected.iter())
    {
        assert_eq!(arrays, e_arrays, "row order");
        assert_eq!(*d, digest);
        assert_eq!(
            (*critical, *reduction, *used),
            (*e_critical, *e_reduction, *e_used),
            "arrays={arrays}: pinned critical path drifted"
        );
    }
    assert_eq!(digest, GOLDEN_DIGEST, "pinned output digest drifted");
}

/// Pinned `(arrays, critical_path_cycles, reduction_cycles, used)`:
/// 24 kernels = 3 kernel groups on `nv_small`, so 4 and 8 requested
/// arrays both settle on a 3-way kernel split.
const GOLDEN: [(usize, u64, u64, usize); 4] = [
    (1, 47232, 0, 1),
    (2, 31473, 0, 2),
    (4, 15759, 0, 3),
    (8, 15759, 0, 3),
];
/// Pinned output digest for the 0xC0FFEE case.
const GOLDEN_DIGEST: u64 = 0x5136_4139_BD24_63EC;
