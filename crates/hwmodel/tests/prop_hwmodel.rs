//! Property-based tests for the hardware cost model: physical
//! quantities must be positive, finite and monotone in the obvious
//! directions, independent of calibration details.

use proptest::prelude::*;
use tempus_arith::IntPrecision;
use tempus_hwmodel::cells::CellLibrary;
use tempus_hwmodel::gen::{dadda_reduce, ReductionPlan};
use tempus_hwmodel::pe_cell::pe_cell_module;
use tempus_hwmodel::{Family, Level, PnrModel, SynthModel};

fn precisions() -> impl Strategy<Value = IntPrecision> {
    prop_oneof![
        Just(IntPrecision::Int2),
        Just(IntPrecision::Int4),
        Just(IntPrecision::Int8),
    ]
}

fn families() -> impl Strategy<Value = Family> {
    prop_oneof![Just(Family::Binary), Just(Family::Tub)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn estimates_are_positive_and_finite(
        family in families(),
        precision in precisions(),
        k in 1usize..32,
        n in 1usize..64,
    ) {
        let hw = SynthModel::nangate45();
        for report in [
            hw.pe_cell(family, precision, n),
            hw.pe_array(family, precision, k, n),
            hw.unit(family, precision, k, n),
        ] {
            prop_assert!(report.area_mm2 > 0.0 && report.area_mm2.is_finite());
            prop_assert!(report.power_mw > 0.0 && report.power_mw.is_finite());
            prop_assert!(report.cell_count > 0);
        }
    }

    #[test]
    fn area_monotone_in_n(
        family in families(),
        precision in precisions(),
        n in 2usize..128,
    ) {
        let hw = SynthModel::nangate45();
        let small = hw.pe_cell(family, precision, n);
        let big = hw.pe_cell(family, precision, n * 2);
        prop_assert!(
            big.area_mm2 > small.area_mm2,
            "{family} {precision}: area({}) = {} !> area({}) = {}",
            n * 2, big.area_mm2, n, small.area_mm2
        );
    }

    #[test]
    fn array_area_scales_linearly_in_k(
        family in families(),
        precision in precisions(),
        k in 1usize..16,
    ) {
        let hw = SynthModel::nangate45();
        let one = hw.pe_array(family, precision, k, 16);
        let two = hw.pe_array(family, precision, 2 * k, 16);
        let ratio = two.area_mm2 / one.area_mm2;
        prop_assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn tub_wins_area_at_scale(precision in precisions(), n in 16usize..256) {
        let hw = SynthModel::nangate45();
        let b = hw.pe_cell(Family::Binary, precision, n);
        let t = hw.pe_cell(Family::Tub, precision, n);
        prop_assert!(t.area_mm2 < b.area_mm2, "{precision} n={n}");
    }

    #[test]
    fn pnr_die_exceeds_cell_area(
        family in families(),
        precision in precisions(),
        n in 1usize..32,
    ) {
        let pnr = PnrModel::default();
        let r = pnr.place_and_route(family, precision, 16, n);
        prop_assert!(r.die_area_mm2 > r.cell_area_mm2);
        prop_assert!((r.cell_area_mm2 / r.die_area_mm2 - r.utilization).abs() < 1e-9);
        prop_assert!(r.total_power_mw > 0.0);
    }

    #[test]
    fn dadda_reduction_invariants(heights in prop::collection::vec(1u32..20, 1..24)) {
        let plan: ReductionPlan = dadda_reduce(&heights);
        let total_bits: u64 = heights.iter().map(|&h| u64::from(h)).sum();
        // Each FA removes exactly one bit; you can never remove more
        // bits than exist beyond the final two rows.
        prop_assert!(plan.full_adders < total_bits.max(1));
        // CPA width is bounded by the (grown) column count.
        prop_assert!(plan.cpa_width as usize <= heights.len() + plan.stages as usize + 1);
    }

    #[test]
    fn netlist_rollup_is_additive(
        family in families(),
        precision in precisions(),
        n in 1usize..32,
    ) {
        // Rolling up a module twice must be deterministic, and raw
        // area must scale with instance multiplicity.
        let lib = CellLibrary::nangate45();
        let module = pe_cell_module(family, precision, n);
        let r1 = module.rollup(&lib, 0.25).total();
        let r2 = module.rollup(&lib, 0.25).total();
        prop_assert_eq!(r1.cell_count, r2.cell_count);
        prop_assert!((r1.area_um2 - r2.area_um2).abs() < 1e-9);
    }

    #[test]
    fn improvement_is_bounded(
        precision in precisions(),
        n in 4usize..64,
    ) {
        let hw = SynthModel::nangate45();
        let (area, power) = hw.improvement_pct(Level::PeCell, precision, 1, n);
        prop_assert!(area < 100.0 && area > -100.0);
        prop_assert!(power < 100.0 && power > -200.0);
    }
}
