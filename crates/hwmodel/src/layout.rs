//! Layout rendering (Fig. 6): a placement visualisation of the P&R'd
//! units as SVG and as an ASCII density map.
//!
//! The model places module blocks with a simple slicing-treemap
//! floorplanner proportional to calibrated block areas inside the die
//! outline at the target utilization, mimicking the visual point of the
//! paper's Fig. 6: the PCU occupies visibly less of the same floorplan
//! than the CMAC.

use std::fmt::Write as _;

use tempus_arith::IntPrecision;

use crate::design::Family;
use crate::pnr::{PnrModel, PnrReport};

/// A placed rectangular block.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedBlock {
    /// Block name (module it represents).
    pub name: String,
    /// Lower-left x in µm.
    pub x_um: f64,
    /// Lower-left y in µm.
    pub y_um: f64,
    /// Width in µm.
    pub w_um: f64,
    /// Height in µm.
    pub h_um: f64,
}

/// A rendered floorplan.
#[derive(Debug, Clone, PartialEq)]
pub struct Layout {
    /// P&R summary this layout was derived from.
    pub report: PnrReport,
    /// Placed blocks (cells area only; the rest of the die is routing
    /// whitespace per the utilization target).
    pub blocks: Vec<PlacedBlock>,
}

impl Layout {
    /// Builds a layout for `family` at the Table III / Fig. 6
    /// configuration by default (INT4 16×4) or any other shape.
    #[must_use]
    pub fn generate(
        pnr: &PnrModel,
        family: Family,
        precision: IntPrecision,
        k: usize,
        n: usize,
    ) -> Self {
        let report = pnr.place_and_route(family, precision, k, n);
        let die = report.die_edge_um;
        // Block inventory: k PE cell strips plus an overhead block,
        // scaled so the total equals the placed cell area.
        let synth = pnr.synth();
        let cell_mm2 = synth.pe_cell(family, precision, n).area_mm2;
        let total_cells_mm2 = cell_mm2 * k as f64;
        let overhead_mm2 = (report.cell_area_mm2 - total_cells_mm2).max(0.0);
        let mut blocks = Vec::with_capacity(k + 1);
        // Slice the die bottom-up into k cell rows; each row's height
        // is proportional to its area share of the *die*, leaving the
        // top whitespace implicit.
        let mut y = 0.0;
        for i in 0..k {
            let h = cell_mm2 * 1e6 / die;
            blocks.push(PlacedBlock {
                name: format!("{}_cell_{i}", family.unit_name()),
                x_um: 0.0,
                y_um: y,
                w_um: die,
                h_um: h,
            });
            y += h;
        }
        if overhead_mm2 > 0.0 {
            blocks.push(PlacedBlock {
                name: format!("{}_overhead", family.unit_name()),
                x_um: 0.0,
                y_um: y,
                w_um: die,
                h_um: overhead_mm2 * 1e6 / die,
            });
        }
        Layout { report, blocks }
    }

    /// Fraction of the die covered by placed blocks (should equal the
    /// floorplan utilization).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let placed: f64 = self.blocks.iter().map(|b| b.w_um * b.h_um).sum();
        placed / (self.report.die_edge_um * self.report.die_edge_um)
    }

    /// Renders the floorplan as an SVG document.
    #[must_use]
    pub fn to_svg(&self) -> String {
        let die = self.report.die_edge_um;
        let scale = 600.0 / die;
        let mut s = String::new();
        let _ = writeln!(
            s,
            r##"<svg xmlns="http://www.w3.org/2000/svg" width="620" height="640" viewBox="0 0 620 640">"##
        );
        let _ = writeln!(
            s,
            r##"<rect x="10" y="10" width="{:.1}" height="{:.1}" fill="#101018" stroke="#888"/>"##,
            die * scale,
            die * scale
        );
        for (i, b) in self.blocks.iter().enumerate() {
            let hue = (i * 47) % 360;
            let _ = writeln!(
                s,
                r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="hsl({hue},60%,55%)" stroke="#222" stroke-width="0.5"><title>{}</title></rect>"##,
                10.0 + b.x_um * scale,
                10.0 + (die - b.y_um - b.h_um) * scale,
                b.w_um * scale,
                b.h_um * scale,
                b.name
            );
        }
        let _ = writeln!(
            s,
            r##"<text x="10" y="632" font-family="monospace" font-size="12" fill="#333">{} die {:.4} mm2, util {:.0}%, power {:.2} mW</text>"##,
            self.report.point,
            self.report.die_area_mm2,
            self.report.utilization * 100.0,
            self.report.total_power_mw
        );
        let _ = writeln!(s, "</svg>");
        s
    }

    /// Renders an ASCII density map (`width` columns), '#' for placed
    /// area, '.' for routing whitespace.
    #[must_use]
    pub fn to_ascii(&self, width: usize) -> String {
        let die = self.report.die_edge_um;
        let height = width / 2;
        let mut grid = vec![vec!['.'; width]; height];
        for b in &self.blocks {
            let x0 = ((b.x_um / die) * width as f64) as usize;
            let x1 = (((b.x_um + b.w_um) / die) * width as f64).ceil() as usize;
            let y0 = ((b.y_um / die) * height as f64) as usize;
            let y1 = (((b.y_um + b.h_um) / die) * height as f64).ceil() as usize;
            for row in grid.iter_mut().take(y1.min(height)).skip(y0) {
                for c in row.iter_mut().take(x1.min(width)).skip(x0) {
                    *c = '#';
                }
            }
        }
        let mut s = String::new();
        for row in grid.iter().rev() {
            let _ = writeln!(s, "{}", row.iter().collect::<String>());
        }
        let _ = writeln!(
            s,
            "{}: die {:.4} mm2 @ {:.0}% util",
            self.report.point,
            self.report.die_area_mm2,
            self.report.utilization * 100.0
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig6_layouts() -> (Layout, Layout) {
        let pnr = PnrModel::default();
        (
            Layout::generate(&pnr, Family::Binary, IntPrecision::Int4, 16, 4),
            Layout::generate(&pnr, Family::Tub, IntPrecision::Int4, 16, 4),
        )
    }

    #[test]
    fn coverage_matches_utilization() {
        let (cmac, pcu) = fig6_layouts();
        assert!((cmac.coverage() - 0.70).abs() < 0.02, "{}", cmac.coverage());
        assert!((pcu.coverage() - 0.70).abs() < 0.02, "{}", pcu.coverage());
    }

    #[test]
    fn pcu_die_is_visibly_smaller() {
        // Fig. 6's visual point: same utilization, much smaller die.
        let (cmac, pcu) = fig6_layouts();
        assert!(pcu.report.die_area_mm2 < cmac.report.die_area_mm2 * 0.55);
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let (cmac, _) = fig6_layouts();
        let svg = cmac.to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 1 + cmac.blocks.len());
    }

    #[test]
    fn ascii_map_shows_placed_and_whitespace() {
        let (_, pcu) = fig6_layouts();
        let art = pcu.to_ascii(60);
        assert!(art.contains('#'));
        assert!(art.contains('.'));
    }
}
