//! PE cell netlists for both families.
//!
//! A *PE cell* (NVDLA "MAC cell") holds `n` multipliers, operand
//! registers and an adder tree producing one partial sum (§II-C). The
//! tub cell swaps the array multipliers for tub slices and adds the
//! shared temporal control (§III).

use tempus_arith::IntPrecision;

use crate::design::Family;
use crate::gen::{
    adder_tree_module, binary_multiplier, fsm, register_bank, tub_cell_control,
    tub_multiplier_slice,
};
use crate::netlist::{Module, Role};

/// Builds the netlist of one PE cell with `n` multipliers.
#[must_use]
pub fn pe_cell_module(family: Family, precision: IntPrecision, n: usize) -> Module {
    match family {
        Family::Binary => binary_pe_cell(precision, n),
        Family::Tub => tub_pe_cell(precision, n),
    }
}

fn binary_pe_cell(precision: IntPrecision, n: usize) -> Module {
    let w = u64::from(precision.bits());
    let acc_bits = u64::from(precision.accumulator_bits(n));
    let mut cell = Module::new(format!("binary_pe_cell_{precision}_n{n}"), Role::CellFixed);
    // Per-multiplier datapath slice: operand capture + array multiplier.
    let mut slice = Module::new("mac_slice", Role::PerMultiplier);
    slice.instantiate(1, register_bank("operand_regs", 2 * w, Role::PerMultiplier));
    slice.instantiate(1, binary_multiplier(precision));
    cell.instantiate(n as u64, slice);
    // Product reduction tree (2w-bit terms).
    cell.instantiate(
        1,
        adder_tree_module(n, precision.product_bits(), Role::PerMultiplier),
    );
    // Partial-sum output register + small sequencing FSM.
    cell.instantiate(1, register_bank("psum_reg", acc_bits, Role::CellFixed));
    cell.instantiate(1, fsm("cell_ctrl", 2, 16, Role::CellFixed));
    cell
}

fn tub_pe_cell(precision: IntPrecision, n: usize) -> Module {
    let w = precision.bits();
    let mut cell = Module::new(format!("tub_pe_cell_{precision}_n{n}"), Role::CellFixed);
    cell.instantiate(n as u64, tub_multiplier_slice(precision));
    // Contribution reduction tree over (w+2)-bit terms — much narrower
    // than the binary tree's 2w-bit products.
    cell.instantiate(1, adder_tree_module(n, w + 2, Role::PerMultiplier));
    cell.instantiate(1, tub_cell_control(precision, n));
    cell
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellLibrary;
    use crate::netlist::Role;

    fn area(family: Family, p: IntPrecision, n: usize) -> f64 {
        pe_cell_module(family, p, n)
            .rollup(&CellLibrary::nangate45(), 0.3)
            .total()
            .area_um2
    }

    #[test]
    fn tub_cell_smaller_than_binary_at_scale() {
        for p in [IntPrecision::Int4, IntPrecision::Int8] {
            for n in [16, 256, 1024] {
                let b = area(Family::Binary, p, n);
                let t = area(Family::Tub, p, n);
                assert!(t < b, "{p} n={n}: tub {t} !< binary {b}");
            }
        }
    }

    #[test]
    fn raw_binary_cell_tracks_paper_order_of_magnitude() {
        // Paper Table II: binary INT8 n=16 cell is 0.0056 mm^2 = 5600 um^2.
        // The raw structural model should land within ~2x before
        // calibration.
        let a = area(Family::Binary, IntPrecision::Int8, 16);
        assert!(
            (2800.0..11200.0).contains(&a),
            "raw INT8 n=16 binary cell {a} um2"
        );
    }

    #[test]
    fn cells_have_per_multiplier_and_fixed_buckets() {
        let lib = CellLibrary::nangate45();
        for family in Family::BOTH {
            let r = pe_cell_module(family, IntPrecision::Int8, 16).rollup(&lib, 0.3);
            assert!(r.role(Role::PerMultiplier).area_um2 > 0.0, "{family}");
            assert!(r.role(Role::CellFixed).area_um2 > 0.0, "{family}");
        }
    }

    #[test]
    fn per_multiplier_bucket_scales_with_n() {
        let lib = CellLibrary::nangate45();
        let r16 = pe_cell_module(Family::Tub, IntPrecision::Int8, 16).rollup(&lib, 0.3);
        let r256 = pe_cell_module(Family::Tub, IntPrecision::Int8, 256).rollup(&lib, 0.3);
        let ratio =
            r256.role(Role::PerMultiplier).area_um2 / r16.role(Role::PerMultiplier).area_um2;
        assert!((14.0..22.0).contains(&ratio), "ratio {ratio}");
    }
}
