//! PE array netlists: `k` cells plus operand broadcast fabric.

use tempus_arith::IntPrecision;

use crate::cells::CellKind;
use crate::design::Family;
use crate::netlist::{Module, Role};
use crate::pe_cell::pe_cell_module;

/// Builds a `k`×`n` PE array: `k` PE cells sharing a broadcast feature
/// bus (§III: "the single input data cube is shared between the k PE
/// cells"), with a repeater-buffer fabric sized to the bus width and
/// fan-out.
#[must_use]
pub fn pe_array_module(family: Family, precision: IntPrecision, k: usize, n: usize) -> Module {
    let w = u64::from(precision.bits());
    let mut array = Module::new(
        format!("{}_array_{precision}_{k}x{n}", family.unit_name()),
        Role::CellFixed,
    );
    array.instantiate(k as u64, pe_cell_module(family, precision, n));
    // Broadcast fabric: one repeater per 4 sinks per bus bit.
    let bus_bits = w * n as u64;
    let mut fabric = Module::new("broadcast_fabric", Role::Interconnect).with_activity(0.25);
    fabric.add(CellKind::Buf, bus_bits * (k as u64).div_ceil(4));
    array.instantiate(1, fabric);
    array
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellLibrary;

    #[test]
    fn array_area_scales_with_k() {
        let lib = CellLibrary::nangate45();
        let a1 = pe_array_module(Family::Binary, IntPrecision::Int8, 1, 16)
            .rollup(&lib, 0.3)
            .total()
            .area_um2;
        let a16 = pe_array_module(Family::Binary, IntPrecision::Int8, 16, 16)
            .rollup(&lib, 0.3)
            .total()
            .area_um2;
        let ratio = a16 / a1;
        assert!((14.0..18.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn interconnect_bucket_present() {
        let lib = CellLibrary::nangate45();
        let r = pe_array_module(Family::Tub, IntPrecision::Int4, 16, 16).rollup(&lib, 0.3);
        assert!(r.role(Role::Interconnect).area_um2 > 0.0);
    }
}
