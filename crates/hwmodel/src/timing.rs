//! Static timing estimation: does each datapath close timing at the
//! paper's fixed 250 MHz (4 ns) clock in 45nm (§IV: "operating at a
//! fixed 250 MHz clock frequency to maintain consistent timing across
//! evaluations")?
//!
//! The model walks the worst logic path of each PE cell family —
//! partial products → Dadda stages → final CPA → adder tree for the
//! binary cell; steering mux → sign XOR → adder tree → accumulator CPA
//! for the tub cell — using representative NanGate45 stage delays.
//! Like the area/power models this is an estimator, not an STA run;
//! its purpose is to show both designs have healthy slack at 4 ns and
//! that the tub datapath's logic path shortens relative to binary as
//! precision grows (the array multiplier front-end is replaced by a
//! mux + XOR; the shared reduction tree and the tub accumulator CPA
//! bound the gap, and at INT2 the trivial multiplier flips it).

use tempus_arith::adder_tree::shape;
use tempus_arith::IntPrecision;

use crate::design::Family;
use crate::gen::{dadda_reduce, ReductionPlan};

/// Representative 45nm typical-corner stage delays in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageDelays {
    /// Simple gate (NAND/AND) including local wire.
    pub gate_ns: f64,
    /// Full-adder carry stage.
    pub fa_ns: f64,
    /// 2:1 mux.
    pub mux_ns: f64,
    /// XOR stage.
    pub xor_ns: f64,
    /// Flip-flop clock-to-Q plus setup.
    pub reg_overhead_ns: f64,
    /// Lookahead group bypass per 4 bits.
    pub cla_group_ns: f64,
}

impl StageDelays {
    /// NanGate45-flavoured typical delays.
    #[must_use]
    pub fn nangate45() -> Self {
        StageDelays {
            gate_ns: 0.035,
            fa_ns: 0.090,
            mux_ns: 0.055,
            xor_ns: 0.060,
            reg_overhead_ns: 0.150,
            cla_group_ns: 0.065,
        }
    }
}

/// A timing estimate for one PE cell configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingReport {
    /// Family analysed.
    pub family: Family,
    /// Precision analysed.
    pub precision: IntPrecision,
    /// Multipliers per cell.
    pub n: usize,
    /// Estimated critical path in ns (including register overhead).
    pub critical_path_ns: f64,
    /// Slack against the 4 ns clock (positive = meets timing).
    pub slack_ns: f64,
    /// Maximum frequency implied by the path, in MHz.
    pub fmax_mhz: f64,
}

/// The paper's clock period in ns.
pub const CLOCK_PERIOD_NS: f64 = 4.0;

/// Estimates the critical path of one PE cell.
#[must_use]
pub fn pe_cell_timing(
    family: Family,
    precision: IntPrecision,
    n: usize,
    delays: StageDelays,
) -> TimingReport {
    let w = precision.bits();
    let tree = shape(n, precision.product_bits());
    // The cell's reduction tree: one carry-save stage per level plus a
    // final assimilation; model each level as an FA stage.
    let tree_ns = f64::from(tree.depth) * delays.fa_ns;
    let path_ns = match family {
        Family::Binary => {
            // pp gen (one gate) + Dadda stages (FA each) + CPA with
            // 4-bit lookahead groups + cell tree.
            let plan: ReductionPlan = dadda_reduce(&crate::gen::multiplier_column_heights(w));
            let cpa_ns = f64::from(plan.cpa_width.div_ceil(4)) * delays.cla_group_ns;
            delays.gate_ns + f64::from(plan.stages) * delays.fa_ns + cpa_ns + tree_ns
        }
        Family::Tub => {
            // steering mux + sign xor + narrower tree + accumulator CPA
            // with lookahead groups.
            let acc_bits = precision.accumulator_bits(n);
            let acc_ns = f64::from(acc_bits.div_ceil(4)) * delays.cla_group_ns;
            let tub_tree = shape(n, w + 2);
            delays.mux_ns + delays.xor_ns + f64::from(tub_tree.depth) * delays.fa_ns + acc_ns
        }
    } + delays.reg_overhead_ns;
    TimingReport {
        family,
        precision,
        n,
        critical_path_ns: path_ns,
        slack_ns: CLOCK_PERIOD_NS - path_ns,
        fmax_mhz: 1e3 / path_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(family: Family, p: IntPrecision, n: usize) -> TimingReport {
        pe_cell_timing(family, p, n, StageDelays::nangate45())
    }

    #[test]
    fn both_families_close_timing_at_250mhz() {
        // §IV fixes 250 MHz for all evaluations; every swept
        // configuration must meet it.
        for p in IntPrecision::PAPER_SWEEP {
            for n in [4usize, 16, 32, 256, 1024] {
                for family in Family::BOTH {
                    let r = report(family, p, n);
                    assert!(
                        r.slack_ns > 0.0,
                        "{family} {p} n={n}: path {:.2} ns exceeds 4 ns",
                        r.critical_path_ns
                    );
                }
            }
        }
    }

    #[test]
    fn tub_path_is_shorter_than_binary() {
        // The multiplier front-end (pp-gen + Dadda + product CPA) is
        // replaced by mux + XOR; the shared reduction tree keeps the
        // gap moderate rather than dramatic.
        for p in [IntPrecision::Int4, IntPrecision::Int8] {
            let b = report(Family::Binary, p, 16);
            let t = report(Family::Tub, p, 16);
            assert!(
                t.critical_path_ns < b.critical_path_ns,
                "{p}: tub {:.2} vs binary {:.2}",
                t.critical_path_ns,
                b.critical_path_ns
            );
        }
    }

    #[test]
    fn path_grows_with_width_and_precision() {
        let narrow = report(Family::Binary, IntPrecision::Int4, 16);
        let wide = report(Family::Binary, IntPrecision::Int8, 16);
        assert!(wide.critical_path_ns > narrow.critical_path_ns);
        let small = report(Family::Tub, IntPrecision::Int8, 16);
        let big = report(Family::Tub, IntPrecision::Int8, 1024);
        assert!(big.critical_path_ns > small.critical_path_ns);
    }

    #[test]
    fn fmax_is_consistent_with_path() {
        let r = report(Family::Tub, IntPrecision::Int8, 16);
        assert!((r.fmax_mhz - 1e3 / r.critical_path_ns).abs() < 1e-9);
        assert!(r.fmax_mhz > 250.0);
    }
}
