//! tub multiplier datapath netlists.
//!
//! The tub PE replaces the array multiplier with a handful of gates
//! (§II-B: "multiplexers, shifters, and registers"): per multiplier, a
//! weight register, a *2s-unary block* (comparator against the cell's
//! shared pulse counter) and a mux/sign slice steering `0 / ±a / ±2a`
//! into the cell's adder tree. The shift-by-one is pure wiring.

use tempus_arith::IntPrecision;

use crate::cells::CellKind;
use crate::netlist::{Module, Role};

/// Per-multiplier tub datapath slice.
///
/// Composition:
/// * `w`-bit weight capture register (sign + magnitude);
/// * 2s-unary block: a `(w-1)`-bit equality/threshold comparator against
///   the shared cell counter (XNOR per bit + AND reduce) plus a
///   last-pulse detector;
/// * contribution steering: a 2:1 mux per product-term bit (`w+2` bits:
///   activation, ×2 shift and sign) and a sign-applying XOR per bit;
/// * an integrated clock-gating cell keeping the slice silent for
///   zero weights (§V-C's "silent PEs").
#[must_use]
pub fn tub_multiplier_slice(precision: IntPrecision) -> Module {
    let w = u64::from(precision.bits());
    let term = w + 2;
    let mut m =
        Module::new(format!("tub_slice_{precision}"), Role::PerMultiplier).with_activity(0.35);
    // Weight capture (magnitude + sign).
    m.add(CellKind::Dff, w);
    // 2s-unary block: threshold comparator against the shared counter.
    m.add(CellKind::Xnor2, w - 1);
    m.add(CellKind::And2, (w - 1).div_ceil(2));
    m.add(CellKind::Nor2, 1);
    m.add(CellKind::Inv, 1);
    // Steering mux (pulse value select) + sign applicator.
    m.add(CellKind::Mux2, term);
    m.add(CellKind::Xor2, term);
    // Clock gate for silent-PE operation.
    m.add(CellKind::ClockGate, 1);
    m
}

/// Per-cell fixed tub control: the shared pulse down-counter, the
/// accumulator (register + carry-propagate adder), the partial-sum
/// output register and the multi-cycle handshake FSM (§III).
///
/// `n` is the number of multipliers in the cell; the accumulator width
/// is `2w + ceil(log2 n)` so the full dot product accumulates without
/// loss.
#[must_use]
pub fn tub_cell_control(precision: IntPrecision, n: usize) -> Module {
    let w = u64::from(precision.bits());
    let acc_bits = u64::from(precision.accumulator_bits(n));
    let mut m =
        Module::new(format!("tub_ctrl_{precision}_n{n}"), Role::CellFixed).with_activity(0.40);
    // Shared pulse counter: (w-1)-bit down counter (the worst-case
    // stream is 2^(w-2) cycles) + decrement logic + zero detect.
    let cnt = (w - 1).max(1);
    m.add(CellKind::Dff, cnt);
    m.add(CellKind::HalfAdder, cnt);
    m.add(CellKind::Nor2, cnt.div_ceil(2));
    // Accumulator: register + CPA folding the tree output in.
    m.add(CellKind::Dff, acc_bits);
    m.add(CellKind::FullAdder, acc_bits);
    // Partial-sum output register (forwarded to CACC when all cells
    // finish, §III).
    m.add(CellKind::Dff, acc_bits);
    // Handshake / sequencing FSM: a few state flops and decode gates.
    m.add(CellKind::Dff, 4);
    m.add(CellKind::Nand2, 12);
    m.add(CellKind::Nor2, 8);
    m.add(CellKind::Inv, 6);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellLibrary;
    use crate::gen::binary_multiplier;

    #[test]
    fn tub_slice_is_much_smaller_than_binary_multiplier() {
        let lib = CellLibrary::nangate45();
        // At INT8 the array multiplier dwarfs the tub slice; at INT4
        // the gap narrows (the paper's own Table II shows the same
        // trend: 80% INT8 vs 72% INT4 cell-level reduction at n=16).
        let tub8 = tub_multiplier_slice(IntPrecision::Int8)
            .rollup(&lib, 0.3)
            .total()
            .area_um2;
        let bin8 = binary_multiplier(IntPrecision::Int8)
            .rollup(&lib, 0.3)
            .total()
            .area_um2;
        assert!(tub8 < bin8 / 2.0, "INT8: tub {tub8} vs binary {bin8}");
        let tub4 = tub_multiplier_slice(IntPrecision::Int4)
            .rollup(&lib, 0.3)
            .total()
            .area_um2;
        let bin4 = binary_multiplier(IntPrecision::Int4)
            .rollup(&lib, 0.3)
            .total()
            .area_um2;
        assert!(tub4 < bin4, "INT4: tub {tub4} vs binary {bin4}");
    }

    #[test]
    fn tub_slice_int8_area_band() {
        // The slice should be on the order of 100 um^2 raw (the paper's
        // fitted slope is ~34 um^2 after DC optimization; calibration
        // bridges the gap).
        let lib = CellLibrary::nangate45();
        let area = tub_multiplier_slice(IntPrecision::Int8)
            .rollup(&lib, 0.3)
            .total()
            .area_um2;
        assert!((50.0..200.0).contains(&area), "area {area}");
    }

    #[test]
    fn cell_control_scales_with_log_n_only() {
        let lib = CellLibrary::nangate45();
        let c16 = tub_cell_control(IntPrecision::Int8, 16)
            .rollup(&lib, 0.3)
            .total()
            .area_um2;
        let c1024 = tub_cell_control(IntPrecision::Int8, 1024)
            .rollup(&lib, 0.3)
            .total()
            .area_um2;
        // 64x more multipliers adds only log2(64) = 6 accumulator bits.
        assert!(c1024 / c16 < 1.5, "ratio {}", c1024 / c16);
    }

    #[test]
    fn slice_has_weight_register_flops() {
        assert_eq!(tub_multiplier_slice(IntPrecision::Int8).ff_count(), 8);
        assert_eq!(tub_multiplier_slice(IntPrecision::Int4).ff_count(), 4);
    }
}
