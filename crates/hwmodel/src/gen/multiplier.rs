//! Binary signed multiplier netlist, elaborated the way DesignWare
//! maps `a * b` for the CMAC datapath (§IV): Baugh-Wooley partial
//! products, Dadda carry-save reduction, carry-lookahead final adder.

use tempus_arith::IntPrecision;

use crate::cells::CellKind;
use crate::gen::reduction::{dadda_reduce, multiplier_column_heights};
use crate::netlist::{Module, Role};

/// Builds a `w`×`w` signed (Baugh-Wooley) multiplier producing the full
/// `2w`-bit product.
///
/// Gate composition:
/// * `(w-1)²+1` AND2 and `2(w-1)` NAND2 partial-product gates
///   (Baugh-Wooley complements the two sign rows);
/// * Dadda reduction full/half adders (plus two extra half adders
///   absorbing the Baugh-Wooley +1 constants);
/// * a carry-lookahead CPA across the final two rows (one full adder
///   per bit plus one AOI/OAI lookahead pair per 4-bit group).
#[must_use]
pub fn binary_multiplier(precision: IntPrecision) -> Module {
    let w = precision.bits() as u64;
    let mut m =
        Module::new(format!("dw_mult_{precision}"), Role::PerMultiplier).with_activity(0.30);
    // Partial-product generation.
    m.add(CellKind::And2, (w - 1) * (w - 1) + 1);
    m.add(CellKind::Nand2, 2 * (w - 1));
    // Carry-save reduction.
    let plan = dadda_reduce(&multiplier_column_heights(w as u32));
    m.add(CellKind::FullAdder, plan.full_adders);
    m.add(CellKind::HalfAdder, plan.half_adders + 2);
    // Final carry-propagate adder with lookahead every 4 bits.
    let cpa = u64::from(plan.cpa_width.max(1));
    m.add(CellKind::FullAdder, cpa);
    m.add(CellKind::Aoi21, cpa.div_ceil(4));
    m.add(CellKind::Oai21, cpa.div_ceil(4));
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellLibrary;

    #[test]
    fn int8_multiplier_area_is_plausible() {
        // An 8x8 signed multiplier in 45nm is a few hundred um^2;
        // anything far outside that means the composition is wrong.
        let lib = CellLibrary::nangate45();
        let m = binary_multiplier(IntPrecision::Int8);
        let area = m.rollup(&lib, 0.3).total().area_um2;
        assert!(
            (200.0..600.0).contains(&area),
            "INT8 multiplier area {area} um2 outside sanity band"
        );
    }

    #[test]
    fn area_grows_superlinearly_with_width() {
        let lib = CellLibrary::nangate45();
        let a4 = binary_multiplier(IntPrecision::Int4)
            .rollup(&lib, 0.3)
            .total()
            .area_um2;
        let a8 = binary_multiplier(IntPrecision::Int8)
            .rollup(&lib, 0.3)
            .total()
            .area_um2;
        // Roughly quadratic: 3x-5x from 4 to 8 bits.
        assert!(a8 / a4 > 2.5, "a8/a4 = {}", a8 / a4);
        assert!(a8 / a4 < 6.0, "a8/a4 = {}", a8 / a4);
    }

    #[test]
    fn multiplier_is_purely_combinational() {
        let m = binary_multiplier(IntPrecision::Int8);
        assert_eq!(m.ff_count(), 0);
    }

    #[test]
    fn role_is_per_multiplier() {
        assert_eq!(
            binary_multiplier(IntPrecision::Int2).role(),
            Role::PerMultiplier
        );
    }
}
