//! Structural netlist generators.
//!
//! Each generator returns a [`crate::netlist::Module`] describing the
//! standard-cell composition of one hardware block the paper
//! synthesizes: binary multipliers as DesignWare would elaborate them
//! (Baugh-Wooley partial products + Dadda reduction + carry-lookahead
//! final adder, §IV), the tub multiplier datapath slice, balanced adder
//! trees, register banks and handshake FSMs.

mod adder_tree;
mod multiplier;
mod reduction;
mod regs;
mod tub_datapath;

pub use adder_tree::adder_tree_module;
pub use multiplier::binary_multiplier;
pub use reduction::{dadda_reduce, multiplier_column_heights, ReductionPlan};
pub use regs::{clock_gate_bank, fsm, register_bank};
pub use tub_datapath::{tub_cell_control, tub_multiplier_slice};
