//! Register banks, clock-gating banks and control FSM netlists.

use crate::cells::CellKind;
use crate::netlist::{Module, Role};

/// A `bits`-wide register bank.
#[must_use]
pub fn register_bank(name: &str, bits: u64, role: Role) -> Module {
    let mut m = Module::new(name, role);
    m.add(CellKind::Dff, bits);
    m
}

/// A bank of `count` integrated clock-gating cells (one per gated
/// subtree, as NVDLA gates each MAC cell, §II-C).
#[must_use]
pub fn clock_gate_bank(name: &str, count: u64, role: Role) -> Module {
    let mut m = Module::new(name, role);
    m.add(CellKind::ClockGate, count);
    m
}

/// A small control FSM with `state_bits` state flops and roughly
/// `decode_gates` gates of next-state/output decode.
#[must_use]
pub fn fsm(name: &str, state_bits: u64, decode_gates: u64, role: Role) -> Module {
    let mut m = Module::new(name, role).with_activity(0.30);
    m.add(CellKind::Dff, state_bits);
    m.add(CellKind::Nand2, decode_gates / 2);
    m.add(CellKind::Nor2, decode_gates / 4);
    m.add(CellKind::Inv, decode_gates / 4);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellLibrary;

    #[test]
    fn register_bank_counts_flops() {
        let m = register_bank("w", 24, Role::UnitOverhead);
        assert_eq!(m.ff_count(), 24);
        assert_eq!(m.cell_count(), 24);
    }

    #[test]
    fn fsm_gate_budget() {
        let m = fsm("hs", 3, 40, Role::CellFixed);
        assert_eq!(m.ff_count(), 3);
        assert_eq!(m.cell_count(), 3 + 20 + 10 + 10);
    }

    #[test]
    fn clock_gates_are_sequential_but_not_flops() {
        let lib = CellLibrary::nangate45();
        let m = clock_gate_bank("cg", 16, Role::UnitOverhead);
        assert_eq!(m.ff_count(), 0);
        assert_eq!(m.cell_count(), 16);
        assert!(m.rollup(&lib, 0.2).total().area_um2 > 0.0);
    }
}
