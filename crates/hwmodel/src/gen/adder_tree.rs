//! Balanced adder-tree netlists, shared by both PE cell families.

use tempus_arith::adder_tree::shape;

use crate::cells::CellKind;
use crate::netlist::{Module, Role};

/// Builds the netlist of a balanced binary adder tree reducing `n`
/// terms of `input_bits` each.
///
/// Level `l` adders are `input_bits + l` wide; each is a ripple chain
/// of full adders which synthesis would refine, so the generator adds a
/// modest lookahead allowance (one AOI/OAI pair per 4 bits) as the
/// final CPA in [`crate::gen::binary_multiplier`] does.
#[must_use]
pub fn adder_tree_module(n: usize, input_bits: u32, role: Role) -> Module {
    let t = shape(n, input_bits);
    let mut m = Module::new(format!("adder_tree_n{n}_w{input_bits}"), role).with_activity(0.25);
    for &(width, count) in &t.level_widths {
        let bits = u64::from(width) * count as u64;
        m.add(CellKind::FullAdder, bits);
        m.add(CellKind::Aoi21, bits.div_ceil(4));
        m.add(CellKind::Oai21, bits.div_ceil(4));
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellLibrary;

    #[test]
    fn tree_grows_linearly_in_n() {
        let lib = CellLibrary::nangate45();
        let a16 = adder_tree_module(16, 16, Role::PerMultiplier)
            .rollup(&lib, 0.25)
            .total()
            .area_um2;
        let a256 = adder_tree_module(256, 16, Role::PerMultiplier)
            .rollup(&lib, 0.25)
            .total()
            .area_um2;
        let ratio = a256 / a16;
        // (n-1) adders with slowly growing widths: ~16x-22x.
        assert!((14.0..24.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn narrow_inputs_make_cheaper_trees() {
        let lib = CellLibrary::nangate45();
        // The tub tree adds (w+2)-bit terms vs the binary tree's 2w-bit
        // terms — a significant part of the cell-level savings.
        let tub = adder_tree_module(16, 10, Role::PerMultiplier)
            .rollup(&lib, 0.25)
            .total()
            .area_um2;
        let bin = adder_tree_module(16, 16, Role::PerMultiplier)
            .rollup(&lib, 0.25)
            .total()
            .area_um2;
        assert!(tub < bin);
    }

    #[test]
    fn single_term_tree_is_empty() {
        let m = adder_tree_module(1, 16, Role::PerMultiplier);
        assert_eq!(m.cell_count(), 0);
    }
}
