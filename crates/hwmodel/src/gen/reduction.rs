//! Dadda partial-product reduction planning.
//!
//! DesignWare elaborates multipliers into a partial-product array, a
//! carry-save reduction tree and a final carry-propagate adder. The
//! reduction tree's adder counts follow Dadda's algorithm: stage height
//! targets 2, 3, 4, 6, 9, 13, 19, … applied column-wise with just enough
//! full/half adders per stage.

/// Counts of compressors needed to reduce a partial-product matrix to
/// two rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReductionPlan {
    /// Full adders (3:2 compressors).
    pub full_adders: u64,
    /// Half adders (2:2 compressors).
    pub half_adders: u64,
    /// Reduction stages.
    pub stages: u32,
    /// Width of the final two-row carry-propagate addition.
    pub cpa_width: u32,
}

/// Dadda height target sequence below `h`: the largest d_i < h where
/// d_1 = 2, d_{i+1} = floor(1.5 * d_i).
fn dadda_target_below(h: u32) -> u32 {
    let mut d = 2u32;
    let mut prev = 2u32;
    while d < h {
        prev = d;
        d = d * 3 / 2;
    }
    if d == h {
        // Current height *is* a Dadda number: next target is the
        // previous one.
        prev
    } else {
        // d overshot; the previous value is < h.
        prev
    }
}

/// Plans the Dadda reduction of a matrix given its column heights
/// (index 0 = least significant column).
///
/// Returns the compressor counts and final adder width. Carries from
/// column `j` feed column `j+1` in the *next* stage, per Dadda's
/// formulation.
///
/// # Panics
///
/// Panics if `heights` is empty.
#[must_use]
pub fn dadda_reduce(heights: &[u32]) -> ReductionPlan {
    assert!(!heights.is_empty(), "reduction needs at least one column");
    let mut h: Vec<u32> = heights.to_vec();
    let mut fa = 0u64;
    let mut ha = 0u64;
    let mut stages = 0u32;
    while h.iter().copied().max().unwrap_or(0) > 2 {
        let max = h.iter().copied().max().unwrap();
        let target = dadda_target_below(max);
        stages += 1;
        let mut carries = vec![0u32; h.len() + 1];
        for j in 0..h.len() {
            let mut col = h[j] + carries[j];
            while col > target {
                if col == target + 1 {
                    // Half adder: 2 in -> 1 sum here + 1 carry out.
                    ha += 1;
                    col -= 1;
                    carries[j + 1] += 1;
                } else {
                    // Full adder: 3 in -> 1 sum here + 1 carry out.
                    fa += 1;
                    col -= 2;
                    carries[j + 1] += 1;
                }
            }
            h[j] = col;
        }
        if carries[h.len()] > 0 {
            h.push(carries[h.len()]);
        }
    }
    // Final CPA spans every column still holding two bits.
    let cpa_width = h.iter().filter(|&&c| c >= 2).count() as u32;
    ReductionPlan {
        full_adders: fa,
        half_adders: ha,
        stages,
        cpa_width,
    }
}

/// Column heights of a `w`×`w` partial-product matrix: column `i` of
/// `2w-1` columns holds `min(i+1, w, 2w-1-i)` bits.
#[must_use]
pub fn multiplier_column_heights(w: u32) -> Vec<u32> {
    let cols = 2 * w - 1;
    (0..cols).map(|i| (i + 1).min(w).min(cols - i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dadda_8x8_canonical_counts() {
        // The Dadda 8x8 multiplier is the textbook example: 35 full
        // adders, 7 half adders, 4 stages (heights 8 -> 6 -> 4 -> 3 -> 2).
        let plan = dadda_reduce(&multiplier_column_heights(8));
        assert_eq!(plan.full_adders, 35);
        assert_eq!(plan.half_adders, 7);
        assert_eq!(plan.stages, 4);
    }

    #[test]
    fn dadda_4x4_canonical_counts() {
        // Dadda 4x4: 3 full adders, 3 half adders, 2 stages
        // (heights 4 -> 3 -> 2). Bit conservation check: 16 initial
        // partial-product bits minus one per FA leaves 13 = 1 + 6x2.
        let plan = dadda_reduce(&multiplier_column_heights(4));
        assert_eq!(plan.full_adders, 3);
        assert_eq!(plan.half_adders, 3);
        assert_eq!(plan.stages, 2);
    }

    #[test]
    fn bit_conservation() {
        // Each FA removes exactly one bit from the matrix; HAs are
        // neutral. Final bit count must equal initial minus FA count.
        for w in [2u32, 3, 4, 6, 8, 12, 16] {
            let heights = multiplier_column_heights(w);
            let initial: u64 = heights.iter().map(|&h| u64::from(h)).sum();
            let plan = dadda_reduce(&heights);
            // After reduction every column has height <= 2 and the two
            // rows are added by the CPA; reconstruct the final count.
            assert_eq!(initial, u64::from(w) * u64::from(w));
            assert!(plan.full_adders < initial, "w={w}");
        }
    }

    #[test]
    fn trivial_matrices_need_no_reduction() {
        let plan = dadda_reduce(&[1, 2, 2, 1]);
        assert_eq!(plan.full_adders, 0);
        assert_eq!(plan.half_adders, 0);
        assert_eq!(plan.stages, 0);
        assert_eq!(plan.cpa_width, 2);
    }

    #[test]
    fn column_heights_shape() {
        assert_eq!(multiplier_column_heights(4), vec![1, 2, 3, 4, 3, 2, 1]);
        let h8 = multiplier_column_heights(8);
        assert_eq!(h8.len(), 15);
        assert_eq!(h8[7], 8);
        assert_eq!(h8.iter().sum::<u32>(), 64);
    }

    #[test]
    fn larger_widths_scale_quadratically() {
        let p8 = dadda_reduce(&multiplier_column_heights(8));
        let p16 = dadda_reduce(&multiplier_column_heights(16));
        // FA count grows roughly 4x from w=8 to w=16.
        let ratio = p16.full_adders as f64 / p8.full_adders as f64;
        assert!(
            (3.0..6.0).contains(&ratio),
            "ratio {ratio} outside expectation"
        );
    }
}
