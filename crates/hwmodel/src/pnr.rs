//! Place-and-route estimation model: the Rust stand-in for the paper's
//! Cadence Innovus flow (§V-B).
//!
//! Die area follows the paper's fixed 70% floorplan utilization; power
//! applies a per-family uplift (routed wire load + clock tree) fitted
//! to Table III. Wirelength is estimated with a Rent's-rule power law
//! for reporting and layout rendering.

use tempus_arith::IntPrecision;

use crate::design::{DesignPoint, Family};
use crate::synth::{SynthModel, SynthReport};

/// Post-P&R estimate for a CMAC/PCU unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PnrReport {
    /// The design point.
    pub point: DesignPoint,
    /// Die (floorplan) area in mm² at the target utilization.
    pub die_area_mm2: f64,
    /// Synthesized cell area placed on the die, mm².
    pub cell_area_mm2: f64,
    /// Floorplan utilization.
    pub utilization: f64,
    /// Total post-route power in mW.
    pub total_power_mw: f64,
    /// Estimated total wirelength in metres (Rent's-rule estimate).
    pub wirelength_m: f64,
    /// Number of standard-cell rows in the floorplan.
    pub rows: u32,
    /// Die edge length in µm (square floorplan).
    pub die_edge_um: f64,
}

/// The P&R model, layered over a [`SynthModel`].
#[derive(Debug, Clone)]
pub struct PnrModel {
    synth: SynthModel,
}

impl PnrModel {
    /// Creates the model over `synth`.
    #[must_use]
    pub fn new(synth: SynthModel) -> Self {
        PnrModel { synth }
    }

    /// The underlying synthesis model.
    #[must_use]
    pub fn synth(&self) -> &SynthModel {
        &self.synth
    }

    /// Places and routes a CMAC/PCU unit.
    #[must_use]
    pub fn place_and_route(
        &self,
        family: Family,
        precision: IntPrecision,
        k: usize,
        n: usize,
    ) -> PnrReport {
        let unit: SynthReport = self.synth.unit(family, precision, k, n);
        let utilization = self.synth.calibration().pnr_utilization();
        let die_area_mm2 = unit.area_mm2 / utilization;
        let die_edge_um = (die_area_mm2 * 1e6).sqrt();
        let row_height = self.synth.library().row_height_um;
        let rows = (die_edge_um / row_height).ceil() as u32;
        let uplift = self.synth.calibration().pnr_power_uplift(family);
        // Rent's-rule wirelength: L_total ≈ c · N^p · avg_len, with the
        // average length growing with die edge. Constants tuned for
        // reporting plausibility only — power does not depend on this.
        let cells = unit.cell_count as f64;
        let avg_len_um = 0.35 * die_edge_um.sqrt() * 4.0;
        let wirelength_m = cells * 3.0 * avg_len_um * 1e-6;
        PnrReport {
            point: DesignPoint::new(family, precision, k, n),
            die_area_mm2,
            cell_area_mm2: unit.area_mm2,
            utilization,
            total_power_mw: unit.power_mw * uplift,
            wirelength_m,
            rows,
            die_edge_um,
        }
    }

    /// The paper's Table III configuration: INT4 16×4.
    #[must_use]
    pub fn table_iii(&self, family: Family) -> PnrReport {
        self.place_and_route(family, IntPrecision::Int4, 16, 4)
    }
}

impl Default for PnrModel {
    fn default() -> Self {
        PnrModel::new(SynthModel::nangate45())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_reproduced() {
        let pnr = PnrModel::default();
        let cmac = pnr.table_iii(Family::Binary);
        let pcu = pnr.table_iii(Family::Tub);
        assert!(
            (cmac.die_area_mm2 - 0.0361).abs() / 0.0361 < 0.02,
            "CMAC die {:.4}",
            cmac.die_area_mm2
        );
        assert!(
            (pcu.die_area_mm2 - 0.0168).abs() / 0.0168 < 0.02,
            "PCU die {:.4}",
            pcu.die_area_mm2
        );
        assert!(
            (cmac.total_power_mw - 10.7013).abs() / 10.7013 < 0.02,
            "CMAC power {:.3}",
            cmac.total_power_mw
        );
        assert!(
            (pcu.total_power_mw - 6.1146).abs() / 6.1146 < 0.02,
            "PCU power {:.3}",
            pcu.total_power_mw
        );
    }

    #[test]
    fn pnr_headline_improvements() {
        // §I contribution 4: 53% area and 44% power improvement.
        let pnr = PnrModel::default();
        let cmac = pnr.table_iii(Family::Binary);
        let pcu = pnr.table_iii(Family::Tub);
        let area_red = (1.0 - pcu.die_area_mm2 / cmac.die_area_mm2) * 100.0;
        let power_red = (1.0 - pcu.total_power_mw / cmac.total_power_mw) * 100.0;
        assert!((area_red - 53.0).abs() < 3.0, "area {area_red}");
        assert!((power_red - 44.0).abs() < 3.0, "power {power_red}");
    }

    #[test]
    fn utilization_relates_cell_and_die_area() {
        let pnr = PnrModel::default();
        let r = pnr.place_and_route(Family::Tub, IntPrecision::Int8, 16, 16);
        assert!((r.cell_area_mm2 / r.die_area_mm2 - 0.70).abs() < 1e-9);
        assert!(r.rows > 0);
        assert!(r.wirelength_m > 0.0);
    }
}
