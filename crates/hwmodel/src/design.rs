//! Design-point vocabulary shared across the hardware model.

use std::fmt;

use tempus_arith::IntPrecision;

/// The two datapath families the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Family {
    /// Conventional binary arithmetic (NVDLA's CMAC).
    Binary,
    /// Temporal-unary-binary arithmetic (Tempus Core's PCU).
    Tub,
}

impl Family {
    /// Both families, binary first (the baseline).
    pub const BOTH: [Family; 2] = [Family::Binary, Family::Tub];

    /// Unit name at the CMAC/PCU level.
    #[must_use]
    pub const fn unit_name(self) -> &'static str {
        match self {
            Family::Binary => "CMAC",
            Family::Tub => "PCU",
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Family::Binary => f.write_str("binary"),
            Family::Tub => f.write_str("tub"),
        }
    }
}

/// A fully specified design point: family, precision and array shape
/// (`k` PE cells of `n` multipliers each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DesignPoint {
    /// Datapath family.
    pub family: Family,
    /// Operand precision.
    pub precision: IntPrecision,
    /// Number of PE cells (array height; kernels served in parallel).
    pub k: usize,
    /// Multipliers per PE cell (array width; channels per atomic op).
    pub n: usize,
}

impl DesignPoint {
    /// Creates a design point.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `n` is zero.
    #[must_use]
    pub fn new(family: Family, precision: IntPrecision, k: usize, n: usize) -> Self {
        assert!(k > 0 && n > 0, "array dimensions must be nonzero");
        DesignPoint {
            family,
            precision,
            k,
            n,
        }
    }

    /// Multiply-accumulate lanes in the array (`k * n`).
    #[must_use]
    pub fn lanes(self) -> usize {
        self.k * self.n
    }

    /// The paper's headline 16×16 configuration at this family and
    /// precision.
    #[must_use]
    pub fn array_16x16(family: Family, precision: IntPrecision) -> Self {
        DesignPoint::new(family, precision, 16, 16)
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}x{}",
            self.family, self.precision, self.k, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let d = DesignPoint::new(Family::Tub, IntPrecision::Int8, 16, 4);
        assert_eq!(d.to_string(), "tub INT8 16x4");
        assert_eq!(Family::Binary.unit_name(), "CMAC");
        assert_eq!(Family::Tub.unit_name(), "PCU");
    }

    #[test]
    fn lanes_multiply() {
        assert_eq!(
            DesignPoint::array_16x16(Family::Binary, IntPrecision::Int4).lanes(),
            256
        );
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dims_rejected() {
        let _ = DesignPoint::new(Family::Binary, IntPrecision::Int8, 0, 16);
    }
}
