//! Synthesis estimation model: the Rust stand-in for the paper's
//! Synopsys Design Compiler runs (§IV).

use tempus_arith::IntPrecision;

use crate::calibration::{Calibration, DEFAULT_ACTIVITY, FREQ_MHZ};
use crate::cells::CellLibrary;
use crate::design::{DesignPoint, Family};
use crate::netlist::Module;
use crate::pe_cell::pe_cell_module;
use crate::unit::unit_module;

/// Hierarchy level of a synthesis estimate, mirroring the paper's three
/// granularities (§IV): single PE cell, k×n PE array, full CMAC/PCU
/// unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// A single PE cell (k = 1).
    PeCell,
    /// The k×n PE array.
    Array,
    /// The full CMAC (binary) or PCU (tub) unit.
    Unit,
}

/// Post-synthesis estimate for one design point at one level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthReport {
    /// The design point evaluated.
    pub point: DesignPoint,
    /// Hierarchy level.
    pub level: Level,
    /// Calibrated cell area in mm².
    pub area_mm2: f64,
    /// Calibrated total power (dynamic + leakage) in mW at 250 MHz.
    pub power_mw: f64,
    /// Uncalibrated structural area in mm² (for provenance).
    pub raw_area_mm2: f64,
    /// Standard-cell instance count of the underlying netlist.
    pub cell_count: u64,
    /// Flip-flop count of the underlying netlist.
    pub ff_count: u64,
}

/// The synthesis model: NanGate45 library plus fitted calibration.
///
/// ```
/// use tempus_hwmodel::{Family, SynthModel};
/// use tempus_arith::IntPrecision;
///
/// let hw = SynthModel::nangate45();
/// let cell = hw.pe_cell(Family::Tub, IntPrecision::Int8, 16);
/// // Paper Table II: 0.0011 mm².
/// assert!((cell.area_mm2 - 0.0011).abs() / 0.0011 < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct SynthModel {
    lib: CellLibrary,
    calibration: Calibration,
}

impl SynthModel {
    /// Builds the model for NanGate45 and runs the calibration fit.
    #[must_use]
    pub fn nangate45() -> Self {
        let lib = CellLibrary::nangate45();
        let calibration = Calibration::fit(&lib);
        SynthModel { lib, calibration }
    }

    /// The cell library in use.
    #[must_use]
    pub fn library(&self) -> &CellLibrary {
        &self.lib
    }

    /// The fitted calibration constants.
    #[must_use]
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// Evaluation clock frequency in MHz.
    #[must_use]
    pub fn freq_mhz(&self) -> f64 {
        FREQ_MHZ
    }

    /// Estimates a single PE cell (paper Table II granularity).
    #[must_use]
    pub fn pe_cell(&self, family: Family, precision: IntPrecision, n: usize) -> SynthReport {
        let module = pe_cell_module(family, precision, n);
        self.report(
            DesignPoint::new(family, precision, 1, n),
            Level::PeCell,
            &module,
            self.calibration
                .cell_area_mm2(&self.lib, family, precision, n),
            self.calibration
                .cell_power_mw(&self.lib, family, precision, n),
        )
    }

    /// Estimates a k×n PE array (paper Fig. 4 granularity).
    #[must_use]
    pub fn pe_array(
        &self,
        family: Family,
        precision: IntPrecision,
        k: usize,
        n: usize,
    ) -> SynthReport {
        let module = crate::array::pe_array_module(family, precision, k, n);
        self.report(
            DesignPoint::new(family, precision, k, n),
            Level::Array,
            &module,
            self.calibration
                .array_area_mm2(&self.lib, family, precision, k, n),
            self.calibration
                .array_power_mw(&self.lib, family, precision, k, n),
        )
    }

    /// Estimates a full CMAC/PCU unit (paper Fig. 5 granularity).
    #[must_use]
    pub fn unit(&self, family: Family, precision: IntPrecision, k: usize, n: usize) -> SynthReport {
        let module = unit_module(family, precision, k, n);
        self.report(
            DesignPoint::new(family, precision, k, n),
            Level::Unit,
            &module,
            self.calibration
                .unit_area_mm2(&self.lib, family, precision, k, n),
            self.calibration
                .unit_power_mw(&self.lib, family, precision, k, n),
        )
    }

    fn report(
        &self,
        point: DesignPoint,
        level: Level,
        module: &Module,
        area_mm2: f64,
        power_mw: f64,
    ) -> SynthReport {
        let rollup = module.rollup(&self.lib, DEFAULT_ACTIVITY);
        let total = rollup.total();
        SynthReport {
            point,
            level,
            area_mm2,
            power_mw,
            raw_area_mm2: total.area_um2 / 1e6,
            cell_count: total.cell_count,
            ff_count: total.ff_count,
        }
    }

    /// Fraction of a k×n PE array's total power that is
    /// static/leakage at the nominal 250 MHz clock, in `[0, 1)` —
    /// `leak / (dyn + leak)` from the structural netlist rollup at
    /// the calibration activity. The DVFS energy model uses this to
    /// split a calibrated total-power figure into the
    /// voltage-squared-scaled dynamic share and the wall-time-charged
    /// static share.
    #[must_use]
    pub fn leakage_fraction(
        &self,
        family: Family,
        precision: IntPrecision,
        k: usize,
        n: usize,
    ) -> f64 {
        let module = crate::array::pe_array_module(family, precision, k, n);
        let total = module.rollup(&self.lib, DEFAULT_ACTIVITY).total();
        let dynamic = total.dynamic_mw(FREQ_MHZ);
        let leak = total.leakage_mw();
        if dynamic + leak <= 0.0 {
            return 0.0;
        }
        (leak / (dynamic + leak)).clamp(0.0, 0.999)
    }

    /// Improvement of tub over binary at the same configuration:
    /// `(area_reduction_pct, power_reduction_pct)`.
    #[must_use]
    pub fn improvement_pct(
        &self,
        level: Level,
        precision: IntPrecision,
        k: usize,
        n: usize,
    ) -> (f64, f64) {
        let (b, t) = match level {
            Level::PeCell => (
                self.pe_cell(Family::Binary, precision, n),
                self.pe_cell(Family::Tub, precision, n),
            ),
            Level::Array => (
                self.pe_array(Family::Binary, precision, k, n),
                self.pe_array(Family::Tub, precision, k, n),
            ),
            Level::Unit => (
                self.unit(Family::Binary, precision, k, n),
                self.unit(Family::Tub, precision, k, n),
            ),
        };
        (
            (1.0 - t.area_mm2 / b.area_mm2) * 100.0,
            (1.0 - t.power_mw / b.power_mw) * 100.0,
        )
    }
}

impl Default for SynthModel {
    fn default() -> Self {
        SynthModel::nangate45()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_carry_netlist_statistics() {
        let hw = SynthModel::nangate45();
        let r = hw.pe_cell(Family::Binary, IntPrecision::Int8, 16);
        assert!(r.cell_count > 1000);
        assert!(r.ff_count >= 256, "operand registers expected");
        assert!(r.raw_area_mm2 > 0.0);
    }

    #[test]
    fn improvement_positive_at_table_ii_points() {
        let hw = SynthModel::nangate45();
        for p in [IntPrecision::Int4, IntPrecision::Int8] {
            for n in [16, 256, 1024] {
                let (a, pw) = hw.improvement_pct(Level::PeCell, p, 1, n);
                assert!(a > 0.0, "{p} n={n} area");
                assert!(pw > 0.0, "{p} n={n} power");
            }
        }
    }

    #[test]
    fn unit_larger_than_array_larger_than_cell() {
        let hw = SynthModel::nangate45();
        let cell = hw.pe_cell(Family::Binary, IntPrecision::Int8, 16);
        let array = hw.pe_array(Family::Binary, IntPrecision::Int8, 16, 16);
        let unit = hw.unit(Family::Binary, IntPrecision::Int8, 16, 16);
        assert!(array.area_mm2 > cell.area_mm2 * 15.0);
        assert!(unit.area_mm2 > array.area_mm2);
        assert!(unit.power_mw > array.power_mw);
    }

    #[test]
    fn leakage_fraction_is_small_and_positive() {
        let hw = SynthModel::nangate45();
        for family in Family::BOTH {
            let f = hw.leakage_fraction(family, IntPrecision::Int8, 16, 16);
            assert!(f > 0.001 && f < 0.2, "{family} leak fraction {f}");
        }
    }

    #[test]
    fn int2_unit_sweep_is_finite_and_positive() {
        let hw = SynthModel::nangate45();
        for n in [4, 16, 32] {
            for family in Family::BOTH {
                let r = hw.unit(family, IntPrecision::Int2, 16, n);
                assert!(r.area_mm2 > 0.0 && r.area_mm2.is_finite(), "{family} n={n}");
                assert!(r.power_mw > 0.0 && r.power_mw.is_finite(), "{family} n={n}");
            }
        }
    }
}
