//! Multi-array scaling: area/power for N replicated PE arrays plus
//! the cross-array partial-sum reduction tree.
//!
//! The runtime's sharded execution layer (`tempus_core::shard`)
//! models a DLA with `num_arrays` PE arrays; this module prices that
//! configuration so iso-area comparisons against the single-array
//! socket stay honest: replicating an array N× multiplies its
//! silicon N×, and the channel-group fallback additionally needs a
//! reduction tree — `atomic_k` lanes of an N-input accumulator-width
//! adder tree — whose cost must not be hand-waved away.
//!
//! The reduction tree is built as a structural netlist
//! ([`crate::gen::adder_tree::adder_tree_module`]) and calibrated
//! with the same raw→calibrated scale the parent array carries, so
//! its share is consistent with the rest of the model.

use tempus_arith::IntPrecision;

use crate::calibration::{DEFAULT_ACTIVITY, FREQ_MHZ};
use crate::design::Family;
use crate::gen::adder_tree_module;
use crate::netlist::{Module, Role};
use crate::synth::{SynthModel, SynthReport};

/// Accumulator width the cross-array reduction adds at (the `nv_small`
/// CACC width; partial sums leave each array at this precision).
pub const REDUCTION_ACC_BITS: u32 = 34;

/// Post-synthesis estimate for an N-array configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiArrayReport {
    /// Arrays replicated.
    pub arrays: usize,
    /// One array's estimate (the replicated unit).
    pub per_array: SynthReport,
    /// Calibrated area of the cross-array reduction tree, mm²
    /// (0 for a single array — nothing to reduce).
    pub reduction_area_mm2: f64,
    /// Calibrated power of the reduction tree, mW at 250 MHz.
    pub reduction_power_mw: f64,
    /// Total area: `arrays × per_array + reduction`, mm².
    pub total_area_mm2: f64,
    /// Total power: `arrays × per_array + reduction`, mW.
    pub total_power_mw: f64,
}

impl MultiArrayReport {
    /// The reduction tree's share of total area (0 for one array).
    #[must_use]
    pub fn reduction_overhead(&self) -> f64 {
        if self.total_area_mm2 == 0.0 {
            0.0
        } else {
            self.reduction_area_mm2 / self.total_area_mm2
        }
    }

    /// Area relative to the single-array socket: how many single
    /// arrays' worth of silicon this configuration spends.
    #[must_use]
    pub fn area_multiple(&self) -> f64 {
        if self.per_array.area_mm2 == 0.0 {
            0.0
        } else {
            self.total_area_mm2 / self.per_array.area_mm2
        }
    }
}

impl SynthModel {
    /// Estimates a DLA with `arrays` replicated `k`×`n` PE arrays of
    /// `family` at `precision`, including the cross-array reduction
    /// tree (`k` lanes of an `arrays`-input adder tree at
    /// [`REDUCTION_ACC_BITS`]).
    #[must_use]
    pub fn multi_array(
        &self,
        family: Family,
        precision: IntPrecision,
        k: usize,
        n: usize,
        arrays: usize,
    ) -> MultiArrayReport {
        let arrays = arrays.max(1);
        let per_array = self.pe_array(family, precision, k, n);
        let (reduction_area_mm2, reduction_power_mw) = if arrays > 1 {
            let mut tree =
                Module::new(format!("xarray_reduction_{arrays}x{k}"), Role::UnitOverhead);
            tree.instantiate(
                k as u64,
                adder_tree_module(arrays, REDUCTION_ACC_BITS, Role::UnitOverhead),
            );
            let raw = tree.rollup(self.library(), DEFAULT_ACTIVITY).total();
            let raw_area_mm2 = raw.area_um2 / 1e6;
            let raw_power_mw = raw.dynamic_mw(FREQ_MHZ) + raw.leakage_mw();
            // Scale by the same raw→calibrated factor the array
            // carries so the reduction's share is model-consistent.
            let area_scale = per_array.area_mm2 / per_array.raw_area_mm2.max(f64::MIN_POSITIVE);
            (raw_area_mm2 * area_scale, raw_power_mw * area_scale)
        } else {
            (0.0, 0.0)
        };
        MultiArrayReport {
            arrays,
            total_area_mm2: arrays as f64 * per_array.area_mm2 + reduction_area_mm2,
            total_power_mw: arrays as f64 * per_array.power_mw + reduction_power_mw,
            per_array,
            reduction_area_mm2,
            reduction_power_mw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_array_has_no_reduction_cost() {
        let hw = SynthModel::nangate45();
        let r = hw.multi_array(Family::Tub, IntPrecision::Int8, 16, 16, 1);
        assert_eq!(r.reduction_area_mm2, 0.0);
        assert_eq!(r.reduction_power_mw, 0.0);
        assert!((r.total_area_mm2 - r.per_array.area_mm2).abs() < 1e-12);
        assert!((r.area_multiple() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn replication_scales_and_reduction_stays_small() {
        let hw = SynthModel::nangate45();
        for family in Family::BOTH {
            let mut prev_area = 0.0;
            for arrays in [1usize, 2, 4, 8] {
                let r = hw.multi_array(family, IntPrecision::Int8, 16, 16, arrays);
                assert!(r.total_area_mm2 > prev_area, "{family} arrays={arrays}");
                assert!(r.total_power_mw > 0.0 && r.total_power_mw.is_finite());
                // N arrays cost at least N× one array, and the
                // reduction tree stays a small fraction of the total.
                assert!(r.area_multiple() >= arrays as f64);
                assert!(
                    r.reduction_overhead() < 0.1,
                    "{family} arrays={arrays}: reduction {:.1}% of total",
                    r.reduction_overhead() * 100.0
                );
                prev_area = r.total_area_mm2;
            }
        }
    }

    #[test]
    fn reduction_grows_with_array_count() {
        let hw = SynthModel::nangate45();
        let r2 = hw.multi_array(Family::Tub, IntPrecision::Int8, 16, 16, 2);
        let r8 = hw.multi_array(Family::Tub, IntPrecision::Int8, 16, 16, 8);
        assert!(r8.reduction_area_mm2 > r2.reduction_area_mm2);
        assert!(r8.reduction_power_mw > r2.reduction_power_mw);
    }

    #[test]
    fn tub_multi_array_keeps_its_area_advantage() {
        // The paper's area win must survive replication: N tub arrays
        // plus reduction still undercut N binary arrays plus
        // reduction.
        let hw = SynthModel::nangate45();
        for arrays in [2usize, 4] {
            let tub = hw.multi_array(Family::Tub, IntPrecision::Int8, 16, 16, arrays);
            let bin = hw.multi_array(Family::Binary, IntPrecision::Int8, 16, 16, arrays);
            assert!(tub.total_area_mm2 < bin.total_area_mm2);
            assert!(tub.total_power_mw < bin.total_power_mw);
        }
    }
}
