//! Hierarchical structural netlists.
//!
//! A [`Module`] is a tree of named instances, each holding a multiset of
//! standard cells plus child modules with multiplicities. Generators in
//! [`crate::gen`] build modules for multipliers, adder trees, register
//! banks and encoders; the synthesis model rolls them up into area,
//! leakage and activity-weighted dynamic power.
//!
//! Every module carries a [`Role`] so the calibration layer can scale
//! per-multiplier datapath structures separately from per-cell fixed
//! overhead — the two regression coefficients of the paper's own
//! area-vs-n scaling (Table II).

use std::collections::BTreeMap;
use std::fmt;

use crate::cells::{CellKind, CellLibrary};

/// Structural role of a module, used by calibration to apply fitted
/// scale factors at the right granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Role {
    /// Hardware replicated once per multiplier (datapath slice).
    PerMultiplier,
    /// Hardware fixed per PE cell (accumulator, FSM, encoder control).
    CellFixed,
    /// Hardware added at the CMAC/PCU unit boundary (operand capture,
    /// retiming, handshake).
    UnitOverhead,
    /// Broadcast/interconnect structures at the array level.
    Interconnect,
}

impl Role {
    /// All roles, for iteration.
    pub const ALL: [Role; 4] = [
        Role::PerMultiplier,
        Role::CellFixed,
        Role::UnitOverhead,
        Role::Interconnect,
    ];
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Role::PerMultiplier => "per-multiplier",
            Role::CellFixed => "cell-fixed",
            Role::UnitOverhead => "unit-overhead",
            Role::Interconnect => "interconnect",
        };
        f.write_str(s)
    }
}

/// A hierarchical netlist module.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    name: String,
    role: Role,
    /// Switching activity override for this module's combinational
    /// cells (fraction of cycles an average output toggles). `None`
    /// inherits the synthesis model's default.
    activity: Option<f64>,
    cells: BTreeMap<CellKind, u64>,
    children: Vec<(u64, Module)>,
}

impl Module {
    /// Creates an empty module.
    #[must_use]
    pub fn new(name: impl Into<String>, role: Role) -> Self {
        Module {
            name: name.into(),
            role,
            activity: None,
            cells: BTreeMap::new(),
            children: Vec::new(),
        }
    }

    /// Module name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Module role.
    #[must_use]
    pub fn role(&self) -> Role {
        self.role
    }

    /// Sets the combinational activity override (builder style).
    #[must_use]
    pub fn with_activity(mut self, activity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&activity),
            "activity must be a fraction"
        );
        self.activity = Some(activity);
        self
    }

    /// Activity override, if any.
    #[must_use]
    pub fn activity(&self) -> Option<f64> {
        self.activity
    }

    /// Adds `count` cells of `kind`.
    pub fn add(&mut self, kind: CellKind, count: u64) -> &mut Self {
        if count > 0 {
            *self.cells.entry(kind).or_insert(0) += count;
        }
        self
    }

    /// Instantiates `count` copies of `child`.
    pub fn instantiate(&mut self, count: u64, child: Module) -> &mut Self {
        if count > 0 {
            self.children.push((count, child));
        }
        self
    }

    /// Direct cell counts of this module (children excluded).
    #[must_use]
    pub fn own_cells(&self) -> &BTreeMap<CellKind, u64> {
        &self.cells
    }

    /// Child instances as `(multiplicity, module)` pairs.
    #[must_use]
    pub fn children(&self) -> &[(u64, Module)] {
        &self.children
    }

    /// Flattened cell counts of the whole subtree.
    #[must_use]
    pub fn flatten(&self) -> BTreeMap<CellKind, u64> {
        let mut out = BTreeMap::new();
        self.flatten_into(1, &mut out);
        out
    }

    fn flatten_into(&self, mult: u64, out: &mut BTreeMap<CellKind, u64>) {
        for (&kind, &count) in &self.cells {
            *out.entry(kind).or_insert(0) += mult * count;
        }
        for (m, child) in &self.children {
            child.flatten_into(mult * m, out);
        }
    }

    /// Total number of cell instances in the subtree.
    #[must_use]
    pub fn cell_count(&self) -> u64 {
        self.flatten().values().sum()
    }

    /// Total number of flip-flops in the subtree.
    #[must_use]
    pub fn ff_count(&self) -> u64 {
        self.flatten()
            .iter()
            .filter(|(k, _)| **k == CellKind::Dff)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Rolls up physical statistics under `lib`, using
    /// `default_activity` for modules without an override.
    #[must_use]
    pub fn rollup(&self, lib: &CellLibrary, default_activity: f64) -> Rollup {
        let mut r = Rollup::default();
        self.rollup_into(lib, 1, default_activity, &mut r);
        r
    }

    fn rollup_into(&self, lib: &CellLibrary, mult: u64, inherited: f64, out: &mut Rollup) {
        let activity = self.activity.unwrap_or(inherited);
        for (&kind, &count) in &self.cells {
            let spec = lib.spec(kind);
            let n = (mult * count) as f64;
            let slot = out.by_role.entry(self.role).or_default();
            slot.area_um2 += n * spec.area_um2;
            slot.leakage_nw += n * spec.leakage_nw;
            // Sequential cells toggle internally on every (enabled)
            // clock edge; combinational cells at the activity factor.
            let alpha = if kind.is_sequential() { 1.0 } else { activity };
            slot.switched_energy_fj_per_cycle += n * spec.switch_energy_fj * alpha;
            slot.cell_count += mult * count;
            if kind == CellKind::Dff {
                slot.ff_count += mult * count;
            }
        }
        for (m, child) in &self.children {
            child.rollup_into(lib, mult * m, activity, out);
        }
    }

    /// Renders the hierarchy as an indented report.
    #[must_use]
    pub fn report(&self, lib: &CellLibrary) -> String {
        let mut s = String::new();
        self.report_into(lib, 0, 1, &mut s);
        s
    }

    fn report_into(&self, lib: &CellLibrary, depth: usize, mult: u64, out: &mut String) {
        use std::fmt::Write as _;
        let flat = self.flatten();
        let area: f64 = flat
            .iter()
            .map(|(&k, &c)| c as f64 * lib.spec(k).area_um2)
            .sum();
        let _ = writeln!(
            out,
            "{:indent$}{}x {} [{}] cells={} area={:.1}um2",
            "",
            mult,
            self.name,
            self.role,
            self.cell_count(),
            area,
            indent = depth * 2
        );
        for (m, child) in &self.children {
            child.report_into(lib, depth + 1, *m, out);
        }
    }
}

/// Physical statistics of one role bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RoleStats {
    /// Cell area in µm².
    pub area_um2: f64,
    /// Leakage in nW.
    pub leakage_nw: f64,
    /// Activity-weighted switched energy per cycle in fJ.
    pub switched_energy_fj_per_cycle: f64,
    /// Cell instances.
    pub cell_count: u64,
    /// Flip-flop instances.
    pub ff_count: u64,
}

impl RoleStats {
    /// Adds another bucket into this one.
    pub fn merge(&mut self, other: RoleStats) {
        self.area_um2 += other.area_um2;
        self.leakage_nw += other.leakage_nw;
        self.switched_energy_fj_per_cycle += other.switched_energy_fj_per_cycle;
        self.cell_count += other.cell_count;
        self.ff_count += other.ff_count;
    }

    /// Dynamic power in mW at `freq_mhz` (fJ × MHz = nW).
    #[must_use]
    pub fn dynamic_mw(&self, freq_mhz: f64) -> f64 {
        self.switched_energy_fj_per_cycle * freq_mhz * 1e-6
    }

    /// Leakage power in mW.
    #[must_use]
    pub fn leakage_mw(&self) -> f64 {
        self.leakage_nw * 1e-6
    }
}

/// Roll-up of a module tree, bucketed by [`Role`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Rollup {
    /// Statistics per role.
    pub by_role: BTreeMap<Role, RoleStats>,
}

impl Rollup {
    /// Sum over all roles.
    #[must_use]
    pub fn total(&self) -> RoleStats {
        let mut t = RoleStats::default();
        for stats in self.by_role.values() {
            t.merge(*stats);
        }
        t
    }

    /// Statistics for one role (zero bucket if absent).
    #[must_use]
    pub fn role(&self, role: Role) -> RoleStats {
        self.by_role.get(&role).copied().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> CellLibrary {
        CellLibrary::nangate45()
    }

    #[test]
    fn flatten_multiplies_through_hierarchy() {
        let mut leaf = Module::new("leaf", Role::PerMultiplier);
        leaf.add(CellKind::FullAdder, 3);
        let mut mid = Module::new("mid", Role::PerMultiplier);
        mid.instantiate(4, leaf);
        let mut top = Module::new("top", Role::CellFixed);
        top.add(CellKind::Dff, 2);
        top.instantiate(5, mid);
        let flat = top.flatten();
        assert_eq!(flat[&CellKind::FullAdder], 60);
        assert_eq!(flat[&CellKind::Dff], 2);
        assert_eq!(top.cell_count(), 62);
        assert_eq!(top.ff_count(), 2);
    }

    #[test]
    fn zero_count_additions_are_ignored() {
        let mut m = Module::new("m", Role::CellFixed);
        m.add(CellKind::Inv, 0);
        m.instantiate(0, Module::new("x", Role::CellFixed));
        assert_eq!(m.cell_count(), 0);
        assert!(m.children().is_empty());
    }

    #[test]
    fn rollup_buckets_by_role() {
        let mut dp = Module::new("dp", Role::PerMultiplier);
        dp.add(CellKind::FullAdder, 10);
        let mut fixed = Module::new("acc", Role::CellFixed);
        fixed.add(CellKind::Dff, 20);
        let mut top = Module::new("cell", Role::CellFixed);
        top.instantiate(1, dp);
        top.instantiate(1, fixed);
        let r = top.rollup(&lib(), 0.2);
        let pm = r.role(Role::PerMultiplier);
        let cf = r.role(Role::CellFixed);
        assert!((pm.area_um2 - 47.88).abs() < 1e-9);
        assert!((cf.area_um2 - 20.0 * 4.522).abs() < 1e-9);
        assert_eq!(r.total().cell_count, 30);
        assert_eq!(r.total().ff_count, 20);
    }

    #[test]
    fn activity_override_scales_dynamic_power() {
        let mut quiet = Module::new("quiet", Role::CellFixed).with_activity(0.0);
        quiet.add(CellKind::Xor2, 100);
        let mut busy = Module::new("busy", Role::CellFixed).with_activity(1.0);
        busy.add(CellKind::Xor2, 100);
        let lib = lib();
        let rq = quiet.rollup(&lib, 0.5).total();
        let rb = busy.rollup(&lib, 0.5).total();
        assert_eq!(rq.switched_energy_fj_per_cycle, 0.0);
        assert!((rb.switched_energy_fj_per_cycle - 160.0).abs() < 1e-9);
    }

    #[test]
    fn sequential_cells_ignore_activity_override() {
        let mut m = Module::new("regs", Role::CellFixed).with_activity(0.0);
        m.add(CellKind::Dff, 10);
        let r = m.rollup(&lib(), 0.2).total();
        assert!((r.switched_energy_fj_per_cycle - 40.0).abs() < 1e-9);
    }

    #[test]
    fn children_inherit_parent_activity() {
        let mut child = Module::new("c", Role::CellFixed);
        child.add(CellKind::Inv, 10);
        let mut parent = Module::new("p", Role::CellFixed).with_activity(0.4);
        parent.instantiate(1, child);
        let r = parent.rollup(&lib(), 0.1).total();
        // 10 inverters at alpha inherited 0.4, 0.6 fJ each.
        assert!((r.switched_energy_fj_per_cycle - 2.4).abs() < 1e-9);
    }

    #[test]
    fn dynamic_power_units() {
        let mut m = Module::new("m", Role::CellFixed).with_activity(1.0);
        m.add(CellKind::Nand2, 1000);
        // 1000 gates x 0.8 fJ x 250 MHz = 0.2 mW.
        let r = m.rollup(&lib(), 1.0).total();
        assert!((r.dynamic_mw(250.0) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn report_includes_names_and_roles() {
        let mut top = Module::new("top", Role::CellFixed);
        let mut child = Module::new("dp", Role::PerMultiplier);
        child.add(CellKind::FullAdder, 1);
        top.instantiate(2, child);
        let rep = top.report(&lib());
        assert!(rep.contains("top"));
        assert!(rep.contains("2x dp [per-multiplier]"));
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn invalid_activity_rejected() {
        let _ = Module::new("m", Role::CellFixed).with_activity(1.5);
    }
}
