//! Published reference numbers from the Tempus Core paper (DATE 2025).
//!
//! These constants serve two purposes: a subset are *calibration
//! anchors* for the synthesis/P&R models (see [`crate::calibration`]),
//! and all of them are *comparison targets* printed next to measured
//! values by the report harness (EXPERIMENTS.md).
//!
//! Unit note: the paper's Table II and Fig. 4 label areas "µm²", which
//! is physically impossible in 45nm (a lone NAND2 is 0.798 µm²); cross-
//! checking against Table III (mm²) shows the intended unit is mm².
//! Everything here is stored in mm².

use tempus_arith::IntPrecision;

use crate::design::Family;

/// One Table II anchor: single PE cell (k=1) with `n` multipliers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellAnchor {
    /// Datapath family.
    pub family: Family,
    /// Precision.
    pub precision: IntPrecision,
    /// Multipliers per cell.
    pub n: usize,
    /// Post-synthesis cell area in mm².
    pub area_mm2: f64,
    /// Post-synthesis total power in mW.
    pub power_mw: f64,
}

/// Table II: post-synthesis area and power of a single PE cell.
pub const TABLE_II: [CellAnchor; 12] = {
    use Family::{Binary, Tub};
    use IntPrecision::{Int4, Int8};
    [
        CellAnchor {
            family: Binary,
            precision: Int4,
            n: 16,
            area_mm2: 0.0022,
            power_mw: 0.09,
        },
        CellAnchor {
            family: Binary,
            precision: Int4,
            n: 256,
            area_mm2: 0.0371,
            power_mw: 1.03,
        },
        CellAnchor {
            family: Binary,
            precision: Int4,
            n: 1024,
            area_mm2: 0.1462,
            power_mw: 3.98,
        },
        CellAnchor {
            family: Binary,
            precision: Int8,
            n: 16,
            area_mm2: 0.0056,
            power_mw: 0.20,
        },
        CellAnchor {
            family: Binary,
            precision: Int8,
            n: 256,
            area_mm2: 0.1063,
            power_mw: 3.00,
        },
        CellAnchor {
            family: Binary,
            precision: Int8,
            n: 1024,
            area_mm2: 0.4334,
            power_mw: 12.20,
        },
        CellAnchor {
            family: Tub,
            precision: Int4,
            n: 16,
            area_mm2: 0.0006,
            power_mw: 0.06,
        },
        CellAnchor {
            family: Tub,
            precision: Int4,
            n: 256,
            area_mm2: 0.0046,
            power_mw: 0.19,
        },
        CellAnchor {
            family: Tub,
            precision: Int4,
            n: 1024,
            area_mm2: 0.0171,
            power_mw: 0.51,
        },
        CellAnchor {
            family: Tub,
            precision: Int8,
            n: 16,
            area_mm2: 0.0011,
            power_mw: 0.088,
        },
        CellAnchor {
            family: Tub,
            precision: Int8,
            n: 256,
            area_mm2: 0.0093,
            power_mw: 0.32,
        },
        CellAnchor {
            family: Tub,
            precision: Int8,
            n: 1024,
            area_mm2: 0.0355,
            power_mw: 1.06,
        },
    ]
};

/// Table II improvement percentages (area, power) reported by the
/// paper per (precision, n); used as comparison targets.
pub const TABLE_II_IMPROVEMENT_PCT: [(IntPrecision, usize, f64, f64); 6] = [
    (IntPrecision::Int4, 16, 71.89, 25.86),
    (IntPrecision::Int4, 256, 87.53, 81.74),
    (IntPrecision::Int4, 1024, 88.30, 87.25),
    (IntPrecision::Int8, 16, 80.15, 54.72),
    (IntPrecision::Int8, 256, 91.24, 89.35),
    (IntPrecision::Int8, 1024, 91.81, 91.28),
];

/// One Fig. 4 anchor: a 16×16 PE array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayAnchor {
    /// Datapath family.
    pub family: Family,
    /// Precision.
    pub precision: IntPrecision,
    /// Array area in mm².
    pub area_mm2: f64,
    /// Array power in mW.
    pub power_mw: f64,
}

/// Fig. 4 anchors for the 16×16 array.
///
/// INT8 values are stated in §V-A (0.09 / 0.018 mm², 3.8 / 1.42 mW).
/// INT4 powers are derived from §V-C's energy statements (7.48 pJ and
/// 17.76 pJ over 4-cycle windows at 4 ns ⇒ 1.87 / 1.11 mW); INT4 areas
/// follow from §V-A's "for INT4, the reductions are 80% in area"
/// applied around the Table II cell sums.
pub const FIG4_16X16: [ArrayAnchor; 4] = {
    use Family::{Binary, Tub};
    use IntPrecision::{Int4, Int8};
    [
        ArrayAnchor {
            family: Binary,
            precision: Int8,
            area_mm2: 0.090,
            power_mw: 3.80,
        },
        ArrayAnchor {
            family: Tub,
            precision: Int8,
            area_mm2: 0.018,
            power_mw: 1.42,
        },
        ArrayAnchor {
            family: Binary,
            precision: Int4,
            area_mm2: 0.049,
            power_mw: 1.87,
        },
        ArrayAnchor {
            family: Tub,
            precision: Int4,
            area_mm2: 0.0098,
            power_mw: 1.11,
        },
    ]
};

/// Fig. 5 headline: PCU-vs-CMAC unit-level reductions for INT8
/// (area %, power %).
pub const FIG5_INT8_REDUCTION_PCT: (f64, f64) = (59.3, 15.3);

/// Fig. 5 sweep: array widths `16×n` for n in this list, across
/// INT8/INT4/INT2.
pub const FIG5_WIDTHS: [usize; 3] = [4, 16, 32];

/// Table III: post-place-and-route results, INT4 16×4 arrays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PnrAnchor {
    /// Datapath family.
    pub family: Family,
    /// Total die area in mm².
    pub area_mm2: f64,
    /// Total power in mW.
    pub power_mw: f64,
}

/// Table III anchors (CMAC then PCU).
pub const TABLE_III: [PnrAnchor; 2] = [
    PnrAnchor {
        family: Family::Binary,
        area_mm2: 0.0361,
        power_mw: 10.7013,
    },
    PnrAnchor {
        family: Family::Tub,
        area_mm2: 0.0168,
        power_mw: 6.1146,
    },
];

/// Floorplan utilization used for both P&R runs (§V-B).
pub const PNR_UTILIZATION: f64 = 0.70;

/// P&R headline improvements: 53% area efficiency, 44% power
/// efficiency (§I contribution 4).
pub const PNR_IMPROVEMENT_PCT: (f64, f64) = (53.0, 44.0);

/// §V-D / §I headline: iso-area throughput improvement of a 16×16
/// array: 5× for INT8, 4× for INT4.
pub const ISO_AREA_16X16: [(IntPrecision, f64); 2] =
    [(IntPrecision::Int8, 5.0), (IntPrecision::Int4, 4.0)];

/// Fig. 9 projection at n = 65536 multipliers: up to 26× (INT8) and
/// 18× (INT4) iso-area throughput.
pub const FIG9_PROJECTION_N65536: [(IntPrecision, f64); 2] =
    [(IntPrecision::Int8, 26.0), (IntPrecision::Int4, 18.0)];

/// §V-C workload-dependent latency (cycles per 16×16 tile window).
pub const WORKLOAD_LATENCY_CYCLES: [(&str, u32); 2] = [("MobileNetV2", 33), ("ResNeXt101", 31)];

/// §V-C average silent PEs per 16×16 tile.
pub const WORKLOAD_SILENT_PES: [(&str, f64); 2] = [("MobileNetV2", 6.0), ("ResNeXt101", 2.0)];

/// §V-C energy per 16×16 array window, INT8: binary 15 pJ; tub 187 pJ
/// (MobileNetV2) and 176 pJ (ResNeXt101).
pub const ENERGY_INT8_PJ: (f64, f64, f64) = (15.0, 187.0, 176.0);

/// §V-C energy per window, INT4: binary 7.48 pJ, tub 17.76 pJ.
pub const ENERGY_INT4_PJ: (f64, f64) = (7.48, 17.76);

/// §V-C energy-gap statement: 11.7× at INT8 shrinking to 2.3× at INT4.
pub const ENERGY_GAP: [(IntPrecision, f64); 2] =
    [(IntPrecision::Int8, 11.7), (IntPrecision::Int4, 2.3)];

/// Table I: word sparsity (% zero weights) of INT8-quantized CNNs.
pub const TABLE_I_SPARSITY_PCT: [(&str, f64); 8] = [
    ("MobileNetV2", 2.25),
    ("MobileNetV3", 9.52),
    ("GoogleNet", 1.91),
    ("InceptionV3", 1.99),
    ("ShuffleNetV3", 1.43),
    ("ResNet18", 2.043),
    ("ResNet50", 2.45),
    ("ResNeXt101", 2.64),
];

/// Looks up the Table II anchor for a design point, if present.
#[must_use]
pub fn table_ii_anchor(family: Family, precision: IntPrecision, n: usize) -> Option<CellAnchor> {
    TABLE_II
        .iter()
        .copied()
        .find(|a| a.family == family && a.precision == precision && a.n == n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_are_internally_consistent() {
        // The paper's improvement percentages should match the raw
        // Table II anchors to within rounding.
        for &(prec, n, area_pct, power_pct) in &TABLE_II_IMPROVEMENT_PCT {
            let b = table_ii_anchor(Family::Binary, prec, n).unwrap();
            let t = table_ii_anchor(Family::Tub, prec, n).unwrap();
            let area = (1.0 - t.area_mm2 / b.area_mm2) * 100.0;
            let power = (1.0 - t.power_mw / b.power_mw) * 100.0;
            assert!(
                (area - area_pct).abs() < 3.0,
                "{prec} n={n}: area {area:.1} vs paper {area_pct}"
            );
            assert!(
                (power - power_pct).abs() < 9.0,
                "{prec} n={n}: power {power:.1} vs paper {power_pct}"
            );
        }
    }

    #[test]
    fn fig4_int8_matches_16x_cell_sums() {
        // 16 × Table II cell(n=16) should approximate the Fig. 4 array.
        let b_cell = table_ii_anchor(Family::Binary, IntPrecision::Int8, 16).unwrap();
        let b_arr = FIG4_16X16
            .iter()
            .find(|a| a.family == Family::Binary && a.precision == IntPrecision::Int8)
            .unwrap();
        assert!((16.0 * b_cell.area_mm2 - b_arr.area_mm2).abs() / b_arr.area_mm2 < 0.05);
    }

    #[test]
    fn table_iii_improvements_match_headline() {
        let (b, t) = (TABLE_III[0], TABLE_III[1]);
        let area_red = (1.0 - t.area_mm2 / b.area_mm2) * 100.0;
        let power_red = (1.0 - t.power_mw / b.power_mw) * 100.0;
        assert!((area_red - PNR_IMPROVEMENT_PCT.0).abs() < 1.5, "{area_red}");
        assert!(
            (power_red - PNR_IMPROVEMENT_PCT.1).abs() < 1.5,
            "{power_red}"
        );
    }

    #[test]
    fn energy_int8_follows_from_fig4_and_latency() {
        // 3.8 mW × 4 ns ≈ 15.2 pJ; 1.42 mW × 33 cy × 4 ns ≈ 187 pJ.
        let (bin, tub_mnv2, tub_rnx) = ENERGY_INT8_PJ;
        assert!((3.8 * 4.0 - bin).abs() < 0.5);
        assert!((1.42 * 33.0 * 4.0 - tub_mnv2).abs() < 1.0);
        assert!((1.42 * 31.0 * 4.0 - tub_rnx).abs() < 1.0);
    }
}
