//! Technology calibration: fits the structural model's scale factors to
//! the paper's published anchor numbers.
//!
//! The raw netlist roll-ups capture gate *composition* faithfully but
//! cannot know what Synopsys DC's optimization (multi-bit flop mapping,
//! compound-cell technology mapping, timing-driven sizing) does to a
//! given design family. The paper's own data is close to linear in the
//! multiplier count `n` (Table II fits `area ≈ F + c·n` with ≤3%
//! residual), so we fit, per family × precision:
//!
//! 1. **Cell factors** `(αF, αP)` — least squares over the three
//!    Table II anchors, scaling the netlist's cell-fixed and
//!    per-multiplier role buckets;
//! 2. **Array factors** — ratio of the Fig. 4 16×16 anchor to 16
//!    calibrated cells (broadcast wiring overhead);
//! 3. **Unit overhead factors** `γ` — INT4 values solved from the
//!    Table III synthesis-cell areas (die × 70% utilization), the tub
//!    INT8 value solved from Fig. 5's 59.3%/15.3% reductions;
//! 4. **P&R factors** — the paper's 70% floorplan utilization plus a
//!    per-family power uplift (routed wire + clock tree) matching
//!    Table III.
//!
//! Precisions without anchors reuse the nearest anchored precision
//! (INT2 → INT4, INT16 → INT8). Every fitted constant is inspectable
//! via [`Calibration::provenance`]; anything clamped during fitting is
//! recorded there.

use std::collections::BTreeMap;

use tempus_arith::IntPrecision;

use crate::cells::CellLibrary;
use crate::design::Family;
use crate::netlist::{Role, Rollup};
use crate::paper;
use crate::pe_cell::pe_cell_module;
use crate::unit::unit_module;

/// Default switching activity assumed for combinational logic during
/// synthesis power analysis (DC's default-style vectorless assumption).
pub const DEFAULT_ACTIVITY: f64 = 0.25;

/// Evaluation clock frequency in MHz (§IV).
pub const FREQ_MHZ: f64 = 250.0;

/// Linear scale factors applied to a cell's role buckets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFactors {
    /// Factor on the cell-fixed bucket.
    pub fixed: f64,
    /// Factor on the per-multiplier bucket.
    pub per_mult: f64,
}

type Key = (Family, IntPrecision);

/// The complete set of fitted constants.
#[derive(Debug, Clone)]
pub struct Calibration {
    cell_area: BTreeMap<Key, LinearFactors>,
    cell_power: BTreeMap<Key, LinearFactors>,
    array_area: BTreeMap<Key, f64>,
    array_power: BTreeMap<Key, f64>,
    unit_area_gamma: BTreeMap<Key, f64>,
    unit_power_gamma: BTreeMap<Key, f64>,
    pnr_utilization: f64,
    pnr_power_uplift: BTreeMap<Family, f64>,
    notes: Vec<String>,
}

/// Maps every precision onto the nearest precision with paper anchors.
#[must_use]
pub fn anchor_precision(p: IntPrecision) -> IntPrecision {
    match p {
        IntPrecision::Int2 | IntPrecision::Int4 => IntPrecision::Int4,
        IntPrecision::Int8 | IntPrecision::Int16 => IntPrecision::Int8,
    }
}

fn anchor_key(family: Family, precision: IntPrecision) -> Key {
    (family, anchor_precision(precision))
}

/// Solves for `(αF, αP)` exactly through the first and last anchor
/// points (the paper's own data is linear-in-n to ≤3%, so pinning the
/// endpoints leaves only a small mid-point residual), falling back to
/// least squares when the 2×2 system is singular.
fn fit_factors(points: &[(f64, f64, f64)]) -> LinearFactors {
    if points.len() >= 2 {
        let (f0, p0, y0) = points[0];
        let (f1, p1, y1) = points[points.len() - 1];
        let det = f0 * p1 - f1 * p0;
        if det.abs() > 1e-12 {
            return LinearFactors {
                fixed: (y0 * p1 - y1 * p0) / det,
                per_mult: (f0 * y1 - f1 * y0) / det,
            };
        }
    }
    lsq2(points)
}

/// Solves `min Σ (αF·F_i + αP·P_i − y_i)²` for `(αF, αP)`.
fn lsq2(points: &[(f64, f64, f64)]) -> LinearFactors {
    let (mut sff, mut sfp, mut spp, mut sfy, mut spy) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for &(f, p, y) in points {
        sff += f * f;
        sfp += f * p;
        spp += p * p;
        sfy += f * y;
        spy += p * y;
    }
    let det = sff * spp - sfp * sfp;
    if det.abs() < 1e-12 {
        // Degenerate: fall back to a single proportional factor.
        let scale = spy / spp.max(1e-12);
        return LinearFactors {
            fixed: scale,
            per_mult: scale,
        };
    }
    LinearFactors {
        fixed: (sfy * spp - spy * sfp) / det,
        per_mult: (spy * sff - sfy * sfp) / det,
    }
}

struct RawBuckets {
    fixed: f64,
    per_mult: f64,
    interconnect: f64,
    unit_overhead: f64,
}

fn buckets_area(rollup: &Rollup) -> RawBuckets {
    RawBuckets {
        fixed: rollup.role(Role::CellFixed).area_um2,
        per_mult: rollup.role(Role::PerMultiplier).area_um2,
        interconnect: rollup.role(Role::Interconnect).area_um2,
        unit_overhead: rollup.role(Role::UnitOverhead).area_um2,
    }
}

fn buckets_power(rollup: &Rollup) -> RawBuckets {
    let p = |role: Role| {
        let s = rollup.role(role);
        s.dynamic_mw(FREQ_MHZ) + s.leakage_mw()
    };
    RawBuckets {
        fixed: p(Role::CellFixed),
        per_mult: p(Role::PerMultiplier),
        interconnect: p(Role::Interconnect),
        unit_overhead: p(Role::UnitOverhead),
    }
}

impl Calibration {
    /// Runs the full fitting pipeline against `lib`.
    #[must_use]
    pub fn fit(lib: &CellLibrary) -> Self {
        let mut cal = Calibration {
            cell_area: BTreeMap::new(),
            cell_power: BTreeMap::new(),
            array_area: BTreeMap::new(),
            array_power: BTreeMap::new(),
            unit_area_gamma: BTreeMap::new(),
            unit_power_gamma: BTreeMap::new(),
            pnr_utilization: paper::PNR_UTILIZATION,
            pnr_power_uplift: BTreeMap::new(),
            notes: Vec::new(),
        };
        cal.fit_cells(lib);
        cal.fit_arrays(lib);
        cal.fit_units(lib);
        cal.fit_pnr(lib);
        cal
    }

    fn fit_cells(&mut self, lib: &CellLibrary) {
        for family in Family::BOTH {
            for precision in [IntPrecision::Int4, IntPrecision::Int8] {
                let mut area_pts = Vec::new();
                let mut power_pts = Vec::new();
                for anchor in paper::TABLE_II
                    .iter()
                    .filter(|a| a.family == family && a.precision == precision)
                {
                    let rollup =
                        pe_cell_module(family, precision, anchor.n).rollup(lib, DEFAULT_ACTIVITY);
                    let a = buckets_area(&rollup);
                    let p = buckets_power(&rollup);
                    // Areas in mm² to match anchor units.
                    area_pts.push((a.fixed / 1e6, a.per_mult / 1e6, anchor.area_mm2));
                    power_pts.push((p.fixed, p.per_mult, anchor.power_mw));
                }
                self.cell_area
                    .insert((family, precision), fit_factors(&area_pts));
                self.cell_power
                    .insert((family, precision), fit_factors(&power_pts));
            }
        }
    }

    fn fit_arrays(&mut self, lib: &CellLibrary) {
        for anchor in paper::FIG4_16X16 {
            let key = (anchor.family, anchor.precision);
            let cell_area = self.cell_area_mm2(lib, anchor.family, anchor.precision, 16);
            let cell_power = self.cell_power_mw(lib, anchor.family, anchor.precision, 16);
            self.array_area
                .insert(key, anchor.area_mm2 / (16.0 * cell_area));
            self.array_power
                .insert(key, anchor.power_mw / (16.0 * cell_power));
        }
    }

    fn fit_units(&mut self, lib: &CellLibrary) {
        use Family::{Binary, Tub};
        use IntPrecision::{Int4, Int8};
        // INT4 area gammas from Table III synthesis-cell targets.
        for (family, anchor) in [(Binary, paper::TABLE_III[0]), (Tub, paper::TABLE_III[1])] {
            let target_cell_area = anchor.area_mm2 * self.pnr_utilization;
            let array = self.array_area_mm2(lib, family, Int4, 16, 4);
            let raw_ov =
                buckets_area(&unit_module(family, Int4, 16, 4).rollup(lib, DEFAULT_ACTIVITY))
                    .unit_overhead
                    / 1e6;
            let gamma = (target_cell_area - array) / raw_ov;
            let gamma = if gamma < 0.0 {
                self.notes.push(format!(
                    "unit area gamma for {family} INT4 clamped to 0 (array already exceeds Table III target)"
                ));
                0.0
            } else {
                gamma
            };
            self.unit_area_gamma.insert((family, Int4), gamma);
        }
        // Binary INT8 reuses the INT4 structure factor.
        let g_b4 = self.unit_area_gamma[&(Binary, Int4)];
        self.unit_area_gamma.insert((Binary, Int8), g_b4);
        // Tub INT8 solved from Fig. 5's 59.3% area reduction at 16×16.
        let (area_red, power_red) = paper::FIG5_INT8_REDUCTION_PCT;
        let cmac = self.unit_area_mm2(lib, Binary, Int8, 16, 16);
        let target_pcu = cmac * (1.0 - area_red / 100.0);
        let tub_array = self.array_area_mm2(lib, Tub, Int8, 16, 16);
        let raw_ov = buckets_area(&unit_module(Tub, Int8, 16, 16).rollup(lib, DEFAULT_ACTIVITY))
            .unit_overhead
            / 1e6;
        let gamma = ((target_pcu - tub_array) / raw_ov).max(0.0);
        self.unit_area_gamma.insert((Tub, Int8), gamma);

        // Power gammas: binary fixed at 1.0 (honest netlist); tub INT8
        // solved from Fig. 5's 15.3% power reduction, reused elsewhere.
        self.unit_power_gamma.insert((Binary, Int4), 1.0);
        self.unit_power_gamma.insert((Binary, Int8), 1.0);
        let cmac_p = self.unit_power_mw(lib, Binary, Int8, 16, 16);
        let target_pcu_p = cmac_p * (1.0 - power_red / 100.0);
        let tub_array_p = self.array_power_mw(lib, Tub, Int8, 16, 16);
        let raw_ov_p = buckets_power(&unit_module(Tub, Int8, 16, 16).rollup(lib, DEFAULT_ACTIVITY))
            .unit_overhead;
        let gamma_p = ((target_pcu_p - tub_array_p) / raw_ov_p).max(0.0);
        if gamma_p == 0.0 {
            self.notes
                .push("unit power gamma for tub INT8 clamped to 0".into());
        }
        self.unit_power_gamma.insert((Tub, Int8), gamma_p);
        self.unit_power_gamma.insert((Tub, Int4), gamma_p);
    }

    fn fit_pnr(&mut self, lib: &CellLibrary) {
        for (family, anchor) in [
            (Family::Binary, paper::TABLE_III[0]),
            (Family::Tub, paper::TABLE_III[1]),
        ] {
            let synth_power = self.unit_power_mw(lib, family, IntPrecision::Int4, 16, 4);
            self.pnr_power_uplift
                .insert(family, anchor.power_mw / synth_power);
        }
    }

    /// Calibrated PE-cell area in mm².
    #[must_use]
    pub fn cell_area_mm2(
        &self,
        lib: &CellLibrary,
        family: Family,
        precision: IntPrecision,
        n: usize,
    ) -> f64 {
        let rollup = pe_cell_module(family, precision, n).rollup(lib, DEFAULT_ACTIVITY);
        let b = buckets_area(&rollup);
        let f = self.cell_area[&anchor_key(family, precision)];
        let raw = (b.fixed + b.per_mult) / 1e6;
        let cal = (f.fixed * b.fixed + f.per_mult * b.per_mult) / 1e6;
        cal.max(0.01 * raw)
    }

    /// Calibrated PE-cell total power in mW.
    #[must_use]
    pub fn cell_power_mw(
        &self,
        lib: &CellLibrary,
        family: Family,
        precision: IntPrecision,
        n: usize,
    ) -> f64 {
        let rollup = pe_cell_module(family, precision, n).rollup(lib, DEFAULT_ACTIVITY);
        let b = buckets_power(&rollup);
        let f = self.cell_power[&anchor_key(family, precision)];
        let raw = b.fixed + b.per_mult;
        let cal = f.fixed * b.fixed + f.per_mult * b.per_mult;
        cal.max(0.01 * raw)
    }

    /// Calibrated k×n array area in mm².
    #[must_use]
    pub fn array_area_mm2(
        &self,
        lib: &CellLibrary,
        family: Family,
        precision: IntPrecision,
        k: usize,
        n: usize,
    ) -> f64 {
        let factor = self.array_area[&anchor_key(family, precision)];
        k as f64 * self.cell_area_mm2(lib, family, precision, n) * factor
    }

    /// Calibrated k×n array power in mW.
    #[must_use]
    pub fn array_power_mw(
        &self,
        lib: &CellLibrary,
        family: Family,
        precision: IntPrecision,
        k: usize,
        n: usize,
    ) -> f64 {
        let factor = self.array_power[&anchor_key(family, precision)];
        k as f64 * self.cell_power_mw(lib, family, precision, n) * factor
    }

    /// Calibrated unit (CMAC/PCU) synthesized cell area in mm².
    #[must_use]
    pub fn unit_area_mm2(
        &self,
        lib: &CellLibrary,
        family: Family,
        precision: IntPrecision,
        k: usize,
        n: usize,
    ) -> f64 {
        let gamma = self.unit_area_gamma[&anchor_key(family, precision)];
        let raw_ov =
            buckets_area(&unit_module(family, precision, k, n).rollup(lib, DEFAULT_ACTIVITY))
                .unit_overhead
                / 1e6;
        self.array_area_mm2(lib, family, precision, k, n) + gamma * raw_ov
    }

    /// Calibrated unit (CMAC/PCU) total synthesis power in mW.
    #[must_use]
    pub fn unit_power_mw(
        &self,
        lib: &CellLibrary,
        family: Family,
        precision: IntPrecision,
        k: usize,
        n: usize,
    ) -> f64 {
        let gamma = self.unit_power_gamma[&anchor_key(family, precision)];
        let raw = unit_module(family, precision, k, n).rollup(lib, DEFAULT_ACTIVITY);
        let b = buckets_power(&raw);
        self.array_power_mw(lib, family, precision, k, n) + gamma * b.unit_overhead
    }

    /// Raw (uncalibrated) interconnect area share of an array in mm² —
    /// exposed for layout rendering.
    #[must_use]
    pub fn raw_interconnect_mm2(
        &self,
        lib: &CellLibrary,
        family: Family,
        precision: IntPrecision,
        k: usize,
        n: usize,
    ) -> f64 {
        buckets_area(
            &crate::array::pe_array_module(family, precision, k, n).rollup(lib, DEFAULT_ACTIVITY),
        )
        .interconnect
            / 1e6
    }

    /// Floorplan utilization used by the P&R model.
    #[must_use]
    pub fn pnr_utilization(&self) -> f64 {
        self.pnr_utilization
    }

    /// Per-family P&R power uplift (routed wires + clock tree).
    #[must_use]
    pub fn pnr_power_uplift(&self, family: Family) -> f64 {
        self.pnr_power_uplift[&family]
    }

    /// Cell-level factors for inspection.
    #[must_use]
    pub fn cell_factors(
        &self,
        family: Family,
        precision: IntPrecision,
    ) -> (LinearFactors, LinearFactors) {
        let key = anchor_key(family, precision);
        (self.cell_area[&key], self.cell_power[&key])
    }

    /// Human-readable provenance of every fitted constant.
    #[must_use]
    pub fn provenance(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "calibration provenance (fit against paper anchors):");
        for (&(fam, prec), f) in &self.cell_area {
            let p = self.cell_power[&(fam, prec)];
            let _ = writeln!(
                s,
                "  cell {fam} {prec}: area factors (fixed {:.3}, per-mult {:.3}); power ({:.3}, {:.3}) [Table II two-point fit]",
                f.fixed, f.per_mult, p.fixed, p.per_mult
            );
        }
        for (&(fam, prec), f) in &self.array_area {
            let _ = writeln!(
                s,
                "  array {fam} {prec}: area x{:.3}, power x{:.3} [Fig. 4 16x16]",
                f,
                self.array_power[&(fam, prec)]
            );
        }
        for (&(fam, prec), g) in &self.unit_area_gamma {
            let _ = writeln!(
                s,
                "  unit {fam} {prec}: overhead gamma area {:.3}, power {:.3} [Table III / Fig. 5]",
                g,
                self.unit_power_gamma[&(fam, prec)]
            );
        }
        let _ = writeln!(
            s,
            "  pnr: utilization {:.2} [paper §V-B]",
            self.pnr_utilization
        );
        for (fam, u) in &self.pnr_power_uplift {
            let _ = writeln!(s, "  pnr power uplift {fam}: x{u:.3} [Table III]");
        }
        for note in &self.notes {
            let _ = writeln!(s, "  note: {note}");
        }
        s
    }

    /// Diagnostics recorded during fitting (clamps etc.).
    #[must_use]
    pub fn notes(&self) -> &[String] {
        &self.notes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CellLibrary, Calibration) {
        let lib = CellLibrary::nangate45();
        let cal = Calibration::fit(&lib);
        (lib, cal)
    }

    #[test]
    fn table_ii_anchors_reproduced_within_tolerance() {
        let (lib, cal) = setup();
        for anchor in paper::TABLE_II {
            let area = cal.cell_area_mm2(&lib, anchor.family, anchor.precision, anchor.n);
            let power = cal.cell_power_mw(&lib, anchor.family, anchor.precision, anchor.n);
            let area_err = (area - anchor.area_mm2).abs() / anchor.area_mm2;
            let power_err = (power - anchor.power_mw).abs() / anchor.power_mw;
            assert!(
                area_err < 0.10,
                "{} {} n={}: area {:.5} vs paper {:.5} ({:.1}% off)",
                anchor.family,
                anchor.precision,
                anchor.n,
                area,
                anchor.area_mm2,
                area_err * 100.0
            );
            assert!(
                power_err < 0.10,
                "{} {} n={}: power {:.4} vs paper {:.4} ({:.1}% off)",
                anchor.family,
                anchor.precision,
                anchor.n,
                power,
                anchor.power_mw,
                power_err * 100.0
            );
        }
    }

    #[test]
    fn fig4_anchors_reproduced() {
        let (lib, cal) = setup();
        for anchor in paper::FIG4_16X16 {
            let area = cal.array_area_mm2(&lib, anchor.family, anchor.precision, 16, 16);
            let power = cal.array_power_mw(&lib, anchor.family, anchor.precision, 16, 16);
            assert!((area - anchor.area_mm2).abs() / anchor.area_mm2 < 1e-6);
            assert!((power - anchor.power_mw).abs() / anchor.power_mw < 1e-6);
        }
    }

    #[test]
    fn fig5_int8_reductions_reproduced() {
        let (lib, cal) = setup();
        let cmac_a = cal.unit_area_mm2(&lib, Family::Binary, IntPrecision::Int8, 16, 16);
        let pcu_a = cal.unit_area_mm2(&lib, Family::Tub, IntPrecision::Int8, 16, 16);
        let red = (1.0 - pcu_a / cmac_a) * 100.0;
        assert!((red - 59.3).abs() < 1.0, "area reduction {red}");
        let cmac_p = cal.unit_power_mw(&lib, Family::Binary, IntPrecision::Int8, 16, 16);
        let pcu_p = cal.unit_power_mw(&lib, Family::Tub, IntPrecision::Int8, 16, 16);
        let red_p = (1.0 - pcu_p / cmac_p) * 100.0;
        assert!((red_p - 15.3).abs() < 1.0, "power reduction {red_p}");
    }

    #[test]
    fn table_iii_cell_areas_reproduced() {
        let (lib, cal) = setup();
        let cmac = cal.unit_area_mm2(&lib, Family::Binary, IntPrecision::Int4, 16, 4);
        let pcu = cal.unit_area_mm2(&lib, Family::Tub, IntPrecision::Int4, 16, 4);
        assert!(
            (cmac / 0.70 - 0.0361).abs() / 0.0361 < 0.02,
            "cmac die {}",
            cmac / 0.70
        );
        assert!(
            (pcu / 0.70 - 0.0168).abs() / 0.0168 < 0.02,
            "pcu die {}",
            pcu / 0.70
        );
    }

    #[test]
    fn int2_predictions_are_positive_and_ordered() {
        let (lib, cal) = setup();
        for n in [4, 16, 32] {
            let b = cal.cell_area_mm2(&lib, Family::Binary, IntPrecision::Int2, n);
            let t = cal.cell_area_mm2(&lib, Family::Tub, IntPrecision::Int2, n);
            assert!(b > 0.0 && t > 0.0, "n={n}");
        }
        // At scale, tub stays smaller at INT2 too.
        let b = cal.cell_area_mm2(&lib, Family::Binary, IntPrecision::Int2, 256);
        let t = cal.cell_area_mm2(&lib, Family::Tub, IntPrecision::Int2, 256);
        assert!(t < b);
    }

    #[test]
    fn provenance_mentions_all_fit_stages() {
        let (_, cal) = setup();
        let p = cal.provenance();
        assert!(p.contains("Table II two-point fit"));
        assert!(p.contains("Fig. 4"));
        assert!(p.contains("Table III"));
        assert!(p.contains("utilization 0.70"));
    }

    #[test]
    fn lsq2_exact_on_consistent_data() {
        // y = 2F + 3P exactly.
        let pts = [(1.0, 1.0, 5.0), (1.0, 2.0, 8.0), (1.0, 4.0, 14.0)];
        let f = lsq2(&pts);
        assert!((f.fixed - 2.0).abs() < 1e-9);
        assert!((f.per_mult - 3.0).abs() < 1e-9);
    }
}
