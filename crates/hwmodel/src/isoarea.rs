//! Iso-area throughput analysis (§V-D, Fig. 9).
//!
//! The tub array needs multiple cycles per partial-sum window, but its
//! PE cells are so much smaller that more of them fit in the same
//! silicon. Assuming the same `m` cycles per window (as the paper
//! does), the iso-area throughput improvement is simply the area ratio
//! binary/tub at equal configuration. Fig. 9 extrapolates the ratio to
//! n = 65536 multipliers from Table II's area scaling; we reproduce
//! that with a log-log (power-law) least-squares fit per family.

use tempus_arith::IntPrecision;

use crate::design::Family;
use crate::synth::SynthModel;

/// A fitted power law `area(n) = a · n^b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLaw {
    /// Coefficient `a` (mm² at n = 1).
    pub coeff: f64,
    /// Exponent `b`.
    pub exponent: f64,
}

impl PowerLaw {
    /// Least-squares fit in log-log space.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given or any value is
    /// non-positive.
    #[must_use]
    pub fn fit(points: &[(f64, f64)]) -> Self {
        assert!(points.len() >= 2, "power-law fit needs >= 2 points");
        let logs: Vec<(f64, f64)> = points
            .iter()
            .map(|&(n, y)| {
                assert!(n > 0.0 && y > 0.0, "power-law fit needs positive data");
                (n.ln(), y.ln())
            })
            .collect();
        let m = logs.len() as f64;
        let sx: f64 = logs.iter().map(|p| p.0).sum();
        let sy: f64 = logs.iter().map(|p| p.1).sum();
        let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
        let b = (m * sxy - sx * sy) / (m * sxx - sx * sx);
        let a = ((sy - b * sx) / m).exp();
        PowerLaw {
            coeff: a,
            exponent: b,
        }
    }

    /// Evaluates the law at `n`.
    #[must_use]
    pub fn eval(&self, n: f64) -> f64 {
        self.coeff * n.powf(self.exponent)
    }
}

/// One point of the Fig. 9 iso-area curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsoAreaPoint {
    /// Multipliers per cell.
    pub n: usize,
    /// Binary cell area in mm².
    pub binary_area_mm2: f64,
    /// tub cell area in mm².
    pub tub_area_mm2: f64,
    /// Iso-area throughput improvement (area ratio).
    pub improvement: f64,
    /// `true` when the point is extrapolated rather than modeled.
    pub extrapolated: bool,
}

/// Iso-area throughput analysis over single PE cells (k = 1).
#[derive(Debug, Clone)]
pub struct IsoAreaAnalysis {
    /// Modeled points (from the synthesis model).
    pub points: Vec<IsoAreaPoint>,
    /// Power-law fit of the binary cell areas.
    pub binary_law: PowerLaw,
    /// Power-law fit of the tub cell areas.
    pub tub_law: PowerLaw,
}

impl IsoAreaAnalysis {
    /// Runs the analysis at `precision` over the paper's anchor sizes
    /// n ∈ {16, 256, 1024}.
    #[must_use]
    pub fn run(hw: &SynthModel, precision: IntPrecision) -> Self {
        Self::run_over(hw, precision, &[16, 256, 1024])
    }

    /// Runs the analysis over arbitrary cell widths.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    #[must_use]
    pub fn run_over(hw: &SynthModel, precision: IntPrecision, widths: &[usize]) -> Self {
        let points: Vec<IsoAreaPoint> = widths
            .iter()
            .map(|&n| {
                let b = hw.pe_cell(Family::Binary, precision, n).area_mm2;
                let t = hw.pe_cell(Family::Tub, precision, n).area_mm2;
                IsoAreaPoint {
                    n,
                    binary_area_mm2: b,
                    tub_area_mm2: t,
                    improvement: b / t,
                    extrapolated: false,
                }
            })
            .collect();
        let bin_pts: Vec<(f64, f64)> = points
            .iter()
            .map(|p| (p.n as f64, p.binary_area_mm2))
            .collect();
        let tub_pts: Vec<(f64, f64)> = points
            .iter()
            .map(|p| (p.n as f64, p.tub_area_mm2))
            .collect();
        IsoAreaAnalysis {
            binary_law: PowerLaw::fit(&bin_pts),
            tub_law: PowerLaw::fit(&tub_pts),
            points,
        }
    }

    /// Projects the improvement at `n` from the fitted power laws
    /// (Fig. 9's red dotted trend lines).
    #[must_use]
    pub fn project(&self, n: usize) -> IsoAreaPoint {
        let b = self.binary_law.eval(n as f64);
        let t = self.tub_law.eval(n as f64);
        IsoAreaPoint {
            n,
            binary_area_mm2: b,
            tub_area_mm2: t,
            improvement: b / t,
            extrapolated: true,
        }
    }
}

/// Headline iso-area throughput at the 16×16 array level (§V-D): how
/// many tub PE cells fit in the binary array's area.
#[must_use]
pub fn array_iso_area_improvement(hw: &SynthModel, precision: IntPrecision) -> f64 {
    let b = hw.pe_array(Family::Binary, precision, 16, 16).area_mm2;
    let t = hw.pe_array(Family::Tub, precision, 16, 16).area_mm2;
    b / t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_fit_recovers_exact_law() {
        let pts: Vec<(f64, f64)> = [16.0, 256.0, 1024.0]
            .iter()
            .map(|&n: &f64| (n, 0.5 * n.powf(1.1)))
            .collect();
        let law = PowerLaw::fit(&pts);
        assert!((law.coeff - 0.5).abs() < 1e-9);
        assert!((law.exponent - 1.1).abs() < 1e-9);
    }

    #[test]
    fn headline_16x16_improvements() {
        // §V-D: 5x for INT8 and 4x for INT4 (paper's own arithmetic
        // gives 0.090/0.018 = 5.0 and 0.049/0.0098 = 5.0; the stated
        // INT4 figure is 4x — accept the 3.5..5.5 band).
        let hw = SynthModel::nangate45();
        let int8 = array_iso_area_improvement(&hw, IntPrecision::Int8);
        assert!((4.5..5.5).contains(&int8), "INT8 {int8}");
        let int4 = array_iso_area_improvement(&hw, IntPrecision::Int4);
        assert!((3.5..5.5).contains(&int4), "INT4 {int4}");
    }

    #[test]
    fn fig9_projection_magnitude() {
        // Fig. 9: up to ~26x (INT8) and ~18x (INT4) at n = 65536.
        let hw = SynthModel::nangate45();
        let int8 = IsoAreaAnalysis::run(&hw, IntPrecision::Int8).project(65536);
        assert!(
            (15.0..45.0).contains(&int8.improvement),
            "INT8 projection {}",
            int8.improvement
        );
        let int4 = IsoAreaAnalysis::run(&hw, IntPrecision::Int4).project(65536);
        assert!(
            (10.0..30.0).contains(&int4.improvement),
            "INT4 projection {}",
            int4.improvement
        );
        assert!(int8.extrapolated);
    }

    #[test]
    fn improvement_grows_with_n() {
        let hw = SynthModel::nangate45();
        let a = IsoAreaAnalysis::run(&hw, IntPrecision::Int8);
        let imps: Vec<f64> = a.points.iter().map(|p| p.improvement).collect();
        assert!(imps.windows(2).all(|w| w[1] > w[0]), "{imps:?}");
    }
}
