//! Hardware cost models for the Tempus Core reproduction: NanGate45
//! cell library, structural netlist generators, synthesis and
//! place-and-route estimation.
//!
//! The paper's evaluation (§IV-§V) uses Synopsys Design Compiler and
//! Cadence Innovus with the NanGate45 library; neither is available in
//! this environment, so this crate substitutes an explicit model:
//!
//! 1. [`gen`] builds *structural netlists* ([`netlist::Module`]) for
//!    every block the paper synthesizes — DesignWare-style Baugh-Wooley
//!    + Dadda multipliers, tub datapath slices, adder trees, registers;
//! 2. [`SynthModel`] rolls netlists up into area/power using NanGate45
//!    cell costs and a fitted [`calibration::Calibration`] whose anchor
//!    points are the paper's own Tables II/III and Figs. 4/5;
//! 3. [`PnrModel`] layers the paper's 70%-utilization floorplan and a
//!    Table III-fitted power uplift on top, with [`layout::Layout`]
//!    rendering Fig. 6-style floorplans;
//! 4. [`isoarea`] reproduces the Fig. 9 iso-area throughput analysis
//!    including its power-law projection to n = 65536.
//!
//! ```
//! use tempus_hwmodel::{Family, SynthModel};
//! use tempus_arith::IntPrecision;
//!
//! let hw = SynthModel::nangate45();
//! let (area_red, power_red) =
//!     hw.improvement_pct(tempus_hwmodel::Level::Array, IntPrecision::Int8, 16, 16);
//! // Paper §V-A quotes "75% area reduction and 62% power savings" for
//! // the 16x16 INT8 array; its own numbers (0.09 -> 0.018 mm²) give
//! // 80%, which is what the anchored model reproduces.
//! assert!((area_red - 80.0).abs() < 3.0);
//! assert!((power_red - 62.0).abs() < 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod calibration;
pub mod cells;
mod design;
pub mod gen;
pub mod isoarea;
pub mod layout;
pub mod multi_array;
pub mod netlist;
pub mod paper;
pub mod pe_cell;
pub mod pnr;
pub mod synth;
pub mod timing;
pub mod unit;

pub use design::{DesignPoint, Family};
pub use multi_array::MultiArrayReport;
pub use pnr::{PnrModel, PnrReport};
pub use synth::{Level, SynthModel, SynthReport};
