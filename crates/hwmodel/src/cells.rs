//! NanGate45 open cell library model.
//!
//! The paper synthesizes with the NanGate45 open-source cell library
//! (§IV). Cell areas below are the library's physical footprints; the
//! leakage and per-toggle switching energies are representative typical-
//! corner values for 45nm. Absolute accuracy of the energy constants is
//! not load-bearing: the synthesis model calibrates family-level factors
//! against the paper's anchor tables (see `calibration`), and these
//! constants set the *relative* cost of gate types, which is what shapes
//! the binary-vs-tub comparison.

use std::fmt;

/// Standard-cell types used by the netlist generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CellKind {
    /// Inverter (X1 drive).
    Inv,
    /// Buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// AND-OR-invert 2-1.
    Aoi21,
    /// OR-AND-invert 2-1.
    Oai21,
    /// 2:1 multiplexer.
    Mux2,
    /// Half adder.
    HalfAdder,
    /// Full adder.
    FullAdder,
    /// D flip-flop.
    Dff,
    /// Integrated clock-gating cell.
    ClockGate,
}

impl CellKind {
    /// Every kind, for iteration.
    pub const ALL: [CellKind; 15] = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Aoi21,
        CellKind::Oai21,
        CellKind::Mux2,
        CellKind::HalfAdder,
        CellKind::FullAdder,
        CellKind::Dff,
        CellKind::ClockGate,
    ];

    /// `true` for sequential (clocked) cells.
    #[must_use]
    pub const fn is_sequential(self) -> bool {
        matches!(self, CellKind::Dff | CellKind::ClockGate)
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CellKind::Inv => "INV_X1",
            CellKind::Buf => "BUF_X1",
            CellKind::Nand2 => "NAND2_X1",
            CellKind::Nor2 => "NOR2_X1",
            CellKind::And2 => "AND2_X1",
            CellKind::Or2 => "OR2_X1",
            CellKind::Xor2 => "XOR2_X1",
            CellKind::Xnor2 => "XNOR2_X1",
            CellKind::Aoi21 => "AOI21_X1",
            CellKind::Oai21 => "OAI21_X1",
            CellKind::Mux2 => "MUX2_X1",
            CellKind::HalfAdder => "HA_X1",
            CellKind::FullAdder => "FA_X1",
            CellKind::Dff => "DFF_X1",
            CellKind::ClockGate => "CLKGATE_X1",
        };
        f.write_str(name)
    }
}

/// Physical and electrical characteristics of one cell type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// Layout area in µm².
    pub area_um2: f64,
    /// Leakage power in nanowatts (typical corner).
    pub leakage_nw: f64,
    /// Energy per output toggle in femtojoules, including average local
    /// wire load. For sequential cells this is the per-clock-edge
    /// internal energy.
    pub switch_energy_fj: f64,
}

/// A standard-cell library: a [`CellSpec`] per [`CellKind`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellLibrary {
    name: &'static str,
    /// Standard-cell row height in µm (used by the P&R model).
    pub row_height_um: f64,
    specs: [CellSpec; 15],
}

impl CellLibrary {
    /// The NanGate 45nm open cell library model.
    #[must_use]
    pub fn nangate45() -> Self {
        let spec = |area, leak, energy| CellSpec {
            area_um2: area,
            leakage_nw: leak,
            switch_energy_fj: energy,
        };
        // Order must match CellKind::ALL.
        CellLibrary {
            name: "NanGate45",
            row_height_um: 1.4,
            specs: [
                spec(0.532, 15.0, 0.6),  // Inv
                spec(0.798, 18.0, 0.8),  // Buf
                spec(0.798, 20.0, 0.8),  // Nand2
                spec(0.798, 20.0, 0.8),  // Nor2
                spec(1.064, 25.0, 1.0),  // And2
                spec(1.064, 25.0, 1.0),  // Or2
                spec(1.596, 35.0, 1.6),  // Xor2
                spec(1.596, 35.0, 1.6),  // Xnor2
                spec(1.064, 25.0, 1.1),  // Aoi21
                spec(1.064, 25.0, 1.1),  // Oai21
                spec(1.862, 40.0, 1.8),  // Mux2
                spec(3.192, 60.0, 2.8),  // HalfAdder
                spec(4.788, 90.0, 4.2),  // FullAdder
                spec(4.522, 100.0, 4.0), // Dff
                spec(3.724, 80.0, 2.0),  // ClockGate
            ],
        }
    }

    /// Library name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Characteristics of `kind`.
    #[must_use]
    pub fn spec(&self, kind: CellKind) -> CellSpec {
        let idx = CellKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("every kind is in ALL");
        self.specs[idx]
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        CellLibrary::nangate45()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nangate45_known_areas() {
        let lib = CellLibrary::nangate45();
        assert_eq!(lib.spec(CellKind::Nand2).area_um2, 0.798);
        assert_eq!(lib.spec(CellKind::Dff).area_um2, 4.522);
        assert_eq!(lib.spec(CellKind::FullAdder).area_um2, 4.788);
    }

    #[test]
    fn sequential_classification() {
        assert!(CellKind::Dff.is_sequential());
        assert!(CellKind::ClockGate.is_sequential());
        assert!(!CellKind::FullAdder.is_sequential());
    }

    #[test]
    fn all_kinds_have_positive_specs() {
        let lib = CellLibrary::nangate45();
        for kind in CellKind::ALL {
            let s = lib.spec(kind);
            assert!(s.area_um2 > 0.0, "{kind} area");
            assert!(s.leakage_nw > 0.0, "{kind} leakage");
            assert!(s.switch_energy_fj > 0.0, "{kind} energy");
        }
    }

    #[test]
    fn display_names_are_library_style() {
        assert_eq!(CellKind::Nand2.to_string(), "NAND2_X1");
        assert_eq!(CellKind::ClockGate.to_string(), "CLKGATE_X1");
    }

    #[test]
    fn relative_costs_are_sane() {
        // A full adder must cost more than a half adder, which costs
        // more than an XOR; a DFF is among the largest cells.
        let lib = CellLibrary::nangate45();
        let fa = lib.spec(CellKind::FullAdder).area_um2;
        let ha = lib.spec(CellKind::HalfAdder).area_um2;
        let xor = lib.spec(CellKind::Xor2).area_um2;
        assert!(fa > ha && ha > xor);
        assert!(lib.spec(CellKind::Dff).area_um2 > lib.spec(CellKind::Mux2).area_um2);
    }
}
