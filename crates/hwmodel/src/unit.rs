//! CMAC / PCU unit netlists: PE array plus the unit-boundary hardware
//! the paper's Fig. 5 comparison includes.
//!
//! NVDLA's CMAC wraps the MAC array with ping-pong weight banks, input
//! capture, product retiming pipelines and handshake logic (§II-C).
//! Tempus Core's PCU replaces the retiming pipeline with the weight
//! store + temporal encoder bank, partial-sum skid buffers and the
//! multi-cycle handshake FSM (§III).

use tempus_arith::IntPrecision;

use crate::array::pe_array_module;
use crate::cells::CellKind;
use crate::design::Family;
use crate::gen::{clock_gate_bank, fsm, register_bank};
use crate::netlist::{Module, Role};

/// Builds the full unit (CMAC for [`Family::Binary`], PCU for
/// [`Family::Tub`]) at `k`×`n`.
#[must_use]
pub fn unit_module(family: Family, precision: IntPrecision, k: usize, n: usize) -> Module {
    let w = u64::from(precision.bits());
    let acc_bits = u64::from(precision.accumulator_bits(n));
    let ku = k as u64;
    let nu = n as u64;
    let mut unit = Module::new(
        format!("{}_{precision}_{k}x{n}", family.unit_name()),
        Role::CellFixed,
    );
    unit.instantiate(1, pe_array_module(family, precision, k, n));
    match family {
        Family::Binary => {
            // Second (ping-pong) weight bank: full-array weight shadow.
            unit.instantiate(
                1,
                register_bank("weight_shadow_bank", ku * nu * w, Role::UnitOverhead),
            );
            // Input feature capture at the unit boundary.
            unit.instantiate(
                1,
                register_bank("input_capture", nu * w, Role::UnitOverhead),
            );
            // Product retiming pipeline: one 2w-bit stage per lane
            // ("intermediate registers that facilitate retiming and
            // pipelining", §II-C).
            unit.instantiate(
                1,
                register_bank("product_retiming", ku * nu * 2 * w, Role::UnitOverhead),
            );
            // Output partial-sum staging towards CACC.
            unit.instantiate(
                1,
                register_bank("psum_stage", ku * acc_bits, Role::UnitOverhead),
            );
            unit.instantiate(1, clock_gate_bank("cell_gates", ku, Role::UnitOverhead));
            unit.instantiate(1, fsm("cmac_handshake", 4, 96, Role::UnitOverhead));
        }
        Family::Tub => {
            // Input feature capture (transposed feed from the modified
            // CSC, §III).
            unit.instantiate(
                1,
                register_bank("input_capture", nu * w, Role::UnitOverhead),
            );
            // Temporal encoder bank: per-lane weight store + 2s-unary
            // encode state at the unit boundary.
            let mut enc =
                Module::new("temporal_encoder_bank", Role::UnitOverhead).with_activity(0.45);
            enc.add(CellKind::Dff, ku * nu * w);
            enc.add(CellKind::Xnor2, ku * nu * 2);
            enc.add(CellKind::And2, ku * nu);
            unit.instantiate(1, enc);
            // Partial-sum skid buffers: two entries per cell so CACC
            // handoff overlaps the next multi-cycle window (§III's
            // "additional handshaking protocols with buffer blocks").
            unit.instantiate(
                1,
                register_bank("psum_skid", ku * acc_bits * 2, Role::UnitOverhead),
            );
            unit.instantiate(1, clock_gate_bank("cell_gates", ku, Role::UnitOverhead));
            unit.instantiate(
                1,
                fsm("pcu_multicycle_handshake", 6, 160, Role::UnitOverhead),
            );
        }
    }
    unit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellLibrary;

    #[test]
    fn units_add_overhead_over_arrays() {
        let lib = CellLibrary::nangate45();
        for family in Family::BOTH {
            let unit = unit_module(family, IntPrecision::Int4, 16, 4).rollup(&lib, 0.3);
            assert!(
                unit.role(Role::UnitOverhead).area_um2 > 0.0,
                "{family} unit overhead missing"
            );
        }
    }

    #[test]
    fn cmac_overhead_is_register_dominated() {
        let lib = CellLibrary::nangate45();
        let unit = unit_module(Family::Binary, IntPrecision::Int4, 16, 4).rollup(&lib, 0.3);
        let ov = unit.role(Role::UnitOverhead);
        // Retiming + shadow banks: flops should dominate the overhead.
        let ff_area = ov.ff_count as f64 * lib.spec(CellKind::Dff).area_um2;
        assert!(ff_area / ov.area_um2 > 0.7);
    }

    #[test]
    fn pcu_overhead_scales_with_lanes() {
        let lib = CellLibrary::nangate45();
        let small = unit_module(Family::Tub, IntPrecision::Int8, 16, 4)
            .rollup(&lib, 0.3)
            .role(Role::UnitOverhead)
            .area_um2;
        let big = unit_module(Family::Tub, IntPrecision::Int8, 16, 16)
            .rollup(&lib, 0.3)
            .role(Role::UnitOverhead)
            .area_um2;
        assert!(big > small * 2.0, "encoder bank should scale with k*n");
    }
}
