//! Deterministic chaos: seeded fault injection for the serving path.
//!
//! Production serving has to survive worker panics, transient backend
//! errors, wedged executions and flaky devices. This crate supplies
//! the *fault model*: a seeded [`FaultPlan`] that is a pure function
//! of `(seed, job id, attempt, device)` — no wall-clock randomness —
//! so any chaos run is bit-for-bit replayable, and a [`FaultInjector`]
//! handle that is zero-overhead when disabled (a single `Option`
//! check, exactly like the telemetry hub).
//!
//! The recovery machinery lives with the layers it protects (worker
//! respawn and the watchdog in `tempus-runtime`, the device health
//! state machine in `tempus-fleet`, retry/degrade in `tempus-serve`);
//! this crate only decides *what breaks, when* — deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// What the injector breaks for one `(job, attempt)` execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The backend "fails" this execution with a transient error; a
    /// retry of the same job is expected to succeed.
    Transient,
    /// The worker thread dies after reporting the failure — the pool
    /// must respawn it to keep capacity.
    WorkerPanic,
    /// The execution wedges (modelled as a bounded host sleep); the
    /// per-job watchdog is expected to cancel and retry it.
    Stall,
    /// The execution fails because the device it was placed on is in
    /// a persistent outage; the fleet circuit breaker is expected to
    /// quarantine the device and re-route its work.
    DeviceFault,
}

impl FaultKind {
    /// Short stable name (used in telemetry args and reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::WorkerPanic => "worker_panic",
            FaultKind::Stall => "stall",
            FaultKind::DeviceFault => "device_fault",
        }
    }
}

/// A persistent per-device outage scripted into a [`FaultPlan`].
///
/// Every execution placed on `device` fails with
/// [`FaultKind::DeviceFault`] until the device has been probed
/// `probes_to_heal` times (probes happen on fleet floor boundaries
/// once the device is quarantined), after which it heals and probes
/// report success.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutagePlan {
    /// The device that goes dark.
    pub device: usize,
    /// Probes required before the device heals.
    pub probes_to_heal: u32,
}

/// A seeded, replayable fault plan.
///
/// `decide` is a pure function of the plan and the execution identity
/// — the same seed replays the exact same fault schedule, which is
/// what lets the chaos bench assert digest equality against the
/// fault-free run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every decision.
    pub seed: u64,
    /// Injected fault probability in parts per million (of executions
    /// that are eligible; stored as an integer so the plan itself has
    /// no float state).
    pub rate_ppm: u32,
    /// Of 16 injected faults, how many are worker panics.
    pub panic_weight: u32,
    /// Of 16 injected faults, how many are stalls (only applied to
    /// the functional backend, whose honest latency is far below any
    /// sane watchdog).
    pub stall_weight: u32,
    /// Optional persistent device outage.
    pub outage: Option<OutagePlan>,
}

/// SplitMix64 finalizer — the same mixer the engine's seeded shuffle
/// and the stats reservoirs use.
#[must_use]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Index of the functional backend in the pool's backend table; kept
/// in sync with `tempus-runtime`'s `kind_index`.
pub const FUNCTIONAL_KIND: usize = 2;

impl FaultPlan {
    /// A plan injecting faults at `fault_rate` (clamped to `[0, 1]`)
    /// with the default kind mix: 1/16 panics, 2/16 stalls, the rest
    /// transient errors.
    #[must_use]
    pub fn new(seed: u64, fault_rate: f64) -> Self {
        let clamped = fault_rate.clamp(0.0, 1.0);
        FaultPlan {
            seed,
            rate_ppm: (clamped * 1_000_000.0).round() as u32,
            panic_weight: 1,
            stall_weight: 2,
            outage: None,
        }
    }

    /// Scripts a persistent outage on `device` healing after
    /// `probes_to_heal` quarantine probes (builder style).
    #[must_use]
    pub fn with_outage(mut self, device: usize, probes_to_heal: u32) -> Self {
        self.outage = Some(OutagePlan {
            device,
            probes_to_heal,
        });
        self
    }

    /// Overrides the fault kind mix (weights out of 16, builder
    /// style).
    #[must_use]
    pub fn with_weights(mut self, panic_weight: u32, stall_weight: u32) -> Self {
        self.panic_weight = panic_weight.min(16);
        self.stall_weight = stall_weight.min(16 - self.panic_weight);
        self
    }

    /// The injected fault rate as a fraction.
    #[must_use]
    pub fn fault_rate(&self) -> f64 {
        f64::from(self.rate_ppm) / 1_000_000.0
    }

    /// Pure fault decision for one execution attempt.
    ///
    /// `kind_index` is the pool backend index (0 = tempus, 1 = nvdla,
    /// 2 = functional); stalls are only dealt to the functional
    /// backend so the watchdog deadline can sit orders of magnitude
    /// above honest latency. The outage (if any, and if the device is
    /// still dark — see [`FaultInjector::probe`]) takes priority over
    /// randomized faults so the circuit breaker sees *consecutive*
    /// failures.
    #[must_use]
    pub fn decide(&self, job_id: u64, attempt: u32, kind_index: usize) -> Option<FaultKind> {
        if self.rate_ppm == 0 {
            return None;
        }
        let h = mix(self.seed
            ^ mix(job_id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            ^ (u64::from(attempt) << 48)
            ^ ((kind_index as u64) << 40));
        if h % 1_000_000 >= u64::from(self.rate_ppm) {
            return None;
        }
        let bucket = (h >> 32) % 16;
        if bucket < u64::from(self.panic_weight) {
            Some(FaultKind::WorkerPanic)
        } else if bucket < u64::from(self.panic_weight + self.stall_weight)
            && kind_index == FUNCTIONAL_KIND
        {
            Some(FaultKind::Stall)
        } else {
            Some(FaultKind::Transient)
        }
    }
}

/// Counts of injected faults, by kind (read back by stats/benches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Transient execution errors injected.
    pub transient: u64,
    /// Worker deaths injected.
    pub panics: u64,
    /// Stalls injected.
    pub stalls: u64,
    /// Device-outage failures injected.
    pub device: u64,
}

impl FaultCounts {
    /// Total injected faults.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.transient + self.panics + self.stalls + self.device
    }
}

#[derive(Debug)]
struct InjectorState {
    plan: FaultPlan,
    /// Probes delivered to the outage device so far.
    probes: AtomicU32,
    transient: AtomicU64,
    panics: AtomicU64,
    stalls: AtomicU64,
    device_faults: AtomicU64,
}

/// Shared fault-injection handle.
///
/// Modelled on the telemetry hub: [`FaultInjector::disabled`] carries
/// no allocation and every query is a single `Option` check, so the
/// hot path pays nothing when chaos is off. Enabled, it wraps an
/// `Arc` of the plan plus the small amount of mutable state the plan
/// itself must not hold (probe count, injection tallies).
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    inner: Option<Arc<InjectorState>>,
}

impl FaultInjector {
    /// The inert injector: never injects, costs one branch.
    #[must_use]
    pub fn disabled() -> Self {
        FaultInjector { inner: None }
    }

    /// An injector executing `plan`.
    #[must_use]
    pub fn enabled(plan: FaultPlan) -> Self {
        FaultInjector {
            inner: Some(Arc::new(InjectorState {
                plan,
                probes: AtomicU32::new(0),
                transient: AtomicU64::new(0),
                panics: AtomicU64::new(0),
                stalls: AtomicU64::new(0),
                device_faults: AtomicU64::new(0),
            })),
        }
    }

    /// Whether any faults can be injected.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The plan, when enabled.
    #[must_use]
    pub fn plan(&self) -> Option<FaultPlan> {
        self.inner.as_ref().map(|s| s.plan)
    }

    /// Fault decision for one execution attempt on `device`. Returns
    /// `None` (taking the early branch) when disabled.
    #[must_use]
    pub fn decide(
        &self,
        job_id: u64,
        attempt: u32,
        device: usize,
        kind_index: usize,
    ) -> Option<FaultKind> {
        let state = self.inner.as_ref()?;
        if let Some(outage) = state.plan.outage {
            if outage.device == device && !self.device_healthy(device) {
                state.device_faults.fetch_add(1, Ordering::Relaxed);
                return Some(FaultKind::DeviceFault);
            }
        }
        let fault = state.plan.decide(job_id, attempt, kind_index)?;
        let cell = match fault {
            FaultKind::Transient => &state.transient,
            FaultKind::WorkerPanic => &state.panics,
            FaultKind::Stall => &state.stalls,
            FaultKind::DeviceFault => &state.device_faults,
        };
        cell.fetch_add(1, Ordering::Relaxed);
        Some(fault)
    }

    /// Whether `device` is currently healthy under the scripted
    /// outage (devices not named in the outage are always healthy).
    #[must_use]
    pub fn device_healthy(&self, device: usize) -> bool {
        match self.inner.as_ref().and_then(|s| s.plan.outage) {
            Some(outage) if outage.device == device => self
                .inner
                .as_ref()
                .is_some_and(|s| s.probes.load(Ordering::Relaxed) >= outage.probes_to_heal),
            _ => true,
        }
    }

    /// Delivers one quarantine probe to `device` and reports whether
    /// the device answered healthy. Probing a device with no scripted
    /// outage always succeeds; probing the outage device counts
    /// toward its heal threshold, so the probe sequence is a
    /// deterministic function of how many probes have been sent.
    #[must_use]
    pub fn probe(&self, device: usize) -> bool {
        let Some(state) = self.inner.as_ref() else {
            return true;
        };
        match state.plan.outage {
            Some(outage) if outage.device == device => {
                let seen = state.probes.fetch_add(1, Ordering::Relaxed) + 1;
                seen >= outage.probes_to_heal
            }
            _ => true,
        }
    }

    /// Injection tallies so far.
    #[must_use]
    pub fn counts(&self) -> FaultCounts {
        match self.inner.as_ref() {
            None => FaultCounts::default(),
            Some(s) => FaultCounts {
                transient: s.transient.load(Ordering::Relaxed),
                panics: s.panics.load(Ordering::Relaxed),
                stalls: s.stalls.load(Ordering::Relaxed),
                device: s.device_faults.load(Ordering::Relaxed),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires() {
        let inj = FaultInjector::disabled();
        assert!(!inj.is_enabled());
        for id in 0..10_000u64 {
            assert_eq!(inj.decide(id, 0, 0, 0), None);
        }
        assert_eq!(inj.counts().total(), 0);
        assert!(inj.device_healthy(0));
        assert!(inj.probe(0));
    }

    #[test]
    fn zero_rate_never_fires() {
        let plan = FaultPlan::new(7, 0.0);
        for id in 0..10_000u64 {
            assert_eq!(plan.decide(id, 0, 0), None);
        }
    }

    #[test]
    fn plan_is_pure_and_seeded() {
        let a = FaultPlan::new(42, 0.1);
        let b = FaultPlan::new(42, 0.1);
        let c = FaultPlan::new(43, 0.1);
        let da: Vec<_> = (0..4096).map(|id| a.decide(id, 0, 0)).collect();
        let db: Vec<_> = (0..4096).map(|id| b.decide(id, 0, 0)).collect();
        let dc: Vec<_> = (0..4096).map(|id| c.decide(id, 0, 0)).collect();
        assert_eq!(da, db);
        assert_ne!(da, dc);
    }

    #[test]
    fn rate_is_roughly_honoured() {
        let plan = FaultPlan::new(1, 0.10);
        let hits = (0..100_000u64)
            .filter(|&id| plan.decide(id, 0, 0).is_some())
            .count();
        // 10% ± 1% over 100k trials.
        assert!((9_000..=11_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn attempts_are_independent() {
        // A job that faults on attempt 0 should usually pass on a
        // retry — the decision must not be sticky across attempts.
        let plan = FaultPlan::new(9, 0.10);
        let faulted: Vec<u64> = (0..50_000u64)
            .filter(|&id| plan.decide(id, 0, 0).is_some())
            .collect();
        let still_faulted = faulted
            .iter()
            .filter(|&&id| plan.decide(id, 1, 0).is_some())
            .count();
        // ~10% of the faulted set faults again, not 100%.
        assert!(still_faulted * 2 < faulted.len());
    }

    #[test]
    fn stalls_only_hit_the_functional_backend() {
        let plan = FaultPlan::new(3, 0.25).with_weights(0, 16);
        for id in 0..10_000u64 {
            for kind in 0..2usize {
                assert_ne!(plan.decide(id, 0, kind), Some(FaultKind::Stall));
            }
        }
        let stalls = (0..10_000u64)
            .filter(|&id| plan.decide(id, 0, FUNCTIONAL_KIND) == Some(FaultKind::Stall))
            .count();
        assert!(stalls > 0);
    }

    #[test]
    fn outage_quarantine_probe_heal_cycle() {
        let inj = FaultInjector::enabled(FaultPlan::new(5, 0.0).with_outage(1, 2));
        // Device 1 is dark: every execution on it faults.
        assert!(!inj.device_healthy(1));
        assert!(inj.device_healthy(0));
        assert_eq!(inj.decide(0, 0, 1, 0), Some(FaultKind::DeviceFault));
        assert_eq!(inj.decide(1, 0, 1, 2), Some(FaultKind::DeviceFault));
        assert_eq!(inj.decide(2, 0, 0, 0), None);
        // First probe fails, second heals.
        assert!(!inj.probe(1));
        assert!(inj.probe(1));
        assert!(inj.device_healthy(1));
        assert_eq!(inj.decide(3, 0, 1, 0), None);
        assert_eq!(inj.counts().device, 2);
    }
}
