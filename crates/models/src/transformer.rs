//! Transformer-shaped GEMM workload templates.
//!
//! The tubGEMM/tuGEMM line of work aims the temporal-unary dataflow
//! at large dense products; the LLM serving shapes are transformer
//! blocks, whose compute is a handful of GEMM silhouettes repeated
//! layer after layer. This module supplies those silhouettes as
//! deterministic seeded templates: the **attention projection**
//! (`seq × d_model · d_model × d_model` — Q/K/V/O all share it) and
//! the **MLP up/down projections**
//! (`seq × d_model · d_model × d_ff` and its transpose-shaped
//! counterpart), with inner dimensions in the thousands at the
//! standard presets. The streaming bench and the traffic generator
//! both instantiate workloads from here, so "LLM-scale" means the
//! same operands everywhere.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tempus_arith::IntPrecision;
use tempus_core::gemm::Matrix;

/// One transformer block's GEMM dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformerShape {
    /// Sequence length (rows of every activation operand).
    pub seq: usize,
    /// Model width: the attention projections are
    /// `d_model × d_model`.
    pub d_model: usize,
    /// MLP hidden width (conventionally `4 × d_model`).
    pub d_ff: usize,
}

impl TransformerShape {
    /// A shape with the conventional `d_ff = 4 × d_model`.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    #[must_use]
    pub fn new(seq: usize, d_model: usize) -> Self {
        assert!(seq > 0 && d_model > 0, "dimensions must be >= 1");
        TransformerShape {
            seq,
            d_model,
            d_ff: 4 * d_model,
        }
    }

    /// Overrides the MLP hidden width (builder style).
    #[must_use]
    pub fn with_d_ff(mut self, d_ff: usize) -> Self {
        assert!(d_ff > 0, "d_ff must be >= 1");
        self.d_ff = d_ff;
        self
    }

    /// GPT-2-small block shapes: `d_model` 768, `d_ff` 3072, at a
    /// 64-token sequence.
    #[must_use]
    pub fn gpt2_small() -> Self {
        TransformerShape::new(64, 768)
    }

    /// BERT-large block shapes: `d_model` 1024, `d_ff` 4096, at a
    /// 128-token sequence.
    #[must_use]
    pub fn bert_large() -> Self {
        TransformerShape::new(128, 1024)
    }

    /// A scaled-down block for traces and tests: `d_model` 128,
    /// `d_ff` 512, 16 tokens — transformer-proportioned without the
    /// full-size operand cost.
    #[must_use]
    pub fn trace_default() -> Self {
        TransformerShape::new(16, 128)
    }

    /// `(m, n, p)` of the `kind` projection's product
    /// `A(m×n) · B(n×p)`.
    #[must_use]
    pub fn dims(&self, kind: ProjectionKind) -> (usize, usize, usize) {
        match kind {
            ProjectionKind::Attention => (self.seq, self.d_model, self.d_model),
            ProjectionKind::MlpUp => (self.seq, self.d_model, self.d_ff),
            ProjectionKind::MlpDown => (self.seq, self.d_ff, self.d_model),
        }
    }
}

/// Which of the block's GEMM silhouettes to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProjectionKind {
    /// Q/K/V/O projection: `seq × d_model · d_model × d_model`.
    Attention,
    /// MLP up-projection: `seq × d_model · d_model × d_ff`.
    MlpUp,
    /// MLP down-projection: `seq × d_ff · d_ff × d_model`.
    MlpDown,
}

impl ProjectionKind {
    /// Every projection kind, in block-execution order.
    pub const ALL: [ProjectionKind; 3] = [
        ProjectionKind::Attention,
        ProjectionKind::MlpUp,
        ProjectionKind::MlpDown,
    ];

    /// Short snake-case label for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ProjectionKind::Attention => "attention_proj",
            ProjectionKind::MlpUp => "mlp_up",
            ProjectionKind::MlpDown => "mlp_down",
        }
    }
}

/// Instantiates one projection's operand pair `(A, B)` at `shape`,
/// deterministically from `seed`: activations and weights are drawn
/// uniformly over the precision's representable range (the magnitude
/// distribution is what prices the temporal-unary windows, so the
/// full range must be exercised). The same `(shape, kind, precision,
/// seed)` always yields bit-identical operands.
#[must_use]
pub fn projection_gemm(
    shape: &TransformerShape,
    kind: ProjectionKind,
    precision: IntPrecision,
    seed: u64,
) -> (Matrix, Matrix) {
    let (m, n, p) = shape.dims(kind);
    let lo = precision.min_value();
    let hi = precision.max_value();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5452_414E_5346_524D);
    let mut vals: Vec<i32> = Vec::with_capacity(m * n + n * p);
    for _ in 0..m * n + n * p {
        vals.push(rng.random_range(lo..=hi));
    }
    let mut it = vals.into_iter();
    let a = Matrix::from_fn(m, n, |_, _| it.next().unwrap());
    let b = Matrix::from_fn(n, p, |_, _| it.next().unwrap());
    (a, b)
}

/// Instantiates the whole block: one operand pair per
/// [`ProjectionKind`], each seeded independently from `seed` so the
/// three products carry distinct data.
#[must_use]
pub fn block_gemms(
    shape: &TransformerShape,
    precision: IntPrecision,
    seed: u64,
) -> Vec<(ProjectionKind, Matrix, Matrix)> {
    ProjectionKind::ALL
        .iter()
        .enumerate()
        .map(|(i, &kind)| {
            let (a, b) = projection_gemm(shape, kind, precision, seed.wrapping_add(i as u64));
            (kind, a, b)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_follow_the_block_silhouettes() {
        let shape = TransformerShape::gpt2_small();
        assert_eq!(shape.dims(ProjectionKind::Attention), (64, 768, 768));
        assert_eq!(shape.dims(ProjectionKind::MlpUp), (64, 768, 3072));
        assert_eq!(shape.dims(ProjectionKind::MlpDown), (64, 3072, 768));
        let wide = TransformerShape::new(8, 32).with_d_ff(96);
        assert_eq!(wide.dims(ProjectionKind::MlpUp), (8, 32, 96));
    }

    #[test]
    fn operands_are_deterministic_and_in_range() {
        let shape = TransformerShape::trace_default();
        let (a1, b1) = projection_gemm(&shape, ProjectionKind::Attention, IntPrecision::Int8, 7);
        let (a2, b2) = projection_gemm(&shape, ProjectionKind::Attention, IntPrecision::Int8, 7);
        assert_eq!(a1.content_hash(), a2.content_hash());
        assert_eq!(b1.content_hash(), b2.content_hash());
        let (a3, _) = projection_gemm(&shape, ProjectionKind::Attention, IntPrecision::Int8, 8);
        assert_ne!(a1.content_hash(), a3.content_hash(), "seeds must differ");
        let lo = IntPrecision::Int8.min_value();
        let hi = IntPrecision::Int8.max_value();
        for r in 0..a1.rows() {
            for c in 0..a1.cols() {
                let v = a1.get(r, c);
                assert!(v >= lo && v <= hi, "value {v} out of range");
            }
        }
    }

    #[test]
    fn block_covers_every_kind_with_distinct_data() {
        let shape = TransformerShape::trace_default();
        let block = block_gemms(&shape, IntPrecision::Int8, 42);
        assert_eq!(block.len(), 3);
        let kinds: Vec<_> = block.iter().map(|(k, _, _)| *k).collect();
        assert_eq!(kinds, ProjectionKind::ALL.to_vec());
        let (_, a_att, _) = &block[0];
        let (_, a_up, _) = &block[1];
        assert_ne!(
            a_att.content_hash(),
            a_up.content_hash(),
            "projections must carry distinct operands"
        );
    }
}
