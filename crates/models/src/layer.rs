//! Convolution layer descriptors.

use std::fmt;

/// What role a convolution plays in its network — useful when
/// analysing how depthwise vs pointwise layers shape the weight
/// statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Regular dense convolution.
    Standard,
    /// Depthwise convolution (`groups == channels`).
    Depthwise,
    /// 1×1 (pointwise) convolution.
    Pointwise,
    /// Grouped convolution (ResNeXt cardinality, shuffle units).
    Grouped,
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LayerKind::Standard => "standard",
            LayerKind::Depthwise => "depthwise",
            LayerKind::Pointwise => "pointwise",
            LayerKind::Grouped => "grouped",
        };
        f.write_str(s)
    }
}

/// Shape of one convolution layer's weight tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvLayerSpec {
    /// Layer name (derived from the architecture position).
    pub name: String,
    /// Output channels (number of kernels, K).
    pub out_c: usize,
    /// Input channels (C).
    pub in_c: usize,
    /// Kernel height (R).
    pub kh: usize,
    /// Kernel width (S).
    pub kw: usize,
    /// Channel groups (1 = dense; `in_c` = depthwise).
    pub groups: usize,
}

impl ConvLayerSpec {
    /// Creates a dense convolution spec.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions or if `groups` does not divide both
    /// channel counts.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        out_c: usize,
        in_c: usize,
        kh: usize,
        kw: usize,
        groups: usize,
    ) -> Self {
        assert!(
            out_c > 0 && in_c > 0 && kh > 0 && kw > 0 && groups > 0,
            "layer dimensions must be nonzero"
        );
        assert!(
            in_c.is_multiple_of(groups) && out_c.is_multiple_of(groups),
            "groups must divide channel counts"
        );
        ConvLayerSpec {
            name: name.into(),
            out_c,
            in_c,
            kh,
            kw,
            groups,
        }
    }

    /// Classifies the layer.
    #[must_use]
    pub fn kind(&self) -> LayerKind {
        if self.groups == self.in_c && self.groups > 1 {
            LayerKind::Depthwise
        } else if self.kh == 1 && self.kw == 1 && self.groups == 1 {
            LayerKind::Pointwise
        } else if self.groups > 1 {
            LayerKind::Grouped
        } else {
            LayerKind::Standard
        }
    }

    /// Number of weights in the layer:
    /// `out_c × (in_c / groups) × kh × kw`.
    #[must_use]
    pub fn weight_count(&self) -> usize {
        self.out_c * (self.in_c / self.groups) * self.kh * self.kw
    }

    /// Dimensions of the lowered weight matrix the DLA tiles: one row
    /// per kernel, one column per (channel, tap) pair.
    #[must_use]
    pub fn lowered_dims(&self) -> (usize, usize) {
        (self.out_c, (self.in_c / self.groups) * self.kh * self.kw)
    }
}

impl fmt::Display for ConvLayerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}x{}x{}x{} g={} ({})",
            self.name,
            self.out_c,
            self.in_c / self.groups,
            self.kh,
            self.kw,
            self.groups,
            self.kind()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_count_and_lowering() {
        let l = ConvLayerSpec::new("c", 32, 16, 3, 3, 1);
        assert_eq!(l.weight_count(), 32 * 16 * 9);
        assert_eq!(l.lowered_dims(), (32, 144));
        assert_eq!(l.kind(), LayerKind::Standard);
    }

    #[test]
    fn depthwise_classification() {
        let l = ConvLayerSpec::new("dw", 64, 64, 3, 3, 64);
        assert_eq!(l.kind(), LayerKind::Depthwise);
        assert_eq!(l.weight_count(), 64 * 9);
    }

    #[test]
    fn pointwise_and_grouped() {
        assert_eq!(
            ConvLayerSpec::new("pw", 128, 64, 1, 1, 1).kind(),
            LayerKind::Pointwise
        );
        assert_eq!(
            ConvLayerSpec::new("g", 256, 256, 3, 3, 32).kind(),
            LayerKind::Grouped
        );
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn bad_groups_rejected() {
        let _ = ConvLayerSpec::new("x", 10, 16, 3, 3, 3);
    }
}
