//! Deterministic seeded traffic-trace generation.
//!
//! The serving layer (`tempus-serve`) ingests continuous, bursty
//! request streams — nothing like the fixed batches the experiment
//! harness sweeps. This module generates such streams
//! deterministically: Poisson-ish arrivals (exponential interarrival
//! gaps from a seeded RNG, with occasional same-instant bursts), a
//! configurable mix of job classes (conv / GEMM / whole-network ×
//! fast-functional / cycle-accurate fidelity), and a tunable
//! *template repeat fraction* — the knob that models production
//! traffic where the same weights (and often the same inputs) recur
//! request after request, which is exactly what a content-addressed
//! result cache monetises.
//!
//! The generator is shared by the `serve_stream` example, the
//! `serve_latency` bench experiment and the workspace tests, so all
//! three exercise the same traffic shapes. For a fixed
//! [`TraceConfig`] the trace is bit-for-bit reproducible.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tempus_arith::IntPrecision;
use tempus_core::gemm::Matrix;
use tempus_nvdla::conv::ConvParams;
use tempus_nvdla::cube::{DataCube, KernelSet};
use tempus_nvdla::network::NetworkLayer;

use crate::netbuild;
use crate::transformer::{self, TransformerShape};
use crate::zoo::Model;
use crate::QuantizedModel;

/// Requested execution fidelity for one trace request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceFidelity {
    /// Fast functional execution (golden outputs, closed-form
    /// latency) — the serving fast path.
    Fast,
    /// Cycle-accurate simulation — authoritative but orders of
    /// magnitude slower; the serving layer admission-controls these.
    Accurate,
}

/// What one trace request computes (mirrors the runtime's job
/// payloads without depending on `tempus-runtime`, which sits above
/// this crate).
#[derive(Debug, Clone)]
pub enum TracePayload {
    /// One convolution layer.
    Conv {
        /// Input feature cube.
        features: DataCube,
        /// Kernel weights.
        kernels: KernelSet,
        /// Convolution parameters.
        params: ConvParams,
    },
    /// One dense matrix product.
    Gemm {
        /// Left operand.
        a: Matrix,
        /// Right operand.
        b: Matrix,
    },
    /// A whole-network prefix from the model zoo.
    Network {
        /// Network input cube.
        input: DataCube,
        /// Layers in execution order.
        layers: Vec<NetworkLayer>,
    },
}

impl TracePayload {
    /// Short payload-kind tag (`conv`/`gemm`/`network`).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TracePayload::Conv { .. } => "conv",
            TracePayload::Gemm { .. } => "gemm",
            TracePayload::Network { .. } => "network",
        }
    }
}

/// Per-class completion deadlines in **device cycles**, derived from
/// the serving layer's per-class SLO targets (nanoseconds over the
/// 4 ns cycle at the paper's 250 MHz clock). Attached to a trace via
/// [`TraceConfig::with_deadlines`]; deadline stamping draws no RNG
/// values, so seeded traces stay bit-identical with or without it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassDeadlines {
    /// Deadlines for fast-functional `[conv, gemm, network]`.
    pub fast: [u64; 3],
    /// Deadlines for cycle-accurate `[conv, gemm, network]`.
    pub accurate: [u64; 3],
}

impl ClassDeadlines {
    /// The same deadline for every class.
    #[must_use]
    pub fn uniform(cycles: u64) -> Self {
        ClassDeadlines {
            fast: [cycles; 3],
            accurate: [cycles; 3],
        }
    }

    /// The deadline for one request's class.
    #[must_use]
    pub fn deadline_for(&self, fidelity: TraceFidelity, payload: &TracePayload) -> u64 {
        let kind = match payload {
            TracePayload::Conv { .. } => 0,
            TracePayload::Gemm { .. } => 1,
            TracePayload::Network { .. } => 2,
        };
        match fidelity {
            TraceFidelity::Fast => self.fast[kind],
            TraceFidelity::Accurate => self.accurate[kind],
        }
    }
}

/// One request in a generated trace.
#[derive(Debug, Clone)]
pub struct TraceRequest {
    /// Sequential request id (also the runtime job id downstream).
    pub id: u64,
    /// Arrival time relative to trace start, in nanoseconds.
    pub arrival_ns: u64,
    /// Human-readable label.
    pub name: String,
    /// Requested execution fidelity.
    pub fidelity: TraceFidelity,
    /// The computation.
    pub payload: TracePayload,
    /// Index of the template this request instantiated — requests
    /// sharing a template carry identical payloads, so downstream
    /// result caches will hit on the repeats.
    pub template: usize,
    /// SLO-derived completion deadline in device cycles, when the
    /// trace was generated with [`TraceConfig::with_deadlines`] —
    /// deadline-aware admission rejects requests that provably cannot
    /// meet it. `None` (the default) leaves admission unconstrained.
    pub deadline_cycles: Option<u64>,
}

/// Trace-generation parameters.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// RNG seed: fixes the whole trace.
    pub seed: u64,
    /// Number of requests to generate.
    pub requests: usize,
    /// Mean exponential interarrival gap, in nanoseconds.
    pub mean_interarrival_ns: u64,
    /// Probability that an arrival opens a burst of back-to-back
    /// (same-instant) requests.
    pub burst_prob: f64,
    /// Maximum burst length (uniform in `2..=burst_len`).
    pub burst_len: usize,
    /// Probability that a request replays an earlier template instead
    /// of minting a fresh one — the cache-hit driver.
    pub repeat_fraction: f64,
    /// Probability that a request asks for cycle-accurate fidelity.
    pub accurate_fraction: f64,
    /// Probability that a fresh convolution template is **wide**
    /// (kernel-rich: 32–48 kernels over 8–16 channels) instead of the
    /// default narrow shapes. Wide convs fill several kernel groups,
    /// so multi-array planners shard them — the knob that makes a
    /// trace mixed wide+narrow for array-slot scheduling studies.
    /// 0.0 (the default) draws no RNG values, so existing seeded
    /// traces stay bit-identical.
    pub wide_conv_fraction: f64,
    /// Probability that a fresh GEMM template is **transformer-shaped**
    /// (an attention-projection or MLP GEMM at
    /// [`TraceConfig::transformer`] dimensions) instead of the default
    /// tiny shapes. Transformer GEMMs are what the streaming tile
    /// arena exists for — large inner dimensions that would otherwise
    /// materialize whole operands in scratch. 0.0 (the default) draws
    /// no RNG values, so existing seeded traces stay bit-identical.
    pub transformer_fraction: f64,
    /// The block shape transformer-shaped GEMM templates instantiate.
    pub transformer: TransformerShape,
    /// Relative weight of convolution payloads in the fresh-template
    /// mix.
    pub conv_weight: f64,
    /// Relative weight of GEMM payloads.
    pub gemm_weight: f64,
    /// Relative weight of whole-network payloads.
    pub network_weight: f64,
    /// Working precision for all generated operands.
    pub precision: IntPrecision,
    /// Per-class deadlines stamped onto every request; `None` (the
    /// default) leaves [`TraceRequest::deadline_cycles`] unset.
    /// Stamping is a pure per-class lookup — it draws no RNG values,
    /// so existing seeded traces stay bit-identical either way.
    pub deadlines: Option<ClassDeadlines>,
}

impl TraceConfig {
    /// A bursty mixed default trace: 256 requests, 50 µs mean gap,
    /// 70% template repeats, 5% cycle-accurate, conv/GEMM-heavy with
    /// some whole networks.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TraceConfig {
            seed,
            requests: 256,
            mean_interarrival_ns: 50_000,
            burst_prob: 0.1,
            burst_len: 8,
            repeat_fraction: 0.7,
            accurate_fraction: 0.05,
            wide_conv_fraction: 0.0,
            transformer_fraction: 0.0,
            transformer: TransformerShape::trace_default(),
            conv_weight: 0.4,
            gemm_weight: 0.4,
            network_weight: 0.2,
            precision: IntPrecision::Int8,
            deadlines: None,
        }
    }

    /// Overrides the request count (builder style).
    #[must_use]
    pub fn with_requests(mut self, requests: usize) -> Self {
        self.requests = requests;
        self
    }

    /// Overrides the template repeat fraction (builder style).
    #[must_use]
    pub fn with_repeat_fraction(mut self, fraction: f64) -> Self {
        self.repeat_fraction = fraction;
        self
    }

    /// Overrides the cycle-accurate fraction (builder style).
    #[must_use]
    pub fn with_accurate_fraction(mut self, fraction: f64) -> Self {
        self.accurate_fraction = fraction;
        self
    }

    /// Overrides the mean interarrival gap (builder style).
    #[must_use]
    pub fn with_mean_interarrival_ns(mut self, ns: u64) -> Self {
        self.mean_interarrival_ns = ns;
        self
    }

    /// Overrides the wide-convolution fraction (builder style).
    #[must_use]
    pub fn with_wide_conv_fraction(mut self, fraction: f64) -> Self {
        self.wide_conv_fraction = fraction;
        self
    }

    /// Overrides the transformer-shaped GEMM fraction (builder style).
    #[must_use]
    pub fn with_transformer_fraction(mut self, fraction: f64) -> Self {
        self.transformer_fraction = fraction;
        self
    }

    /// Overrides the transformer block shape (builder style).
    #[must_use]
    pub fn with_transformer_shape(mut self, shape: TransformerShape) -> Self {
        self.transformer = shape;
        self
    }

    /// Stamps per-class deadlines onto every generated request
    /// (builder style).
    #[must_use]
    pub fn with_deadlines(mut self, deadlines: ClassDeadlines) -> Self {
        self.deadlines = Some(deadlines);
        self
    }
}

fn fresh_payload(rng: &mut StdRng, config: &TraceConfig) -> TracePayload {
    let lo = config.precision.min_value();
    let hi = config.precision.max_value();
    let total = config.conv_weight + config.gemm_weight + config.network_weight;
    let pick = rng.random::<f64>() * total;
    if pick < config.conv_weight {
        // Wide templates only draw RNG values when the knob is set,
        // so traces generated before the knob existed replay
        // bit-identically.
        let wide = config.wide_conv_fraction > 0.0 && rng.random_bool(config.wide_conv_fraction);
        let (w, c, k) = if wide {
            (
                rng.random_range(4usize..=5),
                8 * rng.random_range(1usize..=2),
                16 * rng.random_range(2usize..=3),
            )
        } else {
            (
                rng.random_range(4usize..=6),
                4 * rng.random_range(1usize..=2),
                4 * rng.random_range(1usize..=2),
            )
        };
        let values = move |rng: &mut StdRng| rng.random_range(lo..=hi);
        let features = {
            let mut vals: Vec<i32> = Vec::new();
            for _ in 0..w * w * c {
                vals.push(values(rng));
            }
            let mut it = vals.into_iter();
            DataCube::from_fn(w, w, c, |_, _, _| it.next().unwrap())
        };
        let kernels = {
            let mut vals: Vec<i32> = Vec::new();
            for _ in 0..k * 3 * 3 * c {
                vals.push(values(rng));
            }
            let mut it = vals.into_iter();
            KernelSet::from_fn(k, 3, 3, c, |_, _, _, _| it.next().unwrap())
        };
        let params = if rng.random_bool(0.5) {
            ConvParams::unit_stride_same(3)
        } else {
            ConvParams::valid()
        };
        TracePayload::Conv {
            features,
            kernels,
            params,
        }
    } else if pick < config.conv_weight + config.gemm_weight {
        // Transformer-shaped templates only draw RNG values when the
        // knob is set, so pre-knob seeded traces replay bit-for-bit.
        if config.transformer_fraction > 0.0 && rng.random_bool(config.transformer_fraction) {
            let kind = transformer::ProjectionKind::ALL[rng.random_range(0usize..3)];
            let gemm_seed = rng.random::<u64>();
            let (a, b) = transformer::projection_gemm(
                &config.transformer,
                kind,
                config.precision,
                gemm_seed,
            );
            return TracePayload::Gemm { a, b };
        }
        let m = rng.random_range(4usize..=8);
        let n = rng.random_range(4usize..=8);
        let p = rng.random_range(4usize..=8);
        let mut vals: Vec<i32> = Vec::new();
        for _ in 0..m * n + n * p {
            vals.push(rng.random_range(lo..=hi));
        }
        let mut it = vals.into_iter();
        let a = Matrix::from_fn(m, n, |_, _| it.next().unwrap());
        let b = Matrix::from_fn(n, p, |_, _| it.next().unwrap());
        TracePayload::Gemm { a, b }
    } else {
        let model = if rng.random_bool(0.5) {
            Model::ResNet18
        } else {
            Model::GoogleNet
        };
        let model_seed = rng.random::<u64>();
        let quantized =
            QuantizedModel::generate_limited(model, config.precision, model_seed, 200_000);
        let layers = netbuild::network_prefix(&quantized, 1, 64);
        match netbuild::input_channels(&layers) {
            Some(channels) => {
                let input = netbuild::input_cube(5, 5, channels, config.precision, model_seed);
                TracePayload::Network { input, layers }
            }
            // No dense prefix under the channel budget: degrade to a
            // small GEMM so the trace keeps its length.
            None => TracePayload::Gemm {
                a: Matrix::from_fn(4, 4, |r, c| (r as i32 - c as i32) * 3),
                b: Matrix::from_fn(4, 4, |r, c| (r as i32 + c as i32) - 3),
            },
        }
    }
}

/// Generates a trace. Deterministic: the same [`TraceConfig`] always
/// yields the identical request sequence (payloads, fidelities,
/// arrival times).
#[must_use]
pub fn generate(config: &TraceConfig) -> Vec<TraceRequest> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x007E_1105_5E2E_D0CE);
    let mut templates: Vec<(TracePayload, usize)> = Vec::new();
    let mut requests = Vec::with_capacity(config.requests);
    let mut clock_ns = 0u64;
    let mut burst_remaining = 0usize;
    for id in 0..config.requests as u64 {
        // Arrival process: exponential gaps, with occasional bursts
        // of simultaneous arrivals.
        if burst_remaining > 0 {
            burst_remaining -= 1;
        } else {
            let u: f64 = rng.random();
            let gap = -(1.0 - u).ln() * config.mean_interarrival_ns as f64;
            clock_ns = clock_ns.saturating_add(gap as u64);
            if config.burst_len >= 2 && rng.random_bool(config.burst_prob) {
                burst_remaining = rng.random_range(2usize..=config.burst_len) - 1;
            }
        }
        // Payload: replay an earlier template or mint a fresh one.
        let (payload, template) =
            if !templates.is_empty() && rng.random_bool(config.repeat_fraction) {
                let idx = rng.random_range(0..templates.len());
                let (payload, template) = &templates[idx];
                (payload.clone(), *template)
            } else {
                let template = templates.len();
                let payload = fresh_payload(&mut rng, config);
                templates.push((payload.clone(), template));
                (payload, template)
            };
        let fidelity = if rng.random_bool(config.accurate_fraction) {
            TraceFidelity::Accurate
        } else {
            TraceFidelity::Fast
        };
        let deadline_cycles = config.deadlines.map(|d| d.deadline_for(fidelity, &payload));
        requests.push(TraceRequest {
            id,
            arrival_ns: clock_ns,
            name: format!("{}-{id}", payload.kind()),
            fidelity,
            payload,
            template,
            deadline_cycles,
        });
    }
    requests
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest_of(payload: &TracePayload) -> u64 {
        match payload {
            TracePayload::Conv {
                features, kernels, ..
            } => features.content_hash() ^ kernels.content_hash(),
            TracePayload::Gemm { a, b } => a.content_hash() ^ b.content_hash(),
            TracePayload::Network { input, layers } => layers
                .iter()
                .fold(input.content_hash(), |acc, l| acc ^ l.content_hash()),
        }
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let cfg = TraceConfig::new(9).with_requests(60);
        let a = generate(&cfg);
        let b = generate(&cfg);
        let c = generate(&TraceConfig::new(10).with_requests(60));
        assert_eq!(a.len(), 60);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival_ns, y.arrival_ns);
            assert_eq!(x.fidelity, y.fidelity);
            assert_eq!(digest_of(&x.payload), digest_of(&y.payload));
        }
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.arrival_ns != y.arrival_ns
                || digest_of(&x.payload) != digest_of(&y.payload)),
            "different seeds must differ"
        );
    }

    #[test]
    fn arrivals_are_monotone_and_bursty() {
        let cfg = TraceConfig {
            burst_prob: 0.5,
            ..TraceConfig::new(3).with_requests(120)
        };
        let trace = generate(&cfg);
        let mut last = 0u64;
        let mut simultaneous = 0usize;
        for r in &trace {
            assert!(r.arrival_ns >= last, "arrivals must be non-decreasing");
            if r.arrival_ns == last && r.id > 0 {
                simultaneous += 1;
            }
            last = r.arrival_ns;
        }
        assert!(
            simultaneous > 0,
            "bursts must produce same-instant arrivals"
        );
    }

    #[test]
    fn repeats_share_templates_and_payload_bits() {
        let cfg = TraceConfig::new(5)
            .with_requests(80)
            .with_repeat_fraction(0.8);
        let trace = generate(&cfg);
        let mut by_template: std::collections::HashMap<usize, u64> =
            std::collections::HashMap::new();
        let mut repeats = 0usize;
        for r in &trace {
            let d = digest_of(&r.payload);
            if let Some(&prev) = by_template.get(&r.template) {
                assert_eq!(
                    prev, d,
                    "template {} must repeat bit-identically",
                    r.template
                );
                repeats += 1;
            } else {
                by_template.insert(r.template, d);
            }
        }
        assert!(
            repeats >= 30,
            "high repeat fraction must yield repeats, got {repeats}"
        );
    }

    #[test]
    fn wide_fraction_produces_kernel_rich_convs() {
        let narrow = TraceConfig::new(21).with_requests(120);
        let wide = TraceConfig::new(21)
            .with_requests(120)
            .with_wide_conv_fraction(0.5);
        let max_k = |trace: &[TraceRequest]| {
            trace
                .iter()
                .filter_map(|r| match &r.payload {
                    TracePayload::Conv { kernels, .. } => Some(kernels.k()),
                    _ => None,
                })
                .max()
                .unwrap_or(0)
        };
        assert!(max_k(&generate(&narrow)) <= 8, "default convs stay narrow");
        assert!(
            max_k(&generate(&wide)) >= 32,
            "wide knob must mint kernel-rich convs"
        );
        // The default knob keeps pre-existing seeded traces
        // bit-identical: wide_conv_fraction == 0.0 draws no RNG.
        let a = generate(&narrow);
        let b = generate(&TraceConfig::new(21).with_requests(120));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(digest_of(&x.payload), digest_of(&y.payload));
        }
    }

    #[test]
    fn transformer_fraction_mints_large_inner_dim_gemms() {
        let plain = TraceConfig::new(17).with_requests(120);
        let llm = TraceConfig::new(17)
            .with_requests(120)
            .with_transformer_fraction(0.6)
            .with_transformer_shape(TransformerShape::new(8, 64));
        let max_inner = |trace: &[TraceRequest]| {
            trace
                .iter()
                .filter_map(|r| match &r.payload {
                    TracePayload::Gemm { a, .. } => Some(a.cols()),
                    _ => None,
                })
                .max()
                .unwrap_or(0)
        };
        assert!(max_inner(&generate(&plain)) <= 8, "default GEMMs stay tiny");
        // MlpDown's inner dimension is d_ff = 4 × d_model = 256.
        assert!(
            max_inner(&generate(&llm)) >= 64,
            "transformer knob must mint d_model-scale inner dims"
        );
        // The default knob keeps pre-existing seeded traces
        // bit-identical: transformer_fraction == 0.0 draws no RNG.
        let a = generate(&plain);
        let b = generate(&TraceConfig::new(17).with_requests(120));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(digest_of(&x.payload), digest_of(&y.payload));
        }
    }

    #[test]
    fn deadline_stamping_leaves_traces_bit_identical() {
        let plain = TraceConfig::new(33)
            .with_requests(90)
            .with_accurate_fraction(0.2);
        let deadlines = ClassDeadlines {
            fast: [1_000, 2_000, 3_000],
            accurate: [10_000, 20_000, 30_000],
        };
        let stamped_cfg = plain.clone().with_deadlines(deadlines);
        let a = generate(&plain);
        let b = generate(&stamped_cfg);
        for (x, y) in a.iter().zip(&b) {
            // Same RNG stream: stamping is a pure lookup.
            assert_eq!(x.arrival_ns, y.arrival_ns);
            assert_eq!(x.fidelity, y.fidelity);
            assert_eq!(digest_of(&x.payload), digest_of(&y.payload));
            assert_eq!(x.deadline_cycles, None);
            assert_eq!(
                y.deadline_cycles,
                Some(deadlines.deadline_for(y.fidelity, &y.payload))
            );
        }
        // The per-class lookup routes by fidelity and payload kind.
        assert!(b
            .iter()
            .filter(|r| r.fidelity == TraceFidelity::Accurate)
            .all(|r| r.deadline_cycles.unwrap() >= 10_000));
    }

    #[test]
    fn class_mix_covers_all_kinds_and_fidelities() {
        let cfg = TraceConfig::new(11)
            .with_requests(150)
            .with_repeat_fraction(0.2)
            .with_accurate_fraction(0.3);
        let trace = generate(&cfg);
        let kinds: Vec<&str> = trace.iter().map(|r| r.payload.kind()).collect();
        assert!(kinds.contains(&"conv"));
        assert!(kinds.contains(&"gemm"));
        assert!(kinds.contains(&"network"));
        assert!(trace.iter().any(|r| r.fidelity == TraceFidelity::Fast));
        assert!(trace.iter().any(|r| r.fidelity == TraceFidelity::Accurate));
    }
}
