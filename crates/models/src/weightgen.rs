//! Synthetic weight generation: seeded generalized-Gaussian sampling
//! plus symmetric per-layer quantization and sparsity pinning.
//!
//! Trained CNN weights are well modelled by zero-mean generalized
//! Gaussian distributions `f(x) ∝ exp(−(|x|/α)^β)` with shape β
//! between 1 (Laplacian) and 2 (Gaussian). The shape parameter is the
//! one calibration knob that controls the *tile-max* statistics
//! (Fig. 7's workload latency); the zero fraction is pinned exactly to
//! the paper's Table I sparsity afterwards (replacing surplus zeros
//! with ±1 or pruning ±1 values to zero — the smallest possible
//! perturbation in quantized space).

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// A zero-mean generalized Gaussian distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneralizedGaussian {
    alpha: f64,
    beta: f64,
}

impl GeneralizedGaussian {
    /// Creates the distribution with scale `alpha` and shape `beta`.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive and finite.
    #[must_use]
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        assert!(beta.is_finite() && beta > 0.0, "beta must be positive");
        GeneralizedGaussian { alpha, beta }
    }

    /// Shape parameter β.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Draws one sample: `|x| = α · G^{1/β}` with `G ~ Gamma(1/β, 1)`
    /// and a uniform random sign.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let g = sample_gamma(rng, 1.0 / self.beta);
        let magnitude = self.alpha * g.powf(1.0 / self.beta);
        if rng.random::<bool>() {
            magnitude
        } else {
            -magnitude
        }
    }
}

/// Standard normal via Box-Muller.
fn sample_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Gamma(shape, 1) via Marsaglia-Tsang, with the boosting trick for
/// shape < 1.
fn sample_gamma(rng: &mut impl Rng, shape: f64) -> f64 {
    if shape < 1.0 {
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d: f64 = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Symmetric per-layer quantization: the largest magnitude maps to
/// `qmax` (e.g. 127 for INT8), everything else rounds to nearest.
///
/// Returns an all-zero vector for degenerate all-zero input.
#[must_use]
pub fn quantize_symmetric(weights: &[f64], qmax: i32) -> Vec<i8> {
    let max = weights.iter().fold(0.0f64, |m, &w| m.max(w.abs()));
    if max == 0.0 {
        return vec![0; weights.len()];
    }
    let scale = max / f64::from(qmax);
    weights
        .iter()
        .map(|&w| {
            let q = (w / scale).round() as i32;
            q.clamp(-qmax, qmax) as i8
        })
        .collect()
}

/// Pins the zero fraction of `q` to `target_frac` with minimal
/// perturbations: surplus zeros become ±1, missing zeros are created
/// by pruning ±1 (then ±2, …) values.
pub fn pin_sparsity(q: &mut [i8], target_frac: f64, rng: &mut impl Rng) {
    assert!((0.0..=1.0).contains(&target_frac), "fraction out of range");
    if q.is_empty() {
        return;
    }
    let target = (target_frac * q.len() as f64).round() as usize;
    let zero_positions: Vec<usize> = (0..q.len()).filter(|&i| q[i] == 0).collect();
    if zero_positions.len() > target {
        // Too sparse: revive random zeros as ±1.
        let mut to_fix = zero_positions.len() - target;
        let mut candidates = zero_positions;
        while to_fix > 0 && !candidates.is_empty() {
            let pick = rng.random_range(0..candidates.len());
            let idx = candidates.swap_remove(pick);
            q[idx] = if rng.random::<bool>() { 1 } else { -1 };
            to_fix -= 1;
        }
    } else if zero_positions.len() < target {
        // Not sparse enough: prune smallest magnitudes first.
        let mut to_fix = target - zero_positions.len();
        let mut magnitude = 1i8;
        while to_fix > 0 && magnitude < i8::MAX {
            let mut candidates: Vec<usize> = (0..q.len())
                .filter(|&i| q[i] == magnitude || q[i] == -magnitude)
                .collect();
            while to_fix > 0 && !candidates.is_empty() {
                let pick = rng.random_range(0..candidates.len());
                let idx = candidates.swap_remove(pick);
                q[idx] = 0;
                to_fix -= 1;
            }
            magnitude += 1;
        }
    }
}

/// Generates one layer's quantized weights: sample, quantize, pin.
#[must_use]
pub fn generate_layer(
    count: usize,
    beta: f64,
    sparsity_frac: f64,
    qmax: i32,
    seed: u64,
) -> Vec<i8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = GeneralizedGaussian::new(1.0, beta);
    let raw: Vec<f64> = (0..count).map(|_| dist.sample(&mut rng)).collect();
    let mut q = quantize_symmetric(&raw, qmax);
    pin_sparsity(&mut q, sparsity_frac, &mut rng);
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gg_samples_have_requested_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let dist = GeneralizedGaussian::new(2.0, 1.0);
        let n = 20_000;
        let mean_abs: f64 = (0..n).map(|_| dist.sample(&mut rng).abs()).sum::<f64>() / f64::from(n);
        // Laplace(α): E|x| = α.
        assert!((mean_abs - 2.0).abs() < 0.1, "mean |x| = {mean_abs}");
    }

    #[test]
    fn gg_beta2_matches_gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(8);
        let dist = GeneralizedGaussian::new(1.0, 2.0);
        let n = 20_000;
        let var: f64 = (0..n)
            .map(|_| {
                let x = dist.sample(&mut rng);
                x * x
            })
            .sum::<f64>()
            / f64::from(n);
        // β=2 with α=1 is N(0, 1/2): variance 0.5.
        assert!((var - 0.5).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = generate_layer(100, 1.3, 0.02, 127, 42);
        let b = generate_layer(100, 1.3, 0.02, 127, 42);
        let c = generate_layer(100, 1.3, 0.02, 127, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn quantization_hits_full_scale() {
        let w = [0.1, -0.5, 0.25, -1.0];
        let q = quantize_symmetric(&w, 127);
        assert_eq!(q[3], -127);
        assert_eq!(q[1], -64); // -0.5 / (1/127) = -63.5, rounds away from zero
        let q4 = quantize_symmetric(&w, 7);
        assert_eq!(q4[3], -7);
    }

    #[test]
    fn quantize_all_zero_input() {
        assert_eq!(quantize_symmetric(&[0.0; 4], 127), vec![0; 4]);
    }

    #[test]
    fn pin_sparsity_exact_in_both_directions() {
        let mut rng = StdRng::seed_from_u64(1);
        // Start with 50% zeros, pin to 10%.
        let mut q: Vec<i8> = (0..1000).map(|i| if i % 2 == 0 { 0 } else { 50 }).collect();
        pin_sparsity(&mut q, 0.10, &mut rng);
        assert_eq!(q.iter().filter(|&&v| v == 0).count(), 100);
        // Now pin upward to 30%: needs pruning of the ±1s we created
        // plus larger magnitudes.
        pin_sparsity(&mut q, 0.30, &mut rng);
        assert_eq!(q.iter().filter(|&&v| v == 0).count(), 300);
    }

    #[test]
    fn pin_sparsity_preserves_large_magnitudes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut q: Vec<i8> = vec![127, -127, 1, -1, 1, -1, 1, -1, 0, 0];
        pin_sparsity(&mut q, 0.5, &mut rng);
        // The full-scale values must survive (they set the tile max).
        assert!(q.contains(&127));
        assert!(q.contains(&-127));
        assert_eq!(q.iter().filter(|&&v| v == 0).count(), 5);
    }

    #[test]
    fn generated_layer_hits_sparsity_target() {
        let q = generate_layer(50_000, 1.3, 0.0225, 127, 9);
        let zeros = q.iter().filter(|&&v| v == 0).count() as f64 / q.len() as f64;
        assert!((zeros - 0.0225).abs() < 0.001, "sparsity {zeros}");
    }

    #[test]
    fn generated_layer_reaches_full_scale() {
        let q = generate_layer(10_000, 1.3, 0.02, 127, 5);
        assert_eq!(q.iter().map(|v| v.unsigned_abs()).max(), Some(127));
    }
}
