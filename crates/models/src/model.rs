//! Quantized model containers.

use tempus_arith::IntPrecision;

use crate::calib;
use crate::weightgen;
use crate::zoo::Model;
use crate::ConvLayerSpec;

/// One convolution layer with its synthetic quantized weights, stored
/// row-major over the lowered matrix (`out_c` rows ×
/// `(in_c/groups)·kh·kw` columns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizedLayer {
    /// Layer shape.
    pub spec: ConvLayerSpec,
    /// Quantized weights (fits `i8` for INT8 and below).
    pub weights: Vec<i8>,
}

impl QuantizedLayer {
    /// Lowered weight matrix dimensions `(rows, cols)`.
    #[must_use]
    pub fn lowered_dims(&self) -> (usize, usize) {
        self.spec.lowered_dims()
    }

    /// Weight at `(row, col)` of the lowered matrix.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> i8 {
        let (rows, cols) = self.lowered_dims();
        assert!(row < rows && col < cols, "lowered index out of range");
        self.weights[row * cols + col]
    }

    /// Fraction of zero weights.
    #[must_use]
    pub fn sparsity(&self) -> f64 {
        if self.weights.is_empty() {
            return 0.0;
        }
        self.weights.iter().filter(|&&w| w == 0).count() as f64 / self.weights.len() as f64
    }
}

/// A whole model's synthetic quantized convolution weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizedModel {
    /// Which architecture this is.
    pub model: Model,
    /// Quantization precision.
    pub precision: IntPrecision,
    /// Layers in network order.
    pub layers: Vec<QuantizedLayer>,
}

impl QuantizedModel {
    /// Generates the full model with calibrated weight statistics.
    /// Deterministic in `(model, precision, seed)`.
    #[must_use]
    pub fn generate(model: Model, precision: IntPrecision, seed: u64) -> Self {
        Self::generate_limited(model, precision, seed, usize::MAX)
    }

    /// Generates only the first layers up to a total weight budget —
    /// statistically representative subsets for fast tests on the
    /// 80M-weight models.
    #[must_use]
    pub fn generate_limited(
        model: Model,
        precision: IntPrecision,
        seed: u64,
        max_weights: usize,
    ) -> Self {
        let cal = calib::for_model(model);
        let qmax = precision.max_value();
        let mut layers = Vec::new();
        let mut budget = max_weights;
        for (idx, spec) in model.conv_layers().into_iter().enumerate() {
            let count = spec.weight_count();
            if count > budget {
                break;
            }
            budget -= count;
            let layer_seed = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(idx as u64);
            let weights = weightgen::generate_layer(
                count,
                cal.beta,
                cal.sparsity_pct / 100.0,
                qmax,
                layer_seed,
            );
            layers.push(QuantizedLayer { spec, weights });
        }
        QuantizedModel {
            model,
            precision,
            layers,
        }
    }

    /// Total weight count across generated layers.
    #[must_use]
    pub fn total_weights(&self) -> usize {
        self.layers.iter().map(|l| l.weights.len()).sum()
    }

    /// Zero-weight percentage across all generated layers (Table I's
    /// "word sparsity").
    #[must_use]
    pub fn sparsity_pct(&self) -> f64 {
        let total = self.total_weights();
        if total == 0 {
            return 0.0;
        }
        let zeros: usize = self
            .layers
            .iter()
            .map(|l| l.weights.iter().filter(|&&w| w == 0).count())
            .sum();
        zeros as f64 / total as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a =
            QuantizedModel::generate_limited(Model::ShuffleNetV2, IntPrecision::Int8, 1, 200_000);
        let b =
            QuantizedModel::generate_limited(Model::ShuffleNetV2, IntPrecision::Int8, 1, 200_000);
        assert_eq!(a, b);
    }

    #[test]
    fn weights_respect_precision() {
        let m = QuantizedModel::generate_limited(Model::GoogleNet, IntPrecision::Int4, 2, 100_000);
        for layer in &m.layers {
            for &w in &layer.weights {
                assert!((-7..=7).contains(&w), "INT4 weight {w}");
            }
        }
    }

    #[test]
    fn sparsity_close_to_table_i_target() {
        let m = QuantizedModel::generate_limited(Model::GoogleNet, IntPrecision::Int8, 3, 500_000);
        let target = calib::for_model(Model::GoogleNet).sparsity_pct;
        assert!(
            (m.sparsity_pct() - target).abs() < 0.2,
            "sparsity {} vs target {}",
            m.sparsity_pct(),
            target
        );
    }

    #[test]
    fn lowered_indexing() {
        let m =
            QuantizedModel::generate_limited(Model::ShuffleNetV2, IntPrecision::Int8, 4, 10_000);
        let layer = &m.layers[0];
        let (rows, cols) = layer.lowered_dims();
        assert_eq!(rows * cols, layer.weights.len());
        assert_eq!(layer.get(0, 0), layer.weights[0]);
        assert_eq!(
            layer.get(rows - 1, cols - 1),
            *layer.weights.last().unwrap()
        );
    }

    #[test]
    fn limited_generation_respects_budget() {
        let m = QuantizedModel::generate_limited(Model::ResNet18, IntPrecision::Int8, 5, 50_000);
        assert!(m.total_weights() <= 50_000);
        assert!(!m.layers.is_empty());
    }

    #[test]
    fn every_layer_reaches_full_scale() {
        let m =
            QuantizedModel::generate_limited(Model::MobileNetV2, IntPrecision::Int8, 6, 300_000);
        for layer in &m.layers {
            let max = layer
                .weights
                .iter()
                .map(|w| w.unsigned_abs())
                .max()
                .unwrap();
            assert_eq!(max, 127, "layer {} max {max}", layer.spec.name);
        }
    }
}
