//! ResNet / ResNeXt layer tables.

use crate::ConvLayerSpec;

/// ResNet-18: 7×7 stem plus four stages of two basic blocks each.
pub fn resnet18() -> Vec<ConvLayerSpec> {
    let mut layers = vec![ConvLayerSpec::new("conv1", 64, 3, 7, 7, 1)];
    let widths = [64usize, 128, 256, 512];
    let mut in_c = 64;
    for (stage, &w) in widths.iter().enumerate() {
        for block in 0..2 {
            let name = format!("layer{}.{}", stage + 1, block);
            layers.push(ConvLayerSpec::new(
                format!("{name}.conv1"),
                w,
                in_c,
                3,
                3,
                1,
            ));
            layers.push(ConvLayerSpec::new(format!("{name}.conv2"), w, w, 3, 3, 1));
            if block == 0 && in_c != w {
                layers.push(ConvLayerSpec::new(
                    format!("{name}.downsample"),
                    w,
                    in_c,
                    1,
                    1,
                    1,
                ));
            }
            in_c = w;
        }
    }
    layers
}

fn bottleneck_stages(
    layers: &mut Vec<ConvLayerSpec>,
    blocks: [usize; 4],
    inner_base: usize,
    groups: usize,
) {
    let mut in_c = 64;
    for (stage, &count) in blocks.iter().enumerate() {
        let inner = inner_base << stage;
        let out = 256 << stage;
        for block in 0..count {
            let name = format!("layer{}.{}", stage + 1, block);
            layers.push(ConvLayerSpec::new(
                format!("{name}.conv1"),
                inner,
                in_c,
                1,
                1,
                1,
            ));
            layers.push(ConvLayerSpec::new(
                format!("{name}.conv2"),
                inner,
                inner,
                3,
                3,
                groups,
            ));
            layers.push(ConvLayerSpec::new(
                format!("{name}.conv3"),
                out,
                inner,
                1,
                1,
                1,
            ));
            if block == 0 {
                layers.push(ConvLayerSpec::new(
                    format!("{name}.downsample"),
                    out,
                    in_c,
                    1,
                    1,
                    1,
                ));
            }
            in_c = out;
        }
    }
}

/// ResNet-50: bottleneck blocks [3, 4, 6, 3], inner widths 64..512.
pub fn resnet50() -> Vec<ConvLayerSpec> {
    let mut layers = vec![ConvLayerSpec::new("conv1", 64, 3, 7, 7, 1)];
    bottleneck_stages(&mut layers, [3, 4, 6, 3], 64, 1);
    layers
}

/// ResNeXt-101 32x8d: bottlenecks [3, 4, 23, 3] with cardinality 32
/// and width-per-group 8 (inner widths 256..2048).
pub fn resnext101_32x8d() -> Vec<ConvLayerSpec> {
    let mut layers = vec![ConvLayerSpec::new("conv1", 64, 3, 7, 7, 1)];
    bottleneck_stages(&mut layers, [3, 4, 23, 3], 256, 32);
    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_conv_params() {
        let params: usize = resnet18().iter().map(ConvLayerSpec::weight_count).sum();
        // Published: ~11.2M conv parameters.
        assert!((10_800_000..11_600_000).contains(&params), "{params}");
    }

    #[test]
    fn resnet50_conv_params() {
        let params: usize = resnet50().iter().map(ConvLayerSpec::weight_count).sum();
        // Published: ~23.5M conv parameters.
        assert!((22_000_000..25_000_000).contains(&params), "{params}");
    }

    #[test]
    fn resnext101_conv_params() {
        let params: usize = resnext101_32x8d()
            .iter()
            .map(ConvLayerSpec::weight_count)
            .sum();
        // Published: ~86.7M conv parameters.
        assert!((83_000_000..91_000_000).contains(&params), "{params}");
    }

    #[test]
    fn resnext_grouped_convs_have_cardinality_32() {
        assert!(resnext101_32x8d()
            .iter()
            .filter(|l| l.name.ends_with("conv2"))
            .all(|l| l.groups == 32));
    }

    #[test]
    fn stage_block_counts() {
        let count = |prefix: &str| {
            resnext101_32x8d()
                .iter()
                .filter(|l| l.name.starts_with(prefix) && l.name.ends_with("conv1"))
                .count()
        };
        assert_eq!(count("layer3"), 23);
        assert_eq!(count("layer4"), 3);
    }
}
