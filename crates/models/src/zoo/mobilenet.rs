//! MobileNet family layer tables.

use crate::ConvLayerSpec;

/// MobileNetV2 1.0x for 224×224 inputs: initial 3×3, seventeen
/// inverted-residual blocks per the published (t, c, n, s) table, and
/// the final 1×1 expansion to 1280.
pub fn mobilenet_v2() -> Vec<ConvLayerSpec> {
    let mut layers = Vec::new();
    layers.push(ConvLayerSpec::new("conv0", 32, 3, 3, 3, 1));
    // (expansion t, output channels c, repeats n).
    let table: [(usize, usize, usize); 7] = [
        (1, 16, 1),
        (6, 24, 2),
        (6, 32, 3),
        (6, 64, 4),
        (6, 96, 3),
        (6, 160, 3),
        (6, 320, 1),
    ];
    let mut in_c = 32;
    let mut block = 0;
    for (t, c, n) in table {
        for _ in 0..n {
            let hidden = in_c * t;
            if t != 1 {
                layers.push(ConvLayerSpec::new(
                    format!("block{block}.expand"),
                    hidden,
                    in_c,
                    1,
                    1,
                    1,
                ));
            }
            layers.push(ConvLayerSpec::new(
                format!("block{block}.dw"),
                hidden,
                hidden,
                3,
                3,
                hidden,
            ));
            layers.push(ConvLayerSpec::new(
                format!("block{block}.project"),
                c,
                hidden,
                1,
                1,
                1,
            ));
            in_c = c;
            block += 1;
        }
    }
    layers.push(ConvLayerSpec::new("conv_last", 1280, 320, 1, 1, 1));
    layers
}

/// MobileNetV3-Large: published bneck table with squeeze-excite 1×1
/// reductions included (they run on the DLA as 1×1 convolutions).
pub fn mobilenet_v3_large() -> Vec<ConvLayerSpec> {
    let mut layers = Vec::new();
    layers.push(ConvLayerSpec::new("conv0", 16, 3, 3, 3, 1));
    // (kernel, expanded, out, use_se).
    let table: [(usize, usize, usize, bool); 15] = [
        (3, 16, 16, false),
        (3, 64, 24, false),
        (3, 72, 24, false),
        (5, 72, 40, true),
        (5, 120, 40, true),
        (5, 120, 40, true),
        (3, 240, 80, false),
        (3, 200, 80, false),
        (3, 184, 80, false),
        (3, 184, 80, false),
        (3, 480, 112, true),
        (3, 672, 112, true),
        (5, 672, 160, true),
        (5, 960, 160, true),
        (5, 960, 160, true),
    ];
    let mut in_c = 16;
    for (i, (k, exp, out, se)) in table.into_iter().enumerate() {
        if exp != in_c {
            layers.push(ConvLayerSpec::new(
                format!("bneck{i}.expand"),
                exp,
                in_c,
                1,
                1,
                1,
            ));
        }
        layers.push(ConvLayerSpec::new(
            format!("bneck{i}.dw"),
            exp,
            exp,
            k,
            k,
            exp,
        ));
        if se {
            let squeeze = (exp / 4).max(8);
            layers.push(ConvLayerSpec::new(
                format!("bneck{i}.se_reduce"),
                squeeze,
                exp,
                1,
                1,
                1,
            ));
            layers.push(ConvLayerSpec::new(
                format!("bneck{i}.se_expand"),
                exp,
                squeeze,
                1,
                1,
                1,
            ));
        }
        layers.push(ConvLayerSpec::new(
            format!("bneck{i}.project"),
            out,
            exp,
            1,
            1,
            1,
        ));
        in_c = out;
    }
    layers.push(ConvLayerSpec::new("conv_last", 960, 160, 1, 1, 1));
    layers.push(ConvLayerSpec::new("conv_head", 1280, 960, 1, 1, 1));
    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobilenet_v2_block_structure() {
        let layers = mobilenet_v2();
        // 1 stem + block0 (2 layers, t=1) + 16 blocks x 3 layers + last.
        assert_eq!(layers.len(), 1 + 2 + 16 * 3 + 1);
        // Published conv parameter count ~1.95M.
        let params: usize = layers.iter().map(ConvLayerSpec::weight_count).sum();
        assert!((1_800_000..2_200_000).contains(&params), "{params}");
    }

    #[test]
    fn mobilenet_v2_first_block_has_no_expand() {
        let layers = mobilenet_v2();
        assert_eq!(layers[1].name, "block0.dw");
    }

    #[test]
    fn mobilenet_v3_has_se_blocks() {
        let layers = mobilenet_v3_large();
        assert!(layers.iter().any(|l| l.name.contains("se_reduce")));
    }
}
