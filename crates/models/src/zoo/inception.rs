//! Inception family layer tables.

use crate::ConvLayerSpec;

#[allow(clippy::too_many_arguments)] // mirrors the published module table columns
fn inception_module(
    layers: &mut Vec<ConvLayerSpec>,
    name: &str,
    in_c: usize,
    b1: usize,
    b3r: usize,
    b3: usize,
    b5r: usize,
    b5: usize,
    pool: usize,
) -> usize {
    layers.push(ConvLayerSpec::new(format!("{name}.1x1"), b1, in_c, 1, 1, 1));
    layers.push(ConvLayerSpec::new(
        format!("{name}.3x3r"),
        b3r,
        in_c,
        1,
        1,
        1,
    ));
    layers.push(ConvLayerSpec::new(format!("{name}.3x3"), b3, b3r, 3, 3, 1));
    layers.push(ConvLayerSpec::new(
        format!("{name}.5x5r"),
        b5r,
        in_c,
        1,
        1,
        1,
    ));
    layers.push(ConvLayerSpec::new(format!("{name}.5x5"), b5, b5r, 5, 5, 1));
    layers.push(ConvLayerSpec::new(
        format!("{name}.pool"),
        pool,
        in_c,
        1,
        1,
        1,
    ));
    b1 + b3 + b5 + pool
}

/// GoogleNet (Inception v1): canonical module table 3a–5b.
pub fn googlenet() -> Vec<ConvLayerSpec> {
    let mut layers = vec![
        ConvLayerSpec::new("conv1", 64, 3, 7, 7, 1),
        ConvLayerSpec::new("conv2.reduce", 64, 64, 1, 1, 1),
        ConvLayerSpec::new("conv2", 192, 64, 3, 3, 1),
    ];
    let mut c = 192;
    c = inception_module(&mut layers, "3a", c, 64, 96, 128, 16, 32, 32);
    c = inception_module(&mut layers, "3b", c, 128, 128, 192, 32, 96, 64);
    c = inception_module(&mut layers, "4a", c, 192, 96, 208, 16, 48, 64);
    c = inception_module(&mut layers, "4b", c, 160, 112, 224, 24, 64, 64);
    c = inception_module(&mut layers, "4c", c, 128, 128, 256, 24, 64, 64);
    c = inception_module(&mut layers, "4d", c, 112, 144, 288, 32, 64, 64);
    c = inception_module(&mut layers, "4e", c, 256, 160, 320, 32, 128, 128);
    c = inception_module(&mut layers, "5a", c, 256, 160, 320, 32, 128, 128);
    let _ = inception_module(&mut layers, "5b", c, 384, 192, 384, 48, 128, 128);
    layers
}

/// InceptionV3: stem plus the factorised module stacks (A×3,
/// reduction, C×4 with 1×7/7×1 factorisation, reduction, E×2) with the
/// standard channel allocations.
pub fn inception_v3() -> Vec<ConvLayerSpec> {
    let mut layers = vec![
        ConvLayerSpec::new("stem.conv1", 32, 3, 3, 3, 1),
        ConvLayerSpec::new("stem.conv2", 32, 32, 3, 3, 1),
        ConvLayerSpec::new("stem.conv3", 64, 32, 3, 3, 1),
        ConvLayerSpec::new("stem.conv4", 80, 64, 1, 1, 1),
        ConvLayerSpec::new("stem.conv5", 192, 80, 3, 3, 1),
    ];
    // Inception-A x3 (5x5 factorised as described in the paper's
    // published torchvision weights: 5x5 branch kept as a single conv).
    let mut c = 192;
    for (i, pool) in [32usize, 64, 64].into_iter().enumerate() {
        let name = format!("mixed5{}", b'b' + i as u8);
        layers.push(ConvLayerSpec::new(format!("{name}.1x1"), 64, c, 1, 1, 1));
        layers.push(ConvLayerSpec::new(format!("{name}.5x5r"), 48, c, 1, 1, 1));
        layers.push(ConvLayerSpec::new(format!("{name}.5x5"), 64, 48, 5, 5, 1));
        layers.push(ConvLayerSpec::new(format!("{name}.3x3r"), 64, c, 1, 1, 1));
        layers.push(ConvLayerSpec::new(format!("{name}.3x3a"), 96, 64, 3, 3, 1));
        layers.push(ConvLayerSpec::new(format!("{name}.3x3b"), 96, 96, 3, 3, 1));
        layers.push(ConvLayerSpec::new(format!("{name}.pool"), pool, c, 1, 1, 1));
        c = 64 + 64 + 96 + pool;
    }
    // Reduction-A.
    layers.push(ConvLayerSpec::new("mixed6a.3x3", 384, c, 3, 3, 1));
    layers.push(ConvLayerSpec::new("mixed6a.dbl_r", 64, c, 1, 1, 1));
    layers.push(ConvLayerSpec::new("mixed6a.dbl_a", 96, 64, 3, 3, 1));
    layers.push(ConvLayerSpec::new("mixed6a.dbl_b", 96, 96, 3, 3, 1));
    c += 384 + 96;
    // Inception-C x4 with 7x1/1x7 factorisation; channel widths 128,
    // 160, 160, 192 per the published architecture.
    for (i, width) in [128usize, 160, 160, 192].into_iter().enumerate() {
        let name = format!("mixed6{}", b'b' + i as u8);
        layers.push(ConvLayerSpec::new(format!("{name}.1x1"), 192, c, 1, 1, 1));
        layers.push(ConvLayerSpec::new(format!("{name}.q1"), width, c, 1, 1, 1));
        layers.push(ConvLayerSpec::new(
            format!("{name}.q2"),
            width,
            width,
            1,
            7,
            1,
        ));
        layers.push(ConvLayerSpec::new(
            format!("{name}.q3"),
            192,
            width,
            7,
            1,
            1,
        ));
        layers.push(ConvLayerSpec::new(format!("{name}.d1"), width, c, 1, 1, 1));
        layers.push(ConvLayerSpec::new(
            format!("{name}.d2"),
            width,
            width,
            7,
            1,
            1,
        ));
        layers.push(ConvLayerSpec::new(
            format!("{name}.d3"),
            width,
            width,
            1,
            7,
            1,
        ));
        layers.push(ConvLayerSpec::new(
            format!("{name}.d4"),
            width,
            width,
            7,
            1,
            1,
        ));
        layers.push(ConvLayerSpec::new(
            format!("{name}.d5"),
            192,
            width,
            1,
            7,
            1,
        ));
        layers.push(ConvLayerSpec::new(format!("{name}.pool"), 192, c, 1, 1, 1));
        c = 192 * 4;
    }
    // Reduction-B.
    layers.push(ConvLayerSpec::new("mixed7a.3x3r", 192, c, 1, 1, 1));
    layers.push(ConvLayerSpec::new("mixed7a.3x3", 320, 192, 3, 3, 1));
    layers.push(ConvLayerSpec::new("mixed7a.7x7r", 192, c, 1, 1, 1));
    layers.push(ConvLayerSpec::new("mixed7a.7x7a", 192, 192, 1, 7, 1));
    layers.push(ConvLayerSpec::new("mixed7a.7x7b", 192, 192, 7, 1, 1));
    layers.push(ConvLayerSpec::new("mixed7a.7x7c", 192, 192, 3, 3, 1));
    c += 320 + 192;
    // Inception-E x2.
    for i in 0..2 {
        let name = format!("mixed7{}", b'b' + i as u8);
        layers.push(ConvLayerSpec::new(format!("{name}.1x1"), 320, c, 1, 1, 1));
        layers.push(ConvLayerSpec::new(format!("{name}.3x3r"), 384, c, 1, 1, 1));
        layers.push(ConvLayerSpec::new(
            format!("{name}.3x3a"),
            384,
            384,
            1,
            3,
            1,
        ));
        layers.push(ConvLayerSpec::new(
            format!("{name}.3x3b"),
            384,
            384,
            3,
            1,
            1,
        ));
        layers.push(ConvLayerSpec::new(format!("{name}.dbl_r"), 448, c, 1, 1, 1));
        layers.push(ConvLayerSpec::new(
            format!("{name}.dbl_1"),
            384,
            448,
            3,
            3,
            1,
        ));
        layers.push(ConvLayerSpec::new(
            format!("{name}.dbl_2a"),
            384,
            384,
            1,
            3,
            1,
        ));
        layers.push(ConvLayerSpec::new(
            format!("{name}.dbl_2b"),
            384,
            384,
            3,
            1,
            1,
        ));
        layers.push(ConvLayerSpec::new(format!("{name}.pool"), 192, c, 1, 1, 1));
        c = 320 + 384 * 2 + 384 * 2 + 192;
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn googlenet_conv_params() {
        let params: usize = googlenet().iter().map(ConvLayerSpec::weight_count).sum();
        // Published GoogleNet: ~6M parameters, ~5.6-6M in conv.
        assert!((5_300_000..6_400_000).contains(&params), "{params}");
    }

    #[test]
    fn googlenet_module_output_channels() {
        // 3a outputs 256 channels; verify via 3b's input widths.
        let layers = googlenet();
        let l = layers.iter().find(|l| l.name == "3b.1x1").unwrap();
        assert_eq!(l.in_c, 256);
        let l = layers.iter().find(|l| l.name == "4a.1x1").unwrap();
        assert_eq!(l.in_c, 480);
    }

    #[test]
    fn inception_v3_conv_params() {
        let params: usize = inception_v3().iter().map(ConvLayerSpec::weight_count).sum();
        // Published InceptionV3: ~21.8M conv parameters.
        assert!((18_000_000..24_000_000).contains(&params), "{params}");
    }
}
