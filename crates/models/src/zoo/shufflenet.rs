//! ShuffleNetV2 layer table.

use crate::ConvLayerSpec;

/// ShuffleNetV2 1.0x: stem, three stages of shuffle units (stage
/// widths 116/232/464 with 4/8/4 units) and the final 1×1 conv5.
///
/// In each basic unit only half the channels pass through the
/// 1×1 → dw3×3 → 1×1 branch; downsampling units process both halves.
pub fn shufflenet_v2_x1() -> Vec<ConvLayerSpec> {
    let mut layers = vec![ConvLayerSpec::new("conv1", 24, 3, 3, 3, 1)];
    let stages: [(usize, usize); 3] = [(116, 4), (232, 8), (464, 4)];
    let mut in_c = 24;
    for (stage_idx, (width, units)) in stages.into_iter().enumerate() {
        for unit in 0..units {
            let name = format!("stage{}.{}", stage_idx + 2, unit);
            if unit == 0 {
                // Downsample unit: both branches are convolved.
                let half = width / 2;
                layers.push(ConvLayerSpec::new(
                    format!("{name}.b1_dw"),
                    in_c,
                    in_c,
                    3,
                    3,
                    in_c,
                ));
                layers.push(ConvLayerSpec::new(
                    format!("{name}.b1_pw"),
                    half,
                    in_c,
                    1,
                    1,
                    1,
                ));
                layers.push(ConvLayerSpec::new(
                    format!("{name}.b2_pw1"),
                    half,
                    in_c,
                    1,
                    1,
                    1,
                ));
                layers.push(ConvLayerSpec::new(
                    format!("{name}.b2_dw"),
                    half,
                    half,
                    3,
                    3,
                    half,
                ));
                layers.push(ConvLayerSpec::new(
                    format!("{name}.b2_pw2"),
                    half,
                    half,
                    1,
                    1,
                    1,
                ));
                in_c = width;
            } else {
                let half = width / 2;
                layers.push(ConvLayerSpec::new(
                    format!("{name}.pw1"),
                    half,
                    half,
                    1,
                    1,
                    1,
                ));
                layers.push(ConvLayerSpec::new(
                    format!("{name}.dw"),
                    half,
                    half,
                    3,
                    3,
                    half,
                ));
                layers.push(ConvLayerSpec::new(
                    format!("{name}.pw2"),
                    half,
                    half,
                    1,
                    1,
                    1,
                ));
            }
        }
    }
    layers.push(ConvLayerSpec::new("conv5", 1024, 464, 1, 1, 1));
    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shufflenet_conv_params() {
        let params: usize = shufflenet_v2_x1()
            .iter()
            .map(ConvLayerSpec::weight_count)
            .sum();
        // ShuffleNetV2 1.0x: ~2.3M total params, ~1.2M in conv
        // (the 464->1024 conv5 dominates).
        assert!((900_000..1_700_000).contains(&params), "{params}");
    }

    #[test]
    fn stages_have_expected_unit_counts() {
        let layers = shufflenet_v2_x1();
        let count = |p: &str| layers.iter().filter(|l| l.name.starts_with(p)).count();
        assert_eq!(count("stage2"), 5 + 3 * 3);
        assert_eq!(count("stage3"), 5 + 7 * 3);
    }
}
