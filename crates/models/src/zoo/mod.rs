//! Architecture zoo: convolution layer shape lists for the eight CNNs
//! the paper profiles (Table I).
//!
//! MobileNetV2, ResNet-18/50 and ResNeXt-101 32x8d follow their
//! published architectures exactly; GoogleNet uses the canonical
//! Inception-v1 table; MobileNetV3-Large, InceptionV3 and ShuffleNetV2
//! are architecture-faithful encodings of the standard variants (the
//! paper's "ShuffleNetV3" does not exist as a published architecture —
//! we map it to ShuffleNetV2, the nearest published design, and note
//! this in EXPERIMENTS.md).

mod inception;
mod mobilenet;
mod resnet;
mod shufflenet;

use std::fmt;

use crate::ConvLayerSpec;

/// The eight CNNs of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// MobileNetV2 (1.0x, 224).
    MobileNetV2,
    /// MobileNetV3-Large.
    MobileNetV3,
    /// GoogleNet (Inception v1).
    GoogleNet,
    /// InceptionV3.
    InceptionV3,
    /// ShuffleNetV2 1.0x (the paper's "ShuffleNetV3").
    ShuffleNetV2,
    /// ResNet-18.
    ResNet18,
    /// ResNet-50.
    ResNet50,
    /// ResNeXt-101 32x8d.
    ResNeXt101,
}

impl Model {
    /// All models, in Table I order.
    pub const ALL: [Model; 8] = [
        Model::MobileNetV2,
        Model::MobileNetV3,
        Model::GoogleNet,
        Model::InceptionV3,
        Model::ShuffleNetV2,
        Model::ResNet18,
        Model::ResNet50,
        Model::ResNeXt101,
    ];

    /// Display name matching Table I.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Model::MobileNetV2 => "MobileNetV2",
            Model::MobileNetV3 => "MobileNetV3",
            Model::GoogleNet => "GoogleNet",
            Model::InceptionV3 => "InceptionV3",
            Model::ShuffleNetV2 => "ShuffleNetV3",
            Model::ResNet18 => "ResNet18",
            Model::ResNet50 => "ResNet50",
            Model::ResNeXt101 => "ResNeXt101",
        }
    }

    /// Convolution layer shapes for the model.
    #[must_use]
    pub fn conv_layers(self) -> Vec<ConvLayerSpec> {
        match self {
            Model::MobileNetV2 => mobilenet::mobilenet_v2(),
            Model::MobileNetV3 => mobilenet::mobilenet_v3_large(),
            Model::GoogleNet => inception::googlenet(),
            Model::InceptionV3 => inception::inception_v3(),
            Model::ShuffleNetV2 => shufflenet::shufflenet_v2_x1(),
            Model::ResNet18 => resnet::resnet18(),
            Model::ResNet50 => resnet::resnet50(),
            Model::ResNeXt101 => resnet::resnext101_32x8d(),
        }
    }

    /// Total convolution weight count.
    #[must_use]
    pub fn conv_weight_count(self) -> usize {
        self.conv_layers()
            .iter()
            .map(ConvLayerSpec::weight_count)
            .sum()
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published convolution-parameter counts (approximate, in
    /// millions) the shape lists must land near. Keeping these tight
    /// guards against transcription slips in the tables.
    #[test]
    fn parameter_counts_match_published_architectures() {
        let expectations = [
            (Model::MobileNetV2, 2.0, 0.35),
            (Model::MobileNetV3, 4.1, 1.2),
            (Model::GoogleNet, 5.8, 0.6),
            (Model::InceptionV3, 21.0, 3.0),
            (Model::ShuffleNetV2, 1.2, 0.5),
            (Model::ResNet18, 11.2, 0.6),
            (Model::ResNet50, 23.5, 1.5),
            (Model::ResNeXt101, 86.7, 4.0),
        ];
        for (model, millions, tolerance) in expectations {
            let count = model.conv_weight_count() as f64 / 1e6;
            assert!(
                (count - millions).abs() < tolerance,
                "{model}: {count:.2}M conv params, expected ~{millions}M"
            );
        }
    }

    #[test]
    fn every_model_has_layers() {
        for model in Model::ALL {
            let layers = model.conv_layers();
            assert!(!layers.is_empty(), "{model}");
            for layer in &layers {
                assert!(layer.weight_count() > 0);
            }
        }
    }

    #[test]
    fn first_layers_consume_rgb() {
        for model in Model::ALL {
            assert_eq!(model.conv_layers()[0].in_c, 3, "{model}");
        }
    }

    #[test]
    fn mobilenets_contain_depthwise_layers() {
        use crate::LayerKind;
        for model in [Model::MobileNetV2, Model::MobileNetV3] {
            assert!(
                model
                    .conv_layers()
                    .iter()
                    .any(|l| l.kind() == LayerKind::Depthwise),
                "{model}"
            );
        }
    }

    #[test]
    fn resnext_contains_grouped_layers() {
        use crate::LayerKind;
        assert!(Model::ResNeXt101
            .conv_layers()
            .iter()
            .any(|l| l.kind() == LayerKind::Grouped && l.groups == 32));
    }
}
