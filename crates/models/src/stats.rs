//! Weight statistics over quantized models.

use crate::{LayerKind, QuantizedModel};

/// Distribution statistics over a model's quantized weights.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightStats {
    /// Total weights inspected.
    pub count: usize,
    /// Zero-weight percentage (Table I's metric).
    pub sparsity_pct: f64,
    /// Mean absolute quantized value.
    pub mean_abs: f64,
    /// Largest magnitude (equals full scale with symmetric
    /// quantization).
    pub max_abs: u32,
    /// Histogram of magnitudes (index = |q|).
    pub magnitude_histogram: Vec<u64>,
}

/// Computes statistics over every generated layer.
#[must_use]
pub fn weight_stats(model: &QuantizedModel) -> WeightStats {
    let mut count = 0usize;
    let mut zeros = 0usize;
    let mut sum_abs = 0u64;
    let mut max_abs = 0u32;
    let mut hist = vec![0u64; 129];
    for layer in &model.layers {
        for &w in &layer.weights {
            let mag = u32::from(w.unsigned_abs());
            count += 1;
            if mag == 0 {
                zeros += 1;
            }
            sum_abs += u64::from(mag);
            max_abs = max_abs.max(mag);
            hist[mag as usize] += 1;
        }
    }
    WeightStats {
        count,
        sparsity_pct: if count == 0 {
            0.0
        } else {
            zeros as f64 / count as f64 * 100.0
        },
        mean_abs: if count == 0 {
            0.0
        } else {
            sum_abs as f64 / count as f64
        },
        max_abs,
        magnitude_histogram: hist,
    }
}

/// Per-layer-kind weight share: how many weights live in layers of
/// each kind (depthwise vs pointwise vs dense matters for tile
/// statistics).
#[must_use]
pub fn weights_by_kind(model: &QuantizedModel) -> Vec<(LayerKind, usize)> {
    let kinds = [
        LayerKind::Standard,
        LayerKind::Depthwise,
        LayerKind::Pointwise,
        LayerKind::Grouped,
    ];
    kinds
        .iter()
        .map(|&kind| {
            let total = model
                .layers
                .iter()
                .filter(|l| l.spec.kind() == kind)
                .map(|l| l.weights.len())
                .sum();
            (kind, total)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::Model;
    use tempus_arith::IntPrecision;

    #[test]
    fn stats_are_consistent() {
        let m =
            QuantizedModel::generate_limited(Model::ShuffleNetV2, IntPrecision::Int8, 7, 100_000);
        let s = weight_stats(&m);
        assert_eq!(s.count, m.total_weights());
        assert!((s.sparsity_pct - m.sparsity_pct()).abs() < 1e-9);
        assert_eq!(s.max_abs, 127);
        let hist_total: u64 = s.magnitude_histogram.iter().sum();
        assert_eq!(hist_total as usize, s.count);
    }

    #[test]
    fn histogram_monotone_decreasing_in_bulk() {
        // A unimodal zero-centred distribution: low magnitudes should
        // vastly outnumber high ones (except the pinned full-scale).
        let m = QuantizedModel::generate_limited(Model::GoogleNet, IntPrecision::Int8, 8, 300_000);
        let s = weight_stats(&m);
        assert!(s.magnitude_histogram[1] > s.magnitude_histogram[60]);
        assert!(s.magnitude_histogram[10] > s.magnitude_histogram[100]);
    }

    #[test]
    fn kind_breakdown_sums_to_total() {
        let m =
            QuantizedModel::generate_limited(Model::MobileNetV2, IntPrecision::Int8, 9, 200_000);
        let by_kind = weights_by_kind(&m);
        let sum: usize = by_kind.iter().map(|&(_, n)| n).sum();
        assert_eq!(sum, m.total_weights());
    }
}
