//! Whole-network job construction: turns the zoo's synthetic
//! [`QuantizedModel`]s into runnable NVDLA [`NetworkLayer`] chains.
//!
//! The runtime engine (`tempus-runtime`) serves whole-network jobs,
//! not just single convolutions; this module bridges the model zoo to
//! the execution substrate. Architecture layer lists contain branches
//! and grouped convolutions the dense [`NetworkLayer`] path cannot
//! express, so [`network_prefix`] extracts the longest *chainable*
//! dense prefix under a channel budget — small enough to run on the
//! cycle-accurate cores in tests, faithful enough to carry each
//! layer's real quantized weight statistics.

use tempus_arith::IntPrecision;
use tempus_nvdla::conv::ConvParams;
use tempus_nvdla::cube::{DataCube, KernelSet};
use tempus_nvdla::network::NetworkLayer;

use crate::{QuantizedLayer, QuantizedModel};

/// Lowers a dense quantized layer's weights into the KRSC kernel cube
/// the convolution cores consume.
///
/// Column order of the lowered matrix is `((c · kh) + r) · kw + s` —
/// the inverse of this function's indexing, so
/// `kernel_set(layer).get(k, r, s, c) == layer.get(k, col)`.
///
/// # Panics
///
/// Panics when the layer is grouped (`groups > 1`); the dense network
/// path cannot express it.
#[must_use]
pub fn kernel_set(layer: &QuantizedLayer) -> KernelSet {
    assert_eq!(
        layer.spec.groups, 1,
        "kernel_set only lowers dense layers; {} is grouped",
        layer.spec.name
    );
    let (kh, kw) = (layer.spec.kh, layer.spec.kw);
    KernelSet::from_fn(layer.spec.out_c, kh, kw, layer.spec.in_c, |k, r, s, c| {
        i32::from(layer.get(k, (c * kh + r) * kw + s))
    })
}

/// A deterministic synthetic INT-precision input cube (stands in for
/// an image tile; checkpointed activations are unavailable offline).
#[must_use]
pub fn input_cube(w: usize, h: usize, c: usize, precision: IntPrecision, seed: u64) -> DataCube {
    let hi = precision.max_value();
    let lo = precision.min_value();
    let span = i64::from(hi) - i64::from(lo) + 1;
    DataCube::from_fn(w, h, c, |x, y, ch| {
        // SplitMix64 over the coordinates: deterministic, seed-keyed.
        let mut z = seed
            .wrapping_add(x as u64)
            .wrapping_add((y as u64) << 20)
            .wrapping_add((ch as u64) << 40)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (i64::from(lo) + (z % span as u64) as i64) as i32
    })
}

/// Extracts the longest chainable dense-layer prefix of `model` as
/// runnable [`NetworkLayer`]s: layers are taken in architecture order,
/// skipping grouped/depthwise layers and any layer whose input
/// channels don't match the running channel count, until `max_layers`
/// are collected or a channel count would exceed `max_channels`.
///
/// Every layer gets `same`-padded unit stride (odd kernels) or valid
/// convolution (even kernels) so spatial dims survive the chain, plus
/// ReLU requantization back to the model's precision — the standard
/// CNN block the paper's integration argument targets.
#[must_use]
pub fn network_prefix(
    model: &QuantizedModel,
    max_layers: usize,
    max_channels: usize,
) -> Vec<NetworkLayer> {
    let mut layers = Vec::new();
    let mut channels: Option<usize> = None;
    for layer in &model.layers {
        if layers.len() == max_layers {
            break;
        }
        let spec = &layer.spec;
        if spec.groups != 1 || spec.out_c > max_channels || spec.in_c > max_channels {
            continue;
        }
        if let Some(c) = channels {
            if spec.in_c != c {
                continue;
            }
        }
        let params = if spec.kh == spec.kw && spec.kh % 2 == 1 {
            ConvParams::unit_stride_same(spec.kh)
        } else {
            ConvParams::valid()
        };
        // Right-shift sized to the *typical* accumulation magnitude,
        // not the worst case: random-sign products grow like
        // qmax²·√depth, so shedding one full-scale exponent plus half
        // the depth's bits recentres on the output precision. Outliers
        // saturate in the SDP, which every backend shares, so
        // cross-backend equivalence is unaffected.
        let depth = (spec.in_c * spec.kh * spec.kw) as u32;
        let shift = (model.precision.bits() - 1) + (32 - depth.leading_zeros()) / 2;
        layers.push(NetworkLayer::conv_relu(
            spec.name.clone(),
            kernel_set(layer),
            params,
            shift,
            model.precision,
        ));
        channels = Some(spec.out_c);
    }
    layers
}

/// The input channel count the first layer of `layers` expects, if
/// any.
#[must_use]
pub fn input_channels(layers: &[NetworkLayer]) -> Option<usize> {
    layers.first().map(|l| l.kernels.c())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::Model;

    #[test]
    fn kernel_set_round_trips_lowered_weights() {
        let m = QuantizedModel::generate_limited(Model::ResNet18, IntPrecision::Int8, 3, 100_000);
        let layer = &m.layers[0];
        let cube = kernel_set(layer);
        assert_eq!(cube.k(), layer.spec.out_c);
        assert_eq!(cube.c(), layer.spec.in_c);
        let (kh, kw) = (layer.spec.kh, layer.spec.kw);
        for k in 0..cube.k() {
            for r in 0..kh {
                for s in 0..kw {
                    for c in 0..cube.c() {
                        assert_eq!(
                            cube.get(k, r, s, c),
                            i32::from(layer.get(k, (c * kh + r) * kw + s))
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn network_prefix_chains_channels() {
        let m = QuantizedModel::generate_limited(Model::ResNet18, IntPrecision::Int8, 1, 2_000_000);
        let layers = network_prefix(&m, 4, 128);
        assert!(!layers.is_empty(), "resnet18 must yield a dense prefix");
        let mut c = input_channels(&layers).unwrap();
        for layer in &layers {
            assert_eq!(layer.kernels.c(), c, "layer {} chains", layer.name);
            c = layer.kernels.k();
        }
    }

    #[test]
    fn input_cube_is_deterministic_and_in_range() {
        let a = input_cube(6, 6, 3, IntPrecision::Int8, 42);
        let b = input_cube(6, 6, 3, IntPrecision::Int8, 42);
        let c = input_cube(6, 6, 3, IntPrecision::Int8, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|&v| (-128..=127).contains(&v)));
        let q = input_cube(4, 4, 2, IntPrecision::Int4, 7);
        assert!(q.as_slice().iter().all(|&v| (-8..=7).contains(&v)));
    }

    #[test]
    fn low_precision_prefixes_survive_requantization() {
        // The shift is precision-derived: an Int4 model's layers must
        // not requantize every activation to zero.
        use tempus_nvdla::config::NvdlaConfig;
        use tempus_nvdla::network::run_network;
        use tempus_nvdla::pipeline::NvdlaConvCore;

        let m = QuantizedModel::generate_limited(Model::ResNet18, IntPrecision::Int4, 5, 100_000);
        let layers = network_prefix(&m, 1, 64);
        assert!(!layers.is_empty());
        let channels = input_channels(&layers).unwrap();
        let input = input_cube(8, 8, channels, IntPrecision::Int4, 5);
        let mut core =
            NvdlaConvCore::new(NvdlaConfig::nv_small().with_precision(IntPrecision::Int4));
        let run = run_network(&mut core, &input, &layers).unwrap();
        assert!(
            run.output.as_slice().iter().any(|&v| v != 0),
            "Int4 prefix must produce nonzero activations"
        );
    }

    #[test]
    fn grouped_layers_are_skipped() {
        // MobileNetV2 is depthwise-heavy; the prefix must still chain.
        let m =
            QuantizedModel::generate_limited(Model::MobileNetV2, IntPrecision::Int8, 2, 2_000_000);
        let layers = network_prefix(&m, 3, 256);
        for layer in &layers {
            assert!(layer.kernels.k() <= 256);
        }
        let mut c = match input_channels(&layers) {
            Some(c) => c,
            None => return,
        };
        for layer in &layers {
            assert_eq!(layer.kernels.c(), c);
            c = layer.kernels.k();
        }
    }
}
