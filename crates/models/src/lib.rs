//! CNN architecture zoo with calibrated synthetic quantized weights.
//!
//! The paper profiles pretrained INT8 CNNs (Table I sparsity; Fig. 7/8
//! MobileNetV2 and ResNeXt101 tile statistics). Pretrained checkpoints
//! are unavailable offline, so this crate substitutes **synthetic
//! weights** with the paper's own published statistics as calibration
//! targets (see DESIGN.md's substitution ledger):
//!
//! * [`zoo`] encodes architecture-faithful convolution layer shape
//!   lists for the eight CNNs in Table I;
//! * [`weightgen`] samples per-layer weights from a seeded generalized
//!   Gaussian and quantizes them with symmetric per-layer INT8/INT4
//!   scaling — per-layer symmetric quantization is what produces the
//!   Fig. 7 histogram shape (each layer's largest tile reaches the
//!   full-scale value, smaller tiles follow extreme-value statistics);
//! * [`calib`] holds the per-model shape parameter and the Table I
//!   sparsity targets the generator pins exactly;
//! * [`stats`] computes sparsity and distribution statistics;
//! * [`netbuild`] lowers the zoo's quantized layers into runnable
//!   NVDLA network-layer chains for the batched runtime
//!   (`tempus-runtime`);
//! * [`traffic`] generates deterministic seeded request traces
//!   (Poisson-ish bursty arrivals, mixed job classes, template
//!   repeats) for the streaming service (`tempus-serve`);
//! * [`transformer`] supplies transformer-block GEMM templates
//!   (attention projection, MLP up/down — inner dimensions in the
//!   thousands at the standard presets) for LLM-scale streaming
//!   workloads.
//!
//! # Example
//!
//! ```
//! use tempus_models::zoo::Model;
//! use tempus_models::QuantizedModel;
//! use tempus_arith::IntPrecision;
//!
//! let model = QuantizedModel::generate(Model::MobileNetV2, IntPrecision::Int8, 42);
//! // Table I: 2.25% zero weights for INT8 MobileNetV2.
//! let sparsity = model.sparsity_pct();
//! assert!((sparsity - 2.25).abs() < 0.3, "sparsity {sparsity}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calib;
mod layer;
mod model;
pub mod netbuild;
pub mod stats;
pub mod traffic;
pub mod transformer;
pub mod weightgen;
pub mod zoo;

pub use layer::{ConvLayerSpec, LayerKind};
pub use model::{QuantizedLayer, QuantizedModel};
