//! Per-model calibration constants.
//!
//! Two knobs per model:
//!
//! * `sparsity_pct` — pinned exactly to the paper's Table I word
//!   sparsity (the published statistic *is* the target);
//! * `beta` — the generalized-Gaussian shape parameter, tuned so that
//!   16×16 tile-max profiling of the two models the paper analyses
//!   lands on the §V-C average latencies (≈33 cycles MobileNetV2,
//!   ≈31 cycles ResNeXt101). Models without published latency numbers
//!   use the MobileNetV2-fitted shape, which is also consistent with
//!   published weight-distribution studies (β between Laplacian and
//!   Gaussian).

use crate::zoo::Model;

/// Calibration constants for one model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelCalib {
    /// Generalized-Gaussian shape parameter β.
    pub beta: f64,
    /// Zero-weight percentage target (Table I).
    pub sparsity_pct: f64,
}

/// Table I sparsity targets and fitted shape parameters.
#[must_use]
pub fn for_model(model: Model) -> ModelCalib {
    let (beta, sparsity_pct) = match model {
        Model::MobileNetV2 => (1.03, 2.25),
        Model::MobileNetV3 => (1.22, 9.52),
        Model::GoogleNet => (1.22, 1.91),
        Model::InceptionV3 => (1.22, 1.99),
        Model::ShuffleNetV2 => (1.22, 1.43),
        Model::ResNet18 => (1.22, 2.043),
        Model::ResNet50 => (1.22, 2.45),
        Model::ResNeXt101 => (1.25, 2.64),
    };
    ModelCalib { beta, sparsity_pct }
}

/// §V-C latency targets (average 16×16 tile window in cycles) for the
/// two profiled models.
#[must_use]
pub fn latency_target_cycles(model: Model) -> Option<f64> {
    match model {
        Model::MobileNetV2 => Some(33.0),
        Model::ResNeXt101 => Some(31.0),
        _ => None,
    }
}

/// §V-C silent-PE targets (average zero weights per 16×16 tile).
#[must_use]
pub fn silent_pe_target(model: Model) -> Option<f64> {
    match model {
        Model::MobileNetV2 => Some(6.0),
        Model::ResNeXt101 => Some(2.0),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparsity_targets_match_table_i() {
        assert_eq!(for_model(Model::MobileNetV2).sparsity_pct, 2.25);
        assert_eq!(for_model(Model::MobileNetV3).sparsity_pct, 9.52);
        assert_eq!(for_model(Model::ResNeXt101).sparsity_pct, 2.64);
    }

    #[test]
    fn betas_are_between_laplace_and_gaussian() {
        for model in Model::ALL {
            let beta = for_model(model).beta;
            assert!((1.0..=2.0).contains(&beta), "{model}: beta {beta}");
        }
    }

    #[test]
    fn latency_targets_only_for_profiled_models() {
        assert!(latency_target_cycles(Model::MobileNetV2).is_some());
        assert!(latency_target_cycles(Model::ResNet18).is_none());
        assert_eq!(silent_pe_target(Model::ResNeXt101), Some(2.0));
    }
}
