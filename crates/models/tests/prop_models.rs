//! Property-based tests for the synthetic weight generator: the
//! statistical knobs must hold exactly for any target, and generation
//! must be deterministic and precision-safe.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tempus_arith::IntPrecision;
use tempus_models::weightgen::{
    generate_layer, pin_sparsity, quantize_symmetric, GeneralizedGaussian,
};
use tempus_models::zoo::Model;
use tempus_models::QuantizedModel;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn quantization_is_bounded_and_full_scale(
        weights in prop::collection::vec(-10.0f64..10.0, 1..500),
        qmax in prop_oneof![Just(1i32), Just(7), Just(127)],
    ) {
        let q = quantize_symmetric(&weights, qmax);
        prop_assert_eq!(q.len(), weights.len());
        let max_abs = q.iter().map(|v| i32::from(v.unsigned_abs())).max().unwrap();
        prop_assert!(max_abs <= qmax);
        // Unless the input is all-zero, the largest magnitude maps to
        // full scale by construction of symmetric quantization.
        if weights.iter().any(|&w| w != 0.0) {
            prop_assert_eq!(max_abs, qmax);
        }
    }

    #[test]
    fn pin_sparsity_is_exact(
        seed in any::<u64>(),
        len in 100usize..2000,
        target_pct in 0.0f64..0.3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q: Vec<i8> = (0..len).map(|i| ((i * 37) % 255) as i8).collect();
        pin_sparsity(&mut q, target_pct, &mut rng);
        let zeros = q.iter().filter(|&&v| v == 0).count();
        let target = (target_pct * len as f64).round() as usize;
        prop_assert_eq!(zeros, target);
    }

    #[test]
    fn generated_layers_are_deterministic_and_in_range(
        seed in any::<u64>(),
        count in 1usize..5000,
        beta in 0.8f64..2.0,
    ) {
        let a = generate_layer(count, beta, 0.02, 127, seed);
        let b = generate_layer(count, beta, 0.02, 127, seed);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(|&w| (-127..=127).contains(&(w as i32))));
    }

    #[test]
    fn gg_samples_are_finite(alpha in 0.1f64..10.0, beta in 0.5f64..3.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = GeneralizedGaussian::new(alpha, beta);
        for _ in 0..100 {
            let x = dist.sample(&mut rng);
            prop_assert!(x.is_finite());
        }
    }
}

#[test]
fn every_model_generates_subset_within_targets() {
    for model in Model::ALL {
        let q = QuantizedModel::generate_limited(model, IntPrecision::Int8, 11, 250_000);
        let target = tempus_models::calib::for_model(model).sparsity_pct;
        assert!(
            (q.sparsity_pct() - target).abs() < 0.5,
            "{model}: {:.2}% vs {target}%",
            q.sparsity_pct()
        );
        for layer in &q.layers {
            assert!(!layer.weights.is_empty());
            assert!(layer.sparsity() < 0.5, "{model}/{}", layer.spec.name);
        }
    }
}

#[test]
fn int4_generation_respects_range_and_scale() {
    let q = QuantizedModel::generate_limited(Model::GoogleNet, IntPrecision::Int4, 5, 150_000);
    for layer in &q.layers {
        let max = layer
            .weights
            .iter()
            .map(|w| w.unsigned_abs())
            .max()
            .unwrap();
        assert_eq!(max, 7, "{}: INT4 full scale", layer.spec.name);
        assert!(layer
            .weights
            .iter()
            .all(|&w| (-7..=7).contains(&(w as i32))));
    }
}
