//! Bench: ablation studies (2s-unary vs plain unary, cache overheads,
//! weight clipping).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tempus_bench::experiments::ablation;

fn bench(c: &mut Criterion) {
    let (plain, twos) = ablation::unary_encoding_ablation();
    println!("\n2s-unary vs plain unary: {twos:.1} vs {plain:.1} cycles");
    println!("{}", ablation::cache_overhead_ablation().to_markdown());
    println!("{}", ablation::clipping_ablation().to_markdown());

    c.bench_function("ablation/cache_overhead_sweep", |b| {
        b.iter(|| black_box(ablation::cache_overhead_ablation()));
    });
    c.bench_function("ablation/clipping_sweep", |b| {
        b.iter(|| black_box(ablation::clipping_ablation()));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
