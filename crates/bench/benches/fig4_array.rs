//! Bench: Fig. 4 regeneration (16×16 array synthesis comparison).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tempus_bench::experiments::fig4;
use tempus_hwmodel::SynthModel;

fn bench(c: &mut Criterion) {
    let hw = SynthModel::nangate45();
    let rows = fig4::run(&hw);
    println!("\n{}", fig4::to_table(&rows).to_markdown());
    println!("{}", fig4::to_charts(&rows));
    c.bench_function("fig4/array_16x16", |b| {
        b.iter(|| black_box(fig4::run(black_box(&hw))));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
