//! Bench: cycle-accurate convolution-core throughput — simulated
//! cycles and wall-clock for the binary CC vs Tempus Core on a
//! CNN-shaped layer, the latency trade-off of §V-D.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tempus_arith::IntPrecision;
use tempus_core::{TempusConfig, TempusCore};
use tempus_nvdla::config::NvdlaConfig;
use tempus_nvdla::conv::{direct_conv, ConvParams};
use tempus_nvdla::cube::{DataCube, KernelSet};
use tempus_nvdla::pipeline::{ConvCore, NvdlaConvCore};

fn workload() -> (DataCube, KernelSet, ConvParams) {
    let features = DataCube::from_fn(8, 8, 16, |x, y, c| {
        ((x as i32 * 37 + y as i32 * 11 + c as i32 * 3) % 255) - 127
    });
    let kernels = KernelSet::from_fn(16, 3, 3, 16, |k, r, s, c| {
        ((k as i32 * 29 + r as i32 * 13 + s as i32 * 7 + c as i32 * 17) % 255) - 127
    });
    (features, kernels, ConvParams::unit_stride_same(3))
}

fn bench(c: &mut Criterion) {
    let (f, k, p) = workload();
    // Report the simulated-cycle comparison once.
    let mut binary = NvdlaConvCore::new(NvdlaConfig::paper_16x16());
    let mut tempus = TempusCore::new(TempusConfig::paper_16x16());
    let b = binary.convolve(&f, &k, &p).expect("valid");
    let t = tempus.convolve(&f, &k, &p).expect("valid");
    assert_eq!(b.output, t.output, "cores must agree bit-exactly");
    println!(
        "\nsimulated cycles: binary {} vs tempus {} ({:.1}x window {:.1} cy avg)",
        b.stats.cycles,
        t.stats.cycles,
        t.stats.cycles as f64 / b.stats.cycles as f64,
        tempus.last_tempus_stats().avg_window_cycles,
    );

    let mut group = c.benchmark_group("conv_cores");
    group.bench_function(BenchmarkId::new("golden", "direct"), |bench| {
        bench.iter(|| black_box(direct_conv(&f, &k, &p).unwrap()));
    });
    group.bench_function(BenchmarkId::new("cycle_accurate", "binary_cc"), |bench| {
        bench.iter(|| {
            let mut core = NvdlaConvCore::new(NvdlaConfig::paper_16x16());
            black_box(core.convolve(&f, &k, &p).unwrap())
        });
    });
    group.bench_function(BenchmarkId::new("cycle_accurate", "tempus_core"), |bench| {
        bench.iter(|| {
            let mut core = TempusCore::new(TempusConfig::paper_16x16());
            black_box(core.convolve(&f, &k, &p).unwrap())
        });
    });
    group.bench_function(BenchmarkId::new("analytic", "latency_model"), |bench| {
        bench.iter(|| {
            black_box(
                tempus_core::latency::predict(&f, &k, &p, &TempusConfig::paper_16x16()).unwrap(),
            )
        });
    });
    group.finish();

    // INT4 variant: the precision where the paper positions the design.
    let f4 = DataCube::from_fn(8, 8, 16, |x, y, c| ((x + y + c) % 15) as i32 - 7);
    let k4 = KernelSet::from_fn(16, 3, 3, 16, |a, b, s, d| ((a + b + s + d) % 15) as i32 - 7);
    c.bench_function("conv_cores/tempus_int4", |bench| {
        bench.iter(|| {
            let mut core =
                TempusCore::new(TempusConfig::paper_16x16().with_precision(IntPrecision::Int4));
            black_box(core.convolve(&f4, &k4, &p).unwrap())
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
