//! Bench: §V-C energy evaluation regeneration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tempus_bench::experiments::{energy, fig7};
use tempus_bench::SEED;
use tempus_hwmodel::SynthModel;

fn bench(c: &mut Criterion) {
    let hw = SynthModel::nangate45();
    let profiles = fig7::run(SEED, 2_000_000);
    println!(
        "\n{}",
        energy::to_table(&energy::run(&hw, &profiles)).to_markdown()
    );
    c.bench_function("energy/evaluation", |b| {
        b.iter(|| black_box(energy::run(black_box(&hw), black_box(&profiles))));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
