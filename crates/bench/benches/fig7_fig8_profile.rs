//! Bench: Fig. 7 / Fig. 8 regeneration (tile profiling). Generation is
//! bounded per model so the bench measures the profiling pipeline, not
//! 90M-weight synthesis; the report binary runs the full models.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tempus_arith::IntPrecision;
use tempus_bench::experiments::{fig7, fig8};
use tempus_bench::SEED;
use tempus_models::zoo::Model;
use tempus_models::QuantizedModel;
use tempus_profile::{magnitude, sparsity};

const BOUND: usize = 2_000_000;

fn bench(c: &mut Criterion) {
    let f7 = fig7::run(SEED, BOUND);
    println!("\n{}", fig7::summary_table(&f7).to_markdown());
    let f8 = fig8::run(SEED, BOUND);
    println!("{}", fig8::summary_table(&f8).to_markdown());

    let model = QuantizedModel::generate(Model::MobileNetV2, IntPrecision::Int8, SEED);
    c.bench_function("fig7/magnitude_profile_mobilenetv2", |b| {
        b.iter(|| black_box(magnitude::profile_model(black_box(&model), 16, 16)));
    });
    c.bench_function("fig8/sparsity_profile_mobilenetv2", |b| {
        b.iter(|| black_box(sparsity::profile_model(black_box(&model), 16, 16, false)));
    });
    c.bench_function("fig7/weight_generation_mobilenetv2", |b| {
        b.iter(|| {
            black_box(QuantizedModel::generate_limited(
                Model::MobileNetV2,
                IntPrecision::Int8,
                SEED,
                500_000,
            ))
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
