//! Bench: Table III regeneration (place-and-route model) plus Fig. 6
//! layout generation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tempus_bench::experiments::{fig6, table3};
use tempus_hwmodel::PnrModel;

fn bench(c: &mut Criterion) {
    let pnr = PnrModel::default();
    println!("\n{}", table3::to_table(&table3::run(&pnr)).to_markdown());
    c.bench_function("table3/pnr", |b| {
        b.iter(|| black_box(table3::run(black_box(&pnr))));
    });
    c.bench_function("fig6/layouts", |b| {
        b.iter(|| black_box(fig6::run(black_box(&pnr))));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
