//! Bench: Fig. 5 regeneration (CMAC vs PCU unit sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tempus_bench::experiments::fig5;
use tempus_hwmodel::SynthModel;

fn bench(c: &mut Criterion) {
    let hw = SynthModel::nangate45();
    println!("\n{}", fig5::to_table(&fig5::run(&hw)).to_markdown());
    c.bench_function("fig5/unit_sweep", |b| {
        b.iter(|| black_box(fig5::run(black_box(&hw))));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
