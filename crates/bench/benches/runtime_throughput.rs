//! Bench: batched inference-engine throughput — jobs/sec per backend
//! and worker-count scaling, with the machine-readable
//! `BENCH_runtime_throughput.json` summary written to `results/`.

use std::path::PathBuf;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tempus_bench::experiments::runtime_throughput;
use tempus_bench::{write_result, SEED};
use tempus_runtime::{BackendKind, EngineConfig, InferenceEngine};

fn bench(c: &mut Criterion) {
    // One full comparison run: all three backends on the same 100-job
    // mixed batch, plus the functional worker-scaling curve. Printed
    // and persisted as JSON for the benchmark trajectory.
    let report = runtime_throughput::run(SEED, 100, &[1, 2, 4, 8]);
    println!("\n{}", report.to_markdown());
    let json = report.to_json();
    // Anchor on the workspace root: cargo runs benches with the
    // package dir as CWD, and the tracked artifact lives in the
    // top-level results/.
    let results = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    write_result(&results, "BENCH_runtime_throughput.json", &json)
        .expect("write BENCH_runtime_throughput.json");
    assert!(
        report.functional_speedup >= 10.0,
        "acceptance: functional must be >= 10x faster, got {:.1}x",
        report.functional_speedup
    );

    // Wall-clock microbenchmarks of batch execution per backend.
    let batch = runtime_throughput::mixed_batch(SEED, 24);
    let mut group = c.benchmark_group("runtime_throughput");
    for kind in [BackendKind::FastFunctional, BackendKind::NvdlaCycleAccurate] {
        let engine = InferenceEngine::new(EngineConfig::new(kind).with_workers(4)).unwrap();
        group.bench_function(BenchmarkId::new("batch24_w4", kind.name()), |b| {
            b.iter(|| black_box(engine.run_batch(&batch).unwrap()))
        });
    }
    // Functional scaling: 1 vs 4 workers.
    for workers in [1usize, 4] {
        let engine = InferenceEngine::new(
            EngineConfig::new(BackendKind::FastFunctional).with_workers(workers),
        )
        .unwrap();
        group.bench_function(BenchmarkId::new("functional_scaling", workers), |b| {
            b.iter(|| black_box(engine.run_batch(&batch).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
