//! Bench: outer-product tubGEMM vs inner-product Tempus Core on the
//! same GEMM — the dataflow comparison behind the paper's
//! contribution 1 ("Unlike previous temporal GEMM designs that follow
//! an outer-product GEMM dataflow, Tempus Core serves as a convolution
//! engine supporting inner-product convolution dataflow").

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tempus_arith::IntPrecision;
use tempus_core::gemm::{Matrix, TubGemm};
use tempus_core::{TempusConfig, TempusCore};
use tempus_nvdla::config::NvdlaConfig;
use tempus_nvdla::conv::ConvParams;
use tempus_nvdla::cube::{DataCube, KernelSet};
use tempus_nvdla::pipeline::ConvCore;

const M: usize = 32;
const N: usize = 48;
const P: usize = 24;

fn operands() -> (Matrix, Matrix) {
    let a = Matrix::from_fn(M, N, |i, j| ((i as i32 * 31 + j as i32 * 17) % 255) - 127);
    let b = Matrix::from_fn(N, P, |i, j| ((i as i32 * 13 + j as i32 * 41) % 255) - 127);
    (a, b)
}

/// Lowers the GEMM onto the convolution core: M output positions ×
/// P kernels × N channels via 1×1 kernels.
fn as_conv(a: &Matrix, b: &Matrix) -> (DataCube, KernelSet) {
    let features = DataCube::from_fn(M, 1, N, |x, _, c| a.get(x, c));
    let kernels = KernelSet::from_fn(P, 1, 1, N, |k, _, _, c| b.get(c, k));
    (features, kernels)
}

fn bench(c: &mut Criterion) {
    let (a, b) = operands();
    let engine = TubGemm::new(16, 16, IntPrecision::Int8);
    let gemm_run = engine.multiply(&a, &b).expect("valid");

    let (features, kernels) = as_conv(&a, &b);
    let mut core = TempusCore::new(TempusConfig::paper_16x16());
    let conv_run = core
        .convolve(&features, &kernels, &ConvParams::valid())
        .expect("valid");

    // Cross-check: both engines compute the same product.
    let golden = a.multiply(&b).expect("valid");
    for i in 0..M {
        for j in 0..P {
            assert_eq!(gemm_run.output.get(i, j), golden.get(i, j));
            assert_eq!(conv_run.output.get(i, 0, j), golden.get(i, j));
        }
    }
    println!(
        "\nGEMM {M}x{N}x{P} (INT8): outer-product tubGEMM {} cycles vs \
         inner-product Tempus Core {} cycles",
        gemm_run.stats.cycles, conv_run.stats.cycles
    );

    c.bench_function("gemm/outer_product_tubgemm", |bench| {
        bench.iter(|| black_box(engine.multiply(&a, &b).unwrap()));
    });
    c.bench_function("gemm/inner_product_tempus", |bench| {
        bench.iter(|| {
            let mut core = TempusCore::new(TempusConfig::paper_16x16());
            black_box(
                core.convolve(&features, &kernels, &ConvParams::valid())
                    .unwrap(),
            )
        });
    });
    c.bench_function("gemm/golden_matmul", |bench| {
        bench.iter(|| black_box(a.multiply(&b).unwrap()));
    });

    // The binary CC on the same lowered GEMM, for the full picture.
    c.bench_function("gemm/inner_product_binary_cc", |bench| {
        bench.iter(|| {
            let mut core = tempus_nvdla::pipeline::NvdlaConvCore::new(NvdlaConfig::paper_16x16());
            black_box(
                core.convolve(&features, &kernels, &ConvParams::valid())
                    .unwrap(),
            )
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
