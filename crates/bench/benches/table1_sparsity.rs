//! Bench: Table I regeneration (bounded per model; the report binary
//! generates the full 180M-weight zoo).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tempus_bench::experiments::table1;
use tempus_bench::SEED;

const BOUND: usize = 300_000;

fn bench(c: &mut Criterion) {
    let rows = table1::run(SEED, BOUND);
    println!("\n{}", table1::to_table(&rows).to_markdown());
    c.bench_function("table1/sparsity_zoo_subset", |b| {
        b.iter(|| black_box(table1::run(black_box(SEED), BOUND)));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
