//! Bench: Table II regeneration (single PE cell synthesis sweep).
//! Prints the reproduced table once, then measures the sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tempus_bench::experiments::table2;
use tempus_hwmodel::SynthModel;

fn bench(c: &mut Criterion) {
    let hw = SynthModel::nangate45();
    let rows = table2::run(&hw);
    println!("\n{}", table2::area_table(&rows).to_markdown());
    println!("{}", table2::power_table(&rows).to_markdown());
    c.bench_function("table2/pe_cell_sweep", |b| {
        b.iter(|| black_box(table2::run(black_box(&hw))));
    });
    c.bench_function("table2/calibration_fit", |b| {
        b.iter(|| black_box(SynthModel::nangate45()));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
