//! Bench: Fig. 9 regeneration (iso-area analysis + projection).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tempus_bench::experiments::fig9;
use tempus_hwmodel::SynthModel;

fn bench(c: &mut Criterion) {
    let hw = SynthModel::nangate45();
    println!("\n{}", fig9::to_table(&fig9::run(&hw)).to_markdown());
    c.bench_function("fig9/isoarea_analysis", |b| {
        b.iter(|| black_box(fig9::run(black_box(&hw))));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
