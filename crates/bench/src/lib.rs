//! Experiment harness: regenerates every table and figure of the
//! Tempus Core paper from the models in this workspace.
//!
//! Each submodule of [`experiments`] owns one experiment ID from
//! DESIGN.md's index and returns printable tables (and SVGs for
//! Fig. 6). The `report` binary drives them all and writes
//! `results/`; the Criterion benches in `benches/` measure the same
//! computations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use std::fs;
use std::io;
use std::path::Path;

/// Writes `content` under the results directory, creating it if
/// needed.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_result(dir: &Path, name: &str, content: &str) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(name), content)
}

/// Standard seed used by every experiment so results are reproducible
/// run to run.
pub const SEED: u64 = 42;
