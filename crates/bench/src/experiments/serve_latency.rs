//! Serving-layer latency/throughput: replay a seeded bursty traffic
//! trace through `tempus-serve` cold (empty result cache) and warm
//! (same trace, populated cache), reporting per-class latency
//! percentiles, cache counters and the warm-over-cold throughput
//! multiple — with bit-identical outputs as the acceptance gate
//! (`results/BENCH_serve_latency.json`).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use tempus_models::traffic::{generate, TraceConfig, TraceRequest};
use tempus_nvdla::cube::fnv1a;
use tempus_serve::{
    percentile, JobClass, Request, ResponseOutcome, ServeConfig, SloPolicy, StreamingService,
};

/// Per-class latency record for one pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassRow {
    /// Class name (`fidelity/kind`).
    pub class: String,
    /// Requests of this class completed in the pass.
    pub completed: u64,
    /// Of those, answered from the result cache.
    pub cache_hits: u64,
    /// Median latency, ns.
    pub p50_ns: u64,
    /// 95th percentile latency, ns.
    pub p95_ns: u64,
    /// 99th percentile latency, ns.
    pub p99_ns: u64,
    /// The class's SLO target, ns.
    pub slo_target_ns: u64,
    /// Fraction of this pass's requests inside the SLO.
    pub slo_compliance: f64,
    /// Mean PE arrays occupied per completed request (1 on the
    /// single-array socket this bench replays; the field keeps the
    /// JSON schema aligned with `ServeStats`).
    pub shards: f64,
}

/// One replay pass (cold or warm).
#[derive(Debug, Clone, PartialEq)]
pub struct PassReport {
    /// `cold` or `warm`.
    pub label: &'static str,
    /// Requests completed.
    pub requests: u64,
    /// Pass wall-clock, seconds.
    pub wall_s: f64,
    /// Requests per second.
    pub req_per_sec: f64,
    /// Cache hits during the pass.
    pub cache_hits: u64,
    /// Combined digest over `(job id, output digest)` pairs in id
    /// order — equality across passes proves bit-identical replay.
    pub digest: u64,
    /// Per-class latency rows (non-empty classes only).
    pub classes: Vec<ClassRow>,
}

/// The full experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeLatencyReport {
    /// Trace seed.
    pub seed: u64,
    /// Requests per pass.
    pub requests: usize,
    /// Distinct templates in the trace.
    pub templates: usize,
    /// Cold pass (cache starts empty).
    pub cold: PassReport,
    /// Warm pass (same trace, cache populated by the cold pass).
    pub warm: PassReport,
    /// Warm-over-cold throughput multiple.
    pub warm_speedup: f64,
}

/// Replays `trace` closed-loop (submit as fast as backpressure
/// allows) and reports the pass from the responses themselves.
fn replay(service: &StreamingService, trace: &[TraceRequest], label: &'static str) -> PassReport {
    let start = Instant::now();
    let mut digests: BTreeMap<u64, u64> = BTreeMap::new();
    let mut latencies: [Vec<u64>; 6] = Default::default();
    let mut cached: [u64; 6] = [0; 6];
    let mut shards_sum: [u64; 6] = [0; 6];
    let mut hits = 0u64;
    let mut outstanding = 0usize;
    let mut consume =
        |response: tempus_serve::Response, digests: &mut BTreeMap<u64, u64>| match response.outcome
        {
            ResponseOutcome::Done(result) => {
                digests.insert(response.job_id, result.output.digest());
                let i = response.class.index();
                latencies[i].push(response.total_ns);
                shards_sum[i] += result.shards.max(1) as u64;
                if result.cache == tempus_serve::CacheOutcome::Hit {
                    cached[i] += 1;
                    hits += 1;
                }
            }
            ResponseOutcome::Rejected(reason) => panic!("request rejected: {reason:?}"),
            ResponseOutcome::Failed(error) => panic!("request failed: {error}"),
        };
    for t in trace {
        service
            .submit(Request::from_trace(t))
            .expect("service accepts (blocking submit)");
        outstanding += 1;
        while let Some(response) = service.recv_response(Duration::ZERO) {
            outstanding -= 1;
            consume(response, &mut digests);
        }
    }
    while outstanding > 0 {
        let response = service
            .recv_response(Duration::from_secs(120))
            .expect("responses drain");
        outstanding -= 1;
        consume(response, &mut digests);
    }
    let wall_s = start.elapsed().as_secs_f64();
    let slo = SloPolicy::edge_defaults();
    let classes = JobClass::ALL
        .into_iter()
        .filter_map(|class| {
            let mut sorted = latencies[class.index()].clone();
            if sorted.is_empty() {
                return None;
            }
            sorted.sort_unstable();
            let target = slo.target_ns(class);
            let violations = sorted.iter().filter(|&&ns| ns > target).count();
            Some(ClassRow {
                class: class.name(),
                completed: sorted.len() as u64,
                cache_hits: cached[class.index()],
                p50_ns: percentile(&sorted, 50.0),
                p95_ns: percentile(&sorted, 95.0),
                p99_ns: percentile(&sorted, 99.0),
                slo_target_ns: target,
                slo_compliance: 1.0 - violations as f64 / sorted.len() as f64,
                shards: shards_sum[class.index()] as f64 / sorted.len() as f64,
            })
        })
        .collect();
    PassReport {
        label,
        requests: digests.len() as u64,
        wall_s,
        req_per_sec: digests.len() as f64 / wall_s,
        cache_hits: hits,
        digest: fnv1a(digests.iter().flat_map(|(&id, &d)| [id, d])),
        classes,
    }
}

/// Runs the experiment: one service, the same trace replayed cold
/// then warm.
///
/// # Panics
///
/// Panics when a request fails or the two passes' output digests
/// disagree — both contract violations.
#[must_use]
pub fn run(seed: u64, requests: usize) -> ServeLatencyReport {
    let trace_config = TraceConfig::new(seed)
        .with_requests(requests)
        .with_repeat_fraction(0.5)
        .with_accurate_fraction(0.03);
    let trace = generate(&trace_config);
    let service = StreamingService::start(
        ServeConfig::new()
            .with_workers(4)
            .with_queue_capacity(64)
            .with_cache_capacity(8192),
    )
    .expect("service starts");
    let cold = replay(&service, &trace, "cold");
    let warm = replay(&service, &trace, "warm");
    let (_stats, _leftover) = service.shutdown();
    assert_eq!(
        cold.digest, warm.digest,
        "warm replay must be bit-identical to the cold run"
    );
    ServeLatencyReport {
        seed,
        requests,
        templates: trace.iter().map(|t| t.template).max().map_or(0, |m| m + 1),
        warm_speedup: warm.req_per_sec / cold.req_per_sec,
        cold,
        warm,
    }
}

impl ServeLatencyReport {
    /// Machine-readable JSON summary (hand-rolled; the workspace has
    /// no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let pass = |p: &PassReport| {
            let mut s = String::from("{\n");
            s.push_str(&format!("      \"label\": \"{}\",\n", p.label));
            s.push_str(&format!("      \"requests\": {},\n", p.requests));
            s.push_str(&format!("      \"wall_s\": {:.4},\n", p.wall_s));
            s.push_str(&format!("      \"req_per_sec\": {:.1},\n", p.req_per_sec));
            s.push_str(&format!("      \"cache_hits\": {},\n", p.cache_hits));
            s.push_str(&format!("      \"digest\": \"{:016x}\",\n", p.digest));
            s.push_str("      \"classes\": [\n");
            for (i, c) in p.classes.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"class\": \"{}\", \"completed\": {}, \"cache_hits\": {}, \
                     \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \
                     \"slo_target_ns\": {}, \"slo_compliance\": {:.4}, \"shards\": {:.2}}}{}\n",
                    c.class,
                    c.completed,
                    c.cache_hits,
                    c.p50_ns,
                    c.p95_ns,
                    c.p99_ns,
                    c.slo_target_ns,
                    c.slo_compliance,
                    c.shards,
                    if i + 1 == p.classes.len() { "" } else { "," }
                ));
            }
            s.push_str("      ]\n    }");
            s
        };
        format!(
            "{{\n  \"experiment\": \"serve_latency\",\n  \"seed\": {},\n  \
             \"requests\": {},\n  \"templates\": {},\n  \
             \"warm_speedup_vs_cold\": {:.2},\n  \"digests_equal\": {},\n  \
             \"passes\": [\n    {},\n    {}\n  ]\n}}\n",
            self.seed,
            self.requests,
            self.templates,
            self.warm_speedup,
            self.cold.digest == self.warm.digest,
            pass(&self.cold),
            pass(&self.warm),
        )
    }

    /// Human-readable markdown summary.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut s = format!(
            "serve_latency: {} requests ({} templates), warm speedup {:.1}x, \
             digests equal: {}\n\n",
            self.requests,
            self.templates,
            self.warm_speedup,
            self.cold.digest == self.warm.digest,
        );
        s.push_str("| pass | class | done | cached | p50 ms | p95 ms | p99 ms | slo ms | met |\n");
        s.push_str("|---|---|---|---|---|---|---|---|---|\n");
        for p in [&self.cold, &self.warm] {
            for c in &p.classes {
                s.push_str(&format!(
                    "| {} | {} | {} | {} | {:.3} | {:.3} | {:.3} | {:.1} | {:.1}% |\n",
                    p.label,
                    c.class,
                    c.completed,
                    c.cache_hits,
                    c.p50_ns as f64 * 1e-6,
                    c.p95_ns as f64 * 1e-6,
                    c.p99_ns as f64 * 1e-6,
                    c.slo_target_ns as f64 * 1e-6,
                    c.slo_compliance * 100.0,
                ));
            }
        }
        s.push_str(&format!(
            "\ncold: {:.0} req/s over {:.2} s; warm: {:.0} req/s over {:.3} s\n",
            self.cold.req_per_sec, self.cold.wall_s, self.warm.req_per_sec, self.warm.wall_s
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_replay_is_faster_with_equal_digests() {
        // A warm-cache replay must beat the cold run at equal output
        // digests, with per-class percentiles reported. The bar was
        // 5× when cycle-accurate jobs cost hundreds of ms each; the
        // window-batched simulation core cut cold-pass cost by an
        // order of magnitude, so the cache's relative margin shrank
        // (observed ~4× now). 2× stays robust under CI noise while
        // still proving the cache carries the replay.
        let report = run(42, 120);
        assert_eq!(report.cold.digest, report.warm.digest);
        assert!(
            report.warm_speedup >= 2.0,
            "warm speedup {:.1}x",
            report.warm_speedup
        );
        assert_eq!(report.warm.cache_hits, report.warm.requests);
        assert!(!report.cold.classes.is_empty());
        for c in report.cold.classes.iter().chain(&report.warm.classes) {
            assert!(c.p50_ns <= c.p95_ns && c.p95_ns <= c.p99_ns);
        }
    }

    #[test]
    fn json_summary_is_well_formed_enough() {
        let report = run(7, 40);
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"serve_latency\""));
        assert!(json.contains("\"warm_speedup_vs_cold\""));
        assert!(json.contains("\"digests_equal\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches("\"label\"").count(), 2);
    }
}
