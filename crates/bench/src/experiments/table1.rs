//! Table I: word sparsity of eight INT8-quantized CNNs.

use crossbeam::thread;
use tempus_arith::IntPrecision;
use tempus_hwmodel::paper;
use tempus_models::zoo::Model;
use tempus_models::QuantizedModel;
use tempus_profile::table::Table;

/// One Table I row: measured vs paper.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsityRow {
    /// Model name.
    pub model: String,
    /// Measured zero-weight percentage.
    pub measured_pct: f64,
    /// Paper's Table I value.
    pub paper_pct: f64,
    /// Weights generated.
    pub weights: usize,
}

/// Runs the experiment. `max_weights_per_model` bounds generation for
/// quick runs (`usize::MAX` reproduces the full table).
#[must_use]
pub fn run(seed: u64, max_weights_per_model: usize) -> Vec<SparsityRow> {
    let rows = thread::scope(|scope| {
        let handles: Vec<_> = Model::ALL
            .iter()
            .map(|&model| {
                scope.spawn(move |_| {
                    let quantized = QuantizedModel::generate_limited(
                        model,
                        IntPrecision::Int8,
                        seed,
                        max_weights_per_model,
                    );
                    let paper_pct = paper::TABLE_I_SPARSITY_PCT
                        .iter()
                        .find(|&&(name, _)| name == model.name())
                        .map_or(f64::NAN, |&(_, v)| v);
                    SparsityRow {
                        model: model.name().to_string(),
                        measured_pct: quantized.sparsity_pct(),
                        paper_pct,
                        weights: quantized.total_weights(),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("model generation panicked"))
            .collect::<Vec<_>>()
    })
    .expect("thread scope failed");
    rows
}

/// Renders the rows as a markdown table.
#[must_use]
pub fn to_table(rows: &[SparsityRow]) -> Table {
    let mut t = Table::new(["CNN", "Word (%) measured", "Word (%) paper", "conv weights"]);
    for r in rows {
        t.push_row([
            r.model.clone(),
            format!("{:.2}", r.measured_pct),
            format!("{:.2}", r.paper_pct),
            format!("{:.2}M", r.weights as f64 / 1e6),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_run_matches_targets() {
        // 300k weights per model is plenty to pin sparsity.
        let rows = run(7, 300_000);
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert!(
                (row.measured_pct - row.paper_pct).abs() < 0.4,
                "{}: {:.2} vs {:.2}",
                row.model,
                row.measured_pct,
                row.paper_pct
            );
        }
    }

    #[test]
    fn table_renders_all_rows() {
        let rows = run(7, 50_000);
        let t = to_table(&rows);
        assert_eq!(t.len(), 8);
        assert!(t.to_markdown().contains("MobileNetV2"));
    }
}
