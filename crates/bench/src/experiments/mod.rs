//! One module per experiment in DESIGN.md's index.

pub mod ablation;
pub mod chaos_recovery;
pub mod co_schedule;
pub mod dvfs_pareto;
pub mod energy;
pub mod fig1;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fleet_scaling;
pub mod headline;
pub mod multi_array_scaling;
pub mod runtime_throughput;
pub mod serve_latency;
pub mod sim_speed;
pub mod streaming_gemm;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod timing;
pub mod trace_overhead;
