//! Timing-closure report (beyond the paper): critical-path estimates
//! against the fixed 4 ns clock (§IV) for every swept configuration.

use tempus_arith::IntPrecision;
use tempus_hwmodel::timing::{pe_cell_timing, StageDelays, TimingReport};
use tempus_hwmodel::Family;
use tempus_profile::table::Table;

/// Runs the timing sweep over the paper's precisions and widths.
#[must_use]
pub fn run() -> Vec<TimingReport> {
    let delays = StageDelays::nangate45();
    let mut reports = Vec::new();
    for precision in IntPrecision::PAPER_SWEEP {
        for n in [4usize, 16, 32] {
            for family in Family::BOTH {
                reports.push(pe_cell_timing(family, precision, n, delays));
            }
        }
    }
    reports
}

/// Renders the sweep with slack against the 250 MHz clock.
#[must_use]
pub fn to_table(reports: &[TimingReport]) -> Table {
    let mut t = Table::new([
        "Precision",
        "n",
        "Family",
        "Critical path (ns)",
        "Slack @ 4 ns",
        "Fmax (MHz)",
    ]);
    for r in reports {
        t.push_row([
            r.precision.to_string(),
            r.n.to_string(),
            r.family.to_string(),
            format!("{:.2}", r.critical_path_ns),
            format!("{:+.2}", r.slack_ns),
            format!("{:.0}", r.fmax_mhz),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempus_hwmodel::timing::CLOCK_PERIOD_NS;

    #[test]
    fn sweep_covers_all_configurations_and_meets_timing() {
        let reports = run();
        assert_eq!(reports.len(), 3 * 3 * 2);
        for r in &reports {
            assert!(
                r.slack_ns > 0.0,
                "{} {} n={} misses 4 ns",
                r.family,
                r.precision,
                r.n
            );
            assert!(r.critical_path_ns < CLOCK_PERIOD_NS);
        }
        assert_eq!(to_table(&reports).len(), 18);
    }

    #[test]
    fn tub_path_advantage_grows_with_precision() {
        // Where the multiplier front-end is substantial (INT8) the tub
        // path is strictly shorter; at narrow precisions the tub
        // accumulator CPA can outweigh the trivial multiplier, so the
        // advantage shrinks or flips — timing is not where tub wins at
        // INT2, area/power are.
        let reports = run();
        let gap = |precision: IntPrecision, n: usize| {
            let b = reports
                .iter()
                .find(|r| r.family == Family::Binary && r.precision == precision && r.n == n)
                .unwrap();
            let t = reports
                .iter()
                .find(|r| r.family == Family::Tub && r.precision == precision && r.n == n)
                .unwrap();
            b.critical_path_ns - t.critical_path_ns
        };
        for n in [4usize, 16, 32] {
            assert!(gap(IntPrecision::Int8, n) > 0.0, "INT8 n={n}");
            assert!(
                gap(IntPrecision::Int8, n) > gap(IntPrecision::Int2, n),
                "gap must grow with precision at n={n}"
            );
        }
    }
}
