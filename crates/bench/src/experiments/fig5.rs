//! Fig. 5: post-synthesis area and power across entire CMAC and PCU
//! units for array widths 16×n, n ∈ {4, 16, 32}, at INT8/INT4/INT2.

use tempus_arith::IntPrecision;
use tempus_hwmodel::{paper, Family, SynthModel};
use tempus_profile::table::Table;

/// One Fig. 5 configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitRow {
    /// Precision.
    pub precision: IntPrecision,
    /// Multipliers per cell (array width).
    pub n: usize,
    /// CMAC unit area (mm²).
    pub cmac_area: f64,
    /// PCU unit area (mm²).
    pub pcu_area: f64,
    /// CMAC unit power (mW).
    pub cmac_power: f64,
    /// PCU unit power (mW).
    pub pcu_power: f64,
}

impl UnitRow {
    /// Area reduction of the PCU vs the CMAC, %.
    #[must_use]
    pub fn area_reduction_pct(&self) -> f64 {
        (1.0 - self.pcu_area / self.cmac_area) * 100.0
    }

    /// Power reduction of the PCU vs the CMAC, %.
    #[must_use]
    pub fn power_reduction_pct(&self) -> f64 {
        (1.0 - self.pcu_power / self.cmac_power) * 100.0
    }
}

/// Runs the full Fig. 5 sweep.
#[must_use]
pub fn run(hw: &SynthModel) -> Vec<UnitRow> {
    let mut rows = Vec::new();
    for precision in [IntPrecision::Int8, IntPrecision::Int4, IntPrecision::Int2] {
        for n in paper::FIG5_WIDTHS {
            let cmac = hw.unit(Family::Binary, precision, 16, n);
            let pcu = hw.unit(Family::Tub, precision, 16, n);
            rows.push(UnitRow {
                precision,
                n,
                cmac_area: cmac.area_mm2,
                pcu_area: pcu.area_mm2,
                cmac_power: cmac.power_mw,
                pcu_power: pcu.power_mw,
            });
        }
    }
    rows
}

/// Renders the Fig. 5 table.
#[must_use]
pub fn to_table(rows: &[UnitRow]) -> Table {
    let mut t = Table::new([
        "Precision",
        "16xn",
        "CMAC area (mm2)",
        "PCU area (mm2)",
        "Area red. (%)",
        "CMAC power (mW)",
        "PCU power (mW)",
        "Power red. (%)",
    ]);
    for r in rows {
        t.push_row([
            r.precision.to_string(),
            format!("16x{}", r.n),
            format!("{:.4}", r.cmac_area),
            format!("{:.4}", r.pcu_area),
            format!("{:.1}", r.area_reduction_pct()),
            format!("{:.3}", r.cmac_power),
            format!("{:.3}", r.pcu_power),
            format!("{:.1}", r.power_reduction_pct()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int8_16x16_hits_headline_reductions() {
        // §V-A: "The PCU improves area and power consumption by 59.3%
        // and 15.3%" (red arrows on the INT8 series).
        let hw = SynthModel::nangate45();
        let rows = run(&hw);
        let row = rows
            .iter()
            .find(|r| r.precision == IntPrecision::Int8 && r.n == 16)
            .unwrap();
        assert!(
            (row.area_reduction_pct() - 59.3).abs() < 1.5,
            "{}",
            row.area_reduction_pct()
        );
        assert!(
            (row.power_reduction_pct() - 15.3).abs() < 1.5,
            "{}",
            row.power_reduction_pct()
        );
    }

    #[test]
    fn pcu_wins_area_across_the_sweep() {
        let hw = SynthModel::nangate45();
        for row in run(&hw) {
            assert!(
                row.area_reduction_pct() > 0.0,
                "{} n={}: {}",
                row.precision,
                row.n,
                row.area_reduction_pct()
            );
        }
    }

    #[test]
    fn areas_grow_with_width() {
        let hw = SynthModel::nangate45();
        let rows = run(&hw);
        for precision in [IntPrecision::Int8, IntPrecision::Int4, IntPrecision::Int2] {
            let series: Vec<f64> = rows
                .iter()
                .filter(|r| r.precision == precision)
                .map(|r| r.cmac_area)
                .collect();
            assert!(
                series.windows(2).all(|w| w[1] > w[0]),
                "{precision}: {series:?}"
            );
        }
    }

    #[test]
    fn table_has_nine_rows() {
        let hw = SynthModel::nangate45();
        assert_eq!(to_table(&run(&hw)).len(), 9);
    }
}
