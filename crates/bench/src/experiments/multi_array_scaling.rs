//! Multi-array scaling: modeled-cycle speedup and wall-clock of the
//! sharded multi-array engine against array count, on model-zoo
//! layers — with **digest equality** over outputs across every array
//! count and functional-vs-accurate critical-path equality as the
//! acceptance gates (`results/BENCH_multi_array_scaling.json`).
//!
//! For each layer and `num_arrays ∈ {1, 2, 4, 8}` the experiment
//! runs the cycle-accurate sharded engine
//! ([`TempusCore::convolve_sharded`]) and the closed-form sharded
//! latency model ([`ScheduleCache::predict_sharded`]); outputs must
//! be bit-identical to the single-array run and the modelled critical
//! paths must agree exactly. Kernel-rich layers (≥ 4 kernel groups)
//! must reach ≥ 1.8× modeled-cycle speedup at 2 arrays.

use std::time::Instant;

use tempus_arith::IntPrecision;
use tempus_core::schedule::ScheduleCache;
use tempus_core::shard::ShardStrategy;
use tempus_core::{TempusConfig, TempusCore};
use tempus_models::netbuild::{input_cube, kernel_set};
use tempus_models::zoo::Model;
use tempus_models::QuantizedModel;
use tempus_nvdla::conv::ConvParams;
use tempus_nvdla::cube::{DataCube, KernelSet};

/// One `(layer, array count)` measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingRow {
    /// Workload label (`model/layer kxc`).
    pub case: String,
    /// Arrays requested.
    pub arrays: usize,
    /// Arrays the planner actually used.
    pub used_arrays: usize,
    /// Split axis (`single` / `kernel-groups` / `channel-groups`).
    pub strategy: &'static str,
    /// Whether the case has ≥ 4 kernel groups (the speedup gate
    /// applies to these).
    pub kernel_rich: bool,
    /// Modelled critical-path cycles at this array count.
    pub critical_path_cycles: u64,
    /// Cross-array reduction cycles included in the critical path.
    pub reduction_cycles: u64,
    /// Modeled-cycle speedup over the single-array run.
    pub speedup: f64,
    /// Work balance across the arrays.
    pub balance: f64,
    /// Wall-clock of the cycle-accurate sharded run, seconds.
    pub accurate_wall_s: f64,
    /// Wall-clock of the closed-form sharded prediction, seconds.
    pub functional_wall_s: f64,
    /// Digest over the sharded output cube.
    pub output_digest: u64,
    /// Digest of the single-array output for the same case.
    pub baseline_digest: u64,
    /// `true` when the functional critical path equalled the
    /// cycle-accurate one exactly.
    pub model_exact: bool,
}

impl ScalingRow {
    /// `true` when the sharded output matched the single-array run
    /// bit-for-bit.
    #[must_use]
    pub fn digests_equal(&self) -> bool {
        self.output_digest == self.baseline_digest
    }
}

/// The full experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiArrayReport {
    /// Seed the zoo weights were generated from.
    pub seed: u64,
    /// Array counts swept.
    pub array_counts: Vec<usize>,
    /// Per-(case, arrays) rows.
    pub rows: Vec<ScalingRow>,
}

impl MultiArrayReport {
    /// `true` when every row's output matched the single-array run
    /// AND the closed-form model matched the cycle-accurate critical
    /// path exactly.
    #[must_use]
    pub fn digests_equal(&self) -> bool {
        self.rows.iter().all(|r| r.digests_equal() && r.model_exact)
    }

    /// Smallest speedup at 2 arrays over the kernel-rich cases (the
    /// ≥ 1.8× acceptance gate), or `None` when nothing qualified.
    #[must_use]
    pub fn min_kernel_rich_speedup_at_2(&self) -> Option<f64> {
        self.rows
            .iter()
            .filter(|r| r.arrays == 2 && r.kernel_rich)
            .map(|r| r.speedup)
            .min_by(|a, b| a.total_cmp(b))
    }
}

fn strategy_name(strategy: ShardStrategy) -> &'static str {
    match strategy {
        ShardStrategy::Single => "single",
        ShardStrategy::KernelGroups => "kernel-groups",
        ShardStrategy::ChannelGroups => "channel-groups",
    }
}

/// Zoo-derived conv cases: dense, kernel-rich layers small enough for
/// the cycle-accurate engine, plus one kernel-starved layer that
/// exercises the channel-group fallback.
fn cases(seed: u64, quick: bool) -> Vec<(String, DataCube, KernelSet, bool)> {
    let mut out = Vec::new();
    let specs: &[(Model, usize, usize)] = if quick {
        // (model, min kernels, max channels)
        &[(Model::ResNet18, 32, 64)]
    } else {
        &[
            (Model::ResNet18, 32, 64),
            (Model::GoogleNet, 32, 64),
            (Model::MobileNetV2, 32, 64),
        ]
    };
    let spatial = if quick { 5 } else { 6 };
    for &(model, min_k, max_c) in specs {
        let m = QuantizedModel::generate_limited(model, IntPrecision::Int8, seed, 2_000_000);
        if let Some(layer) = m.layers.iter().find(|l| {
            l.spec.groups == 1 && l.spec.out_c >= min_k && l.spec.in_c >= 8 && l.spec.in_c <= max_c
        }) {
            let kernels = kernel_set(layer);
            let features = input_cube(
                spatial,
                spatial,
                kernels.c(),
                IntPrecision::Int8,
                seed ^ 0xA5A5,
            );
            let kernel_rich = kernels.k().div_ceil(8) >= 4; // nv_small atomic_k
            out.push((
                format!(
                    "{}/{} k{}c{}",
                    model.name(),
                    layer.spec.name,
                    kernels.k(),
                    kernels.c()
                ),
                features,
                kernels,
                kernel_rich,
            ));
        }
    }
    // Kernel-starved synthetic layer: 8 kernels (one group) over 32
    // channels forces the channel-group fallback + reduction stage.
    let kernels = KernelSet::from_fn(8, 3, 3, 32, move |k, r, s, c| {
        ((k as i32 * 13 + r as i32 * 5 + s as i32 * 3 + c as i32 * 11 + seed as i32) % 255) - 127
    });
    let features = input_cube(spatial, spatial, 32, IntPrecision::Int8, seed ^ 0x5A5A);
    out.push((
        "synthetic/chan-fallback k8c32".to_string(),
        features,
        kernels,
        false,
    ));
    out
}

/// Runs the experiment. `quick` shrinks the case list and spatial
/// extent for CI smoke runs — the digest and model-exactness gates
/// are the invariant there, not timing.
#[must_use]
pub fn run(seed: u64, quick: bool) -> MultiArrayReport {
    let array_counts: Vec<usize> = if quick {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8]
    };
    let config = TempusConfig::nv_small();
    let params = ConvParams::unit_stride_same(3);
    let mut rows = Vec::new();

    for (case, features, kernels, kernel_rich) in cases(seed, quick) {
        let mut baseline_cycles = 0u64;
        let mut baseline_digest = 0u64;
        for &arrays in &array_counts {
            let mut core = TempusCore::new(config);
            let accurate_start = Instant::now();
            let run = core
                .convolve_sharded(&features, &kernels, &params, arrays)
                .expect("sharded conv runs");
            let accurate_wall_s = accurate_start.elapsed().as_secs_f64();

            let mut cache = ScheduleCache::new();
            let functional_start = Instant::now();
            let predicted = cache
                .predict_sharded(&features, &kernels, &params, &config, arrays)
                .expect("sharded prediction runs");
            let functional_wall_s = functional_start.elapsed().as_secs_f64();

            let output_digest = run.output.content_hash();
            if arrays == 1 {
                baseline_cycles = run.critical_path_cycles;
                baseline_digest = output_digest;
            }
            rows.push(ScalingRow {
                case: case.clone(),
                arrays,
                used_arrays: run.plan.used_arrays(),
                strategy: strategy_name(run.plan.strategy),
                kernel_rich,
                critical_path_cycles: run.critical_path_cycles,
                reduction_cycles: run.reduction_cycles,
                speedup: baseline_cycles as f64 / run.critical_path_cycles.max(1) as f64,
                balance: run.balance(),
                accurate_wall_s,
                functional_wall_s,
                output_digest,
                baseline_digest,
                model_exact: predicted.critical_path_cycles == run.critical_path_cycles
                    && predicted.per_shard_cycles == run.per_shard_cycles(),
            });
        }
    }
    MultiArrayReport {
        seed,
        array_counts,
        rows,
    }
}

impl MultiArrayReport {
    /// Machine-readable JSON summary (hand-rolled; the workspace has
    /// no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\n  \"experiment\": \"multi_array_scaling\",\n  \"seed\": {},\n  \
             \"array_counts\": {:?},\n  \"digests_equal\": {},\n  \
             \"min_kernel_rich_speedup_at_2\": {:.2},\n  \"rows\": [\n",
            self.seed,
            self.array_counts,
            self.digests_equal(),
            self.min_kernel_rich_speedup_at_2().unwrap_or(0.0),
        );
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"case\": \"{}\", \"arrays\": {}, \"used_arrays\": {}, \
                 \"strategy\": \"{}\", \"kernel_rich\": {}, \"critical_path_cycles\": {}, \
                 \"reduction_cycles\": {}, \"speedup\": {:.3}, \"balance\": {:.4}, \
                 \"accurate_wall_s\": {:.6}, \"functional_wall_s\": {:.6}, \
                 \"output_digest\": \"{:016x}\", \"digests_equal\": {}, \
                 \"model_exact\": {}}}{}\n",
                r.case,
                r.arrays,
                r.used_arrays,
                r.strategy,
                r.kernel_rich,
                r.critical_path_cycles,
                r.reduction_cycles,
                r.speedup,
                r.balance,
                r.accurate_wall_s,
                r.functional_wall_s,
                r.output_digest,
                r.digests_equal(),
                r.model_exact,
                if i + 1 == self.rows.len() { "" } else { "," },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Human-readable markdown summary.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut s = format!(
            "multi_array_scaling: sharded engine vs array count, digests equal: {}, \
             min kernel-rich speedup @2 arrays: {:.2}x\n\n",
            self.digests_equal(),
            self.min_kernel_rich_speedup_at_2().unwrap_or(0.0),
        );
        s.push_str(
            "| case | arrays | used | strategy | critical cycles | reduction | speedup \
             | balance | sim wall s | digests |\n",
        );
        s.push_str("|---|---|---|---|---|---|---|---|---|---|\n");
        for r in &self.rows {
            s.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {:.2}x | {:.2} | {:.4} | {} |\n",
                r.case,
                r.arrays,
                r.used_arrays,
                r.strategy,
                r.critical_path_cycles,
                r.reduction_cycles,
                r.speedup,
                r.balance,
                r.accurate_wall_s,
                if r.digests_equal() && r.model_exact {
                    "equal"
                } else {
                    "DRIFT"
                },
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_outputs_and_model_agree_in_smoke_mode() {
        // The CI gate: outputs bit-identical across array counts and
        // the closed-form model exact on every row; kernel-rich
        // layers reach >= 1.8x modeled-cycle speedup at 2 arrays.
        let report = run(42, true);
        assert!(!report.rows.is_empty());
        for row in &report.rows {
            assert!(
                row.digests_equal(),
                "{} arrays={}: output diverged from single-array run",
                row.case,
                row.arrays
            );
            assert!(
                row.model_exact,
                "{} arrays={}: closed-form model drifted from simulation",
                row.case, row.arrays
            );
        }
        let min = report
            .min_kernel_rich_speedup_at_2()
            .expect("a kernel-rich case exists");
        assert!(min >= 1.8, "kernel-rich speedup at 2 arrays: {min:.2}x");
        // The channel-group fallback must appear and pay a reduction.
        assert!(report
            .rows
            .iter()
            .any(|r| r.strategy == "channel-groups" && r.reduction_cycles > 0));
    }

    #[test]
    fn json_summary_is_well_formed_enough() {
        let report = run(7, true);
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"multi_array_scaling\""));
        assert!(json.contains("\"digests_equal\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
