//! Ablation studies beyond the paper's tables: how Tempus Core's
//! design choices move latency and energy.
//!
//! Three ablations called out in DESIGN.md:
//!
//! 1. **2s-unary vs plain unary** — halved stream length (the tubGEMM
//!    insight the core inherits);
//! 2. **cache-overhead cycles** — the §III handshake cost per atomic
//!    op;
//! 3. **weight-magnitude clipping** — how clipping the quantization
//!    range (a compiler-side knob the paper's future work hints at)
//!    trades accuracy margin for latency.

use tempus_core::{latency, TempusConfig, TempusCore};
use tempus_nvdla::conv::ConvParams;
use tempus_nvdla::cube::{DataCube, KernelSet};
use tempus_nvdla::pipeline::ConvCore;
use tempus_profile::table::Table;

/// A deterministic medium-sized workload for the ablations.
#[must_use]
pub fn workload(max_magnitude: i32) -> (DataCube, KernelSet, ConvParams) {
    let features = DataCube::from_fn(8, 8, 16, |x, y, c| {
        ((x as i32 * 37 + y as i32 * 11 + c as i32 * 3) % 255) - 127
    });
    let kernels = KernelSet::from_fn(16, 3, 3, 16, move |k, r, s, c| {
        let v = ((k as i32 * 29 + r as i32 * 13 + s as i32 * 7 + c as i32 * 17) % 255) - 127;
        v.clamp(-max_magnitude, max_magnitude)
    });
    (features, kernels, ConvParams::unit_stride_same(3))
}

/// Ablation 1: 2s-unary halves the window versus plain unary (each
/// pulse worth 1, per tuGEMM). Returns
/// `(plain_unary_cycles, twos_unary_cycles)` averaged over the
/// workload's stripes, computed from the *real* encodings in
/// `tempus_arith` (both verified exact elsewhere).
#[must_use]
pub fn unary_encoding_ablation() -> (f64, f64) {
    use tempus_arith::plain_unary::PlainUnaryStream;
    use tempus_arith::{IntPrecision, TwosUnaryStream};
    let (_, k, _) = workload(127);
    let p = IntPrecision::Int8;
    // Average per-stripe window under each encoding: the stripe window
    // is the max stream length over the 16x16 tile; sample tiles from
    // the kernel set the same way the CSC does (per (r, s) tap).
    let mut plain_total = 0u64;
    let mut twos_total = 0u64;
    let mut stripes = 0u64;
    for r in 0..k.r() {
        for s in 0..k.s() {
            let mut plain_max = 0u32;
            let mut twos_max = 0u32;
            for kernel in 0..k.k() {
                for c in 0..k.c() {
                    let w = k.get(kernel, r, s, c);
                    plain_max = plain_max.max(PlainUnaryStream::encode(w, p).unwrap().cycles());
                    twos_max = twos_max.max(TwosUnaryStream::encode(w, p).unwrap().cycles());
                }
            }
            plain_total += u64::from(plain_max);
            twos_total += u64::from(twos_max);
            stripes += 1;
        }
    }
    (
        plain_total as f64 / stripes as f64,
        twos_total as f64 / stripes as f64,
    )
}

/// Ablation 2: sweep the cache-in/out overhead and report total cycles.
#[must_use]
pub fn cache_overhead_ablation() -> Table {
    let (f, k, p) = workload(127);
    let mut t = Table::new(["cache in/out", "total cycles", "slowdown vs binary"]);
    for (ci, co) in [(0u32, 0u32), (1, 1), (2, 2), (4, 4)] {
        let config = TempusConfig::paper_16x16().with_cache_overheads(ci, co);
        let b = latency::predict(&f, &k, &p, &config).expect("workload is valid");
        t.push_row([
            format!("{ci}/{co}"),
            b.total_cycles.to_string(),
            format!("{:.1}x", b.slowdown),
        ]);
    }
    t
}

/// Ablation 3: clip weight magnitudes (re-quantizing to a smaller
/// range) and measure simulated cycles + exactness against the
/// unclipped reference.
#[must_use]
pub fn clipping_ablation() -> Table {
    let mut t = Table::new(["max |w|", "sim cycles", "avg window", "output == golden"]);
    for max_mag in [127, 64, 32, 16, 8] {
        let (f, k, p) = workload(max_mag);
        let golden = tempus_nvdla::conv::direct_conv(&f, &k, &p).expect("valid");
        let mut core = TempusCore::new(TempusConfig::paper_16x16());
        let run = core.convolve(&f, &k, &p).expect("valid");
        t.push_row([
            max_mag.to_string(),
            run.stats.cycles.to_string(),
            format!("{:.1}", core.last_tempus_stats().avg_window_cycles),
            (run.output == golden).to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twos_unary_halves_plain_unary() {
        let (plain, twos) = unary_encoding_ablation();
        assert!((plain / twos - 2.0).abs() < 0.05, "{plain} vs {twos}");
    }

    #[test]
    fn overhead_sweep_is_monotone() {
        let t = cache_overhead_ablation();
        assert_eq!(t.len(), 4);
        let csv = t.to_csv();
        let cycles: Vec<u64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert!(cycles.windows(2).all(|w| w[1] > w[0]), "{cycles:?}");
    }

    #[test]
    fn clipping_cuts_cycles_and_stays_exact() {
        let t = clipping_ablation();
        let csv = t.to_csv();
        let rows: Vec<Vec<&str>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').collect())
            .collect();
        let cycles: Vec<u64> = rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(cycles.windows(2).all(|w| w[1] < w[0]), "{cycles:?}");
        assert!(rows.iter().all(|r| r[3] == "true"));
    }
}
