//! Fig. 6: layout plots for the INT4 16×4 CMAC and PCU units.

use tempus_arith::IntPrecision;
use tempus_hwmodel::layout::Layout;
use tempus_hwmodel::{Family, PnrModel};

/// Both layouts of Fig. 6.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// CMAC layout (left panel).
    pub cmac: Layout,
    /// PCU layout (right panel).
    pub pcu: Layout,
}

/// Generates both floorplans.
#[must_use]
pub fn run(pnr: &PnrModel) -> Fig6 {
    Fig6 {
        cmac: Layout::generate(pnr, Family::Binary, IntPrecision::Int4, 16, 4),
        pcu: Layout::generate(pnr, Family::Tub, IntPrecision::Int4, 16, 4),
    }
}

impl Fig6 {
    /// Side-by-side ASCII rendering for the terminal report.
    #[must_use]
    pub fn to_ascii(&self) -> String {
        format!(
            "CMAC (left):\n{}\nPCU (right):\n{}",
            self.cmac.to_ascii(48),
            self.pcu.to_ascii(48)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_generate_and_render() {
        let fig = run(&PnrModel::default());
        let svg_cmac = fig.cmac.to_svg();
        let svg_pcu = fig.pcu.to_svg();
        assert!(svg_cmac.contains("<svg"));
        assert!(svg_pcu.contains("<svg"));
        // The visual point of Fig. 6: smaller die for the PCU.
        assert!(fig.pcu.report.die_area_mm2 < fig.cmac.report.die_area_mm2);
        assert!(fig.to_ascii().contains("CMAC"));
    }
}
