//! Simulation-core speed: the window-batched cycle-accurate engine
//! against the per-cycle reference it replaced, on identical conv and
//! GEMM workloads — reporting wall-clock speedup with **digest
//! equality over outputs and statistics** as the acceptance gate
//! (`results/BENCH_sim_speed.json`).
//!
//! The digests cover everything the per-cycle engine used to compute:
//! outputs, `stats.cycles`, pulse/gated PE-cycles, window statistics,
//! silent-PE averages and utilization. Equal digests prove the
//! batching changed only wall-clock, not semantics.

use std::time::Instant;

use tempus_arith::IntPrecision;
use tempus_core::gemm::{GemmRun, Matrix, TubGemm};
use tempus_core::{TempusConfig, TempusCore};
use tempus_nvdla::conv::ConvParams;
use tempus_nvdla::cube::{fnv1a, DataCube, KernelSet};
use tempus_nvdla::pipeline::{ConvCore, ConvRun};

/// One workload's old-vs-new measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseRow {
    /// Workload label.
    pub case: String,
    /// `conv` or `gemm`.
    pub kind: &'static str,
    /// Modelled datapath cycles (identical across engines by
    /// construction; reported for scale).
    pub sim_cycles: u64,
    /// Per-cycle reference engine wall-clock, seconds.
    pub reference_s: f64,
    /// Window-batched engine wall-clock, seconds.
    pub windowed_s: f64,
    /// Reference-over-windowed wall-clock multiple.
    pub speedup: f64,
    /// Digest over outputs and statistics, reference engine.
    pub reference_digest: u64,
    /// Digest over outputs and statistics, window-batched engine.
    pub windowed_digest: u64,
}

impl CaseRow {
    /// `true` when the two engines agreed bit-for-bit.
    #[must_use]
    pub fn digests_equal(&self) -> bool {
        self.reference_digest == self.windowed_digest
    }
}

/// The full experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSpeedReport {
    /// Seed the workloads were generated from.
    pub seed: u64,
    /// Timed repetitions per case.
    pub reps: usize,
    /// Per-case rows.
    pub cases: Vec<CaseRow>,
}

impl SimSpeedReport {
    /// `true` when every case agreed bit-for-bit.
    #[must_use]
    pub fn digests_equal(&self) -> bool {
        self.cases.iter().all(CaseRow::digests_equal)
    }

    /// Geometric-mean speedup across cases.
    #[must_use]
    pub fn geomean_speedup(&self) -> f64 {
        if self.cases.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self.cases.iter().map(|c| c.speedup.ln()).sum();
        (log_sum / self.cases.len() as f64).exp()
    }
}

/// Digest of a conv run: output values plus every reported statistic.
fn conv_digest(run: &ConvRun, core: &TempusCore) -> u64 {
    let ts = core.last_tempus_stats();
    fnv1a(
        run.output
            .as_slice()
            .iter()
            .map(|&v| u64::from(v as u32))
            .chain([
                run.stats.cycles,
                run.stats.atomic_ops,
                run.stats.stripes,
                run.stats.macs,
                run.stats.gated_cell_cycles,
                run.stats.cbuf_reads,
                run.stats.utilization.to_bits(),
                ts.total_window_cycles,
                u64::from(ts.max_window_cycles),
                ts.pe_pulse_cycles,
                ts.pe_gated_cycles,
                ts.avg_window_cycles.to_bits(),
                ts.avg_silent_pes.to_bits(),
            ]),
    )
}

/// Digest of a GEMM run: output values plus every statistic.
fn gemm_digest(run: &GemmRun) -> u64 {
    fnv1a(
        (0..run.output.rows())
            .flat_map(|i| (0..run.output.cols()).map(move |j| (i, j)))
            .map(|(i, j)| u64::from(run.output.get(i, j) as u32))
            .chain([
                run.stats.cycles,
                run.stats.steps,
                run.stats.tile_passes,
                run.stats.silent_pe_steps,
            ]),
    )
}

fn conv_case(w: usize, c: usize, k: usize, seed: i32) -> (DataCube, KernelSet) {
    let f = DataCube::from_fn(w, w, c, move |x, y, ch| {
        ((x as i32 * 31 + y as i32 * 17 + ch as i32 * 7 + seed) % 255) - 127
    });
    let kn = KernelSet::from_fn(k, 3, 3, c, move |k, r, s, ch| {
        ((k as i32 * 13 + r as i32 * 5 + s as i32 * 3 + ch as i32 * 11 + seed) % 255) - 127
    });
    (f, kn)
}

fn gemm_case(m: usize, n: usize, p: usize, seed: i32) -> (Matrix, Matrix) {
    let a = Matrix::from_fn(m, n, move |i, j| {
        ((i as i32 * 31 + j as i32 * 17 + seed) % 255) - 127
    });
    let b = Matrix::from_fn(n, p, move |i, j| {
        ((i as i32 * 13 + j as i32 * 41 + seed * 3) % 255) - 127
    });
    (a, b)
}

fn time_conv(
    config: TempusConfig,
    f: &DataCube,
    kn: &KernelSet,
    params: &ConvParams,
    reps: usize,
    windowed: bool,
) -> (f64, u64, u64) {
    let mut core = TempusCore::new(config);
    let mut digest = 0u64;
    let mut cycles = 0u64;
    let start = Instant::now();
    for _ in 0..reps {
        let run = if windowed {
            core.convolve(f, kn, params).expect("conv runs")
        } else {
            core.convolve_reference(f, kn, params).expect("conv runs")
        };
        digest = conv_digest(&run, &core);
        cycles = run.stats.cycles;
    }
    (start.elapsed().as_secs_f64(), digest, cycles)
}

fn time_gemm(
    engine: &TubGemm,
    a: &Matrix,
    b: &Matrix,
    reps: usize,
    windowed: bool,
) -> (f64, u64, u64) {
    let mut digest = 0u64;
    let mut cycles = 0u64;
    let start = Instant::now();
    for _ in 0..reps {
        let run = if windowed {
            engine.multiply(a, b).expect("gemm runs")
        } else {
            engine.multiply_reference(a, b).expect("gemm runs")
        };
        digest = gemm_digest(&run);
        cycles = run.stats.cycles;
    }
    (start.elapsed().as_secs_f64(), digest, cycles)
}

/// Runs the experiment. `quick` shrinks workloads and repetitions for
/// CI smoke runs — digest equality is the invariant there, not
/// timing.
#[must_use]
pub fn run(seed: u64, quick: bool) -> SimSpeedReport {
    let reps = if quick { 1 } else { 3 };
    let mut cases = Vec::new();

    let conv_specs: &[(&str, TempusConfig, usize, usize, usize, ConvParams)] = &[
        (
            "conv nv_small 6x6x8 k8 int8",
            TempusConfig::nv_small(),
            6,
            8,
            8,
            ConvParams::unit_stride_same(3),
        ),
        (
            "conv paper16 8x8x19 k21 int8",
            TempusConfig::paper_16x16(),
            8,
            19,
            21,
            ConvParams::valid(),
        ),
    ];
    let conv_specs = if quick { &conv_specs[..1] } else { conv_specs };
    for (label, config, w, c, k, params) in conv_specs {
        let (f, kn) = conv_case(*w, *c, *k, seed as i32 + 3);
        let (reference_s, reference_digest, sim_cycles) =
            time_conv(*config, &f, &kn, params, reps, false);
        let (windowed_s, windowed_digest, _) = time_conv(*config, &f, &kn, params, reps, true);
        cases.push(CaseRow {
            case: (*label).to_string(),
            kind: "conv",
            sim_cycles,
            reference_s,
            windowed_s,
            speedup: reference_s / windowed_s.max(1e-12),
            reference_digest,
            windowed_digest,
        });
    }

    let gemm_specs: &[(&str, usize, usize, usize, usize, usize)] = &[
        ("gemm 48x32x40 grid 8x8 int8", 48, 32, 40, 8, 8),
        ("gemm 64x64x64 grid 16x16 int8", 64, 64, 64, 16, 16),
    ];
    let gemm_specs = if quick { &gemm_specs[..1] } else { gemm_specs };
    for (label, m, n, p, gm, gp) in gemm_specs {
        let (a, b) = gemm_case(*m, *n, *p, seed as i32 + 7);
        let engine = TubGemm::new(*gm, *gp, IntPrecision::Int8);
        let (reference_s, reference_digest, sim_cycles) = time_gemm(&engine, &a, &b, reps, false);
        let (windowed_s, windowed_digest, _) = time_gemm(&engine, &a, &b, reps, true);
        cases.push(CaseRow {
            case: (*label).to_string(),
            kind: "gemm",
            sim_cycles,
            reference_s,
            windowed_s,
            speedup: reference_s / windowed_s.max(1e-12),
            reference_digest,
            windowed_digest,
        });
    }

    SimSpeedReport { seed, reps, cases }
}

impl SimSpeedReport {
    /// Machine-readable JSON summary (hand-rolled; the workspace has
    /// no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\n  \"experiment\": \"sim_speed\",\n  \"seed\": {},\n  \"reps\": {},\n  \
             \"geomean_speedup\": {:.2},\n  \"digests_equal\": {},\n  \"cases\": [\n",
            self.seed,
            self.reps,
            self.geomean_speedup(),
            self.digests_equal(),
        );
        for (i, c) in self.cases.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"case\": \"{}\", \"kind\": \"{}\", \"sim_cycles\": {}, \
                 \"reference_s\": {:.6}, \"windowed_s\": {:.6}, \"speedup\": {:.2}, \
                 \"reference_digest\": \"{:016x}\", \"windowed_digest\": \"{:016x}\", \
                 \"digests_equal\": {}}}{}\n",
                c.case,
                c.kind,
                c.sim_cycles,
                c.reference_s,
                c.windowed_s,
                c.speedup,
                c.reference_digest,
                c.windowed_digest,
                c.digests_equal(),
                if i + 1 == self.cases.len() { "" } else { "," },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Human-readable markdown summary.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut s = format!(
            "sim_speed: window-batched vs per-cycle engine, {} reps, \
             geomean speedup {:.1}x, digests equal: {}\n\n",
            self.reps,
            self.geomean_speedup(),
            self.digests_equal(),
        );
        s.push_str("| case | sim cycles | per-cycle s | windowed s | speedup | digests |\n");
        s.push_str("|---|---|---|---|---|---|\n");
        for c in &self.cases {
            s.push_str(&format!(
                "| {} | {} | {:.4} | {:.4} | {:.1}x | {} |\n",
                c.case,
                c.sim_cycles,
                c.reference_s,
                c.windowed_s,
                c.speedup,
                if c.digests_equal() { "equal" } else { "DRIFT" },
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_bit_for_bit_in_smoke_mode() {
        // The CI gate: digest equality across engines on every case.
        // Timing is environment-dependent and not asserted here; the
        // ≥10x wall-clock claim is validated by the full bench run
        // (results/BENCH_sim_speed.json).
        let report = run(42, true);
        assert!(!report.cases.is_empty());
        for case in &report.cases {
            assert!(
                case.digests_equal(),
                "{}: engines diverged (ref {:016x} vs win {:016x})",
                case.case,
                case.reference_digest,
                case.windowed_digest
            );
            assert!(case.sim_cycles > 0);
        }
    }

    #[test]
    fn json_summary_is_well_formed_enough() {
        let report = run(7, true);
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"sim_speed\""));
        assert!(json.contains("\"digests_equal\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
