//! Table II: post-synthesis area and power of single PE cells (k = 1),
//! binary vs tub, n ∈ {16, 256, 1024}, INT4/INT8.

use tempus_arith::IntPrecision;
use tempus_hwmodel::{paper, Family, SynthModel};
use tempus_profile::table::Table;

/// One Table II row (one precision × n configuration).
#[derive(Debug, Clone, PartialEq)]
pub struct CellRow {
    /// Precision.
    pub precision: IntPrecision,
    /// Multipliers per cell.
    pub n: usize,
    /// Binary cell area (mm²).
    pub binary_area: f64,
    /// tub cell area (mm²).
    pub tub_area: f64,
    /// Area improvement %.
    pub area_improvement_pct: f64,
    /// Binary cell power (mW).
    pub binary_power: f64,
    /// tub cell power (mW).
    pub tub_power: f64,
    /// Power improvement %.
    pub power_improvement_pct: f64,
    /// Paper's (area %, power %) improvements for comparison.
    pub paper_improvement_pct: (f64, f64),
}

/// Runs the sweep.
#[must_use]
pub fn run(hw: &SynthModel) -> Vec<CellRow> {
    let mut rows = Vec::new();
    for precision in [IntPrecision::Int4, IntPrecision::Int8] {
        for n in [16usize, 256, 1024] {
            let b = hw.pe_cell(Family::Binary, precision, n);
            let t = hw.pe_cell(Family::Tub, precision, n);
            let paper_imp = paper::TABLE_II_IMPROVEMENT_PCT
                .iter()
                .find(|&&(p, pn, _, _)| p == precision && pn == n)
                .map_or((f64::NAN, f64::NAN), |&(_, _, a, p)| (a, p));
            rows.push(CellRow {
                precision,
                n,
                binary_area: b.area_mm2,
                tub_area: t.area_mm2,
                area_improvement_pct: (1.0 - t.area_mm2 / b.area_mm2) * 100.0,
                binary_power: b.power_mw,
                tub_power: t.power_mw,
                power_improvement_pct: (1.0 - t.power_mw / b.power_mw) * 100.0,
                paper_improvement_pct: paper_imp,
            });
        }
    }
    rows
}

/// Renders the area half of Table II.
#[must_use]
pub fn area_table(rows: &[CellRow]) -> Table {
    let mut t = Table::new([
        "Precision",
        "n",
        "Binary PE cell (mm2)",
        "tub PE cell (mm2)",
        "Improvement (%)",
        "Paper (%)",
    ]);
    for r in rows {
        t.push_row([
            r.precision.to_string(),
            r.n.to_string(),
            format!("{:.4}", r.binary_area),
            format!("{:.4}", r.tub_area),
            format!("{:.2}", r.area_improvement_pct),
            format!("{:.2}", r.paper_improvement_pct.0),
        ]);
    }
    t
}

/// Renders the power half of Table II.
#[must_use]
pub fn power_table(rows: &[CellRow]) -> Table {
    let mut t = Table::new([
        "Precision",
        "n",
        "Binary PE cell (mW)",
        "tub PE cell (mW)",
        "Improvement (%)",
        "Paper (%)",
    ]);
    for r in rows {
        t.push_row([
            r.precision.to_string(),
            r.n.to_string(),
            format!("{:.3}", r.binary_power),
            format!("{:.3}", r.tub_power),
            format!("{:.2}", r.power_improvement_pct),
            format!("{:.2}", r.paper_improvement_pct.1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvements_track_paper_within_tolerance() {
        let hw = SynthModel::nangate45();
        for row in run(&hw) {
            let (pa, pp) = row.paper_improvement_pct;
            assert!(
                (row.area_improvement_pct - pa).abs() < 8.0,
                "{} n={}: area {:.1} vs paper {:.1}",
                row.precision,
                row.n,
                row.area_improvement_pct,
                pa
            );
            assert!(
                (row.power_improvement_pct - pp).abs() < 10.0,
                "{} n={}: power {:.1} vs paper {:.1}",
                row.precision,
                row.n,
                row.power_improvement_pct,
                pp
            );
        }
    }

    #[test]
    fn tables_have_six_rows() {
        let hw = SynthModel::nangate45();
        let rows = run(&hw);
        assert_eq!(area_table(&rows).len(), 6);
        assert_eq!(power_table(&rows).len(), 6);
    }
}
