//! Streaming tiled GEMM on transformer-shaped workloads: the bounded
//! double-buffered streaming path against the whole-operand
//! materialized path, with **digest equality**, **O(tile) peak
//! scratch** and **wall-clock parity-or-better** as the acceptance
//! gates (`results/BENCH_streaming_gemm.json`).
//!
//! Every case is an LLM block silhouette from
//! [`tempus_models::transformer`] (attention projection, MLP
//! up/down), run under a scratch budget of **a quarter of the operand
//! footprint**: the whole-operand workload must complete inside it,
//! the observed arena high-water mark must equal the closed-form
//! [`StreamPlan::peak_scratch_elems`] prediction, and that figure
//! must not move when the operands grow — the streaming guarantee.
//! Digests chain the functional output with the closed-form cycle
//! model of each path, so equal digests certify both the product and
//! the latency prediction carried over unchanged.

use std::time::Instant;

use tempus_arith::IntPrecision;
use tempus_core::gemm::{Matrix, TubGemm};
use tempus_core::streaming::{stream_product, StreamPlan, StreamStats};
use tempus_models::transformer::{self, ProjectionKind, TransformerShape};
use tempus_nvdla::cube::fnv1a;

/// PE grid every case runs on (the paper's 16×16 array).
const GRID: (usize, usize) = (16, 16);

/// One transformer-projection workload's materialized-vs-streamed
/// measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamCase {
    /// Workload label (`preset projection m×n×p`).
    pub case: String,
    /// Product dimensions `A(m×n) × B(n×p)`.
    pub m: usize,
    /// Inner dimension.
    pub n: usize,
    /// Output columns.
    pub p: usize,
    /// Total operand footprint in elements (`m·n + n·p`).
    pub operand_elems: u64,
    /// Scratch budget the streamed run was admitted under
    /// (`operand_elems / 4`).
    pub budget_elems: u64,
    /// Window depth [`StreamPlan::for_budget`] chose for the budget.
    pub tile_k: usize,
    /// Observed arena high-water mark (must equal the closed-form
    /// prediction and fit the budget).
    pub peak_scratch_elems: u64,
    /// Closed-form [`StreamPlan::peak_scratch_elems`] prediction.
    pub model_scratch_elems: u64,
    /// Modelled critical-path datapath cycles (identical across paths
    /// by construction; reported for scale).
    pub sim_cycles: u64,
    /// Materialized functional path wall-clock, seconds.
    pub materialized_s: f64,
    /// Streamed functional path wall-clock, seconds.
    pub streamed_s: f64,
    /// Materialized-over-streamed wall-clock multiple (≥ 1 means
    /// streaming is not slower).
    pub speedup: f64,
    /// Digest over output and modelled cycles, materialized path.
    pub materialized_digest: u64,
    /// Digest over output and modelled cycles, streamed path.
    pub streamed_digest: u64,
}

impl StreamCase {
    /// `true` when the two paths agreed bit-for-bit (output and
    /// cycle model).
    #[must_use]
    pub fn digests_equal(&self) -> bool {
        self.materialized_digest == self.streamed_digest
    }

    /// `true` when the observed peak equals the closed-form
    /// prediction, fits the budget, and the budget really was a
    /// quarter of the operand footprint or less.
    #[must_use]
    pub fn scratch_bounded(&self) -> bool {
        self.peak_scratch_elems == self.model_scratch_elems
            && self.peak_scratch_elems <= self.budget_elems
            && 4 * self.budget_elems <= self.operand_elems
    }

    /// `true` when quadrupling the inner dimension would not grow the
    /// arena — peak scratch is a function of the plan and grid alone
    /// once the operands exceed them.
    #[must_use]
    pub fn scratch_operand_invariant(&self) -> bool {
        let engine = TubGemm::new(GRID.0, GRID.1, IntPrecision::Int8);
        let plan = StreamPlan::new(self.tile_k);
        plan.peak_scratch_elems(&engine, self.m, 4 * self.n, self.p) == self.peak_scratch_elems
    }
}

/// The full experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingGemmReport {
    /// Seed the workloads were generated from.
    pub seed: u64,
    /// Timed repetitions per case.
    pub reps: usize,
    /// Per-case rows.
    pub cases: Vec<StreamCase>,
}

impl StreamingGemmReport {
    /// `true` when every case agreed bit-for-bit.
    #[must_use]
    pub fn digests_equal(&self) -> bool {
        self.cases.iter().all(StreamCase::digests_equal)
    }

    /// `true` when every case's peak scratch matched the model and
    /// fit its quarter-of-operand budget.
    #[must_use]
    pub fn scratch_bounded(&self) -> bool {
        self.cases.iter().all(StreamCase::scratch_bounded)
    }

    /// `true` when no case's arena would grow with the operands.
    #[must_use]
    pub fn scratch_operand_invariant(&self) -> bool {
        self.cases.iter().all(StreamCase::scratch_operand_invariant)
    }

    /// Geometric-mean materialized-over-streamed speedup.
    #[must_use]
    pub fn geomean_speedup(&self) -> f64 {
        if self.cases.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self.cases.iter().map(|c| c.speedup.ln()).sum();
        (log_sum / self.cases.len() as f64).exp()
    }
}

/// Digest of one path: output values chained with the closed-form
/// per-shard cycle prediction.
fn product_digest(out: &Matrix, per_shard_cycles: &[u64]) -> u64 {
    fnv1a(
        out.as_slice()
            .iter()
            .map(|&v| u64::from(v as u32))
            .chain(per_shard_cycles.iter().copied()),
    )
}

fn time_materialized(engine: &TubGemm, a: &Matrix, b: &Matrix, reps: usize) -> (f64, u64) {
    let (_, per_shard_cycles) = engine.sharded_cycle_model(a, b, 1);
    let mut digest = 0u64;
    let start = Instant::now();
    for _ in 0..reps {
        let out = a.multiply(b).expect("gemm runs");
        digest = product_digest(&out, &per_shard_cycles);
    }
    (start.elapsed().as_secs_f64(), digest)
}

fn time_streamed(
    engine: &TubGemm,
    a: &Matrix,
    b: &Matrix,
    plan: &StreamPlan,
    reps: usize,
) -> (f64, u64, StreamStats) {
    let model = engine.streamed_cycle_model(a, b, 1, plan);
    let mut digest = 0u64;
    let mut stream = StreamStats::default();
    let start = Instant::now();
    for _ in 0..reps {
        let (out, st) =
            stream_product(a, b, (engine.grid_m(), engine.grid_p()), plan).expect("gemm runs");
        digest = product_digest(&out, &model.per_shard_cycles);
        stream = st;
    }
    (start.elapsed().as_secs_f64(), digest, stream)
}

/// Runs the experiment. `quick` shrinks workloads and repetitions for
/// CI smoke runs — digest equality and the scratch bound are the
/// invariants there, not timing.
#[must_use]
pub fn run(seed: u64, quick: bool) -> StreamingGemmReport {
    let reps = if quick { 1 } else { 2 };
    let presets: &[(&str, TransformerShape)] = if quick {
        &[("trace", TransformerShape::trace_default())]
    } else {
        &[
            ("gpt2_small", TransformerShape::gpt2_small()),
            ("bert_large", TransformerShape::bert_large()),
        ]
    };
    let engine = TubGemm::new(GRID.0, GRID.1, IntPrecision::Int8);
    let mut cases = Vec::new();
    for (pi, (preset, shape)) in presets.iter().enumerate() {
        for (ki, &kind) in ProjectionKind::ALL.iter().enumerate() {
            let (m, n, p) = shape.dims(kind);
            let (a, b) = transformer::projection_gemm(
                shape,
                kind,
                IntPrecision::Int8,
                seed.wrapping_add((pi * ProjectionKind::ALL.len() + ki) as u64),
            );
            let operand_elems = (m * n + n * p) as u64;
            let budget_elems = operand_elems / 4;
            let plan = StreamPlan::for_budget(&engine, m, n, p, budget_elems)
                .expect("quarter-operand budget admits a plan on transformer shapes");
            let (materialized_s, materialized_digest) = time_materialized(&engine, &a, &b, reps);
            let (streamed_s, streamed_digest, stream) = time_streamed(&engine, &a, &b, &plan, reps);
            let model = engine.streamed_cycle_model(&a, &b, 1, &plan);
            cases.push(StreamCase {
                case: format!("{preset} {} {m}x{n}x{p}", kind.name()),
                m,
                n,
                p,
                operand_elems,
                budget_elems,
                tile_k: plan.tile_k(),
                peak_scratch_elems: stream.peak_scratch_elems,
                model_scratch_elems: model.peak_scratch_elems,
                sim_cycles: model.per_shard_cycles.iter().copied().max().unwrap_or(0),
                materialized_s,
                streamed_s,
                speedup: materialized_s / streamed_s.max(1e-12),
                materialized_digest,
                streamed_digest,
            });
        }
    }
    StreamingGemmReport { seed, reps, cases }
}

impl StreamingGemmReport {
    /// Machine-readable JSON summary (hand-rolled; the workspace has
    /// no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\n  \"experiment\": \"streaming_gemm\",\n  \"seed\": {},\n  \"reps\": {},\n  \
             \"geomean_speedup\": {:.2},\n  \"digests_equal\": {},\n  \
             \"scratch_bounded\": {},\n  \"scratch_operand_invariant\": {},\n  \"cases\": [\n",
            self.seed,
            self.reps,
            self.geomean_speedup(),
            self.digests_equal(),
            self.scratch_bounded(),
            self.scratch_operand_invariant(),
        );
        for (i, c) in self.cases.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"case\": \"{}\", \"m\": {}, \"n\": {}, \"p\": {}, \
                 \"operand_elems\": {}, \"budget_elems\": {}, \"tile_k\": {}, \
                 \"peak_scratch_elems\": {}, \"model_scratch_elems\": {}, \
                 \"sim_cycles\": {}, \"materialized_s\": {:.6}, \"streamed_s\": {:.6}, \
                 \"speedup\": {:.2}, \"materialized_digest\": \"{:016x}\", \
                 \"streamed_digest\": \"{:016x}\", \"digests_equal\": {}, \
                 \"scratch_bounded\": {}}}{}\n",
                c.case,
                c.m,
                c.n,
                c.p,
                c.operand_elems,
                c.budget_elems,
                c.tile_k,
                c.peak_scratch_elems,
                c.model_scratch_elems,
                c.sim_cycles,
                c.materialized_s,
                c.streamed_s,
                c.speedup,
                c.materialized_digest,
                c.streamed_digest,
                c.digests_equal(),
                c.scratch_bounded(),
                if i + 1 == self.cases.len() { "" } else { "," },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Human-readable markdown summary.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut s = format!(
            "streaming_gemm: streamed vs materialized on transformer shapes, {} reps, \
             geomean speedup {:.1}x, digests equal: {}, scratch bounded: {}\n\n",
            self.reps,
            self.geomean_speedup(),
            self.digests_equal(),
            self.scratch_bounded(),
        );
        s.push_str(
            "| case | operand elems | budget | peak scratch | tile_k | \
             materialized s | streamed s | speedup | digests |\n",
        );
        s.push_str("|---|---|---|---|---|---|---|---|---|\n");
        for c in &self.cases {
            s.push_str(&format!(
                "| {} | {} | {} | {} | {} | {:.4} | {:.4} | {:.1}x | {} |\n",
                c.case,
                c.operand_elems,
                c.budget_elems,
                c.peak_scratch_elems,
                c.tile_k,
                c.materialized_s,
                c.streamed_s,
                c.speedup,
                if c.digests_equal() { "equal" } else { "DRIFT" },
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streamed_path_is_bit_identical_and_scratch_bounded_in_smoke_mode() {
        // The CI gate: digest equality and the O(tile) scratch bound
        // on every case. Timing is environment-dependent and not
        // asserted here; the ≥1x wall-clock claim is validated by the
        // full bench run (results/BENCH_streaming_gemm.json).
        let report = run(42, true);
        assert!(!report.cases.is_empty());
        for case in &report.cases {
            assert!(
                case.digests_equal(),
                "{}: paths diverged (mat {:016x} vs str {:016x})",
                case.case,
                case.materialized_digest,
                case.streamed_digest
            );
            assert!(case.scratch_bounded(), "{}: scratch exceeded", case.case);
            assert!(
                case.scratch_operand_invariant(),
                "{}: arena grew with operands",
                case.case
            );
            assert!(case.sim_cycles > 0);
        }
    }

    #[test]
    fn json_summary_is_well_formed_enough() {
        let report = run(7, true);
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"streaming_gemm\""));
        assert!(json.contains("\"digests_equal\": true"));
        assert!(json.contains("\"scratch_bounded\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
