//! Fleet-scale serving: replay seeded traffic through the two-level
//! [`FleetScheduler`] across device counts and load levels and map
//! the goodput / SLO-compliance frontiers
//! (`results/BENCH_fleet_scaling.json`).
//!
//! Three acceptance gates:
//!
//! * **digest gate** — outputs are bit-identical across every device
//!   count (and to the 1-device reference, which PR 5 proved equal to
//!   the single-device ledger path);
//! * **backfill gate** — look-ahead backfilling strictly reduces the
//!   unreclaimed idle array-cycles left behind by gather waits,
//!   versus the plain FIFO picker, at equal output digests;
//! * **admission gate** — deadline-aware admission achieves strictly
//!   higher SLO compliance than drop-on-timeout at the highest load
//!   point (a timed-out job delivers no value; an admission-rejected
//!   job at least never occupied the arrays).

use std::collections::BTreeMap;

use tempus_core::shard::WidenPolicy;
use tempus_core::TempusConfig;
use tempus_fleet::{FleetConfig, FleetOutcome, FleetScheduler, FleetSummary};
use tempus_models::traffic::{generate, ClassDeadlines, TraceConfig, TraceRequest};
use tempus_nvdla::cube::fnv1a;
use tempus_runtime::{
    ArrayPlanner, BackendKind, EngineConfig, FunctionalBackend, InferenceBackend, Job,
};
use tempus_serve::Request;

/// Per-class deadlines for the measured (scaling) axis, in device
/// cycles. Sized so every zero-load placement meets its class
/// deadline — narrow convs run up to ~21k cycles at width 1, GEMMs
/// under ~500, network prefixes get batch-tier slack — while deep
/// gather waits and queueing blow it.
fn replay_deadlines() -> ClassDeadlines {
    ClassDeadlines {
        fast: [25_000, 3_000, 2_000_000],
        accurate: [25_000, 3_000, 2_000_000],
    }
}

/// The admission axis's SLO: one interactive tier, 25k device cycles
/// = 100 us on the 250 MHz clock. A uniform deadline is what makes
/// the timeout-vs-admission comparison clean: admission keeps the
/// backlog bounded near the tier's deadline for *every* class, where
/// mixed tiers would only protect the loosest one.
fn interactive_deadline() -> ClassDeadlines {
    ClassDeadlines::uniform(25_000)
}

/// One device-count point on the scaling frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingRow {
    /// Devices in the (fixed) fleet.
    pub devices: usize,
    /// Fleet makespan: the cycle the last device finishes.
    pub makespan_cycles: u64,
    /// Completed jobs per million device-cycles of makespan.
    pub goodput_jobs_per_mcycle: f64,
    /// Busy array-cycles over the fleet's `arrays x makespan` area.
    pub occupancy: f64,
    /// Gather-wait cycles across the fleet.
    pub total_wait_cycles: u64,
    /// Fraction of jobs whose admission-to-finish latency met their
    /// class deadline (measured, not enforced — every job runs).
    pub slo_compliance: f64,
    /// Combined digest over `(job id, output digest)` pairs — equal
    /// across rows proves device count never changes an output bit.
    pub digest: u64,
}

/// FIFO vs backfilling at a fixed device count.
#[derive(Debug, Clone, PartialEq)]
pub struct BackfillRow {
    /// Devices in both fleets.
    pub devices: usize,
    /// Unreclaimed idle array-cycles under the FIFO picker.
    pub fifo_idle_gap_cycles: u64,
    /// Unreclaimed idle array-cycles with backfilling on.
    pub backfill_idle_gap_cycles: u64,
    /// Backfills the scheduler committed.
    pub backfills: u64,
    /// FIFO fleet makespan.
    pub fifo_makespan_cycles: u64,
    /// Backfilling fleet makespan (never worse: a backfill moves no
    /// busy-until clock).
    pub backfill_makespan_cycles: u64,
    /// Outputs stayed bit-identical across the two policies.
    pub digests_equal: bool,
}

/// One load level on the admission frontier: drop-on-timeout vs
/// deadline-aware admission at the same open-loop load.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionRow {
    /// Arrival rate as a multiple of the fleet's measured service
    /// rate — above 1.0 the backlog grows without bound, and queueing
    /// delay is what blows deadlines.
    pub load: f64,
    /// Device cycles between consecutive arrivals at this load.
    pub interarrival_cycles: u64,
    /// SLO compliance when every job is admitted and late jobs simply
    /// time out (they still occupied the arrays).
    pub compliance_timeout: f64,
    /// SLO compliance under deadline-aware admission (rejected jobs
    /// count as misses, but never occupy the arrays).
    pub compliance_admission: f64,
    /// Jobs the admission path rejected up front.
    pub rejections: u64,
    /// Jobs meeting their deadline under drop-on-timeout.
    pub met_timeout: u64,
    /// Jobs meeting their deadline under deadline-aware admission.
    pub met_admission: u64,
}

/// The full experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetScalingReport {
    /// Trace seed.
    pub seed: u64,
    /// Requests per trace.
    pub requests: usize,
    /// PE arrays per device.
    pub num_arrays: usize,
    /// Devices used for the backfill and admission comparisons.
    pub comparison_devices: usize,
    /// Device-count frontier (1 device first — the PR 5 reference).
    pub scaling: Vec<ScalingRow>,
    /// FIFO vs backfilling.
    pub backfill: BackfillRow,
    /// Load frontier, lightest first.
    pub admission: Vec<AdmissionRow>,
}

impl FleetScalingReport {
    /// `true` when every device count produced bit-identical outputs.
    #[must_use]
    pub fn digests_equal(&self) -> bool {
        self.scaling.windows(2).all(|w| w[0].digest == w[1].digest)
    }

    /// `true` when backfilling reclaimed idle array-cycles at equal
    /// digests (the backfill gate).
    #[must_use]
    pub fn backfill_reclaims(&self) -> bool {
        self.backfill.digests_equal
            && self.backfill.backfill_idle_gap_cycles < self.backfill.fifo_idle_gap_cycles
    }

    /// `true` when deadline-aware admission beats drop-on-timeout on
    /// SLO compliance at the highest load point (the admission gate).
    #[must_use]
    pub fn admission_wins(&self) -> bool {
        self.admission
            .last()
            .is_some_and(|row| row.compliance_admission > row.compliance_timeout)
    }
}

/// The replayed trace: mixed wide+narrow, no repeats, fast fidelity
/// only (deterministic admission order), deadlines stamped per class.
fn mixed_trace(seed: u64, requests: usize, wide_fraction: f64) -> Vec<TraceRequest> {
    generate(
        &TraceConfig::new(seed)
            .with_requests(requests)
            .with_repeat_fraction(0.0)
            .with_accurate_fraction(0.0)
            .with_wide_conv_fraction(wide_fraction)
            .with_deadlines(replay_deadlines()),
    )
}

/// The admission axis's trace: interactive conv/GEMM traffic only —
/// the classes that carry tight SLOs. Whole-network prefixes are
/// batch work; their quasi-unbounded deadlines would let them crowd
/// the arrays in *both* admission modes at overload and mask the
/// comparison.
fn interactive_trace(seed: u64, requests: usize, wide_fraction: f64) -> Vec<TraceRequest> {
    generate(&TraceConfig {
        network_weight: 0.0,
        ..TraceConfig::new(seed)
            .with_requests(requests)
            .with_repeat_fraction(0.0)
            .with_accurate_fraction(0.0)
            .with_wide_conv_fraction(wide_fraction)
            .with_deadlines(interactive_deadline())
    })
}

/// One job of the replay, with its stamped deadline.
fn trace_jobs(trace: &[TraceRequest]) -> Vec<(Job, Option<u64>)> {
    trace
        .iter()
        .map(|t| {
            let r = Request::from_trace(t);
            (r.job, r.deadline_cycles)
        })
        .collect()
}

/// The outcome of one fleet replay.
#[derive(Debug, PartialEq)]
struct ReplayOutcome {
    /// Per-job `(granted, latency_cycles, deadline)` for placed jobs;
    /// `None` for admission rejections.
    placed: Vec<Option<(usize, u64, Option<u64>)>>,
    summary: FleetSummary,
}

/// Replays the jobs through a fresh fleet in trace order (all queued
/// at device time 0 — PR 5's queue semantics). `enforce_deadlines`
/// turns the stamped deadlines into admission constraints; otherwise
/// they are only measured against.
fn replay(
    jobs: &[(Job, Option<u64>)],
    engine: &EngineConfig,
    devices: usize,
    backfill: bool,
    enforce_deadlines: bool,
) -> ReplayOutcome {
    let mut planner = ArrayPlanner::new(engine, WidenPolicy::edge_default());
    let mut config = FleetConfig::new(devices, engine.num_arrays);
    if backfill {
        config = config.with_backfill();
    }
    let mut fleet = FleetScheduler::new(config);
    let mut placed = Vec::with_capacity(jobs.len());
    for (job, deadline) in jobs {
        let plan = planner.plan_or_single(job);
        let admitted = fleet.admit(&plan, if enforce_deadlines { *deadline } else { None });
        placed.push(match admitted {
            FleetOutcome::Placed(p) => Some((
                p.placement.assignment.granted,
                p.latency_cycles(),
                *deadline,
            )),
            FleetOutcome::Rejected(_) => None,
        });
    }
    ReplayOutcome {
        placed,
        summary: fleet.summary(),
    }
}

/// Replays the jobs as **open-loop traffic**: job `k` arrives at
/// `k * interarrival_cycles` of device time and is admitted through
/// [`FleetScheduler::admit_at`], so latency (and the deadline, when
/// `enforce_deadlines` is set) includes the queueing delay behind
/// whatever backlog has built up.
fn replay_paced(
    jobs: &[(Job, Option<u64>)],
    engine: &EngineConfig,
    devices: usize,
    interarrival_cycles: u64,
    enforce_deadlines: bool,
) -> ReplayOutcome {
    let mut planner = ArrayPlanner::new(engine, WidenPolicy::edge_default());
    let mut fleet = FleetScheduler::new(FleetConfig::new(devices, engine.num_arrays));
    let mut placed = Vec::with_capacity(jobs.len());
    for (k, (job, deadline)) in jobs.iter().enumerate() {
        let plan = planner.plan_or_single(job);
        let arrival = k as u64 * interarrival_cycles;
        let admitted = fleet.admit_at(
            &plan,
            if enforce_deadlines { *deadline } else { None },
            arrival,
        );
        placed.push(match admitted {
            FleetOutcome::Placed(p) => Some((
                p.placement.assignment.granted,
                p.latency_cycles(),
                *deadline,
            )),
            FleetOutcome::Rejected(_) => None,
        });
    }
    ReplayOutcome {
        placed,
        summary: fleet.summary(),
    }
}

/// Executes every placed job at its granted width and digests the
/// `(job id, output digest)` pairs in id order.
fn replay_digest(jobs: &[(Job, Option<u64>)], outcome: &ReplayOutcome, num_arrays: usize) -> u64 {
    let mut backend =
        FunctionalBackend::new(TempusConfig::nv_small(), (8, 8)).with_arrays(num_arrays);
    let mut digests: BTreeMap<u64, u64> = BTreeMap::new();
    for ((job, _), slot) in jobs.iter().zip(&outcome.placed) {
        if let Some((granted, _, _)) = slot {
            let result = backend
                .execute_on(job, (*granted).max(1))
                .expect("trace jobs are well-shaped");
            digests.insert(job.id, result.output.digest());
        }
    }
    fnv1a(digests.iter().flat_map(|(&id, &d)| [id, d]))
}

/// Jobs whose measured latency met their deadline (jobs without a
/// deadline always count as met; rejections never do).
fn met_deadlines(outcome: &ReplayOutcome) -> u64 {
    outcome
        .placed
        .iter()
        .filter(|slot| {
            slot.as_ref()
                .is_some_and(|(_, latency, deadline)| deadline.is_none_or(|d| *latency <= d))
        })
        .count() as u64
}

/// Runs the experiment. `quick` shrinks the trace for CI smoke runs —
/// the three gates are the invariant there, not timing.
#[must_use]
pub fn run(seed: u64, quick: bool) -> FleetScalingReport {
    let requests = if quick { 60 } else { 240 };
    let num_arrays = 8;
    let comparison_devices = 2;
    let device_axis: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let engine = EngineConfig::new(BackendKind::FastFunctional).with_arrays(num_arrays);

    // Scaling frontier: the base trace, deadlines measured only.
    let base = trace_jobs(&mixed_trace(seed, requests, 0.35));
    let scaling: Vec<ScalingRow> = device_axis
        .iter()
        .map(|&devices| {
            let outcome = replay(&base, &engine, devices, false, false);
            let combined = outcome.summary.combined();
            let completed = outcome.placed.iter().flatten().count() as u64;
            ScalingRow {
                devices,
                makespan_cycles: combined.makespan_cycles,
                goodput_jobs_per_mcycle: completed as f64 * 1e6
                    / combined.makespan_cycles.max(1) as f64,
                occupancy: combined.occupancy(),
                total_wait_cycles: combined.wait_cycles,
                slo_compliance: met_deadlines(&outcome) as f64 / base.len() as f64,
                digest: replay_digest(&base, &outcome, num_arrays),
            }
        })
        .collect();

    // Backfill gate: FIFO vs backfilling on the comparison fleet.
    let fifo = replay(&base, &engine, comparison_devices, false, false);
    let filled = replay(&base, &engine, comparison_devices, true, false);
    let backfill = BackfillRow {
        devices: comparison_devices,
        fifo_idle_gap_cycles: fifo.summary.combined().idle_gap_cycles,
        backfill_idle_gap_cycles: filled.summary.combined().idle_gap_cycles,
        backfills: filled.summary.backfills(),
        fifo_makespan_cycles: fifo.summary.combined().makespan_cycles,
        backfill_makespan_cycles: filled.summary.combined().makespan_cycles,
        digests_equal: replay_digest(&base, &fifo, num_arrays)
            == replay_digest(&base, &filled, num_arrays),
    };

    // Admission frontier: open-loop interactive arrivals at rising
    // load, timeout vs admission. The service rate is calibrated from
    // an unpaced FIFO replay of the same trace: `makespan / requests`
    // device-cycles per job at full utilization on the comparison
    // fleet.
    // The paced replays never execute payloads (planning and
    // admission only), so this axis affords a 4x longer trace — long
    // enough for overload to build a backlog well past the 25k-cycle
    // interactive deadline.
    let interactive = trace_jobs(&interactive_trace(seed ^ 0xF1EE7, requests * 4, 0.35));
    let saturated = replay(&interactive, &engine, comparison_devices, false, false);
    let service_per_job =
        (saturated.summary.combined().makespan_cycles / interactive.len() as u64).max(1);
    let admission: Vec<AdmissionRow> = [0.5, 1.0, 2.0]
        .iter()
        .map(|&load| {
            let interarrival = ((service_per_job as f64 / load) as u64).max(1);
            let timeout = replay_paced(
                &interactive,
                &engine,
                comparison_devices,
                interarrival,
                false,
            );
            let admitted = replay_paced(
                &interactive,
                &engine,
                comparison_devices,
                interarrival,
                true,
            );
            let met_timeout = met_deadlines(&timeout);
            let met_admission = met_deadlines(&admitted);
            AdmissionRow {
                load,
                interarrival_cycles: interarrival,
                compliance_timeout: met_timeout as f64 / interactive.len() as f64,
                compliance_admission: met_admission as f64 / interactive.len() as f64,
                rejections: admitted.summary.rejections,
                met_timeout,
                met_admission,
            }
        })
        .collect();

    FleetScalingReport {
        seed,
        requests,
        num_arrays,
        comparison_devices,
        scaling,
        backfill,
        admission,
    }
}

impl FleetScalingReport {
    /// Machine-readable JSON summary (hand-rolled; the workspace has
    /// no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\n  \"experiment\": \"fleet_scaling\",\n  \"seed\": {},\n  \
             \"requests\": {},\n  \"num_arrays\": {},\n  \
             \"comparison_devices\": {},\n  \"digests_equal\": {},\n  \
             \"backfill_reclaims\": {},\n  \"admission_wins\": {},\n  \
             \"scaling\": [\n",
            self.seed,
            self.requests,
            self.num_arrays,
            self.comparison_devices,
            self.digests_equal(),
            self.backfill_reclaims(),
            self.admission_wins(),
        );
        for (i, r) in self.scaling.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"devices\": {}, \"makespan_cycles\": {}, \
                 \"goodput_jobs_per_mcycle\": {:.3}, \"occupancy\": {:.4}, \
                 \"total_wait_cycles\": {}, \"slo_compliance\": {:.4}, \
                 \"digest\": \"{:016x}\"}}{}\n",
                r.devices,
                r.makespan_cycles,
                r.goodput_jobs_per_mcycle,
                r.occupancy,
                r.total_wait_cycles,
                r.slo_compliance,
                r.digest,
                if i + 1 == self.scaling.len() { "" } else { "," },
            ));
        }
        s.push_str(&format!(
            "  ],\n  \"backfill\": {{\"devices\": {}, \"fifo_idle_gap_cycles\": {}, \
             \"backfill_idle_gap_cycles\": {}, \"backfills\": {}, \
             \"fifo_makespan_cycles\": {}, \"backfill_makespan_cycles\": {}, \
             \"digests_equal\": {}}},\n  \"admission\": [\n",
            self.backfill.devices,
            self.backfill.fifo_idle_gap_cycles,
            self.backfill.backfill_idle_gap_cycles,
            self.backfill.backfills,
            self.backfill.fifo_makespan_cycles,
            self.backfill.backfill_makespan_cycles,
            self.backfill.digests_equal,
        ));
        for (i, r) in self.admission.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"load\": {:.2}, \"interarrival_cycles\": {}, \
                 \"compliance_timeout\": {:.4}, \"compliance_admission\": {:.4}, \
                 \"rejections\": {}, \"met_timeout\": {}, \"met_admission\": {}}}{}\n",
                r.load,
                r.interarrival_cycles,
                r.compliance_timeout,
                r.compliance_admission,
                r.rejections,
                r.met_timeout,
                r.met_admission,
                if i + 1 == self.admission.len() {
                    ""
                } else {
                    ","
                },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Human-readable markdown summary.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut s = format!(
            "fleet_scaling: {} requests on {}-array devices; digests equal \
             across device counts: {}, backfill reclaims idle cycles: {}, \
             deadline admission wins at peak load: {}\n\n",
            self.requests,
            self.num_arrays,
            self.digests_equal(),
            self.backfill_reclaims(),
            self.admission_wins(),
        );
        s.push_str("| devices | makespan cycles | goodput/Mcycle | occupancy | wait cycles | SLO compliance |\n");
        s.push_str("|---|---|---|---|---|---|\n");
        for r in &self.scaling {
            s.push_str(&format!(
                "| {} | {} | {:.1} | {:.0}% | {} | {:.0}% |\n",
                r.devices,
                r.makespan_cycles,
                r.goodput_jobs_per_mcycle,
                r.occupancy * 100.0,
                r.total_wait_cycles,
                r.slo_compliance * 100.0,
            ));
        }
        s.push_str(&format!(
            "\nbackfill ({} devices): idle gap cycles {} -> {} ({} backfills), \
             makespan {} -> {}\n\n",
            self.backfill.devices,
            self.backfill.fifo_idle_gap_cycles,
            self.backfill.backfill_idle_gap_cycles,
            self.backfill.backfills,
            self.backfill.fifo_makespan_cycles,
            self.backfill.backfill_makespan_cycles,
        ));
        s.push_str("| load | timeout compliance | admission compliance | rejections |\n");
        s.push_str("|---|---|---|---|\n");
        for r in &self.admission {
            s.push_str(&format!(
                "| {:.2}x | {:.0}% | {:.0}% | {} |\n",
                r.load,
                r.compliance_timeout * 100.0,
                r.compliance_admission * 100.0,
                r.rejections,
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_gates_hold_in_smoke_mode() {
        let report = run(42, true);
        assert!(report.digests_equal(), "device count changed an output bit");
        assert!(
            report.backfill_reclaims(),
            "backfilling must reclaim idle array-cycles at equal digests: {} -> {}",
            report.backfill.fifo_idle_gap_cycles,
            report.backfill.backfill_idle_gap_cycles,
        );
        assert!(
            report.admission_wins(),
            "deadline admission must beat drop-on-timeout at peak load: {:?}",
            report.admission.last(),
        );
        // A backfill never delays anyone, so the makespan never grows.
        assert!(report.backfill.backfill_makespan_cycles <= report.backfill.fifo_makespan_cycles);
        // More devices: makespan falls monotonically, goodput rises.
        for w in report.scaling.windows(2) {
            assert!(w[1].makespan_cycles <= w[0].makespan_cycles);
            assert!(w[1].goodput_jobs_per_mcycle >= w[0].goodput_jobs_per_mcycle);
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let engine = EngineConfig::new(BackendKind::FastFunctional).with_arrays(8);
        let jobs = trace_jobs(&mixed_trace(7, 40, 0.35));
        let a = replay(&jobs, &engine, 3, true, true);
        let b = replay(&jobs, &engine, 3, true, true);
        assert_eq!(a.placed, b.placed);
        assert_eq!(a.summary, b.summary);
        let c = replay_paced(&jobs, &engine, 3, 2000, true);
        let d = replay_paced(&jobs, &engine, 3, 2000, true);
        assert_eq!(c.placed, d.placed);
        assert_eq!(c.summary, d.summary);
    }

    #[test]
    fn json_summary_is_well_formed_enough() {
        let report = run(7, true);
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"fleet_scaling\""));
        assert!(json.contains("\"digests_equal\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
