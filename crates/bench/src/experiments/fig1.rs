//! Fig. 1 (background): quantization training accuracies from the
//! paper's reference \[8\] (Jain et al., "Trained quantization
//! thresholds…", MLSys 2020).
//!
//! This figure motivates low-precision inference; it is *cited data*,
//! not a computation of the Tempus Core paper, so we reprint the
//! published top-5 ImageNet retraining accuracies rather than
//! attempting an ImageNet training run (see the substitution ledger in
//! DESIGN.md). Values are the TQT paper's reported results.

use tempus_profile::table::Table;

/// One network's accuracy series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyRow {
    /// Network name.
    pub network: &'static str,
    /// FP32 baseline top-5 accuracy (%).
    pub fp32: f64,
    /// INT8 (8w/8a) retrained top-5 accuracy (%).
    pub int8: f64,
    /// INT4-weight (4w/8a) retrained top-5 accuracy (%).
    pub int4w: f64,
}

/// Published accuracy series underlying Fig. 1.
pub const SERIES: [AccuracyRow; 4] = [
    AccuracyRow {
        network: "VGG16-BN",
        fp32: 90.4,
        int8: 90.5,
        int4w: 90.2,
    },
    AccuracyRow {
        network: "ResNet-50",
        fp32: 92.9,
        int8: 92.7,
        int4w: 91.9,
    },
    AccuracyRow {
        network: "InceptionV3",
        fp32: 93.4,
        int8: 93.3,
        int4w: 92.0,
    },
    AccuracyRow {
        network: "MobileNetV2",
        fp32: 90.3,
        int8: 90.1,
        int4w: 87.8,
    },
];

/// Renders the Fig. 1 data table.
#[must_use]
pub fn to_table() -> Table {
    let mut t = Table::new([
        "Network",
        "FP32 top-5 (%)",
        "INT8 top-5 (%)",
        "INT4w top-5 (%)",
    ]);
    for r in SERIES {
        t.push_row([
            r.network.to_string(),
            format!("{:.1}", r.fp32),
            format!("{:.1}", r.int8),
            format!("{:.1}", r.int4w),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradation_is_minimal() {
        // Fig. 1's message: "minimal accuracy decrease with lower
        // precisions" — INT8 within 0.3 pts, INT4 weights within 3 pts.
        for r in SERIES {
            assert!((r.fp32 - r.int8).abs() <= 0.3, "{}", r.network);
            assert!(r.fp32 - r.int4w <= 3.0, "{}", r.network);
        }
    }

    #[test]
    fn table_renders() {
        assert_eq!(to_table().len(), 4);
    }
}
