//! §I / §V-D headline: 16×16 iso-area throughput improvements (5× for
//! INT8, 4× for INT4).

use tempus_arith::IntPrecision;
use tempus_hwmodel::isoarea::array_iso_area_improvement;
use tempus_hwmodel::SynthModel;
use tempus_profile::table::Table;
use tempus_profile::throughput;

/// Headline numbers for the abstract's claims.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Headline {
    /// Iso-area throughput improvement at INT8 (16×16 array).
    pub int8_iso_area: f64,
    /// Iso-area throughput improvement at INT4.
    pub int4_iso_area: f64,
    /// Array-level area reduction % at INT8.
    pub int8_area_reduction_pct: f64,
    /// Array-level power reduction % at INT8.
    pub int8_power_reduction_pct: f64,
}

/// Computes the headline numbers.
#[must_use]
pub fn run(hw: &SynthModel) -> Headline {
    let (area_red, power_red) =
        hw.improvement_pct(tempus_hwmodel::Level::Array, IntPrecision::Int8, 16, 16);
    Headline {
        int8_iso_area: array_iso_area_improvement(hw, IntPrecision::Int8),
        int4_iso_area: array_iso_area_improvement(hw, IntPrecision::Int4),
        int8_area_reduction_pct: area_red,
        int8_power_reduction_pct: power_red,
    }
}

/// Latency-adjusted iso-area throughput table (beyond the paper): net
/// ops/s/mm² gain once the multi-cycle window is included, showing
/// where "throughput transcends the latency increase" (§V-D) actually
/// holds.
#[must_use]
pub fn latency_adjusted_table(hw: &SynthModel) -> Table {
    let mut t = Table::new([
        "Precision",
        "Window (cycles)",
        "Area ratio",
        "Net iso-area gain",
        "Break-even window",
    ]);
    let cases = [
        (IntPrecision::Int8, 33.0, "profiled (MobileNetV2)"),
        (IntPrecision::Int8, 64.0, "worst case"),
        (IntPrecision::Int4, 4.0, "worst case"),
        (IntPrecision::Int2, 1.0, "worst case"),
    ];
    for (precision, window, note) in cases {
        let c = throughput::compare_16x16(hw, precision, window);
        t.push_row([
            format!("{precision} ({note})"),
            format!("{window:.0}"),
            format!("{:.1}x", c.area_ratio),
            format!("{:.2}x", c.net_gain()),
            format!("{:.0} cycles", c.break_even_window()),
        ]);
    }
    t
}

/// Renders the headline claims against the paper's.
#[must_use]
pub fn to_table(h: &Headline) -> Table {
    let mut t = Table::new(["Claim", "Measured", "Paper"]);
    t.push_row([
        "INT8 iso-area throughput (16x16)".to_string(),
        format!("{:.1}x", h.int8_iso_area),
        "5x".to_string(),
    ]);
    t.push_row([
        "INT4 iso-area throughput (16x16)".to_string(),
        format!("{:.1}x", h.int4_iso_area),
        "4x".to_string(),
    ]);
    t.push_row([
        "INT8 array area reduction".to_string(),
        format!("{:.0}%", h.int8_area_reduction_pct),
        "75% (text) / 80% (from its numbers)".to_string(),
    ]);
    t.push_row([
        "INT8 array power reduction".to_string(),
        format!("{:.0}%", h.int8_power_reduction_pct),
        "62%".to_string(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_claims_hold() {
        let hw = SynthModel::nangate45();
        let h = run(&hw);
        assert!((h.int8_iso_area - 5.0).abs() < 0.5);
        assert!((3.5..5.5).contains(&h.int4_iso_area));
        assert!((h.int8_power_reduction_pct - 62.0).abs() < 3.0);
        assert_eq!(to_table(&h).len(), 4);
    }

    #[test]
    fn latency_adjusted_throughput_crossover() {
        // tub loses net throughput at INT8 windows but wins at INT4
        // and INT2 — the §V-D crossover, quantified.
        let hw = SynthModel::nangate45();
        let t = latency_adjusted_table(&hw);
        assert_eq!(t.len(), 4);
        let gains: Vec<f64> = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| {
                l.split(',')
                    .nth(3)
                    .unwrap()
                    .trim_end_matches('x')
                    .parse()
                    .unwrap()
            })
            .collect();
        assert!(gains[0] < 1.0, "INT8 profiled {:?}", gains);
        assert!(gains[2] > 1.0, "INT4 worst case {:?}", gains);
        assert!(gains[3] > gains[2], "INT2 beats INT4 {:?}", gains);
    }
}
