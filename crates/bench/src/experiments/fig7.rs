//! Fig. 7: weight-magnitude profiling of MobileNetV2 and ResNeXt101
//! with 16×16 max pooling, plus the §V-C average latencies.

use tempus_arith::IntPrecision;
use tempus_models::zoo::Model;
use tempus_models::QuantizedModel;
use tempus_profile::magnitude::{profile_model, MagnitudeProfile};
use tempus_profile::table::Table;

/// Profiles for the two Fig. 7 panels.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// MobileNetV2 panel.
    pub mobilenet: MagnitudeProfile,
    /// ResNeXt101 panel.
    pub resnext: MagnitudeProfile,
}

/// Runs the profiling. `max_weights` bounds generation for quick runs.
#[must_use]
pub fn run(seed: u64, max_weights: usize) -> Fig7 {
    let mnv2 =
        QuantizedModel::generate_limited(Model::MobileNetV2, IntPrecision::Int8, seed, max_weights);
    let rnxt =
        QuantizedModel::generate_limited(Model::ResNeXt101, IntPrecision::Int8, seed, max_weights);
    Fig7 {
        mobilenet: profile_model(&mnv2, 16, 16),
        resnext: profile_model(&rnxt, 16, 16),
    }
}

/// Summary table: average latency vs the paper's targets.
#[must_use]
pub fn summary_table(fig: &Fig7) -> Table {
    let mut t = Table::new([
        "Model",
        "Tiles",
        "Avg tile max",
        "Avg latency (cycles)",
        "Paper (cycles)",
        "Worst case",
    ]);
    for (p, paper) in [(&fig.mobilenet, 33.0), (&fig.resnext, 31.0)] {
        t.push_row([
            p.model.clone(),
            p.total_tiles.to_string(),
            format!("{:.1}", p.average_max_magnitude()),
            format!("{:.1}", p.average_latency_cycles()),
            format!("{paper:.0}"),
            "64".to_string(),
        ]);
    }
    t
}

/// Histogram CSV for one panel (`magnitude,frequency`).
#[must_use]
pub fn histogram_csv(profile: &MagnitudeProfile) -> String {
    let mut out = String::from("magnitude,frequency\n");
    for (m, f) in profile.series() {
        out.push_str(&format!("{m},{f}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_both_panels() {
        let fig = run(3, 400_000);
        assert!(fig.mobilenet.total_tiles > 0);
        assert!(fig.resnext.total_tiles > 0);
        let t = summary_table(&fig);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn histogram_csv_has_header_and_rows() {
        let fig = run(3, 200_000);
        let csv = histogram_csv(&fig.mobilenet);
        assert!(csv.starts_with("magnitude,frequency\n"));
        assert!(csv.lines().count() > 2);
    }
}
