//! Tracing-overhead gate: replay the same seeded trace through the
//! serving stack with telemetry off and on, proving that tracing is
//! (a) free for correctness — bit-identical output digests — and (b)
//! nearly free for performance — best-of-N wall time within 5% of the
//! untraced run — while the exported Perfetto trace covers every
//! pipeline stage on both clock domains
//! (`results/BENCH_trace_overhead.json`).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use tempus_models::traffic::{generate, TraceConfig, TraceRequest};
use tempus_nvdla::cube::fnv1a;
use tempus_serve::{Request, ResponseOutcome, ServeConfig, StreamingService};
use tempus_telemetry::perfetto::validate_perfetto;
use tempus_telemetry::{Clock, Stage, TraceExport};

/// Presence of one required stage in the exported trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageCheck {
    /// Stage name as it appears in the trace.
    pub stage: &'static str,
    /// Clock domain the stage must be recorded on.
    pub clock: &'static str,
    /// Whether the export contains at least one such event.
    pub present: bool,
}

/// The full experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOverheadReport {
    /// Trace seed.
    pub seed: u64,
    /// Requests per pass.
    pub requests: usize,
    /// Fleet devices behind the dispatcher.
    pub devices: usize,
    /// PE arrays per device.
    pub arrays: usize,
    /// Timed repetitions per mode.
    pub reps: usize,
    /// Wall seconds per untraced repetition.
    pub untraced_s: Vec<f64>,
    /// Wall seconds per traced repetition.
    pub traced_s: Vec<f64>,
    /// Fractional overhead of the best traced over the best untraced
    /// run, clamped at 0 (a faster traced run is noise, not speedup).
    pub overhead_frac: f64,
    /// Combined output digest, untraced mode.
    pub untraced_digest: u64,
    /// Combined output digest, traced mode (must equal untraced).
    pub traced_digest: u64,
    /// Events in the exported trace.
    pub trace_events: usize,
    /// Tracks in the exported trace.
    pub trace_tracks: usize,
    /// Events lost to ring wraparound (0 at default capacity).
    pub dropped_events: u64,
    /// Events the Perfetto shape validator accepted.
    pub perfetto_events: usize,
    /// Per-stage coverage over both clock domains.
    pub coverage: Vec<StageCheck>,
}

impl TraceOverheadReport {
    /// True when tracing changed no output bit.
    #[must_use]
    pub fn digests_equal(&self) -> bool {
        self.untraced_digest == self.traced_digest
    }

    /// True when every required stage appears on its clock domain.
    #[must_use]
    pub fn full_coverage(&self) -> bool {
        self.coverage.iter().all(|c| c.present)
    }
}

/// Replays `trace` cold through a fresh service, returning the wall
/// seconds, the combined output digest, and (when tracing) the
/// exported trace.
fn replay_once(config: ServeConfig, trace: &[TraceRequest]) -> (f64, u64, Option<TraceExport>) {
    let service = StreamingService::start(config).expect("service starts");
    let start = Instant::now();
    let mut digests: BTreeMap<u64, u64> = BTreeMap::new();
    let mut outstanding = 0usize;
    let consume =
        |response: tempus_serve::Response, digests: &mut BTreeMap<u64, u64>| match response.outcome
        {
            ResponseOutcome::Done(result) => {
                digests.insert(response.job_id, result.output.digest());
            }
            ResponseOutcome::Rejected(reason) => panic!("request rejected: {reason:?}"),
            ResponseOutcome::Failed(error) => panic!("request failed: {error}"),
        };
    for t in trace {
        service
            .submit(Request::from_trace(t))
            .expect("service accepts (blocking submit)");
        outstanding += 1;
        while let Some(response) = service.recv_response(Duration::ZERO) {
            outstanding -= 1;
            consume(response, &mut digests);
        }
    }
    while outstanding > 0 {
        let response = service
            .recv_response(Duration::from_secs(120))
            .expect("responses drain");
        outstanding -= 1;
        consume(response, &mut digests);
    }
    let wall_s = start.elapsed().as_secs_f64();
    let telemetry = service.telemetry();
    let (_stats, _leftover) = service.shutdown();
    let digest = fnv1a(digests.iter().flat_map(|(&id, &d)| [id, d]));
    (wall_s, digest, telemetry.export())
}

/// Stages the acceptance gate requires, with their clock domains:
/// queue, admit and execute live on the wall clock; routing, grants
/// and per-shard busy spans live on deterministic device cycles.
const REQUIRED: [(Stage, Clock); 6] = [
    (Stage::Queue, Clock::Wall),
    (Stage::Admit, Clock::Wall),
    (Stage::Execute, Clock::Wall),
    (Stage::Route, Clock::Device),
    (Stage::Grant, Clock::Device),
    (Stage::Shard, Clock::Device),
];

/// Runs the experiment on a 4-device, 4-array fleet with backfilling
/// (the richest span taxonomy), alternating untraced and traced
/// repetitions and keeping the traced export for the coverage check.
///
/// # Panics
///
/// Panics when tracing changes an output digest, when the exported
/// JSON fails the Perfetto shape check, or when a required stage is
/// missing from the trace — all deterministic contract violations.
/// The (noise-sensitive) <5% overhead gate is asserted by the report
/// binary, not here.
#[must_use]
pub fn run(seed: u64, quick: bool) -> TraceOverheadReport {
    let requests = if quick { 80 } else { 240 };
    let reps = 3;
    let devices = 4;
    let arrays = 4;
    let trace_config = TraceConfig::new(seed)
        .with_requests(requests)
        .with_repeat_fraction(0.5)
        .with_accurate_fraction(0.03)
        .with_wide_conv_fraction(0.3);
    let trace = generate(&trace_config);
    let config = || {
        ServeConfig::new()
            .with_workers(4)
            .with_queue_capacity(64)
            .with_cache_capacity(8192)
            .with_arrays(arrays)
            .with_devices(devices)
            .with_backfill()
    };

    let mut untraced_s = Vec::with_capacity(reps);
    let mut traced_s = Vec::with_capacity(reps);
    let mut untraced_digest = 0u64;
    let mut traced_digest = 0u64;
    let mut export = None;
    // Alternate modes so drift (thermal, page cache) hits both evenly.
    for rep in 0..reps {
        let (wall, digest, _) = replay_once(config(), &trace);
        if rep == 0 {
            untraced_digest = digest;
        }
        assert_eq!(digest, untraced_digest, "untraced replay must be stable");
        untraced_s.push(wall);

        let (wall, digest, exported) = replay_once(config().with_tracing(), &trace);
        if rep == 0 {
            traced_digest = digest;
        }
        assert_eq!(digest, traced_digest, "traced replay must be stable");
        traced_s.push(wall);
        if export.is_none() {
            export = exported;
        }
    }
    assert_eq!(
        untraced_digest, traced_digest,
        "tracing must not change output digests"
    );

    let export = export.expect("traced run produced an export");
    let json = export.to_perfetto_json();
    let perfetto_events = validate_perfetto(&json)
        .unwrap_or_else(|e| panic!("exported Perfetto JSON failed the shape check: {e}"));
    let coverage: Vec<StageCheck> = REQUIRED
        .iter()
        .map(|&(stage, clock)| StageCheck {
            stage: stage.name(),
            clock: clock.name(),
            present: export.has_stage(stage, clock),
        })
        .collect();
    for check in &coverage {
        assert!(
            check.present,
            "stage {} missing from the {} clock domain",
            check.stage, check.clock
        );
    }

    let best = |xs: &[f64]| xs.iter().copied().fold(f64::INFINITY, f64::min);
    let overhead_frac = ((best(&traced_s) - best(&untraced_s)) / best(&untraced_s)).max(0.0);
    TraceOverheadReport {
        seed,
        requests,
        devices,
        arrays,
        reps,
        untraced_s,
        traced_s,
        overhead_frac,
        untraced_digest,
        traced_digest,
        trace_events: export.events.len(),
        trace_tracks: export.tracks.len(),
        dropped_events: export.dropped,
        perfetto_events,
        coverage,
    }
}

impl TraceOverheadReport {
    /// Machine-readable JSON summary (hand-rolled; the workspace has
    /// no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let secs = |xs: &[f64]| {
            xs.iter()
                .map(|x| format!("{x:.4}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut s = String::from("{\n  \"experiment\": \"trace_overhead\",\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"requests\": {},\n", self.requests));
        s.push_str(&format!("  \"devices\": {},\n", self.devices));
        s.push_str(&format!("  \"arrays\": {},\n", self.arrays));
        s.push_str(&format!("  \"reps\": {},\n", self.reps));
        s.push_str(&format!(
            "  \"untraced_s\": [{}],\n",
            secs(&self.untraced_s)
        ));
        s.push_str(&format!("  \"traced_s\": [{}],\n", secs(&self.traced_s)));
        s.push_str(&format!(
            "  \"overhead_frac\": {:.4},\n",
            self.overhead_frac
        ));
        s.push_str(&format!(
            "  \"overhead_under_5pct\": {},\n",
            self.overhead_frac < 0.05
        ));
        s.push_str(&format!(
            "  \"untraced_digest\": \"{:016x}\",\n",
            self.untraced_digest
        ));
        s.push_str(&format!(
            "  \"traced_digest\": \"{:016x}\",\n",
            self.traced_digest
        ));
        s.push_str(&format!("  \"digests_equal\": {},\n", self.digests_equal()));
        s.push_str(&format!("  \"trace_events\": {},\n", self.trace_events));
        s.push_str(&format!("  \"trace_tracks\": {},\n", self.trace_tracks));
        s.push_str(&format!("  \"dropped_events\": {},\n", self.dropped_events));
        s.push_str(&format!(
            "  \"perfetto_events\": {},\n",
            self.perfetto_events
        ));
        s.push_str("  \"stage_coverage\": [\n");
        for (i, c) in self.coverage.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"stage\": \"{}\", \"clock\": \"{}\", \"present\": {}}}{}\n",
                c.stage,
                c.clock,
                c.present,
                if i + 1 == self.coverage.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Human-readable markdown summary.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let best = |xs: &[f64]| xs.iter().copied().fold(f64::INFINITY, f64::min);
        let mut s = format!(
            "trace_overhead: {} requests on {} devices x {} arrays, \
             best-of-{}: untraced {:.3} s, traced {:.3} s, overhead {:.1}%, \
             digests equal: {}\n\n",
            self.requests,
            self.devices,
            self.arrays,
            self.reps,
            best(&self.untraced_s),
            best(&self.traced_s),
            self.overhead_frac * 100.0,
            self.digests_equal(),
        );
        s.push_str(&format!(
            "trace: {} events on {} tracks ({} dropped), {} pass the Perfetto shape check\n\n",
            self.trace_events, self.trace_tracks, self.dropped_events, self.perfetto_events
        ));
        s.push_str("| stage | clock | present |\n|---|---|---|\n");
        for c in &self.coverage {
            s.push_str(&format!("| {} | {} | {} |\n", c.stage, c.clock, c.present));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_replay_is_bit_identical_with_full_stage_coverage() {
        let report = run(42, true);
        assert!(report.digests_equal());
        assert!(report.full_coverage());
        assert_eq!(report.dropped_events, 0, "default ring must not wrap");
        assert!(report.trace_events > 0 && report.trace_tracks >= 2);
        assert!(report.perfetto_events > 0);
        // The <5% gate itself lives in the report binary where the
        // machine is quiet; here just sanity-check the measurement.
        assert!(report.untraced_s.iter().all(|&s| s > 0.0));
        assert!(report.overhead_frac.is_finite());
    }

    #[test]
    fn json_summary_is_well_formed_enough() {
        let report = run(7, true);
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"trace_overhead\""));
        assert!(json.contains("\"digests_equal\": true"));
        assert!(json.contains("\"stage_coverage\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
