//! §V-C energy evaluation with workload-dependent latency.

use tempus_arith::IntPrecision;
use tempus_hwmodel::SynthModel;
use tempus_profile::energy::{
    evaluate, evaluate_gated, evaluate_int4_worst_case, GatedEnergy, WorkloadEnergy,
};
use tempus_profile::table::Table;

use crate::experiments::fig7::Fig7;

/// The four energy comparisons the paper reports.
#[derive(Debug, Clone)]
pub struct EnergyReport {
    /// INT8 with MobileNetV2's profiled window.
    pub int8_mobilenet: WorkloadEnergy,
    /// INT8 with ResNeXt101's profiled window.
    pub int8_resnext: WorkloadEnergy,
    /// INT4 worst-case window.
    pub int4_worst: WorkloadEnergy,
    /// INT8 MobileNetV2 with silent-PE gating (the paper's §V-C
    /// refinement: "potential to reduce this gap by leveraging
    /// zero-value weights to disable the corresponding PE compute").
    pub int8_mobilenet_gated: GatedEnergy,
}

/// Evaluates energy from the Fig. 7 profiles. The gated variant uses
/// MobileNetV2's Table-I-implied silence (2.25% of 256 lanes).
#[must_use]
pub fn run(hw: &SynthModel, fig7: &Fig7) -> EnergyReport {
    EnergyReport {
        int8_mobilenet_gated: evaluate_gated(
            hw,
            "MobileNetV2 (gated)",
            IntPrecision::Int8,
            fig7.mobilenet.average_latency_cycles(),
            0.0225 * 256.0,
        ),
        int8_mobilenet: evaluate(
            hw,
            "MobileNetV2",
            IntPrecision::Int8,
            fig7.mobilenet.average_latency_cycles(),
        ),
        int8_resnext: evaluate(
            hw,
            "ResNeXt101",
            IntPrecision::Int8,
            fig7.resnext.average_latency_cycles(),
        ),
        int4_worst: evaluate_int4_worst_case(hw),
    }
}

/// Renders the energy table with the paper's values alongside.
#[must_use]
pub fn to_table(report: &EnergyReport) -> Table {
    let mut t = Table::new([
        "Case",
        "Window (cycles)",
        "Binary E (pJ)",
        "tub E (pJ)",
        "Gap",
        "Paper binary",
        "Paper tub",
    ]);
    let rows = [
        (&report.int8_mobilenet, "INT8 MobileNetV2", 15.0, 187.0),
        (&report.int8_resnext, "INT8 ResNeXt101", 15.0, 176.0),
        (&report.int4_worst, "INT4 worst-case", 7.48, 17.76),
    ];
    for (e, label, pb, pt) in rows {
        t.push_row([
            label.to_string(),
            format!("{:.1}", e.tub_cycles),
            format!("{:.2}", e.binary_energy_pj),
            format!("{:.2}", e.tub_energy_pj),
            format!("{:.1}x", e.energy_gap()),
            format!("{pb:.2}"),
            format!("{pt:.2}"),
        ]);
    }
    let g = &report.int8_mobilenet_gated;
    t.push_row([
        "INT8 MobileNetV2 + silent-PE gating".to_string(),
        format!("{:.1}", g.baseline.tub_cycles),
        format!("{:.2}", g.baseline.binary_energy_pj),
        format!("{:.2}", g.tub_energy_gated_pj),
        format!("{:.1}x", g.gated_energy_gap()),
        "-".to_string(),
        "(paper: 'overestimate')".to_string(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig7;

    #[test]
    fn energy_report_tracks_paper() {
        let hw = SynthModel::nangate45();
        let profiles = fig7::run(5, 600_000);
        let report = run(&hw, &profiles);
        // Gap shrinks INT8 -> INT4 (11.7x -> 2.3x in the paper).
        assert!(report.int8_mobilenet.energy_gap() > 8.0);
        assert!(report.int4_worst.energy_gap() < 3.0);
        let t = to_table(&report);
        assert_eq!(t.len(), 4);
        assert!(
            report.int8_mobilenet_gated.tub_energy_gated_pj < report.int8_mobilenet.tub_energy_pj
        );
    }
}
