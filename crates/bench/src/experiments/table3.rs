//! Table III + Fig. 6 headline: post-place-and-route results for the
//! INT4 16×4 CMAC and PCU units.

use tempus_hwmodel::{paper, Family, PnrModel};
use tempus_profile::table::Table;

/// One Table III row.
#[derive(Debug, Clone, PartialEq)]
pub struct PnrRow {
    /// Design name (CMAC Core / Tempus Core, as the paper labels them).
    pub design: String,
    /// Die area (mm²).
    pub area_mm2: f64,
    /// Total power (mW).
    pub power_mw: f64,
    /// Paper's values for comparison.
    pub paper: (f64, f64),
}

/// Runs the P&R comparison.
#[must_use]
pub fn run(pnr: &PnrModel) -> Vec<PnrRow> {
    let labels = [(Family::Binary, "CMAC Core"), (Family::Tub, "Tempus Core")];
    labels
        .iter()
        .map(|&(family, label)| {
            let r = pnr.table_iii(family);
            let anchor = paper::TABLE_III
                .iter()
                .find(|a| a.family == family)
                .expect("anchor exists");
            PnrRow {
                design: label.to_string(),
                area_mm2: r.die_area_mm2,
                power_mw: r.total_power_mw,
                paper: (anchor.area_mm2, anchor.power_mw),
            }
        })
        .collect()
}

/// Renders the Table III comparison.
#[must_use]
pub fn to_table(rows: &[PnrRow]) -> Table {
    let mut t = Table::new([
        "Design",
        "Total area (mm2)",
        "Total power (mW)",
        "Paper area",
        "Paper power",
    ]);
    for r in rows {
        t.push_row([
            r.design.clone(),
            format!("{:.4}", r.area_mm2),
            format!("{:.4}", r.power_mw),
            format!("{:.4}", r.paper.0),
            format!("{:.4}", r.paper.1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table_iii() {
        let rows = run(&PnrModel::default());
        for r in &rows {
            assert!(
                (r.area_mm2 - r.paper.0).abs() / r.paper.0 < 0.02,
                "{}: area {:.4} vs {:.4}",
                r.design,
                r.area_mm2,
                r.paper.0
            );
            assert!(
                (r.power_mw - r.paper.1).abs() / r.paper.1 < 0.02,
                "{}: power {:.3} vs {:.3}",
                r.design,
                r.power_mw,
                r.paper.1
            );
        }
    }

    #[test]
    fn headline_improvements_hold() {
        let rows = run(&PnrModel::default());
        let area_red = (1.0 - rows[1].area_mm2 / rows[0].area_mm2) * 100.0;
        let power_red = (1.0 - rows[1].power_mw / rows[0].power_mw) * 100.0;
        assert!((area_red - 53.0).abs() < 2.0);
        assert!((power_red - 44.0).abs() < 2.0);
    }
}
