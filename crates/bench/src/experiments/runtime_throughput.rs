//! Runtime throughput: jobs/sec per backend and worker-count scaling
//! for the batched inference engine, with a machine-readable JSON
//! summary (the `BENCH_runtime_throughput.json` trajectory).

use std::time::Instant;

use tempus_arith::IntPrecision;
use tempus_core::gemm::Matrix;
use tempus_core::TempusConfig;
use tempus_models::netbuild;
use tempus_models::zoo::Model;
use tempus_models::QuantizedModel;
use tempus_nvdla::config::NvdlaConfig;
use tempus_nvdla::conv::ConvParams;
use tempus_nvdla::cube::{DataCube, KernelSet};
use tempus_runtime::{BackendKind, EngineConfig, InferenceEngine, Job};

/// One measured configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRow {
    /// Backend measured.
    pub backend: &'static str,
    /// Worker threads.
    pub workers: usize,
    /// Jobs in the batch.
    pub jobs: u64,
    /// Batch wall-clock in milliseconds.
    pub wall_ms: f64,
    /// Host throughput in jobs per second.
    pub jobs_per_sec: f64,
    /// Modelled datapath cycles over the batch.
    pub sim_cycles: u64,
    /// Batch output digest (must agree across backends).
    pub digest: u64,
}

/// The full experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    /// One row per (backend, worker-count) measured.
    pub rows: Vec<ThroughputRow>,
    /// Functional-vs-cycle-accurate-Tempus wall-clock speedup at the
    /// reference worker count.
    pub functional_speedup: f64,
    /// Reference worker count used for the backend comparison.
    pub reference_workers: usize,
}

/// Builds the standard mixed batch: convolutions across several
/// shapes, GEMMs across tuGEMM-style shapes, and model-zoo network
/// prefixes. Deterministic in `seed`.
#[must_use]
pub fn mixed_batch(seed: u64, jobs: usize) -> Vec<Job> {
    let mut out = Vec::with_capacity(jobs);
    let mut id = 0u64;
    while out.len() < jobs {
        let i = id;
        let salt = seed.wrapping_mul(31).wrapping_add(i) as i32;
        match id % 5 {
            // Small conv layers in a few shapes.
            0 | 3 => {
                let w = 4 + (i % 3) as usize;
                let c = 4 + 4 * (i % 2) as usize;
                let features = DataCube::from_fn(w, w, c, move |x, y, ch| {
                    ((x as i32 * 31 + y as i32 * 17 + ch as i32 * 7 + salt) % 255) - 127
                });
                let kernels = KernelSet::from_fn(4, 3, 3, c, move |k, r, s, ch| {
                    ((k as i32 * 13 + r as i32 * 5 + s as i32 * 3 + ch as i32 * 11 + salt) % 255)
                        - 127
                });
                out.push(Job::conv(
                    id,
                    format!("conv-{id}"),
                    features,
                    kernels,
                    ConvParams::valid(),
                ));
            }
            // tuGEMM-style GEMM shapes.
            1 | 4 => {
                let m = 6 + (i % 4) as usize;
                let n = 5 + (i % 3) as usize;
                let a = Matrix::from_fn(m, n, move |r, c| {
                    ((r as i32 * 31 + c as i32 * 17 + salt) % 255) - 127
                });
                let b = Matrix::from_fn(n, 6, move |r, c| {
                    ((r as i32 * 13 + c as i32 * 41 + salt) % 255) - 127
                });
                out.push(Job::gemm(id, format!("gemm-{id}"), a, b));
            }
            // Model-zoo network prefixes (one layer, real quantized
            // weight statistics).
            _ => {
                let model = if i.is_multiple_of(2) {
                    Model::ResNet18
                } else {
                    Model::GoogleNet
                };
                let quantized =
                    QuantizedModel::generate_limited(model, IntPrecision::Int8, seed + i, 200_000);
                let layers = netbuild::network_prefix(&quantized, 1, 64);
                if let Some(channels) = netbuild::input_channels(&layers) {
                    let input = netbuild::input_cube(5, 5, channels, IntPrecision::Int8, seed + i);
                    out.push(Job::network(id, format!("net-{id}"), input, layers));
                }
            }
        }
        id += 1;
    }
    out
}

/// Runs the experiment: every backend at `reference_workers`, plus a
/// worker-count scaling curve on the fast functional backend.
///
/// # Panics
///
/// Panics if a batch fails to execute or backends disagree on outputs
/// — both are contract violations worth failing loudly on.
#[must_use]
pub fn run(seed: u64, jobs: usize, worker_counts: &[usize]) -> ThroughputReport {
    let batch = mixed_batch(seed, jobs);
    let reference_workers = 4;
    let mut rows = Vec::new();

    let measure = |kind: BackendKind, workers: usize| -> ThroughputRow {
        let engine = InferenceEngine::new(
            EngineConfig::new(kind)
                .with_workers(workers)
                .with_seed(seed)
                .with_cores(TempusConfig::nv_small(), NvdlaConfig::nv_small()),
        )
        .expect("engine config valid");
        let start = Instant::now();
        let report = engine.run_batch(&batch).expect("batch executes");
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        ThroughputRow {
            backend: kind.name(),
            workers,
            jobs: report.aggregate.jobs,
            wall_ms,
            jobs_per_sec: report.aggregate.jobs_per_sec,
            sim_cycles: report.aggregate.total_sim_cycles,
            digest: report.output_digest(),
        }
    };

    // Backend comparison at the reference worker count.
    for kind in BackendKind::ALL {
        rows.push(measure(kind, reference_workers));
    }
    let digests: Vec<u64> = rows.iter().map(|r| r.digest).collect();
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "backends disagree on batch outputs"
    );

    // Worker scaling curve on the functional backend.
    for &workers in worker_counts {
        if workers != reference_workers {
            rows.push(measure(BackendKind::FastFunctional, workers));
        }
    }

    let tempus_ms = rows
        .iter()
        .find(|r| r.backend == BackendKind::TempusCycleAccurate.name())
        .map_or(f64::NAN, |r| r.wall_ms);
    let functional_ms = rows
        .iter()
        .find(|r| r.backend == BackendKind::FastFunctional.name() && r.workers == reference_workers)
        .map_or(f64::NAN, |r| r.wall_ms);

    ThroughputReport {
        rows,
        functional_speedup: tempus_ms / functional_ms,
        reference_workers,
    }
}

impl ThroughputReport {
    /// Machine-readable JSON summary (hand-rolled; the workspace has
    /// no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"experiment\": \"runtime_throughput\",\n");
        s.push_str(&format!(
            "  \"reference_workers\": {},\n",
            self.reference_workers
        ));
        s.push_str(&format!(
            "  \"functional_speedup_vs_cycle_accurate\": {:.2},\n",
            self.functional_speedup
        ));
        s.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"backend\": \"{}\", \"workers\": {}, \"jobs\": {}, \
                 \"wall_ms\": {:.3}, \"jobs_per_sec\": {:.1}, \"sim_cycles\": {}, \
                 \"digest\": \"{:016x}\"}}{}\n",
                r.backend,
                r.workers,
                r.jobs,
                r.wall_ms,
                r.jobs_per_sec,
                r.sim_cycles,
                r.digest,
                if i + 1 == self.rows.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Human-readable markdown table.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut s = String::from("| backend | workers | jobs | wall ms | jobs/s | sim cycles |\n");
        s.push_str("|---|---|---|---|---|---|\n");
        for r in &self.rows {
            s.push_str(&format!(
                "| {} | {} | {} | {:.2} | {:.0} | {} |\n",
                r.backend, r.workers, r.jobs, r.wall_ms, r.jobs_per_sec, r.sim_cycles
            ));
        }
        s.push_str(&format!(
            "\nfunctional speedup vs cycle-accurate tempus at {} workers: {:.1}x\n",
            self.reference_workers, self.functional_speedup
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_is_deterministic_and_mixed() {
        let a = mixed_batch(3, 40);
        let b = mixed_batch(3, 40);
        assert_eq!(a.len(), 40);
        assert_eq!(a.len(), b.len());
        let kinds: Vec<&str> = a.iter().map(|j| j.payload.kind()).collect();
        assert!(kinds.contains(&"conv"));
        assert!(kinds.contains(&"gemm"));
        assert!(kinds.contains(&"network"));
    }

    #[test]
    fn functional_backend_outpaces_cycle_accurate() {
        // The acceptance bar for the runtime: ≥100 mixed jobs on ≥4
        // workers, identical outputs, and a clear wall-clock win for
        // the functional backend over cycle-accurate Tempus. The
        // window-batched simulation core closed most of the historic
        // ~500× gap (cycle-accurate is now allocation-free and
        // window-parallel, ~8× slower than closed-form on mixed
        // batches); 3× stays robust under CI noise while still
        // proving the closed-form path is the cheaper fidelity.
        let report = run(42, 100, &[4]);
        assert!(report.rows.iter().all(|r| r.jobs >= 100));
        assert!(
            report.functional_speedup >= 3.0,
            "speedup {:.1}x",
            report.functional_speedup
        );
    }

    #[test]
    fn json_summary_is_well_formed_enough() {
        let report = run(7, 20, &[1, 4]);
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"runtime_throughput\""));
        assert!(json.contains("\"jobs_per_sec\""));
        assert_eq!(json.matches("{\"backend\"").count(), report.rows.len());
        // Balanced braces.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
