//! Energy-latency Pareto co-scheduling: per-array DVFS domains,
//! power-capped admission and speculative answer-now-verify-later
//! serving, gated in `results/BENCH_dvfs_pareto.json`.
//!
//! Four sections:
//!
//! * **identity** — with the governor, the power cap and speculation
//!   all off, the serving stack replays a seeded trace bit-identically
//!   (equal output digests across two fresh services) with zero
//!   frequency changes and zero residency above the nominal ladder
//!   level — the "DVFS off means PR-state-quo" acceptance gate;
//! * **power** — a closed-form fleet stream under a cap at 60% of the
//!   uncapped peak power: admission walks the width × ladder grid and
//!   commits the lowest-energy deadline-feasible level, cutting
//!   planned energy ≥ 25% at ≤ 1.5× latency inflation with zero
//!   rejections;
//! * **speculative** — answer-now-verify-later serving answers
//!   accurate-fidelity requests from the bit-identical functional
//!   backend immediately, cutting accurate-class p50 ≥ 3× with zero
//!   digest mismatches and zero lost requests;
//! * **governor** — the occupancy-driven governor downshifts
//!   idle-heavy arrays on a sparse open-loop stream (frequency
//!   changes and sub-nominal residency both non-zero).

use std::collections::BTreeMap;
use std::time::Duration;

use tempus_core::shard::BudgetPlan;
use tempus_fleet::{FleetConfig, FleetOutcome, FleetScheduler};
use tempus_models::traffic::{generate, TraceConfig, TraceRequest};
use tempus_nvdla::cube::fnv1a;
use tempus_serve::{
    percentile, Fidelity, GovernorPolicy, Request, ResponseOutcome, ServeConfig, ServeStats,
    StreamingService,
};

/// Nanoseconds per nominal device cycle (250 MHz).
const PERIOD_NS: f64 = 4.0;

/// Section A: bit-identity with every DVFS feature off.
#[derive(Debug, Clone, PartialEq)]
pub struct IdentitySection {
    /// Requests replayed per run.
    pub requests: usize,
    /// Combined `(job id, output digest)` digest of the first run.
    pub digest_a: u64,
    /// Same digest from a second fresh service over the same trace.
    pub digest_b: u64,
    /// Governor frequency transitions across both runs (must be 0).
    pub freq_changes: u64,
    /// Device array-cycles held above ladder level 0 across both runs
    /// (must be 0 — everything runs at the nominal clock).
    pub upper_residency_cycles: u64,
}

/// One (frequency level, latency, energy) point of the plan's Pareto
/// frontier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoRow {
    /// DVFS ladder level.
    pub level: u8,
    /// Critical-path latency at the level, nominal device cycles.
    pub latency_cycles: u64,
    /// Total (dynamic + static) energy at the level, pJ.
    pub energy_pj: u64,
    /// Average power over the placement, mW.
    pub avg_power_mw: f64,
}

/// Section B: power-capped admission on a closed-form fleet stream.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSection {
    /// Jobs admitted per run.
    pub jobs: usize,
    /// The fleet-wide power cap, mW (60% of the uncapped peak).
    pub cap_mw: f64,
    /// Peak concurrent power of the uncapped run, mW.
    pub uncapped_peak_power_mw: f64,
    /// Peak concurrent power of the capped run, mW.
    pub capped_peak_power_mw: f64,
    /// Planned energy of the uncapped run, pJ.
    pub uncapped_energy_pj: u64,
    /// Planned energy of the capped run, pJ.
    pub capped_energy_pj: u64,
    /// Fractional energy saving of the capped run (gate: ≥ 0.25).
    pub energy_drop: f64,
    /// Per-job latency of the uncapped run, device cycles.
    pub uncapped_latency_cycles: u64,
    /// Per-job latency of the capped run, device cycles.
    pub capped_latency_cycles: u64,
    /// Capped-over-uncapped latency multiple (gate: ≤ 1.5).
    pub latency_inflation: f64,
    /// The ladder level every capped placement committed at.
    pub chosen_level: u8,
    /// Admissions refused in the capped run (gate: 0).
    pub rejections: u64,
    /// The plan's full (latency, energy) Pareto frontier at width 1.
    pub frontier: Vec<ParetoRow>,
}

/// Section C: answer-now-verify-later serving.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeculativeSection {
    /// Requests replayed per pass.
    pub requests: usize,
    /// Accurate-fidelity requests in the trace.
    pub accurate: u64,
    /// `true` when baseline and speculative output digests agree on
    /// every job (the answer the client heard is bit-identical to the
    /// accurate execution's).
    pub digests_equal: bool,
    /// Baseline accurate-class median latency, ns.
    pub baseline_p50_ns: u64,
    /// Speculative accurate-class median latency, ns.
    pub speculative_p50_ns: u64,
    /// Baseline-over-speculative p50 multiple (gate: ≥ 3).
    pub p50_speedup: f64,
    /// Requests the client heard answered speculatively.
    pub answers: u64,
    /// Closed answer/verify rendezvous whose digests agreed.
    pub verified: u64,
    /// Closed rendezvous whose digests disagreed (gate: 0).
    pub mismatches: u64,
    /// Requests lost across both passes (gate: 0).
    pub failed: u64,
}

/// Section D: the occupancy-driven governor on a sparse stream.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorSection {
    /// Jobs admitted.
    pub jobs: usize,
    /// Frequency transitions the governor committed (gate: ≥ 1).
    pub freq_changes: u64,
    /// Array-cycles held below the nominal clock (gate: > 0).
    pub downshifted_residency_cycles: u64,
}

/// The full experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsParetoReport {
    /// Trace seed.
    pub seed: u64,
    /// Section A.
    pub identity: IdentitySection,
    /// Section B.
    pub power: PowerSection,
    /// Section C.
    pub speculative: SpeculativeSection,
    /// Section D.
    pub governor: GovernorSection,
}

/// Replays `trace` closed-loop (submit as fast as backpressure
/// allows) through a fresh service, returning the combined output
/// digest, the accurate-class latencies (ns) and the post-shutdown
/// stats.
fn replay(config: ServeConfig, trace: &[TraceRequest]) -> (u64, Vec<u64>, ServeStats) {
    let service = StreamingService::start(config).expect("service starts");
    let mut digests: BTreeMap<u64, u64> = BTreeMap::new();
    let mut accurate_ns: Vec<u64> = Vec::new();
    let mut outstanding = 0usize;
    let consume = |response: tempus_serve::Response,
                   digests: &mut BTreeMap<u64, u64>,
                   accurate_ns: &mut Vec<u64>| {
        match response.outcome {
            ResponseOutcome::Done(result) => {
                digests.insert(response.job_id, result.output.digest());
                if response.class.fidelity == Fidelity::Accurate {
                    accurate_ns.push(response.total_ns);
                }
            }
            ResponseOutcome::Rejected(reason) => panic!("request rejected: {reason:?}"),
            ResponseOutcome::Failed(error) => panic!("request failed: {error}"),
        }
    };
    for t in trace {
        service
            .submit(Request::from_trace(t))
            .expect("service accepts (blocking submit)");
        outstanding += 1;
        while let Some(response) = service.recv_response(Duration::ZERO) {
            outstanding -= 1;
            consume(response, &mut digests, &mut accurate_ns);
        }
    }
    while outstanding > 0 {
        let response = service
            .recv_response(Duration::from_secs(120))
            .expect("responses drain");
        outstanding -= 1;
        consume(response, &mut digests, &mut accurate_ns);
    }
    let (stats, leftover) = service.shutdown();
    assert!(leftover.is_empty(), "every response was drained");
    let digest = fnv1a(digests.iter().flat_map(|(&id, &d)| [id, d]));
    (digest, accurate_ns, stats)
}

/// Section A: two fresh DVFS-default services over the same trace.
fn run_identity(seed: u64, requests: usize) -> IdentitySection {
    let trace = generate(
        &TraceConfig::new(seed)
            .with_requests(requests)
            .with_repeat_fraction(0.5)
            .with_accurate_fraction(0.03),
    );
    let config = || {
        ServeConfig::new()
            .with_workers(4)
            .with_arrays(4)
            .with_co_scheduling()
            .with_queue_capacity(64)
    };
    let (digest_a, _, stats_a) = replay(config(), &trace);
    let (digest_b, _, stats_b) = replay(config(), &trace);
    let upper = |s: &ServeStats| s.device.level_residency[1..].iter().copied().sum::<u64>();
    IdentitySection {
        requests,
        digest_a,
        digest_b,
        freq_changes: stats_a.device.freq_changes + stats_b.device.freq_changes,
        upper_residency_cycles: upper(&stats_a) + upper(&stats_b),
    }
}

/// The closed-form plan both power runs admit: 1000 critical-path
/// cycles with a calibrated 97 nJ dynamic / 3 nJ static energy split
/// — 100 nJ over 4 µs, a 25 mW nominal operating point.
fn energy_plan() -> BudgetPlan {
    let mut plan = BudgetPlan::single(1000);
    plan.widths[0].dynamic_energy_pj = 97_000;
    plan.widths[0].static_energy_pj = 3_000;
    plan
}

/// Section B: the same sparse stream uncapped, then under a cap at
/// 60% of the uncapped peak with a 1.5× deadline.
fn run_power(jobs: usize) -> PowerSection {
    let plan = energy_plan();
    let spacing = 2_500u64; // > any stretched duration: no overlap

    let mut uncapped = FleetScheduler::new(FleetConfig::new(1, 1));
    let mut uncapped_latency = 0u64;
    for i in 0..jobs {
        match uncapped.admit_at(&plan, None, i as u64 * spacing) {
            FleetOutcome::Placed(p) => uncapped_latency = uncapped_latency.max(p.latency_cycles()),
            FleetOutcome::Rejected(miss) => panic!("uncapped admission rejected: {miss:?}"),
        }
    }
    let uncapped_summary = uncapped.summary();

    let cap_mw = uncapped_summary.peak_power_mw * 0.6;
    let deadline = uncapped_latency * 3 / 2;
    let mut capped = FleetScheduler::new(FleetConfig::new(1, 1).with_power_cap(cap_mw));
    let mut capped_latency = 0u64;
    let mut chosen_level = 0u8;
    for i in 0..jobs {
        match capped.admit_at(&plan, Some(deadline), i as u64 * spacing) {
            FleetOutcome::Placed(p) => {
                capped_latency = capped_latency.max(p.latency_cycles());
                chosen_level = chosen_level.max(p.placement.freq_level);
            }
            FleetOutcome::Rejected(miss) => panic!("capped admission rejected: {miss:?}"),
        }
    }
    let capped_summary = capped.summary();

    let frontier = plan
        .pareto_at(1)
        .into_iter()
        .map(|p| ParetoRow {
            level: p.level,
            latency_cycles: p.latency_cycles,
            energy_pj: p.energy_pj,
            avg_power_mw: p.energy_pj as f64 / (p.latency_cycles as f64 * PERIOD_NS),
        })
        .collect();

    PowerSection {
        jobs,
        cap_mw,
        uncapped_peak_power_mw: uncapped_summary.peak_power_mw,
        capped_peak_power_mw: capped_summary.peak_power_mw,
        uncapped_energy_pj: uncapped_summary.planned_energy_pj,
        capped_energy_pj: capped_summary.planned_energy_pj,
        energy_drop: 1.0
            - capped_summary.planned_energy_pj as f64
                / uncapped_summary.planned_energy_pj.max(1) as f64,
        uncapped_latency_cycles: uncapped_latency,
        capped_latency_cycles: capped_latency,
        latency_inflation: capped_latency as f64 / uncapped_latency.max(1) as f64,
        chosen_level,
        rejections: capped_summary.rejections + uncapped_summary.rejections,
        frontier,
    }
}

/// Section C: the same accurate-heavy trace through a baseline and a
/// speculative service.
fn run_speculative(seed: u64, requests: usize) -> SpeculativeSection {
    // An interactive accurate burst: every request wants the
    // cycle-accurate answer for a whole-network payload — the shape
    // speculation exists for. Closed-loop, the baseline serializes
    // them behind the accurate admission cap (each request queues for
    // every simulation in front of it), while the speculative service
    // answers each request from the functional backend the moment it
    // is admitted or deferred. Network payloads only: conv/GEMM
    // micro-jobs finish in the same wall-clock band on both backends
    // and would only add noise to the p50 comparison.
    let mut trace_config = TraceConfig::new(seed ^ 0x5bec)
        .with_requests(requests)
        .with_repeat_fraction(0.0)
        .with_accurate_fraction(1.0);
    trace_config.conv_weight = 0.0;
    trace_config.gemm_weight = 0.0;
    trace_config.network_weight = 1.0;
    let trace = generate(&trace_config);
    let config = || {
        ServeConfig::new()
            .with_workers(4)
            .with_queue_capacity(64)
            .with_admission(1, 64)
            .with_drain_timeout(Duration::from_secs(120))
    };
    let (base_digest, base_accurate, base_stats) = replay(config(), &trace);
    let (spec_digest, spec_accurate, spec_stats) = replay(config().with_speculative(), &trace);

    let mut base_sorted = base_accurate;
    base_sorted.sort_unstable();
    let mut spec_sorted = spec_accurate;
    spec_sorted.sort_unstable();
    let baseline_p50_ns = percentile(&base_sorted, 50.0);
    let speculative_p50_ns = percentile(&spec_sorted, 50.0);

    SpeculativeSection {
        requests,
        accurate: base_sorted.len() as u64,
        digests_equal: base_digest == spec_digest,
        baseline_p50_ns,
        speculative_p50_ns,
        p50_speedup: baseline_p50_ns as f64 / speculative_p50_ns.max(1) as f64,
        answers: spec_stats.speculative_answers,
        verified: spec_stats.speculative_verified,
        mismatches: spec_stats.speculative_mismatches,
        failed: base_stats.failed + spec_stats.failed,
    }
}

/// Section D: a sparse open-loop single-array stream under the edge
/// governor — the arrays idle ~90% of the time, so the governor walks
/// them down the ladder.
fn run_governor(jobs: usize) -> GovernorSection {
    let mut fleet = FleetScheduler::new(
        FleetConfig::new(1, 1).with_freq_governor(GovernorPolicy::edge_default()),
    );
    let plan = BudgetPlan::single(100);
    for i in 0..jobs {
        match fleet.admit_at(&plan, None, i as u64 * 1_000) {
            FleetOutcome::Placed(_) => {}
            FleetOutcome::Rejected(miss) => panic!("governor stream rejected: {miss:?}"),
        }
    }
    let combined = fleet.summary().combined();
    GovernorSection {
        jobs,
        freq_changes: combined.freq_changes,
        downshifted_residency_cycles: combined.level_residency[1..].iter().copied().sum(),
    }
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics when a request is rejected or fails, or when an admission
/// the gates require is refused — all contract violations.
#[must_use]
pub fn run(seed: u64, quick: bool) -> DvfsParetoReport {
    let identity = run_identity(seed, if quick { 30 } else { 80 });
    let power = run_power(if quick { 6 } else { 12 });
    let speculative = run_speculative(seed, if quick { 24 } else { 60 });
    let governor = run_governor(if quick { 24 } else { 48 });
    DvfsParetoReport {
        seed,
        identity,
        power,
        speculative,
        governor,
    }
}

impl DvfsParetoReport {
    /// Gate (a): DVFS defaults replay bit-identically with zero
    /// frequency activity.
    #[must_use]
    pub fn identity_holds(&self) -> bool {
        self.identity.digest_a == self.identity.digest_b
            && self.identity.freq_changes == 0
            && self.identity.upper_residency_cycles == 0
    }

    /// Gate (b): the 60% power cap cuts planned energy ≥ 25% at
    /// ≤ 1.5× latency inflation with zero rejections, and the capped
    /// peak actually sits under the cap.
    #[must_use]
    pub fn power_gate_holds(&self) -> bool {
        self.power.energy_drop >= 0.25
            && self.power.latency_inflation <= 1.5 + 1e-9
            && self.power.rejections == 0
            && self.power.capped_peak_power_mw <= self.power.cap_mw + 1e-9
    }

    /// Gate (c): speculation cuts accurate-class p50 ≥ 3× at equal
    /// digests, with every closed rendezvous agreeing and zero lost
    /// requests.
    #[must_use]
    pub fn speculative_gate_holds(&self) -> bool {
        self.speculative.p50_speedup >= 3.0
            && self.speculative.digests_equal
            && self.speculative.mismatches == 0
            && self.speculative.answers > 0
            && self.speculative.verified >= self.speculative.answers
            && self.speculative.failed == 0
    }

    /// The governor demonstrably ran: transitions committed and
    /// sub-nominal residency accrued.
    #[must_use]
    pub fn governor_active(&self) -> bool {
        self.governor.freq_changes >= 1 && self.governor.downshifted_residency_cycles > 0
    }

    /// Machine-readable JSON summary (hand-rolled; the workspace has
    /// no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut frontier = String::new();
        for (i, r) in self.power.frontier.iter().enumerate() {
            frontier.push_str(&format!(
                "      {{\"level\": {}, \"latency_cycles\": {}, \"energy_pj\": {}, \
                 \"avg_power_mw\": {:.2}}}{}\n",
                r.level,
                r.latency_cycles,
                r.energy_pj,
                r.avg_power_mw,
                if i + 1 == self.power.frontier.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        format!(
            "{{\n  \"experiment\": \"dvfs_pareto\",\n  \"seed\": {},\n  \
             \"identity\": {{\"requests\": {}, \"digest\": \"{:016x}\", \
             \"digests_equal\": {}, \"freq_changes\": {}, \"upper_residency_cycles\": {}}},\n  \
             \"power\": {{\"jobs\": {}, \"cap_mw\": {:.2}, \"uncapped_peak_power_mw\": {:.2}, \
             \"capped_peak_power_mw\": {:.2}, \"uncapped_energy_pj\": {}, \
             \"capped_energy_pj\": {}, \"energy_drop\": {:.4}, \
             \"uncapped_latency_cycles\": {}, \"capped_latency_cycles\": {}, \
             \"latency_inflation\": {:.4}, \"chosen_level\": {}, \"rejections\": {},\n    \
             \"frontier\": [\n{}    ]}},\n  \
             \"speculative\": {{\"requests\": {}, \"accurate\": {}, \"digests_equal\": {}, \
             \"baseline_p50_ns\": {}, \"speculative_p50_ns\": {}, \"p50_speedup\": {:.2}, \
             \"answers\": {}, \"verified\": {}, \"mismatches\": {}, \"failed\": {}}},\n  \
             \"governor\": {{\"jobs\": {}, \"freq_changes\": {}, \
             \"downshifted_residency_cycles\": {}}},\n  \
             \"gates\": {{\"identity\": {}, \"power\": {}, \"speculative\": {}, \
             \"governor\": {}}}\n}}\n",
            self.seed,
            self.identity.requests,
            self.identity.digest_a,
            self.identity.digest_a == self.identity.digest_b,
            self.identity.freq_changes,
            self.identity.upper_residency_cycles,
            self.power.jobs,
            self.power.cap_mw,
            self.power.uncapped_peak_power_mw,
            self.power.capped_peak_power_mw,
            self.power.uncapped_energy_pj,
            self.power.capped_energy_pj,
            self.power.energy_drop,
            self.power.uncapped_latency_cycles,
            self.power.capped_latency_cycles,
            self.power.latency_inflation,
            self.power.chosen_level,
            self.power.rejections,
            frontier,
            self.speculative.requests,
            self.speculative.accurate,
            self.speculative.digests_equal,
            self.speculative.baseline_p50_ns,
            self.speculative.speculative_p50_ns,
            self.speculative.p50_speedup,
            self.speculative.answers,
            self.speculative.verified,
            self.speculative.mismatches,
            self.speculative.failed,
            self.governor.jobs,
            self.governor.freq_changes,
            self.governor.downshifted_residency_cycles,
            self.identity_holds(),
            self.power_gate_holds(),
            self.speculative_gate_holds(),
            self.governor_active(),
        )
    }

    /// Human-readable markdown summary.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut s = format!(
            "dvfs_pareto: identity {}, power cap {:.1} mW saves {:.0}% energy at \
             {:.2}x latency (level {}), speculative p50 {:.1}x faster, governor \
             {} freq changes\n\n",
            if self.identity_holds() {
                "holds"
            } else {
                "VIOLATED"
            },
            self.power.cap_mw,
            self.power.energy_drop * 100.0,
            self.power.latency_inflation,
            self.power.chosen_level,
            self.speculative.p50_speedup,
            self.governor.freq_changes,
        );
        s.push_str("| level | latency cyc | energy pJ | avg mW |\n|---|---|---|---|\n");
        for r in &self.power.frontier {
            s.push_str(&format!(
                "| L{} | {} | {} | {:.2} |\n",
                r.level, r.latency_cycles, r.energy_pj, r.avg_power_mw
            ));
        }
        s.push_str(&format!(
            "\nspeculative: {} accurate requests, baseline p50 {:.3} ms vs \
             speculative {:.3} ms, {} answers / {} verified / {} mismatches\n\
             governor: {} sparse jobs, {} downshifted array-cycles\n",
            self.speculative.accurate,
            self.speculative.baseline_p50_ns as f64 * 1e-6,
            self.speculative.speculative_p50_ns as f64 * 1e-6,
            self.speculative.answers,
            self.speculative.verified,
            self.speculative.mismatches,
            self.governor.jobs,
            self.governor.downshifted_residency_cycles,
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_every_gate() {
        let report = run(42, true);
        assert!(report.identity_holds(), "identity: {:?}", report.identity);
        assert!(report.power_gate_holds(), "power: {:?}", report.power);
        assert!(
            report.speculative_gate_holds(),
            "speculative: {:?}",
            report.speculative
        );
        assert!(report.governor_active(), "governor: {:?}", report.governor);
        // The closed-form arithmetic is pinned: the 15 mW cap forces
        // L2 (3/2 stretch, 0.8 voltage) — 65.68 nJ per job at 1500
        // cycles against 100 nJ at 1000.
        assert_eq!(report.power.chosen_level, 2);
        assert_eq!(
            report.power.capped_energy_pj,
            65_680 * report.power.jobs as u64
        );
    }

    #[test]
    fn json_summary_is_well_formed_enough() {
        let report = run(42, true);
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"dvfs_pareto\""));
        assert!(json.contains("\"frontier\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"gates\""));
    }
}
