//! Fault-recovery gate: replay the same seeded trace through the
//! serving stack fault-free and under deterministic chaos injection,
//! proving that (a) no admitted request is ever lost at fault rates
//! up to 10% — every one is answered `Done`, bit-identical to the
//! fault-free digests (retried or degraded answers included), (b) a
//! persistent device outage is quarantined, probed and revived with
//! its stranded work re-routed and zero ledger grants orphaned, and
//! (c) tail-latency inflation under recovery stays bounded
//! (`results/BENCH_chaos_recovery.json`).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use tempus_models::traffic::{generate, TraceConfig, TraceRequest};
use tempus_nvdla::cube::fnv1a;
use tempus_serve::{
    percentile, CacheOutcome, FaultPlan, Request, ResponseOutcome, ServeConfig, ServeStats,
    StreamingService,
};

/// Watchdog base deadline used by every chaos scenario: small enough
/// that injected stalls recover in milliseconds, large enough that no
/// healthy functional execution is ever cancelled.
const WATCHDOG_MS: u64 = 10;

/// One serving pass under one fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosScenario {
    /// Scenario label (`fault-free`, `rate-5pct`, ...).
    pub label: String,
    /// Injected fault rate (fraction of eligible executions).
    pub fault_rate: f64,
    /// Requests submitted.
    pub submitted: usize,
    /// Responses answered `Done`.
    pub done: u64,
    /// Responses answered `Failed` (must be 0 — degrade, don't drop).
    pub failed: u64,
    /// Responses answered `Rejected` (must be 0 — no deadlines here).
    pub rejected: u64,
    /// Submitted requests that never produced a response.
    pub lost: u64,
    /// Execution attempts retried after an infrastructure fault.
    pub retries: u64,
    /// Requests answered by the degrade-don't-drop fallback.
    pub degraded: u64,
    /// Fleet circuit-breaker quarantines.
    pub quarantines: u64,
    /// Deterministic revival probes sent to quarantined devices.
    pub probes: u64,
    /// Quarantined devices revived by a healthy probe.
    pub revivals: u64,
    /// Ledger grants rolled back from failed placements.
    pub rollbacks: u64,
    /// Live ledger placements at shutdown (must equal the cold
    /// executions: one surviving grant per successful execution,
    /// every failed attempt's grant rolled back — no orphans).
    pub live_placements: u64,
    /// Cold executions (`Done` answers served as cache misses) — the
    /// expected live grants.
    pub cold_executions: u64,
    /// Combined digest over every `Done` answer (job id + output).
    pub digest: u64,
    /// End-to-end p99 latency over every answered request, ms.
    pub p99_ms: f64,
    /// Wall seconds for the whole pass.
    pub wall_s: f64,
}

impl ChaosScenario {
    /// True when every submitted request was answered `Done`.
    #[must_use]
    pub fn lossless(&self) -> bool {
        self.lost == 0
            && self.failed == 0
            && self.rejected == 0
            && self.done == self.submitted as u64
    }

    /// True when every surviving ledger grant maps to exactly one
    /// successful execution — failed placements all handed their
    /// grants back.
    #[must_use]
    pub fn no_orphaned_grants(&self) -> bool {
        self.live_placements == self.cold_executions
    }
}

/// The full experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosRecoveryReport {
    /// Trace seed (also seeds every fault plan).
    pub seed: u64,
    /// Requests per pass.
    pub requests: usize,
    /// Fleet devices behind the dispatcher.
    pub devices: usize,
    /// PE arrays per device.
    pub arrays: usize,
    /// All scenarios, fault-free first.
    pub scenarios: Vec<ChaosScenario>,
}

impl ChaosRecoveryReport {
    /// The fault-free reference scenario.
    #[must_use]
    pub fn baseline(&self) -> &ChaosScenario {
        &self.scenarios[0]
    }

    /// True when every scenario answered every request `Done` with
    /// digests equal to the fault-free pass.
    #[must_use]
    pub fn zero_lost_and_bit_identical(&self) -> bool {
        let reference = self.baseline().digest;
        self.scenarios
            .iter()
            .all(|s| s.lossless() && s.digest == reference)
    }

    /// True when the worst chaos-scenario p99 stays inside the
    /// recovery budget: the fault-free p99 plus the full retry ladder
    /// (`max_retries + 1` watchdog deadlines, with 3x slack for the
    /// stall naps and scheduling noise).
    #[must_use]
    pub fn p99_inflation_bounded(&self) -> bool {
        let budget_ms = self.baseline().p99_ms * 3.0 + (4 * WATCHDOG_MS * 3) as f64;
        self.scenarios.iter().all(|s| s.p99_ms <= budget_ms)
    }
}

/// Replays `trace` through a fresh service, tolerating (and counting)
/// failures and rejections instead of panicking — the gates assert on
/// the counts.
fn replay(
    config: ServeConfig,
    label: &str,
    fault_rate: f64,
    trace: &[TraceRequest],
) -> ChaosScenario {
    let service = StreamingService::start(config).expect("service starts");
    let start = Instant::now();
    for t in trace {
        service
            .submit(Request::from_trace(t))
            .expect("service accepts (blocking submit)");
    }
    let mut digests: BTreeMap<u64, u64> = BTreeMap::new();
    let (mut done, mut failed, mut rejected) = (0u64, 0u64, 0u64);
    let mut cold_executions = 0u64;
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(trace.len());
    let mut answered = 0usize;
    while answered < trace.len() {
        let Some(response) = service.recv_response(Duration::from_secs(120)) else {
            break; // lost requests are counted, not panicked over
        };
        answered += 1;
        latencies_ns.push(response.total_ns);
        match response.outcome {
            ResponseOutcome::Done(result) => {
                done += 1;
                if result.cache == CacheOutcome::Miss {
                    cold_executions += 1;
                }
                digests.insert(response.job_id, result.output.digest());
            }
            ResponseOutcome::Failed(_) => failed += 1,
            ResponseOutcome::Rejected(_) => rejected += 1,
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    let (stats, leftovers): (ServeStats, _) = service.shutdown();
    assert!(leftovers.is_empty(), "answered everything already");
    latencies_ns.sort_unstable();
    let fleet = stats.fleet.clone().unwrap_or_default();
    ChaosScenario {
        label: label.to_string(),
        fault_rate,
        submitted: trace.len(),
        done,
        failed,
        rejected,
        lost: (trace.len() - answered) as u64,
        retries: stats.retries,
        degraded: stats.degraded,
        quarantines: fleet.quarantines,
        probes: fleet.probes,
        revivals: fleet.revivals,
        rollbacks: fleet.rollbacks,
        live_placements: stats.device.placements,
        cold_executions,
        digest: fnv1a(digests.iter().flat_map(|(&id, &d)| [id, d])),
        p99_ms: percentile(&latencies_ns, 99.0) as f64 * 1e-6,
        wall_s,
    }
}

/// Runs the gate on a 2-device, 4-array fleet: a fault-free baseline,
/// transient-fault sweeps at 5% and 10%, and a persistent outage of
/// device 1 that must be quarantined, probed and revived.
///
/// # Panics
///
/// Panics when any scenario loses a request, answers with the wrong
/// bits, or when the outage scenario fails to quarantine → probe →
/// revive with every dead grant rolled back. The (noise-sensitive)
/// p99-inflation gate is asserted by the report binary, not here.
#[must_use]
pub fn run(seed: u64, quick: bool) -> ChaosRecoveryReport {
    let requests = if quick { 60 } else { 160 };
    let devices = 2;
    let arrays = 4;
    let trace_config = TraceConfig::new(seed)
        .with_requests(requests)
        .with_repeat_fraction(0.3)
        .with_accurate_fraction(0.05)
        .with_wide_conv_fraction(0.25);
    let trace = generate(&trace_config);
    let config = || {
        ServeConfig::new()
            .with_workers(4)
            .with_queue_capacity(64)
            .with_cache_capacity(8192)
            .with_arrays(arrays)
            .with_devices(devices)
            .with_admission(2, 64)
    };
    let chaos_config = |plan: FaultPlan| {
        config()
            .with_chaos(plan)
            .with_watchdog(Duration::from_millis(WATCHDOG_MS))
    };

    let mut scenarios = vec![replay(config(), "fault-free", 0.0, &trace)];
    for rate in [0.05f64, 0.10] {
        let label = format!("rate-{}pct", (rate * 100.0).round() as u32);
        scenarios.push(replay(
            chaos_config(FaultPlan::new(seed, rate)),
            &label,
            rate,
            &trace,
        ));
    }
    scenarios.push(replay(
        chaos_config(FaultPlan::new(seed, 0.0).with_outage(1, 2)),
        "outage-device-1",
        0.0,
        &trace,
    ));

    let report = ChaosRecoveryReport {
        seed,
        requests,
        devices,
        arrays,
        scenarios,
    };

    // Deterministic gates: zero lost requests, bit-identical answers,
    // no orphaned grants, and the full quarantine → probe → revive
    // ladder on the outage scenario.
    assert!(
        report.zero_lost_and_bit_identical(),
        "a scenario lost requests or answered with the wrong bits: {:?}",
        report
            .scenarios
            .iter()
            .map(|s| (s.label.as_str(), s.lost, s.failed, s.digest))
            .collect::<Vec<_>>()
    );
    for s in &report.scenarios {
        assert!(
            s.no_orphaned_grants(),
            "{}: {} live grants for {} successful executions",
            s.label,
            s.live_placements,
            s.cold_executions
        );
    }
    let outage = report.scenarios.last().expect("outage scenario");
    assert!(outage.retries >= 1, "outage placements must be retried");
    assert!(outage.rollbacks >= 1, "dead grants must be rolled back");
    assert_eq!(outage.quarantines, 1, "device 1 quarantines exactly once");
    assert!(outage.probes >= 2, "quarantine must be probed (heals at 2)");
    assert_eq!(outage.revivals, 1, "the healed device must rejoin");
    report
}

impl ChaosRecoveryReport {
    /// Machine-readable JSON summary (hand-rolled; the workspace has
    /// no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"experiment\": \"chaos_recovery\",\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"requests\": {},\n", self.requests));
        s.push_str(&format!("  \"devices\": {},\n", self.devices));
        s.push_str(&format!("  \"arrays\": {},\n", self.arrays));
        s.push_str(&format!(
            "  \"zero_lost_and_bit_identical\": {},\n",
            self.zero_lost_and_bit_identical()
        ));
        s.push_str(&format!(
            "  \"p99_inflation_bounded\": {},\n",
            self.p99_inflation_bounded()
        ));
        s.push_str("  \"scenarios\": [\n");
        for (i, c) in self.scenarios.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"label\": \"{}\", \"fault_rate\": {:.2}, \"submitted\": {}, \
                 \"done\": {}, \"failed\": {}, \"rejected\": {}, \"lost\": {}, \
                 \"retries\": {}, \"degraded\": {}, \"quarantines\": {}, \"probes\": {}, \
                 \"revivals\": {}, \"rollbacks\": {}, \"live_placements\": {}, \
                 \"cold_executions\": {}, \"digest\": \"{:016x}\", \"p99_ms\": {:.3}, \
                 \"wall_s\": {:.4}}}{}\n",
                c.label,
                c.fault_rate,
                c.submitted,
                c.done,
                c.failed,
                c.rejected,
                c.lost,
                c.retries,
                c.degraded,
                c.quarantines,
                c.probes,
                c.revivals,
                c.rollbacks,
                c.live_placements,
                c.cold_executions,
                c.digest,
                c.p99_ms,
                c.wall_s,
                if i + 1 == self.scenarios.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Human-readable markdown summary.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut s = format!(
            "chaos_recovery: {} requests on {} devices x {} arrays; \
             zero lost + bit-identical: {}, p99 inflation bounded: {}\n\n",
            self.requests,
            self.devices,
            self.arrays,
            self.zero_lost_and_bit_identical(),
            self.p99_inflation_bounded(),
        );
        s.push_str(
            "| scenario | rate | done/lost | retries | degraded | quar/probe/revive | \
             rollbacks | grants live=cold | p99 ms | wall s |\n\
             |---|---|---|---|---|---|---|---|---|---|\n",
        );
        for c in &self.scenarios {
            s.push_str(&format!(
                "| {} | {:.0}% | {}/{} | {} | {} | {}/{}/{} | {} | {}={} | {:.2} | {:.3} |\n",
                c.label,
                c.fault_rate * 100.0,
                c.done,
                c.lost,
                c.retries,
                c.degraded,
                c.quarantines,
                c.probes,
                c.revivals,
                c.rollbacks,
                c.live_placements,
                c.cold_executions,
                c.p99_ms,
                c.wall_s,
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_recovery_gate_holds_in_quick_mode() {
        // run() asserts the deterministic gates itself (zero lost,
        // bit-identical, no orphaned grants, quarantine ladder).
        let report = run(42, true);
        assert_eq!(report.scenarios.len(), 4);
        assert!(report.baseline().retries == 0 && report.baseline().degraded == 0);
        let faulted: u64 = report.scenarios[1..3]
            .iter()
            .map(|s| s.retries + s.degraded)
            .sum();
        assert!(faulted > 0, "5%/10% rates must actually inject faults");
    }

    #[test]
    fn json_summary_is_well_formed_enough() {
        let report = run(7, true);
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"chaos_recovery\""));
        assert!(json.contains("\"zero_lost_and_bit_identical\": true"));
        assert!(json.contains("\"scenarios\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
