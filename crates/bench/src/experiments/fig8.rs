//! Fig. 8: sparsity (silent PE) profiling of MobileNetV2 and
//! ResNeXt101 with 16×16 tiles.

use tempus_arith::IntPrecision;
use tempus_models::zoo::Model;
use tempus_models::QuantizedModel;
use tempus_profile::sparsity::{profile_model, SilentPeProfile};
use tempus_profile::table::Table;

/// Profiles for the two Fig. 8 panels.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// MobileNetV2 panel.
    pub mobilenet: SilentPeProfile,
    /// ResNeXt101 panel.
    pub resnext: SilentPeProfile,
}

/// Runs the profiling.
#[must_use]
pub fn run(seed: u64, max_weights: usize) -> Fig8 {
    let mnv2 =
        QuantizedModel::generate_limited(Model::MobileNetV2, IntPrecision::Int8, seed, max_weights);
    let rnxt =
        QuantizedModel::generate_limited(Model::ResNeXt101, IntPrecision::Int8, seed, max_weights);
    Fig8 {
        mobilenet: profile_model(&mnv2, 16, 16, false),
        resnext: profile_model(&rnxt, 16, 16, false),
    }
}

/// Summary table vs paper targets. Note: the paper quotes 2 silent PEs
/// for ResNeXt101, which is internally inconsistent with its own
/// Table I (2.64% × 256 lanes ≈ 6.8); we pin Table I and report the
/// implied silent-PE count (see EXPERIMENTS.md).
#[must_use]
pub fn summary_table(fig: &Fig8) -> Table {
    let mut t = Table::new([
        "Model",
        "Full tiles",
        "Avg silent PEs",
        "Avg active PEs",
        "Paper silent",
    ]);
    for (p, paper) in [(&fig.mobilenet, 6.0), (&fig.resnext, 2.0)] {
        t.push_row([
            p.model.clone(),
            p.total_tiles.to_string(),
            format!("{:.1}", p.average_silent_pes()),
            format!("{:.1}", p.average_active_pes()),
            format!("{paper:.0}"),
        ]);
    }
    t
}

/// Histogram CSV (`silent_pes,frequency`).
#[must_use]
pub fn histogram_csv(profile: &SilentPeProfile) -> String {
    let mut out = String::from("silent_pes,frequency\n");
    for (z, f) in profile.series() {
        out.push_str(&format!("{z},{f}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobilenet_silent_pes_near_paper() {
        let fig = run(4, 600_000);
        let avg = fig.mobilenet.average_silent_pes();
        assert!((avg - 6.0).abs() < 1.5, "avg {avg}");
    }

    #[test]
    fn summary_renders() {
        let fig = run(4, 200_000);
        assert_eq!(summary_table(&fig).len(), 2);
        assert!(histogram_csv(&fig.resnext).lines().count() > 1);
    }
}
