//! Fig. 9: iso-area throughput improvements for a single PE cell
//! across multiplier counts, with the power-law projection to
//! n = 65536.

use tempus_arith::IntPrecision;
use tempus_hwmodel::isoarea::IsoAreaAnalysis;
use tempus_hwmodel::SynthModel;
use tempus_profile::table::Table;

/// The two Fig. 9 panels plus projections.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// INT8 analysis.
    pub int8: IsoAreaAnalysis,
    /// INT4 analysis.
    pub int4: IsoAreaAnalysis,
}

/// Runs both panels.
#[must_use]
pub fn run(hw: &SynthModel) -> Fig9 {
    Fig9 {
        int8: IsoAreaAnalysis::run(hw, IntPrecision::Int8),
        int4: IsoAreaAnalysis::run(hw, IntPrecision::Int4),
    }
}

/// Renders the modeled points and the 65536 projection.
#[must_use]
pub fn to_table(fig: &Fig9) -> Table {
    let mut t = Table::new([
        "Precision",
        "n",
        "Binary (mm2)",
        "tub (mm2)",
        "Iso-area improvement",
        "Kind",
    ]);
    for (precision, analysis, paper_proj) in [("INT8", &fig.int8, 26.0), ("INT4", &fig.int4, 18.0)]
    {
        for p in &analysis.points {
            t.push_row([
                precision.to_string(),
                p.n.to_string(),
                format!("{:.4}", p.binary_area_mm2),
                format!("{:.4}", p.tub_area_mm2),
                format!("{:.1}x", p.improvement),
                "modeled".to_string(),
            ]);
        }
        let proj = analysis.project(65536);
        t.push_row([
            precision.to_string(),
            proj.n.to_string(),
            format!("{:.3}", proj.binary_area_mm2),
            format!("{:.3}", proj.tub_area_mm2),
            format!("{:.1}x (paper: {paper_proj:.0}x)", proj.improvement),
            "projected".to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projections_have_paper_magnitude() {
        let hw = SynthModel::nangate45();
        let fig = run(&hw);
        let p8 = fig.int8.project(65536);
        let p4 = fig.int4.project(65536);
        // Paper: "as much as 26x and 18x"; power-law extrapolation of
        // the same anchors lands in the same band.
        assert!((15.0..45.0).contains(&p8.improvement), "{}", p8.improvement);
        assert!((10.0..30.0).contains(&p4.improvement), "{}", p4.improvement);
        assert!(p8.improvement > p4.improvement);
    }

    #[test]
    fn table_has_eight_rows() {
        let hw = SynthModel::nangate45();
        assert_eq!(to_table(&run(&hw)).len(), 8);
    }
}
