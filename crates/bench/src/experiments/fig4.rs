//! Fig. 4: post-synthesis power and area of the 16×16 PE array,
//! binary vs tub, INT4/INT8.

use tempus_arith::IntPrecision;
use tempus_hwmodel::{Family, SynthModel};
use tempus_profile::table::{ascii_chart, Table};

/// One Fig. 4 bar group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayRow {
    /// Precision.
    pub precision: IntPrecision,
    /// Family.
    pub family: Family,
    /// Array area (mm²).
    pub area_mm2: f64,
    /// Array power (mW).
    pub power_mw: f64,
}

/// Runs the 16×16 comparison.
#[must_use]
pub fn run(hw: &SynthModel) -> Vec<ArrayRow> {
    let mut rows = Vec::new();
    for precision in [IntPrecision::Int4, IntPrecision::Int8] {
        for family in Family::BOTH {
            let r = hw.pe_array(family, precision, 16, 16);
            rows.push(ArrayRow {
                precision,
                family,
                area_mm2: r.area_mm2,
                power_mw: r.power_mw,
            });
        }
    }
    rows
}

/// Renders the Fig. 4 table.
#[must_use]
pub fn to_table(rows: &[ArrayRow]) -> Table {
    let mut t = Table::new(["Precision", "Design", "Area (mm2)", "Power (mW)"]);
    for r in rows {
        t.push_row([
            r.precision.to_string(),
            r.family.to_string(),
            format!("{:.4}", r.area_mm2),
            format!("{:.3}", r.power_mw),
        ]);
    }
    t
}

/// ASCII bar charts mirroring the two Fig. 4 panels.
#[must_use]
pub fn to_charts(rows: &[ArrayRow]) -> String {
    let power: Vec<(String, f64)> = rows
        .iter()
        .map(|r| (format!("{} {}", r.precision, r.family), r.power_mw))
        .collect();
    let area: Vec<(String, f64)> = rows
        .iter()
        .map(|r| (format!("{} {}", r.precision, r.family), r.area_mm2))
        .collect();
    format!(
        "{}\n{}",
        ascii_chart("Fig.4 (left): total power, 16x16 array [mW]", &power, 40),
        ascii_chart("Fig.4 (right): cell area, 16x16 array [mm2]", &area, 40)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int8_values_match_paper_statements() {
        // §V-A: binary 0.09 mm² / 3.8 mW; tub 0.018 mm² / 1.42 mW.
        let hw = SynthModel::nangate45();
        let rows = run(&hw);
        let find = |f: Family, p: IntPrecision| {
            *rows
                .iter()
                .find(|r| r.family == f && r.precision == p)
                .unwrap()
        };
        let b8 = find(Family::Binary, IntPrecision::Int8);
        let t8 = find(Family::Tub, IntPrecision::Int8);
        assert!((b8.area_mm2 - 0.09).abs() < 0.002);
        assert!((b8.power_mw - 3.8).abs() < 0.05);
        assert!((t8.area_mm2 - 0.018).abs() < 0.001);
        assert!((t8.power_mw - 1.42).abs() < 0.03);
    }

    #[test]
    fn int4_reductions_match_paper_statements() {
        // §V-A: "for INT4, the reductions are 80% in area and 41% in
        // power".
        let hw = SynthModel::nangate45();
        let rows = run(&hw);
        let find = |f: Family| {
            *rows
                .iter()
                .find(|r| r.family == f && r.precision == IntPrecision::Int4)
                .unwrap()
        };
        let b = find(Family::Binary);
        let t = find(Family::Tub);
        let area_red = (1.0 - t.area_mm2 / b.area_mm2) * 100.0;
        let power_red = (1.0 - t.power_mw / b.power_mw) * 100.0;
        assert!((area_red - 80.0).abs() < 2.0, "area {area_red}");
        assert!((power_red - 41.0).abs() < 3.0, "power {power_red}");
    }

    #[test]
    fn charts_render() {
        let hw = SynthModel::nangate45();
        let charts = to_charts(&run(&hw));
        assert!(charts.contains("Fig.4"));
        assert!(charts.contains('#'));
    }
}
