//! Array-slot co-scheduling: replay a seeded mixed wide+narrow
//! traffic trace under the two array-granting policies and compare
//! device-time makespan, tail latency and packing efficiency — with
//! **bit-identical outputs across the policies** and a **≥ 1.3×
//! makespan win** as the acceptance gates
//! (`results/BENCH_co_schedule.json`).
//!
//! Two views of the same trace:
//!
//! * a **deterministic device-time replay** driving the runtime's own
//!   scheduler primitives ([`ArrayPlanner`] + [`ArrayLedger`])
//!   directly: all jobs queue at device time 0, all-arrays places
//!   each exclusively (PR 4's worker-granular semantics — every job
//!   owns the whole core in turn), cost-aware packs budget-planned
//!   widths onto disjoint array sets. Makespans, per-job device
//!   finish times and packing efficiency are bit-for-bit reproducible;
//! * two **service passes** through `tempus-serve` — co-scheduling
//!   off, then on — proving the dispatched results stay bit-identical
//!   and surfacing the live [`ServeStats`](tempus_serve::ServeStats)
//!   device account.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use tempus_core::shard::WidenPolicy;
use tempus_models::traffic::{generate, TraceConfig, TraceRequest};
use tempus_nvdla::cube::fnv1a;
use tempus_runtime::{ArrayLedger, ArrayPlanner, EngineConfig, Job};
use tempus_serve::{percentile, Request, ResponseOutcome, ServeConfig, StreamingService};

/// One policy's deterministic device-time replay.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceReplay {
    /// `all-arrays` or `cost-aware`.
    pub policy: &'static str,
    /// Device cycle the last job finishes.
    pub makespan_cycles: u64,
    /// Busy array-cycles over the `arrays × makespan` area.
    pub occupancy: f64,
    /// Device cycles jobs spent waiting to gather their arrays.
    pub total_wait_cycles: u64,
    /// Mean arrays granted per job.
    pub avg_arrays_granted: f64,
    /// Median device finish time over the queued jobs.
    pub p50_finish_cycles: u64,
    /// 95th-percentile device finish time — the device-time tail.
    pub p95_finish_cycles: u64,
}

/// One live pass through the streaming service.
#[derive(Debug, Clone, PartialEq)]
pub struct ServicePass {
    /// `all-arrays` or `cost-aware`.
    pub policy: &'static str,
    /// Requests completed.
    pub completed: u64,
    /// Pass wall-clock, seconds.
    pub wall_s: f64,
    /// The service's device-time makespan account.
    pub device_makespan_cycles: u64,
    /// The service's packing efficiency.
    pub device_occupancy: f64,
    /// The service's total array gather-wait cycles.
    pub device_wait_cycles: u64,
    /// Mean arrays granted per placement.
    pub avg_arrays_granted: f64,
    /// Combined digest over `(job id, output digest)` pairs in id
    /// order — equality across policies proves bit-identical serving.
    pub digest: u64,
}

/// The full experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct CoScheduleReport {
    /// Trace seed.
    pub seed: u64,
    /// Requests in the trace.
    pub requests: usize,
    /// PE arrays of the modelled device.
    pub num_arrays: usize,
    /// Wide (kernel-rich) convolutions in the trace.
    pub wide_convs: usize,
    /// Device replay under each policy (all-arrays first).
    pub device: Vec<DeviceReplay>,
    /// Service pass under each policy (all-arrays first).
    pub service: Vec<ServicePass>,
}

impl CoScheduleReport {
    /// `true` when the two service passes produced bit-identical
    /// outputs for every request.
    #[must_use]
    pub fn digests_equal(&self) -> bool {
        self.service[0].digest == self.service[1].digest
    }

    /// Device-time makespan improvement of cost-aware co-scheduling
    /// over all-arrays-per-job (the ≥ 1.3× acceptance gate).
    #[must_use]
    pub fn makespan_speedup(&self) -> f64 {
        self.device[0].makespan_cycles as f64 / self.device[1].makespan_cycles.max(1) as f64
    }

    /// Device-time p95 finish improvement.
    #[must_use]
    pub fn p95_speedup(&self) -> f64 {
        self.device[0].p95_finish_cycles as f64 / self.device[1].p95_finish_cycles.max(1) as f64
    }
}

/// The trace both views replay: mixed wide+narrow, no repeats (every
/// job executes — caching is `serve_latency`'s experiment), fast
/// fidelity only so admission order, and therefore placement order,
/// is deterministic.
fn mixed_trace(seed: u64, requests: usize) -> Vec<TraceRequest> {
    generate(
        &TraceConfig::new(seed)
            .with_requests(requests)
            .with_repeat_fraction(0.0)
            .with_accurate_fraction(0.0)
            .with_wide_conv_fraction(0.35),
    )
}

fn trace_jobs(trace: &[TraceRequest]) -> Vec<Job> {
    trace.iter().map(|t| Request::from_trace(t).job).collect()
}

/// The deterministic device-time replay: all jobs queue at cycle 0 in
/// trace order; finish times and the makespan fall out of the grant
/// policy alone.
fn device_replay(jobs: &[Job], config: &EngineConfig, co_schedule: bool) -> DeviceReplay {
    let mut planner = ArrayPlanner::new(config, WidenPolicy::edge_default());
    let mut ledger = ArrayLedger::new(config.num_arrays);
    let mut finishes = Vec::with_capacity(jobs.len());
    for job in jobs {
        let placement = if co_schedule {
            let plan = planner.plan_or_single(job);
            ledger.place(&plan, 0)
        } else {
            // PR 4 semantics: the job owns the whole core for its
            // exact full-width critical path; only its real shard
            // work counts as busy.
            let cost = planner
                .width_cost(job, config.num_arrays)
                .expect("trace jobs are well-shaped");
            ledger.place_exclusive(cost.critical_path_cycles, cost.total_array_cycles, 0)
        };
        finishes.push(placement.start_cycle + placement.duration_cycles);
    }
    finishes.sort_unstable();
    let summary = ledger.summary();
    DeviceReplay {
        policy: if co_schedule {
            "cost-aware"
        } else {
            "all-arrays"
        },
        makespan_cycles: summary.makespan_cycles,
        occupancy: summary.occupancy(),
        total_wait_cycles: summary.wait_cycles,
        avg_arrays_granted: summary.avg_arrays_granted(),
        p50_finish_cycles: percentile(&finishes, 50.0),
        p95_finish_cycles: percentile(&finishes, 95.0),
    }
}

/// One pass through a fresh service instance under `co_schedule`.
fn service_pass(trace: &[TraceRequest], num_arrays: usize, co_schedule: bool) -> ServicePass {
    let mut config = ServeConfig::new()
        .with_workers(4)
        .with_queue_capacity(64)
        .with_cache_capacity(8192)
        .with_arrays(num_arrays);
    if co_schedule {
        config = config.with_co_scheduling();
    }
    let service = StreamingService::start(config).expect("service starts");
    let start = Instant::now();
    let mut digests: BTreeMap<u64, u64> = BTreeMap::new();
    let mut outstanding = 0usize;
    let consume =
        |response: tempus_serve::Response, digests: &mut BTreeMap<u64, u64>| match response.outcome
        {
            ResponseOutcome::Done(result) => {
                digests.insert(response.job_id, result.output.digest());
            }
            ResponseOutcome::Rejected(reason) => panic!("request rejected: {reason:?}"),
            ResponseOutcome::Failed(error) => panic!("request failed: {error}"),
        };
    for t in trace {
        service
            .submit(Request::from_trace(t))
            .expect("service accepts (blocking submit)");
        outstanding += 1;
        while let Some(response) = service.recv_response(Duration::ZERO) {
            outstanding -= 1;
            consume(response, &mut digests);
        }
    }
    while outstanding > 0 {
        let response = service
            .recv_response(Duration::from_secs(120))
            .expect("responses drain");
        outstanding -= 1;
        consume(response, &mut digests);
    }
    let wall_s = start.elapsed().as_secs_f64();
    let (stats, _leftover) = service.shutdown();
    ServicePass {
        policy: if co_schedule {
            "cost-aware"
        } else {
            "all-arrays"
        },
        completed: stats.completed,
        wall_s,
        device_makespan_cycles: stats.device.makespan_cycles,
        device_occupancy: stats.device.occupancy(),
        device_wait_cycles: stats.device.wait_cycles,
        avg_arrays_granted: stats.device.avg_arrays_granted(),
        digest: fnv1a(digests.iter().flat_map(|(&id, &d)| [id, d])),
    }
}

/// Runs the experiment. `quick` shrinks the trace for CI smoke runs —
/// the digest and makespan gates are the invariant there, not timing.
#[must_use]
pub fn run(seed: u64, quick: bool) -> CoScheduleReport {
    let requests = if quick { 60 } else { 240 };
    let num_arrays = 8;
    let trace = mixed_trace(seed, requests);
    let wide_convs = trace
        .iter()
        .filter(|t| match &t.payload {
            tempus_models::traffic::TracePayload::Conv { kernels, .. } => kernels.k() >= 32,
            _ => false,
        })
        .count();
    let jobs = trace_jobs(&trace);
    let engine =
        EngineConfig::new(tempus_runtime::BackendKind::FastFunctional).with_arrays(num_arrays);
    let device = vec![
        device_replay(&jobs, &engine, false),
        device_replay(&jobs, &engine, true),
    ];
    let service = vec![
        service_pass(&trace, num_arrays, false),
        service_pass(&trace, num_arrays, true),
    ];
    CoScheduleReport {
        seed,
        requests,
        num_arrays,
        wide_convs,
        device,
        service,
    }
}

impl CoScheduleReport {
    /// Machine-readable JSON summary (hand-rolled; the workspace has
    /// no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\n  \"experiment\": \"co_schedule\",\n  \"seed\": {},\n  \
             \"requests\": {},\n  \"num_arrays\": {},\n  \"wide_convs\": {},\n  \
             \"digests_equal\": {},\n  \"makespan_speedup\": {:.3},\n  \
             \"p95_speedup\": {:.3},\n  \"device\": [\n",
            self.seed,
            self.requests,
            self.num_arrays,
            self.wide_convs,
            self.digests_equal(),
            self.makespan_speedup(),
            self.p95_speedup(),
        );
        for (i, d) in self.device.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"policy\": \"{}\", \"makespan_cycles\": {}, \"occupancy\": {:.4}, \
                 \"total_wait_cycles\": {}, \"avg_arrays_granted\": {:.3}, \
                 \"p50_finish_cycles\": {}, \"p95_finish_cycles\": {}}}{}\n",
                d.policy,
                d.makespan_cycles,
                d.occupancy,
                d.total_wait_cycles,
                d.avg_arrays_granted,
                d.p50_finish_cycles,
                d.p95_finish_cycles,
                if i + 1 == self.device.len() { "" } else { "," },
            ));
        }
        s.push_str("  ],\n  \"service\": [\n");
        for (i, p) in self.service.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"policy\": \"{}\", \"completed\": {}, \"wall_s\": {:.6}, \
                 \"device_makespan_cycles\": {}, \"device_occupancy\": {:.4}, \
                 \"device_wait_cycles\": {}, \"avg_arrays_granted\": {:.3}, \
                 \"digest\": \"{:016x}\"}}{}\n",
                p.policy,
                p.completed,
                p.wall_s,
                p.device_makespan_cycles,
                p.device_occupancy,
                p.device_wait_cycles,
                p.avg_arrays_granted,
                p.digest,
                if i + 1 == self.service.len() { "" } else { "," },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Human-readable markdown summary.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut s = format!(
            "co_schedule: {} requests ({} wide convs) on {} arrays; \
             digests equal: {}, makespan win: {:.2}x, device p95 win: {:.2}x\n\n",
            self.requests,
            self.wide_convs,
            self.num_arrays,
            self.digests_equal(),
            self.makespan_speedup(),
            self.p95_speedup(),
        );
        s.push_str(
            "| view | policy | makespan cycles | occupancy | wait cycles | arrays/job | p95 finish |\n",
        );
        s.push_str("|---|---|---|---|---|---|---|\n");
        for d in &self.device {
            s.push_str(&format!(
                "| device replay | {} | {} | {:.0}% | {} | {:.2} | {} |\n",
                d.policy,
                d.makespan_cycles,
                d.occupancy * 100.0,
                d.total_wait_cycles,
                d.avg_arrays_granted,
                d.p95_finish_cycles,
            ));
        }
        for p in &self.service {
            s.push_str(&format!(
                "| service pass | {} | {} | {:.0}% | {} | {:.2} | — |\n",
                p.policy,
                p.device_makespan_cycles,
                p.device_occupancy * 100.0,
                p.device_wait_cycles,
                p.avg_arrays_granted,
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn co_scheduling_wins_makespan_at_equal_digests_in_smoke_mode() {
        // The CI gate: outputs bit-identical across the two policies
        // and a >= 1.3x device-time makespan win on the mixed trace.
        let report = run(42, true);
        assert!(
            report.wide_convs > 0,
            "the mixed trace must contain wide convs"
        );
        assert!(report.digests_equal(), "policies diverged in outputs");
        assert!(
            report.makespan_speedup() >= 1.3,
            "makespan win too small: {:.2}x",
            report.makespan_speedup()
        );
        assert!(
            report.p95_speedup() >= 1.0,
            "device-time p95 must not regress: {:.2}x",
            report.p95_speedup()
        );
        // Co-scheduling packs: higher occupancy, narrower grants.
        assert!(report.device[1].occupancy > report.device[0].occupancy);
        assert!(report.device[1].avg_arrays_granted < report.device[0].avg_arrays_granted);
        // The live service's device account must reproduce the
        // deterministic replay exactly: the all-arrays pass sums the
        // same functional critical paths the closed-form model
        // predicts, and the co-scheduled pass drives the identical
        // ledger in the identical placement order.
        for (d, s) in report.device.iter().zip(&report.service) {
            assert_eq!(
                d.makespan_cycles, s.device_makespan_cycles,
                "{}: service drifted from the device-time model",
                d.policy
            );
        }
    }

    #[test]
    fn device_replay_is_deterministic() {
        let jobs = trace_jobs(&mixed_trace(7, 30));
        let engine = EngineConfig::new(tempus_runtime::BackendKind::FastFunctional).with_arrays(8);
        assert_eq!(
            device_replay(&jobs, &engine, true),
            device_replay(&jobs, &engine, true)
        );
        assert_eq!(
            device_replay(&jobs, &engine, false),
            device_replay(&jobs, &engine, false)
        );
    }

    #[test]
    fn json_summary_is_well_formed_enough() {
        let report = run(7, true);
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"co_schedule\""));
        assert!(json.contains("\"digests_equal\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
