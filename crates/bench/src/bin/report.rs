//! Regenerates every table and figure of the Tempus Core paper.
//!
//! ```text
//! cargo run --release -p tempus-bench --bin report            # everything
//! cargo run --release -p tempus-bench --bin report -- table2  # one experiment
//! cargo run --release -p tempus-bench --bin report -- --quick # bounded model generation
//! ```
//!
//! Output goes to stdout and to `results/` (markdown, CSV and SVG).

use std::path::PathBuf;

use tempus_bench::experiments::{
    ablation, chaos_recovery, co_schedule, dvfs_pareto, energy, fig1, fig4, fig5, fig6, fig7, fig8,
    fig9, fleet_scaling, headline, multi_array_scaling, runtime_throughput, serve_latency,
    sim_speed, streaming_gemm, table1, table2, table3, timing, trace_overhead,
};
use tempus_bench::{write_result, SEED};
use tempus_hwmodel::{PnrModel, SynthModel};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let run_all = selected.is_empty();
    let wants = |name: &str| run_all || selected.contains(&name);
    // Full runs generate ~180M synthetic weights; --quick bounds each
    // model for smoke-testing the harness.
    let max_weights = if quick { 2_000_000 } else { usize::MAX };

    let results = PathBuf::from("results");
    let hw = SynthModel::nangate45();
    let pnr = PnrModel::new(hw.clone());
    // One headline metric per machine-readable BENCH_*.json written
    // this run, consolidated into results/BENCH_index.json at the end.
    let mut index: Vec<(&str, &str, f64)> = Vec::new();

    println!("== Tempus Core paper reproduction report ==");
    println!("(calibration provenance follows; see DESIGN.md for the fitting pipeline)\n");
    println!("{}", hw.calibration().provenance());

    if wants("fig1") {
        let t = fig1::to_table();
        println!("--- Fig. 1 (background, reprinted from ref. [8]) ---");
        println!("{}", t.to_markdown());
        write_result(&results, "fig1.md", &t.to_markdown()).expect("write fig1");
    }

    if wants("table1") {
        println!("--- Table I: word sparsity of INT8 CNNs ---");
        let rows = table1::run(SEED, max_weights);
        let t = table1::to_table(&rows);
        println!("{}", t.to_markdown());
        write_result(&results, "table1.md", &t.to_markdown()).expect("write table1");
        write_result(&results, "table1.csv", &t.to_csv()).expect("write table1 csv");
    }

    if wants("table2") {
        println!("--- Table II: single PE cell post-synthesis ---");
        let rows = table2::run(&hw);
        let area = table2::area_table(&rows);
        let power = table2::power_table(&rows);
        println!("{}", area.to_markdown());
        println!("{}", power.to_markdown());
        write_result(
            &results,
            "table2.md",
            &format!("{}\n{}", area.to_markdown(), power.to_markdown()),
        )
        .expect("write table2");
    }

    if wants("fig4") {
        println!("--- Fig. 4: 16x16 PE array post-synthesis ---");
        let rows = fig4::run(&hw);
        println!("{}", fig4::to_table(&rows).to_markdown());
        println!("{}", fig4::to_charts(&rows));
        write_result(&results, "fig4.md", &fig4::to_table(&rows).to_markdown())
            .expect("write fig4");
    }

    if wants("fig5") {
        println!("--- Fig. 5: CMAC vs PCU units across widths/precisions ---");
        let rows = fig5::run(&hw);
        println!("{}", fig5::to_table(&rows).to_markdown());
        write_result(&results, "fig5.md", &fig5::to_table(&rows).to_markdown())
            .expect("write fig5");
        write_result(&results, "fig5.csv", &fig5::to_table(&rows).to_csv())
            .expect("write fig5 csv");
    }

    if wants("table3") {
        println!("--- Table III: post-place-and-route, INT4 16x4 ---");
        let rows = table3::run(&pnr);
        println!("{}", table3::to_table(&rows).to_markdown());
        write_result(
            &results,
            "table3.md",
            &table3::to_table(&rows).to_markdown(),
        )
        .expect("write table3");
    }

    if wants("fig6") {
        println!("--- Fig. 6: layout plots (SVGs in results/) ---");
        let fig = fig6::run(&pnr);
        println!("{}", fig.to_ascii());
        write_result(&results, "fig6_cmac.svg", &fig.cmac.to_svg()).expect("write cmac svg");
        write_result(&results, "fig6_pcu.svg", &fig.pcu.to_svg()).expect("write pcu svg");
    }

    let fig7_profiles = if wants("fig7") || wants("energy") {
        Some(fig7::run(SEED, max_weights))
    } else {
        None
    };

    if wants("fig7") {
        let fig = fig7_profiles.as_ref().expect("computed above");
        println!("--- Fig. 7: weight-magnitude profiling (16x16 max pool) ---");
        println!("{}", fig7::summary_table(fig).to_markdown());
        write_result(&results, "fig7.md", &fig7::summary_table(fig).to_markdown())
            .expect("write fig7");
        write_result(
            &results,
            "fig7_mobilenetv2.csv",
            &fig7::histogram_csv(&fig.mobilenet),
        )
        .expect("write fig7 mnv2 csv");
        write_result(
            &results,
            "fig7_resnext101.csv",
            &fig7::histogram_csv(&fig.resnext),
        )
        .expect("write fig7 rnxt csv");
    }

    if wants("fig8") {
        println!("--- Fig. 8: sparsity profiling (silent PEs per tile) ---");
        let fig = fig8::run(SEED, max_weights);
        println!("{}", fig8::summary_table(&fig).to_markdown());
        write_result(
            &results,
            "fig8.md",
            &fig8::summary_table(&fig).to_markdown(),
        )
        .expect("write fig8");
        write_result(
            &results,
            "fig8_mobilenetv2.csv",
            &fig8::histogram_csv(&fig.mobilenet),
        )
        .expect("write fig8 mnv2 csv");
        write_result(
            &results,
            "fig8_resnext101.csv",
            &fig8::histogram_csv(&fig.resnext),
        )
        .expect("write fig8 rnxt csv");
    }

    if wants("energy") {
        println!("--- Section V-C: workload-dependent energy ---");
        let fig = fig7_profiles.as_ref().expect("computed above");
        let report = energy::run(&hw, fig);
        println!("{}", energy::to_table(&report).to_markdown());
        write_result(
            &results,
            "energy.md",
            &energy::to_table(&report).to_markdown(),
        )
        .expect("write energy");
    }

    if wants("fig9") {
        println!("--- Fig. 9: iso-area throughput improvements ---");
        let fig = fig9::run(&hw);
        println!("{}", fig9::to_table(&fig).to_markdown());
        write_result(&results, "fig9.md", &fig9::to_table(&fig).to_markdown()).expect("write fig9");
    }

    if wants("headline") {
        println!("--- Headline claims ---");
        let h = headline::run(&hw);
        println!("{}", headline::to_table(&h).to_markdown());
        println!("--- Latency-adjusted iso-area throughput (beyond the paper) ---");
        let lat = headline::latency_adjusted_table(&hw);
        println!("{}", lat.to_markdown());
        write_result(
            &results,
            "headline.md",
            &format!(
                "{}\n{}",
                headline::to_table(&h).to_markdown(),
                lat.to_markdown()
            ),
        )
        .expect("write headline");
    }

    if wants("timing") {
        println!("--- Timing closure at the fixed 4 ns clock (beyond the paper) ---");
        let t = timing::to_table(&timing::run());
        println!("{}", t.to_markdown());
        write_result(&results, "timing.md", &t.to_markdown()).expect("write timing");
    }

    if wants("ablation") {
        println!("--- Ablations (beyond the paper) ---");
        let (plain, twos) = ablation::unary_encoding_ablation();
        println!(
            "2s-unary vs plain unary average window: {twos:.1} vs {plain:.1} cycles (2x shorter)\n"
        );
        println!(
            "Cache-overhead sweep:\n{}",
            ablation::cache_overhead_ablation().to_markdown()
        );
        println!(
            "Weight-clipping sweep:\n{}",
            ablation::clipping_ablation().to_markdown()
        );
        write_result(
            &results,
            "ablations.md",
            &format!(
                "2s-unary vs plain unary: {twos:.1} vs {plain:.1} cycles\n\n{}\n{}",
                ablation::cache_overhead_ablation().to_markdown(),
                ablation::clipping_ablation().to_markdown()
            ),
        )
        .expect("write ablations");
    }

    if wants("runtime") {
        println!("--- Runtime throughput: batched engine, 3 backends (beyond the paper) ---");
        let jobs = if quick { 40 } else { 100 };
        let report = runtime_throughput::run(SEED, jobs, &[1, 2, 4, 8]);
        println!("{}", report.to_markdown());
        write_result(&results, "runtime_throughput.md", &report.to_markdown())
            .expect("write runtime markdown");
        write_result(&results, "BENCH_runtime_throughput.json", &report.to_json())
            .expect("write runtime json");
        index.push((
            "runtime_throughput",
            "functional_speedup",
            report.functional_speedup,
        ));
    }

    if wants("sim_speed") {
        println!("--- Simulation core: window-batched vs per-cycle engine (beyond the paper) ---");
        let report = sim_speed::run(SEED, quick);
        println!("{}", report.to_markdown());
        assert!(
            report.digests_equal(),
            "window-batched engine diverged from the per-cycle reference"
        );
        write_result(&results, "sim_speed.md", &report.to_markdown())
            .expect("write sim_speed markdown");
        write_result(&results, "BENCH_sim_speed.json", &report.to_json())
            .expect("write sim_speed json");
        index.push(("sim_speed", "geomean_speedup", report.geomean_speedup()));
    }

    if wants("streaming_gemm") {
        println!(
            "--- Streaming tiled GEMM: bounded-scratch vs materialized on transformer shapes \
             (beyond the paper) ---"
        );
        let report = streaming_gemm::run(SEED, quick);
        println!("{}", report.to_markdown());
        assert!(
            report.digests_equal(),
            "streamed path diverged from the materialized reference"
        );
        assert!(
            report.scratch_bounded(),
            "streamed peak scratch exceeded the quarter-operand budget or the closed-form model"
        );
        assert!(
            report.scratch_operand_invariant(),
            "streamed scratch arena grew with operand size"
        );
        if !quick {
            assert!(
                report.geomean_speedup() >= 1.0,
                "streamed functional path slower than materialized: {:.2}x",
                report.geomean_speedup()
            );
        }
        write_result(&results, "streaming_gemm.md", &report.to_markdown())
            .expect("write streaming_gemm markdown");
        write_result(&results, "BENCH_streaming_gemm.json", &report.to_json())
            .expect("write streaming_gemm json");
        index.push((
            "streaming_gemm",
            "geomean_speedup",
            report.geomean_speedup(),
        ));
    }

    if wants("multi_array") {
        println!("--- Multi-array scaling: sharded cores vs array count (beyond the paper) ---");
        let report = multi_array_scaling::run(SEED, quick);
        println!("{}", report.to_markdown());
        assert!(
            report.digests_equal(),
            "sharded engine diverged from the single-array reference"
        );
        write_result(&results, "multi_array_scaling.md", &report.to_markdown())
            .expect("write multi_array markdown");
        write_result(
            &results,
            "BENCH_multi_array_scaling.json",
            &report.to_json(),
        )
        .expect("write multi_array json");
        index.push((
            "multi_array_scaling",
            "min_speedup_at_2_arrays",
            report.min_kernel_rich_speedup_at_2().unwrap_or(0.0),
        ));
    }

    if wants("co_schedule") {
        println!(
            "--- Array-slot co-scheduling: cost-aware packing vs all-arrays (beyond the paper) ---"
        );
        let report = co_schedule::run(SEED, quick);
        println!("{}", report.to_markdown());
        assert!(
            report.digests_equal(),
            "co-scheduled serving diverged from the all-arrays path"
        );
        assert!(
            report.makespan_speedup() >= 1.3,
            "co-scheduling makespan win fell below 1.3x"
        );
        write_result(&results, "co_schedule.md", &report.to_markdown())
            .expect("write co_schedule markdown");
        write_result(&results, "BENCH_co_schedule.json", &report.to_json())
            .expect("write co_schedule json");
        index.push(("co_schedule", "makespan_speedup", report.makespan_speedup()));
    }

    if wants("fleet_scaling") {
        println!(
            "--- Fleet-scale serving: multi-device scheduler frontiers (beyond the paper) ---"
        );
        let report = fleet_scaling::run(SEED, quick);
        println!("{}", report.to_markdown());
        assert!(
            report.digests_equal(),
            "fleet serving diverged from the single-device reference"
        );
        assert!(
            report.backfill_reclaims(),
            "backfilling failed to reclaim idle array-cycles at equal digests"
        );
        assert!(
            report.admission_wins(),
            "deadline-aware admission fell behind drop-on-timeout at peak load"
        );
        write_result(&results, "fleet_scaling.md", &report.to_markdown())
            .expect("write fleet_scaling markdown");
        write_result(&results, "BENCH_fleet_scaling.json", &report.to_json())
            .expect("write fleet_scaling json");
        index.push((
            "fleet_scaling",
            "peak_load_admission_compliance",
            report
                .admission
                .last()
                .map_or(0.0, |row| row.compliance_admission),
        ));
    }

    if wants("serve") {
        println!("--- Serving layer: streaming ingestion + result cache (beyond the paper) ---");
        let requests = if quick { 60 } else { 200 };
        let report = serve_latency::run(SEED, requests);
        println!("{}", report.to_markdown());
        write_result(&results, "serve_latency.md", &report.to_markdown())
            .expect("write serve markdown");
        write_result(&results, "BENCH_serve_latency.json", &report.to_json())
            .expect("write serve json");
        index.push(("serve_latency", "warm_speedup", report.warm_speedup));
    }

    if wants("trace_overhead") {
        println!("--- Telemetry: dual-clock tracing overhead + coverage (beyond the paper) ---");
        let report = trace_overhead::run(SEED, quick);
        println!("{}", report.to_markdown());
        // run() already asserts the deterministic gates (bit-identical
        // digests, Perfetto shape, full stage coverage); the wall-time
        // gate lives here.
        assert!(
            report.overhead_frac < 0.05,
            "tracing overhead {:.1}% breached the 5% budget",
            report.overhead_frac * 100.0
        );
        write_result(&results, "trace_overhead.md", &report.to_markdown())
            .expect("write trace_overhead markdown");
        write_result(&results, "BENCH_trace_overhead.json", &report.to_json())
            .expect("write trace_overhead json");
        index.push(("trace_overhead", "overhead_frac", report.overhead_frac));
    }

    if wants("chaos_recovery") {
        println!("--- Fault tolerance: chaos injection + recovery gate (beyond the paper) ---");
        let report = chaos_recovery::run(SEED, quick);
        println!("{}", report.to_markdown());
        // run() already asserts the deterministic gates (zero lost
        // requests, bit-identical digests, no orphaned grants, the
        // quarantine → probe → revive ladder); the tail-latency gate
        // lives here where the machine is quiet.
        assert!(
            report.p99_inflation_bounded(),
            "recovery inflated p99 beyond the retry-ladder budget"
        );
        write_result(&results, "chaos_recovery.md", &report.to_markdown())
            .expect("write chaos_recovery markdown");
        write_result(&results, "BENCH_chaos_recovery.json", &report.to_json())
            .expect("write chaos_recovery json");
        index.push((
            "chaos_recovery",
            "worst_p99_ms",
            report
                .scenarios
                .iter()
                .map(|s| s.p99_ms)
                .fold(0.0, f64::max),
        ));
    }

    if wants("dvfs_pareto") {
        println!(
            "--- Energy-latency Pareto co-scheduling: DVFS domains, power cap, speculation \
             (beyond the paper) ---"
        );
        let report = dvfs_pareto::run(SEED, quick);
        println!("{}", report.to_markdown());
        assert!(
            report.identity_holds(),
            "DVFS-off serving diverged from the reference path: {:?}",
            report.identity
        );
        assert!(
            report.power_gate_holds(),
            "power cap missed the ≥25% energy / ≤1.5x latency envelope: {:?}",
            report.power
        );
        assert!(
            report.speculative_gate_holds(),
            "speculative serving missed the ≥3x p50 / zero-mismatch gate: {:?}",
            report.speculative
        );
        assert!(
            report.governor_active(),
            "governor committed no frequency transitions on an idle-heavy stream: {:?}",
            report.governor
        );
        write_result(&results, "dvfs_pareto.md", &report.to_markdown())
            .expect("write dvfs_pareto markdown");
        write_result(&results, "BENCH_dvfs_pareto.json", &report.to_json())
            .expect("write dvfs_pareto json");
        index.push((
            "dvfs_pareto",
            "capped_energy_drop",
            report.power.energy_drop,
        ));
    }

    if !index.is_empty() {
        let mut json = String::from("{\n  \"index\": [\n");
        for (i, (experiment, metric, value)) in index.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"file\": \"BENCH_{experiment}.json\", \"experiment\": \"{experiment}\", \
                 \"metric\": \"{metric}\", \"value\": {value:.4}}}{}\n",
                if i + 1 == index.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]\n}\n");
        write_result(&results, "BENCH_index.json", &json).expect("write bench index");
        println!(
            "consolidated {} headline metrics into BENCH_index.json",
            index.len()
        );
    }

    println!("report complete; artifacts in results/");
}
