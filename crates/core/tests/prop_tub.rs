//! Property-based tests for the tub datapath: the cycle-accurate PCU
//! must be bit-exact against golden dot products for any operands, and
//! its timing must follow the 2s-unary window law.

use proptest::prelude::*;
use tempus_arith::{dot, IntPrecision};
use tempus_core::csc_mod::ModifiedCsc;
use tempus_core::pcu::Pcu;
use tempus_core::tub_pe::TubPeCell;
use tempus_nvdla::csc::AtomicOp;

fn precision() -> impl Strategy<Value = IntPrecision> {
    prop_oneof![
        Just(IntPrecision::Int2),
        Just(IntPrecision::Int4),
        Just(IntPrecision::Int8),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cell_window_produces_exact_dot(
        p in precision(),
        seeds in prop::collection::vec((any::<i64>(), any::<i64>()), 1..24),
    ) {
        let weights: Vec<i32> = seeds.iter().map(|&(w, _)| p.wrap(w)).collect();
        let feature: Vec<i32> = seeds.iter().map(|&(_, a)| p.wrap(a)).collect();
        let mut cell = TubPeCell::new(weights.len(), p);
        cell.load_weights(&weights).unwrap();
        cell.begin(&feature).unwrap();
        for _ in 0..cell.latency() {
            cell.tick();
        }
        prop_assert_eq!(
            cell.partial_sum(),
            dot::binary(&feature, &weights, p).unwrap()
        );
    }

    #[test]
    fn cell_latency_law(
        p in precision(),
        seeds in prop::collection::vec(any::<i64>(), 1..24),
    ) {
        let weights: Vec<i32> = seeds.iter().map(|&w| p.wrap(w)).collect();
        let mut cell = TubPeCell::new(weights.len(), p);
        cell.load_weights(&weights).unwrap();
        let expected = weights.iter().map(|w| w.unsigned_abs()).max().unwrap().div_ceil(2);
        prop_assert_eq!(cell.latency(), expected);
        prop_assert_eq!(
            cell.silent_count(),
            weights.iter().filter(|&&w| w == 0).count()
        );
    }

    #[test]
    fn pcu_window_is_exact_and_timed(
        p in precision(),
        k in 1usize..4,
        n in 1usize..8,
        seed in any::<u32>(),
        cache_in in 0u32..3,
        cache_out in 0u32..3,
    ) {
        let lo = i64::from(p.min_value());
        let span = i64::from(p.max_value()) - lo + 1;
        let val = |i: usize| p.wrap(lo + ((seed as i64 + i as i64 * 2_654_435_761) % span + span) % span);
        let weights: Vec<Vec<i32>> = (0..k)
            .map(|cell| (0..n).map(|i| val(cell * n + i)).collect())
            .collect();
        let feature: Vec<i32> = (0..n).map(|i| val(1000 + i)).collect();

        let mut pcu = Pcu::new(k, n, p, cache_in, cache_out);
        pcu.load_weights(&weights).unwrap();
        let expected_window = ModifiedCsc::scan_latency(&weights).max(1)
            + cache_in + cache_out;
        prop_assert_eq!(pcu.cycles_per_op(), expected_window);

        pcu.begin(&AtomicOp { out_x: 0, out_y: 0, feature: feature.clone() }).unwrap();
        let mut bundle = None;
        let mut elapsed = 0u32;
        while bundle.is_none() {
            bundle = pcu.tick();
            elapsed += 1;
            prop_assert!(elapsed <= expected_window + 2, "window overran");
        }
        prop_assert_eq!(elapsed, expected_window);
        let bundle = bundle.unwrap();
        for (cell, sums) in bundle.sums.iter().enumerate() {
            prop_assert_eq!(
                *sums,
                dot::binary(&feature, &weights[cell], p).unwrap()
            );
        }
    }

    #[test]
    fn scan_latency_matches_tub_array_latency(
        p in precision(),
        seeds in prop::collection::vec(any::<i64>(), 1..64),
    ) {
        let flat: Vec<i32> = seeds.iter().map(|&w| p.wrap(w)).collect();
        let nested = vec![flat.clone()];
        prop_assert_eq!(
            ModifiedCsc::scan_latency(&nested),
            tempus_arith::tub::array_latency(&flat, p).unwrap()
        );
    }

    #[test]
    fn pcu_back_to_back_windows_are_independent(
        p in precision(),
        w1 in any::<i64>(),
        w2 in any::<i64>(),
        a1 in any::<i64>(),
        a2 in any::<i64>(),
    ) {
        // Two sequential ops through the same stripe must not leak
        // accumulator state between windows.
        let w = vec![vec![p.wrap(w1), p.wrap(w2)]];
        let mut pcu = Pcu::new(1, 2, p, 1, 1);
        pcu.load_weights(&w).unwrap();
        let f1 = vec![p.wrap(a1), p.wrap(a2)];
        let f2 = vec![p.wrap(a2), p.wrap(a1)];
        for f in [&f1, &f2] {
            while !pcu.ready() {
                pcu.tick();
            }
            pcu.begin(&AtomicOp { out_x: 0, out_y: 0, feature: f.clone() }).unwrap();
            let mut out = None;
            while out.is_none() {
                out = pcu.tick();
            }
            prop_assert_eq!(
                out.unwrap().sums[0],
                dot::binary(f, &w[0], p).unwrap()
            );
        }
    }
}
