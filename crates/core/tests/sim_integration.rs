//! Integration between the simulation kernel (`tempus-sim`) and the
//! cycle-accurate Tempus Core components: drive a PCU testbench as a
//! [`Clocked`] device under the watchdog [`Simulator`], and capture a
//! waveform with the VCD writer.

use tempus_arith::{dot, IntPrecision};
use tempus_core::pcu::Pcu;
use tempus_nvdla::cmac::PsumBundle;
use tempus_nvdla::csc::AtomicOp;
use tempus_sim::{Clocked, Fifo, Simulator, VcdValue, VcdWriter};

/// A self-driving testbench: feeds queued atomic ops into the PCU and
/// collects bundles, implementing `Clocked` so the generic simulator
/// machinery (watchdog, cycle accounting) drives it.
struct PcuTestbench {
    pcu: Pcu,
    pending: Fifo<AtomicOp>,
    collected: Vec<PsumBundle>,
}

impl PcuTestbench {
    fn new(pcu: Pcu, ops: Vec<AtomicOp>) -> Self {
        let mut pending = Fifo::new(ops.len().max(1));
        for op in ops {
            pending.push(op).expect("sized to fit");
        }
        PcuTestbench {
            pcu,
            pending,
            collected: Vec::new(),
        }
    }

    fn done(&self, expected: usize) -> bool {
        self.collected.len() == expected
    }
}

impl Clocked for PcuTestbench {
    fn tick(&mut self) {
        if self.pcu.ready() && self.pending.valid() {
            let op = self.pending.pop().expect("valid checked");
            self.pcu.begin(&op).expect("operands validated by test");
        }
        if let Some(bundle) = self.pcu.tick() {
            self.collected.push(bundle);
        }
    }

    fn reset(&mut self) {
        self.collected.clear();
    }
}

#[test]
fn simulator_drives_pcu_to_completion() {
    let p = IntPrecision::Int8;
    let weights = vec![vec![3, -7, 0, 127], vec![-128, 1, 64, -2]];
    let mut pcu = Pcu::new(2, 4, p, 1, 1);
    pcu.load_weights(&weights).unwrap();

    let ops: Vec<AtomicOp> = (0..5)
        .map(|i| AtomicOp {
            out_x: i,
            out_y: 0,
            feature: vec![
                i as i32 * 3 - 5,
                10 - i as i32,
                -(i as i32),
                2 * i as i32 - 3,
            ],
        })
        .collect();
    let features: Vec<Vec<i32>> = ops.iter().map(|o| o.feature.clone()).collect();

    let mut tb = PcuTestbench::new(pcu, ops);
    let mut sim = Simulator::at_250_mhz();
    let cycles = sim
        .run_until(&mut tb, |tb| tb.done(5), 10_000)
        .expect("PCU must drain all ops");

    // 5 ops x (1 cache-in + 64 worst-case window + 1 cache-out) upper
    // bound; actual windows are set by the stripe scan.
    assert!(cycles <= 5 * 66 + 10, "cycles {cycles}");
    assert_eq!(tb.collected.len(), 5);
    for (bundle, feature) in tb.collected.iter().zip(&features) {
        for (cell, sum) in bundle.sums.iter().enumerate() {
            assert_eq!(*sum, dot::binary(feature, &weights[cell], p).unwrap());
        }
    }
    // Wall-clock bookkeeping at 250 MHz.
    assert!((sim.elapsed_ns() - cycles as f64 * 4.0).abs() < 1e-9);
}

#[test]
fn watchdog_catches_starved_testbench() {
    // A testbench whose done-condition can never be met must trip the
    // watchdog rather than hang.
    let p = IntPrecision::Int8;
    let mut pcu = Pcu::new(1, 2, p, 1, 1);
    pcu.load_weights(&[vec![1, 1]]).unwrap();
    let mut tb = PcuTestbench::new(pcu, vec![]);
    let mut sim = Simulator::at_250_mhz();
    let err = sim.run_until(&mut tb, |tb| tb.done(1), 64).unwrap_err();
    assert_eq!(
        err.to_string(),
        "simulation watchdog expired after 64 cycles"
    );
}

#[test]
fn vcd_capture_of_a_pcu_window() {
    let p = IntPrecision::Int8;
    let mut pcu = Pcu::new(1, 2, p, 1, 1);
    pcu.load_weights(&[vec![9, -4]]).unwrap();
    let op = AtomicOp {
        out_x: 0,
        out_y: 0,
        feature: vec![5, 6],
    };

    let mut vcd = VcdWriter::new("pcu_tb", 4);
    let ready = vcd.add_signal("ready", 1);
    let out_valid = vcd.add_signal("out_valid", 1);

    pcu.begin(&op).unwrap();
    let mut produced = false;
    for cycle in 0..20u64 {
        vcd.record(cycle, ready, VcdValue::Bit(pcu.ready()));
        let out = pcu.tick();
        vcd.record(cycle, out_valid, VcdValue::Bit(out.is_some()));
        if let Some(bundle) = out {
            assert_eq!(bundle.sums[0], 5 * 9 + 6 * (-4));
            produced = true;
            break;
        }
    }
    assert!(produced, "window must complete inside the capture");
    let text = vcd.finish();
    assert!(text.contains("$var wire 1 ! ready $end"));
    assert!(text.contains("#0"));
    // ready must go low while the window is in flight.
    assert!(text.contains("0!"));
}

#[test]
fn scoreboard_compares_pcu_against_cmac_stream() {
    use tempus_nvdla::cmac::BinaryCmac;
    use tempus_sim::Scoreboard;

    let p = IntPrecision::Int8;
    let weights = vec![vec![2, -3, 5, 0], vec![7, 1, -1, 4], vec![0, 0, 0, 0]];
    let ops: Vec<AtomicOp> = (0..8)
        .map(|i| AtomicOp {
            out_x: i % 4,
            out_y: i / 4,
            feature: vec![
                (i as i32 * 11) % 100 - 50,
                (i as i32 * 7) % 90 - 40,
                -(i as i32),
                i as i32 * 2,
            ],
        })
        .collect();

    // Reference stream: the binary CMAC.
    let mut cmac = BinaryCmac::new(3, 4, p, 1);
    cmac.load_weights(&weights);
    let mut scoreboard = Scoreboard::new();
    for op in &ops {
        if let Some(bundle) = cmac.step(Some(op)) {
            scoreboard.expect(bundle);
        }
    }
    scoreboard.expect_all(cmac.drain());

    // Observed stream: the PCU, one multi-cycle window per op.
    let mut pcu = Pcu::new(3, 4, p, 1, 1);
    pcu.load_weights(&weights).unwrap();
    for op in &ops {
        while !pcu.ready() {
            if let Some(bundle) = pcu.tick() {
                scoreboard.observe(bundle).expect("streams must agree");
            }
        }
        pcu.begin(op).unwrap();
    }
    while !pcu.ready() {
        if let Some(bundle) = pcu.tick() {
            scoreboard.observe(bundle).expect("streams must agree");
        }
    }
    for bundle in pcu.drain() {
        scoreboard.observe(bundle).expect("streams must agree");
    }
    assert_eq!(scoreboard.finish().expect("all bundles matched"), 8);
}
