//! The full Tempus Core engine: modified CSC + PCU + CACC behind the
//! [`ConvCore`] socket.
//!
//! Two execution strategies share the same components and produce
//! bit-identical results:
//!
//! * **window-batched** (the default, [`ConvCore::convolve`]) — the
//!   driver consumes whole compute windows via [`Pcu::run_window`] and
//!   the allocation-free scratch command stream
//!   ([`ModifiedCsc::next_step`]); per-atomic-op cost is O(k·n) with
//!   zero heap allocation in the loop;
//! * **per-cycle reference**
//!   ([`TempusCore::convolve_reference`]) — ticks the PCU cycle by
//!   cycle over the allocating command iterator, exactly the
//!   pre-window-batching engine, retained for equivalence tests and
//!   the `sim_speed` benchmark.

use tempus_arith::IntPrecision;
use tempus_nvdla::cacc::Cacc;
use tempus_nvdla::cbuf::ConvBuffer;
use tempus_nvdla::config::NvdlaConfig;
use tempus_nvdla::conv::{check_operands, ConvParams};
use tempus_nvdla::cube::{DataCube, KernelSet};
use tempus_nvdla::pipeline::{ConvCore, ConvRun, RunStats};
use tempus_nvdla::NvdlaError;

use crate::csc_mod::{ModifiedCsc, TempusCommand, TempusStep};
use crate::pcu::Pcu;

/// Tempus Core configuration: the NVDLA socket parameters plus the
/// PCU's multi-cycle overheads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TempusConfig {
    /// The underlying NVDLA configuration (array shape, precision,
    /// buffer geometry).
    pub base: NvdlaConfig,
    /// Cycles to cache operands into the cells per atomic op.
    pub cache_in_cycles: u32,
    /// Cycles to forward partial sums out per atomic op.
    pub cache_out_cycles: u32,
}

impl TempusConfig {
    /// Wraps an NVDLA configuration with the paper's default one-cycle
    /// cache-in / one-cycle cache-out overheads.
    #[must_use]
    pub fn new(base: NvdlaConfig) -> Self {
        TempusConfig {
            base,
            cache_in_cycles: 1,
            cache_out_cycles: 1,
        }
    }

    /// The paper's 16×16 evaluation configuration.
    #[must_use]
    pub fn paper_16x16() -> Self {
        TempusConfig::new(NvdlaConfig::paper_16x16())
    }

    /// An `nv_small`-socket Tempus Core.
    #[must_use]
    pub fn nv_small() -> Self {
        TempusConfig::new(NvdlaConfig::nv_small())
    }

    /// Overrides the operating precision (builder style).
    #[must_use]
    pub fn with_precision(mut self, precision: IntPrecision) -> Self {
        self.base.precision = precision;
        self
    }

    /// Overrides the cache overheads (builder style).
    #[must_use]
    pub fn with_cache_overheads(mut self, cache_in: u32, cache_out: u32) -> Self {
        self.cache_in_cycles = cache_in;
        self.cache_out_cycles = cache_out;
        self
    }
}

impl Default for TempusConfig {
    fn default() -> Self {
        TempusConfig::paper_16x16()
    }
}

/// Extended statistics specific to the tub datapath.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TempusStats {
    /// Sum over stripes of the scanned window length (compute cycles).
    pub total_window_cycles: u64,
    /// Average window length per atomic op, in cycles.
    pub avg_window_cycles: f64,
    /// Worst window observed.
    pub max_window_cycles: u32,
    /// PE-cycles spent pulsing (active).
    pub pe_pulse_cycles: u64,
    /// PE-cycles spent gated (silent or drained).
    pub pe_gated_cycles: u64,
    /// Average silent PEs per stripe.
    pub avg_silent_pes: f64,
    /// Total silent-PE observations summed over stripes (the exact
    /// integer `avg_silent_pes` is derived from — kept so sharded
    /// runs can merge statistics without floating-point round trips).
    pub total_silent_pes: u64,
}

/// The Tempus Core engine.
#[derive(Debug, Clone)]
pub struct TempusCore {
    config: TempusConfig,
    last_stats: TempusStats,
}

impl TempusCore {
    /// Creates the engine.
    #[must_use]
    pub fn new(config: TempusConfig) -> Self {
        TempusCore {
            config,
            last_stats: TempusStats::default(),
        }
    }

    /// The Tempus-specific configuration.
    #[must_use]
    pub fn tempus_config(&self) -> &TempusConfig {
        &self.config
    }

    /// tub-specific statistics from the most recent
    /// [`convolve`](ConvCore::convolve) run.
    #[must_use]
    pub fn last_tempus_stats(&self) -> TempusStats {
        self.last_stats
    }
}

impl ConvCore for TempusCore {
    fn name(&self) -> &'static str {
        "tempus-core"
    }

    fn config(&self) -> &NvdlaConfig {
        &self.config.base
    }

    fn convolve(
        &mut self,
        features: &DataCube,
        kernels: &KernelSet,
        params: &ConvParams,
    ) -> Result<ConvRun, NvdlaError> {
        let base = &self.config.base;
        check_operands(features, kernels, base.precision)?;
        let mut cbuf = ConvBuffer::new(*base);
        cbuf.load(features, kernels, base.precision)?;

        let mut seq = ModifiedCsc::new(features, kernels, params, base)?;
        let (out_w, out_h) = seq.output_dims();
        let mut scratch = seq.scratch();
        let mut pcu = Pcu::new(
            base.atomic_k,
            base.atomic_c,
            base.precision,
            self.config.cache_in_cycles,
            self.config.cache_out_cycles,
        );
        let mut cacc = Cacc::new(out_w, out_h, kernels.k(), base.cacc_bits);

        let mut stats = RunStats::default();
        let mut tstats = TempusStats::default();
        let mut kernel_base = 0usize;
        let mut total_silent: u64 = 0;
        let watchdog_limit = watchdog_limit(&seq, base);
        while let Some(step) = seq.next_step(&mut scratch) {
            match step {
                TempusStep::LoadWeights {
                    kernel_group,
                    stripe_latency,
                    silent_pes,
                } => {
                    // Wait for any in-flight window to complete before
                    // swapping weights (§III: partial sums forwarded
                    // once all cells finish) — one run_window call
                    // instead of a per-cycle stall loop.
                    let consumed =
                        pcu.run_window(&mut |bundle| cacc.accumulate(&bundle, kernel_base));
                    advance_watchdog(&mut stats.cycles, consumed, watchdog_limit)?;
                    for bundle in pcu.drain() {
                        cacc.accumulate(&bundle, kernel_base);
                    }
                    kernel_base = kernel_group * base.atomic_k;
                    pcu.load_weights(&scratch.cell_weights)?;
                    stats.stripes += 1;
                    stats.cycles += 1; // weight cache swap
                    tstats.max_window_cycles = tstats.max_window_cycles.max(stripe_latency);
                    total_silent += silent_pes as u64;
                }
                TempusStep::Atomic { out_x, out_y } => {
                    cbuf.record_read();
                    // Multi-cycle handshake: the whole stall-until-
                    // accept window is consumed in one call.
                    let consumed =
                        pcu.run_window(&mut |bundle| cacc.accumulate(&bundle, kernel_base));
                    advance_watchdog(&mut stats.cycles, consumed, watchdog_limit)?;
                    pcu.begin_op(out_x, out_y, &scratch.feature)?;
                    tstats.total_window_cycles += u64::from(pcu.stripe_latency().max(1));
                    stats.atomic_ops += 1;
                }
            }
        }
        // Flush the final window.
        let consumed = pcu.run_window(&mut |bundle| cacc.accumulate(&bundle, kernel_base));
        advance_watchdog(&mut stats.cycles, consumed, watchdog_limit)?;
        for bundle in pcu.drain() {
            cacc.accumulate(&bundle, kernel_base);
        }

        self.finish(&pcu, &cbuf, cacc, stats, tstats, total_silent)
    }
}

/// The deadlock ceiling both engines share: worst-case window plus
/// handshake slack per atomic op, one cycle per stripe, plus margin.
fn watchdog_limit(seq: &ModifiedCsc, base: &NvdlaConfig) -> u64 {
    seq.atomic_op_count()
        .saturating_mul(u64::from(base.precision.worst_case_tub_cycles()) + 8)
        .saturating_add(seq.stripe_count())
        .saturating_add(1024)
}

/// Advances the cycle counter by a fast-forwarded window, reproducing
/// the per-cycle watchdog exactly: the tick loop increments then
/// checks, so the first violation fires at `max(cycles, limit) + 1`.
fn advance_watchdog(cycles: &mut u64, consumed: u64, limit: u64) -> Result<(), NvdlaError> {
    if *cycles + consumed > limit {
        return Err(NvdlaError::Deadlock {
            cycles: (*cycles).max(limit) + 1,
        });
    }
    *cycles += consumed;
    Ok(())
}

impl TempusCore {
    /// The pre-window-batching engine: drives the PCU **cycle by
    /// cycle** over the allocating command iterator. Bit-identical to
    /// [`ConvCore::convolve`] in outputs and every statistic — the
    /// equivalence is enforced by tests and by the `sim_speed`
    /// benchmark, which also measures the wall-clock gap between the
    /// two.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`ConvCore::convolve`], including the
    /// same watchdog cycle counts.
    pub fn convolve_reference(
        &mut self,
        features: &DataCube,
        kernels: &KernelSet,
        params: &ConvParams,
    ) -> Result<ConvRun, NvdlaError> {
        let base = &self.config.base;
        check_operands(features, kernels, base.precision)?;
        let mut cbuf = ConvBuffer::new(*base);
        cbuf.load(features, kernels, base.precision)?;

        let seq = ModifiedCsc::new(features, kernels, params, base)?;
        let (out_w, out_h) = seq.output_dims();
        let mut pcu = Pcu::new(
            base.atomic_k,
            base.atomic_c,
            base.precision,
            self.config.cache_in_cycles,
            self.config.cache_out_cycles,
        );
        let mut cacc = Cacc::new(out_w, out_h, kernels.k(), base.cacc_bits);

        let mut stats = RunStats::default();
        let mut tstats = TempusStats::default();
        let mut kernel_base = 0usize;
        let mut total_silent: u64 = 0;
        let watchdog_limit = watchdog_limit(&seq, base);
        for cmd in seq {
            match cmd {
                TempusCommand::LoadWeights {
                    load,
                    stripe_latency,
                    silent_pes,
                } => {
                    while !pcu.ready() {
                        if let Some(bundle) = pcu.tick() {
                            cacc.accumulate(&bundle, kernel_base);
                        }
                        stats.cycles += 1;
                        if stats.cycles > watchdog_limit {
                            return Err(NvdlaError::Deadlock {
                                cycles: stats.cycles,
                            });
                        }
                    }
                    for bundle in pcu.drain() {
                        cacc.accumulate(&bundle, kernel_base);
                    }
                    kernel_base = load.stripe.kernel_group * base.atomic_k;
                    pcu.load_weights(&load.cell_weights)?;
                    stats.stripes += 1;
                    stats.cycles += 1; // weight cache swap
                    tstats.max_window_cycles = tstats.max_window_cycles.max(stripe_latency);
                    total_silent += silent_pes as u64;
                }
                TempusCommand::Atomic(op) => {
                    cbuf.record_read();
                    while !pcu.ready() {
                        if let Some(bundle) = pcu.tick() {
                            cacc.accumulate(&bundle, kernel_base);
                        }
                        stats.cycles += 1;
                        if stats.cycles > watchdog_limit {
                            return Err(NvdlaError::Deadlock {
                                cycles: stats.cycles,
                            });
                        }
                    }
                    pcu.begin(&op)?;
                    tstats.total_window_cycles += u64::from(pcu.stripe_latency().max(1));
                    stats.atomic_ops += 1;
                }
            }
        }
        while !pcu.ready() {
            if let Some(bundle) = pcu.tick() {
                cacc.accumulate(&bundle, kernel_base);
            }
            stats.cycles += 1;
            if stats.cycles > watchdog_limit {
                return Err(NvdlaError::Deadlock {
                    cycles: stats.cycles,
                });
            }
        }
        for bundle in pcu.drain() {
            cacc.accumulate(&bundle, kernel_base);
        }

        self.finish(&pcu, &cbuf, cacc, stats, tstats, total_silent)
    }

    /// Runs one convolution partitioned across `num_arrays` PE arrays
    /// (see [`crate::shard`]): each shard runs on its own
    /// window-batched engine, psum streams merge deterministically
    /// into CACC output order, and the merged statistics — including
    /// the tub window/pulse statistics left in
    /// [`last_tempus_stats`](TempusCore::last_tempus_stats) — are
    /// bit-identical to the single-array engine. The run's
    /// `critical_path_cycles` (slowest shard + reduction stage) is the
    /// multi-array latency; `stats.cycles` stays the summed
    /// array-cycles so work accounting is conserved.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`ConvCore::convolve`] applied per shard.
    pub fn convolve_sharded(
        &mut self,
        features: &DataCube,
        kernels: &KernelSet,
        params: &ConvParams,
        num_arrays: usize,
    ) -> Result<crate::shard::ShardedConvRun, NvdlaError> {
        let mut per_shard: Vec<TempusStats> = Vec::new();
        let mut run = crate::shard::convolve_sharded_with(
            self,
            features,
            kernels,
            params,
            num_arrays,
            |core: &TempusCore| per_shard.push(core.last_stats),
        )?;

        let mut merged = TempusStats::default();
        for ts in &per_shard {
            merged.total_window_cycles += ts.total_window_cycles;
            merged.max_window_cycles = merged.max_window_cycles.max(ts.max_window_cycles);
            merged.pe_pulse_cycles += ts.pe_pulse_cycles;
            merged.pe_gated_cycles += ts.pe_gated_cycles;
            merged.total_silent_pes += ts.total_silent_pes;
        }
        merged.avg_window_cycles = if run.stats.atomic_ops == 0 {
            0.0
        } else {
            merged.total_window_cycles as f64 / run.stats.atomic_ops as f64
        };
        merged.avg_silent_pes = if run.stats.stripes == 0 {
            0.0
        } else {
            merged.total_silent_pes as f64 / run.stats.stripes as f64
        };
        // Tempus utilization is pulse-based; recompute it from the
        // merged integers (the generic driver's figure is MAC-based).
        let lane_cycles = run.stats.cycles * self.config.base.lanes() as u64;
        run.stats.utilization = if lane_cycles == 0 {
            0.0
        } else {
            merged.pe_pulse_cycles as f64 / lane_cycles as f64
        };
        // Refine per-shard activity to pulse/gated PE-cycles.
        for (shard, ts) in run.shards.iter_mut().zip(&per_shard) {
            let mut activity = tempus_sim::ActivityCounter::new();
            activity.record_active_n(ts.pe_pulse_cycles);
            activity.record_gated_n(ts.pe_gated_cycles);
            shard.activity =
                tempus_sim::ShardActivity::new(shard.index, shard.stats.cycles, activity);
        }
        self.last_stats = merged;
        Ok(run)
    }

    /// Shared statistics finalisation of both engines.
    fn finish(
        &mut self,
        pcu: &Pcu,
        cbuf: &ConvBuffer,
        cacc: Cacc,
        mut stats: RunStats,
        mut tstats: TempusStats,
        total_silent: u64,
    ) -> Result<ConvRun, NvdlaError> {
        let base = &self.config.base;
        let pe_activity = pcu.pe_activity();
        tstats.pe_pulse_cycles = pe_activity.active_cycles();
        tstats.pe_gated_cycles = pe_activity.gated_cycles();
        tstats.avg_window_cycles = if stats.atomic_ops == 0 {
            0.0
        } else {
            tstats.total_window_cycles as f64 / stats.atomic_ops as f64
        };
        tstats.avg_silent_pes = if stats.stripes == 0 {
            0.0
        } else {
            total_silent as f64 / stats.stripes as f64
        };
        tstats.total_silent_pes = total_silent;
        self.last_stats = tstats;

        // One MAC-equivalent per pulse-active PE-cycle would overcount;
        // the useful work equals the binary core's MAC count, which is
        // lanes × atomic ops minus gated lanes. Report pulses as
        // activity and MACs as the logical multiply count.
        stats.macs = stats.atomic_ops * base.lanes() as u64;
        stats.gated_cell_cycles = tstats.pe_gated_cycles;
        let lane_cycles = stats.cycles * base.lanes() as u64;
        stats.utilization = if lane_cycles == 0 {
            0.0
        } else {
            tstats.pe_pulse_cycles as f64 / lane_cycles as f64
        };
        stats.cbuf_reads = cbuf.reads();

        Ok(ConvRun {
            output: cacc.read_out()?,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempus_nvdla::conv::direct_conv;
    use tempus_nvdla::pipeline::NvdlaConvCore;

    fn case(c: usize, k: usize, seed: i32) -> (DataCube, KernelSet) {
        let f = DataCube::from_fn(6, 6, c, move |x, y, ch| {
            ((x as i32 * 31 + y as i32 * 17 + ch as i32 * 7 + seed) % 255) - 127
        });
        let kn = KernelSet::from_fn(k, 3, 3, c, move |k, r, s, ch| {
            ((k as i32 * 13 + r as i32 * 5 + s as i32 * 3 + ch as i32 * 11 + seed) % 255) - 127
        });
        (f, kn)
    }

    #[test]
    fn matches_golden_and_binary_core() {
        let (f, k) = case(8, 8, 3);
        let params = ConvParams::unit_stride_same(3);
        let golden = direct_conv(&f, &k, &params).unwrap();
        let mut tempus = TempusCore::new(TempusConfig::nv_small());
        let mut binary = NvdlaConvCore::new(NvdlaConfig::nv_small());
        let t = tempus.convolve(&f, &k, &params).unwrap();
        let b = binary.convolve(&f, &k, &params).unwrap();
        assert_eq!(t.output, golden);
        assert_eq!(b.output, golden);
    }

    #[test]
    fn matches_golden_with_grouping_and_stride() {
        let (f, k) = case(11, 13, 7);
        let params = ConvParams::strided(2, 1);
        let golden = direct_conv(&f, &k, &params).unwrap();
        let mut tempus = TempusCore::new(TempusConfig::nv_small());
        let run = tempus.convolve(&f, &k, &params).unwrap();
        assert_eq!(run.output, golden);
    }

    #[test]
    fn int4_precision_round_trip() {
        let f = DataCube::from_fn(5, 5, 4, |x, y, c| ((x + y + c) % 15) as i32 - 7);
        let k = KernelSet::from_fn(3, 3, 3, 4, |a, b, c, d| ((a + b + c + d) % 15) as i32 - 7);
        let params = ConvParams::valid();
        let golden = direct_conv(&f, &k, &params).unwrap();
        let mut tempus = TempusCore::new(
            TempusConfig::new(NvdlaConfig::nv_small().with_array(4, 4))
                .with_precision(IntPrecision::Int4),
        );
        let run = tempus.convolve(&f, &k, &params).unwrap();
        assert_eq!(run.output, golden);
    }

    #[test]
    fn cycle_count_reflects_weight_magnitudes() {
        // Small weights -> short windows; large weights -> long ones.
        let f = DataCube::from_fn(4, 4, 8, |_, _, _| 1);
        let small = KernelSet::from_fn(8, 1, 1, 8, |_, _, _, _| 2);
        let large = KernelSet::from_fn(8, 1, 1, 8, |_, _, _, _| -128);
        let params = ConvParams::valid();
        let mut core = TempusCore::new(TempusConfig::nv_small());
        let fast = core.convolve(&f, &small, &params).unwrap();
        let slow = core.convolve(&f, &large, &params).unwrap();
        assert!(slow.stats.cycles > fast.stats.cycles * 10);
        assert_eq!(fast.output.get(0, 0, 0), 16);
        assert_eq!(slow.output.get(0, 0, 0), -128 * 8);
    }

    #[test]
    fn tempus_stats_report_windows_and_silence() {
        let f = DataCube::from_fn(4, 4, 8, |_, _, _| 1);
        let mut k = KernelSet::zeros(8, 1, 1, 8);
        k.set(0, 0, 0, 0, 10); // one nonzero weight in the whole set
        let mut core = TempusCore::new(TempusConfig::nv_small());
        let run = core.convolve(&f, &k, &ConvParams::valid()).unwrap();
        let ts = core.last_tempus_stats();
        assert_eq!(ts.max_window_cycles, 5);
        assert!((ts.avg_window_cycles - 5.0).abs() < 1e-9);
        assert_eq!(ts.avg_silent_pes, 63.0);
        assert_eq!(run.output.get(0, 0, 0), 10);
    }

    #[test]
    fn windowed_engine_matches_reference_engine_exactly() {
        // Outputs AND statistics must be bit-identical between the
        // window-batched engine and the per-cycle reference.
        let cases = [
            (8usize, 8usize, 3i32, ConvParams::unit_stride_same(3)),
            (11, 13, 7, ConvParams::strided(2, 1)),
            (4, 5, 9, ConvParams::valid()),
        ];
        for (c, k, seed, params) in cases {
            let (f, kn) = case(c, k, seed);
            let mut windowed = TempusCore::new(TempusConfig::nv_small());
            let mut reference = TempusCore::new(TempusConfig::nv_small());
            let w = windowed.convolve(&f, &kn, &params).unwrap();
            let r = reference.convolve_reference(&f, &kn, &params).unwrap();
            assert_eq!(w.output, r.output);
            assert_eq!(w.stats, r.stats);
            assert_eq!(windowed.last_tempus_stats(), reference.last_tempus_stats());
        }
    }

    #[test]
    fn sharded_run_is_bit_identical_to_single_array() {
        // Outputs AND every statistic (work sums, tub windows, pulse
        // counts, utilization) must be bit-identical to the
        // single-array engine, on both split axes.
        let params = ConvParams::unit_stride_same(3);
        for (c, k, arrays) in [
            (8usize, 32usize, 2usize),
            (8, 32, 4),
            (32, 8, 4),
            (11, 19, 3),
        ] {
            let (f, kn) = case(c, k, 7);
            let mut single = TempusCore::new(TempusConfig::nv_small());
            let base = single.convolve(&f, &kn, &params).unwrap();
            let mut sharded = TempusCore::new(TempusConfig::nv_small());
            let run = sharded.convolve_sharded(&f, &kn, &params, arrays).unwrap();
            assert_eq!(run.output, base.output, "c={c} k={k} arrays={arrays}");
            assert_eq!(run.stats, base.stats, "c={c} k={k} arrays={arrays}");
            assert_eq!(
                sharded.last_tempus_stats(),
                single.last_tempus_stats(),
                "c={c} k={k} arrays={arrays}"
            );
            assert!(run.critical_path_cycles < base.stats.cycles);
            let per_shard = run.per_shard_cycles();
            assert_eq!(per_shard.iter().sum::<u64>(), base.stats.cycles);
            assert_eq!(
                run.critical_path_cycles,
                per_shard.iter().copied().max().unwrap() + run.reduction_cycles
            );
        }
    }

    #[test]
    fn single_array_plan_is_a_passthrough() {
        let (f, kn) = case(8, 8, 3);
        let params = ConvParams::valid();
        let mut a = TempusCore::new(TempusConfig::nv_small());
        let base = a.convolve(&f, &kn, &params).unwrap();
        let mut b = TempusCore::new(TempusConfig::nv_small());
        let run = b.convolve_sharded(&f, &kn, &params, 1).unwrap();
        assert_eq!(run.output, base.output);
        assert_eq!(run.stats, base.stats);
        assert_eq!(run.critical_path_cycles, base.stats.cycles);
        assert_eq!(run.reduction_cycles, 0);
        assert_eq!(run.plan.used_arrays(), 1);
        assert_eq!(a.last_tempus_stats(), b.last_tempus_stats());
    }

    #[test]
    fn watchdog_fires_identically_in_both_engines() {
        // Absurd cache overheads push every op past the watchdog
        // ceiling; the two engines must fail with the same cycle count.
        let (f, k) = case(8, 8, 3);
        let params = ConvParams::valid();
        let cfg = TempusConfig::nv_small().with_cache_overheads(10_000, 10_000);
        let mut windowed = TempusCore::new(cfg);
        let mut reference = TempusCore::new(cfg);
        let w = windowed.convolve(&f, &k, &params).unwrap_err();
        let r = reference.convolve_reference(&f, &k, &params).unwrap_err();
        assert_eq!(format!("{w:?}"), format!("{r:?}"));
    }

    #[test]
    fn throughput_tradeoff_vs_binary() {
        let (f, k) = case(8, 8, 11);
        let params = ConvParams::valid();
        let mut tempus = TempusCore::new(TempusConfig::nv_small());
        let mut binary = NvdlaConvCore::new(NvdlaConfig::nv_small());
        let t = tempus.convolve(&f, &k, &params).unwrap();
        let b = binary.convolve(&f, &k, &params).unwrap();
        // Random INT8 weights: expect a large multi-cycle penalty,
        // bounded by worst case 64 + overheads.
        let ratio = t.stats.cycles as f64 / b.stats.cycles as f64;
        assert!(ratio > 5.0, "ratio {ratio}");
        assert!(ratio < 70.0, "ratio {ratio}");
    }
}
