//! Streaming tiled GEMM: resource-invariant execution of large
//! products through a bounded, reused scratch arena.
//!
//! The materialized engine ([`TubGemm::multiply`]) walks whole
//! operands and a full `rows × cols` `i64` accumulator. This module
//! streams the same computation through O(tile) scratch: per output
//! tile, the inner dimension is cut into [`StreamPlan::tile_k`]-deep
//! windows whose operand tiles are staged into a double-buffered
//! arena (window *w+1* is staged while window *w* computes, so
//! staging hides under compute and never extends the modelled
//! latency), and partial sums accumulate in a tile-local accumulator
//! bank that never leaves the core until the tile's final flush.
//!
//! **Bit-identity is the contract.** Outputs and [`GemmStats`] match
//! the materialized path exactly: integer accumulation is exact and
//! the windows visit the inner dimension in the same ascending order,
//! and every cycle/silence counter is computed from the same
//! per-step operand values. Streaming is purely an
//! execution-order/memory-footprint transform, which is why the
//! closed-form latency model ([`TubGemm::sharded_cycle_model`])
//! carries over to the streamed path unchanged
//! ([`TubGemm::streamed_cycle_model`] pins this).

use std::ops::Range;

use tempus_arith::{ArithError, TwosUnaryStream};

use crate::gemm::{GemmStats, Matrix, ShardedGemmRun, TubGemm};
use crate::shard::GemmAxis;
use crate::shard::GemmShardPlan;

/// Inner-dimension tiling plan for a streamed GEMM: how many inner
/// (`k`) steps are staged per window. The output-tile dimensions are
/// the engine's PE grid, so the whole scratch arena is a pure
/// function of the plan and the grid — O(tile), independent of
/// operand size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamPlan {
    tile_k: usize,
}

impl StreamPlan {
    /// A plan staging `tile_k` inner steps per window.
    ///
    /// # Panics
    ///
    /// Panics when `tile_k` is zero.
    #[must_use]
    pub fn new(tile_k: usize) -> Self {
        assert!(tile_k > 0, "stream window depth must be nonzero");
        StreamPlan { tile_k }
    }

    /// Inner steps staged per window.
    #[must_use]
    pub fn tile_k(&self) -> usize {
        self.tile_k
    }

    /// Peak scratch in elements for `A(m×n) × B(n×p)` on `engine`:
    /// double-buffered A and B operand tiles plus the tile-local
    /// accumulator bank. Grid and window depths cap at the operand
    /// extents, so small problems do not over-allocate; for operands
    /// larger than the grid the figure is **independent of operand
    /// size** — that is the streaming guarantee.
    #[must_use]
    pub fn peak_scratch_elems(&self, engine: &TubGemm, m: usize, n: usize, p: usize) -> u64 {
        let em = engine.grid_m().min(m) as u64;
        let ep = engine.grid_p().min(p) as u64;
        let ek = self.tile_k.min(n) as u64;
        2 * em * ek + 2 * ek * ep + em * ep
    }

    /// The smallest scratch any plan can run `A(m×n) × B(n×p)` in on
    /// `engine`: a one-step window ([`StreamPlan::new`]`(1)`).
    #[must_use]
    pub fn min_scratch_elems(engine: &TubGemm, m: usize, n: usize, p: usize) -> u64 {
        StreamPlan::new(1).peak_scratch_elems(engine, m, n, p)
    }

    /// The deepest plan whose scratch fits `budget_elems`, or `None`
    /// when even a one-step window exceeds the budget. Deeper windows
    /// amortize staging better, so the largest feasible `tile_k` is
    /// always chosen (capped at `n`: beyond that the arena stops
    /// growing).
    #[must_use]
    pub fn for_budget(
        engine: &TubGemm,
        m: usize,
        n: usize,
        p: usize,
        budget_elems: u64,
    ) -> Option<StreamPlan> {
        let em = engine.grid_m().min(m) as u64;
        let ep = engine.grid_p().min(p) as u64;
        let bank = em * ep;
        let per_step = 2 * (em + ep);
        let spare = budget_elems.checked_sub(bank)?;
        let tile_k = usize::try_from(spare / per_step).unwrap_or(usize::MAX);
        let tile_k = tile_k.min(n.max(1));
        if tile_k == 0 {
            return None;
        }
        let plan = StreamPlan::new(tile_k);
        (plan.peak_scratch_elems(engine, m, n, p) <= budget_elems).then_some(plan)
    }
}

/// Streaming-side statistics of a streamed run (the compute-side
/// statistics stay in [`GemmStats`], bit-identical to the
/// materialized engine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Scratch arena high-water mark in elements: both operand
    /// double-buffers plus the accumulator bank. Equals
    /// [`StreamPlan::peak_scratch_elems`] exactly.
    pub peak_scratch_elems: u64,
    /// Operand tiles staged through the arena (one A plus one B tile
    /// per window per output-tile pass).
    pub tiles_staged: u64,
    /// Inner-dimension windows pipelined, summed over tile passes.
    pub inner_windows: u64,
    /// The window depth the run used.
    pub tile_k: usize,
}

impl StreamStats {
    /// Folds another shard's streaming counters into this one (the
    /// arena is shared, so the high-water mark is the max).
    pub fn merge(&mut self, other: &StreamStats) {
        self.peak_scratch_elems = self.peak_scratch_elems.max(other.peak_scratch_elems);
        self.tiles_staged += other.tiles_staged;
        self.inner_windows += other.inner_windows;
        self.tile_k = other.tile_k;
    }
}

/// Result of a streamed tubGEMM run.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedGemmRun {
    /// Exact product — bit-identical to [`TubGemm::multiply`].
    pub output: Matrix,
    /// Cycle statistics — bit-identical to [`TubGemm::multiply`].
    pub stats: GemmStats,
    /// Streaming-side counters.
    pub stream: StreamStats,
}

/// Result of a streamed multi-array tubGEMM run.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedShardedGemmRun {
    /// The sharded run — bit-identical to
    /// [`TubGemm::multiply_sharded`] in output, stats, plan and
    /// per-shard cycles.
    pub run: ShardedGemmRun,
    /// Streaming-side counters, merged across shards.
    pub stream: StreamStats,
}

/// Closed-form prediction for a streamed (possibly sharded) GEMM:
/// double buffering hides staging, so the predicted cycles are the
/// materialized model's own — extended with the peak-scratch figure
/// the admission layer budgets against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamedGemmModel {
    /// The shard plan the prediction models.
    pub plan: GemmShardPlan,
    /// Predicted cycles per shard — identical to
    /// [`TubGemm::sharded_cycle_model`] and therefore to the streamed
    /// simulation.
    pub per_shard_cycles: Vec<u64>,
    /// Predicted peak scratch, equal to the streamed run's observed
    /// high-water mark.
    pub peak_scratch_elems: u64,
}

/// Reused staging state: double-buffered operand tiles, the
/// accumulator bank, and the per-step stream scratch — allocated once
/// per run, reused across every tile pass and window.
struct StreamArena {
    a_buf: [Vec<i32>; 2],
    b_buf: [Vec<i32>; 2],
    acc: Vec<i64>,
    streams: Vec<TwosUnaryStream>,
    weights: Vec<i32>,
    capacity_elems: u64,
}

impl StreamArena {
    fn new(engine: &TubGemm, m: usize, n: usize, p: usize, plan: &StreamPlan) -> Self {
        let em = engine.grid_m().min(m);
        let ep = engine.grid_p().min(p);
        let ek = plan.tile_k().min(n);
        StreamArena {
            a_buf: [Vec::with_capacity(em * ek), Vec::with_capacity(em * ek)],
            b_buf: [Vec::with_capacity(ek * ep), Vec::with_capacity(ek * ep)],
            acc: vec![0i64; em * ep],
            streams: Vec::with_capacity(ep),
            weights: Vec::with_capacity(ep),
            capacity_elems: plan.peak_scratch_elems(engine, m, n, p),
        }
    }
}

/// Stages the operand window into `buf` through the checked
/// [`Matrix::tile_view`] — the same slicing helper the sharded driver
/// uses, so neither path hand-rolls index arithmetic.
fn stage_tile(src: &Matrix, rows: Range<usize>, cols: Range<usize>, buf: &mut Vec<i32>) {
    buf.clear();
    let view = src.tile_view(rows, cols);
    for i in 0..view.rows() {
        buf.extend_from_slice(view.row(i));
    }
}

impl TubGemm {
    /// Computes `A × B` with the same temporal dataflow as
    /// [`TubGemm::multiply`], streamed through the bounded
    /// double-buffered scratch arena described by `plan`. Output and
    /// [`GemmStats`] are bit-identical to the materialized engine.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`TubGemm::multiply`].
    pub fn multiply_streamed(
        &self,
        a: &Matrix,
        b: &Matrix,
        plan: &StreamPlan,
    ) -> Result<StreamedGemmRun, ArithError> {
        if a.cols() != b.rows() {
            return Err(ArithError::LengthMismatch {
                lhs: a.cols(),
                rhs: b.rows(),
            });
        }
        for &v in a.as_slice() {
            self.precision().check(v)?;
        }
        for &v in b.as_slice() {
            self.precision().check(v)?;
        }
        let mut arena = StreamArena::new(self, a.rows(), a.cols(), b.cols(), plan);
        let mut output = Matrix::zeros(a.rows(), b.cols());
        let mut stream = StreamStats {
            peak_scratch_elems: arena.capacity_elems,
            tile_k: plan.tile_k(),
            ..StreamStats::default()
        };
        let stats = self.stream_ranges(
            a,
            b,
            (0..a.rows(), 0..b.cols()),
            plan,
            &mut arena,
            &mut output,
            &mut stream,
        )?;
        Ok(StreamedGemmRun {
            output,
            stats,
            stream,
        })
    }

    /// The streamed counterpart of [`TubGemm::multiply_sharded`]:
    /// identical shard plan and per-shard accounting, with each
    /// shard's output tiles streamed through the shared arena instead
    /// of copied out into per-shard operand matrices.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`TubGemm::multiply`].
    pub fn multiply_sharded_streamed(
        &self,
        a: &Matrix,
        b: &Matrix,
        num_arrays: usize,
        plan: &StreamPlan,
    ) -> Result<StreamedShardedGemmRun, ArithError> {
        if a.cols() != b.rows() {
            return Err(ArithError::LengthMismatch {
                lhs: a.cols(),
                rhs: b.rows(),
            });
        }
        let shard_plan = self.shard_plan(a.rows(), b.cols(), num_arrays);
        if shard_plan.axis == GemmAxis::Single {
            let run = self.multiply_streamed(a, b, plan)?;
            return Ok(StreamedShardedGemmRun {
                run: ShardedGemmRun {
                    critical_path_cycles: run.stats.cycles,
                    per_shard_cycles: vec![run.stats.cycles],
                    output: run.output,
                    stats: run.stats,
                    plan: shard_plan,
                },
                stream: run.stream,
            });
        }
        for &v in a.as_slice() {
            self.precision().check(v)?;
        }
        for &v in b.as_slice() {
            self.precision().check(v)?;
        }
        let mut arena = StreamArena::new(self, a.rows(), a.cols(), b.cols(), plan);
        let mut output = Matrix::zeros(a.rows(), b.cols());
        let mut stream = StreamStats {
            peak_scratch_elems: arena.capacity_elems,
            tile_k: plan.tile_k(),
            ..StreamStats::default()
        };
        let mut stats = GemmStats::default();
        let mut per_shard_cycles = Vec::with_capacity(shard_plan.tiles.len());
        for &(t_lo, t_hi) in &shard_plan.tiles {
            let ranges = match shard_plan.axis {
                GemmAxis::Cols => {
                    let lo = t_lo * self.grid_p();
                    let hi = (t_hi * self.grid_p()).min(b.cols());
                    (0..a.rows(), lo..hi)
                }
                GemmAxis::Rows => {
                    let lo = t_lo * self.grid_m();
                    let hi = (t_hi * self.grid_m()).min(a.rows());
                    (lo..hi, 0..b.cols())
                }
                GemmAxis::Single => unreachable!("handled above"),
            };
            let shard =
                self.stream_ranges(a, b, ranges, plan, &mut arena, &mut output, &mut stream)?;
            stats.cycles += shard.cycles;
            stats.steps += shard.steps;
            stats.tile_passes += shard.tile_passes;
            stats.silent_pe_steps += shard.silent_pe_steps;
            per_shard_cycles.push(shard.cycles);
        }
        let critical_path_cycles = per_shard_cycles.iter().copied().max().unwrap_or(0);
        Ok(StreamedShardedGemmRun {
            run: ShardedGemmRun {
                output,
                stats,
                plan: shard_plan,
                per_shard_cycles,
                critical_path_cycles,
            },
            stream,
        })
    }

    /// Closed-form model of the streamed (sharded) run: per-shard
    /// cycles from [`TubGemm::sharded_cycle_model`] — double buffering
    /// hides staging, so streamed latency equals materialized latency
    /// exactly — plus the predicted peak scratch.
    #[must_use]
    pub fn streamed_cycle_model(
        &self,
        a: &Matrix,
        b: &Matrix,
        num_arrays: usize,
        plan: &StreamPlan,
    ) -> StreamedGemmModel {
        let (shard_plan, per_shard_cycles) = self.sharded_cycle_model(a, b, num_arrays);
        StreamedGemmModel {
            plan: shard_plan,
            per_shard_cycles,
            peak_scratch_elems: plan.peak_scratch_elems(self, a.rows(), a.cols(), b.cols()),
        }
    }

    /// Streams the output tiles of `m_range × p_range` through the
    /// arena: per tile pass the inner dimension flows as `tile_k`-deep
    /// windows (next window staged into the back buffers before the
    /// front computes — the double-buffer overlap), partial sums stay
    /// in the tile accumulator bank, and the finished tile flushes to
    /// `output` once.
    #[allow(clippy::too_many_arguments, clippy::too_many_lines)]
    fn stream_ranges(
        &self,
        a: &Matrix,
        b: &Matrix,
        (m_range, p_range): (Range<usize>, Range<usize>),
        plan: &StreamPlan,
        arena: &mut StreamArena,
        output: &mut Matrix,
        stream: &mut StreamStats,
    ) -> Result<GemmStats, ArithError> {
        let n = a.cols();
        let tile_k = plan.tile_k();
        let windows = n.div_ceil(tile_k);
        let mut stats = GemmStats::default();
        let window_bounds = |w: usize| {
            let k0 = w * tile_k;
            (k0, (k0 + tile_k).min(n))
        };
        for m0 in m_range.clone().step_by(self.grid_m()) {
            let m1 = (m0 + self.grid_m()).min(m_range.end);
            for p0 in p_range.clone().step_by(self.grid_p()) {
                let p1 = (p0 + self.grid_p()).min(p_range.end);
                stats.tile_passes += 1;
                let (em, ep) = (m1 - m0, p1 - p0);
                let acc = &mut arena.acc[..em * ep];
                acc.fill(0);
                // Pre-stage window 0, then keep one window in flight:
                // stage w+1 into the back buffers before computing w.
                let mut front = 0usize;
                let (k0, k1) = window_bounds(0);
                stage_tile(a, m0..m1, k0..k1, &mut arena.a_buf[front]);
                stage_tile(b, k0..k1, p0..p1, &mut arena.b_buf[front]);
                stream.tiles_staged += 2;
                for w in 0..windows {
                    let (k0, k1) = window_bounds(w);
                    if w + 1 < windows {
                        let (n0, n1) = window_bounds(w + 1);
                        stage_tile(a, m0..m1, n0..n1, &mut arena.a_buf[1 - front]);
                        stage_tile(b, n0..n1, p0..p1, &mut arena.b_buf[1 - front]);
                        stream.tiles_staged += 2;
                    }
                    stream.inner_windows += 1;
                    let kw = k1 - k0;
                    let a_tile = &arena.a_buf[front];
                    let b_tile = &arena.b_buf[front];
                    for lt in 0..kw {
                        stats.steps += 1;
                        arena.streams.clear();
                        for &v in &b_tile[lt * ep..(lt + 1) * ep] {
                            arena
                                .streams
                                .push(TwosUnaryStream::encode(v, self.precision())?);
                        }
                        let window = arena.streams.iter().map(|s| s.cycles()).max().unwrap_or(0);
                        stats.cycles += u64::from(window.max(1));
                        let silent = arena.streams.iter().filter(|s| s.is_silent()).count();
                        stats.silent_pe_steps += silent as u64 * em as u64;
                        arena.weights.clear();
                        arena
                            .weights
                            .extend(arena.streams.iter().map(|s| s.decode()));
                        for i in 0..em {
                            let activation = a_tile[i * kw + lt];
                            let row = &mut acc[i * ep..(i + 1) * ep];
                            for (slot, &wgt) in row.iter_mut().zip(&arena.weights) {
                                *slot += i64::from(activation * wgt);
                            }
                        }
                    }
                    front = 1 - front;
                }
                // The only time partial sums leave the bank: the
                // finished tile flushes to the output once.
                for i in 0..em {
                    let bank = &acc[i * ep..(i + 1) * ep];
                    for (slot, &v) in output.row_mut(m0 + i)[p0..p1].iter_mut().zip(bank) {
                        *slot = i32::try_from(v).expect("gemm output exceeds i32");
                    }
                }
            }
        }
        Ok(stats)
    }
}

/// Functional streamed product: the golden `i64` product of
/// [`Matrix::multiply`] computed through the same bounded
/// double-buffered arena (tile dims from `grid`, window depth from
/// `plan`), with per-row contiguous accumulation instead of
/// per-element checked indexing — bit-identical outputs, a raw
/// wall-clock win on large shapes, and O(tile) peak scratch.
///
/// # Errors
///
/// Returns [`ArithError::LengthMismatch`] when inner dimensions
/// disagree.
pub fn stream_product(
    a: &Matrix,
    b: &Matrix,
    grid: (usize, usize),
    plan: &StreamPlan,
) -> Result<(Matrix, StreamStats), ArithError> {
    if a.cols() != b.rows() {
        return Err(ArithError::LengthMismatch {
            lhs: a.cols(),
            rhs: b.rows(),
        });
    }
    let (grid_m, grid_p) = (grid.0.max(1), grid.1.max(1));
    let (m, n, p) = (a.rows(), a.cols(), b.cols());
    let (em_cap, ep_cap) = (grid_m.min(m), grid_p.min(p));
    let ek_cap = plan.tile_k().min(n);
    let mut a_buf = [
        Vec::with_capacity(em_cap * ek_cap),
        Vec::with_capacity(em_cap * ek_cap),
    ];
    let mut b_buf = [
        Vec::with_capacity(ek_cap * ep_cap),
        Vec::with_capacity(ek_cap * ep_cap),
    ];
    let mut acc = vec![0i64; em_cap * ep_cap];
    let mut output = Matrix::zeros(m, p);
    let mut stream = StreamStats {
        peak_scratch_elems: 2 * (em_cap * ek_cap) as u64
            + 2 * (ek_cap * ep_cap) as u64
            + (em_cap * ep_cap) as u64,
        tile_k: plan.tile_k(),
        ..StreamStats::default()
    };
    let tile_k = plan.tile_k();
    let windows = n.div_ceil(tile_k);
    let window_bounds = |w: usize| {
        let k0 = w * tile_k;
        (k0, (k0 + tile_k).min(n))
    };
    for m0 in (0..m).step_by(grid_m) {
        let m1 = (m0 + grid_m).min(m);
        for p0 in (0..p).step_by(grid_p) {
            let p1 = (p0 + grid_p).min(p);
            let (em, ep) = (m1 - m0, p1 - p0);
            let bank = &mut acc[..em * ep];
            bank.fill(0);
            let mut front = 0usize;
            let (k0, k1) = window_bounds(0);
            stage_tile(a, m0..m1, k0..k1, &mut a_buf[front]);
            stage_tile(b, k0..k1, p0..p1, &mut b_buf[front]);
            stream.tiles_staged += 2;
            for w in 0..windows {
                let (k0, k1) = window_bounds(w);
                if w + 1 < windows {
                    let (n0, n1) = window_bounds(w + 1);
                    stage_tile(a, m0..m1, n0..n1, &mut a_buf[1 - front]);
                    stage_tile(b, n0..n1, p0..p1, &mut b_buf[1 - front]);
                    stream.tiles_staged += 2;
                }
                stream.inner_windows += 1;
                let kw = k1 - k0;
                let a_tile = &a_buf[front];
                let b_tile = &b_buf[front];
                for lt in 0..kw {
                    let b_row = &b_tile[lt * ep..(lt + 1) * ep];
                    for i in 0..em {
                        let act = i64::from(a_tile[i * kw + lt]);
                        let row = &mut bank[i * ep..(i + 1) * ep];
                        for (slot, &wgt) in row.iter_mut().zip(b_row) {
                            *slot += act * i64::from(wgt);
                        }
                    }
                }
                front = 1 - front;
            }
            for i in 0..em {
                let src = &bank[i * ep..(i + 1) * ep];
                for (slot, &v) in output.row_mut(m0 + i)[p0..p1].iter_mut().zip(src) {
                    *slot = i32::try_from(v).expect("gemm output exceeds i32");
                }
            }
        }
    }
    Ok((output, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempus_arith::IntPrecision;

    fn case(m: usize, n: usize, p: usize, seed: i32) -> (Matrix, Matrix) {
        let a = Matrix::from_fn(m, n, |i, j| {
            ((i as i32 * 31 + j as i32 * 17 + seed) % 255) - 127
        });
        let b = Matrix::from_fn(n, p, |i, j| {
            ((i as i32 * 13 + j as i32 * 41 + seed * 3) % 255) - 127
        });
        (a, b)
    }

    #[test]
    fn streamed_is_bit_identical_to_materialized() {
        let engine = TubGemm::new(4, 4, IntPrecision::Int8);
        for (m, n, p, seed) in [
            (7usize, 9usize, 5usize, 1i32),
            (10, 6, 11, 2),
            (16, 16, 16, 5),
        ] {
            let (a, b) = case(m, n, p, seed);
            let materialized = engine.multiply(&a, &b).unwrap();
            // One-step, odd, exact-divisor and whole-operand windows.
            for tile_k in [1usize, 3, n / 2, n] {
                if tile_k == 0 {
                    continue;
                }
                let plan = StreamPlan::new(tile_k);
                let streamed = engine.multiply_streamed(&a, &b, &plan).unwrap();
                assert_eq!(streamed.output, materialized.output, "tile_k={tile_k}");
                assert_eq!(streamed.stats, materialized.stats, "tile_k={tile_k}");
                assert_eq!(
                    streamed.stream.peak_scratch_elems,
                    plan.peak_scratch_elems(&engine, m, n, p)
                );
                assert!(streamed.stream.inner_windows >= streamed.stats.tile_passes);
            }
        }
    }

    #[test]
    fn sharded_streamed_matches_sharded_materialized() {
        let engine = TubGemm::new(4, 4, IntPrecision::Int8);
        for (m, n, p, arrays) in [
            (10usize, 6usize, 24usize, 3usize), // col split
            (24, 6, 7, 4),                      // row split
            (3, 3, 3, 4),                       // single
        ] {
            let (a, b) = case(m, n, p, 11);
            let plan = StreamPlan::new(3.min(n));
            let sharded = engine.multiply_sharded(&a, &b, arrays).unwrap();
            let streamed = engine
                .multiply_sharded_streamed(&a, &b, arrays, &plan)
                .unwrap();
            assert_eq!(streamed.run.output, sharded.output, "{m}x{n}x{p}");
            assert_eq!(streamed.run.stats, sharded.stats, "{m}x{n}x{p}");
            assert_eq!(streamed.run.plan, sharded.plan);
            assert_eq!(streamed.run.per_shard_cycles, sharded.per_shard_cycles);
            assert_eq!(
                streamed.run.critical_path_cycles,
                sharded.critical_path_cycles
            );
            // The extended model predicts the streamed run exactly.
            let model = engine.streamed_cycle_model(&a, &b, arrays, &plan);
            assert_eq!(model.plan, streamed.run.plan);
            assert_eq!(model.per_shard_cycles, streamed.run.per_shard_cycles);
            assert_eq!(model.peak_scratch_elems, streamed.stream.peak_scratch_elems);
        }
    }

    #[test]
    fn scratch_is_operand_size_invariant() {
        let engine = TubGemm::new(8, 8, IntPrecision::Int8);
        let budget = 1024u64;
        let small = StreamPlan::for_budget(&engine, 16, 32, 16, budget).unwrap();
        let large = StreamPlan::for_budget(&engine, 64, 512, 64, budget).unwrap();
        assert_eq!(small.tile_k(), large.tile_k());
        assert!(large.peak_scratch_elems(&engine, 64, 512, 64) <= budget);
        // Growing the operands does not grow the arena.
        assert!(
            large.peak_scratch_elems(&engine, 64, 4096, 64)
                <= large.peak_scratch_elems(&engine, 64, 512, 64)
        );
    }

    #[test]
    fn budget_below_floor_is_rejected() {
        let engine = TubGemm::new(8, 8, IntPrecision::Int8);
        let floor = StreamPlan::min_scratch_elems(&engine, 64, 64, 64);
        assert!(StreamPlan::for_budget(&engine, 64, 64, 64, floor).is_some());
        assert!(StreamPlan::for_budget(&engine, 64, 64, 64, floor - 1).is_none());
    }

    #[test]
    fn functional_stream_product_matches_golden() {
        for (m, n, p, seed) in [(7usize, 9usize, 5usize, 1i32), (13, 21, 8, 4)] {
            let (a, b) = case(m, n, p, seed);
            let golden = a.multiply(&b).unwrap();
            for tile_k in [1usize, 5, n] {
                let (out, stream) =
                    stream_product(&a, &b, (4, 4), &StreamPlan::new(tile_k)).unwrap();
                assert_eq!(out, golden, "tile_k={tile_k}");
                assert!(stream.peak_scratch_elems > 0);
            }
        }
    }

    #[test]
    fn streamed_rejects_mismatch_and_precision_like_materialized() {
        let engine = TubGemm::new(4, 4, IntPrecision::Int4);
        let plan = StreamPlan::new(2);
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(matches!(
            engine.multiply_streamed(&a, &b, &plan),
            Err(ArithError::LengthMismatch { .. })
        ));
        let a = Matrix::from_fn(2, 2, |_, _| 100);
        let b = Matrix::zeros(2, 2);
        assert!(engine.multiply_streamed(&a, &b, &plan).is_err());
    }
}
