//! Closed-form latency model for Tempus Core.
//!
//! The cycle-accurate simulation is authoritative; this model predicts
//! its cycle counts analytically so large design-space sweeps (and the
//! paper's §V-C workload analysis) don't need full simulation. Tests
//! pin the model to the simulator exactly.

use tempus_nvdla::config::NvdlaConfig;
use tempus_nvdla::conv::ConvParams;
use tempus_nvdla::cube::{DataCube, KernelSet};
use tempus_nvdla::NvdlaError;

use crate::csc_mod::{ModifiedCsc, TempusCommand};
use crate::TempusConfig;

/// Predicted latency decomposition for one convolution on Tempus Core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyBreakdown {
    /// Weight-load (stripe swap) cycles.
    pub weight_load_cycles: u64,
    /// Compute-window cycles across all atomic ops.
    pub window_cycles: u64,
    /// Cache-in/out overhead cycles across all atomic ops.
    pub overhead_cycles: u64,
    /// Total predicted cycles.
    pub total_cycles: u64,
    /// Average window length per atomic op.
    pub avg_window: f64,
    /// Equivalent binary-core cycles for the same convolution
    /// (1 op/cycle + stripe swaps + pipeline drain).
    pub binary_cycles: u64,
    /// Latency ratio tub / binary.
    pub slowdown: f64,
}

/// Predicts the Tempus Core cycle count for one convolution by running
/// the sequencer's latency scan without simulating the datapath.
///
/// # Errors
///
/// Propagates shape errors from the sequencer.
pub fn predict(
    features: &DataCube,
    kernels: &KernelSet,
    params: &ConvParams,
    config: &TempusConfig,
) -> Result<LatencyBreakdown, NvdlaError> {
    let seq = ModifiedCsc::new(features, kernels, params, &config.base)?;
    let ops_per_stripe = {
        let (w, h) = seq.output_dims();
        (w * h) as u64
    };
    let overhead_per_op = u64::from(config.cache_in_cycles + config.cache_out_cycles);
    let mut weight_load_cycles = 0u64;
    let mut window_cycles = 0u64;
    let mut overhead_cycles = 0u64;
    let mut ops = 0u64;
    for cmd in seq {
        if let TempusCommand::LoadWeights { stripe_latency, .. } = cmd {
            weight_load_cycles += 1;
            window_cycles += u64::from(stripe_latency.max(1)) * ops_per_stripe;
            overhead_cycles += overhead_per_op * ops_per_stripe;
            ops += ops_per_stripe;
        }
    }
    let total_cycles = weight_load_cycles + window_cycles + overhead_cycles;
    let binary_cycles = weight_load_cycles + ops + u64::from(binary_pipeline_depth(&config.base));
    Ok(LatencyBreakdown {
        weight_load_cycles,
        window_cycles,
        overhead_cycles,
        total_cycles,
        avg_window: if ops == 0 {
            0.0
        } else {
            window_cycles as f64 / ops as f64
        },
        binary_cycles,
        slowdown: if binary_cycles == 0 {
            0.0
        } else {
            total_cycles as f64 / binary_cycles as f64
        },
    })
}

fn binary_pipeline_depth(base: &NvdlaConfig) -> u32 {
    base.cmac_pipeline_depth
}

/// Worst-case cycles per atomic op at a precision, including cache
/// overheads — the bound the paper quotes (64 compute cycles for INT8,
/// 4 for INT4, §V-C).
#[must_use]
pub fn worst_case_cycles_per_op(config: &TempusConfig) -> u64 {
    u64::from(
        config.base.precision.worst_case_tub_cycles()
            + config.cache_in_cycles
            + config.cache_out_cycles,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempus_arith::IntPrecision;
    use tempus_nvdla::pipeline::ConvCore;

    use crate::TempusCore;

    fn case() -> (DataCube, KernelSet, ConvParams) {
        let f = DataCube::from_fn(6, 6, 8, |x, y, c| {
            ((x * 3 + y * 7 + c * 5) % 200) as i32 - 100
        });
        let k = KernelSet::from_fn(8, 3, 3, 8, |a, b, c, d| {
            ((a * 29 + b * 3 + c * 13 + d * 7) % 255) as i32 - 127
        });
        (f, k, ConvParams::valid())
    }

    #[test]
    fn prediction_matches_simulation_exactly() {
        let (f, k, params) = case();
        let config = TempusConfig::nv_small();
        let predicted = predict(&f, &k, &params, &config).unwrap();
        let mut core = TempusCore::new(config);
        let run = core.convolve(&f, &k, &params).unwrap();
        assert_eq!(predicted.total_cycles, run.stats.cycles);
    }

    #[test]
    fn prediction_matches_simulation_with_overhead_variants() {
        let (f, k, params) = case();
        for (ci, co) in [(0, 0), (1, 1), (2, 3)] {
            let config = TempusConfig::nv_small().with_cache_overheads(ci, co);
            let predicted = predict(&f, &k, &params, &config).unwrap();
            let mut core = TempusCore::new(config);
            let run = core.convolve(&f, &k, &params).unwrap();
            assert_eq!(
                predicted.total_cycles, run.stats.cycles,
                "cache overheads ({ci},{co})"
            );
        }
    }

    #[test]
    fn worst_case_bound_holds() {
        let (f, k, params) = case();
        let config = TempusConfig::nv_small();
        let predicted = predict(&f, &k, &params, &config).unwrap();
        let bound = worst_case_cycles_per_op(&config) as f64;
        assert!(predicted.avg_window <= bound);
        assert!(
            predicted.total_cycles
                <= predicted.weight_load_cycles
                    + predicted.window_cycles
                    + predicted.overhead_cycles
        );
    }

    #[test]
    fn worst_case_per_precision() {
        let c8 = TempusConfig::nv_small().with_cache_overheads(0, 0);
        assert_eq!(worst_case_cycles_per_op(&c8), 64);
        let c4 = c8.with_precision(IntPrecision::Int4);
        assert_eq!(worst_case_cycles_per_op(&c4), 4);
    }

    #[test]
    fn slowdown_is_reported() {
        let (f, k, params) = case();
        let predicted = predict(&f, &k, &params, &TempusConfig::nv_small()).unwrap();
        assert!(predicted.slowdown > 1.0);
        assert!(predicted.binary_cycles > 0);
    }
}
