//! Discrete per-array frequency/voltage (DVFS) domains.
//!
//! Every PE array owns one clock domain stepping through a small
//! fixed ladder of (period multiplier, voltage scale) operating
//! points. The ladder is expressed in **exact rationals** over the
//! nominal 250 MHz device clock so every cycle conversion is integer
//! arithmetic — the deterministic-replay contract of the array-slot
//! ledger survives down-clocking bit-for-bit:
//!
//! * a job that takes `d` device cycles at the nominal level takes
//!   `ceil(d * num / den)` device cycles at a level with period
//!   multiplier `num/den` (the ledger keeps booking in nominal
//!   device cycles, scaled once at placement time);
//! * **dynamic** energy scales with the square of the voltage scale
//!   (`E_dyn ∝ C·V²`; the activity — window/pulse cycles — is
//!   unchanged, the work is the same work);
//! * **static/leakage** energy scales with the stretched wall time
//!   times the voltage scale (`P_leak ∝ V`, charged for `num/den`
//!   longer).
//!
//! Level 0 is the identity point (multiplier 1/1, voltage scale
//! 1000‰): with the governor and power cap off, every conversion is
//! a no-op and the stack stays byte-identical to the latency-only
//! scheduler.

/// Millivolt-per-volt fixed-point denominator for voltage scales.
pub const VSCALE_ONE: u64 = 1000;

/// One operating point of the per-array DVFS ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreqLevel {
    /// Period multiplier numerator (period grows `num/den` ×, so the
    /// clock slows by the same factor).
    pub period_num: u32,
    /// Period multiplier denominator.
    pub period_den: u32,
    /// Supply-voltage scale in permille of nominal (1000 = nominal).
    pub vscale_permille: u32,
}

impl FreqLevel {
    /// The identity operating point: nominal clock, nominal voltage.
    pub const NOMINAL: FreqLevel = FreqLevel {
        period_num: 1,
        period_den: 1,
        vscale_permille: 1000,
    };

    /// Duration in device cycles of work that takes `cycles` at the
    /// nominal level: `ceil(cycles * num / den)`, exact integer
    /// arithmetic. Identity at level 0.
    #[must_use]
    pub fn scale_cycles(self, cycles: u64) -> u64 {
        if self.period_num == self.period_den {
            return cycles;
        }
        (cycles as u128 * u128::from(self.period_num))
            .div_ceil(u128::from(self.period_den.max(1)))
            .min(u128::from(u64::MAX)) as u64
    }

    /// Dynamic energy at this level for work costing `pj` at nominal:
    /// scales with V² (`floor(pj · v² / 1000²)`, exact integers).
    #[must_use]
    pub fn scale_dynamic_pj(self, pj: u64) -> u64 {
        let v = u128::from(self.vscale_permille);
        (u128::from(pj) * v * v / (u128::from(VSCALE_ONE) * u128::from(VSCALE_ONE)))
            .min(u128::from(u64::MAX)) as u64
    }

    /// Static/leakage energy at this level for a busy window costing
    /// `pj` of leakage at nominal: the window stretches `num/den` ×
    /// and leakage power scales ∝ V.
    #[must_use]
    pub fn scale_static_pj(self, pj: u64) -> u64 {
        let v = u128::from(self.vscale_permille);
        (u128::from(pj) * u128::from(self.period_num) * v
            / (u128::from(self.period_den.max(1)) * u128::from(VSCALE_ONE)))
        .min(u128::from(u64::MAX)) as u64
    }

    /// Clock frequency at this level, in MHz, for a nominal
    /// `base_mhz` clock.
    #[must_use]
    pub fn freq_mhz(self, base_mhz: f64) -> f64 {
        base_mhz * f64::from(self.period_den) / f64::from(self.period_num.max(1))
    }
}

/// The fixed edge ladder: four operating points from the nominal
/// 250 MHz point down to half clock. Chosen so one step trades ~20%
/// clock for ~10% voltage — the classic near-linear region of the
/// frequency/voltage curve.
///
/// | level | clock (of 250 MHz) | period ×  | voltage |
/// |-------|--------------------|-----------|---------|
/// | 0     | 250 MHz            | 1         | 100%    |
/// | 1     | 200 MHz            | 5/4       | 90%     |
/// | 2     | ~167 MHz           | 3/2       | 80%     |
/// | 3     | 125 MHz            | 2         | 70%     |
pub const LADDER: [FreqLevel; 4] = [
    FreqLevel::NOMINAL,
    FreqLevel {
        period_num: 5,
        period_den: 4,
        vscale_permille: 900,
    },
    FreqLevel {
        period_num: 3,
        period_den: 2,
        vscale_permille: 800,
    },
    FreqLevel {
        period_num: 2,
        period_den: 1,
        vscale_permille: 700,
    },
];

/// Number of ladder levels.
pub const NUM_LEVELS: usize = LADDER.len();

/// The operating point for `level`, clamped into the ladder.
#[must_use]
pub fn level(level: u8) -> FreqLevel {
    LADDER[(level as usize).min(NUM_LEVELS - 1)]
}

/// Total (dynamic + static) energy of work costing
/// `(dynamic_pj, static_pj)` at nominal, when run at `lvl`.
#[must_use]
pub fn energy_at(dynamic_pj: u64, static_pj: u64, lvl: u8) -> u64 {
    let l = level(lvl);
    l.scale_dynamic_pj(dynamic_pj)
        .saturating_add(l.scale_static_pj(static_pj))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_zero_is_the_identity() {
        let l = level(0);
        assert_eq!(l, FreqLevel::NOMINAL);
        for cycles in [0u64, 1, 7, 1_000_003] {
            assert_eq!(l.scale_cycles(cycles), cycles);
        }
        for pj in [0u64, 1, 999, 123_456_789] {
            assert_eq!(l.scale_dynamic_pj(pj), pj);
            assert_eq!(l.scale_static_pj(pj), pj);
        }
        assert!((l.freq_mhz(250.0) - 250.0).abs() < 1e-12);
    }

    #[test]
    fn ladder_slows_monotonically_and_saves_dynamic_energy() {
        for w in LADDER.windows(2) {
            let (a, b) = (w[0], w[1]);
            // Strictly longer periods, strictly lower voltage.
            assert!(
                u64::from(b.period_num) * u64::from(a.period_den)
                    > u64::from(a.period_num) * u64::from(b.period_den)
            );
            assert!(b.vscale_permille < a.vscale_permille);
            assert!(b.scale_cycles(1000) > a.scale_cycles(1000));
            assert!(b.scale_dynamic_pj(1_000_000) < a.scale_dynamic_pj(1_000_000));
        }
    }

    #[test]
    fn scaled_cycles_round_up_never_down() {
        // 3/2 on odd cycle counts must ceil: slower clocks never
        // finish early.
        assert_eq!(level(2).scale_cycles(3), 5); // ceil(4.5)
        assert_eq!(level(2).scale_cycles(4), 6);
        assert_eq!(level(3).scale_cycles(7), 14);
        assert_eq!(level(1).scale_cycles(7), 9); // ceil(8.75)
    }

    #[test]
    fn out_of_range_levels_clamp_to_the_floor() {
        assert_eq!(level(200), LADDER[NUM_LEVELS - 1]);
    }

    #[test]
    fn energy_at_level_two_sits_in_the_pareto_sweet_spot() {
        // At ~3% leakage fraction, L2 must save ≥ 25% total energy —
        // the dvfs_pareto bench gate's arithmetic, pinned here.
        let dyn_pj = 97_000u64;
        let stat_pj = 3_000u64;
        let nominal = energy_at(dyn_pj, stat_pj, 0);
        let l2 = energy_at(dyn_pj, stat_pj, 2);
        assert_eq!(nominal, 100_000);
        assert!((l2 as f64) < 0.75 * nominal as f64, "l2 = {l2}");
    }
}
