//! Cycle-accurate tub multiplier and PE cell.
//!
//! A tub multiplier holds a temporally encoded weight and a binary
//! activation; each pulse cycle it contributes
//! `sign · pulse_value · activation` (the ×2 case is a wiring shift).
//! A PE cell reduces its `n` multipliers' per-cycle contributions
//! through one adder tree into an accumulator; after the array window
//! (`ceil(max|w|/2)` cycles) the accumulator holds the exact dot
//! product (§II-B, §III).

use tempus_arith::{tub, ArithError, IntPrecision, TwosUnaryStream};
use tempus_sim::ActivityCounter;

/// One cycle-accurate tub multiplier.
#[derive(Debug, Clone)]
pub struct TubMultiplier {
    stream: TwosUnaryStream,
    activation: i32,
    cycle: u32,
    activity: ActivityCounter,
}

impl TubMultiplier {
    /// Creates a multiplier with zero weight (silent).
    #[must_use]
    pub fn new(precision: IntPrecision) -> Self {
        TubMultiplier {
            stream: TwosUnaryStream::encode(0, precision).expect("zero always encodes"),
            activation: 0,
            cycle: 0,
            activity: ActivityCounter::new(),
        }
    }

    /// Caches a new weight (stripe boundary): the temporal encoder
    /// re-encodes it as a 2s-unary stream.
    ///
    /// # Errors
    ///
    /// Returns [`ArithError::OutOfRange`] if the weight exceeds the
    /// encoding precision.
    pub fn load_weight(&mut self, weight: i32, precision: IntPrecision) -> Result<(), ArithError> {
        self.stream = TwosUnaryStream::encode(weight, precision)?;
        self.cycle = 0;
        Ok(())
    }

    /// Starts a new multiplication window against `activation`.
    pub fn begin(&mut self, activation: i32) {
        self.activation = activation;
        self.cycle = 0;
    }

    /// `true` when the weight is zero — the PE never pulses and stays
    /// clock-gated for whole windows (§V-C's "silent PEs").
    #[must_use]
    pub fn is_silent(&self) -> bool {
        self.stream.is_silent()
    }

    /// Latency this multiplier needs: `ceil(|w| / 2)` cycles.
    #[must_use]
    pub fn latency(&self) -> u32 {
        self.stream.cycles()
    }

    /// Advances one cycle, returning this cycle's contribution to the
    /// cell adder tree (0 once the stream has drained).
    pub fn tick(&mut self) -> i32 {
        let contribution = match self.stream.pulse_at(self.cycle) {
            Some(pulse) => {
                self.activity.record_active();
                tub::step(self.activation, self.stream, pulse)
            }
            None => {
                self.activity.record_gated();
                0
            }
        };
        self.cycle += 1;
        contribution
    }

    /// Pulse/gating statistics.
    #[must_use]
    pub fn activity(&self) -> ActivityCounter {
        self.activity
    }
}

/// A cycle-accurate tub PE cell: `n` multipliers, one adder tree, one
/// accumulator.
#[derive(Debug, Clone)]
pub struct TubPeCell {
    precision: IntPrecision,
    mults: Vec<TubMultiplier>,
    acc: i64,
}

impl TubPeCell {
    /// Creates a cell of `n` multipliers.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize, precision: IntPrecision) -> Self {
        assert!(n > 0, "cell needs at least one multiplier");
        TubPeCell {
            precision,
            mults: (0..n).map(|_| TubMultiplier::new(precision)).collect(),
            acc: 0,
        }
    }

    /// Multipliers in the cell.
    #[must_use]
    pub fn n(&self) -> usize {
        self.mults.len()
    }

    /// Caches one weight sliver (stripe boundary).
    ///
    /// # Errors
    ///
    /// Returns [`ArithError::LengthMismatch`] for a wrong sliver width
    /// or [`ArithError::OutOfRange`] for an unencodable weight.
    pub fn load_weights(&mut self, sliver: &[i32]) -> Result<(), ArithError> {
        if sliver.len() != self.mults.len() {
            return Err(ArithError::LengthMismatch {
                lhs: sliver.len(),
                rhs: self.mults.len(),
            });
        }
        for (m, &w) in self.mults.iter_mut().zip(sliver) {
            m.load_weight(w, self.precision)?;
        }
        Ok(())
    }

    /// Starts a new window against a feature sliver, clearing the
    /// accumulator. Activation range is validated once at the engine
    /// boundary (`check_operands`), not per atomic op; debug builds
    /// keep an assertion.
    ///
    /// # Errors
    ///
    /// Returns [`ArithError::LengthMismatch`] for a wrong sliver
    /// width.
    pub fn begin(&mut self, feature: &[i32]) -> Result<(), ArithError> {
        if feature.len() != self.mults.len() {
            return Err(ArithError::LengthMismatch {
                lhs: feature.len(),
                rhs: self.mults.len(),
            });
        }
        debug_assert!(
            feature.iter().all(|&a| self.precision.check(a).is_ok()),
            "activation outside {:?} reached the PE cell; validate at the engine boundary",
            self.precision
        );
        for (m, &a) in self.mults.iter_mut().zip(feature) {
            m.begin(a);
        }
        self.acc = 0;
        Ok(())
    }

    /// Advances one cycle: every multiplier contributes, the adder
    /// tree reduces, the accumulator integrates. (The balanced-tree
    /// reduction order is value-identical to a running sum — exact
    /// `i64` addition — so no per-cycle term buffer is materialised.)
    pub fn tick(&mut self) {
        let mut sum = 0i64;
        for m in &mut self.mults {
            sum += i64::from(m.tick());
        }
        self.acc += sum;
    }

    /// Current accumulator value (the partial sum once the window
    /// completes).
    #[must_use]
    pub fn partial_sum(&self) -> i64 {
        self.acc
    }

    /// Cell latency: the slowest multiplier bounds the cell.
    #[must_use]
    pub fn latency(&self) -> u32 {
        self.mults
            .iter()
            .map(TubMultiplier::latency)
            .max()
            .unwrap_or(0)
    }

    /// Number of silent multipliers (zero weights) in this cell.
    #[must_use]
    pub fn silent_count(&self) -> usize {
        self.mults.iter().filter(|m| m.is_silent()).count()
    }

    /// Merged pulse/gating statistics across the cell's multipliers.
    #[must_use]
    pub fn activity(&self) -> ActivityCounter {
        let mut total = ActivityCounter::new();
        for m in &self.mults {
            total.merge(m.activity());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_folds_to_exact_product() {
        let p = IntPrecision::Int8;
        for (a, w) in [(113, -37), (-128, 127), (5, 0), (0, -100), (-1, 1)] {
            let mut m = TubMultiplier::new(p);
            m.load_weight(w, p).unwrap();
            m.begin(a);
            let window = m.latency().max(1);
            let mut acc = 0i64;
            for _ in 0..window {
                acc += i64::from(m.tick());
            }
            assert_eq!(acc, i64::from(a) * i64::from(w), "a={a} w={w}");
        }
    }

    #[test]
    fn multiplier_contributions_stop_after_stream() {
        let p = IntPrecision::Int4;
        let mut m = TubMultiplier::new(p);
        m.load_weight(3, p).unwrap();
        m.begin(7);
        assert_eq!(m.tick(), 14); // pulse of 2
        assert_eq!(m.tick(), 7); // final pulse of 1
        assert_eq!(m.tick(), 0); // drained
        assert_eq!(m.activity().active_cycles(), 2);
        assert_eq!(m.activity().gated_cycles(), 1);
    }

    #[test]
    fn silent_multiplier_never_pulses() {
        let p = IntPrecision::Int8;
        let mut m = TubMultiplier::new(p);
        m.load_weight(0, p).unwrap();
        assert!(m.is_silent());
        m.begin(99);
        for _ in 0..4 {
            assert_eq!(m.tick(), 0);
        }
        assert_eq!(m.activity().active_cycles(), 0);
    }

    #[test]
    fn cell_computes_exact_dot_product() {
        let p = IntPrecision::Int8;
        let weights = [3, -7, 0, 127, -128, 1, 64, -2];
        let feature = [10, -20, 99, -128, 127, 0, -5, 8];
        let mut cell = TubPeCell::new(8, p);
        cell.load_weights(&weights).unwrap();
        cell.begin(&feature).unwrap();
        for _ in 0..cell.latency() {
            cell.tick();
        }
        let expected: i64 = weights
            .iter()
            .zip(&feature)
            .map(|(&w, &a)| i64::from(w) * i64::from(a))
            .sum();
        assert_eq!(cell.partial_sum(), expected);
    }

    #[test]
    fn cell_latency_is_max_weight_magnitude_halved() {
        let p = IntPrecision::Int8;
        let mut cell = TubPeCell::new(4, p);
        cell.load_weights(&[0, 3, -10, 7]).unwrap();
        assert_eq!(cell.latency(), 5); // ceil(10/2)
        assert_eq!(cell.silent_count(), 1);
    }

    #[test]
    fn wrong_sliver_width_is_an_error() {
        let mut cell = TubPeCell::new(4, IntPrecision::Int8);
        assert!(cell.load_weights(&[1, 2]).is_err());
        assert!(cell.begin(&[1, 2, 3]).is_err());
    }

    #[test]
    fn extra_ticks_after_window_do_not_corrupt_sum() {
        let p = IntPrecision::Int4;
        let mut cell = TubPeCell::new(2, p);
        cell.load_weights(&[2, -3]).unwrap();
        cell.begin(&[5, 4]).unwrap();
        for _ in 0..10 {
            cell.tick();
        }
        assert_eq!(cell.partial_sum(), 10 - 12);
    }
}
