//! The modified convolution sequence controller (§III).
//!
//! Tempus Core keeps NVDLA's stripe decomposition but adds two things
//! at the sequencing layer:
//!
//! 1. **Transposed feature feed** — the PCU consumes the feature sliver
//!    as the *binary* operand while weights arrive temporally, using
//!    `W × Fᵀ = accum(W ⊙ F)`; functionally the values are identical,
//!    so the adapter re-emits the same slivers and tags them.
//! 2. **Stripe latency scan** — at every weight load the modified CSC
//!    scans the k×n weight array for its largest magnitude, which fixes
//!    the multi-cycle window length (`ceil(max|w|/2)`), and counts the
//!    silent PEs (zero weights) for gating statistics.

use tempus_arith::IntPrecision;
use tempus_nvdla::config::NvdlaConfig;
use tempus_nvdla::conv::ConvParams;
use tempus_nvdla::csc::{AtomicOp, CscCommand, CscScratch, CscSequencer, CscStep, WeightLoad};
use tempus_nvdla::cube::{DataCube, KernelSet};
use tempus_nvdla::NvdlaError;

/// Commands emitted by the modified CSC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TempusCommand {
    /// Cache new weights; the scan results ride along.
    LoadWeights {
        /// The underlying weight load.
        load: WeightLoad,
        /// Window length for this stripe in compute cycles.
        stripe_latency: u32,
        /// Zero-weight (silent) PEs in this stripe's k×n array.
        silent_pes: usize,
    },
    /// Stream one atomic operation (transposed feature feed).
    Atomic(AtomicOp),
}

/// A command header from the allocation-free stream; payloads live in
/// the caller's [`CscScratch`] (see [`ModifiedCsc::next_step`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TempusStep {
    /// New weights in `scratch.cell_weights`; scan results ride along.
    LoadWeights {
        /// Kernel group this stripe serves (fixes the CACC base row).
        kernel_group: usize,
        /// Window length for this stripe in compute cycles.
        stripe_latency: u32,
        /// Zero-weight (silent) PEs in this stripe's k×n array.
        silent_pes: usize,
    },
    /// One atomic op; the feature sliver is in `scratch.feature`.
    Atomic {
        /// Output x.
        out_x: usize,
        /// Output y.
        out_y: usize,
    },
}

/// Iterator adapter over the baseline [`CscSequencer`].
#[derive(Debug, Clone)]
pub struct ModifiedCsc {
    inner: CscSequencer,
    precision: IntPrecision,
}

impl ModifiedCsc {
    /// Creates the modified sequencer.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the baseline sequencer.
    pub fn new(
        features: &DataCube,
        kernels: &KernelSet,
        params: &ConvParams,
        config: &NvdlaConfig,
    ) -> Result<Self, NvdlaError> {
        Ok(ModifiedCsc {
            inner: CscSequencer::new(features, kernels, params, config)?,
            precision: config.precision,
        })
    }

    /// Output dimensions `(out_w, out_h)`.
    #[must_use]
    pub fn output_dims(&self) -> (usize, usize) {
        self.inner.output_dims()
    }

    /// Stripes the sequencer will emit.
    #[must_use]
    pub fn stripe_count(&self) -> u64 {
        self.inner.stripe_count()
    }

    /// Atomic ops the sequencer will emit.
    #[must_use]
    pub fn atomic_op_count(&self) -> u64 {
        self.inner.atomic_op_count()
    }

    /// Scans a weight array for its window length under 2s-unary
    /// encoding: `ceil(max|w| / 2)`.
    #[must_use]
    pub fn scan_latency(cell_weights: &[Vec<i32>]) -> u32 {
        cell_weights
            .iter()
            .flat_map(|sliver| sliver.iter())
            .map(|w| w.unsigned_abs())
            .max()
            .unwrap_or(0)
            .div_ceil(2)
    }

    /// Counts zero weights (silent PEs) in a weight array.
    #[must_use]
    pub fn scan_silent(cell_weights: &[Vec<i32>]) -> usize {
        cell_weights
            .iter()
            .flat_map(|sliver| sliver.iter())
            .filter(|&&w| w == 0)
            .count()
    }

    /// Worst-case window length at this sequencer's precision.
    #[must_use]
    pub fn worst_case_latency(&self) -> u32 {
        self.precision.worst_case_tub_cycles()
    }

    /// Scratch buffers sized for this sequencer's array shape.
    #[must_use]
    pub fn scratch(&self) -> CscScratch {
        self.inner.scratch()
    }

    /// Advances one command, writing payloads into `scratch` instead
    /// of allocating — emits the same command stream as the
    /// [`Iterator`] impl, with the same latency/silence scans, but
    /// with zero per-command heap allocation. This is the hot path of
    /// the window-batched engine.
    ///
    /// # Panics
    ///
    /// Panics when `scratch` was sized for a different array shape.
    pub fn next_step(&mut self, scratch: &mut CscScratch) -> Option<TempusStep> {
        match self.inner.next_into(scratch)? {
            CscStep::LoadWeights(stripe) => Some(TempusStep::LoadWeights {
                kernel_group: stripe.kernel_group,
                stripe_latency: Self::scan_latency(&scratch.cell_weights),
                silent_pes: Self::scan_silent(&scratch.cell_weights),
            }),
            CscStep::Atomic { out_x, out_y } => Some(TempusStep::Atomic { out_x, out_y }),
        }
    }
}

impl Iterator for ModifiedCsc {
    type Item = TempusCommand;

    fn next(&mut self) -> Option<TempusCommand> {
        match self.inner.next()? {
            CscCommand::LoadWeights(load) => {
                let stripe_latency = Self::scan_latency(&load.cell_weights);
                let silent_pes = Self::scan_silent(&load.cell_weights);
                Some(TempusCommand::LoadWeights {
                    load,
                    stripe_latency,
                    silent_pes,
                })
            }
            CscCommand::Atomic(op) => Some(TempusCommand::Atomic(op)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_latency_matches_2s_unary() {
        assert_eq!(ModifiedCsc::scan_latency(&[vec![0, 0]]), 0);
        assert_eq!(ModifiedCsc::scan_latency(&[vec![1]]), 1);
        assert_eq!(ModifiedCsc::scan_latency(&[vec![-128, 3]]), 64);
        assert_eq!(ModifiedCsc::scan_latency(&[vec![5], vec![-9]]), 5);
    }

    #[test]
    fn scan_silent_counts_zeros() {
        assert_eq!(ModifiedCsc::scan_silent(&[vec![0, 1], vec![0, 0]]), 3);
    }

    #[test]
    fn loads_carry_scan_results() {
        let f = DataCube::from_fn(4, 4, 4, |x, y, c| (x + y + c) as i32 % 3);
        let mut k = KernelSet::zeros(2, 1, 1, 4);
        k.set(0, 0, 0, 0, -10);
        k.set(1, 0, 0, 2, 7);
        let cfg = NvdlaConfig::nv_small().with_array(2, 4);
        let mut seq = ModifiedCsc::new(&f, &k, &ConvParams::valid(), &cfg).unwrap();
        match seq.next().unwrap() {
            TempusCommand::LoadWeights {
                stripe_latency,
                silent_pes,
                ..
            } => {
                assert_eq!(stripe_latency, 5); // ceil(10/2)
                assert_eq!(silent_pes, 6); // 8 lanes, 2 nonzero
            }
            other => panic!("expected weight load, got {other:?}"),
        }
    }

    #[test]
    fn next_step_mirrors_the_iterator_exactly() {
        let f = DataCube::from_fn(5, 5, 8, |x, y, c| ((x * 7 + y * 3 + c) % 11) as i32 - 5);
        let k = KernelSet::from_fn(8, 3, 3, 8, |a, b, c, d| {
            ((a + 2 * b + c + d) % 9) as i32 - 4
        });
        let cfg = NvdlaConfig::nv_small();
        let iter_seq = ModifiedCsc::new(&f, &k, &ConvParams::valid(), &cfg).unwrap();
        let mut step_seq = iter_seq.clone();
        let mut scratch = step_seq.scratch();
        for cmd in iter_seq {
            let step = step_seq.next_step(&mut scratch).expect("same length");
            match (cmd, step) {
                (
                    TempusCommand::LoadWeights {
                        load,
                        stripe_latency,
                        silent_pes,
                    },
                    TempusStep::LoadWeights {
                        kernel_group,
                        stripe_latency: sl,
                        silent_pes: sp,
                    },
                ) => {
                    assert_eq!(load.stripe.kernel_group, kernel_group);
                    assert_eq!(load.cell_weights, scratch.cell_weights);
                    assert_eq!(stripe_latency, sl);
                    assert_eq!(silent_pes, sp);
                }
                (TempusCommand::Atomic(op), TempusStep::Atomic { out_x, out_y }) => {
                    assert_eq!((op.out_x, op.out_y), (out_x, out_y));
                    assert_eq!(op.feature, scratch.feature);
                }
                (cmd, step) => panic!("stream divergence: {cmd:?} vs {step:?}"),
            }
        }
        assert!(step_seq.next_step(&mut scratch).is_none());
    }

    #[test]
    fn command_stream_matches_baseline_counts() {
        let f = DataCube::from_fn(5, 5, 8, |x, y, c| ((x + y + c) % 5) as i32);
        let k = KernelSet::from_fn(8, 3, 3, 8, |a, b, c, d| ((a + b + c + d) % 3) as i32);
        let cfg = NvdlaConfig::nv_small();
        let seq = ModifiedCsc::new(&f, &k, &ConvParams::valid(), &cfg).unwrap();
        let expected_loads = seq.stripe_count();
        let expected_ops = seq.atomic_op_count();
        let (mut loads, mut ops) = (0u64, 0u64);
        for cmd in seq {
            match cmd {
                TempusCommand::LoadWeights { .. } => loads += 1,
                TempusCommand::Atomic(_) => ops += 1,
            }
        }
        assert_eq!(loads, expected_loads);
        assert_eq!(ops, expected_ops);
    }
}
