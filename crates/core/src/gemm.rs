//! tubGEMM: the outer-product GEMM engine Tempus Core descends from
//! (§II-B).
//!
//! The paper positions Tempus Core against its predecessors: "Unlike
//! previous temporal GEMM designs \[9\]\[10\] that follow an outer-product
//! GEMM dataflow, Tempus Core serves as a convolution engine supporting
//! inner-product convolution dataflow." This module implements that
//! predecessor so the dataflow comparison is runnable: an M×P PE grid
//! computing `O = A × B` as N rank-1 updates, where the `A` column is
//! the binary operand and the `B` row streams temporally (2s-unary, as
//! tubGEMM upgraded over tuGEMM's plain unary).
//!
//! Latency per outer step is bounded by the largest `B`-row magnitude
//! in the active tile; totals accumulate over the N steps and over
//! grid tiles when the matrices exceed the PE grid.

use std::fmt;

use tempus_arith::{ArithError, IntPrecision, TwosUnaryStream};

use crate::shard::{balance, plan_gemm, GemmAxis, GemmShardPlan};

/// A dense row-major integer matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<i32>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Builds a matrix element-wise from `f(row, col)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> i32) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let v = f(r, c);
                m.set(r, c, v);
            }
        }
        m
    }

    /// Rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> i32 {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, row: usize, col: usize, v: i32) {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col] = v;
    }

    /// Row `r` as a contiguous slice — one bounds check for the whole
    /// row instead of one per element.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    pub fn row(&self, r: usize) -> &[i32] {
        assert!(r < self.rows, "index out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a contiguous mutable slice.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [i32] {
        assert!(r < self.rows, "index out of range");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The full row-major backing store.
    #[must_use]
    pub fn as_slice(&self) -> &[i32] {
        &self.data
    }

    /// Checked rectangular view over `rows × cols` index ranges.
    /// Bounds are validated once here; every later access through the
    /// view is plain slice arithmetic — this is the single slicing
    /// helper both the sharded and streaming GEMM drivers use, so the
    /// hot loops carry no per-call index checks.
    ///
    /// # Panics
    ///
    /// Panics when either range is empty or exceeds the matrix.
    #[must_use]
    pub fn tile_view(
        &self,
        rows: std::ops::Range<usize>,
        cols: std::ops::Range<usize>,
    ) -> TileView<'_> {
        assert!(
            rows.start < rows.end && rows.end <= self.rows,
            "tile row range out of range"
        );
        assert!(
            cols.start < cols.end && cols.end <= self.cols,
            "tile col range out of range"
        );
        TileView {
            parent: self,
            row_lo: rows.start,
            col_lo: cols.start,
            rows: rows.end - rows.start,
            cols: cols.end - cols.start,
        }
    }

    /// Order-stable FNV-1a digest over dimensions and contents —
    /// shares [`tempus_nvdla::cube::fnv1a`] with the cube digests so
    /// every job-input digest in the workspace is comparable and the
    /// serving layer can key its result cache uniformly.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        tempus_nvdla::cube::fnv1a(
            [self.rows as u64, self.cols as u64]
                .into_iter()
                .chain(self.data.iter().map(|&v| v as u32 as u64)),
        )
    }

    /// Golden exact product `self × rhs` in `i64`-safe arithmetic.
    ///
    /// # Errors
    ///
    /// Returns [`ArithError::LengthMismatch`] when inner dimensions
    /// disagree.
    pub fn multiply(&self, rhs: &Matrix) -> Result<Matrix, ArithError> {
        if self.cols != rhs.rows {
            return Err(ArithError::LengthMismatch {
                lhs: self.cols,
                rhs: rhs.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for j in 0..rhs.cols {
                let mut acc = 0i64;
                for t in 0..self.cols {
                    acc += i64::from(self.get(i, t)) * i64::from(rhs.get(t, j));
                }
                out.set(i, j, i32::try_from(acc).expect("gemm output exceeds i32"));
            }
        }
        Ok(out)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix {}x{}", self.rows, self.cols)
    }
}

/// A checked rectangular window into a [`Matrix`].
///
/// Constructed by [`Matrix::tile_view`], which validates the ranges
/// once; row access hands back contiguous slices of the parent
/// storage (a column sub-range of one parent row is contiguous), so
/// tiled kernels pay no per-element bounds or index arithmetic.
#[derive(Debug, Clone, Copy)]
pub struct TileView<'a> {
    parent: &'a Matrix,
    row_lo: usize,
    col_lo: usize,
    rows: usize,
    cols: usize,
}

impl<'a> TileView<'a> {
    /// Rows in the view.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns in the view.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// View row `i` as a contiguous slice of the parent storage.
    ///
    /// # Panics
    ///
    /// Panics when `i` is outside the view.
    #[must_use]
    pub fn row(&self, i: usize) -> &'a [i32] {
        assert!(i < self.rows, "tile row out of range");
        let base = (self.row_lo + i) * self.parent.cols + self.col_lo;
        &self.parent.data[base..base + self.cols]
    }

    /// Element at `(i, j)` in view coordinates.
    ///
    /// # Panics
    ///
    /// Panics when out of the view.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> i32 {
        assert!(j < self.cols, "tile col out of range");
        self.row(i)[j]
    }

    /// Copies the view out into an owned matrix.
    #[must_use]
    pub fn to_matrix(self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for (i, chunk) in m.data.chunks_exact_mut(self.cols).enumerate() {
            chunk.copy_from_slice(self.row(i));
        }
        m
    }

    /// Copies view row `i` into `dst` (a reused staging buffer row).
    ///
    /// # Panics
    ///
    /// Panics when `i` is outside the view or `dst` is not exactly
    /// one view row wide.
    pub fn copy_row_into(&self, i: usize, dst: &mut [i32]) {
        dst.copy_from_slice(self.row(i));
    }
}

/// Execution statistics of a tubGEMM run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GemmStats {
    /// Total compute cycles.
    pub cycles: u64,
    /// Outer-product steps executed (N per tile pass).
    pub steps: u64,
    /// Grid tile passes.
    pub tile_passes: u64,
    /// Silent PE-steps (zero B values skipping whole windows).
    pub silent_pe_steps: u64,
}

/// Result of a tubGEMM run.
#[derive(Debug, Clone, PartialEq)]
pub struct GemmRun {
    /// Exact product.
    pub output: Matrix,
    /// Cycle statistics.
    pub stats: GemmStats,
}

/// The outer-product tubGEMM engine: a `grid_m`×`grid_p` PE grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TubGemm {
    grid_m: usize,
    grid_p: usize,
    precision: IntPrecision,
}

impl TubGemm {
    /// Creates an engine with a `grid_m`×`grid_p` PE grid at
    /// `precision`.
    ///
    /// # Panics
    ///
    /// Panics if either grid dimension is zero.
    #[must_use]
    pub fn new(grid_m: usize, grid_p: usize, precision: IntPrecision) -> Self {
        assert!(grid_m > 0 && grid_p > 0, "grid dimensions must be nonzero");
        TubGemm {
            grid_m,
            grid_p,
            precision,
        }
    }

    /// PE grid height (rows of `A` served in parallel).
    #[must_use]
    pub fn grid_m(&self) -> usize {
        self.grid_m
    }

    /// PE grid width (columns of `B` served in parallel).
    #[must_use]
    pub fn grid_p(&self) -> usize {
        self.grid_p
    }

    /// Operand precision the engine encodes at.
    #[must_use]
    pub fn precision(&self) -> IntPrecision {
        self.precision
    }

    /// Computes `A × B` with outer-product temporal dataflow,
    /// returning the exact product and the cycle count.
    ///
    /// # Errors
    ///
    /// Returns [`ArithError::LengthMismatch`] on inner-dimension
    /// mismatch or [`ArithError::OutOfRange`] on out-of-precision
    /// operands.
    pub fn multiply(&self, a: &Matrix, b: &Matrix) -> Result<GemmRun, ArithError> {
        if a.cols != b.rows {
            return Err(ArithError::LengthMismatch {
                lhs: a.cols,
                rhs: b.rows,
            });
        }
        for &v in &a.data {
            self.precision.check(v)?;
        }
        for &v in &b.data {
            self.precision.check(v)?;
        }
        let mut acc = vec![0i64; a.rows * b.cols];
        let mut stats = GemmStats::default();
        // Stream and decoded-weight scratch, sized once per tile pass
        // and reused across the N outer steps — no per-step
        // allocation.
        let mut streams: Vec<TwosUnaryStream> = Vec::with_capacity(self.grid_p);
        let mut weights: Vec<i32> = Vec::with_capacity(self.grid_p);
        // Tile the output grid over the PE array.
        for m0 in (0..a.rows).step_by(self.grid_m) {
            for p0 in (0..b.cols).step_by(self.grid_p) {
                stats.tile_passes += 1;
                let m1 = (m0 + self.grid_m).min(a.rows);
                let p1 = (p0 + self.grid_p).min(b.cols);
                // One checked view per tile pass; every row access
                // below is a plain contiguous slice.
                let b_tile = b.tile_view(0..b.rows, p0..p1);
                // N rank-1 updates; each step's window is bounded by
                // the largest streamed |B| value in the active columns.
                for t in 0..a.cols {
                    stats.steps += 1;
                    streams.clear();
                    for &v in b_tile.row(t) {
                        streams.push(TwosUnaryStream::encode(v, self.precision)?);
                    }
                    let window = streams.iter().map(|s| s.cycles()).max().unwrap_or(0);
                    stats.cycles += u64::from(window.max(1));
                    let silent = streams.iter().filter(|s| s.is_silent()).count();
                    stats.silent_pe_steps += silent as u64 * (m1 - m0) as u64;
                    // Window-batched fold: the whole stream's
                    // contribution is its decoded value times the
                    // activation — bit-identical to accumulating
                    // pulse by pulse (silent streams decode to 0 and
                    // contribute nothing). Products stay in i32
                    // (|a·w| ≤ 2^(2w-2)) and widen at the accumulate.
                    weights.clear();
                    weights.extend(streams.iter().map(|s| s.decode()));
                    for i in m0..m1 {
                        let activation = a.data[i * a.cols + t];
                        let row = &mut acc[i * b.cols + p0..i * b.cols + p1];
                        for (slot, &w) in row.iter_mut().zip(&weights) {
                            *slot += i64::from(activation * w);
                        }
                    }
                }
            }
        }
        let mut output = Matrix::zeros(a.rows, b.cols);
        for i in 0..a.rows {
            for j in 0..b.cols {
                output.set(
                    i,
                    j,
                    i32::try_from(acc[i * b.cols + j]).expect("gemm output exceeds i32"),
                );
            }
        }
        Ok(GemmRun { output, stats })
    }

    /// The pre-window-batching engine: encodes each step's `B` row
    /// into a freshly allocated stream vector and folds every stream
    /// **pulse by pulse** ([`tempus_arith::tub::fold_stream`]).
    /// Bit-identical to [`multiply`](TubGemm::multiply) in output and
    /// statistics; retained for equivalence tests and the `sim_speed`
    /// benchmark.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`multiply`](TubGemm::multiply).
    pub fn multiply_reference(&self, a: &Matrix, b: &Matrix) -> Result<GemmRun, ArithError> {
        if a.cols != b.rows {
            return Err(ArithError::LengthMismatch {
                lhs: a.cols,
                rhs: b.rows,
            });
        }
        for &v in &a.data {
            self.precision.check(v)?;
        }
        for &v in &b.data {
            self.precision.check(v)?;
        }
        let mut acc = vec![0i64; a.rows * b.cols];
        let mut stats = GemmStats::default();
        for m0 in (0..a.rows).step_by(self.grid_m) {
            for p0 in (0..b.cols).step_by(self.grid_p) {
                stats.tile_passes += 1;
                let m1 = (m0 + self.grid_m).min(a.rows);
                let p1 = (p0 + self.grid_p).min(b.cols);
                for t in 0..a.cols {
                    stats.steps += 1;
                    let streams: Vec<TwosUnaryStream> = (p0..p1)
                        .map(|j| TwosUnaryStream::encode(b.get(t, j), self.precision))
                        .collect::<Result<_, _>>()?;
                    let window = streams.iter().map(|s| s.cycles()).max().unwrap_or(0);
                    stats.cycles += u64::from(window.max(1));
                    for (j, stream) in streams.iter().enumerate() {
                        if stream.is_silent() {
                            stats.silent_pe_steps += (m1 - m0) as u64;
                            continue;
                        }
                        for i in m0..m1 {
                            let product =
                                i64::from(tempus_arith::tub::fold_stream(a.get(i, t), *stream));
                            acc[i * b.cols + (p0 + j)] += product;
                        }
                    }
                }
            }
        }
        let mut output = Matrix::zeros(a.rows, b.cols);
        for i in 0..a.rows {
            for j in 0..b.cols {
                output.set(
                    i,
                    j,
                    i32::try_from(acc[i * b.cols + j]).expect("gemm output exceeds i32"),
                );
            }
        }
        Ok(GemmRun { output, stats })
    }

    /// Worst-case cycles for an inner dimension of `n`: every step at
    /// the full window, `n × 2^(w-2)` (our 2s-unary realisation of the
    /// tubGEMM bound; tuGEMM's plain unary doubles it).
    #[must_use]
    pub fn worst_case_cycles(&self, n: usize) -> u64 {
        n as u64 * u64::from(self.precision.worst_case_tub_cycles())
    }

    /// Plans a multi-array split of `A(m×n) × B(n×p)` over this
    /// engine's grid-tile decomposition (see
    /// [`crate::shard::plan_gemm`]).
    #[must_use]
    pub fn shard_plan(&self, m: usize, p: usize, num_arrays: usize) -> GemmShardPlan {
        plan_gemm(m.div_ceil(self.grid_m), p.div_ceil(self.grid_p), num_arrays)
    }

    /// Computes `A × B` partitioned across `num_arrays` PE grids:
    /// each array owns a contiguous range of output grid tiles (column
    /// tiles preferred, row tiles as fallback — the inner dimension is
    /// never split, so no reduction stage is needed). The merged
    /// output and summed statistics are bit-identical to
    /// [`multiply`](TubGemm::multiply); `critical_path_cycles` (the
    /// slowest shard) is the multi-array latency.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`multiply`](TubGemm::multiply).
    pub fn multiply_sharded(
        &self,
        a: &Matrix,
        b: &Matrix,
        num_arrays: usize,
    ) -> Result<ShardedGemmRun, ArithError> {
        if a.cols != b.rows {
            return Err(ArithError::LengthMismatch {
                lhs: a.cols,
                rhs: b.rows,
            });
        }
        let plan = self.shard_plan(a.rows, b.cols, num_arrays);
        if plan.axis == GemmAxis::Single {
            let run = self.multiply(a, b)?;
            return Ok(ShardedGemmRun {
                critical_path_cycles: run.stats.cycles,
                per_shard_cycles: vec![run.stats.cycles],
                output: run.output,
                stats: run.stats,
                plan,
            });
        }
        let mut output = Matrix::zeros(a.rows, b.cols);
        let mut stats = GemmStats::default();
        let mut per_shard_cycles = Vec::with_capacity(plan.tiles.len());
        for &(t_lo, t_hi) in &plan.tiles {
            let run = match plan.axis {
                GemmAxis::Cols => {
                    let lo = t_lo * self.grid_p;
                    let hi = (t_hi * self.grid_p).min(b.cols);
                    let sub = b.tile_view(0..b.rows, lo..hi).to_matrix();
                    let run = self.multiply(a, &sub)?;
                    for i in 0..a.rows {
                        output.row_mut(i)[lo..hi].copy_from_slice(run.output.row(i));
                    }
                    run
                }
                GemmAxis::Rows => {
                    let lo = t_lo * self.grid_m;
                    let hi = (t_hi * self.grid_m).min(a.rows);
                    let sub = a.tile_view(lo..hi, 0..a.cols).to_matrix();
                    let run = self.multiply(&sub, b)?;
                    for i in 0..(hi - lo) {
                        output.row_mut(lo + i).copy_from_slice(run.output.row(i));
                    }
                    run
                }
                GemmAxis::Single => unreachable!("handled above"),
            };
            stats.cycles += run.stats.cycles;
            stats.steps += run.stats.steps;
            stats.tile_passes += run.stats.tile_passes;
            stats.silent_pe_steps += run.stats.silent_pe_steps;
            per_shard_cycles.push(run.stats.cycles);
        }
        let critical_path_cycles = per_shard_cycles.iter().copied().max().unwrap_or(0);
        Ok(ShardedGemmRun {
            output,
            stats,
            plan,
            per_shard_cycles,
            critical_path_cycles,
        })
    }

    /// Closed-form per-shard cycle model for
    /// [`multiply_sharded`](TubGemm::multiply_sharded): per grid tile
    /// and outer step the window is the largest streamed `|B|`
    /// magnitude under 2s-unary encoding, floored at one cycle —
    /// exactly the accounting the simulated engine keeps, so the
    /// returned per-shard cycles (and their max, the critical path)
    /// match the sharded run bit-for-bit. With `num_arrays == 1` the
    /// single entry equals [`multiply`](TubGemm::multiply)'s cycles.
    #[must_use]
    pub fn sharded_cycle_model(
        &self,
        a: &Matrix,
        b: &Matrix,
        num_arrays: usize,
    ) -> (GemmShardPlan, Vec<u64>) {
        let plan = self.shard_plan(a.rows, b.cols, num_arrays);
        let m_tiles = a.rows.div_ceil(self.grid_m) as u64;
        // Per column-tile cost of streaming the whole inner dimension.
        let col_tile_cycles: Vec<u64> = (0..b.cols.div_ceil(self.grid_p))
            .map(|tp| {
                let lo = tp * self.grid_p;
                let hi = (lo + self.grid_p).min(b.cols);
                let tile = b.tile_view(0..b.rows, lo..hi);
                (0..a.cols)
                    .map(|t| {
                        let window = tile
                            .row(t)
                            .iter()
                            .map(|&v| v.unsigned_abs().div_ceil(2))
                            .max()
                            .unwrap_or(0);
                        u64::from(window.max(1))
                    })
                    .sum::<u64>()
            })
            .collect();
        let all_cols: u64 = col_tile_cycles.iter().sum();
        let per_shard = match plan.axis {
            GemmAxis::Single => vec![m_tiles * all_cols],
            GemmAxis::Cols => plan
                .tiles
                .iter()
                .map(|&(lo, hi)| m_tiles * col_tile_cycles[lo..hi].iter().sum::<u64>())
                .collect(),
            GemmAxis::Rows => plan
                .tiles
                .iter()
                .map(|&(lo, hi)| (hi - lo) as u64 * all_cols)
                .collect(),
        };
        (plan, per_shard)
    }
}

/// Result of a multi-array tubGEMM run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedGemmRun {
    /// Merged product — bit-identical to the single-array engine.
    pub output: Matrix,
    /// Statistics summed over shards (bit-identical to the
    /// single-array run: the output-tile set partitions exactly).
    pub stats: GemmStats,
    /// The plan that was executed.
    pub plan: GemmShardPlan,
    /// Per-shard cycle counts, in shard order.
    pub per_shard_cycles: Vec<u64>,
    /// The job's latency on the multi-array core: the slowest shard
    /// (no reduction stage — output tiles are independent).
    pub critical_path_cycles: u64,
}

impl ShardedGemmRun {
    /// Work balance across the arrays (see [`crate::shard::balance`]).
    #[must_use]
    pub fn balance(&self) -> f64 {
        balance(&self.per_shard_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(m: usize, n: usize, p: usize, seed: i32) -> (Matrix, Matrix) {
        let a = Matrix::from_fn(m, n, |i, j| {
            ((i as i32 * 31 + j as i32 * 17 + seed) % 255) - 127
        });
        let b = Matrix::from_fn(n, p, |i, j| {
            ((i as i32 * 13 + j as i32 * 41 + seed * 3) % 255) - 127
        });
        (a, b)
    }

    #[test]
    fn matches_golden_product_exactly() {
        let (a, b) = case(7, 9, 5, 1);
        let engine = TubGemm::new(4, 4, IntPrecision::Int8);
        let run = engine.multiply(&a, &b).unwrap();
        assert_eq!(run.output, a.multiply(&b).unwrap());
    }

    #[test]
    fn tiling_is_transparent() {
        let (a, b) = case(10, 6, 11, 2);
        let small = TubGemm::new(3, 4, IntPrecision::Int8);
        let large = TubGemm::new(16, 16, IntPrecision::Int8);
        let r1 = small.multiply(&a, &b).unwrap();
        let r2 = large.multiply(&a, &b).unwrap();
        assert_eq!(r1.output, r2.output);
        assert!(r1.stats.tile_passes > r2.stats.tile_passes);
    }

    #[test]
    fn cycles_bounded_by_worst_case() {
        let (a, b) = case(8, 16, 8, 3);
        let engine = TubGemm::new(8, 8, IntPrecision::Int8);
        let run = engine.multiply(&a, &b).unwrap();
        assert!(run.stats.cycles <= engine.worst_case_cycles(16));
        assert!(run.stats.cycles >= 16, "at least one cycle per step");
    }

    #[test]
    fn zero_b_rows_take_minimum_window() {
        let a = Matrix::from_fn(4, 3, |i, j| (i + j) as i32);
        let b = Matrix::zeros(3, 4);
        let engine = TubGemm::new(4, 4, IntPrecision::Int8);
        let run = engine.multiply(&a, &b).unwrap();
        assert_eq!(run.stats.cycles, 3); // 3 steps x min window 1
        assert_eq!(run.stats.silent_pe_steps, 3 * 4 * 4); // 3 steps x 4 cols x 4 rows, all silent
        assert!(run.output.data.iter().all(|&v| v == 0));
    }

    #[test]
    fn window_batched_multiply_matches_reference_exactly() {
        for (m, n, p, seed, gm, gp) in [
            (7usize, 9usize, 5usize, 1i32, 4usize, 4usize),
            (10, 6, 11, 2, 3, 4),
            (16, 16, 16, 5, 8, 8),
            (1, 1, 1, 9, 2, 2),
        ] {
            let (a, b) = {
                let a = Matrix::from_fn(m, n, |i, j| {
                    ((i as i32 * 31 + j as i32 * 17 + seed) % 255) - 127
                });
                let b = Matrix::from_fn(n, p, |i, j| {
                    ((i as i32 * 13 + j as i32 * 41 + seed * 3) % 255) - 127
                });
                (a, b)
            };
            let engine = TubGemm::new(gm, gp, IntPrecision::Int8);
            let fast = engine.multiply(&a, &b).unwrap();
            let reference = engine.multiply_reference(&a, &b).unwrap();
            assert_eq!(fast.output, reference.output);
            assert_eq!(fast.stats, reference.stats);
        }
    }

    #[test]
    fn sharded_multiply_is_bit_identical_to_single() {
        for (m, n, p, gm, gp, arrays) in [
            (10usize, 6usize, 24usize, 4usize, 4usize, 3usize), // col split
            (24, 6, 7, 4, 4, 4),                                // row split
            (16, 8, 16, 4, 4, 2),
            (3, 3, 3, 4, 4, 4), // single tile both axes
        ] {
            let (a, b) = case(m, n, p, 11);
            let engine = TubGemm::new(gm, gp, IntPrecision::Int8);
            let single = engine.multiply(&a, &b).unwrap();
            let sharded = engine.multiply_sharded(&a, &b, arrays).unwrap();
            assert_eq!(sharded.output, single.output, "{m}x{n}x{p} arrays={arrays}");
            assert_eq!(sharded.stats, single.stats, "{m}x{n}x{p} arrays={arrays}");
            assert_eq!(
                sharded.per_shard_cycles.iter().sum::<u64>(),
                single.stats.cycles
            );
            assert!(sharded.critical_path_cycles <= single.stats.cycles);
            // The closed-form model reproduces the simulated shard
            // cycles exactly.
            let (plan, modelled) = engine.sharded_cycle_model(&a, &b, arrays);
            assert_eq!(plan, sharded.plan);
            assert_eq!(modelled, sharded.per_shard_cycles);
        }
    }

    #[test]
    fn sharded_multiply_cuts_the_critical_path() {
        let (a, b) = case(8, 16, 32, 11);
        let engine = TubGemm::new(8, 8, IntPrecision::Int8);
        let single = engine.multiply(&a, &b).unwrap();
        let sharded = engine.multiply_sharded(&a, &b, 4).unwrap();
        assert_eq!(sharded.plan.used_arrays(), 4);
        assert!(
            (sharded.critical_path_cycles as f64) < 0.6 * single.stats.cycles as f64,
            "critical path {} vs single {}",
            sharded.critical_path_cycles,
            single.stats.cycles
        );
        assert!(sharded.balance() > 0.5);
    }

    #[test]
    fn tile_view_matches_get_and_round_trips() {
        let (a, _) = case(6, 5, 4, 7);
        let view = a.tile_view(1..5, 2..5);
        assert_eq!(view.rows(), 4);
        assert_eq!(view.cols(), 3);
        for i in 0..view.rows() {
            for j in 0..view.cols() {
                assert_eq!(view.get(i, j), a.get(1 + i, 2 + j));
            }
            assert_eq!(view.row(i), &a.row(1 + i)[2..5]);
        }
        let owned = view.to_matrix();
        assert_eq!(owned, Matrix::from_fn(4, 3, |i, j| a.get(1 + i, 2 + j)));
    }

    #[test]
    #[should_panic(expected = "tile col range out of range")]
    fn tile_view_rejects_out_of_range() {
        let m = Matrix::zeros(3, 3);
        let _ = m.tile_view(0..3, 1..4);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let engine = TubGemm::new(4, 4, IntPrecision::Int8);
        assert!(matches!(
            engine.multiply(&a, &b),
            Err(ArithError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn int4_extremes() {
        let p = IntPrecision::Int4;
        let a = Matrix::from_fn(3, 3, |_, _| p.min_value());
        let b = Matrix::from_fn(3, 3, |_, _| p.min_value());
        let engine = TubGemm::new(2, 2, p);
        let run = engine.multiply(&a, &b).unwrap();
        assert_eq!(run.output.get(0, 0), 64 * 3);
        // Every step at the worst window (4 cycles), 4 tile passes
        // (ceil(3/2)^2) x 3 steps each.
        assert_eq!(run.stats.cycles, 4 * 3 * 4);
    }

    #[test]
    fn precision_violation_rejected() {
        let a = Matrix::from_fn(1, 1, |_, _| 8);
        let b = Matrix::zeros(1, 1);
        assert!(TubGemm::new(1, 1, IntPrecision::Int4)
            .multiply(&a, &b)
            .is_err());
    }
}
