//! CSC stripe-schedule caching for batched serving.
//!
//! The closed-form latency model in [`crate::latency`] walks the full
//! [`ModifiedCsc`](crate::csc_mod::ModifiedCsc) command stream — every
//! weight load *and* every atomic op — which is wasteful when the same
//! layer shapes (and, in batched inference, the same weights) recur
//! across requests. This module provides the fast path the runtime's
//! workers use:
//!
//! * [`StripeSchedule`] — the shape-derived stripe decomposition
//!   (groups, taps, ops per stripe), cached per layer shape;
//! * a weight-digest-keyed memo of full [`LatencyBreakdown`]s, so a
//!   repeated layer costs one hash lookup instead of a weight scan;
//! * [`ScheduleCache::predict`] — produces *bit-identical* totals to
//!   [`crate::latency::predict`] (tests pin this), which is itself
//!   pinned to the cycle-accurate simulation.
//!
//! The cache is intended to be owned per worker thread (no interior
//! locking): each worker of the runtime engine keeps its own instance,
//! so the hot path is contention-free.

use std::collections::HashMap;

use tempus_nvdla::config::NvdlaConfig;
use tempus_nvdla::conv::ConvParams;
use tempus_nvdla::cube::{DataCube, KernelSet};
use tempus_nvdla::NvdlaError;

use crate::latency::LatencyBreakdown;
use crate::shard::{balance, plan_conv, ShardPlan, ShardStrategy};
use crate::TempusConfig;

/// Cache key: everything the stripe decomposition depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShapeKey {
    /// Feature width.
    pub fw: usize,
    /// Feature height.
    pub fh: usize,
    /// Channels.
    pub c: usize,
    /// Kernel count.
    pub k: usize,
    /// Kernel height (taps).
    pub r: usize,
    /// Kernel width (taps).
    pub s: usize,
    /// Stride x/y.
    pub stride: (usize, usize),
    /// Padding x/y.
    pub pad: (usize, usize),
    /// Dilation x/y.
    pub dilation: (usize, usize),
    /// Array shape `(atomic_k, atomic_c)`.
    pub array: (usize, usize),
}

impl ShapeKey {
    /// Builds the key for one convolution under `config`.
    #[must_use]
    pub fn new(
        features: &DataCube,
        kernels: &KernelSet,
        params: &ConvParams,
        config: &NvdlaConfig,
    ) -> Self {
        ShapeKey {
            fw: features.w(),
            fh: features.h(),
            c: kernels.c(),
            k: kernels.k(),
            r: kernels.r(),
            s: kernels.s(),
            stride: (params.stride_x, params.stride_y),
            pad: (params.pad_x, params.pad_y),
            dilation: (params.dilation_x, params.dilation_y),
            array: (config.atomic_k, config.atomic_c),
        }
    }
}

/// The shape-derived part of a stripe schedule: identical for every
/// convolution with the same [`ShapeKey`], independent of weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeSchedule {
    /// Output width.
    pub out_w: usize,
    /// Output height.
    pub out_h: usize,
    /// Kernel groups (`ceil(k / atomic_k)`).
    pub kernel_groups: usize,
    /// Channel groups (`ceil(c / atomic_c)`).
    pub channel_groups: usize,
    /// Total stripes (`kernel_groups × channel_groups × r × s`).
    pub stripe_count: u64,
    /// Atomic ops streamed per stripe (`out_w × out_h`).
    pub ops_per_stripe: u64,
}

impl StripeSchedule {
    /// Derives the schedule from shapes, mirroring
    /// [`tempus_nvdla::csc::CscSequencer`]'s decomposition exactly.
    ///
    /// # Errors
    ///
    /// Returns the same shape errors the sequencer would.
    pub fn derive(
        features: &DataCube,
        kernels: &KernelSet,
        params: &ConvParams,
        config: &NvdlaConfig,
    ) -> Result<Self, NvdlaError> {
        if features.c() != kernels.c() {
            return Err(NvdlaError::ChannelMismatch {
                feature_c: features.c(),
                kernel_c: kernels.c(),
            });
        }
        let (out_w, out_h) =
            params.output_dims(features.w(), features.h(), kernels.r(), kernels.s())?;
        let kernel_groups = kernels.k().div_ceil(config.atomic_k);
        let channel_groups = kernels.c().div_ceil(config.atomic_c);
        Ok(StripeSchedule {
            out_w,
            out_h,
            kernel_groups,
            channel_groups,
            stripe_count: (kernel_groups * channel_groups * kernels.r() * kernels.s()) as u64,
            ops_per_stripe: (out_w * out_h) as u64,
        })
    }

    /// Total atomic ops across the whole convolution.
    #[must_use]
    pub fn atomic_op_count(&self) -> u64 {
        self.stripe_count * self.ops_per_stripe
    }
}

/// Hit/miss counters for observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Shape-schedule lookups served from the cache.
    pub schedule_hits: u64,
    /// Shape-schedule lookups that had to derive.
    pub schedule_misses: u64,
    /// Latency predictions served from the memo.
    pub latency_hits: u64,
    /// Latency predictions that had to scan weights.
    pub latency_misses: u64,
}

impl CacheStats {
    /// Merges another worker's counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.schedule_hits += other.schedule_hits;
        self.schedule_misses += other.schedule_misses;
        self.latency_hits += other.latency_hits;
        self.latency_misses += other.latency_misses;
    }
}

/// Memo key for a full latency prediction: the stripe shape, the
/// weight digest, and every [`TempusConfig`] field the breakdown
/// depends on (cache overheads and the baseline's pipeline depth,
/// which feeds `binary_cycles`/`slowdown`).
type LatencyKey = (ShapeKey, u64, u32, u32, u32);

/// Closed-form latency of a convolution partitioned across N PE
/// arrays — the functional backend's model of the multi-array engine,
/// bit-identical to the per-shard cycle counts of
/// [`TempusCore::convolve_sharded`](crate::TempusCore::convolve_sharded)
/// (pinned by tests).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedLatency {
    /// The plan the prediction models.
    pub plan: ShardPlan,
    /// Predicted cycles per shard, in shard order.
    pub per_shard_cycles: Vec<u64>,
    /// Cycles of the cross-array reduction stage (0 for kernel-group
    /// splits).
    pub reduction_cycles: u64,
    /// Predicted multi-array latency: slowest shard plus reduction.
    pub critical_path_cycles: u64,
    /// Summed array-cycles — equals the single-array engine's total
    /// exactly (the stripe set partitions).
    pub total_array_cycles: u64,
}

impl ShardedLatency {
    /// Work balance across the arrays (see [`crate::shard::balance`]).
    #[must_use]
    pub fn balance(&self) -> f64 {
        balance(&self.per_shard_cycles)
    }
}

/// Closed-form prediction for a *streamed* convolution: the latency
/// of the streamed path is the materialized prediction itself —
/// double-buffered tile staging overlaps compute, so streaming is a
/// memory-footprint transform, not a latency one — extended with the
/// per-output-row scratch unit (`out_w × k` elements) the fused
/// conv → SDP → pool pipeline in `tempus_nvdla::fused` sizes its
/// bounded ring from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamedConvLatency {
    /// The latency breakdown — bit-identical to
    /// [`ScheduleCache::predict`].
    pub latency: LatencyBreakdown,
    /// Elements in one streamed output row (`out_w × k`), the unit
    /// the fused pipeline's peak-scratch closed form scales.
    pub conv_row_elems: u64,
}

/// Per-worker stripe-schedule and latency cache.
#[derive(Debug, Clone, Default)]
pub struct ScheduleCache {
    schedules: HashMap<ShapeKey, StripeSchedule>,
    latencies: HashMap<LatencyKey, LatencyBreakdown>,
    sharded: HashMap<(LatencyKey, usize), ShardedLatency>,
    stats: CacheStats,
}

impl ScheduleCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        ScheduleCache::default()
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Cached entries `(schedules, latencies)`.
    #[must_use]
    pub fn len(&self) -> (usize, usize) {
        (self.schedules.len(), self.latencies.len())
    }

    /// `true` when nothing is cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.schedules.is_empty() && self.latencies.is_empty() && self.sharded.is_empty()
    }

    /// The stripe schedule for one convolution, cached per shape.
    ///
    /// # Errors
    ///
    /// Returns the sequencer's shape errors on the first (miss) path.
    pub fn schedule(
        &mut self,
        features: &DataCube,
        kernels: &KernelSet,
        params: &ConvParams,
        config: &NvdlaConfig,
    ) -> Result<StripeSchedule, NvdlaError> {
        let key = ShapeKey::new(features, kernels, params, config);
        if let Some(&hit) = self.schedules.get(&key) {
            self.stats.schedule_hits += 1;
            return Ok(hit);
        }
        self.stats.schedule_misses += 1;
        let schedule = StripeSchedule::derive(features, kernels, params, config)?;
        self.schedules.insert(key, schedule);
        Ok(schedule)
    }

    /// Closed-form latency prediction with schedule caching and
    /// weight-digest memoization. Totals are bit-identical to
    /// [`crate::latency::predict`] (and therefore to the
    /// cycle-accurate simulator).
    ///
    /// # Errors
    ///
    /// Returns the sequencer's shape errors.
    pub fn predict(
        &mut self,
        features: &DataCube,
        kernels: &KernelSet,
        params: &ConvParams,
        config: &TempusConfig,
    ) -> Result<LatencyBreakdown, NvdlaError> {
        let key = ShapeKey::new(features, kernels, params, &config.base);
        let memo_key = (
            key,
            kernels.content_hash(),
            config.cache_in_cycles,
            config.cache_out_cycles,
            config.base.cmac_pipeline_depth,
        );
        if let Some(&hit) = self.latencies.get(&memo_key) {
            self.stats.latency_hits += 1;
            return Ok(hit);
        }
        self.stats.latency_misses += 1;
        let schedule = self.schedule(features, kernels, params, &config.base)?;
        let breakdown = predict_from_schedule(&schedule, kernels, config);
        self.latencies.insert(memo_key, breakdown);
        Ok(breakdown)
    }

    /// Streamed-execution prediction: the same memoized closed-form
    /// latency as [`ScheduleCache::predict`] (streaming changes where
    /// operand bytes live, not when windows fire), plus the
    /// schedule-derived per-row scratch unit for peak-scratch
    /// budgeting. Tests pin the latency bit-identical to the
    /// materialized prediction.
    ///
    /// # Errors
    ///
    /// Returns the sequencer's shape errors.
    pub fn predict_streamed(
        &mut self,
        features: &DataCube,
        kernels: &KernelSet,
        params: &ConvParams,
        config: &TempusConfig,
    ) -> Result<StreamedConvLatency, NvdlaError> {
        let latency = self.predict(features, kernels, params, config)?;
        let schedule = self.schedule(features, kernels, params, &config.base)?;
        Ok(StreamedConvLatency {
            latency,
            conv_row_elems: (schedule.out_w * kernels.k()) as u64,
        })
    }

    /// Closed-form multi-array latency prediction with schedule
    /// caching and weight-digest memoization. Per-shard cycles are
    /// bit-identical to the cycle-accurate sharded engine (each shard
    /// is itself a convolution the single-array theorem covers).
    ///
    /// # Errors
    ///
    /// Returns the sequencer's shape errors.
    pub fn predict_sharded(
        &mut self,
        features: &DataCube,
        kernels: &KernelSet,
        params: &ConvParams,
        config: &TempusConfig,
        num_arrays: usize,
    ) -> Result<ShardedLatency, NvdlaError> {
        let key = ShapeKey::new(features, kernels, params, &config.base);
        let memo_key = (
            (
                key,
                kernels.content_hash(),
                config.cache_in_cycles,
                config.cache_out_cycles,
                config.base.cmac_pipeline_depth,
            ),
            num_arrays,
        );
        if let Some(hit) = self.sharded.get(&memo_key) {
            self.stats.latency_hits += 1;
            return Ok(hit.clone());
        }
        self.stats.latency_misses += 1;
        let schedule = self.schedule(features, kernels, params, &config.base)?;
        let sharded = predict_sharded_from_schedule(&schedule, kernels, config, num_arrays);
        self.sharded.insert(memo_key, sharded.clone());
        Ok(sharded)
    }
}

/// The closed-form latency computation given a derived schedule: scans
/// each stripe's weight slice directly on the [`KernelSet`] instead of
/// materialising sequencer commands.
#[must_use]
pub fn predict_from_schedule(
    schedule: &StripeSchedule,
    kernels: &KernelSet,
    config: &TempusConfig,
) -> LatencyBreakdown {
    let (atomic_k, atomic_c) = (config.base.atomic_k, config.base.atomic_c);
    let ops_per_stripe = schedule.ops_per_stripe;
    let overhead_per_op = u64::from(config.cache_in_cycles + config.cache_out_cycles);

    let mut window_cycles = 0u64;
    // Stripe order is irrelevant for totals; iterate the same (kg, cg,
    // r, s) decomposition the sequencer uses. Cells past the kernel
    // count and channels past the extent are zero (silent) and cannot
    // raise a stripe's max magnitude.
    for kg in 0..schedule.kernel_groups {
        let k_lo = kg * atomic_k;
        let k_hi = (k_lo + atomic_k).min(kernels.k());
        for cg in 0..schedule.channel_groups {
            let c_lo = cg * atomic_c;
            let c_hi = (c_lo + atomic_c).min(kernels.c());
            for r in 0..kernels.r() {
                for s in 0..kernels.s() {
                    let mut max_mag = 0u32;
                    for k in k_lo..k_hi {
                        for c in c_lo..c_hi {
                            max_mag = max_mag.max(kernels.get(k, r, s, c).unsigned_abs());
                        }
                    }
                    let stripe_latency = max_mag.div_ceil(2);
                    window_cycles += u64::from(stripe_latency.max(1)) * ops_per_stripe;
                }
            }
        }
    }

    let weight_load_cycles = schedule.stripe_count;
    let ops = schedule.atomic_op_count();
    let overhead_cycles = overhead_per_op * ops;
    let total_cycles = weight_load_cycles + window_cycles + overhead_cycles;
    let binary_cycles = weight_load_cycles + ops + u64::from(config.base.cmac_pipeline_depth);
    LatencyBreakdown {
        weight_load_cycles,
        window_cycles,
        overhead_cycles,
        total_cycles,
        avg_window: if ops == 0 {
            0.0
        } else {
            window_cycles as f64 / ops as f64
        },
        binary_cycles,
        slowdown: if binary_cycles == 0 {
            0.0
        } else {
            total_cycles as f64 / binary_cycles as f64
        },
    }
}

/// The closed-form sharded latency computation given a derived
/// schedule: plans the split exactly as the cycle-accurate driver
/// does, then prices each shard's stripe subset with the same
/// per-stripe arithmetic as [`predict_from_schedule`] — so summing
/// the shards reproduces the single-array total bit-for-bit, and each
/// shard's cycles equal its simulated run.
#[must_use]
pub fn predict_sharded_from_schedule(
    schedule: &StripeSchedule,
    kernels: &KernelSet,
    config: &TempusConfig,
    num_arrays: usize,
) -> ShardedLatency {
    let (atomic_k, atomic_c) = (config.base.atomic_k, config.base.atomic_c);
    let plan = plan_conv(kernels.k(), kernels.c(), atomic_k, atomic_c, num_arrays);

    // Cost of the stripe rectangle (kernel groups × channel groups):
    // one weight-load cycle per stripe plus window + cache overheads
    // per atomic op — identical arithmetic to predict_from_schedule.
    let ops_per_stripe = schedule.ops_per_stripe;
    let overhead_per_op = u64::from(config.cache_in_cycles + config.cache_out_cycles);
    let rect_cost = |kg_range: (usize, usize), cg_range: (usize, usize)| -> u64 {
        let mut cycles = 0u64;
        for kg in kg_range.0..kg_range.1 {
            let k_lo = kg * atomic_k;
            let k_hi = (k_lo + atomic_k).min(kernels.k());
            for cg in cg_range.0..cg_range.1 {
                let c_lo = cg * atomic_c;
                let c_hi = (c_lo + atomic_c).min(kernels.c());
                for r in 0..kernels.r() {
                    for s in 0..kernels.s() {
                        let mut max_mag = 0u32;
                        for k in k_lo..k_hi {
                            for c in c_lo..c_hi {
                                max_mag = max_mag.max(kernels.get(k, r, s, c).unsigned_abs());
                            }
                        }
                        let stripe_latency = max_mag.div_ceil(2);
                        cycles += 1
                            + (u64::from(stripe_latency.max(1)) + overhead_per_op) * ops_per_stripe;
                    }
                }
            }
        }
        cycles
    };

    let all_kg = (0, schedule.kernel_groups);
    let all_cg = (0, schedule.channel_groups);
    let per_shard_cycles: Vec<u64> = match plan.strategy {
        ShardStrategy::Single => vec![rect_cost(all_kg, all_cg)],
        ShardStrategy::KernelGroups => plan
            .slices
            .iter()
            .map(|s| rect_cost((s.group_lo, s.group_hi), all_cg))
            .collect(),
        ShardStrategy::ChannelGroups => plan
            .slices
            .iter()
            .map(|s| rect_cost(all_kg, (s.group_lo, s.group_hi)))
            .collect(),
    };
    let out_elems = (schedule.out_w * schedule.out_h * kernels.k()) as u64;
    let reduction_cycles = plan.reduction_cycles(out_elems, atomic_k);
    let max_shard = per_shard_cycles.iter().copied().max().unwrap_or(0);
    ShardedLatency {
        plan,
        total_array_cycles: per_shard_cycles.iter().sum(),
        critical_path_cycles: max_shard + reduction_cycles,
        reduction_cycles,
        per_shard_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempus_nvdla::csc::CscSequencer;
    use tempus_nvdla::pipeline::ConvCore;

    use crate::latency;
    use crate::TempusCore;

    fn case(c: usize, k: usize, ksize: usize, seed: i32) -> (DataCube, KernelSet) {
        let f = DataCube::from_fn(7, 6, c, move |x, y, ch| {
            ((x as i32 * 31 + y as i32 * 17 + ch as i32 * 7 + seed) % 255) - 127
        });
        let kn = KernelSet::from_fn(k, ksize, ksize, c, move |k, r, s, ch| {
            ((k as i32 * 13 + r as i32 * 5 + s as i32 * 3 + ch as i32 * 11 + seed) % 255) - 127
        });
        (f, kn)
    }

    #[test]
    fn schedule_matches_sequencer_counts() {
        for (c, k, ksize, params) in [
            (8, 8, 3, ConvParams::valid()),
            (11, 13, 3, ConvParams::unit_stride_same(3)),
            (16, 4, 5, ConvParams::strided(2, 2)),
            (3, 9, 1, ConvParams::valid()),
        ] {
            let (f, kn) = case(c, k, ksize, 3);
            let cfg = NvdlaConfig::nv_small();
            let seq = CscSequencer::new(&f, &kn, &params, &cfg).unwrap();
            let schedule = StripeSchedule::derive(&f, &kn, &params, &cfg).unwrap();
            assert_eq!(schedule.stripe_count, seq.stripe_count());
            assert_eq!(schedule.atomic_op_count(), seq.atomic_op_count());
            assert_eq!((schedule.out_w, schedule.out_h), seq.output_dims());
        }
    }

    #[test]
    fn cached_prediction_is_bit_identical_to_walking_predictor() {
        let mut cache = ScheduleCache::new();
        for (c, k, ksize, params) in [
            (8, 8, 3, ConvParams::valid()),
            (11, 13, 3, ConvParams::unit_stride_same(3)),
            (16, 4, 5, ConvParams::strided(2, 2)),
        ] {
            let (f, kn) = case(c, k, ksize, 9);
            for overheads in [(1, 1), (0, 0), (2, 3)] {
                let config =
                    TempusConfig::nv_small().with_cache_overheads(overheads.0, overheads.1);
                let walked = latency::predict(&f, &kn, &params, &config).unwrap();
                let cached = cache.predict(&f, &kn, &params, &config).unwrap();
                assert_eq!(walked, cached, "c={c} k={k} ksize={ksize}");
            }
        }
    }

    #[test]
    fn cached_prediction_matches_cycle_accurate_simulation() {
        let (f, kn) = case(8, 8, 3, 11);
        let params = ConvParams::unit_stride_same(3);
        let config = TempusConfig::nv_small();
        let mut cache = ScheduleCache::new();
        let predicted = cache.predict(&f, &kn, &params, &config).unwrap();
        let mut core = TempusCore::new(config);
        let run = core.convolve(&f, &kn, &params).unwrap();
        assert_eq!(predicted.total_cycles, run.stats.cycles);
    }

    #[test]
    fn sharded_prediction_matches_sharded_simulation_exactly() {
        let params = ConvParams::unit_stride_same(3);
        let config = TempusConfig::nv_small();
        let mut cache = ScheduleCache::new();
        for (c, k, arrays) in [
            (8usize, 32usize, 2usize),
            (8, 32, 4),
            (32, 8, 4),
            (11, 19, 3),
        ] {
            let (f, kn) = case(c, k, 3, 13);
            let predicted = cache
                .predict_sharded(&f, &kn, &params, &config, arrays)
                .unwrap();
            let mut core = TempusCore::new(config);
            let run = core.convolve_sharded(&f, &kn, &params, arrays).unwrap();
            assert_eq!(predicted.plan, run.plan, "c={c} k={k} arrays={arrays}");
            assert_eq!(
                predicted.per_shard_cycles,
                run.per_shard_cycles(),
                "c={c} k={k} arrays={arrays}"
            );
            assert_eq!(predicted.reduction_cycles, run.reduction_cycles);
            assert_eq!(predicted.critical_path_cycles, run.critical_path_cycles);
            assert_eq!(predicted.total_array_cycles, run.stats.cycles);
            assert_eq!(predicted.balance().to_bits(), run.balance().to_bits());
        }
    }

    #[test]
    fn sharded_prediction_sums_to_the_single_array_prediction() {
        let (f, kn) = case(16, 24, 3, 5);
        let params = ConvParams::valid();
        let config = TempusConfig::nv_small();
        let mut cache = ScheduleCache::new();
        let single = cache.predict(&f, &kn, &params, &config).unwrap();
        for arrays in [1usize, 2, 3, 4, 8] {
            let sharded = cache
                .predict_sharded(&f, &kn, &params, &config, arrays)
                .unwrap();
            assert_eq!(sharded.total_array_cycles, single.total_cycles, "{arrays}");
        }
    }

    #[test]
    fn streamed_prediction_is_latency_invariant() {
        // Streaming moves bytes, not windows: the streamed prediction
        // must be bit-identical to the materialized one.
        let (f, kn) = case(8, 8, 3, 11);
        let params = ConvParams::unit_stride_same(3);
        let config = TempusConfig::nv_small();
        let mut cache = ScheduleCache::new();
        let materialized = cache.predict(&f, &kn, &params, &config).unwrap();
        let streamed = cache.predict_streamed(&f, &kn, &params, &config).unwrap();
        assert_eq!(streamed.latency, materialized);
        let schedule = StripeSchedule::derive(&f, &kn, &params, &config.base).unwrap();
        assert_eq!(streamed.conv_row_elems, (schedule.out_w * kn.k()) as u64);
    }

    #[test]
    fn sharded_predictions_hit_the_memo() {
        let (f, kn) = case(8, 16, 3, 9);
        let params = ConvParams::valid();
        let config = TempusConfig::nv_small();
        let mut cache = ScheduleCache::new();
        let first = cache.predict_sharded(&f, &kn, &params, &config, 2).unwrap();
        let misses = cache.stats().latency_misses;
        for _ in 0..5 {
            let again = cache.predict_sharded(&f, &kn, &params, &config, 2).unwrap();
            assert_eq!(first, again);
        }
        assert_eq!(cache.stats().latency_misses, misses);
        assert_eq!(cache.stats().latency_hits, 5);
        // A different array count is a different memo entry.
        let _ = cache.predict_sharded(&f, &kn, &params, &config, 4).unwrap();
        assert_eq!(cache.stats().latency_misses, misses + 1);
    }

    #[test]
    fn repeated_layers_hit_the_memo() {
        let (f, kn) = case(8, 8, 3, 5);
        let params = ConvParams::valid();
        let config = TempusConfig::nv_small();
        let mut cache = ScheduleCache::new();
        let first = cache.predict(&f, &kn, &params, &config).unwrap();
        for _ in 0..9 {
            let again = cache.predict(&f, &kn, &params, &config).unwrap();
            assert_eq!(first, again);
        }
        let stats = cache.stats();
        assert_eq!(stats.latency_misses, 1);
        assert_eq!(stats.latency_hits, 9);
        // Same shape with different weights: schedule hits, memo misses.
        let (_, other) = case(8, 8, 3, 6);
        cache.predict(&f, &other, &params, &config).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.latency_misses, 2);
        assert_eq!(stats.schedule_hits, 1);
        assert_eq!(stats.schedule_misses, 1);
    }

    #[test]
    fn memo_distinguishes_pipeline_depths() {
        // Same shape, weights and overheads, different baseline
        // pipeline depth: binary_cycles differ, so one shared cache
        // must not conflate them.
        let (f, kn) = case(8, 8, 3, 4);
        let params = ConvParams::valid();
        let mut cache = ScheduleCache::new();
        let shallow = TempusConfig::nv_small();
        let mut deep = shallow;
        deep.base.cmac_pipeline_depth = shallow.base.cmac_pipeline_depth + 5;
        let a = cache.predict(&f, &kn, &params, &shallow).unwrap();
        let b = cache.predict(&f, &kn, &params, &deep).unwrap();
        assert_eq!(b.binary_cycles, a.binary_cycles + 5);
        assert_eq!(a, latency::predict(&f, &kn, &params, &shallow).unwrap());
        assert_eq!(b, latency::predict(&f, &kn, &params, &deep).unwrap());
    }

    #[test]
    fn shape_errors_propagate() {
        let f = DataCube::zeros(4, 4, 3);
        let kn = KernelSet::zeros(2, 3, 3, 5);
        let mut cache = ScheduleCache::new();
        assert!(matches!(
            cache.predict(&f, &kn, &ConvParams::valid(), &TempusConfig::nv_small()),
            Err(NvdlaError::ChannelMismatch { .. })
        ));
        assert!(cache.is_empty());
    }

    #[test]
    fn cores_are_send_and_sync_for_worker_pools() {
        fn check<T: Send + Sync>() {}
        check::<TempusCore>();
        check::<ScheduleCache>();
        check::<tempus_nvdla::pipeline::NvdlaConvCore>();
    }
}
