//! **Tempus Core**: the temporal-unary-binary (tub) convolution engine
//! of the paper, implemented as a drop-in replacement for NVDLA's
//! convolution core.
//!
//! The crate provides, bottom-up:
//!
//! * [`tub_pe`] — the cycle-accurate tub multiplier and PE cell: per
//!   pulse cycle each multiplier steers `0 / ±a / ±2a` into the cell's
//!   adder tree and the accumulator integrates it (§II-B, Fig. 2);
//! * [`pcu`] — the PE cell unit: a k×n tub array with multi-cycle
//!   valid/ready handshaking, partial-sum skid buffering and silent-PE
//!   clock gating (§III);
//! * [`csc_mod`] — the modified convolution sequence controller that
//!   feeds transposed feature data and scans each stripe's weights for
//!   the array latency (`ceil(max|w| / 2)` under 2s-unary encoding);
//! * [`TempusCore`] — the full engine implementing the same
//!   [`tempus_nvdla::ConvCore`] contract as the binary baseline, so the
//!   two swap freely behind NVDLA's dataflow (§III: "adheres to the
//!   original dataflow in NVDLA and can directly replace its
//!   convolution core");
//! * [`latency`] — the closed-form latency model, validated against
//!   the cycle-accurate simulation by tests;
//! * [`schedule`] — per-worker stripe-schedule caching and
//!   weight-digest latency memoization for the batched runtime
//!   (`tempus-runtime`), bit-identical to [`latency::predict`];
//! * [`shard`] — multi-array sharding: kernel-group (and fallback
//!   channel-group + cross-array reduction) partitioning of one job
//!   across N PE arrays, with per-shard accounting, bit-identical to
//!   the single-array engine in outputs and summed statistics;
//! * [`freq`] — discrete per-array frequency/voltage (DVFS) operating
//!   points: exact-rational period scaling and closed-form energy
//!   scaling, the basis of the energy-latency Pareto scheduler;
//! * [`gemm`] — the predecessor tubGEMM outer-product engine (§II-B),
//!   implemented so the paper's dataflow comparison (outer-product
//!   GEMM vs inner-product convolution) is runnable;
//! * [`streaming`] — resource-invariant streamed GEMM execution:
//!   operand tiles flow through a bounded double-buffered scratch
//!   arena with tile-local accumulation, bit-identical to the
//!   materialized engine in outputs and statistics, opening
//!   transformer-shaped (LLM-scale) workloads under O(tile) memory.
//!
//! Functional equality with binary arithmetic is *exact* — tub
//! computing is deterministic, unlike stochastic unary designs — and is
//! enforced across the test suite.
//!
//! # Example
//!
//! ```
//! use tempus_core::{TempusConfig, TempusCore};
//! use tempus_nvdla::config::NvdlaConfig;
//! use tempus_nvdla::conv::{direct_conv, ConvParams};
//! use tempus_nvdla::cube::{DataCube, KernelSet};
//! use tempus_nvdla::pipeline::{ConvCore, NvdlaConvCore};
//!
//! # fn main() -> Result<(), tempus_nvdla::NvdlaError> {
//! let features = DataCube::from_fn(6, 6, 8, |x, y, c| ((x * 3 + y * 5 + c) % 17) as i32 - 8);
//! let kernels = KernelSet::from_fn(4, 3, 3, 8, |k, r, s, c| ((k + r * s + c) % 9) as i32 - 4);
//! let params = ConvParams::unit_stride_same(3);
//!
//! let mut tempus = TempusCore::new(TempusConfig::paper_16x16());
//! let mut nvdla = NvdlaConvCore::new(NvdlaConfig::paper_16x16());
//!
//! let t = tempus.convolve(&features, &kernels, &params)?;
//! let b = nvdla.convolve(&features, &kernels, &params)?;
//! assert_eq!(t.output, b.output);                // bit-exact
//! assert_eq!(t.output, direct_conv(&features, &kernels, &params)?);
//! assert!(t.stats.cycles > b.stats.cycles);      // latency trade-off
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod core_impl;
pub mod csc_mod;
pub mod freq;
pub mod gemm;
pub mod latency;
pub mod pcu;
pub mod schedule;
pub mod shard;
pub mod streaming;
pub mod tub_pe;

pub use core_impl::{TempusConfig, TempusCore};
