//! Multi-array sharding: partition one job across N PE arrays.
//!
//! Edge DLAs scale by replicating MAC arrays; the tuGEMM/tubGEMM line
//! frames the unary datapath as tileable across units. This module
//! supplies the planning and execution layer for that scaling step:
//!
//! * [`plan_conv`] — splits a convolution's **kernel groups** across
//!   `num_arrays` PE arrays (each array computes complete output
//!   channels, no cross-array traffic), falling back to
//!   **channel-group** splitting with a cross-array partial-sum
//!   reduction stage when k is too small to fill the arrays;
//! * [`convolve_sharded_with`] — the generic multi-array driver: runs
//!   each shard through its own core (any [`ConvCore`]), merges psum
//!   streams deterministically into CACC output order, and keeps
//!   per-shard cycle accounting;
//! * [`plan_gemm`] — the analogous planner for the outer-product GEMM
//!   engine (output-tile splitting along either grid axis, no
//!   reduction stage);
//! * [`ShardPlan::reduction_cycles`] — the closed-form cost of the
//!   cross-array reduction tree, shared by the cycle-accurate drivers
//!   and the functional latency model so the two agree exactly.
//!
//! **Equivalence contract.** The stripe set of a convolution is
//! `kernel_groups × channel_groups × r × s`; both split axes partition
//! it along group boundaries, so every shard executes exactly the
//! stripes the single-array engine would, with identical weight arrays
//! and window lengths. Sharded outputs are therefore bit-identical to
//! the single-array engine, and the *summed* statistics (cycles,
//! atomic ops, stripes, pulse/gated PE-cycles, window statistics) are
//! bit-identical too — pinned by `tests/shard_equivalence.rs`. The
//! job-level latency is the **critical path**: the slowest shard plus
//! the reduction stage.

use tempus_arith::binary::saturating_accumulate;
use tempus_nvdla::conv::ConvParams;
use tempus_nvdla::cube::{DataCube, KernelSet};
use tempus_nvdla::pipeline::{ConvCore, RunStats};
use tempus_nvdla::NvdlaError;
use tempus_sim::{ActivityCounter, ShardActivity};

/// How a job is split across arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStrategy {
    /// One array runs the whole job (no split).
    Single,
    /// Each array owns a contiguous range of kernel groups and
    /// computes complete output channels — no reduction stage.
    KernelGroups,
    /// Each array owns a contiguous range of channel groups and
    /// computes partial sums over its channels for *every* output
    /// element; a cross-array reduction stage adds the partials.
    ChannelGroups,
}

/// One array's slice of the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSlice {
    /// Group range `[group_lo, group_hi)` along the split axis.
    pub group_lo: usize,
    /// Exclusive upper group bound.
    pub group_hi: usize,
    /// Element range `[lo, hi)` along the split axis (kernels or
    /// channels), clamped to the job's extent.
    pub lo: usize,
    /// Exclusive upper element bound.
    pub hi: usize,
}

/// A sharding decision: strategy plus one slice per array used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Arrays the caller asked for.
    pub requested: usize,
    /// The chosen split axis.
    pub strategy: ShardStrategy,
    /// One slice per array actually used (empty for
    /// [`ShardStrategy::Single`]).
    pub slices: Vec<ShardSlice>,
}

impl ShardPlan {
    /// Arrays this plan actually occupies (1 for `Single`).
    #[must_use]
    pub fn used_arrays(&self) -> usize {
        if self.slices.is_empty() {
            1
        } else {
            self.slices.len()
        }
    }

    /// `true` when the plan needs the cross-array reduction stage.
    #[must_use]
    pub fn needs_reduction(&self) -> bool {
        self.strategy == ShardStrategy::ChannelGroups && self.used_arrays() > 1
    }

    /// Cycles of the cross-array partial-sum reduction stage for an
    /// output of `out_elems` elements reduced over `lanes` parallel
    /// adder lanes (the CACC write width, `atomic_k`): the tree
    /// streams `lanes` elements per cycle once its
    /// `ceil(log2(arrays))` pipeline stages fill. Zero when no
    /// reduction is needed (kernel-group splits concatenate, they
    /// never add).
    #[must_use]
    pub fn reduction_cycles(&self, out_elems: u64, lanes: usize) -> u64 {
        if !self.needs_reduction() {
            return 0;
        }
        out_elems.div_ceil(lanes.max(1) as u64) + ceil_log2(self.used_arrays())
    }
}

/// Knobs for cost-aware array-width selection ([`plan_for_budget`]).
///
/// PR 4's engine always hands a job every array it can use; under
/// mixed traffic that wastes silicon — past the point where the
/// marginal speedup of one more array is small, the array is better
/// spent on a co-scheduled neighbour. The policy encodes where that
/// point is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WidenPolicy {
    /// Minimum speedup factor each **additional array** must buy for
    /// the planner to keep widening: width `w` is accepted over the
    /// current choice `c` only when
    /// `critical(c) / critical(w) >= min_speedup_per_array^(w - c)`.
    pub min_speedup_per_array: f64,
    /// Stop widening once the cross-array reduction stage exceeds
    /// this fraction of the candidate's critical path (reduction
    /// cycles are pure overhead — when they dominate, extra arrays
    /// are mostly adding partial sums back together).
    pub max_reduction_fraction: f64,
}

impl WidenPolicy {
    /// Edge-serving defaults: each extra array must buy ≥ 5% and the
    /// reduction tree may take at most a quarter of the critical
    /// path.
    #[must_use]
    pub fn edge_default() -> Self {
        WidenPolicy {
            min_speedup_per_array: 1.05,
            max_reduction_fraction: 0.25,
        }
    }
}

impl Default for WidenPolicy {
    fn default() -> Self {
        WidenPolicy::edge_default()
    }
}

/// The closed-form cost of running a job at one candidate width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WidthCost {
    /// Arrays offered to the planner at this candidate.
    pub arrays: usize,
    /// Arrays the shard plan actually uses at this width.
    pub used: usize,
    /// Predicted critical-path cycles (slowest shard + reduction).
    pub critical_path_cycles: u64,
    /// Predicted cross-array reduction cycles included above.
    pub reduction_cycles: u64,
    /// Predicted array-cycles of real work summed over the shards —
    /// what device-time occupancy accounting counts as busy (idle
    /// tails of imbalanced shards and reserved-but-unused arrays are
    /// waste, not work).
    pub total_array_cycles: u64,
    /// Closed-form **dynamic** energy of the work at the nominal
    /// operating point, in pJ: switching energy scales with the
    /// working array-cycles (window/pulse activity), derived from the
    /// calibrated synthesis model's dynamic power share. Zero when the
    /// planner has no calibrated power figure.
    pub dynamic_energy_pj: u64,
    /// Closed-form **static/leakage** energy at the nominal point, in
    /// pJ: leakage is charged on busy-until wall time — `used` arrays
    /// held for the critical path, idle tails included. Zero when
    /// uncalibrated.
    pub static_energy_pj: u64,
}

impl WidthCost {
    /// Total energy (dynamic + static) of this candidate when run at
    /// DVFS ladder level `lvl`, in pJ
    /// ([`crate::freq::energy_at`]).
    #[must_use]
    pub fn energy_at(&self, lvl: u8) -> u64 {
        crate::freq::energy_at(self.dynamic_energy_pj, self.static_energy_pj, lvl)
    }
}

/// A cost-aware width decision: the chosen array count plus the full
/// width/cost curve that was evaluated (the device-time ledger uses
/// the curve to price shrink-vs-wait trade-offs at grant time).
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetPlan {
    /// The chosen width — what the job should request.
    pub arrays: usize,
    /// Predicted critical path at the chosen width.
    pub critical_path_cycles: u64,
    /// Evaluated candidates: `widths[i]` is the cost at `i + 1`
    /// arrays, contiguous from width 1 up to the last width the
    /// policy looked at.
    pub widths: Vec<WidthCost>,
}

impl BudgetPlan {
    /// A degenerate single-array plan (used as the fallback when a
    /// job's cost cannot be estimated — the execution will surface
    /// the underlying error).
    #[must_use]
    pub fn single(critical_path_cycles: u64) -> Self {
        BudgetPlan {
            arrays: 1,
            critical_path_cycles,
            widths: vec![WidthCost {
                arrays: 1,
                used: 1,
                critical_path_cycles,
                reduction_cycles: 0,
                total_array_cycles: critical_path_cycles,
                dynamic_energy_pj: 0,
                static_energy_pj: 0,
            }],
        }
    }

    /// The evaluated cost at `arrays`, clamped into the evaluated
    /// range (widths past the last candidate cost the same as the
    /// last candidate — the planner stopped because widening had
    /// ceased to help).
    ///
    /// # Panics
    ///
    /// Panics when the plan holds no candidates (never produced by
    /// [`plan_for_budget`] or [`BudgetPlan::single`]).
    #[must_use]
    pub fn cost_at(&self, arrays: usize) -> &WidthCost {
        let idx = arrays.clamp(1, self.widths.len()) - 1;
        &self.widths[idx]
    }

    /// The (latency, energy) Pareto set of running this plan at
    /// `arrays` across every DVFS ladder level: one
    /// [`ParetoPoint`] per level, level order (so latency is
    /// non-decreasing and dynamic energy non-increasing down the
    /// list). The scheduler walks this to pick the lowest-energy
    /// point that still meets a deadline / power envelope.
    #[must_use]
    pub fn pareto_at(&self, arrays: usize) -> Vec<ParetoPoint> {
        let cost = self.cost_at(arrays);
        (0..crate::freq::NUM_LEVELS as u8)
            .map(|lvl| ParetoPoint {
                level: lvl,
                latency_cycles: crate::freq::level(lvl).scale_cycles(cost.critical_path_cycles),
                energy_pj: cost.energy_at(lvl),
            })
            .collect()
    }
}

/// One point of a plan's (latency, energy) Pareto frontier: the cost
/// of one `(width, frequency level)` operating choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParetoPoint {
    /// DVFS ladder level ([`crate::freq::LADDER`] index).
    pub level: u8,
    /// Critical-path latency at the level, in nominal device cycles.
    pub latency_cycles: u64,
    /// Total (dynamic + static) energy at the level, in pJ.
    pub energy_pj: u64,
}

/// Speedup of widening from `narrower_cycles` to `wider_cycles`
/// critical-path cycles (≥ 1.0 when widening helped).
#[must_use]
pub fn marginal_speedup(narrower_cycles: u64, wider_cycles: u64) -> f64 {
    narrower_cycles as f64 / wider_cycles.max(1) as f64
}

/// Picks how many arrays a job should take, instead of always taking
/// all `max_arrays`: every candidate width up to `max_arrays` is
/// evaluated through `estimate` (typically a closure over
/// [`ScheduleCache::predict_sharded`](crate::schedule::ScheduleCache::predict_sharded)
/// or [`TubGemm::sharded_cycle_model`](crate::gemm::TubGemm)), and
/// the walk widens from the current choice `c` to a wider `w` only
/// when
///
/// * the plan at `w` uses more arrays than the plan at `c` (not
///   saturated),
/// * the marginal gain holds: `critical(c) / critical(w) >=`
///   [`WidenPolicy::min_speedup_per_array`]`^(w - c)` — each added
///   array must pay for itself, and
/// * the cross-array reduction stage stays under
///   [`WidenPolicy::max_reduction_fraction`] of the critical path.
///
/// Failing widths are *skipped*, not terminal: 4 kernel groups gain
/// nothing going from 2 arrays to 3 (the 2-group shard still
/// dominates), but halve again at 4 — the plateau must not hide the
/// win behind it.
///
/// # Errors
///
/// Propagates the first `estimate` error (shape mismatches surface at
/// execution too; callers usually fall back to [`BudgetPlan::single`]).
pub fn plan_for_budget<E, F>(
    max_arrays: usize,
    policy: &WidenPolicy,
    mut estimate: F,
) -> Result<BudgetPlan, E>
where
    F: FnMut(usize) -> Result<WidthCost, E>,
{
    let max_arrays = max_arrays.max(1);
    let mut widths = Vec::with_capacity(max_arrays);
    widths.push(estimate(1)?);
    let mut chosen = 0usize;
    for w in 2..=max_arrays {
        let cost = estimate(w)?;
        let current = widths[chosen];
        let widens = cost.used > current.used;
        let gain = marginal_speedup(current.critical_path_cycles, cost.critical_path_cycles);
        let required = policy
            .min_speedup_per_array
            .powi((w - current.arrays) as i32);
        let reduction_ok = cost.reduction_cycles as f64
            <= policy.max_reduction_fraction * cost.critical_path_cycles.max(1) as f64;
        widths.push(cost);
        if widens && gain >= required && reduction_ok {
            chosen = widths.len() - 1;
        }
    }
    Ok(BudgetPlan {
        arrays: widths[chosen].arrays,
        critical_path_cycles: widths[chosen].critical_path_cycles,
        widths,
    })
}

/// `ceil(log2(n))` for the reduction-tree depth (0 for n <= 1).
#[must_use]
pub fn ceil_log2(n: usize) -> u64 {
    if n <= 1 {
        0
    } else {
        u64::from(usize::BITS - (n - 1).leading_zeros())
    }
}

/// Splits `units` work units into at most `arrays` contiguous,
/// balanced chunks (the first `units % used` chunks get one extra).
#[must_use]
pub fn split_units(units: usize, arrays: usize) -> Vec<(usize, usize)> {
    let used = arrays.clamp(1, units.max(1));
    let base = units / used;
    let rem = units % used;
    (0..used)
        .map(|i| {
            let lo = i * base + i.min(rem);
            let hi = lo + base + usize::from(i < rem);
            (lo, hi)
        })
        .collect()
}

/// Plans a convolution split: `k`/`c` are the job's kernel and channel
/// extents, `atomic_k`/`atomic_c` the per-array shape. Kernel groups
/// are preferred (no reduction stage); channel groups are the
/// fallback when k is too small to fill the arrays and the channel
/// axis is richer.
#[must_use]
pub fn plan_conv(
    k: usize,
    c: usize,
    atomic_k: usize,
    atomic_c: usize,
    num_arrays: usize,
) -> ShardPlan {
    let kg = k.div_ceil(atomic_k.max(1));
    let cg = c.div_ceil(atomic_c.max(1));
    let n = num_arrays.max(1);
    let (strategy, used) = if n == 1 {
        (ShardStrategy::Single, 1)
    } else if kg >= n {
        (ShardStrategy::KernelGroups, n)
    } else if cg > kg && cg >= 2 {
        (ShardStrategy::ChannelGroups, n.min(cg))
    } else if kg >= 2 {
        (ShardStrategy::KernelGroups, kg)
    } else if cg >= 2 {
        (ShardStrategy::ChannelGroups, n.min(cg))
    } else {
        (ShardStrategy::Single, 1)
    };
    let slices = match strategy {
        ShardStrategy::Single => Vec::new(),
        ShardStrategy::KernelGroups => split_units(kg, used)
            .into_iter()
            .map(|(g_lo, g_hi)| ShardSlice {
                group_lo: g_lo,
                group_hi: g_hi,
                lo: g_lo * atomic_k,
                hi: (g_hi * atomic_k).min(k),
            })
            .collect(),
        ShardStrategy::ChannelGroups => split_units(cg, used)
            .into_iter()
            .map(|(g_lo, g_hi)| ShardSlice {
                group_lo: g_lo,
                group_hi: g_hi,
                lo: g_lo * atomic_c,
                hi: (g_hi * atomic_c).min(c),
            })
            .collect(),
    };
    ShardPlan {
        requested: num_arrays,
        strategy,
        slices,
    }
}

/// Work balance of a sharded run: total array-cycles over the
/// perfectly balanced ideal (`used × slowest shard`). 1.0 for a
/// single array or perfectly even shards; lower means idle arrays
/// waiting on the critical shard. Computable from per-shard cycle
/// counts alone, so the cycle-accurate and closed-form paths agree
/// bit-for-bit.
#[must_use]
pub fn balance(per_shard_cycles: &[u64]) -> f64 {
    let max = per_shard_cycles.iter().copied().max().unwrap_or(0);
    if per_shard_cycles.len() <= 1 || max == 0 {
        return 1.0;
    }
    let total: u64 = per_shard_cycles.iter().sum();
    total as f64 / (per_shard_cycles.len() as u64 * max) as f64
}

/// Accumulates per-layer shard cycle vectors into one job-level
/// balance figure (whole-network jobs run many sharded layers).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardAccum {
    total_array_cycles: u64,
    ideal_array_cycles: u64,
    max_used: usize,
}

impl ShardAccum {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        ShardAccum::default()
    }

    /// Folds one sharded run's per-shard cycles in.
    pub fn add(&mut self, per_shard_cycles: &[u64]) {
        let used = per_shard_cycles.len().max(1);
        let max = per_shard_cycles.iter().copied().max().unwrap_or(0);
        self.total_array_cycles += per_shard_cycles.iter().sum::<u64>();
        self.ideal_array_cycles += used as u64 * max;
        self.max_used = self.max_used.max(used);
    }

    /// Aggregate balance over everything folded in (1.0 when empty).
    #[must_use]
    pub fn balance(&self) -> f64 {
        if self.ideal_array_cycles == 0 {
            1.0
        } else {
            self.total_array_cycles as f64 / self.ideal_array_cycles as f64
        }
    }

    /// The widest array occupancy observed.
    #[must_use]
    pub fn max_used(&self) -> usize {
        self.max_used.max(1)
    }
}

/// One shard's execution record inside a [`ShardedConvRun`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Shard index within the plan.
    pub index: usize,
    /// Element range `[lo, hi)` this shard owned along the split axis.
    pub lo: usize,
    /// Exclusive upper element bound.
    pub hi: usize,
    /// The shard's full run statistics on its own array.
    pub stats: RunStats,
    /// The shard's clock and PE activity (cell-cycles for the binary
    /// core, pulse/gated PE-cycles once the Tempus driver refines it).
    pub activity: ShardActivity,
}

/// Result of a multi-array convolution.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedConvRun {
    /// Merged output cube — bit-identical to the single-array engine.
    pub output: DataCube,
    /// Merged statistics: work counters summed over shards,
    /// utilization recomputed from the merged integers.
    pub stats: RunStats,
    /// The plan that was executed.
    pub plan: ShardPlan,
    /// Per-shard records, in shard order.
    pub shards: Vec<ShardStats>,
    /// Cycles of the cross-array reduction stage (0 for kernel-group
    /// splits).
    pub reduction_cycles: u64,
    /// The job's latency on the multi-array core: slowest shard plus
    /// the reduction stage.
    pub critical_path_cycles: u64,
}

impl ShardedConvRun {
    /// Per-shard cycle counts, in shard order.
    #[must_use]
    pub fn per_shard_cycles(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.stats.cycles).collect()
    }

    /// Work balance across the arrays (see [`balance`]).
    #[must_use]
    pub fn balance(&self) -> f64 {
        balance(&self.per_shard_cycles())
    }
}

/// The generic multi-array driver: plans the split for `core`'s array
/// shape, runs every shard through `core` (its window-batched engine),
/// and merges the psum streams deterministically into CACC output
/// order — kernel shards concatenate along k, channel shards reduce
/// element-wise through `cacc_bits`-wide saturating adders, exactly
/// the arithmetic the CACC itself uses.
///
/// `observe` is called after each shard's `convolve` so callers can
/// capture core-specific statistics (the Tempus driver collects its
/// tub window/pulse statistics this way).
///
/// # Errors
///
/// Propagates the substrate errors of `core.convolve` for each shard,
/// plus [`NvdlaError::InvalidShape`] if a reduced accumulator exceeds
/// `i32` (callers picking adequate `cacc_bits` never see this).
pub fn convolve_sharded_with<C: ConvCore, F: FnMut(&C)>(
    core: &mut C,
    features: &DataCube,
    kernels: &KernelSet,
    params: &ConvParams,
    num_arrays: usize,
    mut observe: F,
) -> Result<ShardedConvRun, NvdlaError> {
    let cfg = *core.config();
    let plan = plan_conv(
        kernels.k(),
        kernels.c(),
        cfg.atomic_k,
        cfg.atomic_c,
        num_arrays,
    );

    if plan.strategy == ShardStrategy::Single {
        let run = core.convolve(features, kernels, params)?;
        observe(core);
        let cycles = run.stats.cycles;
        let activity = cell_activity(&run.stats, cfg.atomic_c);
        return Ok(ShardedConvRun {
            critical_path_cycles: cycles,
            reduction_cycles: 0,
            shards: vec![ShardStats {
                index: 0,
                lo: 0,
                hi: kernels.k(),
                stats: run.stats,
                activity: ShardActivity::new(0, cycles, activity),
            }],
            stats: run.stats,
            output: run.output,
            plan,
        });
    }

    let mut shards = Vec::with_capacity(plan.slices.len());
    let mut shard_outputs = Vec::with_capacity(plan.slices.len());
    for (index, slice) in plan.slices.iter().enumerate() {
        let run = match plan.strategy {
            ShardStrategy::KernelGroups => {
                let sub = kernels.slice_kernels(slice.lo, slice.hi);
                core.convolve(features, &sub, params)?
            }
            ShardStrategy::ChannelGroups => {
                let sub_f = features.slice_channels(slice.lo, slice.hi);
                let sub_k = kernels.slice_channels(slice.lo, slice.hi);
                core.convolve(&sub_f, &sub_k, params)?
            }
            ShardStrategy::Single => unreachable!("handled above"),
        };
        observe(core);
        let activity = cell_activity(&run.stats, cfg.atomic_c);
        shards.push(ShardStats {
            index,
            lo: slice.lo,
            hi: slice.hi,
            stats: run.stats,
            activity: ShardActivity::new(index, run.stats.cycles, activity),
        });
        shard_outputs.push(run.output);
    }

    // Deterministic psum merge into CACC output order.
    let output = match plan.strategy {
        ShardStrategy::KernelGroups => {
            let (w, h) = (shard_outputs[0].w(), shard_outputs[0].h());
            let mut out = DataCube::zeros(w, h, kernels.k());
            for (shard, cube) in shards.iter().zip(&shard_outputs) {
                for (x, y, ch, v) in cube.iter() {
                    out.set(x, y, shard.lo + ch, v);
                }
            }
            out
        }
        ShardStrategy::ChannelGroups => reduce_partials(&shard_outputs, cfg.cacc_bits)?,
        ShardStrategy::Single => unreachable!("handled above"),
    };

    let out_elems = (output.w() * output.h() * output.c()) as u64;
    let reduction_cycles = plan.reduction_cycles(out_elems, cfg.atomic_k);
    let max_shard = shards.iter().map(|s| s.stats.cycles).max().unwrap_or(0);

    let mut stats = RunStats::default();
    for s in &shards {
        stats.cycles += s.stats.cycles;
        stats.atomic_ops += s.stats.atomic_ops;
        stats.stripes += s.stats.stripes;
        stats.macs += s.stats.macs;
        stats.gated_cell_cycles += s.stats.gated_cell_cycles;
        stats.cbuf_reads += s.stats.cbuf_reads;
    }
    // Recomputed from the merged integers: macs per lane-cycle, the
    // binary core's definition. The Tempus driver overrides this with
    // its pulse-based figure from the merged tub statistics.
    let lane_cycles = stats.cycles * cfg.lanes() as u64;
    stats.utilization = if lane_cycles == 0 {
        0.0
    } else {
        stats.macs as f64 / lane_cycles as f64
    };

    Ok(ShardedConvRun {
        output,
        stats,
        plan,
        shards,
        reduction_cycles,
        critical_path_cycles: max_shard + reduction_cycles,
    })
}

/// Reconstructs a cell-cycle [`ActivityCounter`] from run statistics:
/// `macs / atomic_c` active cell-cycles (the binary core's exact
/// inverse) plus the recorded gated cell-cycles.
fn cell_activity(stats: &RunStats, atomic_c: usize) -> ActivityCounter {
    let mut a = ActivityCounter::new();
    a.record_active_n(stats.macs / atomic_c.max(1) as u64);
    a.record_gated_n(stats.gated_cell_cycles);
    a
}

/// Element-wise cross-array reduction of channel-shard partial sums,
/// through `acc_bits`-wide saturating adders (the CACC's arithmetic),
/// in shard order.
fn reduce_partials(partials: &[DataCube], acc_bits: u32) -> Result<DataCube, NvdlaError> {
    let first = &partials[0];
    let (w, h, c) = (first.w(), first.h(), first.c());
    let mut acc: Vec<i64> = first.as_slice().iter().map(|&v| i64::from(v)).collect();
    for cube in &partials[1..] {
        debug_assert_eq!((cube.w(), cube.h(), cube.c()), (w, h, c));
        for (slot, &v) in acc.iter_mut().zip(cube.as_slice()) {
            *slot = saturating_accumulate(*slot, i64::from(v), acc_bits);
        }
    }
    let mut data = Vec::with_capacity(acc.len());
    for v in acc {
        data.push(i32::try_from(v).map_err(|_| {
            NvdlaError::InvalidShape("reduced accumulator value exceeds i32 output".into())
        })?);
    }
    DataCube::from_vec(w, h, c, data)
}

/// Which GEMM output axis a multi-array split tiles over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmAxis {
    /// One array runs the whole product.
    Single,
    /// Each array owns a contiguous range of row tiles of `A`.
    Rows,
    /// Each array owns a contiguous range of column tiles of `B`.
    Cols,
}

/// A GEMM sharding decision: split axis plus per-array grid-tile
/// ranges. Output tiles are independent (the inner dimension is never
/// split), so no reduction stage is needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GemmShardPlan {
    /// The chosen split axis.
    pub axis: GemmAxis,
    /// Tile index ranges `[lo, hi)` per array (empty for `Single`).
    pub tiles: Vec<(usize, usize)>,
}

impl GemmShardPlan {
    /// Arrays this plan actually occupies (1 for `Single`).
    #[must_use]
    pub fn used_arrays(&self) -> usize {
        if self.tiles.is_empty() {
            1
        } else {
            self.tiles.len()
        }
    }
}

/// Plans a GEMM split over `m_tiles × p_tiles` output grid tiles:
/// column tiles are preferred (they shard the temporally streamed `B`
/// operand), row tiles are the fallback when the column axis is too
/// narrow.
#[must_use]
pub fn plan_gemm(m_tiles: usize, p_tiles: usize, num_arrays: usize) -> GemmShardPlan {
    let n = num_arrays.max(1);
    let (axis, units, used) = if n == 1 {
        (GemmAxis::Single, 0, 1)
    } else if p_tiles >= n {
        (GemmAxis::Cols, p_tiles, n)
    } else if m_tiles > p_tiles && m_tiles >= 2 {
        (GemmAxis::Rows, m_tiles, n.min(m_tiles))
    } else if p_tiles >= 2 {
        (GemmAxis::Cols, p_tiles, p_tiles)
    } else if m_tiles >= 2 {
        (GemmAxis::Rows, m_tiles, n.min(m_tiles))
    } else {
        (GemmAxis::Single, 0, 1)
    };
    GemmShardPlan {
        axis,
        tiles: if axis == GemmAxis::Single {
            Vec::new()
        } else {
            split_units(units, used)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempus_nvdla::config::NvdlaConfig;
    use tempus_nvdla::conv::direct_conv;
    use tempus_nvdla::pipeline::NvdlaConvCore;

    #[test]
    fn split_units_is_balanced_and_contiguous() {
        assert_eq!(split_units(8, 3), vec![(0, 3), (3, 6), (6, 8)]);
        assert_eq!(split_units(2, 5), vec![(0, 1), (1, 2)]);
        assert_eq!(split_units(4, 4), vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(split_units(0, 3), vec![(0, 0)]);
    }

    #[test]
    fn planner_prefers_kernel_groups() {
        // 32 kernels / atomic_k 8 = 4 groups >= 2 arrays.
        let plan = plan_conv(32, 8, 8, 8, 2);
        assert_eq!(plan.strategy, ShardStrategy::KernelGroups);
        assert_eq!(plan.used_arrays(), 2);
        assert_eq!(
            plan.slices[0],
            ShardSlice {
                group_lo: 0,
                group_hi: 2,
                lo: 0,
                hi: 16
            }
        );
        assert_eq!(
            plan.slices[1],
            ShardSlice {
                group_lo: 2,
                group_hi: 4,
                lo: 16,
                hi: 32
            }
        );
        assert!(!plan.needs_reduction());
        assert_eq!(plan.reduction_cycles(1000, 8), 0);
    }

    #[test]
    fn planner_falls_back_to_channel_groups() {
        // 8 kernels = 1 group, 32 channels = 4 groups: k too small.
        let plan = plan_conv(8, 32, 8, 8, 4);
        assert_eq!(plan.strategy, ShardStrategy::ChannelGroups);
        assert_eq!(plan.used_arrays(), 4);
        assert!(plan.needs_reduction());
        // 1000 elements over 8 lanes + log2(4) stages.
        assert_eq!(plan.reduction_cycles(1000, 8), 125 + 2);
    }

    #[test]
    fn tiny_jobs_stay_single() {
        let plan = plan_conv(4, 6, 8, 8, 8);
        assert_eq!(plan.strategy, ShardStrategy::Single);
        assert_eq!(plan.used_arrays(), 1);
        assert_eq!(plan_conv(32, 32, 8, 8, 1).strategy, ShardStrategy::Single);
    }

    #[test]
    fn partial_last_group_clamps_element_range() {
        // 19 kernels / 8 = 3 groups (last partial) on 2 arrays.
        let plan = plan_conv(19, 8, 8, 8, 2);
        assert_eq!(plan.strategy, ShardStrategy::KernelGroups);
        assert_eq!(plan.slices[0].hi, 16);
        assert_eq!(plan.slices[1].lo, 16);
        assert_eq!(plan.slices[1].hi, 19);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
    }

    #[test]
    fn balance_measures_skew() {
        assert!((balance(&[100, 100]) - 1.0).abs() < 1e-12);
        assert!((balance(&[100, 50]) - 0.75).abs() < 1e-12);
        assert!((balance(&[42]) - 1.0).abs() < 1e-12);
        assert!((balance(&[]) - 1.0).abs() < 1e-12);

        let mut accum = ShardAccum::new();
        accum.add(&[100, 100]);
        accum.add(&[100, 50]);
        assert!((accum.balance() - 350.0 / 400.0).abs() < 1e-12);
        assert_eq!(accum.max_used(), 2);
    }

    #[test]
    fn gemm_planner_prefers_column_tiles() {
        let plan = plan_gemm(2, 8, 4);
        assert_eq!(plan.axis, GemmAxis::Cols);
        assert_eq!(plan.used_arrays(), 4);
        let rows = plan_gemm(8, 1, 4);
        assert_eq!(rows.axis, GemmAxis::Rows);
        assert_eq!(rows.used_arrays(), 4);
        assert_eq!(plan_gemm(1, 1, 4).axis, GemmAxis::Single);
        assert_eq!(plan_gemm(8, 8, 1).axis, GemmAxis::Single);
    }

    fn case(c: usize, k: usize, seed: i32) -> (DataCube, KernelSet) {
        let f = DataCube::from_fn(6, 6, c, move |x, y, ch| {
            ((x as i32 * 31 + y as i32 * 17 + ch as i32 * 7 + seed) % 255) - 127
        });
        let kn = KernelSet::from_fn(k, 3, 3, c, move |k, r, s, ch| {
            ((k as i32 * 13 + r as i32 * 5 + s as i32 * 3 + ch as i32 * 11 + seed) % 255) - 127
        });
        (f, kn)
    }

    #[test]
    fn sharded_binary_core_matches_golden_on_both_axes() {
        let params = ConvParams::unit_stride_same(3);
        for (c, k, arrays) in [(8, 32, 2), (8, 32, 4), (32, 8, 4), (11, 19, 3)] {
            let (f, kn) = case(c, k, 1);
            let golden = direct_conv(&f, &kn, &params).unwrap();
            let mut core = NvdlaConvCore::new(NvdlaConfig::nv_small());
            let run = convolve_sharded_with(&mut core, &f, &kn, &params, arrays, |_| {}).unwrap();
            assert_eq!(run.output, golden, "c={c} k={k} arrays={arrays}");
            assert!(run.critical_path_cycles <= run.stats.cycles);
            assert_eq!(run.plan.used_arrays(), run.shards.len());
        }
    }

    #[test]
    fn sharded_binary_cycles_relate_exactly_to_single() {
        // Each array pays its own pipeline drain; everything else
        // partitions. The merged cycle sum must equal the single-array
        // run plus (used - 1) extra drains — an exact pinned identity.
        let params = ConvParams::valid();
        let cfg = NvdlaConfig::nv_small();
        for (c, k, arrays) in [(8, 32, 4), (32, 8, 4)] {
            let (f, kn) = case(c, k, 5);
            let mut single = NvdlaConvCore::new(cfg);
            let base = single.convolve(&f, &kn, &params).unwrap();
            let mut core = NvdlaConvCore::new(cfg);
            let run = convolve_sharded_with(&mut core, &f, &kn, &params, arrays, |_| {}).unwrap();
            let used = run.plan.used_arrays() as u64;
            assert_eq!(
                run.stats.cycles,
                base.stats.cycles + (used - 1) * u64::from(cfg.cmac_pipeline_depth)
            );
            assert_eq!(run.stats.atomic_ops, base.stats.atomic_ops);
            assert_eq!(run.stats.stripes, base.stats.stripes);
            assert_eq!(run.stats.macs, base.stats.macs);
            assert_eq!(run.stats.cbuf_reads, base.stats.cbuf_reads);
        }
    }

    /// A synthetic near-linear cost curve: the budget planner should
    /// keep widening while gains hold and stop at saturation.
    fn linear_curve(units: u64) -> impl FnMut(usize) -> Result<WidthCost, ()> {
        move |w| {
            let used = (w as u64).min(units).max(1);
            Ok(WidthCost {
                arrays: w,
                used: used as usize,
                critical_path_cycles: units * 1000 / used,
                reduction_cycles: 0,
                total_array_cycles: units * 1000,
                dynamic_energy_pj: 0,
                static_energy_pj: 0,
            })
        }
    }

    #[test]
    fn budget_planner_widens_while_gains_hold() {
        let policy = WidenPolicy::edge_default();
        let plan = plan_for_budget(8, &policy, linear_curve(8)).unwrap();
        assert_eq!(plan.arrays, 8);
        assert_eq!(plan.critical_path_cycles, 1000);
        assert_eq!(plan.widths.len(), 8);
        // The curve is exposed for the ledger's shrink-vs-wait math.
        assert_eq!(plan.cost_at(1).critical_path_cycles, 8000);
        assert_eq!(plan.cost_at(4).critical_path_cycles, 2000);
    }

    #[test]
    fn budget_planner_stops_at_saturation() {
        // Only 3 work units: widths 4..8 cannot use a fourth array.
        let policy = WidenPolicy::edge_default();
        let plan = plan_for_budget(8, &policy, linear_curve(3)).unwrap();
        assert_eq!(plan.arrays, 3);
        // The whole curve is evaluated (the ledger prices every
        // width), but no saturated width is chosen.
        assert_eq!(plan.widths.len(), 8);
        assert_eq!(plan.cost_at(8).arrays, 8);
        assert_eq!(plan.cost_at(8).used, 3);
    }

    #[test]
    fn budget_planner_sees_past_plateaus() {
        // 4 kernel groups: widths 1/2/3/4 give 4g/2g/2g/1g per
        // critical shard — width 3 is a plateau, width 4 halves
        // again. The planner must pick 4, not stall at 2.
        let curve = [4000u64, 2000, 2000, 1000];
        let policy = WidenPolicy::edge_default();
        let plan = plan_for_budget(4, &policy, |w| {
            Ok::<_, ()>(WidthCost {
                arrays: w,
                used: w,
                critical_path_cycles: curve[w - 1],
                reduction_cycles: 0,
                total_array_cycles: 4000,
                dynamic_energy_pj: 0,
                static_energy_pj: 0,
            })
        })
        .unwrap();
        assert_eq!(plan.arrays, 4);
        assert_eq!(plan.critical_path_cycles, 1000);
    }

    #[test]
    fn budget_planner_stops_when_marginal_gain_fades() {
        // Critical path shrinks 2.0x, then only 2% more: stop at 2.
        let curve = [10_000u64, 5_000, 4_900, 4_800];
        let policy = WidenPolicy::edge_default();
        let plan = plan_for_budget(4, &policy, |w| {
            Ok::<_, ()>(WidthCost {
                arrays: w,
                used: w,
                critical_path_cycles: curve[w - 1],
                reduction_cycles: 0,
                total_array_cycles: curve[w - 1] * w as u64,
                dynamic_energy_pj: 0,
                static_energy_pj: 0,
            })
        })
        .unwrap();
        assert_eq!(plan.arrays, 2);
        assert_eq!(plan.critical_path_cycles, 5_000);
    }

    #[test]
    fn budget_planner_rejects_reduction_heavy_widths() {
        // Width 2 halves the compute but spends half its critical
        // path re-adding partials: the policy refuses it.
        let policy = WidenPolicy::edge_default();
        let plan = plan_for_budget(4, &policy, |w| {
            Ok::<_, ()>(WidthCost {
                arrays: w,
                used: w,
                critical_path_cycles: if w == 1 { 10_000 } else { 6_000 },
                reduction_cycles: if w == 1 { 0 } else { 3_000 },
                total_array_cycles: 10_000,
                dynamic_energy_pj: 0,
                static_energy_pj: 0,
            })
        })
        .unwrap();
        assert_eq!(plan.arrays, 1);
    }

    #[test]
    fn budget_planner_propagates_estimate_errors() {
        let policy = WidenPolicy::edge_default();
        let err: Result<BudgetPlan, &str> =
            plan_for_budget(4, &policy, |_| Err::<WidthCost, _>("bad shape"));
        assert_eq!(err.unwrap_err(), "bad shape");
    }

    #[test]
    fn marginal_speedup_is_a_simple_ratio() {
        assert!((marginal_speedup(2000, 1000) - 2.0).abs() < 1e-12);
        assert!((marginal_speedup(1000, 1000) - 1.0).abs() < 1e-12);
        assert!((marginal_speedup(1000, 0) - 1000.0).abs() < 1e-12);
    }

    #[test]
    fn single_budget_plan_is_width_one() {
        let plan = BudgetPlan::single(42);
        assert_eq!(plan.arrays, 1);
        assert_eq!(plan.cost_at(5).critical_path_cycles, 42);
    }

    #[test]
    fn reduction_saturates_like_the_cacc() {
        // Two partials of 100 through 8-bit accumulators clamp at 127.
        let a = DataCube::from_fn(1, 1, 1, |_, _, _| 100);
        let b = DataCube::from_fn(1, 1, 1, |_, _, _| 100);
        let out = reduce_partials(&[a, b], 8).unwrap();
        assert_eq!(out.get(0, 0, 0), 127);
    }
}
