//! The PE cell unit (PCU): Tempus Core's replacement for NVDLA's CMAC.
//!
//! The PCU holds `k` tub PE cells. Each atomic operation occupies the
//! array for the stripe's window (`ceil(max|w|/2)` cycles) plus a small
//! cache-in/out overhead; partial sums are captured in output registers
//! and "only forwarded to the CACC once all partial sums have been
//! generated across the cells" (§III). A valid/ready skid buffer lets
//! the CACC handoff overlap the next window.

use tempus_arith::{ArithError, IntPrecision};
use tempus_nvdla::cmac::PsumBundle;
use tempus_nvdla::csc::AtomicOp;
use tempus_sim::{ActivityCounter, Fifo};

use crate::tub_pe::TubPeCell;

/// PCU execution state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PcuState {
    /// No window in flight.
    Idle,
    /// Caching operands into the cells (cache-in).
    CacheIn { remaining: u32 },
    /// Running a multi-cycle window; `remaining` compute cycles left.
    Compute { remaining: u32 },
    /// Forwarding partial sums to the output buffer (cache-out).
    CacheOut { remaining: u32 },
}

/// The cycle-accurate PCU.
#[derive(Debug, Clone)]
pub struct Pcu {
    k: usize,
    n: usize,
    precision: IntPrecision,
    cells: Vec<TubPeCell>,
    stripe_latency: u32,
    cache_in_cycles: u32,
    cache_out_cycles: u32,
    state: PcuState,
    current: Option<(usize, usize)>,
    output: Fifo<PsumBundle>,
    cycles: u64,
    ops_accepted: u64,
    windows_completed: u64,
    array_activity: ActivityCounter,
}

impl Pcu {
    /// Creates a PCU of `k` cells × `n` multipliers with the given
    /// cache-in/out overheads (the paper's "few extra cycles for
    /// caching in and out the values", §IV).
    ///
    /// # Panics
    ///
    /// Panics if `k` or `n` is zero.
    #[must_use]
    pub fn new(
        k: usize,
        n: usize,
        precision: IntPrecision,
        cache_in_cycles: u32,
        cache_out_cycles: u32,
    ) -> Self {
        assert!(k > 0 && n > 0, "array dimensions must be nonzero");
        Pcu {
            k,
            n,
            precision,
            cells: (0..k).map(|_| TubPeCell::new(n, precision)).collect(),
            stripe_latency: 0,
            cache_in_cycles,
            cache_out_cycles,
            state: PcuState::Idle,
            current: None,
            output: Fifo::new(2),
            cycles: 0,
            ops_accepted: 0,
            windows_completed: 0,
            array_activity: ActivityCounter::new(),
        }
    }

    /// Number of PE cells.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Multipliers per cell.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Operating precision of the array.
    #[must_use]
    pub fn precision(&self) -> IntPrecision {
        self.precision
    }

    /// Caches one stripe's weight slivers and records the array
    /// latency scan result (the largest weight magnitude bounds the
    /// whole array, §III).
    ///
    /// # Errors
    ///
    /// Returns shape or range errors from the cells.
    ///
    /// # Panics
    ///
    /// Panics if a window is in flight (drivers must drain first).
    pub fn load_weights(&mut self, cell_weights: &[Vec<i32>]) -> Result<(), ArithError> {
        assert!(
            matches!(self.state, PcuState::Idle),
            "weight load during an active window"
        );
        if cell_weights.len() != self.k {
            return Err(ArithError::LengthMismatch {
                lhs: cell_weights.len(),
                rhs: self.k,
            });
        }
        for (cell, sliver) in self.cells.iter_mut().zip(cell_weights) {
            cell.load_weights(sliver)?;
        }
        self.stripe_latency = self.cells.iter().map(TubPeCell::latency).max().unwrap_or(0);
        Ok(())
    }

    /// Stripe window length from the last weight scan, in compute
    /// cycles (0 when every weight is zero).
    #[must_use]
    pub fn stripe_latency(&self) -> u32 {
        self.stripe_latency
    }

    /// Total cycles one atomic op occupies the array under the current
    /// stripe: cache-in + window + cache-out.
    #[must_use]
    pub fn cycles_per_op(&self) -> u32 {
        self.cache_in_cycles + self.stripe_latency.max(1) + self.cache_out_cycles
    }

    /// `true` when a new atomic op can begin this cycle.
    #[must_use]
    pub fn ready(&self) -> bool {
        matches!(self.state, PcuState::Idle) && self.output.ready()
    }

    /// Begins an atomic op (drivers must check [`ready`](Pcu::ready)).
    ///
    /// # Errors
    ///
    /// Returns shape or range errors from the cells.
    ///
    /// # Panics
    ///
    /// Panics if the PCU is not ready.
    pub fn begin(&mut self, op: &AtomicOp) -> Result<(), ArithError> {
        assert!(self.ready(), "begin() while busy");
        for cell in &mut self.cells {
            cell.begin(&op.feature)?;
        }
        self.current = Some((op.out_x, op.out_y));
        self.ops_accepted += 1;
        self.state = if self.cache_in_cycles > 0 {
            PcuState::CacheIn {
                remaining: self.cache_in_cycles,
            }
        } else {
            PcuState::Compute {
                remaining: self.stripe_latency.max(1),
            }
        };
        Ok(())
    }

    /// Advances one clock cycle; returns a partial-sum bundle when one
    /// leaves the output buffer this cycle.
    pub fn tick(&mut self) -> Option<PsumBundle> {
        self.cycles += 1;
        match self.state {
            PcuState::Idle => {}
            PcuState::CacheIn { remaining } => {
                self.state = if remaining > 1 {
                    PcuState::CacheIn {
                        remaining: remaining - 1,
                    }
                } else {
                    PcuState::Compute {
                        remaining: self.stripe_latency.max(1),
                    }
                };
            }
            PcuState::Compute { remaining } => {
                for cell in &mut self.cells {
                    cell.tick();
                }
                self.array_activity.record_active();
                self.state = if remaining > 1 {
                    PcuState::Compute {
                        remaining: remaining - 1,
                    }
                } else if self.cache_out_cycles > 0 {
                    PcuState::CacheOut {
                        remaining: self.cache_out_cycles,
                    }
                } else {
                    self.finish_window();
                    PcuState::Idle
                };
            }
            PcuState::CacheOut { remaining } => {
                if remaining > 1 {
                    self.state = PcuState::CacheOut {
                        remaining: remaining - 1,
                    };
                } else {
                    self.finish_window();
                    self.state = PcuState::Idle;
                }
            }
        }
        self.output.pop()
    }

    fn finish_window(&mut self) {
        let (out_x, out_y) = self.current.take().expect("window without an op");
        let bundle = PsumBundle {
            out_x,
            out_y,
            sums: self.cells.iter().map(TubPeCell::partial_sum).collect(),
        };
        self.output
            .push(bundle)
            .unwrap_or_else(|_| panic!("output skid buffer overflow"));
        self.windows_completed += 1;
    }

    /// Drains any buffered bundles (end of stream).
    pub fn drain(&mut self) -> Vec<PsumBundle> {
        let mut out = Vec::new();
        while let Some(b) = self.output.pop() {
            out.push(b);
        }
        out
    }

    /// Silent multipliers (zero weights) under the current stripe.
    #[must_use]
    pub fn silent_pes(&self) -> usize {
        self.cells.iter().map(TubPeCell::silent_count).sum()
    }

    /// Cycles ticked so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Atomic ops accepted so far.
    #[must_use]
    pub fn ops_accepted(&self) -> u64 {
        self.ops_accepted
    }

    /// Windows completed so far.
    #[must_use]
    pub fn windows_completed(&self) -> u64 {
        self.windows_completed
    }

    /// Merged per-multiplier pulse/gating statistics.
    #[must_use]
    pub fn pe_activity(&self) -> ActivityCounter {
        let mut total = ActivityCounter::new();
        for cell in &self.cells {
            total.merge(cell.activity());
        }
        total
    }

    /// Array-level busy counter (cycles the array spent computing).
    #[must_use]
    pub fn array_activity(&self) -> ActivityCounter {
        self.array_activity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempus_arith::dot;

    fn op(feature: Vec<i32>) -> AtomicOp {
        AtomicOp {
            out_x: 1,
            out_y: 2,
            feature,
        }
    }

    fn run_window(pcu: &mut Pcu, input: &AtomicOp) -> PsumBundle {
        pcu.begin(input).unwrap();
        let mut out = None;
        for _ in 0..pcu.cycles_per_op() + 4 {
            if let Some(b) = pcu.tick() {
                out = Some(b);
                break;
            }
        }
        out.expect("window must complete")
    }

    #[test]
    fn produces_exact_partial_sums() {
        let p = IntPrecision::Int8;
        let mut pcu = Pcu::new(2, 4, p, 1, 1);
        let w0 = vec![3, -7, 0, 127];
        let w1 = vec![-128, 1, 64, -2];
        pcu.load_weights(&[w0.clone(), w1.clone()]).unwrap();
        let feat = vec![10, -20, 99, -128];
        let bundle = run_window(&mut pcu, &op(feat.clone()));
        assert_eq!(bundle.sums[0], dot::binary(&feat, &w0, p).unwrap());
        assert_eq!(bundle.sums[1], dot::binary(&feat, &w1, p).unwrap());
        assert_eq!(bundle.out_x, 1);
        assert_eq!(bundle.out_y, 2);
    }

    #[test]
    fn window_length_is_latency_plus_overheads() {
        let p = IntPrecision::Int8;
        let mut pcu = Pcu::new(1, 2, p, 1, 1);
        pcu.load_weights(&[vec![10, -3]]).unwrap();
        assert_eq!(pcu.stripe_latency(), 5);
        assert_eq!(pcu.cycles_per_op(), 7);
        pcu.begin(&op(vec![1, 1])).unwrap();
        let mut cycles = 0;
        let mut got = None;
        while got.is_none() {
            got = pcu.tick();
            cycles += 1;
            assert!(cycles < 20, "window never completed");
        }
        assert_eq!(cycles, 7);
    }

    #[test]
    fn all_zero_stripe_still_takes_one_compute_cycle() {
        let p = IntPrecision::Int8;
        let mut pcu = Pcu::new(1, 4, p, 1, 1);
        pcu.load_weights(&[vec![0, 0, 0, 0]]).unwrap();
        assert_eq!(pcu.stripe_latency(), 0);
        assert_eq!(pcu.cycles_per_op(), 3);
        let bundle = run_window(&mut pcu, &op(vec![5, 6, 7, 8]));
        assert_eq!(bundle.sums[0], 0);
        assert_eq!(pcu.silent_pes(), 4);
    }

    #[test]
    fn ready_goes_false_during_window() {
        let p = IntPrecision::Int8;
        let mut pcu = Pcu::new(1, 1, p, 1, 1);
        pcu.load_weights(&[vec![4]]).unwrap();
        assert!(pcu.ready());
        pcu.begin(&op(vec![2])).unwrap();
        assert!(!pcu.ready());
        while pcu.tick().is_none() {}
        assert!(pcu.ready());
    }

    #[test]
    fn worst_case_int8_window_is_64_cycles() {
        let p = IntPrecision::Int8;
        let mut pcu = Pcu::new(1, 1, p, 0, 0);
        pcu.load_weights(&[vec![-128]]).unwrap();
        assert_eq!(pcu.stripe_latency(), p.worst_case_tub_cycles());
        let bundle = run_window(&mut pcu, &op(vec![-128]));
        assert_eq!(bundle.sums[0], 16384);
    }

    #[test]
    fn activity_tracks_pulses_and_gating() {
        let p = IntPrecision::Int8;
        let mut pcu = Pcu::new(1, 2, p, 0, 0);
        // Weights 6 (3 pulses) and 0 (silent): window = 3 cycles,
        // active PE pulses 3, silent PE gated 3.
        pcu.load_weights(&[vec![6, 0]]).unwrap();
        run_window(&mut pcu, &op(vec![1, 1]));
        let act = pcu.pe_activity();
        assert_eq!(act.active_cycles(), 3);
        assert_eq!(act.gated_cycles(), 3);
    }

    #[test]
    #[should_panic(expected = "begin() while busy")]
    fn begin_while_busy_panics() {
        let p = IntPrecision::Int8;
        let mut pcu = Pcu::new(1, 1, p, 1, 1);
        pcu.load_weights(&[vec![3]]).unwrap();
        pcu.begin(&op(vec![1])).unwrap();
        pcu.begin(&op(vec![1])).unwrap();
    }
}
