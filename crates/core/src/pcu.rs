//! The PE cell unit (PCU): Tempus Core's replacement for NVDLA's CMAC.
//!
//! The PCU holds `k` tub PE cells of `n` multipliers. Each atomic
//! operation occupies the array for the stripe's window
//! (`ceil(max|w|/2)` cycles) plus a small cache-in/out overhead;
//! partial sums are captured in output registers and "only forwarded to
//! the CACC once all partial sums have been generated across the cells"
//! (§III). A valid/ready skid buffer lets the CACC handoff overlap the
//! next window.
//!
//! # Execution engine
//!
//! The array state is kept **struct-of-arrays**: one flat `k·n` lane
//! array of encoded 2s-unary weight streams (plus their per-lane cycle
//! counts), one `n`-wide broadcast activation buffer and one `k`-wide
//! accumulator array — no per-multiplier objects, no per-cell `Vec`s in
//! the compute loop. Because a lane's contribution over any cycle
//! window is a closed-form fold of its pulse stream
//! ([`tempus_arith::tub::fold_window`]) and its activity split is
//! `active = min(window, stream.cycles())`, the engine can advance a
//! whole compute window in one call ([`Pcu::run_window`]) with zero
//! per-cycle work and zero heap allocation, while remaining
//! bit-identical — in outputs, cycle counts and activity statistics —
//! to ticking every multiplier every cycle ([`Pcu::tick`], which the
//! property tests still exercise cycle by cycle).

use tempus_arith::{tub, ArithError, IntPrecision, TwosUnaryStream};
use tempus_nvdla::cmac::PsumBundle;
use tempus_nvdla::csc::AtomicOp;
use tempus_sim::{ActivityCounter, Fifo};

/// PCU execution state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PcuState {
    /// No window in flight.
    Idle,
    /// Caching operands into the cells (cache-in).
    CacheIn { remaining: u32 },
    /// Running a multi-cycle window; `remaining` compute cycles left.
    Compute { remaining: u32 },
    /// Forwarding partial sums to the output buffer (cache-out).
    CacheOut { remaining: u32 },
}

/// The cycle-accurate PCU.
#[derive(Debug, Clone)]
pub struct Pcu {
    k: usize,
    n: usize,
    precision: IntPrecision,
    /// Encoded weight stream per lane, cell-major (`k·n` entries).
    streams: Vec<TwosUnaryStream>,
    /// Stream length per lane (`ceil(|w|/2)` cycles), cell-major.
    lane_cycles: Vec<u32>,
    /// Broadcast activation sliver of the op in flight (`n` entries).
    activations: Vec<i32>,
    /// Per-cell accumulators (`k` entries).
    acc: Vec<i64>,
    /// Compute cycles already consumed by the op in flight.
    op_cycle: u32,
    stripe_latency: u32,
    silent_lanes: usize,
    cache_in_cycles: u32,
    cache_out_cycles: u32,
    state: PcuState,
    current: Option<(usize, usize)>,
    output: Fifo<PsumBundle>,
    cycles: u64,
    ops_accepted: u64,
    windows_completed: u64,
    array_activity: ActivityCounter,
    pe_activity: ActivityCounter,
}

impl Pcu {
    /// Creates a PCU of `k` cells × `n` multipliers with the given
    /// cache-in/out overheads (the paper's "few extra cycles for
    /// caching in and out the values", §IV).
    ///
    /// # Panics
    ///
    /// Panics if `k` or `n` is zero.
    #[must_use]
    pub fn new(
        k: usize,
        n: usize,
        precision: IntPrecision,
        cache_in_cycles: u32,
        cache_out_cycles: u32,
    ) -> Self {
        assert!(k > 0 && n > 0, "array dimensions must be nonzero");
        let zero = TwosUnaryStream::encode(0, precision).expect("zero always encodes");
        Pcu {
            k,
            n,
            precision,
            streams: vec![zero; k * n],
            lane_cycles: vec![0; k * n],
            activations: vec![0; n],
            acc: vec![0; k],
            op_cycle: 0,
            stripe_latency: 0,
            silent_lanes: k * n,
            cache_in_cycles,
            cache_out_cycles,
            state: PcuState::Idle,
            current: None,
            output: Fifo::new(2),
            cycles: 0,
            ops_accepted: 0,
            windows_completed: 0,
            array_activity: ActivityCounter::new(),
            pe_activity: ActivityCounter::new(),
        }
    }

    /// Number of PE cells.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Multipliers per cell.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Operating precision of the array.
    #[must_use]
    pub fn precision(&self) -> IntPrecision {
        self.precision
    }

    /// Caches one stripe's weight slivers into the flat lane arrays
    /// and records the array latency scan result (the largest weight
    /// magnitude bounds the whole array, §III).
    ///
    /// # Errors
    ///
    /// Returns shape or range errors from the temporal encoder.
    ///
    /// # Panics
    ///
    /// Panics if a window is in flight (drivers must drain first).
    pub fn load_weights(&mut self, cell_weights: &[Vec<i32>]) -> Result<(), ArithError> {
        assert!(
            matches!(self.state, PcuState::Idle),
            "weight load during an active window"
        );
        if cell_weights.len() != self.k {
            return Err(ArithError::LengthMismatch {
                lhs: cell_weights.len(),
                rhs: self.k,
            });
        }
        for sliver in cell_weights {
            if sliver.len() != self.n {
                return Err(ArithError::LengthMismatch {
                    lhs: sliver.len(),
                    rhs: self.n,
                });
            }
        }
        let mut latency = 0u32;
        let mut silent = 0usize;
        for (lane, &w) in cell_weights.iter().flatten().enumerate() {
            let stream = TwosUnaryStream::encode(w, self.precision)?;
            let cycles = stream.cycles();
            self.streams[lane] = stream;
            self.lane_cycles[lane] = cycles;
            latency = latency.max(cycles);
            silent += usize::from(stream.is_silent());
        }
        self.stripe_latency = latency;
        self.silent_lanes = silent;
        Ok(())
    }

    /// Stripe window length from the last weight scan, in compute
    /// cycles (0 when every weight is zero).
    #[must_use]
    pub fn stripe_latency(&self) -> u32 {
        self.stripe_latency
    }

    /// Total cycles one atomic op occupies the array under the current
    /// stripe: cache-in + window + cache-out.
    #[must_use]
    pub fn cycles_per_op(&self) -> u32 {
        self.cache_in_cycles + self.stripe_latency.max(1) + self.cache_out_cycles
    }

    /// `true` when a new atomic op can begin this cycle.
    #[must_use]
    pub fn ready(&self) -> bool {
        matches!(self.state, PcuState::Idle) && self.output.ready()
    }

    /// Begins an atomic op (drivers must check [`ready`](Pcu::ready)).
    ///
    /// # Errors
    ///
    /// Returns [`ArithError::LengthMismatch`] for a wrong feature
    /// sliver width. Activation range is validated once at the engine
    /// boundary (`check_operands`), not per atomic op; debug builds
    /// keep an assertion.
    ///
    /// # Panics
    ///
    /// Panics if the PCU is not ready.
    pub fn begin(&mut self, op: &AtomicOp) -> Result<(), ArithError> {
        self.begin_op(op.out_x, op.out_y, &op.feature)
    }

    /// [`begin`](Pcu::begin) without the [`AtomicOp`] wrapper — the
    /// allocation-free entry point for the scratch-buffer command
    /// stream.
    ///
    /// # Errors
    ///
    /// Returns [`ArithError::LengthMismatch`] for a wrong feature
    /// sliver width.
    ///
    /// # Panics
    ///
    /// Panics if the PCU is not ready.
    pub fn begin_op(
        &mut self,
        out_x: usize,
        out_y: usize,
        feature: &[i32],
    ) -> Result<(), ArithError> {
        assert!(self.ready(), "begin() while busy");
        if feature.len() != self.n {
            return Err(ArithError::LengthMismatch {
                lhs: feature.len(),
                rhs: self.n,
            });
        }
        debug_assert!(
            feature.iter().all(|&a| self.precision.check(a).is_ok()),
            "activation outside {:?} reached the PCU; validate at the engine boundary",
            self.precision
        );
        self.activations.copy_from_slice(feature);
        self.acc.fill(0);
        self.op_cycle = 0;
        self.current = Some((out_x, out_y));
        self.ops_accepted += 1;
        self.state = if self.cache_in_cycles > 0 {
            PcuState::CacheIn {
                remaining: self.cache_in_cycles,
            }
        } else {
            PcuState::Compute {
                remaining: self.stripe_latency.max(1),
            }
        };
        Ok(())
    }

    /// Advances every lane by `q` compute cycles using the closed-form
    /// window fold — bit-identical to `q` single-cycle ticks of every
    /// multiplier, with the activity counters updated arithmetically.
    fn compute_cycles(&mut self, q: u32) {
        let c0 = self.op_cycle;
        let c1 = c0 + q;
        let mut active = 0u64;
        for (cell, acc) in self.acc.iter_mut().enumerate() {
            let base = cell * self.n;
            let mut cell_acc = 0i64;
            for lane in 0..self.n {
                let stream = self.streams[base + lane];
                cell_acc += tub::fold_window(self.activations[lane], stream, c0, q);
                let lc = self.lane_cycles[base + lane];
                active += u64::from(lc.min(c1) - lc.min(c0));
            }
            *acc += cell_acc;
        }
        self.pe_activity
            .record_window(active, u64::from(q) * (self.k * self.n) as u64);
        self.array_activity.record_active_n(u64::from(q));
        self.op_cycle = c1;
    }

    /// Advances one clock cycle; returns a partial-sum bundle when one
    /// leaves the output buffer this cycle.
    pub fn tick(&mut self) -> Option<PsumBundle> {
        self.cycles += 1;
        match self.state {
            PcuState::Idle => {}
            PcuState::CacheIn { remaining } => {
                self.state = if remaining > 1 {
                    PcuState::CacheIn {
                        remaining: remaining - 1,
                    }
                } else {
                    PcuState::Compute {
                        remaining: self.stripe_latency.max(1),
                    }
                };
            }
            PcuState::Compute { remaining } => {
                self.compute_cycles(1);
                self.state = if remaining > 1 {
                    PcuState::Compute {
                        remaining: remaining - 1,
                    }
                } else if self.cache_out_cycles > 0 {
                    PcuState::CacheOut {
                        remaining: self.cache_out_cycles,
                    }
                } else {
                    self.finish_window();
                    PcuState::Idle
                };
            }
            PcuState::CacheOut { remaining } => {
                if remaining > 1 {
                    self.state = PcuState::CacheOut {
                        remaining: remaining - 1,
                    };
                } else {
                    self.finish_window();
                    self.state = PcuState::Idle;
                }
            }
        }
        self.output.pop()
    }

    /// Fast-forwards until [`ready`](Pcu::ready), consuming whole
    /// state-machine phases per step instead of single cycles, and
    /// returns the cycles elapsed. Every partial-sum bundle that would
    /// have popped from the output buffer during those cycles is
    /// handed to `on_bundle` in the same order a per-cycle driver
    /// would have seen it.
    ///
    /// Bit-identical to `while !pcu.ready() { pcu.tick() }` in cycle
    /// count, bundle order, outputs and statistics — the window fold
    /// and the arithmetic activity split are exact — but O(k·n) per
    /// window instead of O(k·n·window), with no per-cycle allocation.
    pub fn run_window(&mut self, on_bundle: &mut impl FnMut(PsumBundle)) -> u64 {
        let mut consumed = 0u64;
        while !self.ready() {
            match self.state {
                PcuState::Idle => {
                    // Not ready with an idle array: the skid buffer is
                    // full; one tick pops one bundle.
                    self.cycles += 1;
                    consumed += 1;
                    if let Some(bundle) = self.output.pop() {
                        on_bundle(bundle);
                    }
                }
                PcuState::CacheIn { remaining } => {
                    self.cycles += u64::from(remaining);
                    consumed += u64::from(remaining);
                    self.pop_buffered(remaining, on_bundle);
                    self.state = PcuState::Compute {
                        remaining: self.stripe_latency.max(1),
                    };
                }
                PcuState::Compute { remaining } => {
                    self.cycles += u64::from(remaining);
                    consumed += u64::from(remaining);
                    // Buffered bundles pop during the first
                    // `remaining - 1` ticks; the window's own bundle
                    // is pushed on the final tick and pops after it.
                    self.pop_buffered(remaining - 1, on_bundle);
                    self.compute_cycles(remaining);
                    if self.cache_out_cycles > 0 {
                        self.state = PcuState::CacheOut {
                            remaining: self.cache_out_cycles,
                        };
                    } else {
                        self.finish_window();
                        self.state = PcuState::Idle;
                        if let Some(bundle) = self.output.pop() {
                            on_bundle(bundle);
                        }
                    }
                }
                PcuState::CacheOut { remaining } => {
                    self.cycles += u64::from(remaining);
                    consumed += u64::from(remaining);
                    self.pop_buffered(remaining - 1, on_bundle);
                    self.finish_window();
                    self.state = PcuState::Idle;
                    if let Some(bundle) = self.output.pop() {
                        on_bundle(bundle);
                    }
                }
            }
        }
        consumed
    }

    /// Pops at most `ticks` already-buffered bundles (one per cycle,
    /// oldest first), mirroring the per-cycle pop a tick loop does.
    fn pop_buffered(&mut self, ticks: u32, on_bundle: &mut impl FnMut(PsumBundle)) {
        let pops = (self.output.len() as u32).min(ticks);
        for _ in 0..pops {
            let bundle = self.output.pop().expect("counted as buffered");
            on_bundle(bundle);
        }
    }

    fn finish_window(&mut self) {
        let (out_x, out_y) = self.current.take().expect("window without an op");
        let bundle = PsumBundle {
            out_x,
            out_y,
            sums: self.acc.clone(),
        };
        self.output
            .push(bundle)
            .unwrap_or_else(|_| panic!("output skid buffer overflow"));
        self.windows_completed += 1;
    }

    /// Drains any buffered bundles (end of stream).
    pub fn drain(&mut self) -> Vec<PsumBundle> {
        let mut out = Vec::new();
        while let Some(b) = self.output.pop() {
            out.push(b);
        }
        out
    }

    /// Silent multipliers (zero weights) under the current stripe.
    #[must_use]
    pub fn silent_pes(&self) -> usize {
        self.silent_lanes
    }

    /// Cycles ticked so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Atomic ops accepted so far.
    #[must_use]
    pub fn ops_accepted(&self) -> u64 {
        self.ops_accepted
    }

    /// Windows completed so far.
    #[must_use]
    pub fn windows_completed(&self) -> u64 {
        self.windows_completed
    }

    /// Merged per-multiplier pulse/gating statistics.
    #[must_use]
    pub fn pe_activity(&self) -> ActivityCounter {
        self.pe_activity
    }

    /// Array-level busy counter (cycles the array spent computing).
    #[must_use]
    pub fn array_activity(&self) -> ActivityCounter {
        self.array_activity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempus_arith::dot;

    fn op(feature: Vec<i32>) -> AtomicOp {
        AtomicOp {
            out_x: 1,
            out_y: 2,
            feature,
        }
    }

    fn run_window(pcu: &mut Pcu, input: &AtomicOp) -> PsumBundle {
        pcu.begin(input).unwrap();
        let mut out = None;
        for _ in 0..pcu.cycles_per_op() + 4 {
            if let Some(b) = pcu.tick() {
                out = Some(b);
                break;
            }
        }
        out.expect("window must complete")
    }

    #[test]
    fn produces_exact_partial_sums() {
        let p = IntPrecision::Int8;
        let mut pcu = Pcu::new(2, 4, p, 1, 1);
        let w0 = vec![3, -7, 0, 127];
        let w1 = vec![-128, 1, 64, -2];
        pcu.load_weights(&[w0.clone(), w1.clone()]).unwrap();
        let feat = vec![10, -20, 99, -128];
        let bundle = run_window(&mut pcu, &op(feat.clone()));
        assert_eq!(bundle.sums[0], dot::binary(&feat, &w0, p).unwrap());
        assert_eq!(bundle.sums[1], dot::binary(&feat, &w1, p).unwrap());
        assert_eq!(bundle.out_x, 1);
        assert_eq!(bundle.out_y, 2);
    }

    #[test]
    fn window_length_is_latency_plus_overheads() {
        let p = IntPrecision::Int8;
        let mut pcu = Pcu::new(1, 2, p, 1, 1);
        pcu.load_weights(&[vec![10, -3]]).unwrap();
        assert_eq!(pcu.stripe_latency(), 5);
        assert_eq!(pcu.cycles_per_op(), 7);
        pcu.begin(&op(vec![1, 1])).unwrap();
        let mut cycles = 0;
        let mut got = None;
        while got.is_none() {
            got = pcu.tick();
            cycles += 1;
            assert!(cycles < 20, "window never completed");
        }
        assert_eq!(cycles, 7);
    }

    #[test]
    fn all_zero_stripe_still_takes_one_compute_cycle() {
        let p = IntPrecision::Int8;
        let mut pcu = Pcu::new(1, 4, p, 1, 1);
        pcu.load_weights(&[vec![0, 0, 0, 0]]).unwrap();
        assert_eq!(pcu.stripe_latency(), 0);
        assert_eq!(pcu.cycles_per_op(), 3);
        let bundle = run_window(&mut pcu, &op(vec![5, 6, 7, 8]));
        assert_eq!(bundle.sums[0], 0);
        assert_eq!(pcu.silent_pes(), 4);
    }

    #[test]
    fn ready_goes_false_during_window() {
        let p = IntPrecision::Int8;
        let mut pcu = Pcu::new(1, 1, p, 1, 1);
        pcu.load_weights(&[vec![4]]).unwrap();
        assert!(pcu.ready());
        pcu.begin(&op(vec![2])).unwrap();
        assert!(!pcu.ready());
        while pcu.tick().is_none() {}
        assert!(pcu.ready());
    }

    #[test]
    fn worst_case_int8_window_is_64_cycles() {
        let p = IntPrecision::Int8;
        let mut pcu = Pcu::new(1, 1, p, 0, 0);
        pcu.load_weights(&[vec![-128]]).unwrap();
        assert_eq!(pcu.stripe_latency(), p.worst_case_tub_cycles());
        let bundle = run_window(&mut pcu, &op(vec![-128]));
        assert_eq!(bundle.sums[0], 16384);
    }

    #[test]
    fn activity_tracks_pulses_and_gating() {
        let p = IntPrecision::Int8;
        let mut pcu = Pcu::new(1, 2, p, 0, 0);
        // Weights 6 (3 pulses) and 0 (silent): window = 3 cycles,
        // active PE pulses 3, silent PE gated 3.
        pcu.load_weights(&[vec![6, 0]]).unwrap();
        run_window(&mut pcu, &op(vec![1, 1]));
        let act = pcu.pe_activity();
        assert_eq!(act.active_cycles(), 3);
        assert_eq!(act.gated_cycles(), 3);
    }

    #[test]
    #[should_panic(expected = "begin() while busy")]
    fn begin_while_busy_panics() {
        let p = IntPrecision::Int8;
        let mut pcu = Pcu::new(1, 1, p, 1, 1);
        pcu.load_weights(&[vec![3]]).unwrap();
        pcu.begin(&op(vec![1])).unwrap();
        pcu.begin(&op(vec![1])).unwrap();
    }

    /// The structural claim of the window-batched engine: for any
    /// stripe/feature sequence, `run_window` and a per-cycle tick loop
    /// are indistinguishable — same cycles, same bundles in the same
    /// order, same activity counters.
    #[test]
    fn run_window_is_bit_identical_to_tick_loop() {
        let p = IntPrecision::Int8;
        let stripes: [Vec<Vec<i32>>; 3] = [
            vec![vec![3, -7, 0], vec![127, -128, 1]],
            vec![vec![0, 0, 0], vec![0, 0, 0]],
            vec![vec![1, 2, -3], vec![64, -65, 9]],
        ];
        let features: [Vec<i32>; 3] = [vec![10, -20, 99], vec![-128, 127, 0], vec![1, -1, 7]];
        for (cache_in, cache_out) in [(1u32, 1u32), (0, 0), (2, 0), (0, 3)] {
            let mut ticked = Pcu::new(2, 3, p, cache_in, cache_out);
            let mut batched = ticked.clone();
            let mut tick_bundles = Vec::new();
            let mut batch_bundles = Vec::new();
            for stripe in &stripes {
                // Drain in-flight work before the weight swap, both ways.
                let mut tick_cycles = 0u64;
                while !ticked.ready() {
                    if let Some(b) = ticked.tick() {
                        tick_bundles.push(b);
                    }
                    tick_cycles += 1;
                }
                let batch_cycles = batched.run_window(&mut |b| batch_bundles.push(b));
                assert_eq!(tick_cycles, batch_cycles);
                tick_bundles.extend(ticked.drain());
                batch_bundles.extend(batched.drain());
                ticked.load_weights(stripe).unwrap();
                batched.load_weights(stripe).unwrap();
                for feature in &features {
                    let mut tick_cycles = 0u64;
                    while !ticked.ready() {
                        if let Some(b) = ticked.tick() {
                            tick_bundles.push(b);
                        }
                        tick_cycles += 1;
                    }
                    let batch_cycles = batched.run_window(&mut |b| batch_bundles.push(b));
                    assert_eq!(tick_cycles, batch_cycles);
                    ticked.begin_op(4, 5, feature).unwrap();
                    batched.begin_op(4, 5, feature).unwrap();
                }
            }
            let mut tick_cycles = 0u64;
            while !ticked.ready() {
                if let Some(b) = ticked.tick() {
                    tick_bundles.push(b);
                }
                tick_cycles += 1;
            }
            assert_eq!(
                tick_cycles,
                batched.run_window(&mut |b| batch_bundles.push(b))
            );
            tick_bundles.extend(ticked.drain());
            batch_bundles.extend(batched.drain());

            assert_eq!(tick_bundles, batch_bundles);
            assert_eq!(ticked.cycles(), batched.cycles());
            assert_eq!(ticked.pe_activity(), batched.pe_activity());
            assert_eq!(ticked.array_activity(), batched.array_activity());
            assert_eq!(ticked.windows_completed(), batched.windows_completed());
        }
    }

    #[test]
    fn mixed_tick_and_run_window_stay_consistent() {
        // Entering run_window mid-window (after a few manual ticks)
        // must still finish the op exactly.
        let p = IntPrecision::Int8;
        let mut pcu = Pcu::new(1, 2, p, 1, 1);
        pcu.load_weights(&[vec![9, -6]]).unwrap();
        pcu.begin(&op(vec![3, 4])).unwrap();
        assert!(pcu.tick().is_none()); // cache-in
        assert!(pcu.tick().is_none()); // first compute cycle
        let mut bundles = Vec::new();
        let consumed = pcu.run_window(&mut |b| bundles.push(b));
        assert_eq!(consumed, u64::from(pcu.cycles_per_op()) - 2);
        assert_eq!(bundles.len(), 1);
        assert_eq!(bundles[0].sums[0], 9 * 3 - 6 * 4);
        let act = pcu.pe_activity();
        assert_eq!(act.active_cycles(), 5 + 3); // ceil(9/2) + ceil(6/2)
        assert_eq!(act.gated_cycles(), 2); // window 5, lane 2 drained after 3
    }
}
