//! `TraceSink` → VCD adapter: renders per-array busy/idle activity as
//! waveform signals for `tempus_sim::VcdWriter`-compatible viewers.

use std::collections::HashMap;

use tempus_sim::{VcdValue, VcdWriter};

use crate::event::{EventKind, Stage, TraceEvent, TrackId};
use crate::hub::TraceExport;
use crate::ring::TraceSink;

/// A [`TraceSink`] that turns device busy spans ([`Stage::ArrayBusy`],
/// [`Stage::Shard`], [`Stage::Reduce`]) into one 1-bit busy signal per
/// track. Overlapping spans are merged, so the signal is high exactly
/// while the array has work. Timestamps are interpreted as device
/// cycles.
///
/// ```
/// use tempus_telemetry::{Stage, TraceSink, TrackId, VcdSink};
///
/// // A cycle-accurate run labels its array tracks, then records the
/// // ledger's busy intervals (cycles) straight into the sink.
/// let mut sink = VcdSink::new("fleet", 4);
/// sink.label(TrackId(0), "dev0_arr0_busy");
/// sink.label(TrackId(1), "dev0_arr1_busy");
/// sink.span(TrackId(0), Stage::ArrayBusy, 0, 50, 1, 0);   // job 1
/// sink.span(TrackId(0), Stage::ArrayBusy, 80, 20, 2, 0);  // job 2 after a gap
/// sink.span(TrackId(1), Stage::Shard, 10, 30, 1, 1);      // shard on arr1
/// let vcd = sink.finish();
/// assert!(vcd.contains("$var wire 1 ! dev0_arr0_busy $end"));
/// assert!(vcd.contains("#320")); // gap ends at cycle 80 × 4 ns
/// ```
#[derive(Debug)]
pub struct VcdSink {
    module: String,
    period_ns: u64,
    labels: HashMap<TrackId, String>,
    /// (cycle, track, rising) busy edges, merged at finish.
    edges: Vec<(u64, TrackId, bool)>,
}

impl VcdSink {
    /// Creates an adapter for module scope `module` at `period_ns`
    /// nanoseconds per device cycle.
    #[must_use]
    pub fn new(module: &str, period_ns: u64) -> Self {
        VcdSink {
            module: module.to_string(),
            period_ns,
            labels: HashMap::new(),
            edges: Vec::new(),
        }
    }

    /// Names the signal for `track` (unlabelled tracks render as
    /// `track<N>_busy`).
    pub fn label(&mut self, track: TrackId, name: &str) {
        self.labels.insert(track, name.to_string());
    }

    /// Renders every device track of an exported trace — convenience
    /// for turning a finished run's trace into waveforms.
    #[must_use]
    pub fn render_export(export: &TraceExport, module: &str, period_ns: u64) -> String {
        let mut sink = VcdSink::new(module, period_ns);
        for (idx, track) in export.tracks.iter().enumerate() {
            if track.clock == crate::event::Clock::Device {
                let name: String = track
                    .name
                    .chars()
                    .map(|c| if c.is_alphanumeric() { c } else { '_' })
                    .collect();
                sink.label(TrackId(idx as u32), &format!("{name}_busy"));
            }
        }
        for event in &export.events {
            sink.record(*event);
        }
        sink.finish()
    }

    /// Serializes the collected activity to VCD text.
    #[must_use]
    pub fn finish(mut self) -> String {
        // Stable signal order: by track id.
        let mut tracks: Vec<TrackId> = self.edges.iter().map(|&(_, t, _)| t).collect();
        tracks.sort_unstable();
        tracks.dedup();

        let mut writer = VcdWriter::new(&self.module, self.period_ns);
        let signals: HashMap<TrackId, _> = tracks
            .iter()
            .map(|&track| {
                let default = format!("track{}_busy", track.0);
                let name = self.labels.get(&track).cloned().unwrap_or(default);
                (track, writer.add_signal(&name, 1))
            })
            .collect();

        // Merge overlapping spans per track: the signal rises when the
        // first span begins and falls when the last ends. Rising edges
        // sort before falling at equal cycles so abutting spans stay
        // high.
        self.edges
            .sort_by_key(|&(cycle, track, rising)| (track, cycle, !rising));
        let mut depth: HashMap<TrackId, u64> = HashMap::new();
        for &(cycle, track, rising) in &self.edges {
            let level = depth.entry(track).or_insert(0);
            if rising {
                *level += 1;
                if *level == 1 {
                    writer.record(cycle, signals[&track], VcdValue::Bit(true));
                }
            } else {
                *level = level.saturating_sub(1);
                if *level == 0 {
                    writer.record(cycle, signals[&track], VcdValue::Bit(false));
                }
            }
        }
        writer.finish()
    }
}

impl TraceSink for VcdSink {
    fn is_enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: TraceEvent) {
        let busy = matches!(event.stage, Stage::ArrayBusy | Stage::Shard | Stage::Reduce);
        if busy && event.kind == EventKind::Span {
            self.edges.push((event.ts, event.track, true));
            self.edges.push((event.ts + event.dur, event.track, false));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Clock;
    use crate::{DeviceTimeline, Telemetry};

    #[test]
    fn busy_gap_busy_produces_four_edges() {
        let mut sink = VcdSink::new("dev", 4);
        sink.label(TrackId(0), "arr0");
        sink.span(TrackId(0), Stage::ArrayBusy, 0, 50, 1, 0);
        sink.span(TrackId(0), Stage::ArrayBusy, 80, 20, 2, 0);
        let vcd = sink.finish();
        assert!(vcd.contains("$var wire 1 ! arr0 $end"));
        assert_eq!(vcd.matches("1!").count(), 2, "two rising edges");
        assert_eq!(vcd.matches("0!").count(), 2, "two falling edges");
        assert!(vcd.contains("#200"), "gap opens at cycle 50 × 4 ns");
        assert!(vcd.contains("#320"), "gap closes at cycle 80 × 4 ns");
    }

    #[test]
    fn abutting_and_overlapping_spans_merge() {
        let mut sink = VcdSink::new("dev", 1);
        // [0,10) and [10,20) abut; [15,30) overlaps the second.
        sink.span(TrackId(0), Stage::Shard, 0, 10, 1, 0);
        sink.span(TrackId(0), Stage::Shard, 10, 10, 2, 0);
        sink.span(TrackId(0), Stage::Shard, 15, 15, 3, 0);
        let vcd = sink.finish();
        assert_eq!(vcd.matches("1!").count(), 1, "one merged rise");
        assert_eq!(vcd.matches("0!").count(), 1, "one merged fall");
        assert!(vcd.contains("#30"), "high until the last span ends");
    }

    #[test]
    fn non_busy_stages_are_ignored() {
        let mut sink = VcdSink::new("dev", 4);
        sink.instant(TrackId(0), Stage::Grant, 5, 1, 2);
        sink.span(TrackId(0), Stage::GatherWait, 0, 5, 1, 0);
        sink.counter(TrackId(0), Stage::Window, 0, 7);
        let vcd = sink.finish();
        assert!(!vcd.contains("$var"), "no busy activity, no signals");
    }

    #[test]
    fn render_export_covers_device_tracks() {
        let hub = Telemetry::enabled(64);
        let mut timeline = DeviceTimeline::new(&hub, 4000);
        let mut sink = hub.sink();
        timeline.observe(
            &mut sink,
            &crate::timeline::PlacedSpan {
                device: 0,
                job_id: 1,
                arrays: &[0, 1],
                start: 0,
                duration: 25,
                wait_cycles: 0,
                granted: 2,
                backfilled: false,
                per_shard_cycles: &[25, 20],
                reduction_cycles: 5,
            },
        );
        drop(sink);
        let export = hub.export().unwrap();
        assert!(export.tracks.iter().all(|t| t.clock == Clock::Device));
        let vcd = VcdSink::render_export(&export, "fleet", 4);
        assert!(vcd.contains("dev0_arr0_busy"));
        assert!(vcd.contains("dev0_arr1_busy"));
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("#100"), "25 cycles × 4 ns");
    }
}
