//! Counter registry and per-stage duration histograms.

use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::event::{EventKind, Stage, TraceEvent};

/// Named counters maintained by the hub — cheap atomic increments
/// shared by every recorder, mirrored into [`TelemetrySummary`] and
/// (for the rejection reasons) into the serving layer's `ServeStats`
/// named fields so both JSON consumers agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Events accepted into a ring buffer.
    EventsRecorded,
    /// Events overwritten by drop-oldest ring wraparound.
    EventsDropped,
    /// Content-addressed cache hits.
    CacheHits,
    /// Requests coalesced onto an in-flight execution.
    Coalesced,
    /// Submissions refused because the bounded ingestion queue was
    /// full.
    RejectedQueueFull,
    /// Rejections because the accurate-admission cap (and its deferred
    /// queue) overflowed.
    RejectedAdmissionCap,
    /// Rejections because no device could meet the deadline.
    RejectedDeadline,
    /// Backfill take-rule firings.
    Backfills,
    /// Elastic scaling drain decisions.
    ElasticDrains,
    /// Elastic scaling revive decisions.
    ElasticRevives,
    /// Window-batch cycles accumulated from `TempusStats`.
    WindowCycles,
    /// Faults injected by the chaos plan (all kinds).
    FaultsInjected,
    /// Execution retries dispatched after a failure.
    Retries,
    /// Retry backoff charged to requests, in device cycles.
    RetryBackoffCycles,
    /// Requests answered by the functional fallback after the
    /// accurate path exhausted its retries (degrade-don't-drop).
    Degraded,
    /// Devices quarantined by the consecutive-failure circuit
    /// breaker.
    Quarantines,
    /// Probes sent to quarantined devices on floor boundaries.
    Probes,
    /// Dead workers respawned by the pool.
    WorkerRespawns,
    /// Executions cancelled by the per-job deadline watchdog.
    WatchdogCancels,
    /// Rejections because the job's smallest streaming plan exceeds
    /// the configured scratch budget.
    RejectedScratch,
    /// Per-array DVFS frequency transitions the governor committed.
    FreqChanges,
    /// Interactive requests answered immediately by the speculative
    /// functional leg (answer-now-verify-later).
    SpeculativeAnswers,
    /// Speculative answers whose accurate verification produced a
    /// **different** digest — expected zero under the bit-identity
    /// contract.
    SpeculativeMismatches,
    /// Device array-cycles held at DVFS ladder level 0 (nominal).
    FreqResidencyL0,
    /// Device array-cycles held at DVFS ladder level 1.
    FreqResidencyL1,
    /// Device array-cycles held at DVFS ladder level 2.
    FreqResidencyL2,
    /// Device array-cycles held at DVFS ladder level 3.
    FreqResidencyL3,
}

impl Counter {
    /// Every counter, in registry order (append-only: indices are
    /// positional and must stay stable across releases).
    pub const ALL: [Counter; 27] = [
        Counter::EventsRecorded,
        Counter::EventsDropped,
        Counter::CacheHits,
        Counter::Coalesced,
        Counter::RejectedQueueFull,
        Counter::RejectedAdmissionCap,
        Counter::RejectedDeadline,
        Counter::Backfills,
        Counter::ElasticDrains,
        Counter::ElasticRevives,
        Counter::WindowCycles,
        Counter::FaultsInjected,
        Counter::Retries,
        Counter::RetryBackoffCycles,
        Counter::Degraded,
        Counter::Quarantines,
        Counter::Probes,
        Counter::WorkerRespawns,
        Counter::WatchdogCancels,
        Counter::RejectedScratch,
        Counter::FreqChanges,
        Counter::SpeculativeAnswers,
        Counter::SpeculativeMismatches,
        Counter::FreqResidencyL0,
        Counter::FreqResidencyL1,
        Counter::FreqResidencyL2,
        Counter::FreqResidencyL3,
    ];

    /// Registry name — stable, snake_case, used as the JSON key.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::EventsRecorded => "events_recorded",
            Counter::EventsDropped => "events_dropped",
            Counter::CacheHits => "cache_hits",
            Counter::Coalesced => "coalesced",
            Counter::RejectedQueueFull => "rejected_queue_full",
            Counter::RejectedAdmissionCap => "rejected_admission_cap",
            Counter::RejectedDeadline => "rejected_deadline",
            Counter::Backfills => "backfills",
            Counter::ElasticDrains => "elastic_drains",
            Counter::ElasticRevives => "elastic_revives",
            Counter::WindowCycles => "window_cycles",
            Counter::FaultsInjected => "faults_injected",
            Counter::Retries => "retries",
            Counter::RetryBackoffCycles => "retry_backoff_cycles",
            Counter::Degraded => "degraded",
            Counter::Quarantines => "quarantines",
            Counter::Probes => "probes",
            Counter::WorkerRespawns => "worker_respawns",
            Counter::WatchdogCancels => "watchdog_cancels",
            Counter::RejectedScratch => "rejected_scratch",
            Counter::FreqChanges => "freq_changes",
            Counter::SpeculativeAnswers => "speculative_answers",
            Counter::SpeculativeMismatches => "speculative_mismatches",
            Counter::FreqResidencyL0 => "freq_residency_l0",
            Counter::FreqResidencyL1 => "freq_residency_l1",
            Counter::FreqResidencyL2 => "freq_residency_l2",
            Counter::FreqResidencyL3 => "freq_residency_l3",
        }
    }

    /// The residency counter for DVFS ladder level `level` (levels
    /// past the ladder clamp to the deepest).
    #[must_use]
    pub fn freq_residency(level: usize) -> Counter {
        match level {
            0 => Counter::FreqResidencyL0,
            1 => Counter::FreqResidencyL1,
            2 => Counter::FreqResidencyL2,
            _ => Counter::FreqResidencyL3,
        }
    }

    fn index(self) -> usize {
        Counter::ALL.iter().position(|&c| c == self).unwrap_or(0)
    }
}

/// The shared counter registry: one atomic cell per [`Counter`].
#[derive(Debug, Default)]
pub struct CounterRegistry {
    cells: [AtomicU64; Counter::ALL.len()],
}

impl CounterRegistry {
    /// Adds `n` to `counter`.
    pub fn add(&self, counter: Counter, n: u64) {
        self.cells[counter.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of `counter`.
    #[must_use]
    pub fn get(&self, counter: Counter) -> u64 {
        self.cells[counter.index()].load(Ordering::Relaxed)
    }

    /// Snapshot of every counter as `(name, value)` pairs, registry
    /// order, zeros included (the registry is self-describing).
    #[must_use]
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        Counter::ALL
            .iter()
            .map(|&c| (c.name(), self.get(c)))
            .collect()
    }
}

/// Reservoir capacity for per-stage duration sampling.
const RESERVOIR_CAP: usize = 4096;

/// Streaming per-stage duration accumulator: exact count/sum/max plus
/// a seeded reservoir for percentiles. Recorders keep one locally
/// (lock-free) and merge into the hub's on flush, so histograms stay
/// exact in count even when the event ring drops oldest entries.
#[derive(Debug, Clone)]
pub struct StageAccum {
    counts: [u64; Stage::ALL.len()],
    sums: [u64; Stage::ALL.len()],
    maxes: [u64; Stage::ALL.len()],
    samples: Vec<Vec<u64>>,
    rng: u64,
}

impl Default for StageAccum {
    fn default() -> Self {
        StageAccum {
            counts: [0; Stage::ALL.len()],
            sums: [0; Stage::ALL.len()],
            maxes: [0; Stage::ALL.len()],
            samples: vec![Vec::new(); Stage::ALL.len()],
            rng: 0x51ED_2701_9E37_79B9,
        }
    }
}

impl StageAccum {
    fn next_rand(&mut self) -> u64 {
        // SplitMix64 — deterministic reservoir replacement.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Folds a span event's duration into the stage histogram
    /// (instants and counters don't carry durations and are skipped).
    pub fn observe(&mut self, event: &TraceEvent) {
        if event.kind != EventKind::Span {
            return;
        }
        let idx = event.stage.code() as usize;
        self.counts[idx] += 1;
        self.sums[idx] = self.sums[idx].saturating_add(event.dur);
        self.maxes[idx] = self.maxes[idx].max(event.dur);
        let seen = self.counts[idx];
        if self.samples[idx].len() < RESERVOIR_CAP {
            self.samples[idx].push(event.dur);
        } else {
            let j = self.next_rand() % seen;
            if (j as usize) < RESERVOIR_CAP {
                self.samples[idx][j as usize] = event.dur;
            }
        }
    }

    /// Merges `other` into `self` (hub-side flush).
    pub fn merge(&mut self, other: &StageAccum) {
        for idx in 0..Stage::ALL.len() {
            self.counts[idx] += other.counts[idx];
            self.sums[idx] = self.sums[idx].saturating_add(other.sums[idx]);
            self.maxes[idx] = self.maxes[idx].max(other.maxes[idx]);
            for &sample in &other.samples[idx] {
                if self.samples[idx].len() < RESERVOIR_CAP {
                    self.samples[idx].push(sample);
                } else {
                    let j = self.next_rand() as usize % RESERVOIR_CAP;
                    self.samples[idx][j] = sample;
                }
            }
        }
    }

    /// True when nothing has been observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Renders the per-stage summaries (stages with zero spans are
    /// omitted).
    #[must_use]
    pub fn summarize(&self, clock_of: impl Fn(Stage) -> &'static str) -> Vec<StageSummary> {
        let mut out = Vec::new();
        for (idx, &stage) in Stage::ALL.iter().enumerate() {
            if self.counts[idx] == 0 {
                continue;
            }
            let mut sorted = self.samples[idx].clone();
            sorted.sort_unstable();
            out.push(StageSummary {
                stage: stage.name(),
                unit: clock_of(stage),
                count: self.counts[idx],
                mean: self.sums[idx] as f64 / self.counts[idx] as f64,
                p50: percentile(&sorted, 50.0),
                p95: percentile(&sorted, 95.0),
                p99: percentile(&sorted, 99.0),
                max: self.maxes[idx],
            });
        }
        out
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
#[must_use]
fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One stage's duration histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSummary {
    /// Stage name ([`Stage::name`]).
    pub stage: &'static str,
    /// Duration unit: `wall_ns` or `device_cycles`.
    pub unit: &'static str,
    /// Spans observed (exact, even when the ring dropped events).
    pub count: u64,
    /// Mean duration.
    pub mean: f64,
    /// Median (nearest-rank over a bounded reservoir).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum observed duration (exact).
    pub max: u64,
}

/// The telemetry roll-up surfaced in `ServeStats` and the bench
/// report: per-stage duration histograms plus the counter registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySummary {
    /// Per-stage histograms, stage order, zero-count stages omitted.
    pub stages: Vec<StageSummary>,
    /// Counter registry snapshot (all counters, zeros included).
    pub counters: Vec<(&'static str, u64)>,
    /// Events lost to ring wraparound (also in `counters`).
    pub dropped_events: u64,
}

impl TelemetrySummary {
    /// Value of a named counter, 0 when absent.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Histogram for `stage`, if any spans were recorded.
    #[must_use]
    pub fn stage(&self, stage: Stage) -> Option<&StageSummary> {
        self.stages.iter().find(|s| s.stage == stage.name())
    }

    /// Hand-rolled JSON object (the repo's no-serde convention).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n      \"stages\": [");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n        {{\"stage\": \"{}\", \"unit\": \"{}\", \"count\": {}, \"mean\": {:.1}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
                s.stage, s.unit, s.count, s.mean, s.p50, s.p95, s.p99, s.max
            );
        }
        out.push_str("\n      ],\n      \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n        \"{name}\": {value}");
        }
        let _ = write!(
            out,
            "\n      }},\n      \"dropped_events\": {}\n    }}",
            self.dropped_events
        );
        out
    }
}

impl fmt::Display for TelemetrySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "telemetry:")?;
        for s in &self.stages {
            writeln!(
                f,
                "  {:<12} n={:<6} p50={:<8} p95={:<8} p99={:<8} max={:<8} ({})",
                s.stage, s.count, s.p50, s.p95, s.p99, s.max, s.unit
            )?;
        }
        let nonzero: Vec<String> = self
            .counters
            .iter()
            .filter(|(_, v)| *v > 0)
            .map(|(n, v)| format!("{n}={v}"))
            .collect();
        if !nonzero.is_empty() {
            writeln!(f, "  counters: {}", nonzero.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TrackId;

    fn span(stage: Stage, dur: u64) -> TraceEvent {
        TraceEvent {
            track: TrackId(0),
            stage,
            kind: EventKind::Span,
            ts: 0,
            dur,
            id: 0,
            arg: 0,
        }
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let reg = CounterRegistry::default();
        reg.add(Counter::CacheHits, 3);
        reg.add(Counter::CacheHits, 2);
        reg.add(Counter::RejectedDeadline, 1);
        assert_eq!(reg.get(Counter::CacheHits), 5);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), Counter::ALL.len());
        assert!(snap.contains(&("cache_hits", 5)));
        assert!(snap.contains(&("rejected_deadline", 1)));
        assert!(snap.contains(&("backfills", 0)));
    }

    #[test]
    fn accum_percentiles_cover_exact_small_sets() {
        let mut accum = StageAccum::default();
        for dur in 1..=100u64 {
            accum.observe(&span(Stage::Queue, dur));
        }
        let stages = accum.summarize(|_| "wall_ns");
        assert_eq!(stages.len(), 1);
        let q = &stages[0];
        assert_eq!(q.count, 100);
        assert_eq!(q.p50, 50);
        assert_eq!(q.p95, 95);
        assert_eq!(q.p99, 99);
        assert_eq!(q.max, 100);
        assert!((q.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn accum_merge_matches_single_stream_counts() {
        let mut a = StageAccum::default();
        let mut b = StageAccum::default();
        for dur in 0..50 {
            a.observe(&span(Stage::Execute, dur));
            b.observe(&span(Stage::Execute, dur + 50));
        }
        a.merge(&b);
        let stages = a.summarize(|_| "wall_ns");
        assert_eq!(stages[0].count, 100);
        assert_eq!(stages[0].max, 99);
    }

    #[test]
    fn instants_do_not_enter_histograms() {
        let mut accum = StageAccum::default();
        accum.observe(&TraceEvent {
            kind: EventKind::Instant,
            ..span(Stage::Reject, 0)
        });
        assert!(accum.is_empty());
    }

    #[test]
    fn reservoir_stays_bounded_past_capacity() {
        let mut accum = StageAccum::default();
        for dur in 0..(RESERVOIR_CAP as u64 * 3) {
            accum.observe(&span(Stage::Shard, dur));
        }
        assert_eq!(
            accum.samples[Stage::Shard.code() as usize].len(),
            RESERVOIR_CAP
        );
        let stages = accum.summarize(|_| "device_cycles");
        assert_eq!(stages[0].count, RESERVOIR_CAP as u64 * 3);
        assert_eq!(stages[0].max, RESERVOIR_CAP as u64 * 3 - 1);
    }

    #[test]
    fn summary_json_shape() {
        let reg = CounterRegistry::default();
        reg.add(Counter::Backfills, 7);
        let mut accum = StageAccum::default();
        accum.observe(&span(Stage::Grant, 4));
        let summary = TelemetrySummary {
            stages: accum.summarize(|_| "device_cycles"),
            counters: reg.snapshot(),
            dropped_events: 0,
        };
        let json = summary.to_json();
        assert!(json.contains("\"backfills\": 7"));
        assert!(json.contains("\"stage\": \"grant\""));
        assert_eq!(summary.counter("backfills"), 7);
        assert!(summary.stage(Stage::Grant).is_some());
    }
}
