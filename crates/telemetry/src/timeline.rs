//! Lowers deterministic placements onto per-device/per-array trace
//! tracks: grant instants, gather-wait spans, per-shard busy spans
//! with the reduction sub-span, and idle gaps between placements.
//!
//! The dispatcher owns one of these and feeds it every completed
//! placement; all timestamps are device cycles straight from the
//! ledger/backend model, so the resulting tracks are bit-identical
//! run to run.

use std::collections::HashMap;

use crate::event::{Clock, Stage, TrackId};
use crate::hub::Telemetry;
use crate::ring::TraceSink;

/// One placed (and now accounted) job on a device, in device cycles.
#[derive(Debug, Clone, Copy)]
pub struct PlacedSpan<'a> {
    /// Fleet device index (0 on a single-device service).
    pub device: usize,
    /// Job id (correlates with the wall-clock request spans).
    pub job_id: u64,
    /// Arrays the ledger granted, identity order.
    pub arrays: &'a [usize],
    /// Start cycle on the device clock.
    pub start: u64,
    /// Critical-path duration in cycles (max shard + reduction).
    pub duration: u64,
    /// Cycles waited past the earliest free array to gather the set.
    pub wait_cycles: u64,
    /// Granted width.
    pub granted: u64,
    /// Whether the backfill take-rule placed this job into a gap.
    pub backfilled: bool,
    /// Per-shard busy cycles, one per granted array (may be empty
    /// when the backend ran unsharded).
    pub per_shard_cycles: &'a [u64],
    /// Cycles of the cross-array reduction stage (0 when unsharded).
    pub reduction_cycles: u64,
}

/// Per-device/per-array track builder (see module docs).
#[derive(Debug)]
pub struct DeviceTimeline {
    hub: Telemetry,
    period_ps: u64,
    device_tracks: HashMap<usize, TrackId>,
    array_tracks: HashMap<(usize, usize), TrackId>,
    /// Busy frontier per (device, array): end cycle of the latest
    /// placement seen, for idle-gap derivation.
    frontier: HashMap<(usize, usize), u64>,
}

impl DeviceTimeline {
    /// Builds a timeline writing tracks to `hub`, declaring
    /// `period_ps` picoseconds per device cycle.
    #[must_use]
    pub fn new(hub: &Telemetry, period_ps: u64) -> Self {
        DeviceTimeline {
            hub: hub.clone(),
            period_ps,
            device_tracks: HashMap::new(),
            array_tracks: HashMap::new(),
            frontier: HashMap::new(),
        }
    }

    /// The `dev{device}` track (registered on first use) — the track
    /// fleet-level events (previews, routing, elastic actions) belong
    /// on.
    pub fn device_track(&mut self, device: usize) -> TrackId {
        let hub = &self.hub;
        let period = self.period_ps;
        *self
            .device_tracks
            .entry(device)
            .or_insert_with(|| hub.track(&format!("dev{device}"), Clock::Device, period))
    }

    fn array_track(&mut self, device: usize, array: usize) -> TrackId {
        let hub = &self.hub;
        let period = self.period_ps;
        *self
            .array_tracks
            .entry((device, array))
            .or_insert_with(|| hub.track(&format!("dev{device}/arr{array}"), Clock::Device, period))
    }

    /// Records one placement's device-side spans into `sink`.
    pub fn observe(&mut self, sink: &mut dyn TraceSink, placed: &PlacedSpan<'_>) {
        if !sink.is_enabled() {
            return;
        }
        let dev = self.device_track(placed.device);
        sink.instant(
            dev,
            Stage::Grant,
            placed.start,
            placed.job_id,
            placed.granted,
        );
        if placed.wait_cycles > 0 {
            sink.span(
                dev,
                Stage::GatherWait,
                placed.start.saturating_sub(placed.wait_cycles),
                placed.wait_cycles,
                placed.job_id,
                0,
            );
        }
        if placed.backfilled {
            sink.instant(dev, Stage::Backfill, placed.start, placed.job_id, 0);
        }
        if placed.reduction_cycles > 0 && placed.duration >= placed.reduction_cycles {
            sink.span(
                dev,
                Stage::Reduce,
                placed.start + placed.duration - placed.reduction_cycles,
                placed.reduction_cycles,
                placed.job_id,
                placed.arrays.len() as u64,
            );
        }
        let end = placed.start + placed.duration;
        for (pos, &array) in placed.arrays.iter().enumerate() {
            let track = self.array_track(placed.device, array);
            let key = (placed.device, array);
            if let Some(&prev_end) = self.frontier.get(&key) {
                // A gap opens only when this placement starts past the
                // array's busy frontier; backfills run *inside* a gap
                // someone else's account already opened.
                if !placed.backfilled && placed.start > prev_end {
                    sink.span(
                        track,
                        Stage::ArrayIdle,
                        prev_end,
                        placed.start - prev_end,
                        array as u64,
                        0,
                    );
                }
            }
            match placed.per_shard_cycles.get(pos) {
                Some(&shard_cycles) if placed.per_shard_cycles.len() > 1 => {
                    sink.span(
                        track,
                        Stage::Shard,
                        placed.start,
                        shard_cycles,
                        placed.job_id,
                        pos as u64,
                    );
                }
                _ => {
                    sink.span(
                        track,
                        Stage::ArrayBusy,
                        placed.start,
                        placed.duration,
                        placed.job_id,
                        0,
                    );
                }
            }
            let entry = self.frontier.entry(key).or_insert(0);
            *entry = (*entry).max(end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn placements_become_grant_shard_and_reduce_spans() {
        let hub = Telemetry::enabled(256);
        let mut timeline = DeviceTimeline::new(&hub, 4000);
        let mut sink = hub.sink();
        timeline.observe(
            &mut sink,
            &PlacedSpan {
                device: 0,
                job_id: 11,
                arrays: &[0, 2],
                start: 100,
                duration: 60,
                wait_cycles: 20,
                granted: 2,
                backfilled: false,
                per_shard_cycles: &[50, 40],
                reduction_cycles: 10,
            },
        );
        drop(sink);
        let export = hub.export().unwrap();
        assert!(export.has_stage(Stage::Grant, Clock::Device));
        assert!(export.has_stage(Stage::GatherWait, Clock::Device));
        assert!(export.has_stage(Stage::Shard, Clock::Device));
        assert!(export.has_stage(Stage::Reduce, Clock::Device));
        let arr0 = export.track_events("dev0/arr0");
        assert_eq!(arr0.len(), 1);
        assert_eq!((arr0[0].ts, arr0[0].dur), (100, 50));
        let dev = export.track_events("dev0");
        let wait = dev.iter().find(|e| e.stage == Stage::GatherWait).unwrap();
        assert_eq!((wait.ts, wait.dur), (80, 20));
        let reduce = dev.iter().find(|e| e.stage == Stage::Reduce).unwrap();
        assert_eq!((reduce.ts, reduce.dur), (150, 10));
    }

    #[test]
    fn idle_gaps_open_between_placements_but_not_under_backfill() {
        let hub = Telemetry::enabled(256);
        let mut timeline = DeviceTimeline::new(&hub, 4000);
        let mut sink = hub.sink();
        let place = |start: u64, dur: u64, backfilled: bool| PlacedSpan {
            device: 0,
            job_id: start,
            arrays: &[1],
            start,
            duration: dur,
            wait_cycles: 0,
            granted: 1,
            backfilled,
            per_shard_cycles: &[],
            reduction_cycles: 0,
        };
        timeline.observe(&mut sink, &place(0, 50, false));
        // Gap 50..120, then a backfill drops inside it.
        timeline.observe(&mut sink, &place(120, 30, false));
        timeline.observe(&mut sink, &place(60, 20, true));
        drop(sink);
        let export = hub.export().unwrap();
        let events = export.track_events("dev0/arr1");
        let idles: Vec<_> = events
            .iter()
            .filter(|e| e.stage == Stage::ArrayIdle)
            .collect();
        assert_eq!(idles.len(), 1, "only the real gap is an idle span");
        assert_eq!((idles[0].ts, idles[0].dur), (50, 70));
        let busy = events
            .iter()
            .filter(|e| e.stage == Stage::ArrayBusy && e.kind == EventKind::Span)
            .count();
        assert_eq!(busy, 3);
    }

    #[test]
    fn single_shard_jobs_render_as_plain_busy() {
        let hub = Telemetry::enabled(64);
        let mut timeline = DeviceTimeline::new(&hub, 4000);
        let mut sink = hub.sink();
        timeline.observe(
            &mut sink,
            &PlacedSpan {
                device: 1,
                job_id: 5,
                arrays: &[0],
                start: 10,
                duration: 40,
                wait_cycles: 0,
                granted: 1,
                backfilled: false,
                per_shard_cycles: &[40],
                reduction_cycles: 0,
            },
        );
        drop(sink);
        let export = hub.export().unwrap();
        assert!(export.has_stage(Stage::ArrayBusy, Clock::Device));
        assert!(!export.has_stage(Stage::Shard, Clock::Device));
    }

    #[test]
    fn disabled_hub_short_circuits() {
        let hub = Telemetry::disabled();
        let mut timeline = DeviceTimeline::new(&hub, 4000);
        let mut sink = hub.sink();
        timeline.observe(
            &mut sink,
            &PlacedSpan {
                device: 0,
                job_id: 0,
                arrays: &[0],
                start: 0,
                duration: 1,
                wait_cycles: 0,
                granted: 1,
                backfilled: false,
                per_shard_cycles: &[],
                reduction_cycles: 0,
            },
        );
        assert!(hub.export().is_none());
    }
}
