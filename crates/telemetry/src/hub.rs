//! The telemetry hub: track registry, counter registry, collected
//! rings, and trace export.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{Clock, Stage, TraceEvent, TrackId, TrackMeta};
use crate::ring::{NullSink, RingSink, TraceSink};
use crate::summary::{Counter, CounterRegistry, StageAccum, TelemetrySummary};

/// Default per-recorder ring capacity (events).
pub const DEFAULT_RING_CAPACITY: usize = 16_384;

/// Shared hub state. Recorders hold an `Arc` to this; the hot path
/// never touches it (see [`RingSink`]).
pub struct HubShared {
    capacity: usize,
    origin: Instant,
    tracks: Mutex<Vec<TrackMeta>>,
    collected: Mutex<Vec<TraceEvent>>,
    accum: Mutex<StageAccum>,
    /// The shared counter registry.
    pub counters: CounterRegistry,
}

impl HubShared {
    pub(crate) fn merge_accum(&self, other: &StageAccum) {
        if let Ok(mut accum) = self.accum.lock() {
            accum.merge(other);
        }
    }

    pub(crate) fn collect(&self, mut events: Vec<TraceEvent>) {
        if let Ok(mut collected) = self.collected.lock() {
            collected.append(&mut events);
        }
    }
}

/// Handle to the telemetry system. Cloning is cheap; a disabled hub
/// (the default) hands out [`NullSink`]s and answers `None` to every
/// query, so instrumented code needs no configuration branches.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<HubShared>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A disabled hub: no recording, no memory.
    #[must_use]
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled hub whose recorders hold at most `ring_capacity`
    /// events each (drop-oldest past that).
    #[must_use]
    pub fn enabled(ring_capacity: usize) -> Self {
        Telemetry {
            inner: Some(Arc::new(HubShared {
                capacity: ring_capacity.max(1),
                origin: Instant::now(),
                tracks: Mutex::new(Vec::new()),
                collected: Mutex::new(Vec::new()),
                accum: Mutex::new(StageAccum::default()),
                counters: CounterRegistry::default(),
            })),
        }
    }

    /// Whether events are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Wall nanoseconds since the hub was created (0 when disabled,
    /// so disabled runs never query the clock).
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |hub| hub.origin.elapsed().as_nanos() as u64)
    }

    /// Registers (or looks up) the track named `name`. Tracks are
    /// deduplicated by name so lazily instrumented layers can re-ask.
    /// `period_ps` is the declared picoseconds-per-cycle scale for
    /// [`Clock::Device`] tracks (ignored on wall tracks). Returns
    /// `TrackId(0)` on a disabled hub (events go to a null sink
    /// anyway).
    #[must_use]
    pub fn track(&self, name: &str, clock: Clock, period_ps: u64) -> TrackId {
        let Some(hub) = &self.inner else {
            return TrackId(0);
        };
        let Ok(mut tracks) = hub.tracks.lock() else {
            return TrackId(0);
        };
        if let Some(idx) = tracks.iter().position(|t| t.name == name) {
            return TrackId(idx as u32);
        }
        tracks.push(TrackMeta {
            name: name.to_string(),
            clock,
            period_ps: if clock == Clock::Device { period_ps } else { 0 },
        });
        TrackId((tracks.len() - 1) as u32)
    }

    /// A recorder for one thread: a live ring when enabled, the no-op
    /// sink otherwise.
    #[must_use]
    pub fn sink(&self) -> Box<dyn TraceSink> {
        match self.ring_sink() {
            Some(ring) => Box::new(ring),
            None => Box::new(NullSink),
        }
    }

    /// The concrete ring recorder (None when disabled).
    #[must_use]
    pub fn ring_sink(&self) -> Option<RingSink> {
        self.inner
            .as_ref()
            .map(|hub| RingSink::new(Arc::clone(hub), hub.capacity))
    }

    /// Adds `n` to a registry counter (no-op when disabled).
    pub fn count(&self, counter: Counter, n: u64) {
        if let Some(hub) = &self.inner {
            hub.counters.add(counter, n);
        }
    }

    /// Current value of a registry counter (0 when disabled).
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |hub| hub.counters.get(counter))
    }

    /// The roll-up: per-stage histograms merged from every flushed
    /// recorder plus the counter registry. `None` when disabled.
    /// Recorders flush amortized and on drop, so a mid-run summary
    /// can trail the newest events slightly; after every sink has
    /// dropped it is exact.
    #[must_use]
    pub fn summary(&self) -> Option<TelemetrySummary> {
        let hub = self.inner.as_ref()?;
        let stages = hub
            .accum
            .lock()
            .map(|accum| accum.summarize(stage_unit))
            .unwrap_or_default();
        Some(TelemetrySummary {
            stages,
            counters: hub.counters.snapshot(),
            dropped_events: hub.counters.get(Counter::EventsDropped),
        })
    }

    /// The merged trace: every collected ring, each track's events
    /// sorted by timestamp. `None` when disabled. Call after the
    /// recorders have been dropped (service shutdown) — events still
    /// sitting in live rings are not included.
    #[must_use]
    pub fn export(&self) -> Option<TraceExport> {
        let hub = self.inner.as_ref()?;
        let tracks = hub.tracks.lock().map(|t| t.clone()).unwrap_or_default();
        let mut events = hub.collected.lock().map(|e| e.clone()).unwrap_or_default();
        events.sort_by_key(|e| (e.track, e.ts, e.dur));
        Some(TraceExport {
            tracks,
            events,
            dropped: hub.counters.get(Counter::EventsDropped),
        })
    }
}

/// Which unit a stage's durations are measured in — the service-side
/// stages run on the wall clock, everything at or below the ledger on
/// device cycles.
#[must_use]
pub fn stage_unit(stage: Stage) -> &'static str {
    match stage {
        Stage::Queue
        | Stage::Admit
        | Stage::CacheHit
        | Stage::Coalesce
        | Stage::Reject
        | Stage::Execute
        | Stage::Fault
        | Stage::Degrade
        | Stage::Respawn => Clock::Wall.name(),
        _ => Clock::Device.name(),
    }
}

/// The merged, export-ready trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceExport {
    /// Registered tracks, id order.
    pub tracks: Vec<TrackMeta>,
    /// Every collected event, sorted by `(track, ts)`.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring wraparound.
    pub dropped: u64,
}

impl TraceExport {
    /// True when some collected event has `stage` recorded as `kind`
    /// on a track in `clock` domain.
    #[must_use]
    pub fn has_stage(&self, stage: Stage, clock: Clock) -> bool {
        self.events.iter().any(|e| {
            e.stage == stage
                && self
                    .tracks
                    .get(e.track.0 as usize)
                    .is_some_and(|t| t.clock == clock)
        })
    }

    /// Events on the track named `name`, in timestamp order.
    #[must_use]
    pub fn track_events(&self, name: &str) -> Vec<TraceEvent> {
        let Some(idx) = self.tracks.iter().position(|t| t.name == name) else {
            return Vec::new();
        };
        self.events
            .iter()
            .copied()
            .filter(|e| e.track.0 as usize == idx)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn tracks_deduplicate_by_name() {
        let hub = Telemetry::enabled(16);
        let a = hub.track("worker0", Clock::Wall, 0);
        let b = hub.track("dev0/arr0", Clock::Device, 4000);
        let a2 = hub.track("worker0", Clock::Wall, 0);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        let export = hub.export().unwrap();
        assert_eq!(export.tracks.len(), 2);
        assert_eq!(export.tracks[b.0 as usize].period_ps, 4000);
        assert_eq!(
            export.tracks[a.0 as usize].period_ps, 0,
            "wall tracks carry no period"
        );
    }

    #[test]
    fn export_sorts_each_track_by_timestamp() {
        let hub = Telemetry::enabled(64);
        let track = hub.track("dev0/arr0", Clock::Device, 4000);
        {
            let mut sink = hub.sink();
            sink.span(track, Stage::Shard, 300, 10, 1, 0);
            sink.span(track, Stage::Shard, 100, 10, 2, 0);
            sink.span(track, Stage::Shard, 200, 10, 3, 0);
        }
        let export = hub.export().unwrap();
        let ts: Vec<u64> = export.events.iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![100, 200, 300]);
        assert!(export.has_stage(Stage::Shard, Clock::Device));
        assert!(!export.has_stage(Stage::Shard, Clock::Wall));
        assert_eq!(export.track_events("dev0/arr0").len(), 3);
        assert!(export.track_events("absent").is_empty());
    }

    #[test]
    fn disabled_hub_is_inert() {
        let hub = Telemetry::disabled();
        assert!(!hub.is_enabled());
        assert_eq!(hub.now_ns(), 0);
        assert_eq!(hub.track("x", Clock::Wall, 0), TrackId(0));
        hub.count(Counter::CacheHits, 3);
        assert_eq!(hub.counter(Counter::CacheHits), 0);
        assert!(hub.summary().is_none());
        assert!(hub.export().is_none());
        assert!(hub.ring_sink().is_none());
    }

    #[test]
    fn counter_samples_survive_into_export() {
        let hub = Telemetry::enabled(16);
        let track = hub.track("dev0", Clock::Device, 4000);
        {
            let mut sink = hub.sink();
            sink.counter(track, Stage::Window, 50, 1234);
        }
        let export = hub.export().unwrap();
        assert_eq!(export.events.len(), 1);
        assert_eq!(export.events[0].kind, EventKind::Counter);
        assert_eq!(export.events[0].arg, 1234);
    }
}
