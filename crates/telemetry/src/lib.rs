//! Dual-clock span tracing for the Tempus serving stack.
//!
//! A request crosses five layers (ingestion queue, admission, fleet
//! routing, array-ledger grant, backend execution) that live in **two
//! clock domains**: the service layers run on host wall time while
//! the ledger and backends run on deterministic device cycles. This
//! crate records both on one trace:
//!
//! - [`TraceEvent`]s are spans, instants or counter samples on a
//!   registered [`Track`](event::TrackMeta) — one track per worker
//!   thread (wall clock) and one per device array (cycle clock, with
//!   a declared period so both domains render on a single timeline).
//! - Recording goes through one [`TraceSink`] trait. The live
//!   implementation is a bounded **drop-oldest ring buffer** owned by
//!   the recording thread (lock-free on the hot path: no shared state
//!   is touched per event); the disabled implementation is a no-op
//!   [`NullSink`], so an untraced run pays one virtual call per
//!   *would-be* event and nothing else.
//! - The [`Telemetry`] hub collects drained rings, maintains the
//!   counter registry and per-stage duration histograms
//!   ([`TelemetrySummary`]), and exports the merged trace as
//!   Chrome/Perfetto `trace_event` JSON ([`TraceExport::to_perfetto_json`]),
//!   a compact self-describing binary dump
//!   ([`TraceExport::to_binary`]), or VCD waveforms ([`VcdSink`]).
//!
//! Tracing never changes what the system computes: every timestamp on
//! the device-cycle tracks comes from the deterministic ledger/backend
//! cycle model, and the serving layers assert bit-identical output
//! digests with tracing on and off (`trace_overhead` bench gate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod event;
pub mod hub;
pub mod perfetto;
pub mod ring;
pub mod summary;
pub mod timeline;
pub mod vcd;

pub use event::{Clock, EventKind, Stage, TraceEvent, TrackId, TrackMeta};
pub use hub::{stage_unit, Telemetry, TraceExport, DEFAULT_RING_CAPACITY};
pub use ring::{NullSink, RingSink, TraceSink};
pub use summary::{Counter, StageSummary, TelemetrySummary};
pub use timeline::{DeviceTimeline, PlacedSpan};
pub use vcd::VcdSink;
