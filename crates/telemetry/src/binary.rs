//! Compact self-describing binary ring dump.
//!
//! Layout (little-endian throughout):
//!
//! ```text
//! magic    8 bytes  "TTRACE01" (format + version)
//! tracks   u32 count, then per track:
//!            u16 name length, name bytes (UTF-8),
//!            u8 clock code, u64 period_ps
//! events   u64 count, then per event:
//!            u32 track, u8 stage code, u8 kind code,
//!            u64 ts, u64 dur, u64 id, u64 arg
//! dropped  u64
//! ```
//!
//! The header carries everything needed to decode — no out-of-band
//! schema — and [`TraceExport::from_binary`] round-trips exactly.

use crate::event::{Clock, EventKind, Stage, TraceEvent, TrackId, TrackMeta};
use crate::hub::TraceExport;

/// Format magic: name + version.
pub const MAGIC: &[u8; 8] = b"TTRACE01";

/// Cursor over the encoded bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("truncated at byte {}", self.at))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(u64::from_le_bytes(buf))
    }
}

impl TraceExport {
    /// Serializes the trace to the binary dump format.
    #[must_use]
    pub fn to_binary(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.events.len() * 38);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.tracks.len() as u32).to_le_bytes());
        for track in &self.tracks {
            let name = track.name.as_bytes();
            out.extend_from_slice(&(name.len().min(u16::MAX as usize) as u16).to_le_bytes());
            out.extend_from_slice(&name[..name.len().min(u16::MAX as usize)]);
            out.push(track.clock.code());
            out.extend_from_slice(&track.period_ps.to_le_bytes());
        }
        out.extend_from_slice(&(self.events.len() as u64).to_le_bytes());
        for event in &self.events {
            out.extend_from_slice(&event.track.0.to_le_bytes());
            out.push(event.stage.code());
            out.push(event.kind.code());
            out.extend_from_slice(&event.ts.to_le_bytes());
            out.extend_from_slice(&event.dur.to_le_bytes());
            out.extend_from_slice(&event.id.to_le_bytes());
            out.extend_from_slice(&event.arg.to_le_bytes());
        }
        out.extend_from_slice(&self.dropped.to_le_bytes());
        out
    }

    /// Decodes a binary dump produced by [`TraceExport::to_binary`].
    ///
    /// # Errors
    ///
    /// Returns a description when the bytes are truncated, carry a
    /// wrong magic, or hold out-of-range codes.
    pub fn from_binary(bytes: &[u8]) -> Result<Self, String> {
        let mut r = Reader { bytes, at: 0 };
        if r.take(8)? != MAGIC {
            return Err("bad magic: not a TTRACE01 dump".to_string());
        }
        let track_count = r.u32()? as usize;
        let mut tracks = Vec::with_capacity(track_count.min(4096));
        for _ in 0..track_count {
            let name_len = r.u16()? as usize;
            let name = String::from_utf8(r.take(name_len)?.to_vec())
                .map_err(|e| format!("track name not UTF-8: {e}"))?;
            let clock = Clock::from_code(r.u8()?).ok_or("bad clock code")?;
            let period_ps = r.u64()?;
            tracks.push(TrackMeta {
                name,
                clock,
                period_ps,
            });
        }
        let event_count = r.u64()? as usize;
        let mut events = Vec::with_capacity(event_count.min(1 << 20));
        for _ in 0..event_count {
            let track = TrackId(r.u32()?);
            let stage = Stage::from_code(r.u8()?).ok_or("bad stage code")?;
            let kind = EventKind::from_code(r.u8()?).ok_or("bad kind code")?;
            events.push(TraceEvent {
                track,
                stage,
                kind,
                ts: r.u64()?,
                dur: r.u64()?,
                id: r.u64()?,
                arg: r.u64()?,
            });
        }
        let dropped = r.u64()?;
        Ok(TraceExport {
            tracks,
            events,
            dropped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceExport {
        TraceExport {
            tracks: vec![
                TrackMeta {
                    name: "worker0".to_string(),
                    clock: Clock::Wall,
                    period_ps: 0,
                },
                TrackMeta {
                    name: "dev0/arr1".to_string(),
                    clock: Clock::Device,
                    period_ps: 4000,
                },
            ],
            events: vec![
                TraceEvent {
                    track: TrackId(0),
                    stage: Stage::Execute,
                    kind: EventKind::Span,
                    ts: 1_000,
                    dur: 500,
                    id: 3,
                    arg: 2,
                },
                TraceEvent {
                    track: TrackId(1),
                    stage: Stage::Shard,
                    kind: EventKind::Span,
                    ts: 40,
                    dur: 17,
                    id: 3,
                    arg: 1,
                },
            ],
            dropped: 9,
        }
    }

    #[test]
    fn binary_round_trips_exactly() {
        let export = sample();
        let bytes = export.to_binary();
        assert_eq!(&bytes[..8], MAGIC);
        let back = TraceExport::from_binary(&bytes).expect("decodes");
        assert_eq!(back, export);
    }

    #[test]
    fn truncation_and_bad_magic_are_rejected() {
        let export = sample();
        let bytes = export.to_binary();
        assert!(TraceExport::from_binary(&bytes[..bytes.len() - 1]).is_err());
        assert!(TraceExport::from_binary(&bytes[..4]).is_err());
        let mut garbled = bytes.clone();
        garbled[0] = b'X';
        assert!(TraceExport::from_binary(&garbled).is_err());
        let mut bad_stage = bytes;
        // First event's stage byte: 8 magic + 4 count + 2 tracks'
        // (2 + name + 1 + 8) + 8 event count + 4 track id.
        let offset = 8 + 4 + (2 + 7 + 1 + 8) + (2 + 9 + 1 + 8) + 8 + 4;
        bad_stage[offset] = 250;
        assert!(TraceExport::from_binary(&bad_stage).is_err());
    }
}
