//! Chrome/Perfetto `trace_event` JSON export and a lightweight shape
//! validator (the repo is serde-free, so both are hand-rolled).
//!
//! Track layout: wall-clock tracks (dispatcher, worker threads) live
//! under pid 1 ("service · wall clock"); device-cycle tracks (device
//! arrays) under pid 2 ("device · cycles"). Device timestamps are
//! scaled by each track's declared period so both clock domains render
//! on one timeline in `ui.perfetto.dev`.

use std::fmt::Write as _;

use crate::event::{Clock, EventKind};
use crate::hub::TraceExport;

/// Perfetto pid for wall-clock tracks.
pub const WALL_PID: u32 = 1;
/// Perfetto pid for device-cycle tracks.
pub const DEVICE_PID: u32 = 2;

impl TraceExport {
    /// Serializes the trace as Chrome `trace_event` JSON, loadable in
    /// `chrome://tracing` or `ui.perfetto.dev`.
    #[must_use]
    pub fn to_perfetto_json(&self) -> String {
        let mut out = String::from("{\n\"traceEvents\": [\n");
        let mut first = true;
        let push = |out: &mut String, line: &str, first: &mut bool| {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            out.push_str(line);
        };

        // Process + thread name metadata so both domains are labelled.
        push(
            &mut out,
            &format!(
                "{{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": {WALL_PID}, \"tid\": 0, \"args\": {{\"name\": \"service (wall clock)\"}}}}"
            ),
            &mut first,
        );
        push(
            &mut out,
            &format!(
                "{{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": {DEVICE_PID}, \"tid\": 0, \"args\": {{\"name\": \"device (cycle clock)\"}}}}"
            ),
            &mut first,
        );
        for (idx, track) in self.tracks.iter().enumerate() {
            let (pid, label) = match track.clock {
                Clock::Wall => (WALL_PID, track.name.clone()),
                Clock::Device => (
                    DEVICE_PID,
                    format!("{} ({} ps/cycle)", track.name, track.period_ps),
                ),
            };
            push(
                &mut out,
                &format!(
                    "{{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": {pid}, \"tid\": {}, \"args\": {{\"name\": \"{label}\"}}}}",
                    idx + 1
                ),
                &mut first,
            );
        }

        for event in &self.events {
            let Some(track) = self.tracks.get(event.track.0 as usize) else {
                continue;
            };
            // Both domains land on one µs timeline: wall ns straight
            // through, device cycles via the declared period.
            let (pid, scale_us) = match track.clock {
                Clock::Wall => (WALL_PID, 1e-3),
                Clock::Device => (DEVICE_PID, track.period_ps as f64 * 1e-6),
            };
            let tid = event.track.0 + 1;
            let ts = event.ts as f64 * scale_us;
            let name = event.stage.name();
            let cat = track.clock.name();
            let line = match event.kind {
                EventKind::Span => {
                    let dur = event.dur as f64 * scale_us;
                    format!(
                        "{{\"ph\": \"X\", \"name\": \"{name}\", \"cat\": \"{cat}\", \"ts\": {ts:.3}, \"dur\": {dur:.3}, \"pid\": {pid}, \"tid\": {tid}, \"args\": {{\"id\": {}, \"arg\": {}}}}}",
                        event.id, event.arg
                    )
                }
                EventKind::Instant => format!(
                    "{{\"ph\": \"i\", \"name\": \"{name}\", \"cat\": \"{cat}\", \"ts\": {ts:.3}, \"s\": \"t\", \"pid\": {pid}, \"tid\": {tid}, \"args\": {{\"id\": {}, \"arg\": {}}}}}",
                    event.id, event.arg
                ),
                EventKind::Counter => format!(
                    "{{\"ph\": \"C\", \"name\": \"{name}\", \"cat\": \"{cat}\", \"ts\": {ts:.3}, \"pid\": {pid}, \"tid\": {tid}, \"args\": {{\"{name}\": {}}}}}",
                    event.arg
                ),
            };
            push(&mut out, &line, &mut first);
        }

        let _ = write!(
            out,
            "\n],\n\"displayTimeUnit\": \"ns\",\n\"otherData\": {{\"droppedEvents\": {}}}\n}}\n",
            self.dropped
        );
        out
    }
}

/// JSON-schema-style shape check for an emitted Perfetto file: the
/// top level must hold a `traceEvents` array of objects, every object
/// must carry a valid `ph` plus numeric `ts`/`pid`/`tid` (metadata
/// events excepted), and within each `(pid, tid)` track the `ts`
/// sequence must be monotonically non-decreasing. Returns the number
/// of non-metadata events.
///
/// # Errors
///
/// Returns a description of the first violated rule.
pub fn validate_perfetto(text: &str) -> Result<usize, String> {
    let start = text
        .find("\"traceEvents\"")
        .ok_or_else(|| "missing \"traceEvents\" key".to_string())?;
    let array_open = text[start..]
        .find('[')
        .map(|i| start + i)
        .ok_or_else(|| "\"traceEvents\" is not an array".to_string())?;

    let mut checked = 0usize;
    let mut last_ts: Vec<((u64, u64), f64)> = Vec::new();
    let mut depth = 0usize;
    let mut object_start = None;
    let mut end_of_array = None;
    for (offset, ch) in text[array_open..].char_indices() {
        match ch {
            '{' => {
                if depth == 0 {
                    object_start = Some(array_open + offset);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    let obj = &text
                        [object_start.take().ok_or("unbalanced braces")?..=array_open + offset];
                    checked += validate_event(obj, &mut last_ts)?;
                }
            }
            ']' if depth == 0 => {
                end_of_array = Some(offset);
                break;
            }
            _ => {}
        }
    }
    if end_of_array.is_none() {
        return Err("unterminated traceEvents array".to_string());
    }
    if checked == 0 {
        return Err("traceEvents holds no events".to_string());
    }
    Ok(checked)
}

/// Validates one event object; returns 1 for a real event, 0 for
/// metadata.
fn validate_event(obj: &str, last_ts: &mut Vec<((u64, u64), f64)>) -> Result<usize, String> {
    let ph = string_field(obj, "ph").ok_or_else(|| format!("event missing ph: {obj}"))?;
    match ph.as_str() {
        "M" => Ok(0),
        "X" | "i" | "C" | "B" | "E" => {
            let ts = number_field(obj, "ts").ok_or_else(|| format!("event missing ts: {obj}"))?;
            let pid =
                number_field(obj, "pid").ok_or_else(|| format!("event missing pid: {obj}"))?;
            let tid =
                number_field(obj, "tid").ok_or_else(|| format!("event missing tid: {obj}"))?;
            if ph == "X" && number_field(obj, "dur").is_none() {
                return Err(format!("complete event missing dur: {obj}"));
            }
            let key = (pid as u64, tid as u64);
            match last_ts.iter_mut().find(|(k, _)| *k == key) {
                Some((_, prev)) => {
                    if ts + 1e-9 < *prev {
                        return Err(format!(
                            "track pid={} tid={}: ts {ts} after {prev} is not monotonic",
                            key.0, key.1
                        ));
                    }
                    *prev = ts;
                }
                None => last_ts.push((key, ts)),
            }
            Ok(1)
        }
        other => Err(format!("unknown ph {other:?}: {obj}")),
    }
}

/// Extracts `"key": "value"` from a flat JSON object string.
fn string_field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts `"key": <number>` from a flat JSON object string.
fn number_field(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '-' || c == '+' || c == '.' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Stage, TraceEvent, TrackId};
    use crate::ring::TraceSink;
    use crate::Telemetry;

    fn sample_export() -> TraceExport {
        let hub = Telemetry::enabled(256);
        let wall = hub.track("worker0", Clock::Wall, 0);
        let dev = hub.track("dev0/arr0", Clock::Device, 4000);
        {
            let mut sink = hub.sink();
            sink.span(wall, Stage::Execute, 1_000, 2_000, 7, 0);
            sink.span(dev, Stage::Shard, 10, 40, 7, 0);
            sink.instant(dev, Stage::Grant, 10, 7, 2);
            sink.counter(dev, Stage::Window, 50, 320);
        }
        hub.export().unwrap()
    }

    #[test]
    fn perfetto_json_is_shaped_and_scaled() {
        let export = sample_export();
        let json = export.to_perfetto_json();
        assert!(json.contains("\"traceEvents\""));
        // Wall ns → µs.
        assert!(
            json.contains("\"ts\": 1.000"),
            "wall ns scale to µs: {json}"
        );
        // 10 cycles at 4000 ps/cycle = 0.04 µs.
        assert!(
            json.contains("\"ts\": 0.040"),
            "cycles scale by period: {json}"
        );
        assert!(json.contains("service (wall clock)"));
        assert!(json.contains("device (cycle clock)"));
        assert!(json.contains("4000 ps/cycle"));
        let checked = validate_perfetto(&json).expect("validates");
        assert_eq!(checked, 4);
    }

    #[test]
    fn validator_rejects_broken_shapes() {
        assert!(validate_perfetto("{}").is_err());
        assert!(validate_perfetto("{\"traceEvents\": []}").is_err());
        assert!(
            validate_perfetto(
                "{\"traceEvents\": [{\"ph\": \"X\", \"ts\": 1, \"pid\": 1, \"tid\": 1}]}"
            )
            .is_err(),
            "complete event without dur"
        );
        assert!(
            validate_perfetto(
                "{\"traceEvents\": [{\"ph\": \"Z\", \"ts\": 1, \"pid\": 1, \"tid\": 1}]}"
            )
            .is_err(),
            "unknown phase"
        );
        let non_monotonic = "{\"traceEvents\": [\
            {\"ph\": \"i\", \"ts\": 5.0, \"pid\": 1, \"tid\": 1},\
            {\"ph\": \"i\", \"ts\": 2.0, \"pid\": 1, \"tid\": 1}]}";
        assert!(
            validate_perfetto(non_monotonic).is_err(),
            "ts must not rewind"
        );
        let ok = "{\"traceEvents\": [\
            {\"ph\": \"i\", \"ts\": 5.0, \"pid\": 1, \"tid\": 1},\
            {\"ph\": \"i\", \"ts\": 2.0, \"pid\": 1, \"tid\": 2}]}";
        assert_eq!(validate_perfetto(ok), Ok(2), "tracks are independent");
    }

    #[test]
    fn orphan_track_events_are_skipped_not_emitted() {
        let mut export = sample_export();
        export.events.push(TraceEvent {
            track: TrackId(99),
            stage: Stage::Queue,
            kind: crate::event::EventKind::Instant,
            ts: 0,
            dur: 0,
            id: 0,
            arg: 0,
        });
        let json = export.to_perfetto_json();
        assert_eq!(validate_perfetto(&json), Ok(4));
    }
}
