//! The trace event model: stages, clock domains, tracks.

/// Which clock a track's timestamps are measured on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Clock {
    /// Host wall time in nanoseconds since the telemetry origin.
    Wall,
    /// Deterministic device cycles (the ledger/backend cycle model).
    Device,
}

impl Clock {
    /// Stable tag for serialization.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Clock::Wall => 0,
            Clock::Device => 1,
        }
    }

    /// Inverse of [`Clock::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Clock::Wall),
            1 => Some(Clock::Device),
            _ => None,
        }
    }

    /// Human-readable domain name (Perfetto `cat` field).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Clock::Wall => "wall_ns",
            Clock::Device => "device_cycles",
        }
    }
}

/// The span/event taxonomy: one variant per pipeline stage a request
/// (or an array) can spend time in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Wall span: accepted into the bounded queue → popped by the
    /// dispatcher.
    Queue,
    /// Wall span: popped → admission decision made.
    Admit,
    /// Wall instant: served from the content-addressed cache.
    CacheHit,
    /// Wall instant: coalesced onto an identical in-flight execution.
    Coalesce,
    /// Wall instant: rejected (`arg` carries the reason code — see
    /// [`crate::summary::Counter`] reject counters).
    Reject,
    /// Device instant: a fleet device preview (`arg` = projected
    /// finish cycle on that device).
    Preview,
    /// Device instant: routing choice (`arg` = chosen device).
    Route,
    /// Device instant: the backfill take-rule fired for this job.
    Backfill,
    /// Device instant: the ledger granted arrays (`arg` = granted
    /// width).
    Grant,
    /// Device span: waited past the earliest free array to gather the
    /// granted set.
    GatherWait,
    /// Device span: an array is busy with an unsharded job.
    ArrayBusy,
    /// Device span: one shard of a job on one array (`arg` = shard
    /// index).
    Shard,
    /// Device span: the cross-array reduction stage.
    Reduce,
    /// Device span: an idle gap opened on an array.
    ArrayIdle,
    /// Wall span: backend execution on a worker thread.
    Execute,
    /// Device instant: elastic scaling drained a device.
    Drain,
    /// Device instant: elastic scaling revived a draining device.
    Revive,
    /// Counter sample: window-batch cycles reported by `TempusStats`.
    Window,
    /// Wall instant: a fault was injected into an execution (`arg` =
    /// fault kind code).
    Fault,
    /// Device span: retry backoff charged to the request before its
    /// re-dispatch (`arg` = attempt number).
    Retry,
    /// Device instant: the circuit breaker quarantined a device.
    Quarantine,
    /// Device instant: a quarantined device was probed (`arg` = 1 if
    /// the probe reported healthy).
    Probe,
    /// Wall instant: the request fell back to the functional backend
    /// after exhausting retries (degrade-don't-drop).
    Degrade,
    /// Wall instant: the pool respawned a dead worker (`id` = worker
    /// index).
    Respawn,
    /// Counter sample: peak streaming-scratch elements of a streamed
    /// execution (bounded tile arena / fused per-row ring).
    StreamWindow,
    /// Device instant: a device array's DVFS clock domain stepped
    /// (`arg` = new ladder level) — absent with the governor off.
    FreqChange,
}

impl Stage {
    /// Every stage, in serialization-code order (append-only: codes
    /// are positional and must stay stable across releases).
    pub const ALL: [Stage; 26] = [
        Stage::Queue,
        Stage::Admit,
        Stage::CacheHit,
        Stage::Coalesce,
        Stage::Reject,
        Stage::Preview,
        Stage::Route,
        Stage::Backfill,
        Stage::Grant,
        Stage::GatherWait,
        Stage::ArrayBusy,
        Stage::Shard,
        Stage::Reduce,
        Stage::ArrayIdle,
        Stage::Execute,
        Stage::Drain,
        Stage::Revive,
        Stage::Window,
        Stage::Fault,
        Stage::Retry,
        Stage::Quarantine,
        Stage::Probe,
        Stage::Degrade,
        Stage::Respawn,
        Stage::StreamWindow,
        Stage::FreqChange,
    ];

    /// Stable serialization code (index into [`Stage::ALL`]).
    #[must_use]
    pub fn code(self) -> u8 {
        Stage::ALL.iter().position(|&s| s == self).unwrap_or(0) as u8
    }

    /// Inverse of [`Stage::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<Self> {
        Stage::ALL.get(code as usize).copied()
    }

    /// Short snake-case name (trace event name, summary key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Admit => "admit",
            Stage::CacheHit => "cache_hit",
            Stage::Coalesce => "coalesce",
            Stage::Reject => "reject",
            Stage::Preview => "preview",
            Stage::Route => "route",
            Stage::Backfill => "backfill",
            Stage::Grant => "grant",
            Stage::GatherWait => "gather_wait",
            Stage::ArrayBusy => "array_busy",
            Stage::Shard => "shard",
            Stage::Reduce => "reduce",
            Stage::ArrayIdle => "array_idle",
            Stage::Execute => "execute",
            Stage::Drain => "drain",
            Stage::Revive => "revive",
            Stage::Window => "window",
            Stage::Fault => "fault",
            Stage::Retry => "retry",
            Stage::Quarantine => "quarantine",
            Stage::Probe => "probe",
            Stage::Degrade => "degrade",
            Stage::Respawn => "respawn",
            Stage::StreamWindow => "stream_window",
            Stage::FreqChange => "freq_change",
        }
    }
}

/// How an event occupies its track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Duration event: `[ts, ts + dur)`.
    Span,
    /// Point event at `ts`.
    Instant,
    /// Counter sample: value `arg` at `ts`.
    Counter,
}

impl EventKind {
    /// Stable serialization code.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            EventKind::Span => 0,
            EventKind::Instant => 1,
            EventKind::Counter => 2,
        }
    }

    /// Inverse of [`EventKind::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(EventKind::Span),
            1 => Some(EventKind::Instant),
            2 => Some(EventKind::Counter),
            _ => None,
        }
    }
}

/// Handle to a registered track (index into the hub's track table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrackId(pub u32);

/// A registered track: one timeline row in the exported trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackMeta {
    /// Display name (`worker0`, `dispatcher`, `dev1/arr3`, …).
    pub name: String,
    /// Clock domain of every event on this track.
    pub clock: Clock,
    /// Declared clock period in **picoseconds per cycle** for
    /// [`Clock::Device`] tracks (0 on wall tracks): the scale that
    /// places device-cycle events on the wall timeline.
    pub period_ps: u64,
}

/// One recorded event. `ts`/`dur` are nanoseconds on wall tracks and
/// cycles on device tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Track the event belongs to.
    pub track: TrackId,
    /// Pipeline stage.
    pub stage: Stage,
    /// Span, instant or counter sample.
    pub kind: EventKind,
    /// Start timestamp in the track's clock units.
    pub ts: u64,
    /// Duration in the track's clock units (0 for instants/counters).
    pub dur: u64,
    /// Correlation id — the job id for request stages, the array
    /// index for array stages.
    pub id: u64,
    /// Stage-specific argument (granted width, device index, shard
    /// index, counter value, …).
    pub arg: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_codes_round_trip() {
        for stage in Stage::ALL {
            assert_eq!(Stage::from_code(stage.code()), Some(stage));
        }
        assert_eq!(Stage::from_code(200), None);
    }

    #[test]
    fn stage_names_are_unique() {
        let mut names: Vec<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::ALL.len());
    }

    #[test]
    fn clock_and_kind_codes_round_trip() {
        for clock in [Clock::Wall, Clock::Device] {
            assert_eq!(Clock::from_code(clock.code()), Some(clock));
        }
        for kind in [EventKind::Span, EventKind::Instant, EventKind::Counter] {
            assert_eq!(EventKind::from_code(kind.code()), Some(kind));
        }
    }
}
