//! The `TraceSink` trait and its two recorders: the no-op sink and
//! the bounded drop-oldest ring buffer.

use std::sync::Arc;

use crate::event::{EventKind, Stage, TraceEvent, TrackId};
use crate::hub::HubShared;
use crate::summary::{Counter, StageAccum};

/// Merge the local histogram accumulator into the hub every this many
/// recorded events, so mid-run summaries stay fresh without touching
/// shared state per event.
const ACCUM_FLUSH_EVERY: u64 = 256;

/// Where instrumented code sends its events. Exactly one trait for
/// both modes: the live [`RingSink`] and the disabled [`NullSink`],
/// so call sites hold a `Box<dyn TraceSink>` and never branch on
/// configuration themselves.
pub trait TraceSink: Send {
    /// False on the no-op sink: the provided helpers early-return
    /// before building an event, so a disabled run pays one virtual
    /// call per would-be event and nothing else.
    fn is_enabled(&self) -> bool;

    /// Records one event (no-op when disabled).
    fn record(&mut self, event: TraceEvent);

    /// Pushes locally accumulated histogram state to the hub (no-op
    /// when disabled). Ring contents stay in the bounded ring until
    /// the sink is dropped.
    fn flush(&mut self) {}

    /// Records a duration event `[ts, ts + dur)`.
    fn span(&mut self, track: TrackId, stage: Stage, ts: u64, dur: u64, id: u64, arg: u64) {
        if self.is_enabled() {
            self.record(TraceEvent {
                track,
                stage,
                kind: EventKind::Span,
                ts,
                dur,
                id,
                arg,
            });
        }
    }

    /// Records a point event at `ts`.
    fn instant(&mut self, track: TrackId, stage: Stage, ts: u64, id: u64, arg: u64) {
        if self.is_enabled() {
            self.record(TraceEvent {
                track,
                stage,
                kind: EventKind::Instant,
                ts,
                dur: 0,
                id,
                arg,
            });
        }
    }

    /// Records a counter sample `value` at `ts`.
    fn counter(&mut self, track: TrackId, stage: Stage, ts: u64, value: u64) {
        if self.is_enabled() {
            self.record(TraceEvent {
                track,
                stage,
                kind: EventKind::Counter,
                ts,
                dur: 0,
                id: 0,
                arg: value,
            });
        }
    }
}

impl TraceSink for Box<dyn TraceSink> {
    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }

    fn record(&mut self, event: TraceEvent) {
        (**self).record(event);
    }

    fn flush(&mut self) {
        (**self).flush();
    }
}

/// The disabled recorder: drops everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn is_enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: TraceEvent) {}
}

/// The live recorder: a bounded drop-oldest ring buffer owned by one
/// recording thread. The hot path touches only thread-local memory
/// (ring slot + histogram accumulator) — no locks, no atomics; shared
/// state is reached only on the amortized flush and at drop, when the
/// ring drains into the [`crate::Telemetry`] hub.
pub struct RingSink {
    hub: Arc<HubShared>,
    ring: Vec<TraceEvent>,
    capacity: usize,
    /// Oldest slot — the next to be overwritten once the ring is full.
    cursor: usize,
    dropped: u64,
    accum: StageAccum,
    since_flush: u64,
}

impl RingSink {
    pub(crate) fn new(hub: Arc<HubShared>, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink {
            hub,
            ring: Vec::with_capacity(capacity),
            capacity,
            cursor: 0,
            dropped: 0,
            accum: StageAccum::default(),
            since_flush: 0,
        }
    }

    /// Events lost to wraparound so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events currently held in the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no events are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The buffered events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.cursor..]);
        out.extend_from_slice(&self.ring[..self.cursor]);
        out
    }
}

impl TraceSink for RingSink {
    fn is_enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: TraceEvent) {
        self.accum.observe(&event);
        if self.ring.len() < self.capacity {
            self.ring.push(event);
        } else {
            // Full: overwrite the oldest slot, drop-oldest semantics.
            self.ring[self.cursor] = event;
            self.cursor = (self.cursor + 1) % self.capacity;
            self.dropped += 1;
        }
        self.since_flush += 1;
        if self.since_flush >= ACCUM_FLUSH_EVERY {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.since_flush == 0 {
            return;
        }
        self.hub
            .counters
            .add(Counter::EventsRecorded, self.since_flush);
        self.since_flush = 0;
        if !self.accum.is_empty() {
            self.hub.merge_accum(&self.accum);
            self.accum = StageAccum::default();
        }
    }
}

impl Drop for RingSink {
    fn drop(&mut self) {
        self.flush();
        if self.dropped > 0 {
            self.hub.counters.add(Counter::EventsDropped, self.dropped);
        }
        let events = self.events();
        if !events.is_empty() {
            self.hub.collect(events);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::Telemetry;
    use crate::Clock;

    fn event(ts: u64) -> TraceEvent {
        TraceEvent {
            track: TrackId(0),
            stage: Stage::Execute,
            kind: EventKind::Span,
            ts,
            dur: 1,
            id: ts,
            arg: 0,
        }
    }

    #[test]
    fn ring_holds_events_below_capacity() {
        let hub = Telemetry::enabled(8);
        let mut sink = hub.ring_sink().expect("enabled hub hands out rings");
        for ts in 0..5 {
            sink.record(event(ts));
        }
        assert_eq!(sink.len(), 5);
        assert_eq!(sink.dropped(), 0);
        let ids: Vec<u64> = sink.events().iter().map(|e| e.ts).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ring_wraps_dropping_oldest_and_counts_drops() {
        let hub = Telemetry::enabled(4);
        let mut sink = hub.ring_sink().expect("enabled hub hands out rings");
        for ts in 0..10 {
            sink.record(event(ts));
        }
        assert_eq!(sink.len(), 4, "bounded at capacity");
        assert_eq!(sink.dropped(), 6, "six oldest overwritten");
        let ids: Vec<u64> = sink.events().iter().map(|e| e.ts).collect();
        assert_eq!(ids, vec![6, 7, 8, 9], "newest survive, oldest first");
    }

    #[test]
    fn dropped_counter_reaches_the_hub_registry() {
        let hub = Telemetry::enabled(2);
        {
            let mut sink = hub.sink();
            let track = hub.track("t", Clock::Wall, 0);
            for ts in 0..7 {
                sink.span(track, Stage::Queue, ts, 1, ts, 0);
            }
        } // drop drains the ring
        let summary = hub.summary().expect("enabled hub summarizes");
        assert_eq!(summary.counter("events_recorded"), 7);
        assert_eq!(summary.counter("events_dropped"), 5);
        assert_eq!(summary.dropped_events, 5);
        // The histogram saw every event, the ring only the newest two.
        assert_eq!(summary.stage(Stage::Queue).unwrap().count, 7);
        let export = hub.export().expect("enabled hub exports");
        assert_eq!(export.events.len(), 2);
        assert_eq!(export.dropped, 5);
    }

    #[test]
    fn null_sink_records_nothing() {
        let mut sink = NullSink;
        assert!(!sink.is_enabled());
        sink.span(TrackId(0), Stage::Queue, 0, 1, 0, 0);
        sink.instant(TrackId(0), Stage::Reject, 0, 0, 0);
        sink.counter(TrackId(0), Stage::Window, 0, 9);
        let hub = Telemetry::disabled();
        assert!(!hub.sink().is_enabled());
        assert!(hub.summary().is_none());
        assert!(hub.export().is_none());
    }
}
