//! Calibration-target checks against the paper's published §V-C
//! statistics. The fast tests run on MobileNetV2 (2M weights); the
//! full ResNeXt101 check (87M weights) is `#[ignore]`d for regular
//! runs and exercised by the release-mode report harness.

use tempus_arith::IntPrecision;
use tempus_models::zoo::Model;
use tempus_models::QuantizedModel;
use tempus_profile::{magnitude, sparsity};

#[test]
fn mobilenet_v2_latency_close_to_33_cycles() {
    let model = QuantizedModel::generate(Model::MobileNetV2, IntPrecision::Int8, 42);
    let profile = magnitude::profile_model(&model, 16, 16);
    let avg = profile.average_latency_cycles();
    assert!(
        (avg - 33.0).abs() < 3.0,
        "MobileNetV2 avg latency {avg:.1} cycles vs paper 33"
    );
}

#[test]
fn mobilenet_v2_silent_pes_close_to_6() {
    let model = QuantizedModel::generate(Model::MobileNetV2, IntPrecision::Int8, 42);
    let profile = sparsity::profile_model(&model, 16, 16, false);
    let avg = profile.average_silent_pes();
    assert!(
        (avg - 6.0).abs() < 1.5,
        "MobileNetV2 avg silent PEs {avg:.1} vs paper 6"
    );
}

#[test]
fn mobilenet_v2_sparsity_matches_table_i() {
    let model = QuantizedModel::generate(Model::MobileNetV2, IntPrecision::Int8, 42);
    let s = model.sparsity_pct();
    assert!((s - 2.25).abs() < 0.2, "sparsity {s:.2}% vs Table I 2.25%");
}

#[test]
#[ignore = "generates 87M weights; run with --ignored (release) or via the report harness"]
fn resnext101_latency_close_to_31_cycles() {
    let model = QuantizedModel::generate(Model::ResNeXt101, IntPrecision::Int8, 42);
    let profile = magnitude::profile_model(&model, 16, 16);
    let avg = profile.average_latency_cycles();
    assert!(
        (avg - 31.0).abs() < 3.0,
        "ResNeXt101 avg latency {avg:.1} cycles vs paper 31"
    );
    let silent = sparsity::profile_model(&model, 16, 16, false).average_silent_pes();
    assert!(
        (silent - 2.0).abs() < 5.0,
        "ResNeXt101 avg silent PEs {silent:.1} vs paper 2"
    );
}

/// Probe printing the calibration landscape — run manually when
/// retuning `tempus_models::calib` betas:
/// `cargo test -p tempus-profile --release probe -- --ignored --nocapture`
#[test]
#[ignore = "diagnostic probe, not an assertion"]
fn probe_latency_landscape() {
    for model in [Model::MobileNetV2, Model::ResNeXt101] {
        let m = QuantizedModel::generate(model, IntPrecision::Int8, 42);
        let mag = magnitude::profile_model(&m, 16, 16);
        let sil = sparsity::profile_model(&m, 16, 16, false);
        println!(
            "{}: weights {:.1}M sparsity {:.2}% avg latency {:.1} cy avg max {:.1} silent {:.1}",
            model.name(),
            m.total_weights() as f64 / 1e6,
            m.sparsity_pct(),
            mag.average_latency_cycles(),
            mag.average_max_magnitude(),
            sil.average_silent_pes()
        );
    }
}
