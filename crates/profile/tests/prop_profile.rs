//! Property-based tests for the tile profiling pipeline: tiling must
//! cover every weight exactly once, and the derived statistics must
//! respect their analytic bounds.

use proptest::prelude::*;
use tempus_arith::IntPrecision;
use tempus_models::{ConvLayerSpec, QuantizedLayer};
use tempus_profile::tiles::{layer_tiles, Tile};

fn synthetic_layer(out_c: usize, in_c: usize, kh: usize, seed: u32) -> QuantizedLayer {
    let spec = ConvLayerSpec::new("prop", out_c, in_c, kh, kh, 1);
    let count = spec.weight_count();
    QuantizedLayer {
        spec,
        weights: (0..count)
            .map(|i| (((i as u32).wrapping_mul(2_654_435_761).wrapping_add(seed) >> 8) % 255) as i8)
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tiling_covers_every_weight_exactly_once(
        out_c in 1usize..40,
        in_c in 1usize..20,
        kh in prop_oneof![Just(1usize), Just(3usize)],
        k in 1usize..20,
        n in 1usize..20,
        seed in any::<u32>(),
    ) {
        let layer = synthetic_layer(out_c, in_c, kh, seed);
        let tiles: Vec<Tile> = layer_tiles(&layer, k, n).collect();
        let covered: usize = tiles.iter().map(|t| t.weights.len()).sum();
        prop_assert_eq!(covered, layer.weights.len());
        // Weight multiset preserved: compare sums as a cheap witness.
        let direct: i64 = layer.weights.iter().map(|&w| i64::from(w)).sum();
        let tiled: i64 = tiles
            .iter()
            .flat_map(|t| t.weights.iter())
            .map(|&w| i64::from(w))
            .sum();
        prop_assert_eq!(direct, tiled);
    }

    #[test]
    fn tile_stats_respect_bounds(
        out_c in 1usize..40,
        in_c in 1usize..20,
        seed in any::<u32>(),
    ) {
        let layer = synthetic_layer(out_c, in_c, 3, seed);
        for tile in layer_tiles(&layer, 16, 16) {
            prop_assert!(tile.weights.len() <= tile.capacity);
            prop_assert!(tile.silent_pes() <= tile.capacity);
            prop_assert!(tile.max_magnitude() <= 128);
            prop_assert_eq!(
                tile.latency_cycles(),
                tile.max_magnitude().div_ceil(2)
            );
            let zeros = tile.weights.iter().filter(|&&w| w == 0).count();
            prop_assert_eq!(
                tile.silent_pes(),
                zeros + (tile.capacity - tile.weights.len())
            );
        }
    }

    #[test]
    fn magnitude_profile_totals_are_consistent(
        out_c in 1usize..32,
        in_c in 1usize..16,
        seed in any::<u32>(),
    ) {
        use tempus_models::zoo::Model;
        use tempus_models::QuantizedModel;
        use tempus_profile::magnitude::profile_model;
        // A tiny generated model keeps the property cheap; we only
        // exercise the aggregation invariants here.
        let _ = (out_c, in_c);
        let model = QuantizedModel::generate_limited(
            Model::ShuffleNetV2,
            IntPrecision::Int8,
            u64::from(seed),
            20_000,
        );
        let p = profile_model(&model, 16, 16);
        let hist_total: u64 = p.histogram.iter().sum();
        prop_assert_eq!(hist_total, p.total_tiles);
        prop_assert!(p.average_latency_cycles() <= 64.0);
        prop_assert!(p.average_max_magnitude() <= 128.0);
        prop_assert!(p.latency_quantile(0.0) <= p.latency_quantile(1.0));
    }
}
