//! Fig. 8: sparsity profiling — silent PEs per k×n tile.
//!
//! "sparsity is analyzed in a similar fashion to estimate the average
//! number of 'silent' PEs per array, where tub multipliers remain
//! inactive for zero-valued weights" (§IV).

use tempus_models::QuantizedModel;

use crate::tiles::layer_tiles;

/// Silent-PE histogram for one model.
#[derive(Debug, Clone, PartialEq)]
pub struct SilentPeProfile {
    /// Model name.
    pub model: String,
    /// Tile height.
    pub k: usize,
    /// Tile width.
    pub n: usize,
    /// `histogram[z]` = tiles with exactly `z` silent PEs (0..=k·n).
    pub histogram: Vec<u64>,
    /// Total tiles profiled.
    pub total_tiles: u64,
    /// Whether unmapped lanes of partial tiles were counted as silent.
    pub count_partial_lanes: bool,
}

impl SilentPeProfile {
    /// Average silent PEs per tile — the §V-C statistic (≈6 for
    /// MobileNetV2, ≈2 for ResNeXt101).
    #[must_use]
    pub fn average_silent_pes(&self) -> f64 {
        if self.total_tiles == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .histogram
            .iter()
            .enumerate()
            .map(|(z, &f)| z as f64 * f as f64)
            .sum();
        weighted / self.total_tiles as f64
    }

    /// Average *active* PEs per tile (the complement).
    #[must_use]
    pub fn average_active_pes(&self) -> f64 {
        (self.k * self.n) as f64 - self.average_silent_pes()
    }

    /// Non-empty histogram series `(silent_count, tiles)`.
    #[must_use]
    pub fn series(&self) -> Vec<(usize, u64)> {
        self.histogram
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f > 0)
            .map(|(z, &f)| (z, f))
            .collect()
    }
}

/// Profiles silent PEs over every generated layer.
///
/// `count_partial_lanes` controls whether unmapped lanes of edge tiles
/// count as silent; the paper's zero-weight statistic excludes them,
/// so the Fig. 8 reproduction passes `false` and full tiles only are
/// considered for the zero-count histogram.
#[must_use]
pub fn profile_model(
    model: &QuantizedModel,
    k: usize,
    n: usize,
    count_partial_lanes: bool,
) -> SilentPeProfile {
    let mut histogram = vec![0u64; k * n + 1];
    let mut total = 0u64;
    for layer in &model.layers {
        for tile in layer_tiles(layer, k, n) {
            let silent = if count_partial_lanes {
                tile.silent_pes()
            } else {
                if tile.is_partial() {
                    continue;
                }
                tile.silent_pes()
            };
            histogram[silent] += 1;
            total += 1;
        }
    }
    SilentPeProfile {
        model: model.model.name().to_string(),
        k,
        n,
        histogram,
        total_tiles: total,
        count_partial_lanes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempus_arith::IntPrecision;
    use tempus_models::zoo::Model;

    #[test]
    fn averages_relate_to_model_sparsity() {
        let m = QuantizedModel::generate_limited(Model::GoogleNet, IntPrecision::Int8, 8, 400_000);
        let p = profile_model(&m, 16, 16, false);
        // Expected silent PEs per full 256-lane tile ≈ sparsity × 256.
        let expected = m.sparsity_pct() / 100.0 * 256.0;
        let got = p.average_silent_pes();
        assert!(
            (got - expected).abs() < 1.5,
            "avg silent {got} vs expected {expected}"
        );
    }

    #[test]
    fn histogram_sums_to_total() {
        let m =
            QuantizedModel::generate_limited(Model::ShuffleNetV2, IntPrecision::Int8, 9, 150_000);
        let p = profile_model(&m, 16, 16, false);
        let sum: u64 = p.histogram.iter().sum();
        assert_eq!(sum, p.total_tiles);
    }

    #[test]
    fn partial_lane_counting_increases_silence() {
        let m =
            QuantizedModel::generate_limited(Model::ShuffleNetV2, IntPrecision::Int8, 10, 150_000);
        let with = profile_model(&m, 16, 16, true);
        let without = profile_model(&m, 16, 16, false);
        assert!(with.average_silent_pes() >= without.average_silent_pes());
        assert!(with.total_tiles >= without.total_tiles);
    }

    #[test]
    fn active_pes_complement_silent() {
        let m = QuantizedModel::generate_limited(Model::ResNet18, IntPrecision::Int8, 11, 200_000);
        let p = profile_model(&m, 16, 16, false);
        assert!((p.average_active_pes() + p.average_silent_pes() - 256.0).abs() < 1e-9);
    }
}
