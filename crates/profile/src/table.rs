//! Markdown and CSV table emitters shared by the report harness.

/// A simple table: headers plus string rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the row width differs from the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders GitHub-flavoured markdown with aligned columns.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let render_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", sep.join(" | ")));
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas or
    /// quotes).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as a percentage-improvement string, the paper's
/// preferred presentation.
#[must_use]
pub fn improvement_pct(baseline: f64, improved: f64) -> String {
    format!("{:.1}%", (1.0 - improved / baseline) * 100.0)
}

/// Renders an ASCII bar chart of `(label, value)` series — used for
/// figure reproductions in the terminal report.
#[must_use]
pub fn ascii_chart(title: &str, series: &[(String, f64)], width: usize) -> String {
    let max = series.iter().map(|&(_, v)| v).fold(f64::MIN, f64::max);
    let label_w = series.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = format!("{title}\n");
    for (label, value) in series {
        let bar_len = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} | {} {value:.4}\n",
            "#".repeat(bar_len)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_round_trip() {
        let mut t = Table::new(["design", "area"]);
        t.push_row(["CMAC", "0.0361"]);
        t.push_row(["PCU", "0.0168"]);
        let md = t.to_markdown();
        assert!(md.contains("| design | area   |"));
        assert!(md.lines().count() == 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["x,y", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(["a"]);
        t.push_row(["1", "2"]);
    }

    #[test]
    fn improvement_formatting() {
        assert_eq!(improvement_pct(0.0361, 0.0168), "53.5%");
    }

    #[test]
    fn chart_scales_bars() {
        let series = vec![("a".to_string(), 1.0), ("bb".to_string(), 2.0)];
        let chart = ascii_chart("t", &series, 10);
        assert!(chart.contains("##########"));
        assert!(chart.lines().count() == 3);
    }
}
