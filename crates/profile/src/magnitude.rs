//! Fig. 7: weight-magnitude profiling with k×n max pooling.
//!
//! "Using a 16×16 max pool across weights present in the model's
//! convolution layers, the largest weight value within each 16×16 tile
//! is determined and its frequency of occurrence ... derived. This
//! directly correlates to the compute cycles" (§IV). The area under
//! the histogram normalised by total frequency gives the average
//! workload-dependent latency (§V-C).

use tempus_models::QuantizedModel;

use crate::tiles::layer_tiles;

/// Tile-max histogram for one model.
#[derive(Debug, Clone, PartialEq)]
pub struct MagnitudeProfile {
    /// Model name.
    pub model: String,
    /// Tile height (PE cells).
    pub k: usize,
    /// Tile width (multipliers per cell).
    pub n: usize,
    /// `histogram[m]` = number of tiles whose max magnitude is `m`
    /// (0..=128 for INT8).
    pub histogram: Vec<u64>,
    /// Total tiles profiled.
    pub total_tiles: u64,
}

impl MagnitudeProfile {
    /// Average tile-max magnitude.
    #[must_use]
    pub fn average_max_magnitude(&self) -> f64 {
        if self.total_tiles == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .histogram
            .iter()
            .enumerate()
            .map(|(m, &f)| m as f64 * f as f64)
            .sum();
        weighted / self.total_tiles as f64
    }

    /// Average workload latency in cycles: mean of `ceil(max / 2)`
    /// over tiles (2s-unary encoding).
    #[must_use]
    pub fn average_latency_cycles(&self) -> f64 {
        if self.total_tiles == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .histogram
            .iter()
            .enumerate()
            .map(|(m, &f)| f64::from((m as u32).div_ceil(2)) * f as f64)
            .sum();
        weighted / self.total_tiles as f64
    }

    /// Latency distribution quantile (e.g. 0.5 for the median tile).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `0.0..=1.0`.
    #[must_use]
    pub fn latency_quantile(&self, q: f64) -> u32 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let target = (q * self.total_tiles as f64).ceil() as u64;
        let mut cumulative = 0u64;
        for (m, &f) in self.histogram.iter().enumerate() {
            cumulative += f;
            if cumulative >= target {
                return (m as u32).div_ceil(2);
            }
        }
        (self.histogram.len() as u32 - 1).div_ceil(2)
    }

    /// Renders the histogram as fixed-width rows `(magnitude, count)`,
    /// skipping empty buckets — the Fig. 7 series.
    #[must_use]
    pub fn series(&self) -> Vec<(u32, u64)> {
        self.histogram
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f > 0)
            .map(|(m, &f)| (m as u32, f))
            .collect()
    }
}

/// Profiles every generated layer of `model` with k×n tiles.
#[must_use]
pub fn profile_model(model: &QuantizedModel, k: usize, n: usize) -> MagnitudeProfile {
    let max_mag = model.precision.max_magnitude() as usize;
    let mut histogram = vec![0u64; max_mag + 1];
    let mut total = 0u64;
    for layer in &model.layers {
        for tile in layer_tiles(layer, k, n) {
            histogram[tile.max_magnitude() as usize] += 1;
            total += 1;
        }
    }
    MagnitudeProfile {
        model: model.model.name().to_string(),
        k,
        n,
        histogram,
        total_tiles: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempus_arith::IntPrecision;
    use tempus_models::zoo::Model;

    #[test]
    fn histogram_counts_every_tile() {
        let m =
            QuantizedModel::generate_limited(Model::ShuffleNetV2, IntPrecision::Int8, 3, 200_000);
        let p = profile_model(&m, 16, 16);
        let from_hist: u64 = p.histogram.iter().sum();
        assert_eq!(from_hist, p.total_tiles);
        assert!(p.total_tiles > 0);
    }

    #[test]
    fn per_layer_symmetric_quant_puts_mass_at_full_scale() {
        // Each layer's largest tile must reach 127.
        let m = QuantizedModel::generate_limited(Model::GoogleNet, IntPrecision::Int8, 4, 300_000);
        let p = profile_model(&m, 16, 16);
        assert!(p.histogram[127] > 0);
    }

    #[test]
    fn average_latency_below_worst_case() {
        let m =
            QuantizedModel::generate_limited(Model::MobileNetV2, IntPrecision::Int8, 5, 500_000);
        let p = profile_model(&m, 16, 16);
        let avg = p.average_latency_cycles();
        assert!(avg > 0.0);
        assert!(avg < 64.0, "avg {avg}");
    }

    #[test]
    fn quantiles_are_monotone() {
        let m = QuantizedModel::generate_limited(Model::ResNet18, IntPrecision::Int8, 6, 400_000);
        let p = profile_model(&m, 16, 16);
        assert!(p.latency_quantile(0.25) <= p.latency_quantile(0.75));
    }

    #[test]
    fn int4_latencies_bounded_by_4() {
        let m =
            QuantizedModel::generate_limited(Model::ShuffleNetV2, IntPrecision::Int4, 7, 100_000);
        let p = profile_model(&m, 16, 16);
        assert!(p.average_latency_cycles() <= 4.0);
        assert_eq!(p.histogram.len(), 9);
    }
}
